// picasso_serve — the long-running multi-tenant coloring daemon.
//
// Owns one thread pool, one global memory budget and one spill directory
// for the whole process and serves solve requests over a Unix or TCP
// socket (see src/service/wire.hpp for the frame spec). Repeated problems
// are answered from the result cache; requests whose projected peak would
// blow the budget are rejected with a structured over-budget error.
//
//   picasso_serve --listen unix:/tmp/picasso.sock --budget 268435456
//
// Flags:
//   --listen ADDR      unix:/path or tcp:host:port (default tcp:127.0.0.1:0,
//                      an ephemeral port printed on startup)
//   --budget BYTES     global memory budget across all solves (0 = unlimited)
//   --threads N        workers in the shared pool (0 = hardware, 1 = serial)
//   --max-active N     concurrent solves (default 2)
//   --queue N          bounded pending-queue depth (default 64)
//   --cache N          result-cache capacity in entries (default 128)
//   --spill-dir PATH   spill directory (default <tmp>/picasso_serve)
//   --admission MODE   reject (default) or degrade: walk over-budget plans
//                      down the materialized -> fused -> sketch ladder and
//                      report the downgrade instead of rejecting
//   --idle-timeout MS  reap connections with nothing in flight that start
//                      no frame within MS (-1 = never, the default)
//   --io-timeout MS    per-send/recv stall bound on connections (-1 = none)
//
// Prints exactly one "listening on ADDR" line to stdout once ready (how
// scripts learn the ephemeral port), then serves until SIGINT/SIGTERM or a
// client Shutdown frame; exits 0 after a clean drain with a stats summary
// on stderr.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "service/server.hpp"

namespace {

using picasso::service::Server;
using picasso::service::ServerConfig;

const char* kUsage =
    "usage: picasso_serve [--listen ADDR] [--budget BYTES] [--threads N] "
    "[--max-active N] [--queue N] [--cache N] [--spill-dir PATH] "
    "[--admission reject|degrade] [--idle-timeout MS] [--io-timeout MS]";

std::uint64_t parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    throw std::invalid_argument(std::string(flag) +
                                " expects an integer, got '" + text + "'");
  }
  return value;
}

int parse_timeout_ms(const char* flag, const char* text) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < -1) {
    throw std::invalid_argument(std::string(flag) +
                                " expects milliseconds or -1, got '" + text +
                                "'");
  }
  return static_cast<int>(value);
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          throw std::invalid_argument(std::string("missing value for ") +
                                      flag);
        }
        return argv[++i];
      };
      if (arg == "--listen") {
        config.listen = next("--listen");
      } else if (arg == "--budget") {
        config.memory_budget_bytes =
            static_cast<std::size_t>(parse_u64("--budget", next("--budget")));
      } else if (arg == "--threads") {
        config.num_threads = static_cast<std::uint32_t>(
            parse_u64("--threads", next("--threads")));
      } else if (arg == "--max-active") {
        config.max_active_solves = static_cast<std::uint32_t>(
            parse_u64("--max-active", next("--max-active")));
      } else if (arg == "--queue") {
        config.max_queue =
            static_cast<std::size_t>(parse_u64("--queue", next("--queue")));
      } else if (arg == "--cache") {
        config.cache_capacity =
            static_cast<std::size_t>(parse_u64("--cache", next("--cache")));
      } else if (arg == "--spill-dir") {
        config.spill_dir = next("--spill-dir");
      } else if (arg == "--admission") {
        const std::string mode = next("--admission");
        if (mode == "reject") {
          config.admission = picasso::service::AdmissionPolicy::Reject;
        } else if (mode == "degrade") {
          config.admission = picasso::service::AdmissionPolicy::Degrade;
        } else {
          throw std::invalid_argument(
              "--admission expects 'reject' or 'degrade', got '" + mode +
              "'");
        }
      } else if (arg == "--idle-timeout") {
        config.idle_timeout_ms =
            parse_timeout_ms("--idle-timeout", next("--idle-timeout"));
      } else if (arg == "--io-timeout") {
        config.io_timeout_ms =
            parse_timeout_ms("--io-timeout", next("--io-timeout"));
      } else {
        throw std::invalid_argument("unknown argument '" + arg + "'");
      }
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "picasso_serve: %s\n%s\n", e.what(), kUsage);
    return 2;
  }

  // Field SIGINT/SIGTERM on a dedicated sigwait thread — signal-handler
  // safety without restricting request_stop to async-signal-safe calls.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  Server server;
  try {
    server.start(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "picasso_serve: error: %s\n", e.what());
    return 1;
  }

  std::thread signal_thread([&signals, &server] {
    int sig = 0;
    sigwait(&signals, &sig);
    std::fprintf(stderr, "picasso_serve: signal %d, draining\n", sig);
    server.request_stop();
  });

  std::printf("picasso_serve: listening on %s\n", server.address().c_str());
  std::fflush(stdout);

  server.wait_until_stop_requested();
  const picasso::service::StatsMsg stats = server.stats();
  server.stop();
  // Unblock the sigwait thread if the stop came from a Shutdown frame.
  pthread_kill(signal_thread.native_handle(), SIGTERM);
  signal_thread.join();

  std::fprintf(stderr,
               "picasso_serve: served %llu requests (%llu solved, %llu cache "
               "hits, %llu over-budget, %llu queue-full, %llu cancelled, "
               "%llu deadline-exceeded, %llu degraded, %llu client-gone, "
               "%llu idle-reaped, %llu orphan-spills-swept)\n",
               static_cast<unsigned long long>(stats.received),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.rejected_over_budget),
               static_cast<unsigned long long>(stats.rejected_queue_full),
               static_cast<unsigned long long>(stats.cancelled),
               static_cast<unsigned long long>(stats.deadline_exceeded),
               static_cast<unsigned long long>(stats.degraded),
               static_cast<unsigned long long>(stats.client_disconnects),
               static_cast<unsigned long long>(stats.idle_disconnects),
               static_cast<unsigned long long>(stats.orphan_spills_swept));
  return 0;
}
