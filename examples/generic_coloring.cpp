// Picasso in the generalised graph setting (the paper's conclusion points
// here): color an arbitrary dense graph through the oracle interface with a
// fraction of the memory of conventional colorers, and compare quality,
// memory and time against greedy / Jones-Plassmann / speculative baselines.
//
// Usage: generic_coloring [n] [density] | generic_coloring --file <edgelist>
//   default: n = 2000, density = 0.5 (Erdős–Rényi)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "coloring/greedy.hpp"
#include "coloring/jones_plassmann.hpp"
#include "coloring/speculative.hpp"
#include "coloring/verify.hpp"
#include "api/session.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_io.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace picasso;

  graph::DenseGraph dense;
  std::string source;
  if (argc == 3 && std::string(argv[1]) == "--file") {
    const auto csr = graph::read_edge_list_file(argv[2]);
    dense = graph::DenseGraph(csr.num_vertices());
    for (graph::VertexId u = 0; u < csr.num_vertices(); ++u) {
      for (graph::VertexId v : csr.neighbors(u)) {
        if (u < v) dense.add_edge(u, v);
      }
    }
    source = argv[2];
  } else {
    const auto n = static_cast<graph::VertexId>(argc > 1 ? std::atoi(argv[1]) : 2000);
    const double density = argc > 2 ? std::atof(argv[2]) : 0.5;
    dense = graph::erdos_renyi_dense(n, density, /*seed=*/1);
    source = "G(" + std::to_string(n) + ", " + std::to_string(density) + ")";
  }
  const graph::DenseOracle oracle(dense);
  std::printf("graph %s: %u vertices, %llu edges, max degree %u\n",
              source.c_str(), dense.num_vertices(),
              static_cast<unsigned long long>(dense.num_edges()),
              dense.max_degree());
  std::printf("explicit bitset representation: %.2f MB\n\n",
              static_cast<double>(dense.logical_bytes()) / (1 << 20));

  util::Table table({"algorithm", "colors", "peak aux mem", "time", "valid"});
  auto add_baseline = [&](const char* label,
                          const coloring::ColoringResult& r) {
    table.add_row({label, util::Table::fmt_int(r.num_colors),
                   util::Table::fmt_bytes(r.aux_peak_bytes + dense.logical_bytes()),
                   util::format_duration(r.seconds),
                   coloring::is_valid_coloring(dense, r.colors) ? "yes" : "NO"});
  };

  add_baseline("greedy-LF",
               coloring::greedy_color(dense, coloring::OrderingKind::LargestFirst));
  add_baseline("greedy-SL",
               coloring::greedy_color(dense, coloring::OrderingKind::SmallestLast));
  add_baseline("greedy-DLF",
               coloring::greedy_color(dense,
                                      coloring::OrderingKind::DynamicLargestFirst));
  add_baseline("JP-LDF", coloring::jones_plassmann(dense));
  add_baseline("speculative", coloring::speculative_color(dense));

  // Picasso never touches the explicit representation: its footprint is the
  // per-iteration lists + conflict CSR only.
  for (auto [label, percent, alpha] :
       {std::tuple{"picasso-normal", 12.5, 2.0},
        std::tuple{"picasso-aggressive", 3.0, 30.0}}) {
    const auto session =
        api::SessionBuilder().palette(percent, alpha).build();
    const auto r = session.solve(api::Problem::dense(dense)).result;
    table.add_row({label, util::Table::fmt_int(r.num_colors),
                   util::Table::fmt_bytes(r.peak_logical_bytes),
                   util::format_duration(r.total_seconds),
                   coloring::is_valid_coloring_oracle(oracle, r.colors)
                       ? "yes"
                       : "NO"});
  }
  table.print("coloring " + source);
  std::printf(
      "\nBaseline memory includes the mandatory explicit graph; Picasso's\n"
      "column is its total footprint (oracle access only).\n");
  return 0;
}
