// picasso_cli — command-line front end for the library, driving the public
// picasso::api::Session pipeline.
//
// Subcommands:
//   list                               registered datasets
//   info <dataset>                     dataset statistics
//   partition <dataset> [options]      group Pauli strings into unitaries
//   color --file <edgelist> [options]  color an arbitrary graph
//   sweep <dataset> [options]          (P', alpha) grid sweep, CSV output
//   remote <dataset> --connect ADDR    solve on a picasso_serve daemon
//   remote --connect ADDR --stats      print the daemon's counters
//   remote --connect ADDR --shutdown   ask the daemon to drain and exit
//
// Common options:
//   --percent P     palette percent P' (default 12.5)
//   --alpha A       list-size multiplier (default 2.0)
//   --seed S        RNG seed (default 1)
//   --mode M        partition relation: unitary | commute | qwc
//   --backend B     Pauli backend: auto | scalar | packed | packed-scalar
//   --strategy S    execution strategy: auto | in-memory (inmemory) |
//                   budgeted-streaming (streaming) | semi-streaming |
//                   multi-device | fused | sketch. Applies to `color` and
//                   (for unitary mode) `partition`; `fused` colors edge-free
//                   off the palette buckets, never building the conflict
//                   CSR; `sketch` adds the probabilistic Bloom tier (exact
//                   colorings for Pauli input, hashed edge oracle for
//                   explicit graphs).
//   --budget BYTES  memory budget (0 = unlimited; may plan streaming or
//                   the fused engine)
//   --mtx           color: parse --file as MatrixMarket (auto-detected for
//                   .mtx extensions)
//   --stream        color: re-read the file per pass (semi-streaming mode)
//   --refine        apply iterated-greedy refinement to the result
//   --csv           machine-readable output where supported
//   --metrics       collect the deterministic work counters during the solve
//                   and print the telemetry JSON (stderr under --csv, so the
//                   CSV stream stays clean)
//   --trace FILE    record phase spans (TelemetryLevel::Full) and write a
//                   chrome://tracing / Perfetto document to FILE
//   --connect ADDR  remote: daemon address (unix:/path or tcp:host:port)
//   --tenant NAME   remote: tenant label for fair-share scheduling
//   --priority N    remote: request priority (higher runs first)
//   --cancel-after N remote: cancel the request after N progress frames
//                   (prints "cancelled by client", exits 0 when the
//                   cancellation was honored)
//   --deadline-ms N remote: server-side deadline; the daemon answers
//                   deadline-exceeded instead of finishing a solve that
//                   outlives N milliseconds (0 = none)
//   --retries N     remote: attempt the request up to N times with
//                   exponential backoff on transport faults and retryable
//                   errors (queue-full, storage-full); safe because
//                   completed solves are answered from the result cache.
//                   Incompatible with --cancel-after (which needs one
//                   pinned connection). Default 1 = no retry.
//   --verify-local  remote: re-solve locally with identical parameters and
//                   assert the colorings are bit-identical (exit 1 on any
//                   divergence)
//   --stats         remote: print the daemon's counters instead of solving
//   --shutdown      remote: ask the daemon to drain and exit
//   --update FILE   partition: solve the dataset as an incremental baseline
//                   (Session::solve_incremental), then ingest FILE — a .pset
//                   written by PauliSet::save_binary — through
//                   Session::update(), printing one work summary per update.
//                   Repeatable; files apply in command-line order. Combine
//                   with --budget to grow a disk spill instead of resident
//                   memory.
//
// Exit codes: 0 success, 1 runtime failure (unreadable input, invalid
// result), 2 usage error (unknown command/flag/value, or a flag
// combination the session planner rejects — invalid-argument /
// invalid-configuration / incompatible-strategy ApiErrors). Every failure
// prints exactly one diagnostic line to stderr.
//
// Examples:
//   picasso_cli partition H6_2D_sto3g --percent 3 --alpha 30
//   picasso_cli color --file graph.el --stream
//   picasso_cli sweep H4_1D_sto3g --csv > sweep.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "coloring/refine.hpp"
#include "coloring/verify.hpp"
#include "core/clique_partition.hpp"
#include "graph/graph_io.hpp"
#include "ml/sweep.hpp"
#include "pauli/datasets.hpp"
#include "service/client.hpp"
#include "util/fnv.hpp"
#include "util/table.hpp"

namespace {

using namespace picasso;

/// Argument errors: one-line diagnostic, exit code 2.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct CliOptions {
  std::string command;
  std::string target;  // dataset name or (with --file) a path
  std::string file;
  double percent = 12.5;
  double alpha = 2.0;
  std::uint64_t seed = 1;
  core::GroupingMode mode = core::GroupingMode::Unitary;
  core::PauliBackend backend = core::PauliBackend::Auto;
  api::ExecutionStrategy strategy = api::ExecutionStrategy::Auto;
  std::size_t budget_bytes = 0;
  bool mtx = false;
  bool stream = false;
  bool refine = false;
  bool csv = false;
  bool metrics = false;
  std::string trace_file;
  std::vector<std::string> update_files;
  // remote subcommand
  std::string connect;
  std::string tenant;
  std::uint32_t priority = 0;
  int cancel_after = -1;  // progress frames before Cancel; -1 = never
  std::uint32_t deadline_ms = 0;  // server-side deadline; 0 = none
  std::uint32_t retries = 1;      // attempts incl. the first; 1 = no retry
  bool verify_local = false;
  bool remote_stats = false;
  bool remote_shutdown = false;

  obs::TelemetryLevel telemetry_level() const {
    if (!trace_file.empty()) return obs::TelemetryLevel::Full;
    if (metrics) return obs::TelemetryLevel::Counters;
    return obs::TelemetryLevel::Off;
  }
};

const char* kUsage =
    "usage: picasso_cli <list|info|partition|color|sweep|remote> [target] "
    "[--percent P] [--alpha A] [--seed S] [--mode unitary|commute|qwc] "
    "[--backend auto|scalar|packed|packed-scalar] "
    "[--strategy "
    "auto|inmemory|streaming|semi-streaming|multi-device|fused|sketch] "
    "[--budget BYTES] [--file path] [--mtx] [--stream] [--refine] [--csv] "
    "[--metrics] [--trace FILE] [--update FILE]... "
    "[--connect ADDR] [--tenant NAME] [--priority N] [--cancel-after N] "
    "[--deadline-ms N] [--retries N] [--verify-local] [--stats] [--shutdown]";

double parse_double(const char* flag, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw UsageError(std::string(flag) + " expects a number, got '" + text +
                     "'");
  }
  return value;
}

std::uint64_t parse_u64(const char* flag, const std::string& text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw UsageError(std::string(flag) + " expects an integer, got '" + text +
                     "'");
  }
  return value;
}

CliOptions parse_args(int argc, char** argv) {
  if (argc < 2) throw UsageError("missing command");
  CliOptions opt;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw UsageError(std::string("missing value for ") + flag);
      }
      return argv[++i];
    };
    if (arg == "--percent") {
      opt.percent = parse_double("--percent", next("--percent"));
    } else if (arg == "--alpha") {
      opt.alpha = parse_double("--alpha", next("--alpha"));
    } else if (arg == "--seed") {
      opt.seed = parse_u64("--seed", next("--seed"));
    } else if (arg == "--budget") {
      opt.budget_bytes =
          static_cast<std::size_t>(parse_u64("--budget", next("--budget")));
    } else if (arg == "--file") {
      opt.file = next("--file");
    } else if (arg == "--mode") {
      const std::string m = next("--mode");
      if (m == "unitary") {
        opt.mode = core::GroupingMode::Unitary;
      } else if (m == "commute") {
        opt.mode = core::GroupingMode::GeneralCommute;
      } else if (m == "qwc") {
        opt.mode = core::GroupingMode::QubitWiseCommute;
      } else {
        throw UsageError("unknown mode '" + m +
                         "' (valid: unitary, commute, qwc)");
      }
    } else if (arg == "--backend") {
      // parse_pauli_backend's invalid_argument lists the valid spellings.
      try {
        opt.backend = core::parse_pauli_backend(next("--backend"));
      } catch (const std::invalid_argument& e) {
        throw UsageError(e.what());
      }
    } else if (arg == "--strategy") {
      // parse_strategy's invalid_argument lists the valid spellings.
      try {
        opt.strategy = api::parse_strategy(next("--strategy"));
      } catch (const std::invalid_argument& e) {
        throw UsageError(e.what());
      }
    } else if (arg == "--metrics") {
      opt.metrics = true;
    } else if (arg == "--trace") {
      opt.trace_file = next("--trace");
    } else if (arg == "--update") {
      opt.update_files.push_back(next("--update"));
    } else if (arg == "--connect") {
      opt.connect = next("--connect");
    } else if (arg == "--tenant") {
      opt.tenant = next("--tenant");
    } else if (arg == "--priority") {
      opt.priority =
          static_cast<std::uint32_t>(parse_u64("--priority", next("--priority")));
    } else if (arg == "--cancel-after") {
      opt.cancel_after = static_cast<int>(
          parse_u64("--cancel-after", next("--cancel-after")));
    } else if (arg == "--deadline-ms") {
      opt.deadline_ms = static_cast<std::uint32_t>(
          parse_u64("--deadline-ms", next("--deadline-ms")));
    } else if (arg == "--retries") {
      opt.retries =
          static_cast<std::uint32_t>(parse_u64("--retries", next("--retries")));
      if (opt.retries == 0) {
        throw UsageError("--retries expects at least 1 attempt");
      }
    } else if (arg == "--verify-local") {
      opt.verify_local = true;
    } else if (arg == "--stats") {
      opt.remote_stats = true;
    } else if (arg == "--shutdown") {
      opt.remote_shutdown = true;
    } else if (arg == "--mtx") {
      opt.mtx = true;
    } else if (arg == "--stream") {
      opt.stream = true;
    } else if (arg == "--refine") {
      opt.refine = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (!arg.empty() && arg[0] != '-' && opt.target.empty()) {
      opt.target = arg;
    } else {
      throw UsageError("unknown argument '" + arg + "'");
    }
  }
  return opt;
}

core::PicassoParams params_from(const CliOptions& opt) {
  core::PicassoParams params;
  params.palette_percent = opt.percent;
  params.alpha = opt.alpha;
  params.seed = opt.seed;
  params.pauli_backend = opt.backend;
  params.memory_budget_bytes = opt.budget_bytes;
  return params;
}

/// One Session for every solve the CLI performs. Builder validation fires
/// before any work happens, and a rejected configuration is an operator
/// mistake (bad flag value), so it maps to UsageError / exit 2 — the same
/// class as an unparsable flag.
api::Session session_from(const CliOptions& opt) {
  try {
    return api::SessionBuilder()
        .params(params_from(opt))
        .strategy(opt.strategy)
        .telemetry(opt.telemetry_level())
        .build();
  } catch (const api::ApiError& e) {
    throw UsageError(e.what());
  }
}

/// Post-solve telemetry output: the counters/memory JSON on stdout (stderr
/// under --csv, keeping the CSV stream machine-clean) and the Chrome-trace
/// document to --trace FILE. Throws std::runtime_error (exit 1) when the
/// trace file cannot be written.
void emit_telemetry(const api::SolveReport& report, const CliOptions& opt) {
  if (opt.metrics || !opt.trace_file.empty()) {
    std::fprintf(opt.csv ? stderr : stdout, "%s\n",
                 report.telemetry.to_json().c_str());
  }
  if (!opt.trace_file.empty()) {
    const std::string doc = report.telemetry.chrome_trace_json();
    std::FILE* out = std::fopen(opt.trace_file.c_str(), "w");
    if (out == nullptr || std::fwrite(doc.data(), 1, doc.size(), out) !=
                              doc.size()) {
      if (out != nullptr) std::fclose(out);
      throw std::runtime_error("cannot write trace file " + opt.trace_file);
    }
    std::fclose(out);
    std::fprintf(stderr,
                 "picasso_cli: wrote %zu spans to %s (load in "
                 "chrome://tracing or https://ui.perfetto.dev)\n",
                 report.telemetry.spans.size(), opt.trace_file.c_str());
  }
}

int cmd_list() {
  util::Table table({"name", "class", "qubits", "atoms", "geometry", "basis"});
  for (const auto& d : pauli::all_datasets()) {
    table.add_row({d.name, to_string(d.size_class),
                   util::Table::fmt_int(2 * d.molecule.num_atoms *
                                        static_cast<int>(d.molecule.basis)),
                   util::Table::fmt_int(d.molecule.num_atoms),
                   to_string(d.molecule.geometry), to_string(d.molecule.basis)});
  }
  table.print("registered datasets");
  return 0;
}

int cmd_info(const CliOptions& opt) {
  if (opt.target.empty()) throw UsageError("info requires a dataset name");
  const auto& spec = pauli::dataset_by_name(opt.target);
  const auto& set = pauli::load_dataset(spec);
  std::printf("dataset      : %s (%s)\n", spec.name.c_str(),
              to_string(spec.size_class));
  std::printf("qubits       : %zu\n", set.num_qubits());
  std::printf("Pauli strings: %zu\n", set.size());
  std::printf("encoded size : %.2f MB\n",
              static_cast<double>(set.logical_bytes()) / (1 << 20));
  if (set.size() <= 20000) {
    const graph::ComplementOracle oracle(set);
    const auto edges = graph::count_edges(oracle);
    std::printf("compl. edges : %llu (%.1f%% dense)\n",
                static_cast<unsigned long long>(edges),
                200.0 * static_cast<double>(edges) /
                    (static_cast<double>(set.size()) *
                     static_cast<double>(set.size() - 1)));
  }
  return 0;
}

/// --update path of `partition`: incremental baseline over the dataset,
/// then one Session::update() per file, each with a work-summary line.
/// Returns the final report; appends every delta's strings to `strings` so
/// the caller can group and verify the combined set.
api::SolveReport run_updates(api::Session& session, const CliOptions& opt,
                             const pauli::PauliSet& set,
                             std::vector<pauli::PauliString>& strings) {
  api::SolveReport report =
      session.solve_incremental(api::Problem::pauli(set));
  std::fprintf(stderr,
               "picasso_cli: baseline %zu strings -> %u colors (%s)\n",
               set.size(), report.result.num_colors,
               util::format_duration(report.result.total_seconds).c_str());
  for (const std::string& path : opt.update_files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open update file " + path);
    pauli::PauliSet delta = pauli::PauliSet::load_binary(in);
    for (std::size_t i = 0; i < delta.size(); ++i) {
      strings.push_back(delta.string(i));
    }
    report = session.update(api::UpdateDelta::pauli(std::move(delta)));
    const core::UpdateStats& u = *report.update;
    std::fprintf(stderr,
                 "picasso_cli: update %s: +%u vertices, %llu probes, "
                 "%u recolor moves, %u fresh colors, %u escalations -> "
                 "%u colors (%s)%s\n",
                 path.c_str(), u.vertices_inserted,
                 static_cast<unsigned long long>(u.bucket_probes),
                 u.recolor_moves, u.fresh_colors, u.escalations, u.num_colors,
                 util::format_duration(u.seconds).c_str(),
                 session.incremental_state()->spilled() ? " [spilled]" : "");
  }
  return report;
}

int cmd_partition(const CliOptions& opt) {
  if (opt.target.empty()) throw UsageError("partition requires a dataset name");
  // Validates numeric flags eagerly (UsageError on bad ones).
  api::Session session = session_from(opt);
  const auto& spec = pauli::dataset_by_name(opt.target);
  const auto& set = pauli::load_dataset(spec);
  core::PartitionResult result;
  api::SolveReport report;
  const bool want_telemetry =
      opt.telemetry_level() != obs::TelemetryLevel::Off;
  // The combined set the groups are built from — the dataset itself unless
  // --update files extend it.
  const pauli::PauliSet* active = &set;
  pauli::PauliSet combined;
  if (!opt.update_files.empty()) {
    if (opt.mode != core::GroupingMode::Unitary) {
      throw UsageError("--update applies to unitary partitioning only");
    }
    std::vector<pauli::PauliString> strings;
    strings.reserve(set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
      strings.push_back(set.string(i));
    }
    report = run_updates(session, opt, set, strings);
    combined = pauli::PauliSet(std::move(strings));
    active = &combined;
    result.coloring = report.result;
    result.groups = core::groups_from_coloring(combined, result.coloring.colors);
  } else if (opt.strategy == api::ExecutionStrategy::Auto && !want_telemetry) {
    result = core::partition_pauli_strings(set, params_from(opt), opt.mode);
  } else if (opt.mode == core::GroupingMode::Unitary) {
    // A forced strategy (or a telemetry request) routes the coloring through
    // the session planner (e.g. --strategy fused colors edge-free); grouping
    // is unchanged and the coloring is bit-identical to the default path.
    report = session.solve(api::Problem::pauli(set));
    result.coloring = report.result;
    result.groups = core::groups_from_coloring(set, result.coloring.colors);
  } else {
    throw UsageError(
        "--strategy/--metrics/--trace overrides apply to unitary "
        "partitioning only; commute/qwc run the default pipeline");
  }
  const std::string violation =
      core::verify_partition(*active, result.groups, opt.mode);
  if (!violation.empty()) {
    std::fprintf(stderr, "picasso_cli: INVALID PARTITION: %s\n",
                 violation.c_str());
    return 1;
  }
  if (opt.csv) {
    std::printf("group,member,string,coefficient\n");
    for (std::size_t g = 0; g < result.groups.size(); ++g) {
      for (std::uint32_t m : result.groups[g].members) {
        std::printf("%zu,%u,%s,%.12g\n", g, m,
                    active->string(m).to_string().c_str(),
                    active->coefficient(m));
      }
    }
    emit_telemetry(report, opt);
    return 0;
  }
  std::printf("%s under %s: %zu strings -> %zu groups (%.2fx), "
              "%zu iterations, %llu max conflict edges, %s\n",
              spec.name.c_str(), to_string(opt.mode), active->size(),
              result.num_groups(), result.compression_ratio(),
              result.coloring.iterations.size(),
              static_cast<unsigned long long>(result.coloring.max_conflict_edges),
              util::format_duration(result.coloring.total_seconds).c_str());
  emit_telemetry(report, opt);
  return 0;
}

int cmd_color(const CliOptions& opt) {
  if (opt.file.empty()) {
    throw UsageError("color requires --file <edgelist|matrixmarket>");
  }
  const bool mtx = opt.mtx || graph::is_matrix_market_path(opt.file);
  const api::Session session = session_from(opt);
  api::SolveReport report;
  if (opt.stream) {
    if (mtx) {
      throw UsageError(
          "--stream replays edge-list files; convert the MatrixMarket input "
          "first (or drop --stream)");
    }
    report = session.solve(api::Problem::edge_stream_file(opt.file));
    const auto g = graph::read_edge_list_file(opt.file);  // verification only
    if (!coloring::is_valid_coloring(g, report.result.colors)) {
      std::fprintf(stderr, "picasso_cli: INVALID COLORING\n");
      return 1;
    }
  } else {
    auto g = mtx ? graph::read_matrix_market_file(opt.file)
                 : graph::read_edge_list_file(opt.file);
    report = session.solve(api::Problem::csr(g));
    if (opt.refine) {
      const auto refined = coloring::iterated_greedy_refine(g, report.result.colors);
      report.result.num_colors = refined.colors_after;
    }
    if (!coloring::is_valid_coloring(g, report.result.colors)) {
      std::fprintf(stderr, "picasso_cli: INVALID COLORING\n");
      return 1;
    }
  }
  const core::PicassoResult& result = report.result;
  if (opt.csv) {
    std::printf("vertex,color\n");
    for (std::uint32_t v = 0; v < result.colors.size(); ++v) {
      std::printf("%u,%u\n", v, result.colors[v]);
    }
    emit_telemetry(report, opt);
    return 0;
  }
  std::printf("%s: %zu vertices colored with %u colors in %zu iterations "
              "(%s) [%s]\n",
              opt.file.c_str(), result.colors.size(), result.num_colors,
              result.iterations.size(),
              util::format_duration(result.total_seconds).c_str(),
              to_string(report.plan.strategy));
  emit_telemetry(report, opt);
  return 0;
}

int cmd_sweep(const CliOptions& opt) {
  if (opt.target.empty()) throw UsageError("sweep requires a dataset name");
  session_from(opt);  // validate numeric flags eagerly (UsageError on bad ones)
  const auto& spec = pauli::dataset_by_name(opt.target);
  const auto& set = pauli::load_dataset(spec);
  const auto sweep = ml::parameter_sweep(set, ml::default_percent_grid(),
                                         ml::default_alpha_grid(),
                                         params_from(opt));
  if (opt.csv) {
    std::printf("percent,alpha,colors,max_conflict_edges,seconds\n");
    for (const auto& p : sweep) {
      std::printf("%.2f,%.2f,%u,%llu,%.4f\n", p.palette_percent, p.alpha,
                  p.colors, static_cast<unsigned long long>(p.max_conflict_edges),
                  p.seconds);
    }
    return 0;
  }
  util::Table table({"P'(%)", "alpha", "colors", "max |Ec|", "time"});
  for (const auto& p : sweep) {
    table.add_row({util::Table::fmt(p.palette_percent, 1),
                   util::Table::fmt(p.alpha, 1), util::Table::fmt_int(p.colors),
                   util::Table::fmt_int(static_cast<long long>(p.max_conflict_edges)),
                   util::format_duration(p.seconds)});
  }
  table.print("sweep of " + spec.name);
  return 0;
}

/// remote — drive a picasso_serve daemon: submit the dataset, stream
/// progress, optionally cancel mid-solve or verify against a local solve.
int cmd_remote(const CliOptions& opt) {
  if (opt.connect.empty()) {
    throw UsageError("remote requires --connect unix:/path or tcp:host:port");
  }
  if (opt.retries > 1 && opt.cancel_after >= 0) {
    throw UsageError("--retries and --cancel-after are incompatible "
                     "(cancellation needs one pinned connection)");
  }
  if (opt.remote_shutdown) {
    service::Client client = service::Client::connect(opt.connect);
    client.shutdown_server();
    std::printf("shutdown requested\n");
    return 0;
  }
  if (opt.remote_stats) {
    service::Client client = service::Client::connect(opt.connect);
    const service::StatsMsg stats = client.stats();
    std::printf(
        "received=%llu completed=%llu cache_hits=%llu cache_misses=%llu "
        "rejected_over_budget=%llu rejected_queue_full=%llu cancelled=%llu "
        "active=%llu queued=%llu spill_files_live=%llu "
        "deadline_exceeded=%llu degraded=%llu client_disconnects=%llu "
        "idle_disconnects=%llu orphan_spills_swept=%llu\n",
        static_cast<unsigned long long>(stats.received),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.cache_misses),
        static_cast<unsigned long long>(stats.rejected_over_budget),
        static_cast<unsigned long long>(stats.rejected_queue_full),
        static_cast<unsigned long long>(stats.cancelled),
        static_cast<unsigned long long>(stats.active),
        static_cast<unsigned long long>(stats.queued),
        static_cast<unsigned long long>(stats.spill_files_live),
        static_cast<unsigned long long>(stats.deadline_exceeded),
        static_cast<unsigned long long>(stats.degraded),
        static_cast<unsigned long long>(stats.client_disconnects),
        static_cast<unsigned long long>(stats.idle_disconnects),
        static_cast<unsigned long long>(stats.orphan_spills_swept));
    return 0;
  }
  if (opt.target.empty()) throw UsageError("remote requires a dataset name");
  const auto& spec = pauli::dataset_by_name(opt.target);
  const auto& set = pauli::load_dataset(spec);

  service::RemoteParams params;
  params.palette_percent = opt.percent;
  params.alpha = opt.alpha;
  params.seed = opt.seed;
  params.backend = static_cast<std::uint8_t>(opt.backend);
  params.strategy = static_cast<std::uint8_t>(opt.strategy);
  params.memory_budget_bytes = opt.budget_bytes;
  params.deadline_ms = opt.deadline_ms;

  service::RemoteResult outcome;
  int progress_frames = 0;
  if (opt.retries > 1) {
    service::RetryPolicy policy;
    policy.max_attempts = opt.retries;
    outcome = service::solve_with_retry(opt.connect, set, params, policy,
                                        opt.tenant, opt.priority);
  } else {
    service::Client client = service::Client::connect(opt.connect);
    service::ProgressHandler on_progress;
    if (opt.cancel_after >= 0) {
      on_progress = [&](const service::ProgressMsg& msg) {
        if (++progress_frames == opt.cancel_after) client.request_cancel();
        (void)msg;
      };
    }
    outcome = client.solve(set, params, opt.tenant, opt.priority, on_progress);
  }
  if (!outcome.ok) {
    if (outcome.error_code == service::ServiceErrorCode::Cancelled &&
        opt.cancel_after >= 0) {
      // The cancellation this invocation asked for — a success.
      std::printf("%s: cancelled by client after %d progress frames\n",
                  spec.name.c_str(), progress_frames);
      return 0;
    }
    std::fprintf(stderr, "picasso_cli: remote error [%s]: %s\n",
                 to_string(outcome.error_code),
                 outcome.error_message.c_str());
    return 1;
  }

  const service::ResultMsg& result = outcome.result;
  std::printf("%s: %zu strings -> %u colors (palette %u, %u iterations) "
              "in %s [%s] coloring_hash=%016llx\n",
              spec.name.c_str(), result.colors.size(), result.num_colors,
              result.palette_total, result.iterations,
              util::format_duration(result.seconds).c_str(),
              result.cache_hit ? "cache-hit" : "solved",
              static_cast<unsigned long long>(result.coloring_hash));
  if (outcome.attempts > 1) {
    std::printf("%s: succeeded on attempt %u\n", spec.name.c_str(),
                outcome.attempts);
  }
  if (result.degraded) {
    std::printf("%s: DEGRADED: %s\n", spec.name.c_str(),
                result.degraded_reason.c_str());
  }

  if (opt.verify_local) {
    const api::Session session = session_from(opt);
    const api::SolveReport local = session.solve(api::Problem::pauli(set));
    const std::vector<std::uint32_t> local_colors = local.result.colors;
    if (local_colors != result.colors ||
        util::coloring_fingerprint(local_colors) != result.coloring_hash) {
      std::fprintf(stderr,
                   "picasso_cli: REMOTE/LOCAL MISMATCH on %s (local hash "
                   "%016llx, remote %016llx)\n",
                   spec.name.c_str(),
                   static_cast<unsigned long long>(
                       util::coloring_fingerprint(local_colors)),
                   static_cast<unsigned long long>(result.coloring_hash));
      return 1;
    }
    std::printf("%s: local verification MATCH\n", spec.name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions opt = parse_args(argc, argv);
    if (opt.command == "list") return cmd_list();
    if (opt.command == "info") return cmd_info(opt);
    if (opt.command == "partition") return cmd_partition(opt);
    if (opt.command == "color") return cmd_color(opt);
    if (opt.command == "sweep") return cmd_sweep(opt);
    if (opt.command == "remote") return cmd_remote(opt);
    throw UsageError("unknown command '" + opt.command + "'");
  } catch (const UsageError& e) {
    std::fprintf(stderr, "picasso_cli: %s\n%s\n", e.what(), kUsage);
    return 2;
  } catch (const picasso::api::ApiError& e) {
    std::fprintf(stderr, "picasso_cli: %s\n", e.what());
    // Configuration-class errors (a flag combination the planner rejects,
    // e.g. --stream with --strategy fused) are operator mistakes -> usage
    // exit code; IO and internal failures stay runtime errors.
    switch (e.code()) {
      case picasso::api::ErrorCode::InvalidArgument:
      case picasso::api::ErrorCode::InvalidConfiguration:
      case picasso::api::ErrorCode::IncompatibleStrategy:
        std::fprintf(stderr, "%s\n", kUsage);
        return 2;
      default:
        return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "picasso_cli: error: %s\n", e.what());
    return 1;
  }
}
