// picasso_cli — command-line front end for the library.
//
// Subcommands:
//   list                               registered datasets
//   info <dataset>                     dataset statistics
//   partition <dataset> [options]      group Pauli strings into unitaries
//   color --file <edgelist> [options]  color an arbitrary graph
//   sweep <dataset> [options]          (P', alpha) grid sweep, CSV output
//
// Common options:
//   --percent P     palette percent P' (default 12.5)
//   --alpha A       list-size multiplier (default 2.0)
//   --seed S        RNG seed (default 1)
//   --mode M        partition relation: unitary | commute | qwc
//   --mtx           color: parse --file as MatrixMarket (auto-detected for
//                   .mtx extensions)
//   --stream        color: re-read the file per pass (semi-streaming mode)
//   --refine        apply iterated-greedy refinement to the result
//   --csv           machine-readable output where supported
//
// Examples:
//   picasso_cli partition H6_2D_sto3g --percent 3 --alpha 30
//   picasso_cli color --file graph.el --stream
//   picasso_cli sweep H4_1D_sto3g --csv > sweep.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "coloring/refine.hpp"
#include "coloring/verify.hpp"
#include "core/clique_partition.hpp"
#include "core/streaming.hpp"
#include "graph/graph_io.hpp"
#include "ml/sweep.hpp"
#include "pauli/datasets.hpp"
#include "util/table.hpp"

namespace {

using namespace picasso;

struct CliOptions {
  std::string command;
  std::string target;  // dataset name or (with --file) a path
  std::string file;
  double percent = 12.5;
  double alpha = 2.0;
  std::uint64_t seed = 1;
  core::GroupingMode mode = core::GroupingMode::Unitary;
  bool mtx = false;
  bool stream = false;
  bool refine = false;
  bool csv = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <list|info|partition|color|sweep> [target] "
               "[--percent P] [--alpha A] [--seed S] [--mode unitary|commute|qwc] "
               "[--file path] [--mtx] [--stream] [--refine] [--csv]\n",
               argv0);
  std::exit(2);
}

CliOptions parse_args(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  CliOptions opt;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--percent") {
      opt.percent = std::atof(next("--percent"));
    } else if (arg == "--alpha") {
      opt.alpha = std::atof(next("--alpha"));
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--file") {
      opt.file = next("--file");
    } else if (arg == "--mode") {
      const std::string m = next("--mode");
      if (m == "unitary") {
        opt.mode = core::GroupingMode::Unitary;
      } else if (m == "commute") {
        opt.mode = core::GroupingMode::GeneralCommute;
      } else if (m == "qwc") {
        opt.mode = core::GroupingMode::QubitWiseCommute;
      } else {
        std::fprintf(stderr, "unknown mode '%s'\n", m.c_str());
        std::exit(2);
      }
    } else if (arg == "--mtx") {
      opt.mtx = true;
    } else if (arg == "--stream") {
      opt.stream = true;
    } else if (arg == "--refine") {
      opt.refine = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (!arg.empty() && arg[0] != '-' && opt.target.empty()) {
      opt.target = arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      usage(argv[0]);
    }
  }
  return opt;
}

core::PicassoParams params_from(const CliOptions& opt) {
  core::PicassoParams params;
  params.palette_percent = opt.percent;
  params.alpha = opt.alpha;
  params.seed = opt.seed;
  return params;
}

int cmd_list() {
  util::Table table({"name", "class", "qubits", "atoms", "geometry", "basis"});
  for (const auto& d : pauli::all_datasets()) {
    table.add_row({d.name, to_string(d.size_class),
                   util::Table::fmt_int(2 * d.molecule.num_atoms *
                                        static_cast<int>(d.molecule.basis)),
                   util::Table::fmt_int(d.molecule.num_atoms),
                   to_string(d.molecule.geometry), to_string(d.molecule.basis)});
  }
  table.print("registered datasets");
  return 0;
}

int cmd_info(const CliOptions& opt) {
  const auto& spec = pauli::dataset_by_name(opt.target);
  const auto& set = pauli::load_dataset(spec);
  std::printf("dataset      : %s (%s)\n", spec.name.c_str(),
              to_string(spec.size_class));
  std::printf("qubits       : %zu\n", set.num_qubits());
  std::printf("Pauli strings: %zu\n", set.size());
  std::printf("encoded size : %.2f MB\n",
              static_cast<double>(set.logical_bytes()) / (1 << 20));
  if (set.size() <= 20000) {
    const graph::ComplementOracle oracle(set);
    const auto edges = graph::count_edges(oracle);
    std::printf("compl. edges : %llu (%.1f%% dense)\n",
                static_cast<unsigned long long>(edges),
                200.0 * static_cast<double>(edges) /
                    (static_cast<double>(set.size()) *
                     static_cast<double>(set.size() - 1)));
  }
  return 0;
}

int cmd_partition(const CliOptions& opt) {
  const auto& spec = pauli::dataset_by_name(opt.target);
  const auto& set = pauli::load_dataset(spec);
  const auto result =
      core::partition_pauli_strings(set, params_from(opt), opt.mode);
  const std::string violation =
      core::verify_partition(set, result.groups, opt.mode);
  if (!violation.empty()) {
    std::fprintf(stderr, "INVALID PARTITION: %s\n", violation.c_str());
    return 1;
  }
  if (opt.csv) {
    std::printf("group,member,string,coefficient\n");
    for (std::size_t g = 0; g < result.groups.size(); ++g) {
      for (std::uint32_t m : result.groups[g].members) {
        std::printf("%zu,%u,%s,%.12g\n", g, m,
                    set.string(m).to_string().c_str(), set.coefficient(m));
      }
    }
    return 0;
  }
  std::printf("%s under %s: %zu strings -> %zu groups (%.2fx), "
              "%zu iterations, %llu max conflict edges, %s\n",
              spec.name.c_str(), to_string(opt.mode), set.size(),
              result.num_groups(), result.compression_ratio(),
              result.coloring.iterations.size(),
              static_cast<unsigned long long>(result.coloring.max_conflict_edges),
              util::format_duration(result.coloring.total_seconds).c_str());
  return 0;
}

int cmd_color(const CliOptions& opt) {
  if (opt.file.empty()) {
    std::fprintf(stderr, "color requires --file <edgelist|matrixmarket>\n");
    return 2;
  }
  const bool mtx = opt.mtx || graph::is_matrix_market_path(opt.file);
  core::PicassoParams params = params_from(opt);
  core::PicassoResult result;
  if (opt.stream) {
    if (mtx) {
      std::fprintf(stderr,
                   "--stream replays edge-list files; convert the "
                   "MatrixMarket input first (or drop --stream)\n");
      return 2;
    }
    const core::FileEdgeStream stream(opt.file);
    result = core::picasso_color_stream(stream.num_vertices(), stream, params);
    const auto g = graph::read_edge_list_file(opt.file);  // verification only
    if (!coloring::is_valid_coloring(g, result.colors)) {
      std::fprintf(stderr, "INVALID COLORING\n");
      return 1;
    }
  } else {
    auto g = mtx ? graph::read_matrix_market_file(opt.file)
                 : graph::read_edge_list_file(opt.file);
    result = core::picasso_color_csr(g, params);
    if (opt.refine) {
      const auto refined = coloring::iterated_greedy_refine(g, result.colors);
      result.num_colors = refined.colors_after;
    }
    if (!coloring::is_valid_coloring(g, result.colors)) {
      std::fprintf(stderr, "INVALID COLORING\n");
      return 1;
    }
  }
  if (opt.csv) {
    std::printf("vertex,color\n");
    for (std::uint32_t v = 0; v < result.colors.size(); ++v) {
      std::printf("%u,%u\n", v, result.colors[v]);
    }
    return 0;
  }
  std::printf("%s: %zu vertices colored with %u colors in %zu iterations "
              "(%s)%s\n",
              opt.file.c_str(), result.colors.size(), result.num_colors,
              result.iterations.size(),
              util::format_duration(result.total_seconds).c_str(),
              opt.stream ? " [streaming]" : "");
  return 0;
}

int cmd_sweep(const CliOptions& opt) {
  const auto& spec = pauli::dataset_by_name(opt.target);
  const auto& set = pauli::load_dataset(spec);
  const auto sweep = ml::parameter_sweep(set, ml::default_percent_grid(),
                                         ml::default_alpha_grid(),
                                         params_from(opt));
  if (opt.csv) {
    std::printf("percent,alpha,colors,max_conflict_edges,seconds\n");
    for (const auto& p : sweep) {
      std::printf("%.2f,%.2f,%u,%llu,%.4f\n", p.palette_percent, p.alpha,
                  p.colors, static_cast<unsigned long long>(p.max_conflict_edges),
                  p.seconds);
    }
    return 0;
  }
  util::Table table({"P'(%)", "alpha", "colors", "max |Ec|", "time"});
  for (const auto& p : sweep) {
    table.add_row({util::Table::fmt(p.palette_percent, 1),
                   util::Table::fmt(p.alpha, 1), util::Table::fmt_int(p.colors),
                   util::Table::fmt_int(static_cast<long long>(p.max_conflict_edges)),
                   util::format_duration(p.seconds)});
  }
  table.print("sweep of " + spec.name);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions opt = parse_args(argc, argv);
    if (opt.command == "list") return cmd_list();
    if (opt.command == "info") return cmd_info(opt);
    if (opt.command == "partition") return cmd_partition(opt);
    if (opt.command == "color") return cmd_color(opt);
    if (opt.command == "sweep") return cmd_sweep(opt);
    usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
