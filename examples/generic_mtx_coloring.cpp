// Generic graphs through the full palette pipeline: MatrixMarket (or
// edge-list) ingestion feeding the explicit edge-list conflict oracle.
//
// The Pauli drivers answer adjacency implicitly from packed bit masks; this
// entry point shows the other side of the pluggable conflict-oracle
// interface (core/conflict_oracle.hpp): an arbitrary graph loaded from a
// SuiteSparse-style .mtx file, colored by the identical Algorithm 1 loop
// through graph::CsrOracle, and cross-checked against greedy baselines.
//
// Usage: generic_mtx_coloring [graph.mtx|graph.el] [percent] [alpha]
//   With no file, a power-law R-MAT instance is generated, written to a
//   temporary .mtx, and read back — a self-contained round-trip demo.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "coloring/greedy.hpp"
#include "coloring/verify.hpp"
#include "api/session.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_io.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace picasso;

  graph::CsrGraph g;
  std::string source;
  if (argc > 1 && argv[1][0] != '-') {
    source = argv[1];
    g = graph::read_graph_file(source);
  } else {
    // Self-contained demo: generate, spill as MatrixMarket, read back.
    const auto generated =
        graph::rmat(4000, 40000, 0.57, 0.19, 0.19, /*seed=*/7);
    const auto path =
        (std::filesystem::temp_directory_path() / "picasso_demo.mtx").string();
    graph::write_matrix_market_file(path, generated);
    g = graph::read_matrix_market_file(path);
    std::filesystem::remove(path);
    source = "rmat(4000, 40k) via " + path;
  }
  const double percent = argc > 2 ? std::atof(argv[2]) : 12.5;
  const double alpha = argc > 3 ? std::atof(argv[3]) : 2.0;

  std::printf("graph %s: %u vertices, %llu edges, max degree %u\n\n",
              source.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), g.max_degree());

  util::Table table({"algorithm", "colors", "time", "valid"});

  const auto greedy =
      coloring::greedy_color(g, coloring::OrderingKind::LargestFirst);
  table.add_row({"greedy-LF", util::Table::fmt_int(greedy.num_colors),
                 util::format_duration(greedy.seconds),
                 coloring::is_valid_coloring(g, greedy.colors) ? "yes" : "NO"});

  const auto session = api::SessionBuilder().palette(percent, alpha).build();
  const auto r = session.solve(api::Problem::csr(g)).result;
  table.add_row({"picasso (edge-list oracle)",
                 util::Table::fmt_int(r.num_colors),
                 util::format_duration(r.total_seconds),
                 coloring::is_valid_coloring(g, r.colors) ? "yes" : "NO"});
  table.print("palette pipeline on " + source);

  std::printf(
      "\n%zu iterations, max conflict edges %llu, palette total %u\n"
      "The same Algorithm 1 loop that groups Pauli strings colors this\n"
      "graph; only the conflict oracle changed (CsrOracle vs the packed\n"
      "anticommutation masks).\n",
      r.iterations.size(),
      static_cast<unsigned long long>(r.max_conflict_edges), r.palette_total);
  return coloring::is_valid_coloring(g, r.colors) ? 0 : 1;
}
