// Quickstart: group the 17 Pauli strings of the paper's Fig. 1 (H2/sto-3g)
// into unitaries with Picasso.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Demonstrates the minimal API surface:
//   PauliSet          -- the encoded input (vertices of the graph)
//   PicassoParams     -- palette percent P' and list multiplier alpha
//   partition_pauli_strings() -- coloring + grouping in one call

#include <cstdio>

#include "core/clique_partition.hpp"
#include "pauli/datasets.hpp"

int main() {
  using namespace picasso;

  // The 17 Pauli strings of Fig. 1. In a real application these come from
  // your Hamiltonian / ansatz pipeline (see examples/pauli_grouping.cpp).
  const pauli::PauliSet set = pauli::fig1_h2_set();
  std::printf("input: %zu Pauli strings on %zu qubits\n", set.size(),
              set.num_qubits());

  // Aggressive configuration: small palette, long lists — best quality at
  // the cost of a denser conflict graph (fine at this size).
  core::PicassoParams params;
  params.palette_percent = 40.0;
  params.alpha = 30.0;
  params.seed = 3;

  const core::PartitionResult result =
      core::partition_pauli_strings(set, params);

  const std::string violation = core::verify_partition(set, result.groups);
  std::printf("partition valid: %s\n", violation.empty() ? "yes" : violation.c_str());
  std::printf("%zu strings -> %zu unitaries (compression %.2fx)\n\n",
              set.size(), result.num_groups(), result.compression_ratio());

  for (std::size_t g = 0; g < result.groups.size(); ++g) {
    std::printf("  U%-2zu [norm %.3f]:", g, result.groups[g].coefficient_norm);
    for (std::uint32_t member : result.groups[g].members) {
      std::printf(" %s", set.string(member).to_string().c_str());
    }
    std::printf("\n");
  }
  return violation.empty() ? 0 : 1;
}
