// The §VI machine-learning workflow end to end:
//
//   1. sweep (P', alpha) on several training molecules,
//   2. pick per-beta optima of the bi-objective (Eq. 7),
//   3. train the random-forest predictor,
//   4. predict parameters for a held-out molecule and run Picasso with
//      them, comparing against the default configuration.
//
// Usage: parameter_prediction [beta]   (default beta = 0.5)

#include <cstdio>
#include <cstdlib>

#include "api/session.hpp"
#include "graph/oracles.hpp"
#include "ml/predictor.hpp"
#include "pauli/datasets.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace picasso;

  const double beta = argc > 1 ? std::atof(argv[1]) : 0.5;
  const std::vector<double> betas{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  // Reduced grids keep this demo snappy; bench_ml_predictor runs the full
  // paper grid.
  const std::vector<double> percents{2.5, 5.0, 10.0, 15.0, 20.0};
  const std::vector<double> alphas{1.0, 2.0, 3.0, 4.5};

  const char* train_names[] = {"H4_1D_sto3g", "H4_2D_sto3g", "H4_3D_sto3g",
                               "H6_1D_sto3g"};
  const char* test_name = "H6_3D_sto3g";

  std::vector<ml::TrainingSample> samples;
  for (const char* name : train_names) {
    const auto& set = pauli::load_dataset(pauli::dataset_by_name(name));
    const graph::ComplementOracle oracle(set);
    const std::uint64_t edges = graph::count_edges(oracle);
    std::printf("sweeping %-12s (|V|=%zu, |E|=%llu)...\n", name, set.size(),
                static_cast<unsigned long long>(edges));
    const auto batch =
        ml::build_training_samples(set, edges, betas, percents, alphas);
    samples.insert(samples.end(), batch.begin(), batch.end());
  }
  std::printf("training random forest on %zu samples...\n\n", samples.size());
  ml::ParameterPredictor predictor(ml::ModelKind::RandomForest);
  predictor.fit(samples, {.num_trees = 100, .tree = {.max_depth = 20}});

  const auto& test_set = pauli::load_dataset(pauli::dataset_by_name(test_name));
  const graph::ComplementOracle oracle(test_set);
  const std::uint64_t test_edges = graph::count_edges(oracle);
  const auto predicted = predictor.predict(beta, test_set.size(), test_edges);
  std::printf("held-out %s at beta=%.2f -> predicted P'=%.2f%%, alpha=%.2f\n",
              test_name, beta, predicted.palette_percent, predicted.alpha);

  util::Table table({"config", "P'(%)", "alpha", "colors", "max |Ec|", "time"});
  for (auto [label, percent, alpha] :
       {std::tuple{"default", 12.5, 2.0},
        std::tuple{"predicted", predicted.palette_percent, predicted.alpha}}) {
    const auto session =
        api::SessionBuilder().palette(percent, alpha).build();
    const auto r = session.solve(api::Problem::pauli(test_set)).result;
    table.add_row({label, util::Table::fmt(percent, 2),
                   util::Table::fmt(alpha, 2),
                   util::Table::fmt_int(r.num_colors),
                   util::Table::fmt_int(static_cast<long long>(r.max_conflict_edges)),
                   util::format_duration(r.total_seconds)});
  }
  table.print("default vs ML-predicted parameters on " + std::string(test_name));
  std::printf(
      "\nbeta near 1 favours fewer colors; beta near 0 favours fewer\n"
      "conflict edges (lower memory/time). Adjust the first argument.\n");
  return 0;
}
