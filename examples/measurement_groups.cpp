// Comparing the three Pauli-grouping relations of the quantum-measurement
// literature (§III of the paper) on one molecule, with the same Picasso
// machinery — only the adjacency oracle changes:
//
//   unitary        : pairwise anticommuting groups (the paper's target;
//                    compact unitaries via Eq. (1));
//   general-commute: pairwise commuting groups (simultaneous measurement
//                    after a basis-change circuit);
//   qubit-wise     : pairwise qubit-wise-commuting groups (directly
//                    measurable, no extra circuit — but far fewer pairs
//                    qualify, so many more groups).
//
// Usage: measurement_groups [dataset-name]   (default H4_2D_sto3g)

#include <cstdio>
#include <string>

#include "core/clique_partition.hpp"
#include "pauli/datasets.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace picasso;

  const std::string name = argc > 1 ? argv[1] : "H4_2D_sto3g";
  const auto& spec = pauli::dataset_by_name(name);
  const pauli::PauliSet& set = pauli::load_dataset(spec);
  std::printf("%s: %zu Pauli strings on %zu qubits\n", spec.name.c_str(),
              set.size(), set.num_qubits());

  util::Table table(
      {"grouping relation", "groups", "compression", "iters", "time"});
  for (auto mode : {core::GroupingMode::Unitary,
                    core::GroupingMode::GeneralCommute,
                    core::GroupingMode::QubitWiseCommute}) {
    core::PicassoParams params;
    params.palette_percent = 12.5;
    params.alpha = 2.0;
    params.seed = 1;
    const auto result = core::partition_pauli_strings(set, params, mode);
    const std::string violation =
        core::verify_partition(set, result.groups, mode);
    if (!violation.empty()) {
      std::printf("INVALID (%s): %s\n", to_string(mode), violation.c_str());
      return 1;
    }
    table.add_row({to_string(mode),
                   util::Table::fmt_int(static_cast<long long>(result.num_groups())),
                   util::Table::fmt(result.compression_ratio(), 2) + "x",
                   util::Table::fmt_int(static_cast<long long>(
                       result.coloring.iterations.size())),
                   util::format_duration(result.coloring.total_seconds)});
  }
  table.print("grouping " + spec.name + " under the three relations");
  std::printf(
      "\nAll three partitions verified against their own relation. The\n"
      "ordering (QWC most groups, the clique-partition relations far\n"
      "fewer) mirrors the measurement-cost hierarchy in the literature.\n");
  return 0;
}
