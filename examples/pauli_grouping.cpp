// End-to-end quantum-computing workflow (the paper's motivating
// application, §I-II):
//
//   Hn molecule geometry -> synthetic integrals -> second-quantised
//   Hamiltonian (+ CC-doubles ansatz) -> Jordan-Wigner -> Pauli strings ->
//   Picasso coloring of the complement graph -> compact unitary partition.
//
// Usage: pauli_grouping [dataset-name]
//   e.g. pauli_grouping H6_2D_sto3g     (default)
//        pauli_grouping H4_2D_631g
// Known names are the Table II-style registry entries; run with an unknown
// name to get the list.

#include <cstdio>
#include <exception>
#include <string>

#include "core/clique_partition.hpp"
#include "pauli/datasets.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace picasso;

  const std::string name = argc > 1 ? argv[1] : "H6_2D_sto3g";
  const pauli::DatasetSpec* spec = nullptr;
  try {
    spec = &pauli::dataset_by_name(name);
  } catch (const std::exception&) {
    std::printf("unknown dataset '%s'; available:\n", name.c_str());
    for (const auto& d : pauli::all_datasets()) {
      std::printf("  %-16s (%s)\n", d.name.c_str(), to_string(d.size_class));
    }
    return 1;
  }

  std::printf("generating %s (%d H atoms, %s lattice, %s basis)...\n",
              spec->name.c_str(), spec->molecule.num_atoms,
              to_string(spec->molecule.geometry),
              to_string(spec->molecule.basis));
  const pauli::PauliSet& set = pauli::load_dataset(*spec);
  std::printf("  %zu Pauli strings on %zu qubits (%.2f MB encoded)\n\n",
              set.size(), set.num_qubits(),
              static_cast<double>(set.logical_bytes()) / (1 << 20));

  util::Table table({"config", "P'(%)", "alpha", "colors", "C/|V|", "iters",
                     "max |Ec|", "time"});
  struct Config {
    const char* label;
    double percent, alpha;
  };
  for (const Config& cfg : {Config{"normal", 12.5, 2.0},
                            Config{"aggressive", 3.0, 30.0}}) {
    core::PicassoParams params;
    params.palette_percent = cfg.percent;
    params.alpha = cfg.alpha;
    params.seed = 1;
    const core::PartitionResult result =
        core::partition_pauli_strings(set, params);
    const std::string violation = core::verify_partition(set, result.groups);
    if (!violation.empty()) {
      std::printf("INVALID PARTITION: %s\n", violation.c_str());
      return 1;
    }
    table.add_row({cfg.label, util::Table::fmt(cfg.percent, 1),
                   util::Table::fmt(cfg.alpha, 1),
                   util::Table::fmt_int(result.coloring.num_colors),
                   util::Table::fmt_pct(result.coloring.color_percent(), 1),
                   util::Table::fmt_int(
                       static_cast<long long>(result.coloring.iterations.size())),
                   util::Table::fmt_int(
                       static_cast<long long>(result.coloring.max_conflict_edges)),
                   util::format_duration(result.coloring.total_seconds)});
  }
  table.print("unitary partitioning of " + spec->name);

  std::printf(
      "\nBoth configurations verified: every group is pairwise\n"
      "anticommuting, so each maps to one unitary in Eq. (1) of the paper.\n");
  return 0;
}
