// Tests for conflict-graph construction (Algorithm 1 Line 7 / §V): the
// defining property (edge ⇔ lists intersect AND oracle edge), exact
// agreement between the reference and indexed kernels, and the device
// pipeline's equivalence with the host path.

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <utility>

#include "core/conflict_graph.hpp"
#include "core/palette.hpp"
#include "device/device_context.hpp"
#include "graph/graph_gen.hpp"
#include "graph/oracles.hpp"
#include "pauli/datasets.hpp"

namespace pcore = picasso::core;
namespace pg = picasso::graph;

namespace {

std::vector<std::uint32_t> identity_active(std::uint32_t n) {
  std::vector<std::uint32_t> active(n);
  for (std::uint32_t v = 0; v < n; ++v) active[v] = v;
  return active;
}

/// Brute-force conflict edge set from the definition.
std::set<std::pair<std::uint32_t, std::uint32_t>> brute_force_conflicts(
    const pg::DenseOracle& oracle, const std::vector<std::uint32_t>& active,
    const pcore::ColorLists& lists) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  const auto n = static_cast<std::uint32_t>(active.size());
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (lists.share_color(u, v) && oracle.edge(active[u], active[v])) {
        edges.emplace(u, v);
      }
    }
  }
  return edges;
}

std::set<std::pair<std::uint32_t, std::uint32_t>> edges_of(
    const pg::CsrGraph& g) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < g.num_vertices(); ++u) {
    for (std::uint32_t v : g.neighbors(u)) {
      if (u < v) edges.emplace(u, v);
    }
  }
  return edges;
}

}  // namespace

class ConflictKernelSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, double, std::uint64_t>> {};

TEST_P(ConflictKernelSweep, KernelsMatchBruteForceDefinition) {
  const auto [n, density, seed] = GetParam();
  const auto graph = pg::erdos_renyi_dense(n, density, seed);
  const pg::DenseOracle oracle(graph);
  const auto active = identity_active(n);
  const auto palette = pcore::compute_palette(n, 12.5, 2.0, 0);
  const auto lists = pcore::assign_random_lists(n, palette, seed, 0);

  const auto expected = brute_force_conflicts(oracle, active, lists);

  for (auto kernel :
       {pcore::ConflictKernel::Reference, pcore::ConflictKernel::Indexed}) {
    const auto result = pcore::build_conflict_graph(
        oracle, active, lists, palette.palette_size, kernel);
    EXPECT_TRUE(result.graph.validate().empty());
    EXPECT_EQ(result.num_edges, expected.size()) << to_string(kernel);
    EXPECT_EQ(edges_of(result.graph), expected) << to_string(kernel);
    // |Vc| = vertices touched by at least one conflict edge.
    std::set<std::uint32_t> conflicted;
    for (const auto& [u, v] : expected) {
      conflicted.insert(u);
      conflicted.insert(v);
    }
    EXPECT_EQ(result.num_conflicted_vertices, conflicted.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesDensitiesSeeds, ConflictKernelSweep,
    ::testing::Combine(::testing::Values(30u, 100u, 300u),
                       ::testing::Values(0.2, 0.5, 0.9),
                       ::testing::Values(1u, 17u)));

TEST(ConflictGraph, ActiveSubsetMapsLocalIndices) {
  // Build over a strict subset and check that indices refer to positions in
  // `active`, not original vertex ids.
  const auto graph = pg::erdos_renyi_dense(60, 0.8, 3);
  const pg::DenseOracle oracle(graph);
  std::vector<std::uint32_t> active;
  for (std::uint32_t v = 0; v < 60; v += 2) active.push_back(v);  // evens
  const auto palette =
      pcore::compute_palette(static_cast<std::uint32_t>(active.size()), 20.0, 3.0, 0);
  const auto lists = pcore::assign_random_lists(
      static_cast<std::uint32_t>(active.size()), palette, 5, 0);
  const auto result = pcore::build_conflict_graph(
      oracle, active, lists, palette.palette_size, pcore::ConflictKernel::Indexed);
  EXPECT_EQ(result.graph.num_vertices(), active.size());
  for (const auto& [u, v] : edges_of(result.graph)) {
    EXPECT_TRUE(lists.share_color(u, v));
    EXPECT_TRUE(oracle.edge(active[u], active[v]));
  }
}

TEST(ConflictGraph, EmptyAndSingletonInputs) {
  const auto graph = pg::erdos_renyi_dense(4, 0.5, 1);
  const pg::DenseOracle oracle(graph);
  const pcore::ColorLists empty_lists(0, 1);
  const auto r0 = pcore::build_conflict_graph(
      oracle, std::vector<std::uint32_t>{}, empty_lists, 1,
      pcore::ConflictKernel::Indexed);
  EXPECT_EQ(r0.num_edges, 0u);
  const auto palette = pcore::compute_palette(1, 50.0, 1.0, 0);
  const auto one = pcore::assign_random_lists(1, palette, 1, 0);
  const auto r1 = pcore::build_conflict_graph(
      oracle, std::vector<std::uint32_t>{2}, one, palette.palette_size,
      pcore::ConflictKernel::Reference);
  EXPECT_EQ(r1.num_edges, 0u);
  EXPECT_EQ(r1.graph.num_vertices(), 1u);
}

TEST(ConflictGraph, DevicePipelineMatchesHost) {
  const auto graph = pg::erdos_renyi_dense(120, 0.6, 9);
  const pg::DenseOracle oracle(graph);
  const auto active = identity_active(120);
  const auto palette = pcore::compute_palette(120, 15.0, 2.5, 0);
  const auto lists = pcore::assign_random_lists(120, palette, 2, 0);

  const auto host = pcore::build_conflict_graph(
      oracle, active, lists, palette.palette_size, pcore::ConflictKernel::Indexed);

  picasso::device::DeviceContext ctx(64u << 20);
  const auto device = pcore::build_conflict_graph_device(
      ctx, oracle, active, lists, palette.palette_size,
      pcore::ConflictKernel::Indexed);
  EXPECT_EQ(edges_of(device.graph), edges_of(host.graph));
  EXPECT_TRUE(device.csr_built_on_device);  // plenty of budget
  EXPECT_GT(device.logical_bytes, 0u);
  EXPECT_EQ(ctx.used_bytes(), 0u);  // everything refunded after build
}

TEST(ConflictGraph, DeviceFallsBackToHostCsrWhenTight) {
  // Budget large enough for counters + COO but too small to also hold the
  // CSR neighbor array on device -> host fallback path (Algorithm 3 Line 7).
  const auto graph = pg::erdos_renyi_dense(200, 0.9, 4);
  const pg::DenseOracle oracle(graph);
  const auto active = identity_active(200);
  const auto palette = pcore::compute_palette(200, 10.0, 4.0, 0);
  const auto lists = pcore::assign_random_lists(200, palette, 8, 0);

  const auto host = pcore::build_conflict_graph(
      oracle, active, lists, palette.palette_size, pcore::ConflictKernel::Indexed);
  ASSERT_GT(host.num_edges, 100u);

  // counters: 200*8 bytes; COO: 8 bytes per edge. Size the budget so that
  // the final 2|Ec|*4-byte CSR does NOT fit in what remains.
  const std::size_t counters = 200 * sizeof(std::uint64_t);
  const std::size_t coo = static_cast<std::size_t>(host.num_edges) * 8;
  picasso::device::DeviceContext ctx(counters + coo + coo / 4);
  const auto device = pcore::build_conflict_graph_device(
      ctx, oracle, active, lists, palette.palette_size,
      pcore::ConflictKernel::Indexed);
  EXPECT_FALSE(device.csr_built_on_device);
  EXPECT_EQ(edges_of(device.graph), edges_of(host.graph));
}

TEST(ConflictGraph, DeviceOutOfMemoryWhenCooOverflows) {
  const auto graph = pg::erdos_renyi_dense(300, 0.9, 6);
  const pg::DenseOracle oracle(graph);
  const auto active = identity_active(300);
  const auto palette = pcore::compute_palette(300, 5.0, 4.5, 0);
  const auto lists = pcore::assign_random_lists(300, palette, 3, 0);
  // Tiny budget: the COO buffer cannot hold the conflict edges.
  picasso::device::DeviceContext ctx(300 * sizeof(std::uint64_t) + 1024);
  EXPECT_THROW(pcore::build_conflict_graph_device(
                   ctx, oracle, active, lists, palette.palette_size,
                   pcore::ConflictKernel::Reference),
               picasso::device::DeviceOutOfMemory);
  EXPECT_GE(ctx.oom_count(), 1u);
}

TEST(ConflictGraph, WorksOnRealPauliOracle) {
  const auto set = picasso::pauli::fig1_h2_set();
  const pg::ComplementOracle oracle(set);
  const auto n = static_cast<std::uint32_t>(set.size());
  const auto active = identity_active(n);
  const auto palette = pcore::compute_palette(n, 30.0, 4.0, 0);
  const auto lists = pcore::assign_random_lists(n, palette, 4, 0);
  const auto ref = pcore::build_conflict_graph(
      oracle, active, lists, palette.palette_size, pcore::ConflictKernel::Reference);
  const auto idx = pcore::build_conflict_graph(
      oracle, active, lists, palette.palette_size, pcore::ConflictKernel::Indexed);
  EXPECT_EQ(edges_of(ref.graph), edges_of(idx.graph));
}
