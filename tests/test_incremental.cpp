// Incremental online coloring: Session::update() / core::FusedState edge
// cases — empty deltas, bootstrap-before-solve, duplicate records, cancel
// mid-update (state stays consistent and re-updatable), budgeted sessions
// whose spill grows across updates, shape errors, escalation — plus the
// append-segment regression tests for ChunkedPauliReader (a reader
// re-opened on an appended .pset must re-derive the string count and the
// packed-tail offsets instead of trusting the base header).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "api/session.hpp"
#include "coloring/verify.hpp"
#include "graph/graph_gen.hpp"
#include "graph/oracles.hpp"
#include "pauli/pauli_stream.hpp"
#include "util/rng.hpp"

namespace papi = picasso::api;
namespace pcore = picasso::core;
namespace pg = picasso::graph;
namespace pp = picasso::pauli;
namespace fs = std::filesystem;

namespace {

std::vector<pp::PauliString> random_strings(std::size_t count,
                                            std::size_t qubits,
                                            std::uint64_t seed) {
  picasso::util::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  for (std::size_t i = 0; i < count; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(s);
  }
  return strings;
}

pp::PauliSet slice(const std::vector<pp::PauliString>& strings,
                   std::size_t begin, std::size_t end) {
  return pp::PauliSet(std::vector<pp::PauliString>(strings.begin() + begin,
                                                   strings.begin() + end));
}

/// Scratch file that cleans up after itself.
struct TempFile {
  fs::path path;
  explicit TempFile(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove(path);
  }
  ~TempFile() {
    std::error_code ec;
    fs::remove(path, ec);
  }
};

}  // namespace

// --- Session::update basics --------------------------------------------------

TEST(IncrementalUpdate, EmptyDeltaIsANoOp) {
  auto session = papi::SessionBuilder().seed(7).build();
  const auto strings = random_strings(40, 8, 11);

  auto first = session.update(papi::UpdateDelta::pauli(slice(strings, 0, 40)));
  ASSERT_TRUE(first.update.has_value());
  EXPECT_EQ(first.update->vertices_inserted, 40u);

  auto empty = session.update(papi::UpdateDelta::pauli(pp::PauliSet()));
  ASSERT_TRUE(empty.update.has_value());
  EXPECT_EQ(empty.update->vertices_inserted, 0u);
  EXPECT_EQ(empty.update->fresh_colors, 0u);
  EXPECT_EQ(empty.result.colors, first.result.colors);
}

TEST(IncrementalUpdate, DeltaBeforeAnySolveBootstrapsAValidColoring) {
  auto session = papi::SessionBuilder().seed(3).build();
  const auto strings = random_strings(64, 10, 23);
  const pp::PauliSet set = slice(strings, 0, 64);

  auto report = session.update(papi::UpdateDelta::pauli(set));
  ASSERT_EQ(report.result.colors.size(), set.size());
  const pg::ComplementOracle oracle(set);
  EXPECT_TRUE(picasso::coloring::is_valid_coloring_oracle(
      oracle, report.result.colors));
  EXPECT_TRUE(session.has_incremental_state());
  EXPECT_EQ(report.plan.strategy, papi::ExecutionStrategy::Fused);
}

TEST(IncrementalUpdate, DuplicateRecordsGetDistinctColors) {
  // Identical strings commute, so in the anticommutation-complement graph
  // they conflict: every duplicate must land in its own color class.
  auto session = papi::SessionBuilder().seed(5).build();
  const auto strings = random_strings(1, 6, 99);
  std::vector<pp::PauliString> dupes(4, strings[0]);

  auto report = session.update(papi::UpdateDelta::pauli(pp::PauliSet(dupes)));
  ASSERT_EQ(report.result.colors.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_NE(report.result.colors[i], report.result.colors[j]);
    }
  }
  EXPECT_EQ(report.update->num_colors, 4u);
}

TEST(IncrementalUpdate, SplitUpdatesMatchOneShot) {
  const auto strings = random_strings(90, 10, 41);

  auto one_shot = papi::SessionBuilder().seed(9).build();
  auto whole = one_shot.update(papi::UpdateDelta::pauli(slice(strings, 0, 90)));

  auto split = papi::SessionBuilder().seed(9).build();
  split.update(papi::UpdateDelta::pauli(slice(strings, 0, 30)));
  split.update(papi::UpdateDelta::pauli(slice(strings, 30, 31)));
  auto last = split.update(papi::UpdateDelta::pauli(slice(strings, 31, 90)));

  EXPECT_EQ(last.result.colors, whole.result.colors);
}

TEST(IncrementalUpdate, ExtendsASolveIncrementalBaseline) {
  const auto strings = random_strings(80, 10, 57);
  const pp::PauliSet base = slice(strings, 0, 50);

  // Recoloring relocates old vertices by design, so prefix stability only
  // holds with relocation disabled (and escalation off, its default).
  auto session = papi::SessionBuilder()
                     .seed(2)
                     .update_params({.max_recolor = 0, .max_new_colors = 0})
                     .build();
  auto baseline = session.solve_incremental(papi::Problem::pauli(base));
  EXPECT_EQ(baseline.result.colors.size(), 50u);
  EXPECT_TRUE(session.has_incremental_state());

  auto updated = session.update(papi::UpdateDelta::pauli(slice(strings, 50, 80)));
  ASSERT_EQ(updated.result.colors.size(), 80u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(updated.result.colors[i], baseline.result.colors[i]);
  }
  const pp::PauliSet all = slice(strings, 0, 80);
  const pg::ComplementOracle oracle(all);
  EXPECT_TRUE(picasso::coloring::is_valid_coloring_oracle(
      oracle, updated.result.colors));
}

// --- Cancellation ------------------------------------------------------------

TEST(IncrementalUpdate, CancelledUpdateStaysConsistentAndReUpdatable) {
  const auto strings = random_strings(120, 10, 77);

  // Reference: the same sequence, uninterrupted.
  auto reference = papi::SessionBuilder().seed(4).build();
  auto expected =
      reference.update(papi::UpdateDelta::pauli(slice(strings, 0, 120)));

  auto session = papi::SessionBuilder().seed(4).build();
  session.update(papi::UpdateDelta::pauli(slice(strings, 0, 40)));

  pcore::StopSource stop;
  std::atomic<int> insertions{0};
  papi::SolveOptions options;
  options.stop = stop.token();
  options.progress = [&](const pcore::ProgressEvent& event) {
    if (event.stage == pcore::ProgressStage::VertexInserted &&
        ++insertions == 25) {
      stop.request_stop();
    }
  };
  EXPECT_THROW(
      session.update(papi::UpdateDelta::pauli(slice(strings, 40, 120)),
                     options),
      pcore::SolveCancelled);

  // The delta was ingested before coloring began: the state holds all 120
  // records, with the uncolored backlog marked kUncolored.
  const pcore::FusedState* state = session.incremental_state();
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->num_vertices(), 120u);
  EXPECT_EQ(state->colored_vertices(), 65u);  // 40 + 25 before the stop won
  EXPECT_EQ(state->colors()[70], pcore::FusedState::kUncolored);

  // An empty follow-up update colors the backlog; the outcome matches the
  // uninterrupted run bit for bit.
  auto resumed = session.update(papi::UpdateDelta::pauli(pp::PauliSet()));
  EXPECT_EQ(resumed.update->vertices_inserted, 55u);
  EXPECT_EQ(resumed.result.colors, expected.result.colors);
}

// --- Budgeted (spilled) states ----------------------------------------------

TEST(IncrementalUpdate, BudgetedSpillGrowsAcrossUpdatesAndMatchesInMemory) {
  const auto strings = random_strings(100, 12, 131);

  auto plain = papi::SessionBuilder().seed(6).build();
  plain.update(papi::UpdateDelta::pauli(slice(strings, 0, 60)));
  auto plain_report =
      plain.update(papi::UpdateDelta::pauli(slice(strings, 60, 100)));

  auto budgeted =
      papi::SessionBuilder().seed(6).memory_budget(64u << 20).build();
  auto first = budgeted.update(papi::UpdateDelta::pauli(slice(strings, 0, 60)));
  const pcore::FusedState* state = budgeted.incremental_state();
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->spilled());
  const std::size_t bytes_after_first = state->spill_bytes();
  EXPECT_GT(bytes_after_first, 0u);
  EXPECT_TRUE(first.result.memory.streamed);

  auto second =
      budgeted.update(papi::UpdateDelta::pauli(slice(strings, 60, 100)));
  EXPECT_GT(state->spill_bytes(), bytes_after_first);
  EXPECT_EQ(second.result.memory.spill_bytes, state->spill_bytes());

  // Storage must not affect the coloring.
  EXPECT_EQ(second.result.colors, plain_report.result.colors);

  // reset_incremental removes the spill file.
  const std::string spill = state->spill_path();
  EXPECT_TRUE(fs::exists(spill));
  budgeted.reset_incremental();
  EXPECT_FALSE(fs::exists(spill));
}

// --- Escalation --------------------------------------------------------------

TEST(IncrementalUpdate, FreshColorPressureTriggersEscalation) {
  // Copies of one string pairwise commute => pairwise conflict: every
  // insertion needs a fresh color, recoloring can never help, and the
  // fresh-color budget trips an escalation (a full fused re-solve of the
  // prefix). The result must still be a proper coloring: all distinct.
  const auto strings = random_strings(1, 6, 7);
  std::vector<pp::PauliString> dupes(6, strings[0]);

  pcore::UpdateParams update_params;
  update_params.max_recolor = 2;
  update_params.max_new_colors = 2;
  auto session =
      papi::SessionBuilder().seed(8).update_params(update_params).build();

  session.solve_incremental(
      papi::Problem::pauli(pp::PauliSet({strings[0], strings[0]})));
  auto report = session.update(papi::UpdateDelta::pauli(pp::PauliSet(dupes)));

  ASSERT_TRUE(report.update.has_value());
  EXPECT_GE(report.update->escalations, 1u);
  ASSERT_EQ(report.result.colors.size(), 8u);
  std::vector<std::uint32_t> sorted = report.result.colors;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

// --- Shape errors ------------------------------------------------------------

TEST(IncrementalUpdate, QubitMismatchIsAnApiError) {
  auto session = papi::SessionBuilder().build();
  session.update(papi::UpdateDelta::pauli(slice(random_strings(4, 8, 1), 0, 4)));
  try {
    session.update(papi::UpdateDelta::pauli(slice(random_strings(4, 9, 2), 0, 4)));
    FAIL() << "expected ApiError";
  } catch (const papi::ApiError& e) {
    EXPECT_EQ(e.code(), papi::ErrorCode::InvalidArgument);
    EXPECT_EQ(e.field(), "delta");
  }
}

TEST(IncrementalUpdate, GraphDeltaWithoutABaselineIsAnError) {
  auto session = papi::SessionBuilder().build();
  try {
    session.update(papi::UpdateDelta::graph({pcore::GraphVertexDelta{}}));
    FAIL() << "expected ApiError";
  } catch (const papi::ApiError& e) {
    EXPECT_EQ(e.code(), papi::ErrorCode::InvalidConfiguration);
  }
}

TEST(IncrementalUpdate, MixingDeltaKindsIsAnError) {
  auto session = papi::SessionBuilder().build();
  session.update(papi::UpdateDelta::pauli(slice(random_strings(4, 8, 3), 0, 4)));
  EXPECT_THROW(
      session.update(papi::UpdateDelta::graph({pcore::GraphVertexDelta{}})),
      papi::ApiError);
}

// --- Graph-backed increments -------------------------------------------------

TEST(IncrementalUpdate, GraphDeltasExtendAnExplicitGraphBaseline) {
  const pg::CsrGraph g = pg::erdos_renyi(40, 0.2, 17);
  auto session = papi::SessionBuilder().seed(12).build();
  auto baseline = session.solve_incremental(papi::Problem::csr(g));
  ASSERT_EQ(baseline.result.colors.size(), 40u);

  // Two new vertices: one conflicting with a handful of old ones, one
  // conflicting with its immediate predecessor (the first new vertex).
  std::vector<pcore::GraphVertexDelta> delta(2);
  delta[0].conflicts = {0, 3, 7, 21};
  delta[1].conflicts = {5, 40};
  auto report = session.update(papi::UpdateDelta::graph(delta));

  ASSERT_EQ(report.result.colors.size(), 42u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(report.result.colors[i], baseline.result.colors[i]);
  }
  for (std::size_t v = 40; v < 42; ++v) {
    for (std::uint32_t nbr : delta[v - 40].conflicts) {
      EXPECT_NE(report.result.colors[v], report.result.colors[nbr]);
    }
  }
}

TEST(IncrementalUpdate, GraphDeltaConflictsMustReferenceEarlierVertices) {
  auto session = papi::SessionBuilder().build();
  session.solve_incremental(papi::Problem::csr(pg::erdos_renyi(10, 0.3, 5)));
  std::vector<pcore::GraphVertexDelta> delta(1);
  delta[0].conflicts = {10};  // the new vertex's own id
  EXPECT_THROW(session.update(papi::UpdateDelta::graph(delta)),
               papi::ApiError);
}

// --- Telemetry ---------------------------------------------------------------

TEST(IncrementalUpdate, UpdateCountersFlowIntoTelemetry) {
  auto session = papi::SessionBuilder()
                     .seed(14)
                     .telemetry(picasso::obs::TelemetryLevel::Counters)
                     .build();
  const auto strings = random_strings(50, 8, 201);
  auto report = session.update(papi::UpdateDelta::pauli(slice(strings, 0, 50)));

  ASSERT_TRUE(report.telemetry.enabled());
  const auto& counters = report.telemetry.counters;
  EXPECT_EQ(counters[picasso::obs::Counter::UpdateVerticesInserted], 50u);
  EXPECT_GT(counters[picasso::obs::Counter::UpdateBucketProbes], 0u);
  EXPECT_EQ(counters[picasso::obs::Counter::UpdateVerticesInserted],
            report.update->vertices_inserted);
  EXPECT_EQ(counters[picasso::obs::Counter::UpdateBucketProbes],
            report.update->bucket_probes);
  EXPECT_EQ(counters[picasso::obs::Counter::UpdateFreshColors],
            report.update->fresh_colors);
}

// --- ChunkedPauliReader append-segment regressions ---------------------------

TEST(ReaderAppend, ReopenedReaderSeesAppendedStrings) {
  const auto strings = random_strings(70, 9, 301);
  const pp::PauliSet base = slice(strings, 0, 40);
  const pp::PauliSet delta = slice(strings, 40, 70);
  const pp::PauliSet all = slice(strings, 0, 70);

  TempFile file("picasso_test_append_a.pset");
  pp::spill_pauli_set(base, file.path.string());
  pp::append_pauli_set(delta, file.path.string());

  // The regression: the base header still says 40 strings, and the packed
  // tail no longer sits at (file size - tail bytes). A reader must walk
  // the segment chain instead of trusting either.
  pp::ChunkedPauliReader reader(file.path.string(), 16);
  ASSERT_EQ(reader.num_strings(), 70u);
  EXPECT_TRUE(reader.has_packed_tail());

  for (std::size_t chunk = 0; chunk < reader.num_chunks(); ++chunk) {
    const pp::PauliSet loaded = reader.load_chunk(chunk);
    const pp::PackedPauliSet packed = reader.load_chunk_packed(chunk);
    const std::size_t begin = reader.chunk_begin(chunk);
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      // 3-bit words, coefficients and packed records all line up with the
      // concatenated set, including the chunk that spans the segment seam.
      for (std::size_t w = 0; w < all.words_per_string(); ++w) {
        EXPECT_EQ(loaded.encoded3(i)[w], all.encoded3(begin + i)[w]);
      }
      EXPECT_EQ(loaded.coefficients()[i], all.coefficients()[begin + i]);
      const auto* got = packed.record(i);
      const auto* want = all.packed_view().record(begin + i);
      for (std::size_t w = 0; w < 2 * packed.words(); ++w) {
        EXPECT_EQ(got[w], want[w]);
      }
    }
  }
}

TEST(ReaderAppend, LegacyBaseWithoutPackedTailStillAppends) {
  const auto strings = random_strings(30, 7, 401);
  const pp::PauliSet base = slice(strings, 0, 18);
  const pp::PauliSet delta = slice(strings, 18, 30);
  const pp::PauliSet all = slice(strings, 0, 30);

  TempFile file("picasso_test_append_legacy.pset");
  {
    std::ofstream out(file.path, std::ios::binary);
    base.save_binary(out);  // no packed tail
  }
  pp::append_pauli_set(delta, file.path.string());

  pp::ChunkedPauliReader reader(file.path.string(), 8);
  ASSERT_EQ(reader.num_strings(), 30u);
  EXPECT_FALSE(reader.has_packed_tail());  // base lacks it => decode path

  for (std::size_t chunk = 0; chunk < reader.num_chunks(); ++chunk) {
    const pp::PackedPauliSet packed = reader.load_chunk_packed(chunk);
    const std::size_t begin = reader.chunk_begin(chunk);
    for (std::size_t i = 0; i < packed.size(); ++i) {
      const auto* got = packed.record(i);
      const auto* want = all.packed_view().record(begin + i);
      for (std::size_t w = 0; w < 2 * packed.words(); ++w) {
        EXPECT_EQ(got[w], want[w]);
      }
    }
  }
}

TEST(ReaderAppend, ChainedAppendsAndMaxStringsClamp) {
  const auto strings = random_strings(50, 8, 501);
  TempFile file("picasso_test_append_chain.pset");
  pp::spill_pauli_set(slice(strings, 0, 20), file.path.string());
  pp::append_pauli_set(slice(strings, 20, 35), file.path.string());
  pp::append_pauli_set(slice(strings, 35, 50), file.path.string());

  pp::ChunkedPauliReader full(file.path.string(), 64);
  EXPECT_EQ(full.num_strings(), 50u);

  // max_strings clamps to the escalation prefix, mid-segment included.
  pp::ChunkedPauliReader prefix(file.path.string(), 64, 27);
  ASSERT_EQ(prefix.num_strings(), 27u);
  const pp::PauliSet loaded = prefix.load_chunk(0);
  const pp::PauliSet want = slice(strings, 0, 27);
  ASSERT_EQ(loaded.size(), 27u);
  for (std::size_t i = 0; i < 27; ++i) {
    for (std::size_t w = 0; w < want.words_per_string(); ++w) {
      EXPECT_EQ(loaded.encoded3(i)[w], want.encoded3(i)[w]);
    }
  }
}

TEST(ReaderAppend, TrailingGarbageIsRejected) {
  const auto strings = random_strings(10, 6, 601);
  TempFile file("picasso_test_append_garbage.pset");
  pp::spill_pauli_set(slice(strings, 0, 10), file.path.string());
  {
    std::ofstream out(file.path, std::ios::binary | std::ios::app);
    const char junk[] = "not-a-segment";
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW(pp::ChunkedPauliReader(file.path.string(), 4),
               std::runtime_error);
}

TEST(ReaderAppend, AppendToMissingOrForeignFileThrows) {
  const auto strings = random_strings(4, 6, 701);
  EXPECT_THROW(pp::append_pauli_set(slice(strings, 0, 4),
                                    "/nonexistent/picasso_nope.pset"),
               std::runtime_error);

  TempFile file("picasso_test_append_foreign.pset");
  {
    std::ofstream out(file.path, std::ios::binary);
    const char junk[] = "PAULINOT";
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW(pp::append_pauli_set(slice(strings, 0, 4), file.path.string()),
               std::runtime_error);
}
