// The probabilistic sketch tier (core/sketch.hpp + the sketch branch of
// core/solve_fused.hpp + ExecutionStrategy::Sketch):
//   - the Pauli support-bloom prefilter must leave colorings bit-identical
//     to the exact fused engine across schemes, backends and thread counts
//     (it only dismisses provably-conflicting batches);
//   - its obs counters are deterministic and consistent;
//   - the fully-hashed edge oracle admits no false negatives, so colorings
//     computed against it stay valid on the exact graph, with the measured
//     false-conflict rate surfaced;
//   - the incremental engine replays to the same colors with the folded
//     signature sketch on;
//   - the packed spill color sidecar round-trips.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "api/error.hpp"
#include "api/session.hpp"
#include "coloring/verify.hpp"
#include "core/incremental.hpp"
#include "core/picasso.hpp"
#include "core/sketch.hpp"
#include "core/solve_fused.hpp"
#include "graph/graph_gen.hpp"
#include "graph/oracles.hpp"
#include "pauli/pauli_set.hpp"
#include "pauli/pauli_stream.hpp"
#include "util/packed_colors.hpp"
#include "util/rng.hpp"

namespace papi = picasso::api;
namespace pcore = picasso::core;
namespace pcol = picasso::coloring;
namespace pg = picasso::graph;
namespace pobs = picasso::obs;
namespace pp = picasso::pauli;
namespace pu = picasso::util;
namespace fs = std::filesystem;

namespace {

pp::PauliSet random_set(std::size_t n, std::size_t qubits,
                        std::uint64_t seed) {
  pu::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  strings.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(std::move(s));
  }
  return pp::PauliSet(strings);
}

/// Sparse strings (a couple of non-identity sites over many qubits): most
/// supports are disjoint, so the support blooms get to dismiss a lot —
/// the workload where the sketch tier actually fires.
pp::PauliSet sparse_set(std::size_t n, std::size_t qubits,
                        std::uint64_t seed) {
  pu::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  strings.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pp::PauliString s(qubits);
    const std::size_t sites = 1 + rng.bounded(2);
    for (std::size_t k = 0; k < sites; ++k) {
      s.set_op(rng.bounded(qubits),
               static_cast<pp::PauliOp>(1 + rng.bounded(3)));
    }
    strings.push_back(std::move(s));
  }
  return pp::PauliSet(strings);
}

}  // namespace

// The prefilter's whole contract: sketch on == sketch off, bit for bit,
// for every scheme and backend (the sketch only answers when the answer is
// provably "all conflict").
TEST(SketchPrefilter, BitIdenticalToExactFused) {
  const pcore::ConflictColoringScheme schemes[] = {
      pcore::ConflictColoringScheme::DynamicBucket,
      pcore::ConflictColoringScheme::DynamicHeap,
      pcore::ConflictColoringScheme::StaticLargestFirst,
  };
  const pcore::PauliBackend backends[] = {pcore::PauliBackend::Scalar,
                                          pcore::PauliBackend::Packed};
  for (std::uint64_t c = 0; c < 3; ++c) {
    const auto set = c == 0 ? sparse_set(160, 64, 7 + c)
                            : random_set(120, 10 + 8 * c, 7 + c);
    for (const auto scheme : schemes) {
      for (const auto backend : backends) {
        pcore::PicassoParams params;
        params.seed = 31 + c;
        params.conflict_scheme = scheme;
        params.pauli_backend = backend;
        const auto exact = pcore::solve_pauli_fused(set, params);

        params.sketch_prefilter = true;
        const auto sketched = pcore::solve_pauli_fused(set, params);
        const std::string key = std::string("scheme=") +
                                pcore::to_string(scheme) + " backend=" +
                                pcore::to_string(backend) + " case=" +
                                std::to_string(c);
        ASSERT_EQ(sketched.colors, exact.colors) << key;
        ASSERT_EQ(sketched.num_colors, exact.num_colors) << key;
      }
    }
  }
}

// Pinned bloom widths (params.sketch_words) must not change colorings
// either — any width only weakens or strengthens the dismissal rate.
TEST(SketchPrefilter, AnyBloomWidthSameColoring) {
  const auto set = sparse_set(140, 96, 41);
  pcore::PicassoParams params;
  params.seed = 5;
  const auto exact = pcore::solve_pauli_fused(set, params);
  for (const std::size_t words : {1u, 2u, 3u, 64u}) {
    params.sketch_prefilter = true;
    params.sketch_words = words;
    const auto sketched = pcore::solve_pauli_fused(set, params);
    ASSERT_EQ(sketched.colors, exact.colors) << "words=" << words;
  }
}

// Counters: probes fire on a disjoint-rich workload, hits bound above by
// probes, and all three totals are independent of the thread count (they
// are counted in the serial scheme body).
TEST(SketchPrefilter, CountersFireAndAreThreadCountInvariant) {
  const auto set = sparse_set(300, 128, 99);
  std::uint64_t ref_probes = 0, ref_hits = 0, ref_fps = 0;
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    pcore::PicassoParams params;
    params.seed = 17;
    params.sketch_prefilter = true;
    params.runtime.num_threads = threads;
    const auto report = papi::SessionBuilder()
                            .params(params)
                            .strategy(papi::ExecutionStrategy::Fused)
                            .telemetry(pobs::TelemetryLevel::Counters)
                            .build()
                            .solve(papi::Problem::pauli(set));
    const auto& totals = report.telemetry.counters;
    const std::uint64_t probes = totals[pobs::Counter::SketchProbes];
    const std::uint64_t hits = totals[pobs::Counter::SketchHits];
    const std::uint64_t fps = totals[pobs::Counter::SketchFalsePositives];
    ASSERT_GT(probes, 0u);
    ASSERT_GT(hits, 0u);  // sparse supports: the bloom must dismiss a lot
    ASSERT_LE(hits, probes);
    ASSERT_LE(fps, probes - hits);
    if (threads == 1) {
      ref_probes = probes;
      ref_hits = hits;
      ref_fps = fps;
    } else {
      ASSERT_EQ(probes, ref_probes) << threads;
      ASSERT_EQ(hits, ref_hits) << threads;
      ASSERT_EQ(fps, ref_fps) << threads;
    }
  }
}

// Without the prefilter the sketch counters must stay silent.
TEST(SketchPrefilter, CountersSilentWhenDisabled) {
  const auto set = sparse_set(100, 64, 3);
  const auto report = papi::SessionBuilder()
                          .strategy(papi::ExecutionStrategy::Fused)
                          .telemetry(pobs::TelemetryLevel::Counters)
                          .build()
                          .solve(papi::Problem::pauli(set));
  EXPECT_EQ(report.telemetry.counters[pobs::Counter::SketchProbes], 0u);
  EXPECT_EQ(report.telemetry.counters[pobs::Counter::SketchHits], 0u);
}

// The hashed edge oracle: every real edge answers true (no false
// negatives, ever), false claims are counted, and the measured rate stays
// plausible for ~16 bits/edge (k = 2 → about 1.4%; assert an order of
// magnitude of slack).
TEST(HashedOracle, NoFalseNegativesAndMeasuredRate) {
  const auto g = pg::erdos_renyi(300, 0.08, 77);
  const pg::CsrOracle exact(g);
  pcore::PicassoParams params;
  const auto hashed = pcore::build_hashed_oracle(
      g, exact, pcore::hashed_sketch_bits(g.num_edges(), params), 123);
  std::uint64_t false_claims = 0, pairs = 0;
  for (pg::VertexId u = 0; u < g.num_vertices(); ++u) {
    for (pg::VertexId v = u + 1; v < g.num_vertices(); ++v) {
      ++pairs;
      const bool claim = hashed.edge(u, v);
      if (exact.edge(u, v)) {
        ASSERT_TRUE(claim) << u << "," << v;  // inserted edges always hit
      } else if (claim) {
        ++false_claims;
      }
    }
  }
  EXPECT_EQ(hashed.stats().probes, pairs);
  EXPECT_EQ(hashed.stats().false_conflicts, false_claims);
  EXPECT_LT(hashed.stats().false_conflict_rate(), 0.5);
  EXPECT_LT(static_cast<double>(false_claims) / static_cast<double>(pairs),
            0.15);
}

// Session-level sketch strategy, Pauli input: same colors as the Fused
// sibling (the prefilter path), and the report says a non-hashed sketch
// ran.
TEST(SketchStrategy, PauliMatchesFusedBitForBit) {
  const auto set = sparse_set(200, 80, 13);
  pcore::PicassoParams params;
  params.seed = 29;
  const auto fused = papi::SessionBuilder()
                         .params(params)
                         .strategy(papi::ExecutionStrategy::Fused)
                         .build()
                         .solve(papi::Problem::pauli(set));
  const auto sketched = papi::SessionBuilder()
                            .params(params)
                            .strategy(papi::ExecutionStrategy::Sketch)
                            .build()
                            .solve(papi::Problem::pauli(set));
  EXPECT_EQ(sketched.result.colors, fused.result.colors);
  EXPECT_EQ(sketched.result.num_colors, fused.result.num_colors);
  ASSERT_TRUE(sketched.sketch.has_value());
  EXPECT_TRUE(sketched.sketch->used);
  EXPECT_FALSE(sketched.sketch->hashed);
  EXPECT_EQ(to_string(sketched.plan.strategy), std::string("sketch"));
}

// Session-level sketch strategy, explicit graphs: the coloring must be
// valid on the *exact* graph (false conflicts only ever add colors), and
// the report carries the measured rate and filter footprint.
TEST(SketchStrategy, CsrColoringValidOnExactGraph) {
  const auto g = pg::erdos_renyi(250, 0.06, 5);
  const auto report = papi::SessionBuilder()
                          .seed(3)
                          .strategy(papi::ExecutionStrategy::Sketch)
                          .build()
                          .solve(papi::Problem::csr(g));
  EXPECT_TRUE(pcol::is_valid_coloring(g, report.result.colors));
  ASSERT_TRUE(report.sketch.has_value());
  EXPECT_TRUE(report.sketch->hashed);
  EXPECT_GT(report.sketch->probes, 0u);
  EXPECT_GT(report.sketch->sketch_bytes, 0u);
  EXPECT_GE(report.sketch->false_conflict_rate, 0.0);
  EXPECT_LE(report.sketch->false_conflict_rate, 1.0);
}

TEST(SketchStrategy, DenseColoringValidOnExactGraph) {
  const auto g = pg::erdos_renyi_dense(120, 0.15, 9);
  const auto report = papi::SessionBuilder()
                          .seed(11)
                          .strategy(papi::ExecutionStrategy::Sketch)
                          .build()
                          .solve(papi::Problem::dense(g));
  EXPECT_TRUE(pcol::is_valid_coloring(g, report.result.colors));
  ASSERT_TRUE(report.sketch.has_value());
  EXPECT_TRUE(report.sketch->hashed);
}

TEST(SketchStrategy, ParsePlanAndRejection) {
  EXPECT_EQ(papi::parse_strategy("sketch"), papi::ExecutionStrategy::Sketch);
  EXPECT_EQ(std::string(papi::to_string(papi::ExecutionStrategy::Sketch)),
            "sketch");
  try {
    papi::parse_strategy("skecth");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sketch"), std::string::npos);
  }

  // Oracle-kind problems have no enumerable edge set to hash up front.
  const auto g = pg::erdos_renyi(30, 0.2, 1);
  const pg::CsrOracle oracle(g);
  EXPECT_THROW(papi::SessionBuilder()
                   .strategy(papi::ExecutionStrategy::Sketch)
                   .build()
                   .plan(papi::Problem::oracle(oracle)),
               papi::ApiError);
}

// Incremental engine with the folded signature sketch on: the replay
// contract must keep holding — same colors as the exact-signature state,
// split-for-split.
TEST(SketchIncremental, ReplayMatchesExactSignatures) {
  const auto full = sparse_set(240, 72, 57);
  const pcore::UpdateParams update_params{.max_recolor = 8,
                                          .max_new_colors = 0};
  pcore::PicassoParams params;
  params.seed = 71;

  pcore::FusedState exact_state(params, update_params);
  params.sketch_prefilter = true;
  pcore::FusedState sketch_state(params, update_params);

  // Feed the same sequence in a few uneven chunks.
  const std::size_t splits[] = {0, 50, 51, 130, 240};
  for (std::size_t s = 0; s + 1 < 5; ++s) {
    std::vector<pp::PauliString> seg;
    for (std::size_t i = splits[s]; i < splits[s + 1]; ++i) {
      seg.push_back(full.string(i));
    }
    const pp::PauliSet delta(seg);
    exact_state.update_pauli(delta);
    sketch_state.update_pauli(delta);
    ASSERT_EQ(sketch_state.colors(), exact_state.colors())
        << "after segment " << s;
  }
  EXPECT_EQ(sketch_state.distinct_colors(), exact_state.distinct_colors());
}

// The .pset spill color sidecar: packed colors round-trip through the
// binary file, including kNoColor backlog markers.
TEST(SpillColors, RoundTrip) {
  const fs::path path =
      fs::temp_directory_path() / "picasso_sketch_colors.bin";
  fs::remove(path);
  pu::PackedColorArray colors(100, pu::PackedColorArray::kNoColor, 12);
  for (std::size_t i = 0; i < 90; ++i) {
    colors[i] = static_cast<std::uint32_t>(i % 11);
  }
  pp::write_spill_colors(path.string(), colors);
  const pu::PackedColorArray back = pp::read_spill_colors(path.string());
  EXPECT_TRUE(back == colors);
  fs::remove(path);
}
