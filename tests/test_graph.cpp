// Tests for the graph substrate: CSR and dense-bitset representations,
// generators, text I/O, and the oracle layer (including the central
// complement/anticommute duality the coloring pipeline relies on).

#include <gtest/gtest.h>

#include <sstream>

#include "graph/csr_graph.hpp"
#include "graph/dense_graph.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_io.hpp"
#include "graph/oracles.hpp"
#include "pauli/pauli_set.hpp"
#include "util/rng.hpp"

namespace pg = picasso::graph;
namespace pp = picasso::pauli;

TEST(CsrGraph, FromEdgesBuildsSortedSymmetricRows) {
  auto g = pg::CsrGraph::from_edges(4, {{1, 0}, {2, 3}, {0, 2}, {1, 0}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);  // duplicate (1,0) deduplicated
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(CsrGraph, RejectsBadInput) {
  EXPECT_THROW(pg::CsrGraph::from_edges(2, {{0, 5}}), std::invalid_argument);
  EXPECT_THROW(pg::CsrGraph::from_edges(2, {{1, 1}}), std::invalid_argument);
  EXPECT_THROW(pg::CsrGraph::from_csr({0, 5}, {0}), std::invalid_argument);
}

TEST(CsrGraph, DegreeStatistics) {
  const auto g = pg::path_graph(5);  // degrees 1,2,2,2,1
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 8.0 / 5.0);
}

TEST(CsrGraph, EmptyGraph) {
  const pg::CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DenseGraph, BasicAdjacency) {
  pg::DenseGraph g(70);  // crosses the 64-bit word boundary
  g.add_edge(0, 69);
  g.add_edge(63, 64);
  EXPECT_TRUE(g.has_edge(69, 0));
  EXPECT_TRUE(g.has_edge(64, 63));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(63), 1u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(DenseGraph, NeighborIterationIsSortedAndComplete) {
  pg::DenseGraph g(100);
  g.add_edge(5, 99);
  g.add_edge(5, 63);
  g.add_edge(5, 64);
  g.add_edge(5, 0);
  std::vector<std::uint32_t> seen;
  g.for_each_neighbor(5, [&](std::uint32_t u) { seen.push_back(u); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 63, 64, 99}));
}

TEST(DenseGraph, MaxDegree) {
  auto g = pg::complete_graph(8);
  EXPECT_EQ(g.max_degree(), 7u);
  EXPECT_EQ(g.num_edges(), 28u);
}

TEST(Generators, PathCycleBipartiteCliques) {
  EXPECT_EQ(pg::path_graph(6).num_edges(), 5u);
  EXPECT_EQ(pg::cycle_graph(6).num_edges(), 6u);
  const auto kb = pg::complete_bipartite(3, 4);
  EXPECT_EQ(kb.num_vertices(), 7u);
  EXPECT_EQ(kb.num_edges(), 12u);
  EXPECT_TRUE(kb.validate().empty());
  const auto cliques = pg::disjoint_cliques(3, 4);
  EXPECT_EQ(cliques.num_vertices(), 12u);
  EXPECT_EQ(cliques.num_edges(), 3u * 6u);
  EXPECT_FALSE(cliques.has_edge(0, 4));  // across cliques
  EXPECT_TRUE(cliques.has_edge(4, 7));   // inside second clique
}

TEST(Generators, RingLattice) {
  const auto g = pg::ring_lattice(10, 4);
  EXPECT_TRUE(g.validate().empty());
  for (pg::VertexId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, ErdosRenyiDensityIsCloseToP) {
  for (double p : {0.1, 0.5}) {
    const auto g = pg::erdos_renyi(400, p, 7);
    EXPECT_TRUE(g.validate().empty());
    const double total = 400.0 * 399.0 / 2.0;
    const double density = static_cast<double>(g.num_edges()) / total;
    EXPECT_NEAR(density, p, 0.04) << "p=" << p;
  }
}

TEST(Generators, ErdosRenyiEdgeCases) {
  EXPECT_EQ(pg::erdos_renyi(50, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(pg::erdos_renyi(10, 1.0, 1).num_edges(), 45u);
  // Deterministic per seed.
  EXPECT_EQ(pg::erdos_renyi(100, 0.3, 5).num_edges(),
            pg::erdos_renyi(100, 0.3, 5).num_edges());
}

TEST(Generators, DenseErdosRenyiMatchesDensity) {
  const auto g = pg::erdos_renyi_dense(300, 0.5, 3);
  EXPECT_TRUE(g.validate().empty());
  const double total = 300.0 * 299.0 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()) / total, 0.5, 0.04);
}

TEST(Generators, RandomGeometricIsValid) {
  const auto g = pg::random_geometric(200, 0.15, 11);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(GraphIo, WriteReadRoundTrip) {
  const auto g = pg::erdos_renyi(60, 0.2, 9);
  std::stringstream buffer;
  pg::write_edge_list(buffer, g);
  const auto back = pg::read_edge_list(buffer);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (pg::VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(back.degree(v), g.degree(v));
  }
}

TEST(GraphIo, SkipsCommentsAndRejectsGarbage) {
  std::stringstream ok("% comment\n3 2\n0 1\n# another\n1 2\n");
  const auto g = pg::read_edge_list(ok);
  EXPECT_EQ(g.num_edges(), 2u);
  std::stringstream bad("not a header\n");
  EXPECT_THROW(pg::read_edge_list(bad), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW(pg::read_edge_list(empty), std::runtime_error);
}

TEST(GraphIo, MatrixMarketRoundTrip) {
  const auto g = pg::rmat(120, 800, 0.57, 0.19, 0.19, 11);
  std::stringstream buffer;
  pg::write_matrix_market(buffer, g);
  const auto back = pg::read_matrix_market(buffer);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (pg::VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(back.degree(v), g.degree(v));
  }
}

TEST(GraphIo, MatrixMarketParsesGeneralSymmetryWeightsAndLoops) {
  // A 'general' file listing both directions, with weights, comments, and a
  // self loop: loads as the simple undirected triangle.
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 7\n"
      "1 2 0.5\n"
      "2 1 0.5\n"
      "2 3 -1\n"
      "3 2 -1\n"
      "1 3 2.25\n"
      "3 1 2.25\n"
      "2 2 9\n");
  const auto g = pg::read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(GraphIo, MatrixMarketRejectsBadInput) {
  std::stringstream dense_banner(
      "%%MatrixMarket matrix array real general\n2 2\n1\n0\n0\n1\n");
  EXPECT_THROW(pg::read_matrix_market(dense_banner), std::runtime_error);
  std::stringstream out_of_range(
      "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n3 1\n");
  EXPECT_THROW(pg::read_matrix_market(out_of_range), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW(pg::read_matrix_market(empty), std::runtime_error);
  // Dimensions beyond 32-bit vertex ids must fail loudly, not wrap.
  std::stringstream huge(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "4294967299 1 2\n1 1\n");
  EXPECT_THROW(pg::read_matrix_market(huge), std::runtime_error);
}

TEST(GraphIo, MatrixMarketPathDetection) {
  EXPECT_TRUE(pg::is_matrix_market_path("foo/bar.mtx"));
  EXPECT_FALSE(pg::is_matrix_market_path("foo/bar.el"));
  EXPECT_FALSE(pg::is_matrix_market_path("mtx"));
}

TEST(Oracles, CsrAndDenseOraclesMatchTheirGraphs) {
  const auto csr = pg::erdos_renyi(80, 0.3, 21);
  const pg::CsrOracle co(csr);
  EXPECT_EQ(co.num_vertices(), 80u);
  auto dense = pg::erdos_renyi_dense(80, 0.3, 21);
  const pg::DenseOracle dor(dense);
  for (pg::VertexId u = 0; u < 80; ++u) {
    for (pg::VertexId v = 0; v < 80; ++v) {
      EXPECT_EQ(co.edge(u, v), csr.has_edge(u, v));
      EXPECT_EQ(dor.edge(u, v), dense.has_edge(u, v));
    }
  }
}

TEST(Oracles, ComplementAndAnticommuteAreExactDuals) {
  // For u != v exactly one of the two oracles reports an edge.
  picasso::util::Xoshiro256 rng(13);
  std::vector<pp::PauliString> strings;
  for (int i = 0; i < 60; ++i) {
    pp::PauliString s(6);
    for (std::size_t q = 0; q < 6; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(s);
  }
  const pp::PauliSet set(strings);
  const pg::AnticommuteOracle anti(set);
  const pg::ComplementOracle compl_oracle(set);
  for (pg::VertexId u = 0; u < set.size(); ++u) {
    EXPECT_FALSE(compl_oracle.edge(u, u));
    EXPECT_FALSE(anti.edge(u, u));
    for (pg::VertexId v = 0; v < set.size(); ++v) {
      if (u == v) continue;
      EXPECT_NE(anti.edge(u, v), compl_oracle.edge(u, v));
    }
  }
}

TEST(Oracles, MaterialiseDenseAndCsrAgree) {
  const auto set = pp::PauliSet([] {
    std::vector<pp::PauliString> s;
    picasso::util::Xoshiro256 rng(3);
    for (int i = 0; i < 40; ++i) {
      pp::PauliString str(5);
      for (std::size_t q = 0; q < 5; ++q) {
        str.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
      }
      s.push_back(str);
    }
    return s;
  }());
  const pg::ComplementOracle oracle(set);
  const auto dense = pg::materialize_dense(oracle);
  const auto csr = pg::materialize_csr(oracle);
  EXPECT_TRUE(csr.validate().empty());
  EXPECT_EQ(dense.num_edges(), csr.num_edges());
  EXPECT_EQ(dense.num_edges(), pg::count_edges(oracle));
  for (pg::VertexId u = 0; u < oracle.num_vertices(); ++u) {
    for (pg::VertexId v = 0; v < oracle.num_vertices(); ++v) {
      EXPECT_EQ(dense.has_edge(u, v), csr.has_edge(u, v));
      if (u != v) {
        EXPECT_EQ(dense.has_edge(u, v), oracle.edge(u, v));
      }
    }
  }
}

TEST(Oracles, LogicalBytesScaleWithRepresentation) {
  const auto csr = pg::erdos_renyi(100, 0.5, 2);
  pg::DenseGraph dense(100);
  EXPECT_GT(csr.logical_bytes(), 0u);
  EXPECT_GT(dense.logical_bytes(), 0u);
  // At 50% density CSR spends far more than n^2/8 bits.
  EXPECT_GT(csr.logical_bytes(), dense.logical_bytes());
}
