// Differential pinning of the session front-end against the legacy
// picasso_color_* surface: for equal parameters, Session::solve must
// produce bit-identical colorings (and, where applicable, identical
// telemetry and shard stats) to every deprecated free function it
// replaces — in-memory, generic-oracle, semi-streaming, budgeted
// streaming, chunked, and multi-device paths alike. This is the contract
// that lets call sites migrate (and the shims eventually retire) without
// any behavioral audit.

// This suite intentionally exercises the deprecated entry points.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "api/session.hpp"
#include "core/multi_device.hpp"
#include "core/streaming.hpp"
#include "graph/graph_gen.hpp"
#include "graph/oracles.hpp"
#include "pauli/pauli_stream.hpp"
#include "util/rng.hpp"

namespace papi = picasso::api;
namespace pcore = picasso::core;
namespace pg = picasso::graph;
namespace pp = picasso::pauli;
namespace fs = std::filesystem;

namespace {

pp::PauliSet random_set(std::size_t count, std::size_t qubits,
                        std::uint64_t seed) {
  picasso::util::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  for (std::size_t i = 0; i < count; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(s);
  }
  return pp::PauliSet(strings);
}

pcore::PicassoParams test_params(std::uint64_t seed) {
  pcore::PicassoParams params;
  params.palette_percent = 12.5;
  params.alpha = 2.0;
  params.seed = seed;
  return params;
}

}  // namespace

TEST(ApiDifferential, PauliMatchesLegacyAcrossBackends) {
  const auto set = random_set(250, 14, 41);
  for (auto backend :
       {pcore::PauliBackend::Auto, pcore::PauliBackend::Scalar,
        pcore::PauliBackend::Packed, pcore::PauliBackend::PackedScalar}) {
    auto params = test_params(41);
    params.pauli_backend = backend;
    const auto legacy = pcore::picasso_color_pauli(set, params);
    const auto session = papi::Session::from_params(params)
                             .solve(papi::Problem::pauli(set));
    EXPECT_EQ(session.result.colors, legacy.colors)
        << pcore::to_string(backend);
    EXPECT_EQ(session.result.num_colors, legacy.num_colors);
    EXPECT_EQ(session.plan.strategy, papi::ExecutionStrategy::InMemory);
  }
}

TEST(ApiDifferential, CsrAndDenseMatchLegacy) {
  const auto params = test_params(43);
  const auto csr = pg::erdos_renyi(300, 0.1, 43);
  EXPECT_EQ(papi::Session::from_params(params)
                .solve(papi::Problem::csr(csr))
                .result.colors,
            pcore::picasso_color_csr(csr, params).colors);

  const auto dense = pg::erdos_renyi_dense(250, 0.5, 43);
  EXPECT_EQ(papi::Session::from_params(params)
                .solve(papi::Problem::dense(dense))
                .result.colors,
            pcore::picasso_color_dense(dense, params).colors);
}

TEST(ApiDifferential, TypeErasedOracleMatchesLegacyTemplateDriver) {
  const auto set = random_set(180, 10, 47);
  const pg::ComplementOracle oracle(set);
  const auto params = test_params(47);
  const auto legacy = pcore::picasso_color(oracle, params);
  const auto session = papi::Session::from_params(params)
                           .solve(papi::Problem::oracle(oracle));
  EXPECT_EQ(session.result.colors, legacy.colors);
}

TEST(ApiDifferential, EdgeStreamMatchesLegacyStreamDriver) {
  const auto g = pg::erdos_renyi(280, 0.08, 53);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (pg::VertexId u = 0; u < g.num_vertices(); ++u) {
    for (pg::VertexId v : g.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  const pcore::VectorEdgeStream stream(std::move(edges));
  const auto params = test_params(53);
  const auto legacy =
      pcore::picasso_color_stream(g.num_vertices(), stream, params);
  const auto session =
      papi::Session::from_params(params)
          .solve(papi::Problem::edge_stream(g.num_vertices(), stream));
  EXPECT_EQ(session.result.colors, legacy.colors);
  EXPECT_EQ(session.plan.strategy, papi::ExecutionStrategy::SemiStreaming);
  // And both match the oracle driver on the same graph.
  EXPECT_EQ(session.result.colors,
            papi::Session::from_params(params)
                .solve(papi::Problem::csr(g))
                .result.colors);
}

TEST(ApiDifferential, BudgetedStreamingMatchesLegacyUnderRandomBudgets) {
  const auto set = random_set(350, 16, 59);
  for (std::uint64_t seed : {1u, 2u}) {
    auto params = test_params(seed);
    // Budget tight enough that both paths actually stream.
    params.memory_budget_bytes = set.logical_bytes();
    pcore::StreamingOptions options;
    options.chunk_strings = seed == 1 ? 0 : 64;  // derived and explicit
    const auto legacy =
        pcore::picasso_color_pauli_budgeted(set, params, options);
    const auto session = papi::SessionBuilder()
                             .params(params)
                             .streaming(options)
                             .build()
                             .solve(papi::Problem::pauli(set));
    ASSERT_TRUE(legacy.memory.streamed);
    // A budget this tight escalates Auto to the fused streaming engine
    // (the projected conflict CSR would blow the cap); the legacy shim
    // stays pinned to the materialized engine, and the two remain
    // bit-identical with the same chunk derivation.
    EXPECT_EQ(session.plan.strategy, papi::ExecutionStrategy::Fused);
    ASSERT_TRUE(session.result.memory.streamed);
    EXPECT_EQ(session.result.colors, legacy.colors);
    EXPECT_EQ(session.result.memory.num_chunks, legacy.memory.num_chunks);
    // The in-memory driver agrees too (the repo-wide invariant).
    EXPECT_EQ(session.result.colors,
              papi::Session::from_params(test_params(seed))
                  .solve(papi::Problem::pauli(set))
                  .result.colors);
  }
}

TEST(ApiDifferential, PauliShimNeverStreamsEvenUnderTightBudget) {
  // Historically picasso_color_pauli treated the memory budget as
  // telemetry only — it never spilled to disk. The shim must preserve
  // that; streaming stays opt-in via picasso_color_pauli_budgeted.
  const auto set = random_set(200, 14, 79);
  auto params = test_params(79);
  params.memory_budget_bytes = 1 << 10;  // far below the encoded input
  const auto legacy = pcore::picasso_color_pauli(set, params);
  EXPECT_FALSE(legacy.memory.streamed);
  EXPECT_EQ(legacy.memory.budget_bytes, std::size_t{1} << 10);
  // Same colors as the unbudgeted run (budget never alters the coloring).
  EXPECT_EQ(legacy.colors,
            papi::Session::from_params(test_params(79))
                .solve(papi::Problem::pauli(set))
                .result.colors);
}

TEST(ApiDifferential, BudgetedFallbackToInMemoryMatchesLegacy) {
  // No budget, no chunking: the legacy budgeted entry point falls back to
  // the in-memory driver; Auto planning must do the same.
  const auto set = random_set(120, 10, 61);
  const auto params = test_params(61);
  const auto legacy = pcore::picasso_color_pauli_budgeted(set, params);
  const auto session =
      papi::Session::from_params(params).solve(papi::Problem::pauli(set));
  EXPECT_EQ(session.plan.strategy, papi::ExecutionStrategy::InMemory);
  EXPECT_FALSE(legacy.memory.streamed);
  EXPECT_EQ(session.result.colors, legacy.colors);
}

TEST(ApiDifferential, ChunkedReaderAndSpillFileMatchLegacy) {
  const auto set = random_set(200, 12, 67);
  const auto dir = fs::temp_directory_path() / "picasso_api_diff";
  fs::create_directories(dir);
  const auto spill = (dir / "diff.pset").string();
  pp::spill_pauli_set(set, spill);

  const auto params = test_params(67);
  const pp::ChunkedPauliReader reader(spill, 48);
  const auto legacy = pcore::picasso_color_pauli_chunked(reader, params);

  const auto via_reader = papi::Session::from_params(params)
                              .solve(papi::Problem::spill_reader(reader));
  EXPECT_EQ(via_reader.result.colors, legacy.colors);

  pcore::StreamingOptions options;
  options.chunk_strings = 48;
  const auto via_file = papi::SessionBuilder()
                            .params(params)
                            .streaming(options)
                            .build()
                            .solve(papi::Problem::pauli_spill(spill));
  EXPECT_EQ(via_file.result.colors, legacy.colors);
  EXPECT_EQ(via_file.plan.chunk_strings, 48u);

  fs::remove_all(dir);
}

TEST(ApiDifferential, MultiDeviceMatchesLegacyShardsAndColoring) {
  const auto g = pg::erdos_renyi_dense(220, 0.5, 71);
  const pg::DenseOracle oracle(g);
  const auto params = test_params(71);
  pcore::MultiDeviceConfig config;
  config.num_devices = 4;
  config.device_capacity_bytes = 64u << 20;
  const auto legacy = pcore::picasso_color_multi_device(oracle, params, config);

  const auto session = papi::SessionBuilder()
                           .params(params)
                           .devices(4, 64u << 20)
                           .build()
                           .solve(papi::Problem::dense(g));
  EXPECT_EQ(session.plan.strategy, papi::ExecutionStrategy::MultiDevice);
  EXPECT_EQ(session.result.colors, legacy.coloring.colors);
  ASSERT_EQ(session.devices.size(), legacy.devices.size());
  for (std::size_t d = 0; d < session.devices.size(); ++d) {
    EXPECT_EQ(session.devices[d].edges, legacy.devices[d].edges) << d;
    EXPECT_EQ(session.devices[d].peak_bytes, legacy.devices[d].peak_bytes)
        << d;
  }
  EXPECT_EQ(session.total_shard_edges(), legacy.total_edges());
}

TEST(ApiDifferential, PauliMultiDeviceMatchesLegacyOracleChoice) {
  // The Pauli multi-device path picks its oracle from the backend exactly
  // like solve_pauli; pin it against the legacy call with that oracle.
  const auto set = random_set(160, 12, 73);
  const auto params = test_params(73);
  pcore::MultiDeviceConfig config;
  config.num_devices = 2;
  config.device_capacity_bytes = 64u << 20;
  const pg::PackedComplementOracle oracle(set.packed_view());
  const auto legacy = pcore::picasso_color_multi_device(oracle, params, config);
  const auto session = papi::SessionBuilder()
                           .params(params)
                           .devices(2, 64u << 20)
                           .build()
                           .solve(papi::Problem::pauli(set));
  EXPECT_EQ(session.result.colors, legacy.coloring.colors);
}
