// Cross-module integration tests: the full quantum workflow (molecule ->
// Jordan-Wigner -> Pauli set -> Picasso -> unitary partition), memory-story
// sanity (Picasso's footprint vs explicit representations), and agreement
// between all execution paths on a real dataset.

#include <gtest/gtest.h>

#include "api/session.hpp"
#include "coloring/greedy.hpp"
#include "coloring/verify.hpp"
#include "core/clique_partition.hpp"
#include "core/picasso.hpp"
#include "graph/oracles.hpp"
#include "pauli/datasets.hpp"
#include "pauli/molecule.hpp"

namespace pp = picasso::pauli;
namespace pg = picasso::graph;
namespace pc = picasso::coloring;
namespace pcore = picasso::core;
namespace papi = picasso::api;

namespace {

const pp::PauliSet& h4_set() {
  static const pp::PauliSet set =
      pp::pauli_set_from_operator(pp::molecular_hamiltonian(
          {4, pp::Geometry::Chain1D, pp::Basis::STO3G, 1.4}));
  return set;
}

}  // namespace

TEST(Integration, FullQuantumWorkflowProducesVerifiedPartition) {
  const auto& set = h4_set();
  ASSERT_GT(set.size(), 100u);

  pcore::PicassoParams params;
  params.palette_percent = 12.5;
  params.alpha = 2.0;
  params.seed = 1;
  const auto partition = pcore::partition_pauli_strings(set, params);

  const std::string violation = pcore::verify_partition(set, partition.groups);
  EXPECT_TRUE(violation.empty()) << violation;
  EXPECT_GT(partition.compression_ratio(), 2.0)
      << "grouping should compress the Pauli set substantially";
  EXPECT_EQ(partition.num_groups(), partition.coloring.num_colors);
}

TEST(Integration, PicassoMatchesExplicitGraphColoringValidity) {
  // Color through the implicit oracle, then validate against an explicitly
  // materialised complement graph — the two worlds must agree.
  const auto& set = h4_set();
  const pg::ComplementOracle oracle(set);
  const auto dense = pg::materialize_dense(oracle);

  const auto r = papi::Session::from_params({}).solve(papi::Problem::pauli(set)).result;
  EXPECT_TRUE(pc::is_valid_coloring(dense, r.colors));
  EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors));
}

TEST(Integration, AllExecutionPathsProduceTheSameColoring) {
  const auto& set = h4_set();
  pcore::PicassoParams params;
  params.seed = 5;

  params.kernel = pcore::ConflictKernel::Indexed;
  const auto indexed = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;
  params.kernel = pcore::ConflictKernel::Reference;
  const auto reference = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;
  EXPECT_EQ(indexed.colors, reference.colors);

  picasso::device::DeviceContext ctx(512u << 20);
  params.device = &ctx;
  params.kernel = pcore::ConflictKernel::Indexed;
  const auto device = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;
  EXPECT_EQ(indexed.colors, device.colors);
}

TEST(Integration, PicassoPeakMemoryBeatsExplicitCsr) {
  // The paper's Table IV story: the baselines must hold the whole graph
  // (CSR at ~50% density), Picasso only per-iteration conflict structures.
  const auto& set = h4_set();
  const pg::ComplementOracle oracle(set);
  const auto csr = pg::materialize_csr(oracle);

  const auto r = papi::Session::from_params({}).solve(papi::Problem::pauli(set)).result;
  EXPECT_LT(r.peak_logical_bytes, csr.logical_bytes())
      << "Picasso peak " << r.peak_logical_bytes << " vs CSR "
      << csr.logical_bytes();
}

TEST(Integration, PicassoQualityIsWithinRangeOfGreedyBaselines) {
  // Aggressive Picasso should land within ~25% of the best sequential
  // greedy ordering on a real (small) molecule — Table III's shape.
  const auto& set = h4_set();
  const pg::ComplementOracle oracle(set);
  const auto dense = pg::materialize_dense(oracle);

  std::uint32_t best_greedy = 0xffffffffu;
  for (auto kind : {pc::OrderingKind::LargestFirst, pc::OrderingKind::SmallestLast,
                    pc::OrderingKind::DynamicLargestFirst,
                    pc::OrderingKind::IncidenceDegree}) {
    best_greedy = std::min(best_greedy, pc::greedy_color(dense, kind, 1).num_colors);
  }

  pcore::PicassoParams aggressive;
  aggressive.palette_percent = 3.0;
  aggressive.alpha = 30.0;
  const auto r = papi::Session::from_params(aggressive).solve(papi::Problem::pauli(set)).result;
  EXPECT_LT(r.num_colors,
            static_cast<std::uint32_t>(1.25 * static_cast<double>(best_greedy)))
      << "picasso " << r.num_colors << " vs best greedy " << best_greedy;
}

TEST(Integration, DatasetRegistrySmallEntriesAreColorable) {
  // Every small dataset goes through the full pipeline with verification.
  for (const auto& spec : pp::datasets_in_class(pp::SizeClass::Small)) {
    if (spec.molecule.num_atoms > 4) continue;  // keep CI time bounded
    const auto& set = pp::load_dataset(spec);
    pcore::PicassoParams params;
    params.seed = 2;
    const auto r = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;
    const pg::ComplementOracle oracle(set);
    EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors)) << spec.name;
    EXPECT_LT(r.color_percent(), 50.0) << spec.name;
  }
}

TEST(Integration, HamiltonianCoefficientsFlowIntoGroups) {
  // Coefficient norms of the groups must account for all input weight:
  // sum of squared group norms == sum of squared input coefficients.
  const auto& set = h4_set();
  const auto partition = pcore::partition_pauli_strings(set, {});
  double group_weight = 0.0;
  for (const auto& g : partition.groups) {
    group_weight += g.coefficient_norm * g.coefficient_norm;
  }
  double input_weight = 0.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    input_weight += set.coefficient(i) * set.coefficient(i);
  }
  EXPECT_NEAR(group_weight, input_weight, 1e-9 * input_weight);
}
