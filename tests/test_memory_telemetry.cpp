// Unit tests for the unified memory telemetry: per-subsystem high-water
// marks, budget admission, run scoping, and the report plumbing through the
// Picasso drivers.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/session.hpp"
#include "core/picasso.hpp"
#include "graph/graph_gen.hpp"
#include "util/memory.hpp"

namespace pu = picasso::util;
namespace pcore = picasso::core;
namespace papi = picasso::api;
namespace pg = picasso::graph;

TEST(MemoryRegistry, HighWaterMarkPerSubsystemAndTotal) {
  pu::MemoryRegistry reg;
  reg.charge(pu::MemSubsystem::ConflictCsr, 100);
  reg.charge(pu::MemSubsystem::PaletteLists, 50);
  EXPECT_EQ(reg.current_bytes(), 150u);
  EXPECT_EQ(reg.peak_bytes(), 150u);

  reg.release(pu::MemSubsystem::ConflictCsr, 100);
  EXPECT_EQ(reg.current_bytes(), 50u);
  EXPECT_EQ(reg.peak_bytes(), 150u);  // the peak never decreases

  // A second, smaller spike in another subsystem must not move the peak.
  reg.charge(pu::MemSubsystem::ChunkCache, 60);
  EXPECT_EQ(reg.peak_bytes(), 150u);
  // A larger one must.
  reg.charge(pu::MemSubsystem::ChunkCache, 100);
  EXPECT_EQ(reg.peak_bytes(), 210u);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.subsystem_peak[static_cast<unsigned>(
                pu::MemSubsystem::ConflictCsr)],
            100u);
  EXPECT_EQ(snap.subsystem_peak[static_cast<unsigned>(
                pu::MemSubsystem::PaletteLists)],
            50u);
  EXPECT_EQ(snap.subsystem_peak[static_cast<unsigned>(
                pu::MemSubsystem::ChunkCache)],
            160u);
}

TEST(MemoryRegistry, BudgetAdmissionAndOverBudgetEvents) {
  pu::MemoryRegistry reg;
  reg.set_budget(100);
  EXPECT_TRUE(reg.try_charge(pu::MemSubsystem::ChunkCache, 80));
  EXPECT_EQ(reg.headroom_bytes(), 20u);
  EXPECT_FALSE(reg.try_charge(pu::MemSubsystem::ChunkCache, 30));
  EXPECT_EQ(reg.current_bytes(), 80u);  // rejected charge left no residue

  // charge() is advisory: it goes through but is counted.
  reg.charge(pu::MemSubsystem::ConflictCsr, 30);
  EXPECT_EQ(reg.snapshot().over_budget_events, 1u);
  EXPECT_EQ(reg.headroom_bytes(), 0u);
}

TEST(MemoryRegistry, UnlimitedBudgetAlwaysAdmits) {
  pu::MemoryRegistry reg;
  EXPECT_TRUE(reg.try_charge(pu::MemSubsystem::ChunkCache, 1ull << 40));
  EXPECT_EQ(reg.snapshot().over_budget_events, 0u);
}

TEST(MemoryRegistry, ResetPeaksRebasesToCurrent) {
  pu::MemoryRegistry reg;
  reg.charge(pu::MemSubsystem::Arena, 500);
  reg.release(pu::MemSubsystem::Arena, 400);
  reg.reset_peaks();
  EXPECT_EQ(reg.peak_bytes(), 100u);
  EXPECT_EQ(reg.snapshot()
                .subsystem_peak[static_cast<unsigned>(pu::MemSubsystem::Arena)],
            100u);
}

TEST(MemoryRegistry, ExternalPeakFoldsInWithoutChangingCurrent) {
  pu::MemoryRegistry reg;
  reg.charge(pu::MemSubsystem::ConflictCsr, 100);
  reg.record_external_peak(pu::MemSubsystem::Arena, 70);
  EXPECT_EQ(reg.current_bytes(), 100u);
  EXPECT_EQ(reg.peak_bytes(), 170u);  // concurrent-peak upper bound
}

TEST(MemoryRegistry, ConcurrentChargesBalance) {
  pu::MemoryRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        reg.charge(pu::MemSubsystem::Arena, 64);
        reg.release(pu::MemSubsystem::Arena, 64);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.current_bytes(), 0u);
  EXPECT_GE(reg.peak_bytes(), 64u);
  EXPECT_LE(reg.peak_bytes(), 64u * kThreads);
}

TEST(ScopedCharge, ReleasesOnDestructionAndResizesDelta) {
  pu::MemoryRegistry reg;
  {
    pu::ScopedCharge charge(pu::MemSubsystem::PaletteLists, 100, reg);
    EXPECT_EQ(reg.current_bytes(), 100u);
    charge.resize(250);
    EXPECT_EQ(reg.current_bytes(), 250u);
    charge.resize(40);
    EXPECT_EQ(reg.current_bytes(), 40u);
  }
  EXPECT_EQ(reg.current_bytes(), 0u);
  EXPECT_EQ(reg.peak_bytes(), 250u);
}

TEST(MemoryRunScope, OutermostScopeOwnsBudgetAndPeaks) {
  pu::MemoryRegistry reg;
  reg.charge(pu::MemSubsystem::PauliInput, 10);
  {
    pu::MemoryRunScope outer(1000, reg);
    EXPECT_TRUE(outer.outermost());
    EXPECT_EQ(reg.budget_bytes(), 1000u);
    EXPECT_EQ(reg.peak_bytes(), 10u);  // rebased to current
    reg.charge(pu::MemSubsystem::ConflictCsr, 500);
    {
      pu::MemoryRunScope inner(7, reg);  // nested: must not disturb anything
      EXPECT_FALSE(inner.outermost());
      EXPECT_EQ(reg.budget_bytes(), 1000u);
      EXPECT_EQ(reg.peak_bytes(), 510u);
    }
    EXPECT_EQ(reg.budget_bytes(), 1000u);
  }
  EXPECT_EQ(reg.budget_bytes(), 0u);  // restored
}

TEST(MemoryReport, PicassoRunFillsSubsystemPeaks) {
  const auto g = pg::erdos_renyi_dense(400, 0.5, 3);
  pcore::PicassoParams params;
  params.seed = 5;
  params.memory_budget_bytes = 256 << 20;
  const auto r = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  EXPECT_EQ(r.memory.budget_bytes, 256u << 20);
  EXPECT_TRUE(r.memory.within_budget());
  EXPECT_GT(r.memory.peak_tracked_bytes, 0u);
  EXPECT_GT(r.memory.peak_rss_bytes, 0u);
  const auto lists_peak = r.memory.subsystem_peak[static_cast<unsigned>(
      pu::MemSubsystem::PaletteLists)];
  const auto csr_peak = r.memory.subsystem_peak[static_cast<unsigned>(
      pu::MemSubsystem::ConflictCsr)];
  EXPECT_GT(lists_peak, 0u);
  EXPECT_GT(csr_peak, 0u);
  EXPECT_FALSE(r.memory.streamed);

  const auto json = r.memory.to_json();
  EXPECT_NE(json.find("\"peak_tracked_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"within_budget\":true"), std::string::npos);
  EXPECT_NE(json.find("\"palette_lists\""), std::string::npos);
  EXPECT_NE(json.find("\"fused_frontier\""), std::string::npos);
}

TEST(MemoryReport, FusedRunChargesFrontierInsteadOfCsr) {
  const auto g = pg::erdos_renyi_dense(400, 0.5, 3);
  pcore::PicassoParams params;
  params.seed = 5;
  const auto r = papi::SessionBuilder()
                     .params(params)
                     .strategy(papi::ExecutionStrategy::Fused)
                     .build()
                     .solve(papi::Problem::dense(g))
                     .result;
  EXPECT_EQ(r.memory.subsystem_peak[static_cast<unsigned>(
                pu::MemSubsystem::ConflictCsr)],
            0u);
  const auto frontier_peak = r.memory.subsystem_peak[static_cast<unsigned>(
      pu::MemSubsystem::FusedFrontier)];
  EXPECT_GT(frontier_peak, 0u);
  // The frontier's floor is the inverted index itself: (nL + P + 1) words
  // of the largest iteration.
  std::size_t index_floor = 0;
  for (const auto& it : r.iterations) {
    index_floor = std::max(
        index_floor,
        (std::size_t{it.n_active} * it.list_size + it.palette_size + 1) *
            sizeof(std::uint32_t));
  }
  EXPECT_GE(frontier_peak, index_floor);
}

TEST(MemoryReport, TrackedListsPeakMatchesDriverAccounting) {
  // The telemetry's palette-lists high-water mark must agree with the
  // driver's own per-iteration accounting (max over iterations of the list
  // bytes) — the HWM is measured, not estimated.
  const auto g = pg::erdos_renyi_dense(300, 0.4, 9);
  pcore::PicassoParams params;
  params.seed = 2;
  const auto r = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  std::size_t expected = 0;
  for (const auto& it : r.iterations) {
    // List entries plus the one-word-per-vertex palette signatures the
    // blocked pair-scan prefilters on.
    expected = std::max(
        expected,
        std::size_t{it.n_active} * it.list_size * sizeof(std::uint32_t) +
            std::size_t{it.n_active} * sizeof(std::uint64_t));
  }
  EXPECT_EQ(r.memory.subsystem_peak[static_cast<unsigned>(
                pu::MemSubsystem::PaletteLists)],
            expected);
}
