// Tests for the regression models behind the §VI parameter predictor:
// CART trees, random forests, ridge/lasso, the linear solver, and metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/decision_tree.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace ml = picasso::ml;

namespace {

/// y = [step(x0), 2*x1] with mild noise on a grid — separable structure a
/// tree should capture and a forest should smooth.
void make_synthetic(std::size_t n, std::uint64_t seed, ml::Matrix& x,
                    ml::Matrix& y, bool noisy = true) {
  picasso::util::Xoshiro256 rng(seed);
  x = ml::Matrix(n, 2);
  y = ml::Matrix(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    x.at(i, 0) = x0;
    x.at(i, 1) = x1;
    const double noise = noisy ? 0.01 * (rng.uniform() - 0.5) : 0.0;
    y.at(i, 0) = (x0 > 0.5 ? 1.0 : 0.0) + noise;
    y.at(i, 1) = 2.0 * x1 + noise;
  }
}

}  // namespace

TEST(Metrics, HandComputedValues) {
  const std::vector<double> yt{1.0, 2.0, 4.0};
  const std::vector<double> yp{1.1, 1.8, 4.4};
  EXPECT_NEAR(ml::mape(yt, yp), (0.1 + 0.1 + 0.1) / 3.0, 1e-12);
  EXPECT_NEAR(ml::mae(yt, yp), (0.1 + 0.2 + 0.4) / 3.0, 1e-12);
  EXPECT_NEAR(ml::rmse(yt, yp), std::sqrt((0.01 + 0.04 + 0.16) / 3.0), 1e-12);
  // R^2: mean = 7/3; ss_tot = (16+1+25)/9*... compute directly:
  double mean = 7.0 / 3.0;
  double ss_tot = 0, ss_res = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    ss_tot += (yt[i] - mean) * (yt[i] - mean);
    ss_res += (yt[i] - yp[i]) * (yt[i] - yp[i]);
  }
  EXPECT_NEAR(ml::r_squared(yt, yp), 1.0 - ss_res / ss_tot, 1e-12);
}

TEST(Metrics, PerfectPredictionScores) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(ml::mape(y, y), 0.0);
  EXPECT_DOUBLE_EQ(ml::r_squared(y, y), 1.0);
}

TEST(Metrics, MapeSkipsZeroTargets) {
  EXPECT_NEAR(ml::mape({0.0, 2.0}, {5.0, 1.0}), 0.5, 1e-12);
}

TEST(Metrics, RejectsBadInput) {
  EXPECT_THROW(ml::mape({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(ml::r_squared({}, {}), std::invalid_argument);
}

TEST(Matrix, PushRowAndAccess) {
  ml::Matrix m;
  m.push_row({1.0, 2.0});
  m.push_row({3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_THROW(m.push_row({1.0}), std::invalid_argument);
}

TEST(DecisionTree, FitsStepFunctionExactly) {
  ml::Matrix x, y;
  make_synthetic(200, 1, x, y, /*noisy=*/false);
  ml::DecisionTreeRegressor tree;
  picasso::util::Xoshiro256 rng(1);
  tree.fit(x, y, {.max_depth = 10, .min_samples_leaf = 1}, rng);
  EXPECT_TRUE(tree.trained());
  const double lo[] = {0.2, 0.5};
  const double hi[] = {0.9, 0.5};
  EXPECT_NEAR(tree.predict(lo)[0], 0.0, 1e-9);
  EXPECT_NEAR(tree.predict(hi)[0], 1.0, 1e-9);
}

TEST(DecisionTree, MultiOutputPredictions) {
  ml::Matrix x, y;
  make_synthetic(400, 2, x, y);
  ml::DecisionTreeRegressor tree;
  picasso::util::Xoshiro256 rng(2);
  tree.fit(x, y, {.max_depth = 12}, rng);
  double total_err = 0.0;
  for (double x1 : {0.1, 0.4, 0.8}) {
    const double features[] = {0.3, x1};
    total_err += std::abs(tree.predict(features)[1] - 2.0 * x1);
  }
  EXPECT_LT(total_err / 3.0, 0.15);
}

TEST(DecisionTree, DepthZeroGivesGlobalMeanLeaf) {
  ml::Matrix x(4, 1), y(4, 1);
  for (std::size_t i = 0; i < 4; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    y.at(i, 0) = static_cast<double>(i);
  }
  ml::DecisionTreeRegressor tree;
  picasso::util::Xoshiro256 rng(3);
  tree.fit(x, y, {.max_depth = 0}, rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  const double f[] = {2.0};
  EXPECT_DOUBLE_EQ(tree.predict(f)[0], 1.5);
}

TEST(DecisionTree, MinSamplesLeafIsRespected) {
  ml::Matrix x(10, 1), y(10, 1);
  for (std::size_t i = 0; i < 10; ++i) {
    x.at(i, 0) = static_cast<double>(i);
    y.at(i, 0) = i < 5 ? 0.0 : 1.0;
  }
  ml::DecisionTreeRegressor tree;
  picasso::util::Xoshiro256 rng(4);
  tree.fit(x, y, {.max_depth = 20, .min_samples_leaf = 5}, rng);
  // The only admissible split is at the 5/5 boundary: 3 nodes total.
  EXPECT_EQ(tree.num_nodes(), 3u);
}

TEST(DecisionTree, FeatureImportanceFindsTheSignal) {
  // Output depends only on feature 0; importance must concentrate there.
  ml::Matrix x(300, 3), y(300, 1);
  picasso::util::Xoshiro256 rng(5);
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t f = 0; f < 3; ++f) x.at(i, f) = rng.uniform();
    y.at(i, 0) = 3.0 * x.at(i, 0);
  }
  ml::DecisionTreeRegressor tree;
  tree.fit(x, y, {.max_depth = 8}, rng);
  const auto importance = tree.feature_importance();
  EXPECT_GT(importance[0], 0.9);
}

TEST(DecisionTree, RejectsBadShapesAndUntrainedPredict) {
  ml::DecisionTreeRegressor tree;
  picasso::util::Xoshiro256 rng(6);
  ml::Matrix x(2, 1), y(3, 1);
  EXPECT_THROW(tree.fit(x, y, {}, rng), std::invalid_argument);
  const double f[] = {0.0};
  EXPECT_THROW(tree.predict(f), std::logic_error);
}

TEST(RandomForest, BeatsGlobalMeanOnSmoothFunction) {
  ml::Matrix x, y;
  make_synthetic(500, 7, x, y);
  ml::RandomForestRegressor forest;
  forest.fit(x, y, {.num_trees = 40, .tree = {}, .seed = 7});
  EXPECT_EQ(forest.num_trees(), 40u);
  // Evaluate on fresh data.
  ml::Matrix xt, yt;
  make_synthetic(200, 8, xt, yt);
  const auto pred = forest.predict_all(xt);
  std::vector<double> truth, predicted;
  for (std::size_t i = 0; i < xt.rows(); ++i) {
    truth.push_back(yt.at(i, 1));
    predicted.push_back(pred.at(i, 1));
  }
  EXPECT_GT(ml::r_squared(truth, predicted), 0.9);
}

TEST(RandomForest, OobPredictionsAreReasonable) {
  ml::Matrix x, y;
  make_synthetic(300, 9, x, y);
  ml::RandomForestRegressor forest;
  forest.fit(x, y, {.num_trees = 30, .tree = {}, .seed = 9});
  const auto oob = forest.predict_oob(x);
  std::vector<double> truth, predicted;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    truth.push_back(y.at(i, 1));
    predicted.push_back(oob.at(i, 1));
  }
  EXPECT_GT(ml::r_squared(truth, predicted), 0.7);
  ml::Matrix wrong(10, 2);
  EXPECT_THROW(forest.predict_oob(wrong), std::invalid_argument);
}

TEST(RandomForest, DeterministicPerSeed) {
  ml::Matrix x, y;
  make_synthetic(200, 11, x, y);
  ml::RandomForestRegressor a, b;
  a.fit(x, y, {.num_trees = 10, .tree = {}, .seed = 5});
  b.fit(x, y, {.num_trees = 10, .tree = {}, .seed = 5});
  const double f[] = {0.42, 0.77};
  EXPECT_EQ(a.predict(f), b.predict(f));
}

TEST(SolveLinearSystem, KnownSolution) {
  // [2 1; 1 3] w = [5; 10] -> w = (1, 3).
  ml::Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const auto w = ml::solve_linear_system(a, {5.0, 10.0});
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  EXPECT_NEAR(w[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, RejectsSingular) {
  ml::Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  EXPECT_THROW(ml::solve_linear_system(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Ridge, RecoversLinearRelationship) {
  // y = 2 x0 - x1 + 3.
  picasso::util::Xoshiro256 rng(13);
  ml::Matrix x(200, 2), y(200, 1);
  for (std::size_t i = 0; i < 200; ++i) {
    x.at(i, 0) = rng.uniform() * 10;
    x.at(i, 1) = rng.uniform() * 10;
    y.at(i, 0) = 2.0 * x.at(i, 0) - x.at(i, 1) + 3.0;
  }
  ml::RidgeRegressor ridge(1e-6);
  ridge.fit(x, y);
  const double f[] = {4.0, 1.0};
  EXPECT_NEAR(ridge.predict(f)[0], 2.0 * 4.0 - 1.0 + 3.0, 1e-3);
}

TEST(Ridge, MultiOutput) {
  picasso::util::Xoshiro256 rng(17);
  ml::Matrix x(100, 1), y(100, 2);
  for (std::size_t i = 0; i < 100; ++i) {
    x.at(i, 0) = rng.uniform();
    y.at(i, 0) = 5.0 * x.at(i, 0);
    y.at(i, 1) = 1.0 - x.at(i, 0);
  }
  ml::RidgeRegressor ridge(1e-6);
  ridge.fit(x, y);
  const double f[] = {0.5};
  const auto p = ridge.predict(f);
  EXPECT_NEAR(p[0], 2.5, 1e-3);
  EXPECT_NEAR(p[1], 0.5, 1e-3);
}

TEST(Lasso, ZeroesOutIrrelevantFeatures) {
  // y depends on x0 only; x1, x2 are noise. Lasso should null their weights.
  picasso::util::Xoshiro256 rng(19);
  ml::Matrix x(300, 3), y(300, 1);
  for (std::size_t i = 0; i < 300; ++i) {
    for (std::size_t f = 0; f < 3; ++f) x.at(i, f) = rng.uniform();
    y.at(i, 0) = 4.0 * x.at(i, 0) + 0.001 * (rng.uniform() - 0.5);
  }
  ml::LassoRegressor lasso(0.05);
  lasso.fit(x, y);
  EXPECT_GE(lasso.zero_count(1e-6), 2u);
  const double f[] = {0.5, 0.9, 0.1};
  EXPECT_NEAR(lasso.predict(f)[0], 2.0, 0.25);
}

TEST(LinearModels, RejectUntrainedPredictAndBadShapes) {
  ml::RidgeRegressor ridge;
  ml::LassoRegressor lasso;
  const double f[] = {0.0};
  EXPECT_THROW(ridge.predict(f), std::logic_error);
  EXPECT_THROW(lasso.predict(f), std::logic_error);
  ml::Matrix x(2, 1), y(3, 1);
  EXPECT_THROW(ridge.fit(x, y), std::invalid_argument);
  EXPECT_THROW(lasso.fit(x, y), std::invalid_argument);
}
