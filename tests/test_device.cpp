// Tests for the simulated limited-memory device (§V): budget accounting,
// RAII allocations, OOM signalling, and the Algorithm-3 COO -> CSR pipeline.

#include <gtest/gtest.h>

#include "device/device_conflict.hpp"
#include "device/device_context.hpp"

namespace pd = picasso::device;

TEST(DeviceContext, ChargesAndRefunds) {
  pd::DeviceContext ctx(1000);
  EXPECT_EQ(ctx.capacity_bytes(), 1000u);
  {
    auto a = ctx.allocate(400);
    EXPECT_EQ(ctx.used_bytes(), 400u);
    EXPECT_EQ(ctx.available_bytes(), 600u);
    auto b = ctx.allocate(600);
    EXPECT_EQ(ctx.used_bytes(), 1000u);
    EXPECT_EQ(ctx.peak_bytes(), 1000u);
  }
  EXPECT_EQ(ctx.used_bytes(), 0u);
  EXPECT_EQ(ctx.peak_bytes(), 1000u);  // peak persists
  EXPECT_EQ(ctx.allocation_count(), 2u);
}

TEST(DeviceContext, ThrowsOnOverCommit) {
  pd::DeviceContext ctx(100);
  auto a = ctx.allocate(80);
  EXPECT_THROW(ctx.allocate(21), pd::DeviceOutOfMemory);
  EXPECT_EQ(ctx.oom_count(), 1u);
  // The failed allocation must not leak charge.
  EXPECT_EQ(ctx.used_bytes(), 80u);
}

TEST(DeviceContext, OomCarriesDiagnostics) {
  pd::DeviceContext ctx(10);
  try {
    auto a = ctx.allocate(25);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const pd::DeviceOutOfMemory& e) {
    EXPECT_EQ(e.requested(), 25u);
    EXPECT_EQ(e.available(), 10u);
    EXPECT_NE(std::string(e.what()).find("device out of memory"),
              std::string::npos);
  }
}

TEST(DeviceContext, MoveTransfersOwnership) {
  pd::DeviceContext ctx(100);
  pd::DeviceAllocation a = ctx.allocate(50);
  pd::DeviceAllocation b = std::move(a);
  EXPECT_EQ(ctx.used_bytes(), 50u);
  b.release();
  EXPECT_EQ(ctx.used_bytes(), 0u);
  b.release();  // double release is a no-op
  EXPECT_EQ(ctx.used_bytes(), 0u);
}

TEST(DeviceContext, ResetPeak) {
  pd::DeviceContext ctx(100);
  { auto a = ctx.allocate(90); }
  EXPECT_EQ(ctx.peak_bytes(), 90u);
  ctx.reset_peak();
  EXPECT_EQ(ctx.peak_bytes(), 0u);
}

TEST(DeviceBuffer, ChargesElementBytesAndTakes) {
  pd::DeviceContext ctx(1024);
  pd::DeviceBuffer<std::uint32_t> buf(ctx, 100);
  EXPECT_EQ(ctx.used_bytes(), 400u);
  buf[0] = 7;
  buf[99] = 9;
  EXPECT_EQ(buf.size(), 100u);
  auto host = buf.take();  // releases the charge, keeps the data
  EXPECT_EQ(ctx.used_bytes(), 0u);
  EXPECT_EQ(host[0], 7u);
  EXPECT_EQ(host[99], 9u);
}

TEST(FillCsr, ScattersAndSortsRows) {
  // Edges (0,2), (0,1), (1,2): offsets for degrees 2,2,2.
  const std::vector<std::uint64_t> offsets{0, 2, 4, 6};
  const std::uint32_t coo[] = {0, 2, 0, 1, 1, 2};
  std::vector<std::uint32_t> neighbors(6);
  pd::fill_csr(offsets, coo, 3, neighbors.data());
  EXPECT_EQ(neighbors, (std::vector<std::uint32_t>{1, 2, 0, 2, 0, 1}));
}

TEST(BuildConflictCsr, HappyPathOnDevice) {
  pd::DeviceContext ctx(1u << 20);
  const auto result = pd::build_conflict_csr(ctx, 4, 6, [](auto&& emit) {
    emit(0, 1);
    emit(1, 2);
    emit(0, 3);
  });
  EXPECT_TRUE(result.csr_built_on_device);
  EXPECT_EQ(result.num_edges, 3u);
  EXPECT_TRUE(result.graph.validate().empty());
  EXPECT_TRUE(result.graph.has_edge(2, 1));
  EXPECT_EQ(ctx.used_bytes(), 0u);
  EXPECT_GT(result.device_peak_bytes, 0u);
}

TEST(BuildConflictCsr, WorstCaseBoundsCooBuffer) {
  // With a huge budget the COO buffer is bounded by worst_case_edges, so
  // the device peak stays modest.
  pd::DeviceContext ctx(1u << 30);
  const auto result = pd::build_conflict_csr(ctx, 10, 45, [](auto&& emit) {
    for (std::uint32_t u = 0; u < 10; ++u) {
      for (std::uint32_t v = u + 1; v < 10; ++v) emit(u, v);
    }
  });
  EXPECT_EQ(result.num_edges, 45u);
  // counters (10*8) + COO (45*8) + CSR (90*4) = 800 bytes.
  EXPECT_LE(result.device_peak_bytes, 2048u);
}

TEST(BuildConflictCsr, OverflowingCooThrows) {
  // Budget only allows a COO buffer for ~2 edges; emitting 6 must throw.
  pd::DeviceContext ctx(3 * sizeof(std::uint64_t) + 2 * 8);
  EXPECT_THROW(pd::build_conflict_csr(ctx, 3, 100,
                                      [](auto&& emit) {
                                        for (int i = 0; i < 6; ++i) {
                                          emit(0, 1);
                                          emit(1, 2);
                                        }
                                      }),
               pd::DeviceOutOfMemory);
}

TEST(BuildConflictCsr, EmptyEnumeration) {
  pd::DeviceContext ctx(1u << 16);
  const auto result = pd::build_conflict_csr(ctx, 5, 10, [](auto&&) {});
  EXPECT_EQ(result.num_edges, 0u);
  EXPECT_EQ(result.graph.num_vertices(), 5u);
  EXPECT_TRUE(result.csr_built_on_device);
}
