// The public session front-end: builder validation (structured ApiErrors),
// plan selection (budget forces streaming, a device list forces sharding,
// spill/stream problems pick their pipelines), cooperative cancellation
// (including the no-spill-left-behind guarantee), progress reporting,
// async solves, problem factories, and parse_pauli_backend.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "api/version.hpp"
#include "coloring/verify.hpp"
#include "graph/graph_gen.hpp"
#include "pauli/pauli_stream.hpp"
#include "util/rng.hpp"

namespace papi = picasso::api;
namespace pcore = picasso::core;
namespace pg = picasso::graph;
namespace pp = picasso::pauli;
namespace fs = std::filesystem;

namespace {

pp::PauliSet random_set(std::size_t count, std::size_t qubits,
                        std::uint64_t seed) {
  picasso::util::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  for (std::size_t i = 0; i < count; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(s);
  }
  return pp::PauliSet(strings);
}

/// Expects fn() to throw ApiError with the given code and field.
template <typename Fn>
void expect_api_error(Fn&& fn, papi::ErrorCode code, const std::string& field) {
  try {
    fn();
    FAIL() << "expected ApiError " << to_string(code) << " on " << field;
  } catch (const papi::ApiError& e) {
    EXPECT_EQ(e.code(), code) << e.what();
    EXPECT_EQ(e.field(), field) << e.what();
  }
}

}  // namespace

// --- Builder validation ------------------------------------------------------

TEST(SessionBuilder, RejectsOutOfDomainPalette) {
  for (double bad : {0.0, -3.0, 101.0}) {
    expect_api_error([&] { papi::SessionBuilder().palette(bad, 2.0).build(); },
                     papi::ErrorCode::InvalidArgument, "palette_percent");
  }
  expect_api_error([&] { papi::SessionBuilder().palette(12.5, 0.0).build(); },
                   papi::ErrorCode::InvalidArgument, "alpha");
}

TEST(SessionBuilder, RejectsNonPositiveIterations) {
  expect_api_error([&] { papi::SessionBuilder().max_iterations(0).build(); },
                   papi::ErrorCode::InvalidArgument, "max_iterations");
}

TEST(SessionBuilder, RejectsZeroCapacityDevices) {
  expect_api_error([&] { papi::SessionBuilder().devices(2, 0).build(); },
                   papi::ErrorCode::InvalidArgument, "devices");
}

TEST(SessionBuilder, RejectsMultiDeviceStrategyWithoutDevices) {
  expect_api_error(
      [&] {
        papi::SessionBuilder()
            .strategy(papi::ExecutionStrategy::MultiDevice)
            .build();
      },
      papi::ErrorCode::InvalidConfiguration, "strategy");
}

TEST(SessionBuilder, RejectsStreamingStrategyWithoutBudgetOrChunks) {
  expect_api_error(
      [&] {
        papi::SessionBuilder()
            .strategy(papi::ExecutionStrategy::BudgetedStreaming)
            .build();
      },
      papi::ErrorCode::InvalidConfiguration, "strategy");
  // Either a budget or an explicit chunk size satisfies it.
  EXPECT_NO_THROW(papi::SessionBuilder()
                      .strategy(papi::ExecutionStrategy::BudgetedStreaming)
                      .memory_budget(1 << 20)
                      .build());
  pcore::StreamingOptions options;
  options.chunk_strings = 64;
  EXPECT_NO_THROW(papi::SessionBuilder()
                      .strategy(papi::ExecutionStrategy::BudgetedStreaming)
                      .streaming(options)
                      .build());
}

TEST(SessionBuilder, RejectsDeviceAndDevicesTogether) {
  picasso::device::DeviceContext ctx(64u << 20);
  expect_api_error(
      [&] {
        papi::SessionBuilder().device(&ctx).devices(2, 64u << 20).build();
      },
      papi::ErrorCode::InvalidConfiguration, "devices");
}

// --- Plan selection ----------------------------------------------------------

TEST(SessionPlan, DefaultsToInMemory) {
  const auto g = pg::erdos_renyi_dense(60, 0.4, 1);
  const auto plan = papi::Session().plan(papi::Problem::dense(g));
  EXPECT_EQ(plan.strategy, papi::ExecutionStrategy::InMemory);
  EXPECT_EQ(plan.num_devices, 0u);
}

TEST(SessionPlan, TightBudgetForcesStreamingForPauli) {
  const auto set = random_set(300, 16, 3);
  const auto problem = papi::Problem::pauli(set);
  // Budget below twice the encoded bytes => spill; and since the projected
  // conflict CSR would blow a budget this small too, Auto escalates to the
  // fused streaming engine. Chunk size still derived.
  const auto tight = papi::SessionBuilder()
                         .memory_budget(set.logical_bytes())
                         .build()
                         .plan(problem);
  ASSERT_GT(pcore::projected_conflict_csr_bytes(
                static_cast<std::uint32_t>(set.size()), 12.5, 2.0),
            set.logical_bytes());
  EXPECT_EQ(tight.strategy, papi::ExecutionStrategy::Fused);
  EXPECT_GT(tight.chunk_strings, 0u);
  EXPECT_LE(tight.chunk_strings, set.size());

  // Tight for the input but roomy for the conflict CSR (few long strings):
  // the materialized streaming engine keeps its I/O-optimal chunk-pair
  // scans.
  const auto wide_set = random_set(60, 2000, 3);
  const std::size_t wide_budget = 100 << 10;
  ASSERT_GT(2 * wide_set.logical_bytes(), wide_budget);
  ASSERT_LE(pcore::projected_conflict_csr_bytes(
                static_cast<std::uint32_t>(wide_set.size()), 12.5, 2.0),
            wide_budget);
  const auto spilled = papi::SessionBuilder()
                           .memory_budget(wide_budget)
                           .build()
                           .plan(papi::Problem::pauli(wide_set));
  EXPECT_EQ(spilled.strategy, papi::ExecutionStrategy::BudgetedStreaming);
  EXPECT_GT(spilled.chunk_strings, 0u);

  // A budget roomy for the input but below the projected conflict-CSR
  // assembly plans the edge-free fused engine instead of materialising.
  const auto mid = papi::SessionBuilder()
                       .memory_budget(16 * set.logical_bytes())
                       .build()
                       .plan(problem);
  ASSERT_GT(pcore::projected_conflict_csr_bytes(
                static_cast<std::uint32_t>(set.size()), 12.5, 2.0),
            16 * set.logical_bytes());
  EXPECT_EQ(mid.strategy, papi::ExecutionStrategy::Fused);
  EXPECT_EQ(mid.chunk_strings, 0u);  // in-memory fused: nothing spills

  // A budget above both gates keeps it fully in memory.
  const auto roomy = papi::SessionBuilder()
                         .memory_budget(std::size_t{1} << 30)
                         .build()
                         .plan(problem);
  EXPECT_EQ(roomy.strategy, papi::ExecutionStrategy::InMemory);
}

TEST(SessionPlan, ExplicitChunkSizeForcesStreaming) {
  const auto set = random_set(100, 10, 5);
  pcore::StreamingOptions options;
  options.chunk_strings = 25;
  const auto plan = papi::SessionBuilder()
                        .streaming(options)
                        .build()
                        .plan(papi::Problem::pauli(set));
  EXPECT_EQ(plan.strategy, papi::ExecutionStrategy::BudgetedStreaming);
  EXPECT_EQ(plan.chunk_strings, 25u);
}

TEST(SessionPlan, DeviceListForcesSharding) {
  const auto g = pg::erdos_renyi_dense(80, 0.3, 7);
  const auto plan = papi::SessionBuilder()
                        .devices(4, 64u << 20)
                        .build()
                        .plan(papi::Problem::dense(g));
  EXPECT_EQ(plan.strategy, papi::ExecutionStrategy::MultiDevice);
  EXPECT_EQ(plan.num_devices, 4u);
}

TEST(SessionPlan, ProblemKindPicksItsPipeline) {
  const auto set = random_set(60, 8, 9);
  const auto dir = fs::temp_directory_path() / "picasso_api_plan";
  fs::create_directories(dir);
  const auto spill = (dir / "plan.pset").string();
  pp::spill_pauli_set(set, spill);

  const papi::Session session;
  EXPECT_EQ(session.plan(papi::Problem::pauli_spill(spill)).strategy,
            papi::ExecutionStrategy::BudgetedStreaming);

  const pp::ChunkedPauliReader reader(spill, 16);
  const auto reader_plan = session.plan(papi::Problem::spill_reader(reader));
  EXPECT_EQ(reader_plan.strategy, papi::ExecutionStrategy::BudgetedStreaming);
  EXPECT_EQ(reader_plan.chunk_strings, 16u);  // the reader's chunking wins

  const pcore::VectorEdgeStream stream({{0, 1}, {1, 2}});
  EXPECT_EQ(session.plan(papi::Problem::edge_stream(3, stream)).strategy,
            papi::ExecutionStrategy::SemiStreaming);

  fs::remove_all(dir);
}

TEST(SessionPlan, ForcedStrategyMismatchThrows) {
  const auto g = pg::erdos_renyi_dense(40, 0.3, 2);
  const auto problem = papi::Problem::dense(g);
  expect_api_error(
      [&] {
        papi::SessionBuilder()
            .strategy(papi::ExecutionStrategy::SemiStreaming)
            .build()
            .plan(problem);
      },
      papi::ErrorCode::IncompatibleStrategy, "strategy");
  expect_api_error(
      [&] {
        papi::SessionBuilder()
            .strategy(papi::ExecutionStrategy::BudgetedStreaming)
            .memory_budget(1 << 20)
            .build()
            .plan(problem);
      },
      papi::ErrorCode::IncompatibleStrategy, "strategy");
}

TEST(SessionPlan, ReportCarriesTheExecutedPlan) {
  const auto set = random_set(200, 12, 11);
  pcore::StreamingOptions options;
  options.chunk_strings = 50;
  const auto report = papi::SessionBuilder()
                          .streaming(options)
                          .build()
                          .solve(papi::Problem::pauli(set));
  EXPECT_EQ(report.plan.strategy, papi::ExecutionStrategy::BudgetedStreaming);
  EXPECT_EQ(report.plan.chunk_strings, 50u);
  EXPECT_TRUE(report.result.memory.streamed);
  EXPECT_FALSE(report.plan.summary().empty());
}

// --- Progress and cancellation ----------------------------------------------

TEST(SessionProgress, IterationEventsCoverTheWholeSolve) {
  const auto g = pg::erdos_renyi_dense(200, 0.4, 21);
  std::vector<pcore::ProgressEvent> events;
  papi::SolveOptions options;
  options.progress = [&events](const pcore::ProgressEvent& e) {
    events.push_back(e);
  };
  const auto report =
      papi::Session().solve(papi::Problem::dense(g), options);
  ASSERT_FALSE(events.empty());
  std::uint32_t colored = 0;
  int last_iteration = -1;
  for (const auto& e : events) {
    EXPECT_EQ(e.stage, pcore::ProgressStage::IterationDone);
    EXPECT_GT(e.iteration, last_iteration);
    last_iteration = e.iteration;
    colored += e.colored;
  }
  EXPECT_EQ(events.size(), report.result.iterations.size());
  // converged => every vertex was colored through an iteration event.
  ASSERT_TRUE(report.result.converged);
  EXPECT_EQ(colored, g.num_vertices());
}

TEST(SessionCancel, PreRequestedStopCancelsImmediately) {
  const auto g = pg::erdos_renyi_dense(100, 0.4, 23);
  pcore::StopSource stop;
  stop.request_stop();
  papi::SolveOptions options;
  options.stop = stop.token();
  EXPECT_THROW(papi::Session().solve(papi::Problem::dense(g), options),
               pcore::SolveCancelled);
}

TEST(SessionCancel, MidSolveCancellationStopsAtIterationBoundary) {
  const auto g = pg::erdos_renyi_dense(300, 0.4, 25);
  pcore::StopSource stop;
  papi::SolveOptions options;
  options.stop = stop.token();
  int events_seen = 0;
  options.progress = [&](const pcore::ProgressEvent&) {
    if (++events_seen == 1) stop.request_stop();
  };
  EXPECT_THROW(papi::Session().solve(papi::Problem::dense(g), options),
               pcore::SolveCancelled);
  EXPECT_EQ(events_seen, 1);  // no further iterations ran
}

TEST(SessionCancel, CancelledStreamingSolveLeavesNoSpillFiles) {
  const auto set = random_set(400, 16, 27);
  const auto dir = fs::temp_directory_path() / "picasso_api_cancel_spill";
  fs::remove_all(dir);

  pcore::StreamingOptions streaming;
  streaming.chunk_strings = 50;  // 8 chunks => 36 pair scans per iteration
  streaming.spill_dir = dir.string();

  pcore::StopSource stop;
  papi::SolveOptions options;
  options.stop = stop.token();
  options.progress = [&](const pcore::ProgressEvent& e) {
    // Cancel from deep inside the first conflict build.
    if (e.stage == pcore::ProgressStage::ChunkPairScanned) stop.request_stop();
  };

  const auto session = papi::SessionBuilder().streaming(streaming).build();
  EXPECT_THROW(session.solve(papi::Problem::pauli(set), options),
               pcore::SolveCancelled);

  // The spill directory exists (the run created it) but holds nothing: the
  // cancelled solve removed its spill file on unwind.
  ASSERT_TRUE(fs::exists(dir));
  EXPECT_TRUE(fs::is_empty(dir));
  fs::remove_all(dir);
}

TEST(SessionAsync, CompletesAndReturnsReport) {
  const auto g = pg::erdos_renyi_dense(150, 0.4, 29);
  auto async = papi::Session().solve_async(papi::Problem::dense(g));
  const auto report = async.get();
  EXPECT_TRUE(picasso::coloring::is_valid_coloring(g, report.result.colors));
  // Matches the synchronous solve bit for bit.
  const auto sync = papi::Session().solve(papi::Problem::dense(g));
  EXPECT_EQ(report.result.colors, sync.result.colors);
}

TEST(SessionAsync, RequestStopCancelsTheWorker) {
  const auto g = pg::erdos_renyi_dense(300, 0.4, 31);
  // Deterministic cancellation: the worker's own first progress event waits
  // for the handle to be published, then triggers its stop source.
  std::atomic<papi::AsyncSolve*> handle{nullptr};
  papi::SolveOptions options;
  options.progress = [&](const pcore::ProgressEvent&) {
    papi::AsyncSolve* h = nullptr;
    while ((h = handle.load()) == nullptr) std::this_thread::yield();
    h->request_stop();
  };
  auto async =
      papi::Session().solve_async(papi::Problem::dense(g), options);
  handle.store(&async);
  EXPECT_THROW(async.get(), pcore::SolveCancelled);
}

TEST(SessionAsync, CallerSuppliedTokenAlsoCancels) {
  // solve_async must observe a caller-provided token alongside the
  // handle's own source, not replace it.
  const auto g = pg::erdos_renyi_dense(200, 0.4, 33);
  pcore::StopSource caller;
  caller.request_stop();  // already stopped: first checkpoint cancels
  papi::SolveOptions options;
  options.stop = caller.token();
  auto async = papi::Session().solve_async(papi::Problem::dense(g), options);
  EXPECT_THROW(async.get(), pcore::SolveCancelled);
}

TEST(SessionAsync, BuilderLevelTokenAlsoCancels) {
  // A session-wide stop_token() composes with the handle's source too.
  const auto g = pg::erdos_renyi_dense(200, 0.4, 34);
  pcore::StopSource builder_stop;
  builder_stop.request_stop();
  auto async = papi::SessionBuilder()
                   .stop_token(builder_stop.token())
                   .build()
                   .solve_async(papi::Problem::dense(g));
  EXPECT_THROW(async.get(), pcore::SolveCancelled);
}

TEST(StopToken, AnyOfObservesEverySource) {
  pcore::StopSource a, b, c;
  const auto ab = pcore::StopToken::any_of(a.token(), b.token());
  const auto abc = pcore::StopToken::any_of(ab, c.token());
  EXPECT_TRUE(abc.stop_possible());
  EXPECT_FALSE(abc.stop_requested());
  c.request_stop();  // the nested source still counts
  EXPECT_TRUE(abc.stop_requested());
  EXPECT_FALSE(ab.stop_requested());
  a.request_stop();
  EXPECT_TRUE(ab.stop_requested());
}

// --- Problem factories -------------------------------------------------------

TEST(Problem, FileFactoriesReportStructuredIoErrors) {
  expect_api_error([] { papi::Problem::matrix_market("/nonexistent/x.mtx"); },
                   papi::ErrorCode::IoError, "matrix_market");
  expect_api_error([] { papi::Problem::edge_list("/nonexistent/x.el"); },
                   papi::ErrorCode::IoError, "edge_list");
  expect_api_error([] { papi::Problem::pauli_spill("/nonexistent/x.pset"); },
                   papi::ErrorCode::IoError, "pauli_spill");
  expect_api_error(
      [] { papi::Problem::edge_stream_file("/nonexistent/x.el"); },
      papi::ErrorCode::IoError, "edge_stream_file");
}

TEST(Problem, IntrospectionMatchesThePayload) {
  const auto set = random_set(42, 6, 33);
  const auto problem = papi::Problem::pauli(set);
  EXPECT_EQ(problem.kind(), papi::ProblemKind::Pauli);
  EXPECT_EQ(problem.num_vertices(), 42u);
  EXPECT_EQ(problem.logical_bytes(), set.logical_bytes());

  const auto g = pg::erdos_renyi_dense(30, 0.5, 35);
  EXPECT_EQ(papi::Problem::dense(g).kind(), papi::ProblemKind::Dense);
  EXPECT_EQ(papi::Problem::dense(g).num_vertices(), 30u);
}

TEST(Problem, OwningFactoryKeepsThePayloadAlive) {
  auto problem = papi::Problem::pauli(random_set(50, 6, 37));
  const auto report = papi::Session().solve(problem);
  EXPECT_EQ(report.result.colors.size(), 50u);
  // A copy shares the payload.
  const papi::Problem copy = problem;
  EXPECT_EQ(papi::Session().solve(copy).result.colors,
            report.result.colors);
}

// --- Fused strategy ----------------------------------------------------------

TEST(SessionFused, ForcedFusedMatchesInMemoryAndSkipsTheCsr) {
  const auto set = random_set(250, 18, 41);
  const auto ref = papi::Session().solve(papi::Problem::pauli(set));
  const auto fused = papi::SessionBuilder()
                         .strategy(papi::ExecutionStrategy::Fused)
                         .build()
                         .solve(papi::Problem::pauli(set));
  EXPECT_EQ(fused.plan.strategy, papi::ExecutionStrategy::Fused);
  EXPECT_EQ(fused.result.colors, ref.result.colors);
  EXPECT_EQ(fused.result.memory.subsystem_peak[static_cast<unsigned>(
                picasso::util::MemSubsystem::ConflictCsr)],
            0u);
  EXPECT_GT(fused.result.memory.subsystem_peak[static_cast<unsigned>(
                picasso::util::MemSubsystem::FusedFrontier)],
            0u);
}

TEST(SessionFused, BudgetBelowTwiceTheInputStreamsTheFusedSolve) {
  const auto set = random_set(300, 16, 43);
  const auto report = papi::SessionBuilder()
                          .strategy(papi::ExecutionStrategy::Fused)
                          .memory_budget(set.logical_bytes())
                          .build()
                          .solve(papi::Problem::pauli(set));
  EXPECT_EQ(report.plan.strategy, papi::ExecutionStrategy::Fused);
  EXPECT_GT(report.plan.chunk_strings, 0u);
  EXPECT_TRUE(report.result.memory.streamed);
  EXPECT_EQ(report.result.memory.subsystem_peak[static_cast<unsigned>(
                picasso::util::MemSubsystem::ConflictCsr)],
            0u);
  EXPECT_EQ(report.result.colors,
            papi::Session().solve(papi::Problem::pauli(set)).result.colors);
}

TEST(SessionFused, TightBudgetEscalatesSpillBackedProblemsToFused) {
  const auto set = random_set(300, 12, 45);
  const auto dir = fs::temp_directory_path() / "picasso_api_fused_spill";
  fs::create_directories(dir);
  const auto spill = (dir / "escalate.pset").string();
  pp::spill_pauli_set(set, spill);

  // Budget below the projected conflict CSR: Auto must not plan an engine
  // that materializes it.
  const auto session =
      papi::SessionBuilder().memory_budget(16 << 10).build();
  const auto plan = session.plan(papi::Problem::pauli_spill(spill));
  EXPECT_EQ(plan.strategy, papi::ExecutionStrategy::Fused);
  EXPECT_GT(plan.chunk_strings, 0u);

  const pp::ChunkedPauliReader reader(spill, 32);
  const auto report = session.solve(papi::Problem::spill_reader(reader));
  EXPECT_EQ(report.plan.strategy, papi::ExecutionStrategy::Fused);
  EXPECT_EQ(report.plan.chunk_strings, 32u);  // the reader's chunking wins
  EXPECT_TRUE(report.result.memory.streamed);
  EXPECT_EQ(report.result.memory.subsystem_peak[static_cast<unsigned>(
                picasso::util::MemSubsystem::ConflictCsr)],
            0u);
  EXPECT_EQ(report.result.colors,
            papi::Session().solve(papi::Problem::pauli(set)).result.colors);
  fs::remove_all(dir);
}

TEST(SessionFused, RejectsEdgeStreamProblems) {
  const pcore::VectorEdgeStream stream({{0, 1}, {1, 2}});
  const auto session = papi::SessionBuilder()
                           .strategy(papi::ExecutionStrategy::Fused)
                           .build();
  expect_api_error(
      [&] { session.plan(papi::Problem::edge_stream(3, stream)); },
      papi::ErrorCode::IncompatibleStrategy, "strategy");
}

TEST(SessionFused, RejectsDeviceConfigurations) {
  expect_api_error(
      [] {
        papi::SessionBuilder()
            .strategy(papi::ExecutionStrategy::Fused)
            .devices(2, 1 << 20)
            .build();
      },
      papi::ErrorCode::InvalidConfiguration, "strategy");
}

TEST(SessionFused, BucketProgressEventsFireAndComposeWithIterations) {
  const auto g = pg::erdos_renyi_dense(400, 0.4, 47);
  std::size_t bucket_events = 0;
  std::size_t iteration_events = 0;
  papi::SolveOptions options;
  options.progress = [&](const pcore::ProgressEvent& e) {
    if (e.stage == pcore::ProgressStage::BucketScanned) {
      EXPECT_GT(e.bucket_scans, 0u);
      EXPECT_LE(e.bucket_scans, e.n_active);
      ++bucket_events;
    } else if (e.stage == pcore::ProgressStage::IterationDone) {
      ++iteration_events;
    }
  };
  const auto report = papi::SessionBuilder()
                          .strategy(papi::ExecutionStrategy::Fused)
                          .build()
                          .solve(papi::Problem::dense(g), options);
  EXPECT_GT(bucket_events, 0u);  // 400 first-iteration scans, cadence 256
  EXPECT_EQ(iteration_events, report.result.iterations.size());
}

TEST(SessionFused, MidSolveCancellationStopsAtBucketBoundary) {
  const auto g = pg::erdos_renyi_dense(400, 0.4, 49);
  pcore::StopSource stop;
  papi::SolveOptions options;
  options.stop = stop.token();
  std::size_t bucket_events = 0;
  options.progress = [&](const pcore::ProgressEvent& e) {
    if (e.stage == pcore::ProgressStage::BucketScanned &&
        ++bucket_events == 1) {
      stop.request_stop();  // next bucket scan must observe it
    }
  };
  EXPECT_THROW(papi::SessionBuilder()
                   .strategy(papi::ExecutionStrategy::Fused)
                   .build()
                   .solve(papi::Problem::dense(g), options),
               pcore::SolveCancelled);
  EXPECT_EQ(bucket_events, 1u);  // cancelled inside the first iteration
}

// --- parse_strategy ----------------------------------------------------------

TEST(ParseStrategy, RoundTripsEveryStrategyAndAcceptsShorthands) {
  for (auto strategy :
       {papi::ExecutionStrategy::Auto, papi::ExecutionStrategy::InMemory,
        papi::ExecutionStrategy::BudgetedStreaming,
        papi::ExecutionStrategy::SemiStreaming,
        papi::ExecutionStrategy::MultiDevice, papi::ExecutionStrategy::Fused}) {
    EXPECT_EQ(papi::parse_strategy(papi::to_string(strategy)), strategy);
  }
  EXPECT_EQ(papi::parse_strategy("inmemory"),
            papi::ExecutionStrategy::InMemory);
  EXPECT_EQ(papi::parse_strategy("streaming"),
            papi::ExecutionStrategy::BudgetedStreaming);
}

TEST(ParseStrategy, RejectsUnknownNamesWithTheValidList) {
  try {
    papi::parse_strategy("warp-drive");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("warp-drive"), std::string::npos);
    EXPECT_NE(message.find("fused"), std::string::npos);
    EXPECT_NE(message.find("budgeted-streaming"), std::string::npos);
  }
}

// --- parse_pauli_backend and version ----------------------------------------

TEST(ParseBackend, RoundTripsEveryBackend) {
  for (auto backend :
       {pcore::PauliBackend::Auto, pcore::PauliBackend::Scalar,
        pcore::PauliBackend::Packed, pcore::PauliBackend::PackedScalar}) {
    EXPECT_EQ(pcore::parse_pauli_backend(pcore::to_string(backend)), backend);
  }
}

TEST(ParseBackend, RejectsUnknownNamesWithTheValidList) {
  try {
    pcore::parse_pauli_backend("avx512");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("avx512"), std::string::npos);
    EXPECT_NE(message.find("packed-scalar"), std::string::npos);
  }
}

TEST(ApiVersion, MacrosAndHelpersAgree) {
  EXPECT_EQ(papi::kVersionMajor, PICASSO_API_VERSION_MAJOR);
  EXPECT_STREQ(papi::version_string(), PICASSO_API_VERSION);
  EXPECT_EQ(PICASSO_API_VERSION_CODE,
            PICASSO_API_VERSION_MAJOR * 10000 +
                PICASSO_API_VERSION_MINOR * 100 + PICASSO_API_VERSION_PATCH);
}
