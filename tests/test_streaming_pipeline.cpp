// The memory-budgeted streaming pipeline: chunked spill-file ingestion,
// budget-admission chunk caching, and — the contract the whole design rests
// on — bit-identical colorings between the budgeted multi-pass engine and
// the in-memory oracle driver, across chunk sizes, budgets, and thread
// counts. Also covers the edge cases: budget smaller than one chunk, empty
// Pauli set, and single-pass vs multi-pass equality.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "api/session.hpp"
#include "coloring/verify.hpp"
#include "core/picasso.hpp"
#include "core/streaming.hpp"
#include "graph/oracles.hpp"
#include "pauli/pauli_stream.hpp"
#include "util/rng.hpp"

namespace pcore = picasso::core;
namespace papi = picasso::api;
namespace pp = picasso::pauli;
namespace pg = picasso::graph;
namespace pc = picasso::coloring;
namespace pu = picasso::util;

namespace {

pp::PauliSet random_set(std::size_t n, std::size_t qubits,
                        std::uint64_t seed) {
  pu::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  strings.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(std::move(s));
  }
  return pp::PauliSet(strings);
}

std::filesystem::path temp_spill_dir() {
  return std::filesystem::temp_directory_path() / "picasso_stream_test";
}

}  // namespace

// --------------------------------------------------------------------------
// Chunked reader round trip.

TEST(ChunkedPauliReader, ChunksReassembleTheSet) {
  const auto set = random_set(257, 12, 42);
  const auto dir = temp_spill_dir();
  std::filesystem::create_directories(dir);
  const auto path = (dir / "roundtrip.pset").string();
  pp::spill_pauli_set(set, path);

  const pp::ChunkedPauliReader reader(path, 100);
  EXPECT_EQ(reader.num_strings(), set.size());
  EXPECT_EQ(reader.num_qubits(), set.num_qubits());
  EXPECT_EQ(reader.num_chunks(), 3u);
  EXPECT_EQ(reader.chunk_size(0), 100u);
  EXPECT_EQ(reader.chunk_size(2), 57u);

  for (std::size_t c = 0; c < reader.num_chunks(); ++c) {
    const pp::PauliSet chunk = reader.load_chunk(c);
    ASSERT_EQ(chunk.size(), reader.chunk_size(c));
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      const std::size_t global = reader.chunk_begin(c) + i;
      EXPECT_EQ(chunk.string(i), set.string(global));
      EXPECT_EQ(chunk.coefficient(i), set.coefficient(global));
    }
  }
  std::filesystem::remove(path);
}

TEST(ChunkedPauliReader, RejectsZeroChunkSize) {
  // Regression: a chunk size of 0 used to be silently clamped while
  // chunk indexing divides by it — it must be rejected up front instead.
  const auto set = random_set(16, 6, 3);
  const auto dir = temp_spill_dir();
  std::filesystem::create_directories(dir);
  const auto path = (dir / "zero_chunk.pset").string();
  pp::spill_pauli_set(set, path);
  EXPECT_THROW(pp::ChunkedPauliReader(path, 0), std::invalid_argument);
  std::filesystem::remove(path);
}

TEST(ChunkedPauliReader, PackedChunksMatchScalarChunks) {
  // The spill file's packed tail must reload to exactly the records the
  // full PauliSet chunk carries (and half the resident charge).
  const auto set = random_set(200, 67, 21);
  const auto dir = temp_spill_dir();
  std::filesystem::create_directories(dir);
  const auto path = (dir / "packed_tail.pset").string();
  pp::spill_pauli_set(set, path);

  const pp::ChunkedPauliReader reader(path, 64);
  EXPECT_TRUE(reader.has_packed_tail());
  for (std::size_t c = 0; c < reader.num_chunks(); ++c) {
    const pp::PauliSet scalar_chunk = reader.load_chunk(c);
    const pp::PackedPauliSet packed_chunk = reader.load_chunk_packed(c);
    ASSERT_EQ(packed_chunk.size(), scalar_chunk.size());
    const pp::PackedView expect = scalar_chunk.packed_view();
    const pp::PackedView got = packed_chunk.view();
    ASSERT_EQ(got.words, expect.words);
    for (std::size_t i = 0; i < packed_chunk.size(); ++i) {
      for (std::size_t k = 0; k < 2 * got.words; ++k) {
        ASSERT_EQ(got.record(i)[k], expect.record(i)[k])
            << "chunk=" << c << " i=" << i << " k=" << k;
      }
    }
    EXPECT_LT(reader.chunk_packed_resident_bytes(c),
              reader.chunk_resident_bytes(c));
  }
  std::filesystem::remove(path);
}

TEST(ChunkedPauliReader, LegacySpillWithoutPackedTailStillLoadsPacked) {
  // Files written by PauliSet::save_binary alone (no packed tail) fall back
  // to decoding the 3-bit section.
  const auto set = random_set(50, 10, 33);
  const auto dir = temp_spill_dir();
  std::filesystem::create_directories(dir);
  const auto path = (dir / "legacy.pset").string();
  {
    std::ofstream out(path, std::ios::binary);
    set.save_binary(out);
  }
  const pp::ChunkedPauliReader reader(path, 20);
  EXPECT_FALSE(reader.has_packed_tail());
  const pp::PackedPauliSet packed = reader.load_chunk_packed(1);
  ASSERT_EQ(packed.size(), 20u);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    EXPECT_EQ(packed.string(i), set.string(reader.chunk_begin(1) + i));
  }
  std::filesystem::remove(path);
}

TEST(ChunkedPauliReader, ResidentBytesMatchLoadedSet) {
  const auto set = random_set(64, 9, 7);
  const auto dir = temp_spill_dir();
  std::filesystem::create_directories(dir);
  const auto path = (dir / "resident.pset").string();
  pp::spill_pauli_set(set, path);
  const pp::ChunkedPauliReader reader(path, 64);
  EXPECT_EQ(reader.chunk_resident_bytes(0), reader.load_chunk(0).logical_bytes());
  std::filesystem::remove(path);
}

// --------------------------------------------------------------------------
// Equivalence suite: budgeted / chunked runs == the in-memory driver.

class StreamingEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamingEquivalence, ChunkSizeDoesNotChangeTheColoring) {
  const std::size_t chunk_strings = GetParam();
  const auto set = random_set(300, 10, 5);
  pcore::PicassoParams params;
  params.seed = 11;

  const auto reference = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;

  pcore::StreamingOptions options;
  options.chunk_strings = chunk_strings;  // forces the streaming engine
  options.spill_dir = temp_spill_dir().string();
  const auto streamed =
      papi::SessionBuilder().params(params).streaming(options).build().solve(papi::Problem::pauli(set)).result;

  EXPECT_TRUE(streamed.memory.streamed);
  EXPECT_EQ(streamed.colors, reference.colors);
  EXPECT_EQ(streamed.num_colors, reference.num_colors);
  EXPECT_EQ(streamed.palette_total, reference.palette_total);
  EXPECT_EQ(streamed.iterations.size(), reference.iterations.size());
  for (std::size_t i = 0; i < streamed.iterations.size(); ++i) {
    EXPECT_EQ(streamed.iterations[i].conflict_edges,
              reference.iterations[i].conflict_edges);
  }
  const pg::ComplementOracle oracle(set);
  EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, streamed.colors));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, StreamingEquivalence,
                         ::testing::Values(1u, 7u, 64u, 300u, 1000u));

TEST(StreamingPipeline, SinglePassAndMultiPassAreBitIdentical) {
  const auto set = random_set(400, 11, 23);
  pcore::PicassoParams params;
  params.seed = 3;

  // Single pass: one chunk, everything resident, unlimited budget.
  pcore::StreamingOptions one_chunk;
  one_chunk.chunk_strings = set.size();
  one_chunk.spill_dir = temp_spill_dir().string();
  const auto single = papi::SessionBuilder().params(params).streaming(one_chunk).build().solve(papi::Problem::pauli(set)).result;
  EXPECT_EQ(single.memory.num_chunks, 1u);

  // Multi pass: tiny chunks under a budget that cannot hold them all, so
  // inner chunks are evicted and re-read every outer pass. The strategy is
  // pinned: Auto escalates budgets this tight to the fused engine, but this
  // test exercises the materialized chunk-pair re-scan path.
  params.memory_budget_bytes = 32 << 10;
  pcore::StreamingOptions small_chunks;
  small_chunks.chunk_strings = 32;
  small_chunks.spill_dir = temp_spill_dir().string();
  const auto multi = papi::SessionBuilder()
                         .params(params)
                         .streaming(small_chunks)
                         .strategy(papi::ExecutionStrategy::BudgetedStreaming)
                         .build()
                         .solve(papi::Problem::pauli(set))
                         .result;
  EXPECT_GT(multi.memory.num_chunks, 4u);
  EXPECT_GT(multi.memory.chunk_loads, multi.memory.num_chunks)
      << "a budget this small must force at least one re-scan";
  EXPECT_GT(multi.memory.chunk_evictions, 0u);

  EXPECT_EQ(single.colors, multi.colors);
  EXPECT_EQ(single.num_colors, multi.num_colors);
}

TEST(StreamingPipeline, ParallelChunkScanMatchesSerial) {
  const auto set = random_set(500, 10, 17);
  pcore::PicassoParams params;
  params.seed = 29;
  params.runtime.serial_cutoff = 0;  // engage the pool even at this size

  pcore::StreamingOptions options;
  options.chunk_strings = 100;
  options.spill_dir = temp_spill_dir().string();

  params.runtime.num_threads = 1;
  const auto serial = papi::SessionBuilder().params(params).streaming(options).build().solve(papi::Problem::pauli(set)).result;
  params.runtime.num_threads = 4;
  const auto parallel = papi::SessionBuilder().params(params).streaming(options).build().solve(papi::Problem::pauli(set)).result;

  EXPECT_EQ(serial.colors, parallel.colors);
  EXPECT_EQ(serial.num_colors, parallel.num_colors);
}

// --------------------------------------------------------------------------
// Edge cases.

TEST(StreamingPipeline, EmptyPauliSet) {
  const pp::PauliSet empty;
  pcore::PicassoParams params;
  params.memory_budget_bytes = 1 << 20;
  const auto r = papi::Session::from_params(params).solve(papi::Problem::pauli(empty)).result;
  EXPECT_TRUE(r.colors.empty());
  EXPECT_EQ(r.num_colors, 0u);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.memory.within_budget());
}

TEST(StreamingPipeline, BudgetSmallerThanOneChunkStillColors) {
  const auto set = random_set(200, 10, 31);
  pcore::PicassoParams params;
  params.seed = 13;
  const auto reference = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;

  // A 1-byte budget cannot admit any chunk: the cache must degrade to
  // load-scan-evict (recording over-budget events) instead of failing.
  // Strategy pinned to the materialized engine (Auto would go fused here).
  params.memory_budget_bytes = 1;
  pcore::StreamingOptions options;
  options.spill_dir = temp_spill_dir().string();
  const auto r = papi::SessionBuilder()
                     .params(params)
                     .streaming(options)
                     .strategy(papi::ExecutionStrategy::BudgetedStreaming)
                     .build()
                     .solve(papi::Problem::pauli(set))
                     .result;
  EXPECT_TRUE(r.memory.streamed);
  EXPECT_EQ(r.colors, reference.colors);
  EXPECT_FALSE(r.memory.within_budget());
  EXPECT_GT(r.memory.over_budget_events, 0u);
}

TEST(StreamingPipeline, UnbudgetedRunDelegatesToInMemoryDriver) {
  const auto set = random_set(150, 9, 41);
  pcore::PicassoParams params;
  params.seed = 19;
  const auto r = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;
  EXPECT_FALSE(r.memory.streamed);
  EXPECT_EQ(r.memory.spill_bytes, 0u);
  EXPECT_EQ(r.colors, papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result.colors);
}

TEST(StreamingPipeline, GenerousBudgetStaysWithinItAndKeepsInputResident) {
  const auto set = random_set(300, 10, 47);
  pcore::PicassoParams params;
  params.seed = 53;
  params.memory_budget_bytes = 64 << 20;
  const auto r = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;
  EXPECT_TRUE(r.memory.within_budget());
  EXPECT_GT(r.memory.peak_tracked_bytes, 0u);
  EXPECT_EQ(r.memory.over_budget_events, 0u);
}

TEST(StreamingPipeline, SpillFileIsRemovedByDefaultAndKeptOnRequest) {
  const auto set = random_set(64, 8, 59);
  pcore::PicassoParams params;
  pcore::StreamingOptions options;
  options.chunk_strings = 16;
  options.spill_dir = (temp_spill_dir() / "spill_keep").string();
  papi::SessionBuilder().params(params).streaming(options).build().solve(papi::Problem::pauli(set)).result;
  // Default: directory holds no leftover spill files.
  std::size_t pset_files = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(options.spill_dir)) {
    pset_files += e.path().extension() == ".pset" ? 1 : 0;
  }
  EXPECT_EQ(pset_files, 0u);

  options.keep_spill = true;
  papi::SessionBuilder().params(params).streaming(options).build().solve(papi::Problem::pauli(set)).result;
  pset_files = 0;
  for (const auto& e :
       std::filesystem::directory_iterator(options.spill_dir)) {
    pset_files += e.path().extension() == ".pset" ? 1 : 0;
  }
  EXPECT_EQ(pset_files, 1u);
  std::filesystem::remove_all(options.spill_dir);
}

TEST(StreamingPipeline, ReportCountsChunksAndSpillBytes) {
  const auto set = random_set(256, 10, 61);
  pcore::PicassoParams params;
  pcore::StreamingOptions options;
  options.chunk_strings = 64;
  options.spill_dir = temp_spill_dir().string();
  const auto r = papi::SessionBuilder().params(params).streaming(options).build().solve(papi::Problem::pauli(set)).result;
  EXPECT_EQ(r.memory.num_chunks, 4u);
  EXPECT_GE(r.memory.chunk_loads, 4u);
  EXPECT_GT(r.memory.spill_bytes, 0u);
  const auto json = r.memory.to_json();
  EXPECT_NE(json.find("\"streamed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"num_chunks\":4"), std::string::npos);
  EXPECT_NE(json.find("\"chunk_cache\""), std::string::npos);
}
