// Property-based differential harness for the pluggable conflict oracles.
//
// Seeded randomized cases (~200 across the three suites; every case prints
// its replay key on failure) assert the contracts the refactor rests on:
//
//  (a) every coloring Picasso returns is conflict-free against a
//      brute-force O(n^2) oracle that never touches the encodings — the
//      character-comparison anticommutation check for Pauli inputs, the
//      explicit adjacency matrix walk for graphs;
//  (b) the packed (SIMD and forced-scalar) and scalar conflict oracles see
//      identical edge sets and the drivers built on them return identical
//      colorings;
//  (c) the streaming drivers agree with the in-memory driver under random
//      budgets, chunk sizes, and thread counts;
//  (d) the edge-free fused engine (Strategy::Fused) is bit-identical to the
//      materialized engines in deterministic mode — random seeds x backends
//      x thread counts x budgets, in-memory and spill-backed alike — and
//      its colorings are conflict-free against the brute-force oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "core/picasso.hpp"
#include "core/streaming.hpp"
#include "graph/graph_gen.hpp"
#include "graph/oracles.hpp"
#include "pauli/pauli_set.hpp"
#include "util/rng.hpp"

namespace pcore = picasso::core;
namespace papi = picasso::api;
namespace pp = picasso::pauli;
namespace pg = picasso::graph;
namespace pu = picasso::util;

namespace {

constexpr std::uint64_t kHarnessSeed = 0xd1ffe7e57ull;

pp::PauliSet random_set(std::size_t n, std::size_t qubits, pu::Xoshiro256& rng) {
  std::vector<pp::PauliString> strings;
  strings.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(std::move(s));
  }
  return pp::PauliSet(strings);
}

pcore::PicassoParams random_params(pu::Xoshiro256& rng) {
  static constexpr double kPercents[] = {3.0, 10.0, 12.5, 25.0};
  static constexpr double kAlphas[] = {0.5, 2.0, 8.0, 30.0};
  pcore::PicassoParams params;
  params.palette_percent = kPercents[rng.bounded(4)];
  params.alpha = kAlphas[rng.bounded(4)];
  params.seed = rng();
  return params;
}

/// Brute-force conflict check for a Pauli coloring: same color implies
/// anticommutation (a complement-graph edge would be a conflict), via the
/// character-comparison oracle that shares no code with the bit kernels.
::testing::AssertionResult coloring_conflict_free_pauli(
    const pp::PauliSet& set, const std::vector<std::uint32_t>& colors) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      if (colors[i] == colors[j] && !set.anticommute_naive(i, j)) {
        return ::testing::AssertionFailure()
               << "vertices " << i << " and " << j << " share color "
               << colors[i] << " but commute (conflict edge)";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult coloring_conflict_free_graph(
    const pg::CsrGraph& g, const std::vector<std::uint32_t>& colors) {
  for (pg::VertexId u = 0; u < g.num_vertices(); ++u) {
    for (pg::VertexId v : g.neighbors(u)) {
      if (u < v && colors[u] == colors[v]) {
        return ::testing::AssertionFailure()
               << "edge {" << u << ", " << v << "} is monochromatic ("
               << colors[u] << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

std::string spill_dir() {
  const auto dir =
      std::filesystem::temp_directory_path() / "picasso_differential";
  std::filesystem::create_directories(dir);
  return dir.string();
}

}  // namespace

// --------------------------------------------------------------------------
// (a) + (b): random Pauli sets, all oracle backends.

TEST(DifferentialProperties, PauliBackendsAgreeAndColoringsAreConflictFree) {
  pu::Xoshiro256 rng(kHarnessSeed);
  for (int c = 0; c < 80; ++c) {
    const std::size_t n = 30 + rng.bounded(130);        // [30, 160)
    const std::size_t qubits = 1 + rng.bounded(72);     // [1, 72]
    const auto set = random_set(n, qubits, rng);
    pcore::PicassoParams params = random_params(rng);
    const std::string key = "case " + std::to_string(c) + ": n=" +
                            std::to_string(n) + " q=" +
                            std::to_string(qubits) + " seed=" +
                            std::to_string(params.seed);

    // Identical edge sets: the packed oracle (both kernels) must answer
    // exactly as the 3-bit scalar oracle on every pair.
    const pg::ComplementOracle scalar(set);
    const pg::PackedComplementOracle packed(set.packed_view(),
                                            pp::SimdLevel::Auto);
    const pg::PackedComplementOracle packed_scalar(set.packed_view(),
                                                   pp::SimdLevel::Scalar);
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = u + 1; v < n; ++v) {
        const bool e = scalar.edge(u, v);
        ASSERT_EQ(packed.edge(u, v), e) << key;
        ASSERT_EQ(packed_scalar.edge(u, v), e) << key;
      }
    }

    params.pauli_backend = pcore::PauliBackend::Scalar;
    const auto ref = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;
    params.pauli_backend = pcore::PauliBackend::Packed;
    const auto pk = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;
    params.pauli_backend = pcore::PauliBackend::PackedScalar;
    const auto pks = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;

    ASSERT_EQ(pk.colors, ref.colors) << key;
    ASSERT_EQ(pks.colors, ref.colors) << key;
    ASSERT_EQ(pk.num_colors, ref.num_colors) << key;
    ASSERT_TRUE(coloring_conflict_free_pauli(set, ref.colors)) << key;
  }
}

// --------------------------------------------------------------------------
// (a): random R-MAT graphs through the edge-list oracle, in-memory vs the
// semi-streaming pass driver.

TEST(DifferentialProperties, RmatColoringsAreConflictFreeAndStreamsAgree) {
  pu::Xoshiro256 rng(kHarnessSeed ^ 0xabcdef);
  for (int c = 0; c < 60; ++c) {
    const auto n = static_cast<pg::VertexId>(50 + rng.bounded(350));
    const std::uint64_t edges = n * (1 + rng.bounded(8));
    const auto g = pg::rmat(n, edges, 0.57, 0.19, 0.19, rng());
    pcore::PicassoParams params = random_params(rng);
    const std::string key = "case " + std::to_string(c) + ": n=" +
                            std::to_string(n) + " m=" +
                            std::to_string(g.num_edges()) + " seed=" +
                            std::to_string(params.seed);

    const auto ref = papi::Session::from_params(params).solve(papi::Problem::csr(g)).result;
    ASSERT_TRUE(coloring_conflict_free_graph(g, ref.colors)) << key;

    // The one-pass-per-iteration edge-stream driver sees the same conflict
    // edges, so it must land on the same coloring.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list;
    edge_list.reserve(g.num_edges());
    for (pg::VertexId u = 0; u < g.num_vertices(); ++u) {
      for (pg::VertexId v : g.neighbors(u)) {
        if (u < v) edge_list.emplace_back(u, v);
      }
    }
    const pcore::VectorEdgeStream stream(std::move(edge_list));
    const auto streamed =
        papi::Session::from_params(params)
            .solve(papi::Problem::edge_stream(g.num_vertices(), stream))
            .result;
    ASSERT_EQ(streamed.colors, ref.colors) << key;
  }
}

// --------------------------------------------------------------------------
// (c): the budgeted/chunked engine vs the in-memory driver under random
// budgets, chunk sizes, thread counts, and backends.

TEST(DifferentialProperties, StreamingAgreesUnderRandomBudgetsAndThreads) {
  pu::Xoshiro256 rng(kHarnessSeed ^ 0x5eed5);
  const std::string dir = spill_dir();
  for (int c = 0; c < 60; ++c) {
    const std::size_t n = 60 + rng.bounded(240);     // [60, 300)
    const std::size_t qubits = 4 + rng.bounded(37);  // [4, 40]
    const auto set = random_set(n, qubits, rng);
    pcore::PicassoParams params = random_params(rng);
    params.pauli_backend = rng.bounded(2) == 0 ? pcore::PauliBackend::Scalar
                                               : pcore::PauliBackend::Packed;
    const std::string key =
        "case " + std::to_string(c) + ": n=" + std::to_string(n) + " q=" +
        std::to_string(qubits) + " seed=" + std::to_string(params.seed) +
        " backend=" + pcore::to_string(params.pauli_backend);

    const auto ref = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;

    pcore::StreamingOptions options;
    options.chunk_strings = 1 + rng.bounded(n);  // [1, n]
    options.spill_dir = dir;
    // Budgets from starved (1 KiB: forced re-scans) to unlimited (0).
    switch (rng.bounded(4)) {
      case 0: params.memory_budget_bytes = 1 << 10; break;
      case 1: params.memory_budget_bytes = 64 << 10; break;
      case 2: params.memory_budget_bytes = 1 << 20; break;
      default: params.memory_budget_bytes = 0; break;
    }
    params.runtime.num_threads = 1 + rng.bounded(4);  // [1, 4]
    params.runtime.serial_cutoff = 0;  // engage the pool even at these sizes

    const auto streamed =
        papi::SessionBuilder().params(params).streaming(options).build().solve(papi::Problem::pauli(set)).result;
    ASSERT_TRUE(streamed.memory.streamed) << key;
    ASSERT_EQ(streamed.colors, ref.colors)
        << key << " chunk=" << options.chunk_strings
        << " budget=" << params.memory_budget_bytes
        << " threads=" << params.runtime.num_threads;
    ASSERT_EQ(streamed.num_colors, ref.num_colors) << key;
  }
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------------------------
// (d): the fused engine vs the materialized pipeline — random seeds,
// backends, thread counts and budgets; forced through Strategy::Fused so
// the whole session dispatch (in-memory and spill-backed) is exercised.

TEST(DifferentialProperties, FusedAgreesWithMaterializedEverywhere) {
  pu::Xoshiro256 rng(kHarnessSeed ^ 0xf05edull);
  const std::string dir = spill_dir();
  for (int c = 0; c < 60; ++c) {
    const std::size_t n = 40 + rng.bounded(220);     // [40, 260)
    const std::size_t qubits = 2 + rng.bounded(60);  // [2, 62)
    const auto set = random_set(n, qubits, rng);
    pcore::PicassoParams params = random_params(rng);
    switch (rng.bounded(3)) {
      case 0: params.pauli_backend = pcore::PauliBackend::Scalar; break;
      case 1: params.pauli_backend = pcore::PauliBackend::Packed; break;
      default: params.pauli_backend = pcore::PauliBackend::PackedScalar; break;
    }
    params.runtime.num_threads = 1 + rng.bounded(4);  // [1, 4]
    params.runtime.serial_cutoff = 0;
    const std::string key =
        "case " + std::to_string(c) + ": n=" + std::to_string(n) + " q=" +
        std::to_string(qubits) + " seed=" + std::to_string(params.seed) +
        " backend=" + pcore::to_string(params.pauli_backend) +
        " threads=" + std::to_string(params.runtime.num_threads);

    const auto ref = papi::Session::from_params(params)
                         .solve(papi::Problem::pauli(set))
                         .result;

    // In-memory fused.
    const auto fused = papi::SessionBuilder()
                           .params(params)
                           .strategy(papi::ExecutionStrategy::Fused)
                           .build()
                           .solve(papi::Problem::pauli(set))
                           .result;
    ASSERT_EQ(fused.colors, ref.colors) << key;
    ASSERT_EQ(fused.num_colors, ref.num_colors) << key;
    ASSERT_EQ(fused.memory.subsystem_peak[static_cast<unsigned>(
                  pu::MemSubsystem::ConflictCsr)],
              0u)
        << key;
    ASSERT_TRUE(coloring_conflict_free_pauli(set, fused.colors)) << key;

    // Spill-backed fused: explicit chunking and a random budget force the
    // chunked strike engine.
    pcore::StreamingOptions options;
    options.chunk_strings = 1 + rng.bounded(n);
    options.spill_dir = dir;
    pcore::PicassoParams streamed_params = params;
    switch (rng.bounded(3)) {
      case 0: streamed_params.memory_budget_bytes = 8 << 10; break;
      case 1: streamed_params.memory_budget_bytes = 1 << 20; break;
      default: streamed_params.memory_budget_bytes = 0; break;
    }
    const auto fused_streamed = papi::SessionBuilder()
                                    .params(streamed_params)
                                    .streaming(options)
                                    .strategy(papi::ExecutionStrategy::Fused)
                                    .build()
                                    .solve(papi::Problem::pauli(set))
                                    .result;
    ASSERT_TRUE(fused_streamed.memory.streamed) << key;
    ASSERT_EQ(fused_streamed.colors, ref.colors)
        << key << " chunk=" << options.chunk_strings
        << " budget=" << streamed_params.memory_budget_bytes;
  }
  std::filesystem::remove_all(dir);
}

// Fused colorings are also scheme-complete: every conflict-coloring scheme
// lands on the materialized coloring (the scheme bodies are shared; this
// pins the enumerator contracts).
TEST(DifferentialProperties, FusedAgreesAcrossConflictSchemes) {
  pu::Xoshiro256 rng(kHarnessSeed ^ 0x5c4e3e5ull);
  constexpr pcore::ConflictColoringScheme kSchemes[] = {
      pcore::ConflictColoringScheme::DynamicBucket,
      pcore::ConflictColoringScheme::DynamicHeap,
      pcore::ConflictColoringScheme::StaticNatural,
      pcore::ConflictColoringScheme::StaticRandom,
      pcore::ConflictColoringScheme::StaticLargestFirst,
  };
  for (int c = 0; c < 12; ++c) {
    const std::size_t n = 40 + rng.bounded(140);
    const std::size_t qubits = 2 + rng.bounded(40);
    const auto set = random_set(n, qubits, rng);
    pcore::PicassoParams params = random_params(rng);
    params.conflict_scheme = kSchemes[c % 5];
    const std::string key = "case " + std::to_string(c) + " scheme=" +
                            pcore::to_string(params.conflict_scheme);
    const auto ref = papi::Session::from_params(params)
                         .solve(papi::Problem::pauli(set))
                         .result;
    const auto fused = papi::SessionBuilder()
                           .params(params)
                           .strategy(papi::ExecutionStrategy::Fused)
                           .build()
                           .solve(papi::Problem::pauli(set))
                           .result;
    ASSERT_EQ(fused.colors, ref.colors) << key;
  }
}
