// Tests for the parallel execution runtime (src/runtime/): thread-pool
// lifecycle under contention, parallel_for chunking edge cases,
// deterministic reductions, balanced range splitting, keyed RNG streams,
// and the thread-local arenas that feed util::memory accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "runtime/arena.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/runtime_config.hpp"
#include "runtime/thread_pool.hpp"
#include "util/memory.hpp"

namespace rt = picasso::runtime;

// ---------------------------------------------------------------------------
// ThreadPool lifecycle.

TEST(ThreadPool, ConstructsAndDestructsIdle) {
  for (int i = 0; i < 8; ++i) {
    rt::ThreadPool pool(4);
    EXPECT_EQ(pool.num_workers(), 4u);
  }  // destructor must join cleanly with no submitted work
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  rt::ThreadPool pool(0);
  EXPECT_GE(pool.num_workers(), 1u);
  EXPECT_EQ(pool.num_workers(), rt::ThreadPool::hardware_threads());
}

TEST(ThreadPool, SubmitDrainExecutesEverything) {
  rt::ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 1000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.drain();
  EXPECT_EQ(counter.load(), kTasks);
  EXPECT_EQ(pool.tasks_executed(), static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    rt::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool drains before joining
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, SubmitUnderContentionFromManyProducers) {
  rt::ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kPerProducer = 500;
  {
    // Producers are themselves pool tasks of a second pool, hammering
    // submit() concurrently.
    rt::ThreadPool producers(4);
    for (int p = 0; p < 4; ++p) {
      producers.submit([&pool, &counter] {
        for (int i = 0; i < kPerProducer; ++i) {
          pool.submit([&counter] { counter.fetch_add(1); });
        }
      });
    }
    producers.drain();
  }
  pool.drain();
  EXPECT_EQ(counter.load(), 4 * kPerProducer);
}

TEST(ThreadPool, WorkStealingMovesTasksAcrossQueues) {
  rt::ThreadPool pool(4);
  // One long task pins a worker; the round-robin submit puts work on its
  // deque that others must steal to finish quickly.
  std::atomic<int> counter{0};
  for (int i = 0; i < 400; ++i) {
    pool.submit([&counter, i] {
      if (i == 0) {
        for (volatile int spin = 0; spin < 5000000; ++spin) {
        }
      }
      counter.fetch_add(1);
    });
  }
  pool.drain();
  EXPECT_EQ(counter.load(), 400);
  EXPECT_GT(pool.tasks_stolen(), 0u);
}

TEST(ThreadPool, SharedPoolIsCachedPerThreadCount) {
  rt::ThreadPool& a = rt::ThreadPool::shared(3);
  rt::ThreadPool& b = rt::ThreadPool::shared(3);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_workers(), 3u);
  rt::ThreadPool& c = rt::ThreadPool::shared(2);
  EXPECT_NE(&a, &c);
}

TEST(TaskGroup, PropagatesTaskExceptionToWaiter) {
  rt::ThreadPool pool(2);
  rt::TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) {
    group.run([i] {
      if (i == 7) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// parallel_for chunking edge cases.

TEST(ParallelFor, EmptyRangeRunsNothing) {
  rt::ThreadPool pool(4);
  std::atomic<int> calls{0};
  rt::parallel_for(&pool, 5, 5, 0, [&](std::size_t) { calls.fetch_add(1); });
  rt::parallel_for(&pool, 7, 3, 0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RangeSmallerThanChunkIsOneInlineChunk) {
  rt::ThreadPool pool(4);
  std::vector<int> hits(3, 0);
  rt::parallel_for(&pool, 0, 3, 1000, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelFor, NullPoolRunsInlineSerially) {
  std::vector<std::size_t> order;
  rt::parallel_for(nullptr, 0, 100, 7, [&](std::size_t i) {
    order.push_back(i);  // safe: inline execution is sequential
  });
  std::vector<std::size_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, EveryIndexVisitedExactlyOnce) {
  rt::ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<std::uint8_t>> visited(kN);
  rt::parallel_for(&pool, 0, kN, 0,
                   [&](std::size_t i) { visited[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(visited[i].load(), 1u);
}

TEST(ParallelFor, ChunkOrdinalsAreContiguousAndCoverRange) {
  rt::ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> spans(64);
  std::atomic<std::size_t> chunks_seen{0};
  rt::parallel_for_chunks(&pool, 10, 1000, 17,
                          [&](const rt::ChunkRange& c) {
                            ASSERT_LT(c.index, spans.size());
                            spans[c.index] = {c.begin, c.end};
                            chunks_seen.fetch_add(1);
                          });
  const std::size_t count = chunks_seen.load();
  ASSERT_GT(count, 0u);
  std::size_t cursor = 10;
  for (std::size_t c = 0; c < count; ++c) {
    EXPECT_EQ(spans[c].first, cursor);
    EXPECT_GT(spans[c].second, spans[c].first);
    cursor = spans[c].second;
  }
  EXPECT_EQ(cursor, 1000u);
}

TEST(ParallelReduce, JoinsInChunkOrderDeterministically) {
  rt::ThreadPool pool(4);
  // Non-commutative join: string concatenation of chunk begins. The result
  // must equal the serial left-to-right fold regardless of schedule.
  auto run = [&](rt::ThreadPool* p) {
    return rt::parallel_reduce(
        p, 0, 1000, 37, std::string(),
        [](const rt::ChunkRange& c) { return std::to_string(c.begin) + ","; },
        [](std::string acc, std::string part) { return acc + part; });
  };
  const std::string serial = run(nullptr);
  for (int rep = 0; rep < 10; ++rep) EXPECT_EQ(run(&pool), serial);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  rt::ThreadPool pool(2);
  const int r = rt::parallel_reduce(
      &pool, 4, 4, 0, 41, [](const rt::ChunkRange&) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(r, 41);
}

TEST(BalancedChunks, BalancesSkewedWeightsAndCoversDomain) {
  // Triangular weights (the reference kernel's shape).
  std::vector<std::uint64_t> weights(1000);
  for (std::size_t u = 0; u < weights.size(); ++u) {
    weights[u] = weights.size() - 1 - u;
  }
  const auto chunks = rt::balanced_chunks(weights, 8);
  ASSERT_GT(chunks.size(), 1u);
  ASSERT_LE(chunks.size(), 8u);
  std::size_t cursor = 0;
  std::uint64_t max_load = 0;
  const std::uint64_t total =
      std::accumulate(weights.begin(), weights.end(), std::uint64_t{0});
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, cursor);
    cursor = c.end;
    std::uint64_t load = 0;
    for (std::size_t i = c.begin; i < c.end; ++i) load += weights[i];
    max_load = std::max(max_load, load);
  }
  EXPECT_EQ(cursor, weights.size());
  // No chunk should carry more than ~3x its fair share.
  EXPECT_LT(max_load, 3 * (total / chunks.size() + 1));
}

TEST(BalancedChunks, EmptyAndSingletonDomains) {
  EXPECT_TRUE(rt::balanced_chunks({}, 4).empty());
  std::vector<std::uint64_t> one{5};
  const auto chunks = rt::balanced_chunks(one, 4);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].begin, 0u);
  EXPECT_EQ(chunks[0].end, 1u);
}

TEST(ChunkRng, StreamsAreDeterministicAndDecorrelated) {
  auto a0 = rt::chunk_rng(1, 0);
  auto a0_again = rt::chunk_rng(1, 0);
  auto a1 = rt::chunk_rng(1, 1);
  auto b0 = rt::chunk_rng(2, 0);
  int same01 = 0, sameseed = 0;
  for (int i = 0; i < 64; ++i) {
    const auto x = a0();
    EXPECT_EQ(x, a0_again());
    same01 += x == a1() ? 1 : 0;
    sameseed += x == b0() ? 1 : 0;
  }
  EXPECT_EQ(same01, 0);
  EXPECT_EQ(sameseed, 0);
}

// ---------------------------------------------------------------------------
// Thread-local arenas.

TEST(Arena, ScopeRewindReusesMemory) {
  rt::Arena& arena = rt::this_thread_arena();
  arena.reset();
  const std::size_t used0 = arena.used_bytes();
  void* first = nullptr;
  {
    rt::Arena::Scope scope(arena);
    auto a = arena.alloc<std::uint64_t>(100);
    first = a.data();
    EXPECT_GT(arena.used_bytes(), used0);
  }
  EXPECT_EQ(arena.used_bytes(), used0);
  rt::Arena::Scope scope(arena);
  auto b = arena.alloc<std::uint64_t>(100);
  EXPECT_EQ(b.data(), first);  // same storage handed back
}

TEST(Arena, AllocZeroedZeroes) {
  rt::Arena& arena = rt::this_thread_arena();
  rt::Arena::Scope scope(arena);
  auto a = arena.alloc<std::uint32_t>(256);
  std::fill(a.begin(), a.end(), 0xdeadbeefu);
  {
    // rewind and re-allocate the same bytes zeroed
  }
  rt::Arena::Scope inner(arena);
  auto z = arena.alloc_zeroed<std::uint32_t>(128);
  for (std::uint32_t v : z) ASSERT_EQ(v, 0u);
}

TEST(Arena, GrowsAcrossBlocksAndTracksPeak) {
  rt::Arena& arena = rt::this_thread_arena();
  arena.reset();
  const std::size_t peak0 = arena.peak_bytes();
  {
    rt::Arena::Scope scope(arena);
    arena.alloc<std::byte>(1 << 20);  // forces a new block beyond 64 KiB
  }
  EXPECT_GE(arena.peak_bytes(), peak0);
  EXPECT_GE(arena.peak_bytes(), std::size_t{1} << 20);
}

TEST(Arena, PerThreadArenasAreDistinctAndPeaksAggregate) {
  rt::ThreadPool pool(4);
  std::mutex m;
  std::set<const rt::Arena*> arenas;
  rt::TaskGroup group(pool);
  for (int i = 0; i < 32; ++i) {
    group.run([&] {
      rt::Arena& a = rt::this_thread_arena();
      rt::Arena::Scope scope(a);
      a.alloc<std::uint64_t>(1024);
      std::lock_guard<std::mutex> lock(m);
      arenas.insert(&a);
    });
  }
  group.wait();
  EXPECT_GE(arenas.size(), 1u);
  EXPECT_LE(arenas.size(), 4u);

  picasso::util::MemoryTracker tracker;
  tracker.allocate(100);
  rt::absorb_thread_arena_peaks(tracker);
  EXPECT_EQ(tracker.current_bytes(), 100u);  // absorb leaves level untouched
  EXPECT_GE(tracker.peak_bytes(), 100 + rt::thread_arena_peak_total());
}
