// Tests for the symbolic Pauli algebra: the single-qubit multiplication
// table, phase-tracked string products, and the anticommutation relation —
// all cross-validated against dense matrix ground truth for small systems.

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "pauli/pauli_string.hpp"
#include "util/rng.hpp"

namespace pp = picasso::pauli;
using C = std::complex<double>;

namespace {

std::vector<C> mat_multiply(const std::vector<C>& a, const std::vector<C>& b,
                            std::size_t dim) {
  std::vector<C> out(dim * dim, C{0, 0});
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < dim; ++k) {
      const C aik = a[i * dim + k];
      if (aik == C{0, 0}) continue;
      for (std::size_t j = 0; j < dim; ++j) {
        out[i * dim + j] += aik * b[k * dim + j];
      }
    }
  }
  return out;
}

bool mat_near(const std::vector<C>& a, const std::vector<C>& b,
              double tol = 1e-12) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

pp::PauliString random_string(std::size_t n, picasso::util::Xoshiro256& rng) {
  pp::PauliString s(n);
  for (std::size_t q = 0; q < n; ++q) {
    s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
  }
  return s;
}

}  // namespace

TEST(PauliOp, CharRoundTrip) {
  for (char c : {'I', 'X', 'Y', 'Z'}) {
    EXPECT_EQ(pp::to_char(pp::op_from_char(c)), c);
  }
  EXPECT_THROW(pp::op_from_char('Q'), std::invalid_argument);
}

TEST(PauliOp, MultiplicationTableMatchesAlgebra) {
  // X*Y = iZ, Y*Z = iX, Z*X = iY; reversed order flips the phase sign;
  // squares are I; identity is neutral.
  using Op = pp::PauliOp;
  struct Case {
    Op a, b, expect;
    unsigned phase;
  };
  const Case cases[] = {
      {Op::X, Op::Y, Op::Z, 1}, {Op::Y, Op::Z, Op::X, 1},
      {Op::Z, Op::X, Op::Y, 1}, {Op::Y, Op::X, Op::Z, 3},
      {Op::Z, Op::Y, Op::X, 3}, {Op::X, Op::Z, Op::Y, 3},
      {Op::X, Op::X, Op::I, 0}, {Op::Y, Op::Y, Op::I, 0},
      {Op::Z, Op::Z, Op::I, 0}, {Op::I, Op::I, Op::I, 0},
      {Op::I, Op::X, Op::X, 0}, {Op::Z, Op::I, Op::Z, 0},
  };
  for (const auto& c : cases) {
    const auto p = pp::multiply(c.a, c.b);
    EXPECT_EQ(p.op, c.expect) << pp::to_char(c.a) << "*" << pp::to_char(c.b);
    EXPECT_EQ(p.phase_exp, c.phase) << pp::to_char(c.a) << "*" << pp::to_char(c.b);
  }
}

TEST(PauliOp, SingleQubitAnticommutation) {
  using Op = pp::PauliOp;
  EXPECT_TRUE(pp::anticommutes(Op::X, Op::Y));
  EXPECT_TRUE(pp::anticommutes(Op::Y, Op::Z));
  EXPECT_FALSE(pp::anticommutes(Op::X, Op::X));
  EXPECT_FALSE(pp::anticommutes(Op::I, Op::X));
  EXPECT_FALSE(pp::anticommutes(Op::I, Op::I));
}

TEST(PauliString, ParseAndPrintRoundTrip) {
  const auto s = pp::PauliString::parse("IXYZ");
  EXPECT_EQ(s.num_qubits(), 4u);
  EXPECT_EQ(s.to_string(), "IXYZ");
  EXPECT_EQ(s.op(0), pp::PauliOp::I);
  EXPECT_EQ(s.op(3), pp::PauliOp::Z);
  EXPECT_THROW(pp::PauliString::parse("AXYZ"), std::invalid_argument);
}

TEST(PauliString, WeightCountsNonIdentity) {
  EXPECT_EQ(pp::PauliString::parse("IIII").weight(), 0u);
  EXPECT_TRUE(pp::PauliString::parse("IIII").is_identity());
  EXPECT_EQ(pp::PauliString::parse("IXIZ").weight(), 2u);
  EXPECT_EQ(pp::PauliString(7).weight(), 0u);
}

TEST(PauliString, ProductAgainstHandComputedExample) {
  // (X ⊗ Y) * (Y ⊗ Y) = (XY) ⊗ (YY) = iZ ⊗ I.
  const auto a = pp::PauliString::parse("XY");
  const auto b = pp::PauliString::parse("YY");
  const auto p = pp::multiply(a, b);
  EXPECT_EQ(p.string.to_string(), "ZI");
  EXPECT_EQ(p.phase(), (C{0, 1}));
}

TEST(PauliString, ProductRequiresEqualWidth) {
  EXPECT_THROW(
      pp::multiply(pp::PauliString::parse("XX"), pp::PauliString::parse("X")),
      std::invalid_argument);
}

TEST(PauliString, ProductMatchesMatrixAlgebra) {
  // Property check: the symbolic product (phase and string) equals the
  // literal matrix product for random strings on up to 4 qubits.
  picasso::util::Xoshiro256 rng(17);
  for (std::size_t n = 1; n <= 4; ++n) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto a = random_string(n, rng);
      const auto b = random_string(n, rng);
      const auto symbolic = pp::multiply(a, b);
      auto expected = mat_multiply(pp::to_matrix(a), pp::to_matrix(b),
                                   std::size_t{1} << n);
      auto got = pp::to_matrix(symbolic.string);
      for (auto& v : got) v *= symbolic.phase();
      EXPECT_TRUE(mat_near(expected, got))
          << a.to_string() << " * " << b.to_string();
    }
  }
}

TEST(PauliString, AnticommutationMatchesMatrixAnticommutator) {
  // anticommutes_with(a, b) must equal {A, B} == 0 on dense matrices.
  picasso::util::Xoshiro256 rng(29);
  for (std::size_t n = 1; n <= 4; ++n) {
    for (int trial = 0; trial < 25; ++trial) {
      const auto a = random_string(n, rng);
      const auto b = random_string(n, rng);
      const std::size_t dim = std::size_t{1} << n;
      const auto ab = mat_multiply(pp::to_matrix(a), pp::to_matrix(b), dim);
      const auto ba = mat_multiply(pp::to_matrix(b), pp::to_matrix(a), dim);
      double norm = 0.0;
      for (std::size_t i = 0; i < ab.size(); ++i) norm += std::abs(ab[i] + ba[i]);
      const bool matrix_anticommute = norm < 1e-12;
      EXPECT_EQ(a.anticommutes_with(b), matrix_anticommute)
          << a.to_string() << " vs " << b.to_string();
    }
  }
}

TEST(PauliString, AnticommutationIsSymmetric) {
  picasso::util::Xoshiro256 rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_string(6, rng);
    const auto b = random_string(6, rng);
    EXPECT_EQ(a.anticommutes_with(b), b.anticommutes_with(a));
  }
}

TEST(PauliString, NothingAnticommutesWithIdentityOrItself) {
  picasso::util::Xoshiro256 rng(37);
  const pp::PauliString identity(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = random_string(5, rng);
    EXPECT_FALSE(s.anticommutes_with(identity));
    EXPECT_FALSE(s.anticommutes_with(s));
  }
}

TEST(PauliString, HashIsConsistentWithEquality) {
  const pp::PauliStringHash hash;
  const auto a = pp::PauliString::parse("XYZI");
  const auto b = pp::PauliString::parse("XYZI");
  const auto c = pp::PauliString::parse("XYZX");
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(PauliString, ToMatrixKnownValues) {
  // Z = diag(1, -1); X flips; Y has the ±i off-diagonals.
  const auto z = pp::to_matrix(pp::PauliString::parse("Z"));
  EXPECT_EQ(z[0], (C{1, 0}));
  EXPECT_EQ(z[3], (C{-1, 0}));
  const auto y = pp::to_matrix(pp::PauliString::parse("Y"));
  EXPECT_EQ(y[1], (C{0, -1}));
  EXPECT_EQ(y[2], (C{0, 1}));
  EXPECT_THROW(pp::to_matrix(pp::PauliString(20)), std::invalid_argument);
}

TEST(PauliString, OrderingIsLexicographic) {
  EXPECT_LT(pp::PauliString::parse("II"), pp::PauliString::parse("IX"));
  EXPECT_LT(pp::PauliString::parse("IX"), pp::PauliString::parse("XI"));
}
