// Tests for the deterministic RNG stack: xoshiro256**, keyed streams, and
// Floyd sampling — the primitives Picasso's reproducibility rests on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace pu = picasso::util;

TEST(SplitMix64, IsDeterministic) {
  pu::SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  pu::SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicGivenSeed) {
  pu::Xoshiro256 a(777), b(777);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, ReseedResetsStream) {
  pu::Xoshiro256 a(5);
  const auto first = a();
  a.reseed(5);
  EXPECT_EQ(a(), first);
}

TEST(Xoshiro256, BoundedStaysInRange) {
  pu::Xoshiro256 rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 20}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, BoundedZeroAndOneAreZero) {
  pu::Xoshiro256 rng(3);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  pu::Xoshiro256 rng(2024);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.bounded(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int count : histogram) {
    EXPECT_NEAR(count, expected, 0.05 * expected);
  }
}

TEST(Xoshiro256, UniformIsInUnitInterval) {
  pu::Xoshiro256 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(KeyedRng, SameKeySameStream) {
  auto a = pu::keyed_rng(1, 2, 3);
  auto b = pu::keyed_rng(1, 2, 3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(KeyedRng, NeighboringKeysDecorrelated) {
  auto a = pu::keyed_rng(1, 2, 3);
  auto b = pu::keyed_rng(1, 2, 4);
  auto c = pu::keyed_rng(1, 3, 3);
  auto d = pu::keyed_rng(2, 2, 3);
  int same_b = 0, same_c = 0, same_d = 0;
  for (int i = 0; i < 64; ++i) {
    const auto va = a();
    same_b += va == b() ? 1 : 0;
    same_c += va == c() ? 1 : 0;
    same_d += va == d() ? 1 : 0;
  }
  EXPECT_LE(same_b, 1);
  EXPECT_LE(same_c, 1);
  EXPECT_LE(same_d, 1);
}

TEST(SampleWithoutReplacement, ProducesSortedDistinctInRange) {
  pu::Xoshiro256 rng(11);
  for (std::uint32_t n : {1u, 5u, 10u, 100u, 1000u}) {
    for (std::uint32_t k : {0u, 1u, 3u, n / 2, n}) {
      const auto sample = pu::sample_without_replacement(n, k, rng);
      ASSERT_EQ(sample.size(), std::min(k, n));
      EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
      std::set<std::uint32_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), sample.size());
      for (auto v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(SampleWithoutReplacement, OversizedKClampsToN) {
  pu::Xoshiro256 rng(4);
  const auto sample = pu::sample_without_replacement(5, 50, rng);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(SampleWithoutReplacement, FullSampleIsIdentitySet) {
  pu::Xoshiro256 rng(8);
  const auto sample = pu::sample_without_replacement(16, 16, rng);
  for (std::uint32_t i = 0; i < 16; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleWithoutReplacement, UniformOverElements) {
  // Each element should appear in a k-of-n sample with probability k/n.
  pu::Xoshiro256 rng(31337);
  constexpr std::uint32_t n = 20, k = 5;
  constexpr int kTrials = 40000;
  std::vector<int> hits(n, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (auto v : pu::sample_without_replacement(n, k, rng)) ++hits[v];
  }
  const double expected = static_cast<double>(kTrials) * k / n;
  for (auto h : hits) EXPECT_NEAR(h, expected, 0.06 * expected);
}

TEST(Shuffle, IsAPermutation) {
  pu::Xoshiro256 rng(9);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  pu::shuffle(shuffled, rng);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// Parameterized determinism sweep: list assignment reproducibility depends
// on keyed streams being schedule-independent for any (seed, iter) pair.
class KeyedRngSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KeyedRngSweep, StreamsAreStableAcrossConstructionOrder) {
  const std::uint64_t seed = GetParam();
  std::vector<std::uint64_t> forward, backward;
  for (std::uint64_t v = 0; v < 32; ++v) {
    forward.push_back(pu::keyed_rng(seed, 7, v)());
  }
  for (std::uint64_t v = 32; v-- > 0;) {
    backward.push_back(pu::keyed_rng(seed, 7, v)());
  }
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyedRngSweep,
                         ::testing::Values(1, 2, 42, 1000003, 0xdeadbeef));
