// Tests for palette geometry and random list assignment (Algorithm 1,
// Lines 5-6): clamping rules, sampling invariants, determinism, and the
// sorted-list intersection primitive.

#include <gtest/gtest.h>

#include <set>

#include "core/palette.hpp"

namespace pcore = picasso::core;

TEST(ComputePalette, PaletteSizeIsPercentOfActive) {
  const auto p = pcore::compute_palette(1000, 12.5, 2.0, 0);
  EXPECT_EQ(p.palette_size, 125u);
  EXPECT_EQ(p.base_color, 0u);
}

TEST(ComputePalette, ListSizeUsesLog10Rule) {
  // L = ceil(2 * log10(1000)) = 6.
  const auto p = pcore::compute_palette(1000, 12.5, 2.0, 0);
  EXPECT_EQ(p.list_size, 6u);
}

TEST(ComputePalette, ListClampsToPaletteInAggressiveMode) {
  // Aggressive (P'=3, alpha=30): L would be 30*log10(n) >> P for small n.
  const auto p = pcore::compute_palette(1000, 3.0, 30.0, 0);
  EXPECT_EQ(p.palette_size, 30u);
  EXPECT_EQ(p.list_size, 30u);  // clamped to P
}

TEST(ComputePalette, MinimaAndEdgeCases) {
  const auto tiny = pcore::compute_palette(1, 1.0, 0.5, 7);
  EXPECT_EQ(tiny.palette_size, 1u);
  EXPECT_EQ(tiny.list_size, 1u);
  EXPECT_EQ(tiny.base_color, 7u);
  const auto zero = pcore::compute_palette(0, 12.5, 2.0, 3);
  EXPECT_EQ(zero.palette_size, 0u);
  const auto all = pcore::compute_palette(10, 100.0, 1.0, 0);
  EXPECT_EQ(all.palette_size, 10u);
  // Palette never exceeds the number of active vertices.
  const auto over = pcore::compute_palette(10, 500.0, 1.0, 0);
  EXPECT_EQ(over.palette_size, 10u);
}

TEST(ComputePalette, BaseColorCarriesThrough) {
  const auto p = pcore::compute_palette(100, 10.0, 1.0, 4200);
  EXPECT_EQ(p.base_color, 4200u);
}

TEST(AssignRandomLists, ListsAreSortedDistinctAndInPalette) {
  const pcore::IterationPalette palette{50, 8, 0};
  const auto lists = pcore::assign_random_lists(200, palette, 1, 0);
  ASSERT_EQ(lists.num_vertices(), 200u);
  ASSERT_EQ(lists.list_size(), 8u);
  for (std::uint32_t v = 0; v < 200; ++v) {
    const auto list = lists.list(v);
    std::set<std::uint32_t> unique(list.begin(), list.end());
    EXPECT_EQ(unique.size(), list.size()) << "v=" << v;
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
    for (auto c : list) EXPECT_LT(c, palette.palette_size);
  }
}

TEST(AssignRandomLists, DeterministicPerSeedAndIteration) {
  const pcore::IterationPalette palette{40, 6, 0};
  const auto a = pcore::assign_random_lists(64, palette, 9, 2);
  const auto b = pcore::assign_random_lists(64, palette, 9, 2);
  for (std::uint32_t v = 0; v < 64; ++v) {
    const auto la = a.list(v);
    const auto lb = b.list(v);
    EXPECT_TRUE(std::equal(la.begin(), la.end(), lb.begin()));
  }
  // A different iteration (or seed) produces different lists somewhere.
  const auto c = pcore::assign_random_lists(64, palette, 9, 3);
  const auto d = pcore::assign_random_lists(64, palette, 10, 2);
  int diff_c = 0, diff_d = 0;
  for (std::uint32_t v = 0; v < 64; ++v) {
    const auto la = a.list(v);
    const auto lc = c.list(v);
    const auto ld = d.list(v);
    diff_c += std::equal(la.begin(), la.end(), lc.begin()) ? 0 : 1;
    diff_d += std::equal(la.begin(), la.end(), ld.begin()) ? 0 : 1;
  }
  EXPECT_GT(diff_c, 0);
  EXPECT_GT(diff_d, 0);
}

TEST(AssignRandomLists, CoversPaletteApproximatelyUniformly) {
  // With n*L = 6000 draws over 60 colors, each color should appear about
  // 100 times; allow generous slack.
  const pcore::IterationPalette palette{60, 6, 0};
  const auto lists = pcore::assign_random_lists(1000, palette, 123, 0);
  std::vector<int> histogram(60, 0);
  for (std::uint32_t v = 0; v < 1000; ++v) {
    for (auto c : lists.list(v)) ++histogram[c];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 50);
    EXPECT_LT(count, 170);
  }
}

TEST(ColorLists, FirstSharedColorAgainstBruteForce) {
  const pcore::IterationPalette palette{30, 5, 0};
  const auto lists = pcore::assign_random_lists(80, palette, 77, 1);
  for (std::uint32_t u = 0; u < 80; ++u) {
    for (std::uint32_t v = 0; v < 80; ++v) {
      const auto lu = lists.list(u);
      const auto lv = lists.list(v);
      std::uint32_t expected = pcore::ColorLists::kNoShared;
      for (auto cu : lu) {
        if (std::find(lv.begin(), lv.end(), cu) != lv.end()) {
          expected = cu;
          break;
        }
      }
      EXPECT_EQ(lists.first_shared_color(u, v), expected);
      EXPECT_EQ(lists.share_color(u, v),
                expected != pcore::ColorLists::kNoShared);
    }
  }
}

TEST(ColorLists, SelfAlwaysShares) {
  const pcore::IterationPalette palette{20, 4, 0};
  const auto lists = pcore::assign_random_lists(10, palette, 5, 0);
  for (std::uint32_t v = 0; v < 10; ++v) {
    EXPECT_EQ(lists.first_shared_color(v, v), lists.list(v)[0]);
  }
}

TEST(ColorLists, LogicalBytesNonZero) {
  const pcore::IterationPalette palette{20, 4, 0};
  const auto lists = pcore::assign_random_lists(10, palette, 5, 0);
  EXPECT_GE(lists.logical_bytes(), 10u * 4u * sizeof(std::uint32_t));
}
