// The bit-packed symplectic representation and its kernels: round-trip
// encode/decode, the anticommutation truth table against the scalar
// symplectic and inverse-one-hot checks (exhaustive on 1-3 qubits),
// word-boundary widths (63/64/65 qubits), and scalar-vs-AVX2 block-kernel
// agreement whenever the CPU can run both.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/oracles.hpp"
#include "pauli/pauli_packed.hpp"
#include "pauli/pauli_set.hpp"
#include "pauli/pauli_string.hpp"
#include "util/rng.hpp"

namespace pp = picasso::pauli;
namespace pg = picasso::graph;
namespace pu = picasso::util;

namespace {

std::vector<pp::PauliString> random_strings(std::size_t count,
                                            std::size_t qubits,
                                            std::uint64_t seed) {
  pu::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// All 4^q strings over q qubits (exhaustive truth-table inputs).
std::vector<pp::PauliString> all_strings(std::size_t qubits) {
  std::vector<pp::PauliString> out;
  const std::size_t count = std::size_t{1} << (2 * qubits);
  out.reserve(count);
  for (std::size_t code = 0; code < count; ++code) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>((code >> (2 * q)) & 3));
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

// --------------------------------------------------------------------------
// Representation round trips.

TEST(PackedPauliSet, EncodeDecodeRoundTrip) {
  for (const std::size_t qubits : {1u, 2u, 5u, 21u, 63u, 64u, 65u, 130u}) {
    const auto strings = random_strings(37, qubits, 1000 + qubits);
    const pp::PackedPauliSet packed(strings);
    ASSERT_EQ(packed.size(), strings.size());
    ASSERT_EQ(packed.num_qubits(), qubits);
    ASSERT_EQ(packed.words(), (qubits + 63) / 64);
    for (std::size_t i = 0; i < strings.size(); ++i) {
      EXPECT_EQ(packed.string(i), strings[i]) << "qubits=" << qubits;
    }
  }
}

TEST(PackedPauliSet, MatchesThePauliSetPlanes) {
  const auto strings = random_strings(64, 70, 77);
  const pp::PauliSet set(strings);
  const pp::PackedPauliSet from_strings(strings);
  const pp::PackedPauliSet from_set(set);

  // The borrowed view and both owning copies hold identical records.
  const pp::PackedView borrowed = set.packed_view();
  ASSERT_EQ(borrowed.size, strings.size());
  ASSERT_EQ(borrowed.words, from_strings.words());
  for (std::size_t i = 0; i < strings.size(); ++i) {
    for (std::size_t k = 0; k < 2 * borrowed.words; ++k) {
      EXPECT_EQ(borrowed.record(i)[k], from_strings.record(i)[k]);
      EXPECT_EQ(borrowed.record(i)[k], from_set.record(i)[k]);
    }
  }
}

TEST(PackedPauliSet, FromRawRejectsWordCountMismatch) {
  EXPECT_THROW(pp::PackedPauliSet::from_raw(64, 3, std::vector<std::uint64_t>(5)),
               std::invalid_argument);
}

TEST(PackedPauliSet, RejectsInconsistentQubitCounts) {
  std::vector<pp::PauliString> strings{pp::PauliString(4), pp::PauliString(5)};
  EXPECT_THROW(pp::PackedPauliSet{strings}, std::invalid_argument);
}

// --------------------------------------------------------------------------
// Anticommutation truth table, exhaustive on 1-3 qubits.

TEST(PackedKernels, ExhaustiveTruthTableUpToThreeQubits) {
  for (const std::size_t qubits : {1u, 2u, 3u}) {
    const auto strings = all_strings(qubits);
    const pp::PauliSet set(strings);
    const pp::PackedPauliSet packed(strings);
    for (std::size_t i = 0; i < strings.size(); ++i) {
      for (std::size_t j = 0; j < strings.size(); ++j) {
        const bool truth = strings[i].anticommutes_with(strings[j]);
        ASSERT_EQ(packed.anticommute(i, j), truth)
            << "q=" << qubits << " i=" << i << " j=" << j;
        // Agreement with both existing kernels, not just the symbolic check.
        ASSERT_EQ(set.anticommute(i, j), truth);
        ASSERT_EQ(set.anticommute_symplectic(i, j), truth);
      }
    }
  }
}

TEST(PackedKernels, WordBoundaryWidths) {
  for (const std::size_t qubits : {63u, 64u, 65u}) {
    const auto strings = random_strings(48, qubits, 31 * qubits);
    const pp::PauliSet set(strings);
    const pp::PackedPauliSet packed(strings);
    for (std::size_t i = 0; i < strings.size(); ++i) {
      for (std::size_t j = i + 1; j < strings.size(); ++j) {
        ASSERT_EQ(packed.anticommute(i, j),
                  strings[i].anticommutes_with(strings[j]))
            << "qubits=" << qubits << " i=" << i << " j=" << j;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Block kernels: scalar blocks vs per-pair, and AVX2 vs scalar.

TEST(PackedKernels, ScalarBlockMatchesPerPair) {
  for (const std::size_t qubits : {8u, 64u, 100u, 129u, 250u}) {
    const auto strings = random_strings(150, qubits, 7 * qubits + 1);
    const pp::PackedPauliSet packed(strings);
    const auto kernel =
        pp::resolve_block_kernel(packed.words(), pp::SimdLevel::Scalar);
    std::vector<std::uint32_t> ids(packed.size());
    std::iota(ids.begin(), ids.end(), 0u);
    std::vector<std::uint64_t> swapped(2 * packed.words());
    std::vector<std::uint8_t> out(ids.size());
    for (std::size_t u = 0; u < packed.size(); u += 17) {
      pp::make_swapped_record(packed.record(u), packed.words(),
                              swapped.data());
      kernel(swapped.data(), packed.view().data, packed.words(), ids.data(),
             ids.size(), out.data());
      for (std::size_t k = 0; k < ids.size(); ++k) {
        ASSERT_EQ(out[k] != 0, packed.anticommute(u, ids[k]))
            << "qubits=" << qubits << " u=" << u << " k=" << k;
      }
    }
  }
}

TEST(PackedKernels, Avx2AgreesWithScalarWhenAvailable) {
  if (pp::best_simd_level() != pp::SimdLevel::Avx2) {
    GTEST_SKIP() << "CPU lacks AVX2; scalar-only platform";
  }
  pu::Xoshiro256 rng(99);
  for (const std::size_t qubits : {1u, 17u, 63u, 64u, 65u, 128u, 129u, 300u}) {
    const auto strings = random_strings(200, qubits, 1234 + qubits);
    const pp::PackedPauliSet packed(strings);
    const auto scalar =
        pp::resolve_block_kernel(packed.words(), pp::SimdLevel::Scalar);
    const auto simd =
        pp::resolve_block_kernel(packed.words(), pp::SimdLevel::Avx2);
    // Random candidate subsets of varying length, including the <4 tail.
    for (std::size_t trial = 0; trial < 12; ++trial) {
      const std::size_t count = 1 + rng.bounded(packed.size());
      std::vector<std::uint32_t> ids(count);
      for (auto& id : ids) {
        id = static_cast<std::uint32_t>(rng.bounded(packed.size()));
      }
      const auto u = static_cast<std::size_t>(rng.bounded(packed.size()));
      std::vector<std::uint64_t> swapped(2 * packed.words());
      pp::make_swapped_record(packed.record(u), packed.words(),
                              swapped.data());
      std::vector<std::uint8_t> out_scalar(count), out_simd(count);
      scalar(swapped.data(), packed.view().data, packed.words(), ids.data(),
             count, out_scalar.data());
      simd(swapped.data(), packed.view().data, packed.words(), ids.data(),
           count, out_simd.data());
      for (std::size_t k = 0; k < count; ++k) {
        ASSERT_EQ(out_scalar[k], out_simd[k])
            << "qubits=" << qubits << " trial=" << trial << " k=" << k;
      }
    }
  }
}

TEST(PackedKernels, SimdLevelResolution) {
  EXPECT_NE(pp::best_simd_level(), pp::SimdLevel::Auto);
  EXPECT_EQ(pp::resolve_simd_level(pp::SimdLevel::Scalar),
            pp::SimdLevel::Scalar);
  EXPECT_EQ(pp::resolve_simd_level(pp::SimdLevel::Auto),
            pp::best_simd_level());
  // An explicit AVX2 request never resolves above what the CPU has.
  const auto resolved = pp::resolve_simd_level(pp::SimdLevel::Avx2);
  EXPECT_TRUE(resolved == pp::best_simd_level() ||
              resolved == pp::SimdLevel::Scalar);
}

// --------------------------------------------------------------------------
// The packed conflict oracle.

TEST(PackedComplementOracle, EdgeAndEdgeBlockMatchTheScalarOracle) {
  const auto strings = random_strings(120, 40, 555);
  const pp::PauliSet set(strings);
  const pg::ComplementOracle scalar(set);
  const pg::PackedComplementOracle packed(set.packed_view());

  ASSERT_EQ(packed.num_vertices(), scalar.num_vertices());
  std::vector<std::uint32_t> ids(set.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::vector<std::uint8_t> block(set.size());
  for (std::uint32_t u = 0; u < set.size(); ++u) {
    packed.edge_block(u, ids.data(), ids.size(), block.data());
    for (std::uint32_t v = 0; v < set.size(); ++v) {
      const bool expected = scalar.edge(u, v);
      ASSERT_EQ(packed.edge(u, v), expected) << "u=" << u << " v=" << v;
      ASSERT_EQ(block[v] != 0, expected) << "u=" << u << " v=" << v;
    }
  }
}

TEST(PackedAnticommuteOracle, MatchesTheScalarAnticommuteOracle) {
  const auto strings = random_strings(80, 66, 777);
  const pp::PauliSet set(strings);
  const pg::AnticommuteOracle scalar(set);
  const pg::PackedAnticommuteOracle packed(set.packed_view());
  std::vector<std::uint32_t> ids(set.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::vector<std::uint8_t> block(set.size());
  for (std::uint32_t u = 0; u < set.size(); u += 3) {
    packed.edge_block(u, ids.data(), ids.size(), block.data());
    for (std::uint32_t v = 0; v < set.size(); ++v) {
      ASSERT_EQ(packed.edge(u, v), scalar.edge(u, v));
      ASSERT_EQ(block[v] != 0, scalar.edge(u, v));
    }
  }
}

TEST(PackedComplementOracle, EmptyAndZeroQubitSets) {
  const pp::PackedPauliSet empty;
  const pg::PackedComplementOracle oracle(empty.view());
  EXPECT_EQ(oracle.num_vertices(), 0u);

  // 0-qubit strings all commute: complement edges everywhere off-diagonal.
  const std::vector<pp::PauliString> zeros(3, pp::PauliString(0));
  const pp::PackedPauliSet packed(zeros);
  const pg::PackedComplementOracle z_oracle(packed.view());
  EXPECT_FALSE(z_oracle.edge(1, 1));
  EXPECT_TRUE(z_oracle.edge(0, 2));
}
