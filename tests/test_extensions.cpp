// Tests for the extension features beyond the paper's core pipeline:
// grouping modes (qubit-wise / general commutativity), the semi-streaming
// driver, the simulated multi-device driver (§VIII future work), iterated
// greedy refinement, and the Auto conflict-kernel policy.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "api/session.hpp"
#include "coloring/refine.hpp"
#include "coloring/verify.hpp"
#include "core/clique_partition.hpp"
#include "core/multi_device.hpp"
#include "core/streaming.hpp"
#include "graph/graph_gen.hpp"
#include "graph/graph_io.hpp"
#include "graph/oracles.hpp"
#include "pauli/datasets.hpp"

namespace pp = picasso::pauli;
namespace pg = picasso::graph;
namespace pc = picasso::coloring;
namespace pcore = picasso::core;
namespace papi = picasso::api;

namespace {

pp::PauliSet random_set(std::size_t count, std::size_t qubits,
                        std::uint64_t seed) {
  picasso::util::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  for (std::size_t i = 0; i < count; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(s);
  }
  return pp::PauliSet(strings);
}

}  // namespace

// --- Qubit-wise commutativity -----------------------------------------------

TEST(Qwc, MatchesCharacterLevelDefinition) {
  const auto set = random_set(80, 27, 3);  // crosses symplectic word... no, 27 < 64; structure still fine
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = 0; j < set.size(); ++j) {
      const auto a = set.string(i);
      const auto b = set.string(j);
      bool expected = true;
      for (std::size_t q = 0; q < a.num_qubits(); ++q) {
        if (pp::anticommutes(a.op(q), b.op(q))) expected = false;
      }
      ASSERT_EQ(set.qubit_wise_commute(i, j), expected)
          << a.to_string() << " vs " << b.to_string();
    }
  }
}

TEST(Qwc, CrossesWordBoundary) {
  // 70 qubits: two symplectic words; place the single differing position
  // beyond bit 63.
  pp::PauliString a(70), b(70);
  a.set_op(66, pp::PauliOp::X);
  b.set_op(66, pp::PauliOp::Y);
  const pp::PauliSet set({a, b});
  EXPECT_FALSE(set.qubit_wise_commute(0, 1));
  b.set_op(66, pp::PauliOp::X);
  const pp::PauliSet same({a, b});
  EXPECT_TRUE(same.qubit_wise_commute(0, 1));
}

TEST(Qwc, ImpliesGeneralCommutation) {
  const auto set = random_set(100, 8, 5);
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = 0; j < set.size(); ++j) {
      if (set.qubit_wise_commute(i, j)) {
        EXPECT_FALSE(set.anticommute(i, j));
      }
    }
  }
}

// --- Grouping modes ----------------------------------------------------------

TEST(GroupingModes, PairSatisfiesMatchesRelations) {
  const pp::PauliSet set({pp::PauliString::parse("XI"),
                          pp::PauliString::parse("YI"),
                          pp::PauliString::parse("XX")});
  using M = pcore::GroupingMode;
  // XI vs YI: anticommute at position 0.
  EXPECT_TRUE(pcore::pair_satisfies(set, M::Unitary, 0, 1));
  EXPECT_FALSE(pcore::pair_satisfies(set, M::GeneralCommute, 0, 1));
  EXPECT_FALSE(pcore::pair_satisfies(set, M::QubitWiseCommute, 0, 1));
  // XI vs XX: equal or identity at every position -> QWC.
  EXPECT_TRUE(pcore::pair_satisfies(set, M::QubitWiseCommute, 0, 2));
  EXPECT_TRUE(pcore::pair_satisfies(set, M::GeneralCommute, 0, 2));
  EXPECT_FALSE(pcore::pair_satisfies(set, M::Unitary, 0, 2));
}

class GroupingModeSweep : public ::testing::TestWithParam<pcore::GroupingMode> {
};

TEST_P(GroupingModeSweep, PartitionIsValidUnderItsMode) {
  const auto mode = GetParam();
  const auto set = random_set(150, 6, 7);
  pcore::PicassoParams params;
  params.palette_percent = 15.0;
  params.alpha = 3.0;
  params.seed = 7;
  const auto result = pcore::partition_pauli_strings(set, params, mode);
  const std::string violation =
      pcore::verify_partition(set, result.groups, mode);
  EXPECT_TRUE(violation.empty()) << to_string(mode) << ": " << violation;
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, GroupingModeSweep,
    ::testing::Values(pcore::GroupingMode::Unitary,
                      pcore::GroupingMode::GeneralCommute,
                      pcore::GroupingMode::QubitWiseCommute));

TEST(GroupingModes, QwcPartitionIsAlsoValidGeneralCommutePartition) {
  // QWC is a strictly stronger relation, so every QWC group is a commute
  // group as well.
  const auto set = random_set(120, 5, 9);
  pcore::PicassoParams params;
  params.seed = 2;
  const auto result = pcore::partition_pauli_strings(
      set, params, pcore::GroupingMode::QubitWiseCommute);
  EXPECT_TRUE(pcore::verify_partition(set, result.groups,
                                      pcore::GroupingMode::QubitWiseCommute)
                  .empty());
  EXPECT_TRUE(pcore::verify_partition(set, result.groups,
                                      pcore::GroupingMode::GeneralCommute)
                  .empty());
}

TEST(GroupingModes, VerifierRejectsWrongMode) {
  // XI and YI anticommute: a valid unitary group, invalid commute group.
  const pp::PauliSet set({pp::PauliString::parse("XI"),
                          pp::PauliString::parse("YI")});
  pcore::UnitaryGroup g;
  g.members = {0, 1};
  EXPECT_TRUE(pcore::verify_partition(set, {g}, pcore::GroupingMode::Unitary)
                  .empty());
  EXPECT_FALSE(pcore::verify_partition(set, {g},
                                       pcore::GroupingMode::GeneralCommute)
                   .empty());
}

TEST(GroupingModes, Names) {
  EXPECT_STREQ(pcore::to_string(pcore::GroupingMode::Unitary),
               "unitary (anticommute)");
  EXPECT_STREQ(pcore::to_string(pcore::GroupingMode::QubitWiseCommute),
               "qubit-wise-commute");
}

// --- Semi-streaming driver ---------------------------------------------------

class StreamingEquivalence
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(StreamingEquivalence, MatchesOracleDriverExactly) {
  const auto [percent, seed] = GetParam();
  const auto g = pg::erdos_renyi(300, 0.3, seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (pg::VertexId u = 0; u < g.num_vertices(); ++u) {
    for (pg::VertexId v : g.neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  const pcore::VectorEdgeStream stream(std::move(edges));

  pcore::PicassoParams params;
  params.palette_percent = percent;
  params.seed = seed;
  const auto streamed =
      papi::Session::from_params(params)
          .solve(papi::Problem::edge_stream(g.num_vertices(), stream))
          .result;
  const auto oracled = papi::Session::from_params(params).solve(papi::Problem::csr(g)).result;
  EXPECT_EQ(streamed.colors, oracled.colors);
  EXPECT_EQ(streamed.num_colors, oracled.num_colors);
  EXPECT_EQ(streamed.iterations.size(), oracled.iterations.size());
}

INSTANTIATE_TEST_SUITE_P(
    ParamsAndSeeds, StreamingEquivalence,
    ::testing::Combine(::testing::Values(5.0, 12.5, 20.0),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Streaming, FileStreamNeverHoldsTheGraph) {
  const auto g = pg::erdos_renyi(200, 0.2, 4);
  const auto path = std::filesystem::temp_directory_path() / "stream_test.el";
  pg::write_edge_list_file(path.string(), g);

  const pcore::FileEdgeStream stream(path.string());
  EXPECT_EQ(stream.num_vertices(), g.num_vertices());
  EXPECT_EQ(stream.num_edges(), g.num_edges());

  pcore::PicassoParams params;
  params.seed = 11;
  const auto streamed =
      papi::Session::from_params(params)
          .solve(papi::Problem::edge_stream(stream.num_vertices(), stream))
          .result;
  const auto oracled = papi::Session::from_params(params).solve(papi::Problem::csr(g)).result;
  EXPECT_EQ(streamed.colors, oracled.colors);
  std::filesystem::remove(path);
}

TEST(Streaming, FileStreamRejectsMissingOrEmptyFiles) {
  EXPECT_THROW(pcore::FileEdgeStream("/nonexistent/file.el"),
               std::runtime_error);
  const auto path = std::filesystem::temp_directory_path() / "empty_test.el";
  std::ofstream(path.string()).close();
  EXPECT_THROW(pcore::FileEdgeStream(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Streaming, ValidOnPauliDerivedEdges) {
  const auto set = pp::fig1_h2_set();
  const pg::ComplementOracle oracle(set);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < oracle.num_vertices(); ++u) {
    for (std::uint32_t v = u + 1; v < oracle.num_vertices(); ++v) {
      if (oracle.edge(u, v)) edges.emplace_back(u, v);
    }
  }
  const pcore::VectorEdgeStream stream(std::move(edges));
  pcore::PicassoParams params;
  params.palette_percent = 40.0;
  params.alpha = 30.0;
  params.seed = 3;
  const auto r =
      papi::Session::from_params(params)
          .solve(papi::Problem::edge_stream(
              static_cast<std::uint32_t>(set.size()), stream))
          .result;
  EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors));
}

// --- Multi-device driver -----------------------------------------------------

TEST(MultiDevice, EdgeShardIsDeterministicAndInRange) {
  for (std::uint32_t d : {1u, 2u, 5u, 8u}) {
    for (std::uint32_t u = 0; u < 50; ++u) {
      for (std::uint32_t v = u + 1; v < 50; ++v) {
        const auto shard = pcore::edge_shard(u, v, d);
        EXPECT_LT(shard, d);
        EXPECT_EQ(shard, pcore::edge_shard(u, v, d));
      }
    }
  }
}

class MultiDeviceSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MultiDeviceSweep, ColoringMatchesSingleDeviceDriver) {
  const std::uint32_t num_devices = GetParam();
  const auto g = pg::erdos_renyi_dense(250, 0.5, 13);
  const pg::DenseOracle oracle(g);
  pcore::PicassoParams params;
  params.seed = 13;

  const auto single = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  const auto multi = papi::SessionBuilder()
                         .params(params)
                         .devices(num_devices, 64u << 20)
                         .build()
                         .solve(papi::Problem::oracle(oracle));

  EXPECT_EQ(multi.result.colors, single.colors);
  EXPECT_EQ(multi.devices.size(), num_devices);
  // Shards cover all conflict edges across all iterations.
  std::uint64_t iter_edges = 0;
  for (const auto& it : multi.result.iterations) {
    iter_edges += it.conflict_edges;
  }
  EXPECT_EQ(multi.total_shard_edges(), iter_edges);
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, MultiDeviceSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(MultiDevice, LoadIsReasonablyBalancedAndPeaksShrink) {
  const auto g = pg::erdos_renyi_dense(400, 0.5, 17);
  const pg::DenseOracle oracle(g);
  pcore::PicassoParams params;
  params.seed = 17;

  const auto single = papi::SessionBuilder()
                          .params(params)
                          .devices(1, 256u << 20)
                          .build()
                          .solve(papi::Problem::oracle(oracle));

  const auto sharded = papi::SessionBuilder()
                           .params(params)
                           .devices(4, 256u << 20)
                           .build()
                           .solve(papi::Problem::oracle(oracle));

  EXPECT_LT(sharded.shard_imbalance(), 1.3);
  // Per-device peak drops substantially (not exactly 1/4: counters are
  // replicated per device).
  EXPECT_LT(sharded.max_device_peak_bytes(),
            static_cast<std::size_t>(0.6 * single.max_device_peak_bytes()));
}

TEST(MultiDevice, TinyBudgetThrows) {
  const auto g = pg::erdos_renyi_dense(300, 0.8, 19);
  const pg::DenseOracle oracle(g);
  pcore::PicassoParams params;
  params.palette_percent = 5.0;
  params.alpha = 4.0;
  const auto session = papi::SessionBuilder()
                           .params(params)
                           .devices(2, 8 << 10)  // 8 KB: cannot hold counters
                           .build();
  EXPECT_THROW(session.solve(papi::Problem::oracle(oracle)),
               picasso::device::DeviceOutOfMemory);
}

// --- Iterated greedy refinement ----------------------------------------------

TEST(Refine, NeverIncreasesColorsAndStaysValid) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto g = pg::erdos_renyi_dense(300, 0.4, seed);
    auto r = pc::greedy_color(g, pc::OrderingKind::Random, seed);
    const std::uint32_t before = r.num_colors;
    for (auto order : {pc::RefineOrder::ReverseClasses,
                       pc::RefineOrder::LargestFirst,
                       pc::RefineOrder::RandomClasses}) {
      auto colors = r.colors;
      const auto refined = pc::iterated_greedy_refine(g, colors, 6, order, seed);
      EXPECT_LE(refined.colors_after, before) << to_string(order);
      EXPECT_EQ(refined.colors_before, before);
      EXPECT_TRUE(pc::is_valid_coloring(g, colors)) << to_string(order);
      EXPECT_EQ(pc::count_colors(colors), refined.colors_after);
    }
  }
}

TEST(Refine, CrushesAWastefulColoring) {
  // Identity coloring of a path (n colors); refinement should reach 2-3.
  const auto g = pg::path_graph(64);
  std::vector<std::uint32_t> colors(64);
  for (std::uint32_t v = 0; v < 64; ++v) colors[v] = v;
  const auto refined = pc::iterated_greedy_refine(
      g, colors, 8, pc::RefineOrder::ReverseClasses, 1);
  EXPECT_LE(refined.colors_after, 3u);
  EXPECT_TRUE(pc::is_valid_coloring(g, colors));
}

TEST(Refine, OracleOverloadImprovesPicassoOutput) {
  const auto set = random_set(200, 6, 23);
  const pg::ComplementOracle oracle(set);
  pcore::PicassoParams params;
  params.seed = 23;
  auto r = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;
  const std::uint32_t before = r.num_colors;
  const auto refined = pc::iterated_greedy_refine_oracle(oracle, r.colors, 3);
  EXPECT_LE(refined.colors_after, before);
  EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors));
}

// --- Auto kernel policy ------------------------------------------------------

TEST(AutoKernel, ResolvesByListDensity) {
  using K = pcore::ConflictKernel;
  // Sparse lists: L^2 < P -> Indexed.
  EXPECT_EQ(pcore::resolve_kernel(K::Auto, 1000, 10), K::Indexed);
  // Dense lists: L^2 >= P -> Reference.
  EXPECT_EQ(pcore::resolve_kernel(K::Auto, 100, 10), K::Reference);
  EXPECT_EQ(pcore::resolve_kernel(K::Auto, 99, 10), K::Reference);
  // Explicit choices pass through.
  EXPECT_EQ(pcore::resolve_kernel(K::Reference, 1000, 10), K::Reference);
  EXPECT_EQ(pcore::resolve_kernel(K::Indexed, 100, 10), K::Indexed);
}

// Backend-dependent per-pair cost: a block-capable (packed SIMD) oracle
// makes reference slots cheaper, so the crossover shifts by
// kBlockedOraclePairCost. Pins the chosen kernel on both sides of the
// threshold for both oracle classes.
TEST(AutoKernel, BlockOracleShiftsTheCrossover) {
  using K = pcore::ConflictKernel;
  const std::uint64_t c = pcore::kBlockedOraclePairCost;
  ASSERT_GT(c, 1u);
  // L = 8, L^2 = 64. Per-pair oracle: crossover at P = 64. Blocked oracle:
  // crossover at P = 64 * c.
  EXPECT_EQ(pcore::resolve_kernel(K::Auto, 65, 8, /*blocked=*/false),
            K::Indexed);
  EXPECT_EQ(pcore::resolve_kernel(K::Auto, 64, 8, /*blocked=*/false),
            K::Reference);
  EXPECT_EQ(pcore::resolve_kernel(K::Auto, 64 * c + 1, 8, /*blocked=*/true),
            K::Indexed);
  EXPECT_EQ(pcore::resolve_kernel(K::Auto, 64 * c, 8, /*blocked=*/true),
            K::Reference);
  // The band in between is where the backend flips the decision: the same
  // (P, L) point picks Indexed with a per-pair oracle and Reference with a
  // blocked one — exactly the pauli_backend dependence the Auto model was
  // missing.
  EXPECT_EQ(pcore::resolve_kernel(K::Auto, 100, 8, /*blocked=*/false),
            K::Indexed);
  EXPECT_EQ(pcore::resolve_kernel(K::Auto, 100, 8, /*blocked=*/true),
            K::Reference);
  // Explicit choices still pass through untouched.
  EXPECT_EQ(pcore::resolve_kernel(K::Indexed, 64, 8, true), K::Indexed);
  EXPECT_EQ(pcore::resolve_kernel(K::Reference, 4096, 8, true), K::Reference);
}

TEST(AutoKernel, ProducesIdenticalColoringsToBothKernels) {
  const auto g = pg::erdos_renyi_dense(200, 0.5, 29);
  for (auto [percent, alpha] : {std::pair{12.5, 2.0}, std::pair{3.0, 30.0}}) {
    pcore::PicassoParams params;
    params.palette_percent = percent;
    params.alpha = alpha;
    params.seed = 29;
    params.kernel = pcore::ConflictKernel::Auto;
    const auto auto_r = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
    params.kernel = pcore::ConflictKernel::Reference;
    const auto ref_r = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
    EXPECT_EQ(auto_r.colors, ref_r.colors);
  }
}
