// Wire-framing robustness on a socketpair: frames delivered byte-at-a-time
// must reassemble, EINTR during a blocking read must be retried, injected
// short writes must still deliver whole frames, and the idle/io timeouts
// must throw WireTimeout instead of hanging the reader.

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "service/wire.hpp"
#include "util/failpoint.hpp"

namespace psvc = picasso::service;
namespace pfp = picasso::util::failpoints;

namespace {

/// Raw length-prefixed frame bytes, as Connection::write_frame lays them out.
std::vector<std::uint8_t> raw_frame(psvc::FrameType type,
                                    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> bytes;
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    bytes.push_back(static_cast<std::uint8_t>((len >> shift) & 0xffu));
  }
  bytes.push_back(static_cast<std::uint8_t>(type));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0) {
      a = sv[0];
      b = sv[1];
    }
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  /// Hands fd `a` to a Connection (which then owns and closes it).
  psvc::Connection take_a() {
    psvc::Connection conn(a);
    a = -1;
    return conn;
  }
};

void sigusr1_noop(int) {}

class WireSocketpairTest : public ::testing::Test {
 protected:
  void SetUp() override { pfp::disarm_all(); }
  void TearDown() override { pfp::disarm_all(); }
};

}  // namespace

TEST_F(WireSocketpairTest, ByteAtATimeFramesReassemble) {
  SocketPair pair;
  ASSERT_GE(pair.b, 0);
  psvc::Connection reader = pair.take_a();

  std::vector<std::uint8_t> payload(257);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  const auto bytes = raw_frame(psvc::FrameType::Progress, payload);

  std::thread feeder([&] {
    // Two frames delivered one byte at a time, then a clean close: the
    // reader must see exactly two intact frames and then EOF.
    for (int rep = 0; rep < 2; ++rep) {
      for (const std::uint8_t byte : bytes) {
        ASSERT_EQ(::send(pair.b, &byte, 1, 0), 1);
        if (rep == 0 && (byte % 64) == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    }
    ::shutdown(pair.b, SHUT_WR);
  });

  psvc::Frame frame;
  for (int rep = 0; rep < 2; ++rep) {
    ASSERT_TRUE(reader.read_frame(frame)) << "frame " << rep;
    EXPECT_EQ(frame.type, psvc::FrameType::Progress);
    EXPECT_EQ(frame.payload, payload);
  }
  EXPECT_FALSE(reader.read_frame(frame)) << "expected clean EOF";
  feeder.join();
}

TEST_F(WireSocketpairTest, EintrDuringBlockingReadIsRetried) {
  // A no-SA_RESTART handler makes recv() actually return EINTR.
  struct sigaction action {};
  struct sigaction saved {};
  action.sa_handler = sigusr1_noop;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &saved), 0);

  SocketPair pair;
  ASSERT_GE(pair.b, 0);
  psvc::Connection reader = pair.take_a();

  std::vector<std::uint8_t> payload(4096, 0xab);
  const auto bytes = raw_frame(psvc::FrameType::Result, payload);

  std::atomic<bool> done{false};
  psvc::Frame frame;
  bool got = false;
  std::thread reading([&] {
    got = reader.read_frame(frame);
    done.store(true, std::memory_order_release);
  });
  const pthread_t handle = reading.native_handle();

  // Pepper the blocked reader with signals while feeding the frame slowly:
  // every recv is interruptible, none of the interruptions may be lost as
  // data or surfaced as an error.
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    pthread_kill(handle, SIGUSR1);
    const std::size_t n = std::min<std::size_t>(128, bytes.size() - sent);
    ASSERT_EQ(::send(pair.b, bytes.data() + sent, n, 0),
              static_cast<ssize_t>(n));
    sent += n;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  while (!done.load(std::memory_order_acquire)) {
    pthread_kill(handle, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  reading.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &saved, nullptr), 0);

  ASSERT_TRUE(got);
  EXPECT_EQ(frame.type, psvc::FrameType::Result);
  EXPECT_EQ(frame.payload, payload);
}

TEST_F(WireSocketpairTest, InjectedShortWritesStillDeliverWholeFrames) {
  SocketPair pair;
  ASSERT_GE(pair.b, 0);
  psvc::Connection writer = pair.take_a();
  psvc::Connection reader(pair.b);
  pair.b = -1;

  std::vector<std::uint8_t> payload(1024);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }

  // Clamp every send to 3 bytes: write_all must loop until the frame is
  // fully on the wire.
  pfp::arm("wire.send", {pfp::Mode::ShortIo, 3, -1});
  std::thread writing(
      [&] { writer.write_frame(psvc::FrameType::Result, payload); });

  psvc::Frame frame;
  ASSERT_TRUE(reader.read_frame(frame));
  writing.join();
  pfp::disarm_all();
  EXPECT_EQ(frame.type, psvc::FrameType::Result);
  EXPECT_EQ(frame.payload, payload);
}

TEST_F(WireSocketpairTest, InjectedRecvFaultSurfacesAsWireError) {
  SocketPair pair;
  ASSERT_GE(pair.b, 0);
  psvc::Connection reader = pair.take_a();

  const auto bytes = raw_frame(psvc::FrameType::Progress, {1, 2, 3});
  ASSERT_EQ(::send(pair.b, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));

  pfp::arm("wire.recv", {pfp::Mode::Error, 0, 1});
  psvc::Frame frame;
  EXPECT_THROW(reader.read_frame(frame), psvc::WireError);
}

TEST_F(WireSocketpairTest, IdleTimeoutThrowsWireTimeoutNotHang) {
  SocketPair pair;
  ASSERT_GE(pair.b, 0);
  psvc::Connection reader = pair.take_a();
  reader.set_timeouts(/*idle_ms=*/60, /*io_ms=*/-1);

  psvc::Frame frame;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(reader.read_frame(frame), psvc::WireTimeout);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST_F(WireSocketpairTest, MidFrameStallTripsIoTimeout) {
  SocketPair pair;
  ASSERT_GE(pair.b, 0);
  psvc::Connection reader = pair.take_a();
  reader.set_timeouts(/*idle_ms=*/-1, /*io_ms=*/60);

  // Two bytes of length prefix, then silence: the io timeout must abort
  // the half-read frame instead of blocking forever.
  const std::uint8_t half[2] = {0x10, 0x00};
  ASSERT_EQ(::send(pair.b, half, sizeof(half), 0),
            static_cast<ssize_t>(sizeof(half)));
  psvc::Frame frame;
  EXPECT_THROW(reader.read_frame(frame), psvc::WireTimeout);
}
