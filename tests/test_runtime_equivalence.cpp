// Serial-vs-parallel equivalence: with RuntimeConfig::deterministic (the
// default), every runtime-powered path must be bit-identical to the serial
// num_threads = 1 reference — the conflict CSR (both kernels), the full
// core solve_oracle driver, Jones-Plassmann, and the multi-device driver — on
// every test graph family. This is the contract that lets the paper's
// tables be reproduced at any thread count.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "api/session.hpp"
#include "coloring/jones_plassmann.hpp"
#include "coloring/verify.hpp"
#include "core/multi_device.hpp"
#include "core/picasso.hpp"
#include "graph/graph_gen.hpp"
#include "graph/oracles.hpp"
#include "pauli/datasets.hpp"
#include "runtime/runtime_config.hpp"

namespace pcore = picasso::core;
namespace papi = picasso::api;
namespace pg = picasso::graph;
namespace pc = picasso::coloring;
namespace rt = picasso::runtime;

namespace {

rt::RuntimeConfig serial_config() {
  rt::RuntimeConfig c;
  c.num_threads = 1;
  return c;
}

rt::RuntimeConfig parallel_config(std::uint32_t threads) {
  rt::RuntimeConfig c;
  c.num_threads = threads;
  c.serial_cutoff = 0;  // exercise the pool even on small test graphs
  return c;
}

std::vector<std::uint32_t> identity_active(std::uint32_t n) {
  std::vector<std::uint32_t> active(n);
  for (std::uint32_t v = 0; v < n; ++v) active[v] = v;
  return active;
}

void expect_identical_csr(const pg::CsrGraph& a, const pg::CsrGraph& b) {
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.neighbor_array(), b.neighbor_array());
}

}  // namespace

// ---------------------------------------------------------------------------
// Conflict-graph build.

class ConflictBuildEquivalence
    : public ::testing::TestWithParam<
          std::tuple<pcore::ConflictKernel, std::uint32_t, std::uint64_t>> {};

TEST_P(ConflictBuildEquivalence, ParallelCsrBitIdenticalToSerial) {
  const auto [kernel, threads, seed] = GetParam();
  const auto graph = pg::erdos_renyi_dense(600, 0.4, seed);
  const pg::DenseOracle oracle(graph);
  const auto active = identity_active(600);
  const auto palette = pcore::compute_palette(600, 12.5, 2.0, 0);
  const auto lists = pcore::assign_random_lists(600, palette, seed, 0);

  const auto serial = pcore::build_conflict_graph(
      oracle, active, lists, palette.palette_size, kernel, serial_config());
  const auto parallel = pcore::build_conflict_graph(
      oracle, active, lists, palette.palette_size, kernel,
      parallel_config(threads));

  EXPECT_EQ(serial.num_edges, parallel.num_edges);
  EXPECT_EQ(serial.num_conflicted_vertices, parallel.num_conflicted_vertices);
  expect_identical_csr(serial.graph, parallel.graph);
  EXPECT_TRUE(parallel.graph.validate().empty());
}

INSTANTIATE_TEST_SUITE_P(
    KernelsThreadsSeeds, ConflictBuildEquivalence,
    ::testing::Combine(::testing::Values(pcore::ConflictKernel::Reference,
                                         pcore::ConflictKernel::Indexed),
                       ::testing::Values(2u, 4u, 8u),
                       ::testing::Values(1u, 17u)));

TEST(ConflictBuildEquivalence, ExplicitChunkSizeAndTinyChunks) {
  const auto graph = pg::erdos_renyi_dense(300, 0.5, 3);
  const pg::DenseOracle oracle(graph);
  const auto active = identity_active(300);
  const auto palette = pcore::compute_palette(300, 12.5, 2.0, 0);
  const auto lists = pcore::assign_random_lists(300, palette, 3, 0);
  const auto serial = pcore::build_conflict_graph(
      oracle, active, lists, palette.palette_size,
      pcore::ConflictKernel::Indexed, serial_config());
  for (std::uint32_t chunk : {1u, 7u, 1000000u}) {
    auto cfg = parallel_config(4);
    cfg.chunk_size = chunk;
    const auto parallel = pcore::build_conflict_graph(
        oracle, active, lists, palette.palette_size,
        pcore::ConflictKernel::Indexed, cfg);
    expect_identical_csr(serial.graph, parallel.graph);
  }
}

// ---------------------------------------------------------------------------
// Full Picasso driver, across graph families.

class PicassoEquivalenceFamilies : public ::testing::TestWithParam<int> {};

TEST_P(PicassoEquivalenceFamilies, ColorsBitIdenticalAcrossThreadCounts) {
  const int family = GetParam();
  pcore::PicassoParams params;
  params.seed = 5;
  params.runtime = serial_config();

  auto run_both = [&params](const auto& oracle) {
    const auto serial = papi::Session::from_params(params).solve(papi::Problem::oracle(oracle)).result;
    for (std::uint32_t threads : {2u, 4u}) {
      auto p = params;
      p.runtime = parallel_config(threads);
      const auto parallel = papi::Session::from_params(p).solve(papi::Problem::oracle(oracle)).result;
      EXPECT_EQ(serial.colors, parallel.colors) << threads << " threads";
      EXPECT_EQ(serial.num_colors, parallel.num_colors);
      EXPECT_EQ(serial.palette_total, parallel.palette_total);
      EXPECT_EQ(serial.iterations.size(), parallel.iterations.size());
      for (std::size_t i = 0; i < serial.iterations.size(); ++i) {
        EXPECT_EQ(serial.iterations[i].conflict_edges,
                  parallel.iterations[i].conflict_edges);
      }
    }
  };

  switch (family) {
    case 0: {
      const auto g = pg::erdos_renyi(500, 0.1, 2);
      run_both(pg::CsrOracle(g));
      break;
    }
    case 1: {
      const auto g = pg::erdos_renyi_dense(400, 0.5, 4);
      run_both(pg::DenseOracle(g));
      break;
    }
    case 2: {
      const auto g = pg::rmat(800, 6400, 0.57, 0.19, 0.19, 9);
      run_both(pg::CsrOracle(g));
      break;
    }
    case 3: {
      const auto g = pg::random_geometric(400, 0.08, 6);
      run_both(pg::CsrOracle(g));
      break;
    }
    case 4: {
      const auto set = picasso::pauli::fig1_h2_set();
      run_both(pg::ComplementOracle(set));
      break;
    }
    case 5: {
      const auto g = pg::complete_bipartite(150, 150);
      run_both(pg::CsrOracle(g));
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GraphFamilies, PicassoEquivalenceFamilies,
                         ::testing::Range(0, 6));

TEST(PicassoEquivalence, AggressiveConfigAndReferenceKernel) {
  const auto g = pg::erdos_renyi_dense(300, 0.5, 8);
  const pg::DenseOracle oracle(g);
  pcore::PicassoParams params;
  params.palette_percent = 3.0;
  params.alpha = 30.0;
  params.kernel = pcore::ConflictKernel::Reference;
  params.seed = 11;
  params.runtime = serial_config();
  const auto serial = papi::Session::from_params(params).solve(papi::Problem::oracle(oracle)).result;
  params.runtime = parallel_config(4);
  const auto parallel = papi::Session::from_params(params).solve(papi::Problem::oracle(oracle)).result;
  EXPECT_EQ(serial.colors, parallel.colors);
}

// ---------------------------------------------------------------------------
// Jones-Plassmann.

TEST(JonesPlassmannEquivalence, RoundsAndColorsMatchSerial) {
  for (auto priority :
       {pc::JpPriority::Random, pc::JpPriority::LargestDegreeFirst}) {
    const auto g = pg::rmat(2000, 16000, 0.45, 0.22, 0.22, 3);
    const auto serial = pc::jones_plassmann(g, priority, 7, serial_config());
    EXPECT_TRUE(pc::is_valid_coloring(g, serial.colors));
    for (std::uint32_t threads : {2u, 4u, 8u}) {
      const auto parallel =
          pc::jones_plassmann(g, priority, 7, parallel_config(threads));
      EXPECT_EQ(serial.colors, parallel.colors) << threads << " threads";
      EXPECT_EQ(serial.rounds, parallel.rounds);
      EXPECT_EQ(serial.num_colors, parallel.num_colors);
    }
  }
}

TEST(JonesPlassmannEquivalence, DenseGraphPath) {
  const auto g = pg::erdos_renyi_dense(500, 0.5, 2);
  const auto serial = pc::jones_plassmann(
      g, pc::JpPriority::LargestDegreeFirst, 1, serial_config());
  const auto parallel = pc::jones_plassmann(
      g, pc::JpPriority::LargestDegreeFirst, 1, parallel_config(4));
  EXPECT_EQ(serial.colors, parallel.colors);
  EXPECT_TRUE(pc::is_valid_coloring(g, parallel.colors));
}

// ---------------------------------------------------------------------------
// Multi-device driver.

TEST(MultiDeviceEquivalence, ConcurrentShardsMatchSerialAndSingleDevice) {
  const auto g = pg::erdos_renyi(600, 0.05, 13);
  const pg::CsrOracle oracle(g);
  pcore::PicassoParams params;
  params.seed = 2;
  auto sharded_solve = [&g](const pcore::PicassoParams& p) {
    return papi::SessionBuilder()
        .params(p)
        .devices(3, 64u << 20)
        .build()
        .solve(papi::Problem::csr(g));
  };

  params.runtime = serial_config();
  const auto serial = sharded_solve(params);
  // Multi-device coloring must equal the plain single-driver coloring...
  const auto single = papi::Session::from_params(params).solve(papi::Problem::oracle(oracle)).result;
  EXPECT_EQ(serial.result.colors, single.colors);

  // ...and the concurrent-shard run must equal both, with identical
  // per-device edge routing and deterministic per-device peaks.
  for (std::uint32_t threads : {2u, 4u}) {
    params.runtime = parallel_config(threads);
    const auto parallel = sharded_solve(params);
    EXPECT_EQ(serial.result.colors, parallel.result.colors);
    ASSERT_EQ(serial.devices.size(), parallel.devices.size());
    for (std::size_t d = 0; d < serial.devices.size(); ++d) {
      EXPECT_EQ(serial.devices[d].edges, parallel.devices[d].edges) << d;
      EXPECT_EQ(serial.devices[d].peak_bytes, parallel.devices[d].peak_bytes)
          << d;
    }
  }
}
