// Tests for the §VI pipeline: parameter sweeps, the beta-weighted
// bi-objective selection (Eq. 7), training-set assembly, and the end-to-end
// (beta, |V|, |E|) -> (P', alpha) predictor.

#include <gtest/gtest.h>

#include "graph/oracles.hpp"
#include "ml/predictor.hpp"
#include "ml/sweep.hpp"
#include "pauli/datasets.hpp"

namespace ml = picasso::ml;
namespace pp = picasso::pauli;

namespace {

const pp::PauliSet& tiny_set() {
  static const pp::PauliSet set = [] {
    picasso::util::Xoshiro256 rng(8);
    std::vector<pp::PauliString> strings;
    for (int i = 0; i < 120; ++i) {
      pp::PauliString s(6);
      for (std::size_t q = 0; q < 6; ++q) {
        s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
      }
      strings.push_back(s);
    }
    return pp::PauliSet(strings);
  }();
  return set;
}

}  // namespace

TEST(Sweep, GridsMatchThePaper) {
  const auto percents = ml::default_percent_grid();
  const auto alphas = ml::default_alpha_grid();
  EXPECT_EQ(percents.size(), 9u);
  EXPECT_DOUBLE_EQ(percents.front(), 1.0);
  EXPECT_DOUBLE_EQ(percents.back(), 20.0);
  EXPECT_EQ(alphas.size(), 9u);
  EXPECT_DOUBLE_EQ(alphas.front(), 0.5);
  EXPECT_DOUBLE_EQ(alphas.back(), 4.5);
}

TEST(Sweep, RunsEveryGridPoint) {
  const auto sweep =
      ml::parameter_sweep(tiny_set(), {5.0, 15.0}, {1.0, 2.0, 3.0});
  ASSERT_EQ(sweep.size(), 6u);
  for (const auto& p : sweep) {
    EXPECT_GT(p.colors, 0u);
    EXPECT_GE(p.seconds, 0.0);
  }
}

TEST(Sweep, SmallerPaletteGivesFewerColorsMoreConflicts) {
  // The fundamental trade-off of Fig. 5, on a controlled input.
  const auto sweep = ml::parameter_sweep(tiny_set(), {2.0, 20.0}, {3.0});
  ASSERT_EQ(sweep.size(), 2u);
  const auto& small_p = sweep[0];
  const auto& large_p = sweep[1];
  EXPECT_LE(small_p.colors, large_p.colors);
  EXPECT_GE(small_p.max_conflict_edges, large_p.max_conflict_edges);
}

TEST(OptimalChoices, ExtremeBetasPickExtremeObjectives) {
  std::vector<ml::SweepPoint> sweep{
      {1.0, 4.0, /*colors=*/10, /*Ec=*/1000, 0.0},   // few colors, many Ec
      {20.0, 0.5, /*colors=*/100, /*Ec=*/10, 0.0},   // many colors, few Ec
  };
  // beta = 1: only colors matter -> first point.
  const auto colors_first = ml::optimal_choices(sweep, {1.0});
  EXPECT_DOUBLE_EQ(colors_first[0].palette_percent, 1.0);
  EXPECT_DOUBLE_EQ(colors_first[0].alpha, 4.0);
  // beta = 0: only conflict edges matter -> second point.
  const auto edges_first = ml::optimal_choices(sweep, {0.0});
  EXPECT_DOUBLE_EQ(edges_first[0].palette_percent, 20.0);
  EXPECT_DOUBLE_EQ(edges_first[0].alpha, 0.5);
}

TEST(OptimalChoices, NormalisationMakesBetaMeaningful) {
  // Without normalisation Ec (~10^3) would swamp colors (~10^1) for any
  // beta; with it, beta=0.5 weighs both. Construct a case where the
  // normalised objective flips the winner vs the raw sum.
  std::vector<ml::SweepPoint> sweep{
      {1.0, 1.0, /*colors=*/10, /*Ec=*/900, 0.0},
      {2.0, 2.0, /*colors=*/90, /*Ec=*/100, 0.0},
  };
  // Raw sum at beta=0.5: 455 vs 95 -> picks #2. Normalised: 0.5*(10/90 +
  // 900/900)=0.55 vs 0.5*(90/90+100/900)=0.556 -> picks #1 (barely).
  const auto choice = ml::optimal_choices(sweep, {0.5});
  EXPECT_DOUBLE_EQ(choice[0].palette_percent, 1.0);
}

TEST(OptimalChoices, EmptySweepYieldsNothing) {
  EXPECT_TRUE(ml::optimal_choices({}, {0.5}).empty());
}

TEST(TrainingSamples, CarryGraphFeatures) {
  const auto samples = ml::build_training_samples(
      tiny_set(), /*num_edges=*/5000, {0.2, 0.8}, {5.0, 15.0}, {1.0, 2.0});
  ASSERT_EQ(samples.size(), 2u);
  for (const auto& s : samples) {
    EXPECT_NEAR(s.log_vertices, std::log10(120.0), 1e-9);
    EXPECT_NEAR(s.log_edges, std::log10(5000.0), 1e-9);
    EXPECT_GE(s.best_percent, 5.0);
    EXPECT_LE(s.best_percent, 15.0);
  }
  EXPECT_DOUBLE_EQ(samples[0].beta, 0.2);
  EXPECT_DOUBLE_EQ(samples[1].beta, 0.8);
}

TEST(TrainingSamples, MatrixConversion) {
  std::vector<ml::TrainingSample> samples{
      {0.3, 2.0, 5.0, 12.5, 2.0},
      {0.7, 3.0, 6.0, 5.0, 4.0},
  };
  ml::Matrix x, y;
  ml::samples_to_matrices(samples, x, y);
  ASSERT_EQ(x.rows(), 2u);
  ASSERT_EQ(x.cols(), 3u);
  ASSERT_EQ(y.cols(), 2u);
  EXPECT_DOUBLE_EQ(x.at(1, 0), 0.7);
  EXPECT_DOUBLE_EQ(y.at(0, 0), 12.5);
  EXPECT_DOUBLE_EQ(y.at(1, 1), 4.0);
}

TEST(Predictor, FitPredictEvaluateRoundTrip) {
  // Synthetic supervised task with learnable structure: best P' rises with
  // beta, alpha falls with log V.
  std::vector<ml::TrainingSample> train, test;
  for (int b = 1; b <= 9; ++b) {
    for (double lv : {2.0, 3.0, 4.0, 5.0}) {
      ml::TrainingSample s;
      s.beta = 0.1 * b;
      s.log_vertices = lv;
      s.log_edges = 2 * lv - 1;
      s.best_percent = 2.0 + 18.0 * s.beta;
      s.best_alpha = 4.5 - 0.5 * lv;
      // Hold out interior betas (0.2, 0.5, 0.8): forests interpolate but do
      // not extrapolate beyond the training hull.
      (b % 3 == 2 ? test : train).push_back(s);
    }
  }
  ml::ParameterPredictor predictor(ml::ModelKind::RandomForest);
  EXPECT_FALSE(predictor.trained());
  predictor.fit(train, {.num_trees = 30, .tree = {}, .seed = 3});
  EXPECT_TRUE(predictor.trained());

  const auto report = predictor.evaluate(test);
  EXPECT_LT(report.mape_overall(), 0.35);
  EXPECT_GT(report.r2_percent, 0.7);

  const auto p = predictor.predict(0.5, 10000, 40000000);
  EXPECT_GE(p.palette_percent, 1.0);
  EXPECT_LE(p.palette_percent, 20.0);
  EXPECT_GE(p.alpha, 0.5);
  EXPECT_LE(p.alpha, 4.5);
}

TEST(Predictor, AllModelKindsTrainAndPredict) {
  std::vector<ml::TrainingSample> train;
  for (int i = 0; i < 40; ++i) {
    ml::TrainingSample s;
    s.beta = 0.1 + 0.02 * i;
    s.log_vertices = 2.0 + 0.05 * i;
    s.log_edges = 4.0 + 0.1 * i;
    s.best_percent = 1.0 + 0.4 * i;
    s.best_alpha = 0.5 + 0.08 * i;
    train.push_back(s);
  }
  for (auto kind : {ml::ModelKind::RandomForest, ml::ModelKind::Ridge,
                    ml::ModelKind::Lasso}) {
    ml::ParameterPredictor predictor(kind);
    predictor.fit(train, {.num_trees = 10, .tree = {}, .seed = 1});
    const auto p = predictor.predict(0.4, 5000, 1000000);
    EXPECT_GE(p.palette_percent, 1.0) << to_string(kind);
    EXPECT_LE(p.palette_percent, 20.0) << to_string(kind);
  }
}

TEST(Predictor, GuardsAgainstMisuse) {
  ml::ParameterPredictor predictor;
  EXPECT_THROW(predictor.fit({}), std::invalid_argument);
  EXPECT_THROW(predictor.predict(0.5, 10, 10), std::logic_error);
  EXPECT_THROW(predictor.evaluate({}), std::logic_error);
}

TEST(Predictor, ModelKindNames) {
  EXPECT_STREQ(ml::to_string(ml::ModelKind::RandomForest), "random-forest");
  EXPECT_STREQ(ml::to_string(ml::ModelKind::Ridge), "ridge");
  EXPECT_STREQ(ml::to_string(ml::ModelKind::Lasso), "lasso");
}
