// End-to-end coverage of the multi-tenant coloring service: wire-protocol
// round-trips, then a real Server on a unix socket exercised by concurrent
// clients — bit-identity vs local Session::solve, counter-verified cache
// hits, structured over-budget rejection, mid-solve cancellation that frees
// the queue slot and its spill file, priority + tenant fair-share ordering,
// and clean shutdown with no leaked spill files.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "pauli/pauli_set.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "util/rng.hpp"

namespace papi = picasso::api;
namespace pp = picasso::pauli;
namespace psvc = picasso::service;
namespace fs = std::filesystem;

namespace {

pp::PauliSet random_set(std::size_t count, std::size_t qubits,
                        std::uint64_t seed) {
  picasso::util::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  for (std::size_t i = 0; i < count; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(s);
  }
  return pp::PauliSet(strings);
}

/// The local single-shot reference the service must be bit-identical to.
papi::SolveReport local_solve(const pp::PauliSet& set,
                              const psvc::RemoteParams& params) {
  return papi::SessionBuilder()
      .palette(params.palette_percent, params.alpha)
      .seed(params.seed)
      .max_iterations(params.max_iterations)
      .build()
      .solve(papi::Problem::pauli(set));
}

}  // namespace

// --- Wire protocol ----------------------------------------------------------

TEST(ServiceWire, SolveRequestRoundTrip) {
  psvc::SolveRequestMsg msg;
  msg.id = 42;
  msg.tenant = "vqe-h4";
  msg.priority = 7;
  msg.params.palette_percent = 9.5;
  msg.params.alpha = 1.75;
  msg.params.seed = 1234;
  msg.params.max_iterations = 17;
  msg.params.backend = 2;
  msg.params.strategy = 6;
  msg.params.memory_budget_bytes = 1u << 20;
  msg.params.want_progress = true;
  msg.params.deadline_ms = 2500;
  msg.records = random_set(37, 12, 5);

  const auto decoded = psvc::decode_solve_request(psvc::encode_solve_request(msg));
  EXPECT_EQ(decoded.id, msg.id);
  EXPECT_EQ(decoded.tenant, msg.tenant);
  EXPECT_EQ(decoded.priority, msg.priority);
  EXPECT_EQ(decoded.params.palette_percent, msg.params.palette_percent);
  EXPECT_EQ(decoded.params.alpha, msg.params.alpha);
  EXPECT_EQ(decoded.params.seed, msg.params.seed);
  EXPECT_EQ(decoded.params.max_iterations, msg.params.max_iterations);
  EXPECT_EQ(decoded.params.backend, msg.params.backend);
  EXPECT_EQ(decoded.params.strategy, msg.params.strategy);
  EXPECT_EQ(decoded.params.memory_budget_bytes, msg.params.memory_budget_bytes);
  EXPECT_EQ(decoded.params.want_progress, msg.params.want_progress);
  EXPECT_EQ(decoded.params.deadline_ms, msg.params.deadline_ms);
  ASSERT_EQ(decoded.records.size(), msg.records.size());
  EXPECT_EQ(decoded.records.num_qubits(), msg.records.num_qubits());
  const picasso::core::PicassoParams fp_params;
  EXPECT_EQ(papi::problem_fingerprint(decoded.records, fp_params),
            papi::problem_fingerprint(msg.records, fp_params));
}

TEST(ServiceWire, ResultAndErrorRoundTrip) {
  psvc::ResultMsg result;
  result.id = 9;
  result.cache_hit = true;
  result.problem_hash = 0xdeadbeefcafef00dull;
  result.coloring_hash = 0x0123456789abcdefull;
  result.num_colors = 201;
  result.palette_total = 256;
  result.iterations = 6;
  result.seconds = 0.125;
  result.degraded = true;
  result.degraded_reason = "admission degraded plan to strategy=fused";
  result.colors = {0, 1, 2, 200, 7};
  const auto r = psvc::decode_result(psvc::encode_result(result));
  EXPECT_EQ(r.id, result.id);
  EXPECT_EQ(r.cache_hit, result.cache_hit);
  EXPECT_EQ(r.problem_hash, result.problem_hash);
  EXPECT_EQ(r.coloring_hash, result.coloring_hash);
  EXPECT_EQ(r.num_colors, result.num_colors);
  EXPECT_EQ(r.palette_total, result.palette_total);
  EXPECT_EQ(r.iterations, result.iterations);
  EXPECT_EQ(r.seconds, result.seconds);
  EXPECT_EQ(r.degraded, result.degraded);
  EXPECT_EQ(r.degraded_reason, result.degraded_reason);
  EXPECT_EQ(r.colors, result.colors);

  psvc::StatsMsg stats;
  stats.received = 10;
  stats.completed = 8;
  stats.client_disconnects = 3;
  stats.idle_disconnects = 2;
  stats.deadline_exceeded = 1;
  stats.degraded = 4;
  stats.orphan_spills_swept = 5;
  const auto s = psvc::decode_stats(psvc::encode_stats(stats));
  EXPECT_EQ(s.received, stats.received);
  EXPECT_EQ(s.completed, stats.completed);
  EXPECT_EQ(s.client_disconnects, stats.client_disconnects);
  EXPECT_EQ(s.idle_disconnects, stats.idle_disconnects);
  EXPECT_EQ(s.deadline_exceeded, stats.deadline_exceeded);
  EXPECT_EQ(s.degraded, stats.degraded);
  EXPECT_EQ(s.orphan_spills_swept, stats.orphan_spills_swept);

  psvc::ErrorMsg error;
  error.id = 3;
  error.code = psvc::ServiceErrorCode::OverBudget;
  error.message = "projected peak 123 bytes exceeds server budget 45 bytes";
  const auto e = psvc::decode_error(psvc::encode_error(error));
  EXPECT_EQ(e.id, error.id);
  EXPECT_EQ(e.code, error.code);
  EXPECT_EQ(e.message, error.message);
}

TEST(ServiceWire, TruncatedPayloadThrows) {
  psvc::ResultMsg result;
  result.colors = {1, 2, 3};
  auto payload = psvc::encode_result(result);
  payload.resize(payload.size() / 2);
  EXPECT_THROW(psvc::decode_result(payload), psvc::WireError);

  // A declared string length past the end of the payload must not read OOB.
  std::vector<std::uint8_t> bogus = {0xff, 0xff, 0xff, 0x7f};
  psvc::WireReader reader(bogus);
  EXPECT_THROW(reader.str(), psvc::WireError);
}

// --- End-to-end server ------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("picasso_svc_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(root_ / "spill");
    config_.listen = "unix:" + (root_ / "sock").string();
    config_.spill_dir = (root_ / "spill").string();
    config_.num_threads = 2;
  }

  void TearDown() override {
    server_.stop();
    EXPECT_EQ(spill_files(), 0u) << "spill files leaked past shutdown";
    EXPECT_FALSE(fs::exists(root_ / "sock")) << "socket file not unlinked";
    fs::remove_all(root_);
  }

  void start_server() {
    server_.start(config_);
    ASSERT_TRUE(server_.running());
  }

  std::size_t spill_files() const {
    std::size_t count = 0;
    if (!fs::exists(root_ / "spill")) return 0;
    for (const auto& entry : fs::directory_iterator(root_ / "spill")) {
      if (entry.path().extension() == ".pset") ++count;
    }
    return count;
  }

  /// Polls server stats through a dedicated connection until `pred` holds.
  template <typename Pred>
  bool wait_for_stats(Pred pred,
                      std::chrono::milliseconds deadline =
                          std::chrono::seconds(30)) {
    auto probe = psvc::Client::connect(server_.address());
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      if (pred(probe.stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  fs::path root_;
  psvc::ServerConfig config_;
  psvc::Server server_;
};

TEST_F(ServiceTest, EightConcurrentClientsBitIdenticalToLocalSolve) {
  start_server();
  const psvc::RemoteParams params;
  const pp::PauliSet set_a = random_set(400, 16, 1);
  const pp::PauliSet set_b = random_set(350, 18, 2);
  const auto ref_a = local_solve(set_a, params);
  const auto ref_b = local_solve(set_b, params);

  constexpr int kClients = 8;
  std::vector<psvc::RemoteResult> outcomes(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto client = psvc::Client::connect(server_.address());
      outcomes[i] = client.solve(i % 2 == 0 ? set_a : set_b, params,
                                 "tenant" + std::to_string(i % 3));
    });
  }
  for (auto& thread : threads) thread.join();

  for (int i = 0; i < kClients; ++i) {
    const auto& ref = i % 2 == 0 ? ref_a : ref_b;
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].error_message;
    EXPECT_EQ(outcomes[i].result.colors, ref.result.colors) << "client " << i;
    EXPECT_EQ(outcomes[i].result.problem_hash, ref.problem_hash);
    EXPECT_EQ(outcomes[i].result.num_colors, ref.result.num_colors);
  }

  // Identical problems across the 8 requests: at most 2 real solves, the
  // rest answered from cache (or coalesced on the queued re-check).
  // active_ is trimmed just after the reply is sent, so poll briefly.
  ASSERT_TRUE(wait_for_stats([](const psvc::StatsMsg& s) {
    return s.received == kClients &&
           s.completed + s.cache_hits == kClients && s.active == 0 &&
           s.queued == 0;
  }));
}

TEST_F(ServiceTest, CacheHitIsCounterVerifiedAndBitIdentical) {
  start_server();
  const psvc::RemoteParams params;
  const pp::PauliSet set = random_set(300, 16, 3);

  auto client = psvc::Client::connect(server_.address());
  const psvc::RemoteResult first = client.solve(set, params);
  ASSERT_TRUE(first.ok) << first.error_message;
  EXPECT_FALSE(first.result.cache_hit);

  const psvc::RemoteResult second = client.solve(set, params);
  ASSERT_TRUE(second.ok) << second.error_message;
  EXPECT_TRUE(second.result.cache_hit);
  EXPECT_EQ(second.result.coloring_hash, first.result.coloring_hash);
  EXPECT_EQ(second.result.colors, first.result.colors);
  EXPECT_EQ(second.result.problem_hash, first.result.problem_hash);

  const psvc::StatsMsg stats = client.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);

  // Same molecule, different solve-relevant params -> different problem,
  // no (false) cache hit.
  psvc::RemoteParams reseeded = params;
  reseeded.seed = params.seed + 1;
  const psvc::RemoteResult third = client.solve(set, reseeded);
  ASSERT_TRUE(third.ok) << third.error_message;
  EXPECT_FALSE(third.result.cache_hit);
  EXPECT_NE(third.result.problem_hash, first.result.problem_hash);
}

TEST_F(ServiceTest, OverBudgetRequestIsRejectedStructurally) {
  config_.memory_budget_bytes = 64 * 1024;  // far below any real solve
  start_server();
  const pp::PauliSet set = random_set(4000, 24, 4);

  auto client = psvc::Client::connect(server_.address());
  const psvc::RemoteResult outcome = client.solve(set, psvc::RemoteParams{});
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error_code, psvc::ServiceErrorCode::OverBudget);
  // Structured message names both numbers and the chosen plan.
  EXPECT_NE(outcome.error_message.find("65536"), std::string::npos)
      << outcome.error_message;
  EXPECT_NE(outcome.error_message.find("projected"), std::string::npos)
      << outcome.error_message;
  EXPECT_NE(outcome.error_message.find("strategy="), std::string::npos)
      << outcome.error_message;

  const psvc::StatsMsg stats = client.stats();
  EXPECT_EQ(stats.rejected_over_budget, 1u);
  EXPECT_EQ(stats.completed, 0u);

  // A small problem still fits under the same budget.
  const pp::PauliSet small = random_set(40, 8, 5);
  const psvc::RemoteResult ok = client.solve(small, psvc::RemoteParams{});
  EXPECT_TRUE(ok.ok) << ok.error_message;
}

TEST_F(ServiceTest, CancelMidSolveFreesSlotAndRemovesSpillFile) {
  config_.max_active_solves = 1;
  start_server();

  // A budgeted request: the tiny per-request budget forces the spilling
  // streaming engine, so cancellation must also clean up the spill file.
  const pp::PauliSet set = random_set(1500, 24, 6);
  psvc::RemoteParams params;
  params.memory_budget_bytes = set.logical_bytes();
  params.want_progress = true;
  params.max_iterations = 1000;
  params.palette_percent = 1.0;  // slow convergence: many iterations
  params.alpha = 1.1;

  auto client = psvc::Client::connect(server_.address());
  std::atomic<int> frames{0};
  const psvc::RemoteResult outcome =
      client.solve(set, params, "", 0, [&](const psvc::ProgressMsg&) {
        if (frames.fetch_add(1) == 0) client.request_cancel();
      });
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error_code, psvc::ServiceErrorCode::Cancelled);
  EXPECT_GE(frames.load(), 1);

  // The slot is free again and the cancelled solve left no spill file.
  ASSERT_TRUE(wait_for_stats([](const psvc::StatsMsg& s) {
    return s.active == 0 && s.queued == 0 && s.cancelled == 1;
  }));
  EXPECT_EQ(spill_files(), 0u);

  // The freed slot accepts new work immediately.
  const pp::PauliSet small = random_set(60, 10, 7);
  const psvc::RemoteResult next = client.solve(small, psvc::RemoteParams{});
  EXPECT_TRUE(next.ok) << next.error_message;
}

TEST_F(ServiceTest, PriorityThenTenantFairShareOrdersTheQueue) {
  config_.max_active_solves = 1;
  start_server();

  // Occupy the single solver slot with a long-running request from tenant
  // "a" (tiny palette -> many iterations), queue three more behind it, then
  // cancel the blocker and observe the drain order.
  const pp::PauliSet blocker_set = random_set(2000, 24, 8);
  psvc::RemoteParams blocker_params;
  blocker_params.want_progress = true;
  blocker_params.max_iterations = 5000;
  blocker_params.palette_percent = 0.5;
  blocker_params.alpha = 1.05;

  std::atomic<bool> release{false};
  auto blocker_client = psvc::Client::connect(server_.address());
  std::thread blocker([&] {
    blocker_client.solve(blocker_set, blocker_params, "a", 0,
                         [&](const psvc::ProgressMsg&) {
                           if (release.load(std::memory_order_acquire)) {
                             blocker_client.request_cancel();
                           }
                         });
  });
  ASSERT_TRUE(wait_for_stats(
      [](const psvc::StatsMsg& s) { return s.active == 1; }));

  const psvc::RemoteParams params;
  std::mutex order_mu;
  std::vector<std::string> completion_order;
  auto submit = [&](const char* name, const char* tenant,
                    std::uint32_t priority, std::uint64_t seed) {
    return std::thread([&, name, tenant, priority, seed] {
      auto client = psvc::Client::connect(server_.address());
      const pp::PauliSet set = random_set(80, 10, seed);
      const psvc::RemoteResult outcome =
          client.solve(set, params, tenant, priority);
      EXPECT_TRUE(outcome.ok) << name << ": " << outcome.error_message;
      std::lock_guard<std::mutex> lock(order_mu);
      completion_order.emplace_back(name);
    });
  };

  // Queued in seq order B, C, D while the blocker holds the slot. Expected
  // drain: D first (highest priority), then C (tenant "b" has fewer
  // dispatched solves than "a"), then B.
  std::thread b = submit("B", "a", 0, 20);
  ASSERT_TRUE(wait_for_stats(
      [](const psvc::StatsMsg& s) { return s.queued >= 1; }));
  std::thread c = submit("C", "b", 0, 21);
  ASSERT_TRUE(wait_for_stats(
      [](const psvc::StatsMsg& s) { return s.queued >= 2; }));
  std::thread d = submit("D", "a", 5, 22);
  ASSERT_TRUE(wait_for_stats(
      [](const psvc::StatsMsg& s) { return s.queued >= 3; }));

  release.store(true, std::memory_order_release);
  blocker.join();
  b.join();
  c.join();
  d.join();

  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[0], "D");
  EXPECT_EQ(completion_order[1], "C");
  EXPECT_EQ(completion_order[2], "B");
}

TEST_F(ServiceTest, MalformedRequestGetsBadRequestNotDisconnect) {
  start_server();
  auto conn = psvc::Connection::connect(server_.address());
  conn.write_frame(psvc::FrameType::SolveRequest, {0x01, 0x02, 0x03});
  psvc::Frame frame;
  ASSERT_TRUE(conn.read_frame(frame));
  ASSERT_EQ(frame.type, psvc::FrameType::Error);
  const psvc::ErrorMsg error = psvc::decode_error(frame.payload);
  EXPECT_EQ(error.code, psvc::ServiceErrorCode::BadRequest);

  // The connection survives the bad frame: a well-formed request still works.
  psvc::SolveRequestMsg msg;
  msg.id = 1;
  msg.records = random_set(30, 8, 9);
  conn.write_frame(psvc::FrameType::SolveRequest,
                   psvc::encode_solve_request(msg));
  ASSERT_TRUE(conn.read_frame(frame));
  EXPECT_EQ(frame.type, psvc::FrameType::Result);
}

TEST_F(ServiceTest, ShutdownAnswersQueuedRequestsAndDrainsCleanly) {
  config_.max_active_solves = 1;
  start_server();

  const pp::PauliSet blocker_set = random_set(2000, 24, 10);
  psvc::RemoteParams blocker_params;
  blocker_params.max_iterations = 5000;
  blocker_params.palette_percent = 0.5;
  blocker_params.alpha = 1.05;

  auto blocker_client = psvc::Client::connect(server_.address());
  std::thread blocker([&] {
    // Outcome unchecked: shutdown may cancel it or let it finish.
    try {
      blocker_client.solve(blocker_set, blocker_params, "a");
    } catch (const psvc::WireError&) {
      // Connection torn down during stop — acceptable during shutdown.
    }
  });
  ASSERT_TRUE(wait_for_stats(
      [](const psvc::StatsMsg& s) { return s.active == 1; }));

  std::atomic<bool> queued_rejected{false};
  std::thread queued([&] {
    auto client = psvc::Client::connect(server_.address());
    try {
      const psvc::RemoteResult outcome =
          client.solve(random_set(60, 10, 11), psvc::RemoteParams{}, "b");
      queued_rejected = !outcome.ok &&
                        outcome.error_code ==
                            psvc::ServiceErrorCode::ShuttingDown;
    } catch (const psvc::WireError&) {
      queued_rejected = true;  // torn connection also counts as rejected
    }
  });
  ASSERT_TRUE(wait_for_stats(
      [](const psvc::StatsMsg& s) { return s.queued >= 1; }));

  server_.stop();
  blocker.join();
  queued.join();
  EXPECT_TRUE(queued_rejected);
  EXPECT_FALSE(server_.running());
}
