// Tests for the supporting data structures: bucket queue (the heart of
// Algorithm 2 and the SL/DLF/ID orderings), prefix sums, memory tracking,
// summary statistics and table formatting.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/bucket_queue.hpp"
#include "util/memory.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pu = picasso::util;

TEST(BucketQueue, InsertEraseContains) {
  pu::BucketQueue q(10, 5);
  EXPECT_TRUE(q.empty());
  q.insert(3, 2);
  q.insert(7, 0);
  EXPECT_TRUE(q.contains(3));
  EXPECT_TRUE(q.contains(7));
  EXPECT_FALSE(q.contains(0));
  EXPECT_EQ(q.size(), 2u);
  q.erase(3);
  EXPECT_FALSE(q.contains(3));
  EXPECT_EQ(q.size(), 1u);
}

TEST(BucketQueue, MinAndMaxKeys) {
  pu::BucketQueue q(10, 9);
  q.insert(0, 4);
  q.insert(1, 7);
  q.insert(2, 2);
  EXPECT_EQ(q.min_key(), 2u);
  EXPECT_EQ(q.max_key(), 7u);
  q.erase(2);
  EXPECT_EQ(q.min_key(), 4u);
  q.insert(3, 0);
  EXPECT_EQ(q.min_key(), 0u);  // cursor rewinds on smaller insert
}

TEST(BucketQueue, UpdateKeyMovesElement) {
  pu::BucketQueue q(4, 10);
  q.insert(1, 5);
  q.update_key(1, 9);
  EXPECT_EQ(q.key_of(1), 9u);
  EXPECT_EQ(q.max_key(), 9u);
  EXPECT_EQ(q.any_in_bucket(9), 1u);
}

TEST(BucketQueue, StressAgainstNaiveModel) {
  // Randomized operations cross-checked against a map-based model.
  pu::Xoshiro256 rng(55);
  constexpr std::uint32_t n = 200, max_key = 50;
  pu::BucketQueue q(n, max_key);
  std::map<std::uint32_t, std::uint32_t> model;  // id -> key
  for (int step = 0; step < 5000; ++step) {
    const std::uint32_t id = static_cast<std::uint32_t>(rng.bounded(n));
    switch (rng.bounded(3)) {
      case 0:
        if (!model.count(id)) {
          const auto key = static_cast<std::uint32_t>(rng.bounded(max_key + 1));
          q.insert(id, key);
          model[id] = key;
        }
        break;
      case 1:
        if (model.count(id)) {
          q.erase(id);
          model.erase(id);
        }
        break;
      default:
        if (model.count(id)) {
          const auto key = static_cast<std::uint32_t>(rng.bounded(max_key + 1));
          q.update_key(id, key);
          model[id] = key;
        }
    }
    ASSERT_EQ(q.size(), model.size());
    if (!model.empty()) {
      std::uint32_t lo = max_key + 1, hi = 0;
      for (const auto& [mid, key] : model) {
        lo = std::min(lo, key);
        hi = std::max(hi, key);
      }
      ASSERT_EQ(q.min_key(), lo);
      ASSERT_EQ(q.max_key(), hi);
    }
  }
}

TEST(PrefixSum, ExclusiveScanBasics) {
  std::vector<std::uint64_t> v{3, 1, 4, 1, 5};
  const auto total = pu::exclusive_scan_inplace(v);
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 3, 4, 8, 9}));
}

TEST(PrefixSum, EmptyVector) {
  std::vector<std::uint64_t> v;
  EXPECT_EQ(pu::exclusive_scan_inplace(v), 0u);
}

TEST(PrefixSum, OffsetsFromCounts) {
  const std::vector<std::uint64_t> counts{2, 0, 3};
  const auto offsets = pu::offsets_from_counts(counts);
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, 2, 2, 5}));
}

TEST(PrefixSum, ParallelMatchesSequential) {
  pu::Xoshiro256 rng(123);
  for (std::size_t n : {0u, 1u, 100u, 70000u, 200001u}) {
    std::vector<std::uint64_t> a(n);
    for (auto& x : a) x = rng.bounded(100);
    auto b = a;
    const auto ta = pu::exclusive_scan_inplace(a);
    const auto tb = pu::parallel_exclusive_scan_inplace(b);
    EXPECT_EQ(ta, tb) << "n=" << n;
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

TEST(MemoryTracker, PeakFollowsHighWater) {
  pu::MemoryTracker t;
  t.allocate(100);
  t.allocate(50);
  t.release(120);
  t.allocate(10);
  EXPECT_EQ(t.peak_bytes(), 150u);
  EXPECT_EQ(t.current_bytes(), 40u);
}

TEST(MemoryTracker, ReleaseBelowZeroClamps) {
  pu::MemoryTracker t;
  t.allocate(10);
  t.release(100);
  EXPECT_EQ(t.current_bytes(), 0u);
}

TEST(MemoryTracker, TrackedBlockIsRaii) {
  pu::MemoryTracker t;
  {
    pu::TrackedBlock block(t, 64);
    EXPECT_EQ(t.current_bytes(), 64u);
  }
  EXPECT_EQ(t.current_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 64u);
}

TEST(MemoryTracker, AbsorbPeakIsConservative) {
  pu::MemoryTracker a, b;
  a.allocate(100);
  b.allocate(70);
  b.release(70);
  a.absorb_peak(b);
  EXPECT_EQ(a.peak_bytes(), 170u);
}

TEST(PeakRss, ReturnsPositiveOnLinux) { EXPECT_GT(pu::peak_rss_bytes(), 0u); }

TEST(Stats, MeanStdDevGeomeanMedian) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(pu::mean(xs), 2.5);
  EXPECT_NEAR(pu::stddev(xs), 1.2909944, 1e-6);
  EXPECT_NEAR(pu::geomean(xs), 2.2133638, 1e-6);
  EXPECT_DOUBLE_EQ(pu::median(xs), 2.5);
  EXPECT_DOUBLE_EQ(pu::median({5.0, 1.0, 9.0}), 5.0);
  EXPECT_DOUBLE_EQ(pu::min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(pu::max_of(xs), 4.0);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  EXPECT_DOUBLE_EQ(pu::geomean({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(pu::geomean({}), 0.0);
}

TEST(Stats, RunningStatsAccumulates) {
  pu::RunningStats rs;
  rs.add(2.0);
  rs.add(8.0);
  EXPECT_EQ(rs.count(), 2u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.geomean(), 4.0);
}

TEST(Table, AlignedRenderingAndCsv) {
  pu::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"a-longer-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("a-longer-name"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\na-longer-name,22\n");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Formatters) {
  EXPECT_EQ(pu::Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(pu::Table::fmt_int(-42), "-42");
  EXPECT_EQ(pu::Table::fmt_pct(12.345, 1), "12.3%");
  EXPECT_EQ(pu::Table::fmt_bytes(2048), "2.00 KB");
}

TEST(FormatHelpers, BytesAndDurations) {
  char buf[64];
  EXPECT_STREQ(pu::format_bytes(512, buf, sizeof(buf)), "512 B");
  EXPECT_STREQ(pu::format_bytes(3ull << 30, buf, sizeof(buf)), "3.00 GB");
  EXPECT_EQ(pu::format_duration(0.002), "2.0 ms");
  EXPECT_EQ(pu::format_duration(2.5), "2.50 s");
}

TEST(Timer, MeasuresElapsedTime) {
  pu::WallTimer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  EXPECT_GE(t.seconds(), 0.0);
  double acc = 0.0;
  {
    pu::ScopedAccumulator a(acc);
    for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  }
  EXPECT_GT(acc, 0.0);
}
