// Tests for the baseline colorers (the ColPack / Kokkos-EB / ECL-GC-R
// stand-ins): validity on a spread of graph families, the Δ+1 guarantee,
// ordering-specific quality guarantees, and parallel-method round behaviour.

#include <gtest/gtest.h>

#include <tuple>

#include "coloring/greedy.hpp"
#include "coloring/jones_plassmann.hpp"
#include "coloring/ordering.hpp"
#include "coloring/speculative.hpp"
#include "coloring/verify.hpp"
#include "graph/graph_gen.hpp"

namespace pc = picasso::coloring;
namespace pg = picasso::graph;

namespace {

const std::vector<pc::OrderingKind> kAllOrderings = {
    pc::OrderingKind::Natural,       pc::OrderingKind::Random,
    pc::OrderingKind::LargestFirst,  pc::OrderingKind::SmallestLast,
    pc::OrderingKind::DynamicLargestFirst,
    pc::OrderingKind::IncidenceDegree,
};

}  // namespace

TEST(Ordering, NamesAndDynamicFlags) {
  EXPECT_STREQ(pc::to_string(pc::OrderingKind::LargestFirst), "LF");
  EXPECT_STREQ(pc::to_string(pc::OrderingKind::SmallestLast), "SL");
  EXPECT_TRUE(pc::is_dynamic(pc::OrderingKind::DynamicLargestFirst));
  EXPECT_TRUE(pc::is_dynamic(pc::OrderingKind::IncidenceDegree));
  EXPECT_FALSE(pc::is_dynamic(pc::OrderingKind::LargestFirst));
}

TEST(Ordering, NaturalAndRandomArePermutations) {
  const auto nat = pc::natural_order(10);
  for (pg::VertexId v = 0; v < 10; ++v) EXPECT_EQ(nat[v], v);
  auto rnd = pc::random_order(100, 5);
  EXPECT_NE(rnd, pc::natural_order(100));
  std::sort(rnd.begin(), rnd.end());
  EXPECT_EQ(rnd, pc::natural_order(100));
  // Deterministic per seed.
  EXPECT_EQ(pc::random_order(50, 9), pc::random_order(50, 9));
}

TEST(Ordering, LargestFirstSortsByDegreeDescending) {
  const std::vector<std::uint64_t> degrees{1, 5, 3, 5, 0};
  const auto order = pc::largest_first_order(degrees);
  EXPECT_EQ(order[0], 1u);  // ties broken by id (stable)
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[4], 4u);
}

TEST(Ordering, SmallestLastPeelsMinDegree) {
  // Star graph: leaves are peeled before the center (the center's degree
  // only drops to 1 when a single leaf remains, so it is peeled in the last
  // pair), putting the center within the first two of the coloring order.
  auto star = pg::CsrGraph::from_edges(
      5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto order = pc::smallest_last_order(star);
  const auto center_pos = static_cast<std::size_t>(
      std::find(order.begin(), order.end(), 0u) - order.begin());
  EXPECT_LE(center_pos, 1u);
}

// Validity sweep: every ordering on every graph family.
class GreedyValidity
    : public ::testing::TestWithParam<std::tuple<int, pc::OrderingKind>> {};

TEST_P(GreedyValidity, ProducesValidColoringWithinDeltaPlusOne) {
  const auto [family, ordering] = GetParam();
  pg::CsrGraph csr;
  pg::DenseGraph dense;
  bool use_dense = false;
  switch (family) {
    case 0: csr = pg::erdos_renyi(150, 0.1, 42); break;
    case 1: csr = pg::erdos_renyi(150, 0.5, 43); break;
    case 2: csr = pg::path_graph(100); break;
    case 3: csr = pg::cycle_graph(101); break;
    case 4: csr = pg::complete_bipartite(20, 30); break;
    case 5: csr = pg::random_geometric(120, 0.2, 44); break;
    case 6: csr = pg::ring_lattice(90, 6); break;
    case 7:
      dense = pg::erdos_renyi_dense(150, 0.6, 45);
      use_dense = true;
      break;
    default:
      dense = pg::disjoint_cliques(5, 8);
      use_dense = true;
  }
  if (use_dense) {
    const auto r = pc::greedy_color(dense, ordering, 7);
    EXPECT_TRUE(pc::is_valid_coloring(dense, r.colors));
    EXPECT_LE(r.num_colors, dense.max_degree() + 1);
    EXPECT_GT(r.num_colors, 0u);
  } else {
    const auto r = pc::greedy_color(csr, ordering, 7);
    EXPECT_TRUE(pc::is_valid_coloring(csr, r.colors));
    EXPECT_LE(r.num_colors, csr.max_degree() + 1);
    EXPECT_GT(r.num_colors, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesOrderings, GreedyValidity,
    ::testing::Combine(::testing::Range(0, 9),
                       ::testing::ValuesIn(kAllOrderings)));

TEST(Greedy, PathNeedsTwoColorsUnderSmallestLast) {
  // SL colors with at most degeneracy+1; a path has degeneracy 1.
  const auto g = pg::path_graph(50);
  EXPECT_EQ(pc::greedy_color(g, pc::OrderingKind::SmallestLast).num_colors, 2u);
}

TEST(Greedy, EvenCycleGetsTwoOddCycleGetsThreeUnderSL) {
  EXPECT_LE(pc::greedy_color(pg::cycle_graph(40),
                             pc::OrderingKind::SmallestLast).num_colors, 3u);
  EXPECT_EQ(pc::greedy_color(pg::cycle_graph(41),
                             pc::OrderingKind::SmallestLast).num_colors, 3u);
}

TEST(Greedy, DisjointCliquesNeedExactlyCliqueSizeColors) {
  const auto g = pg::disjoint_cliques(4, 6);
  for (auto ordering : kAllOrderings) {
    const auto r = pc::greedy_color(g, ordering, 3);
    EXPECT_EQ(r.num_colors, 6u) << pc::to_string(ordering);
  }
}

TEST(Greedy, CompleteGraphNeedsNColors) {
  const auto g = pg::complete_graph(12);
  for (auto ordering : kAllOrderings) {
    EXPECT_EQ(pc::greedy_color(g, ordering, 1).num_colors, 12u);
  }
}

TEST(Greedy, EmptyAndSingletonGraphs) {
  const auto empty = pg::CsrGraph::from_edges(0, {});
  EXPECT_EQ(pc::greedy_color(empty, pc::OrderingKind::Natural).num_colors, 0u);
  const auto lone = pg::CsrGraph::from_edges(1, {});
  const auto r = pc::greedy_color(lone, pc::OrderingKind::SmallestLast);
  EXPECT_EQ(r.num_colors, 1u);
  EXPECT_TRUE(pc::is_valid_coloring(lone, r.colors));
}

TEST(Greedy, ReportsAuxiliaryMemoryAndTime) {
  const auto g = pg::erdos_renyi(200, 0.3, 8);
  const auto r = pc::greedy_color(g, pc::OrderingKind::DynamicLargestFirst);
  EXPECT_GT(r.aux_peak_bytes, 0u);
  EXPECT_GE(r.seconds, 0.0);
}

class JonesPlassmannSweep
    : public ::testing::TestWithParam<std::tuple<pc::JpPriority, std::uint64_t>> {
};

TEST_P(JonesPlassmannSweep, ValidOnDenseAndSparse) {
  const auto [priority, seed] = GetParam();
  const auto sparse = pg::erdos_renyi(200, 0.05, seed);
  const auto rs = pc::jones_plassmann(sparse, priority, seed);
  EXPECT_TRUE(pc::is_valid_coloring(sparse, rs.colors));
  EXPECT_LE(rs.num_colors, sparse.max_degree() + 1);
  EXPECT_GE(rs.rounds, 1);

  const auto dense = pg::erdos_renyi_dense(200, 0.5, seed);
  const auto rd = pc::jones_plassmann(dense, priority, seed);
  EXPECT_TRUE(pc::is_valid_coloring(dense, rd.colors));
  EXPECT_LE(rd.num_colors, dense.max_degree() + 1);
}

INSTANTIATE_TEST_SUITE_P(
    PrioritiesAndSeeds, JonesPlassmannSweep,
    ::testing::Combine(::testing::Values(pc::JpPriority::Random,
                                         pc::JpPriority::LargestDegreeFirst),
                       ::testing::Values(1u, 2u, 3u)));

TEST(JonesPlassmann, DeterministicPerSeed) {
  const auto g = pg::erdos_renyi(150, 0.2, 5);
  const auto a = pc::jones_plassmann(g, pc::JpPriority::LargestDegreeFirst, 9);
  const auto b = pc::jones_plassmann(g, pc::JpPriority::LargestDegreeFirst, 9);
  EXPECT_EQ(a.colors, b.colors);
}

TEST(JonesPlassmann, CompleteGraphTakesNColorsAndNRounds) {
  const auto g = pg::complete_graph(10);
  const auto r = pc::jones_plassmann(g);
  EXPECT_EQ(r.num_colors, 10u);
  EXPECT_EQ(r.rounds, 10);  // strictly sequential dependency chain
}

TEST(Speculative, ValidAcrossFamilies) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto g = pg::erdos_renyi(180, 0.3, seed);
    const auto r = pc::speculative_color(g);
    EXPECT_TRUE(pc::is_valid_coloring(g, r.colors));
    EXPECT_LE(r.num_colors, g.max_degree() + 1);
    EXPECT_GE(r.rounds, 1);
  }
  const auto dense = pg::erdos_renyi_dense(120, 0.7, 4);
  const auto r = pc::speculative_color(dense);
  EXPECT_TRUE(pc::is_valid_coloring(dense, r.colors));
}

TEST(Verify, DetectsInvalidColorings) {
  const auto g = pg::path_graph(4);
  std::vector<std::uint32_t> good{0, 1, 0, 1};
  EXPECT_TRUE(pc::is_valid_coloring(g, good));
  std::vector<std::uint32_t> monochrome{0, 0, 0, 0};
  EXPECT_FALSE(pc::is_valid_coloring(g, monochrome));
  std::vector<std::uint32_t> incomplete{0, 1, pc::kNoColor, 1};
  EXPECT_FALSE(pc::is_valid_coloring(g, incomplete));
  std::vector<std::uint32_t> short_array{0, 1};
  EXPECT_FALSE(pc::is_valid_coloring(g, short_array));
}

TEST(Verify, CountColorsAndClassSizes) {
  std::vector<std::uint32_t> colors{5, 7, 5, 9, 7, 5};
  EXPECT_EQ(pc::count_colors(colors), 3u);
  EXPECT_EQ(pc::color_class_sizes(colors),
            (std::vector<std::uint32_t>{3, 2, 1}));
  std::vector<std::uint32_t> with_gap{0, pc::kNoColor, 0};
  EXPECT_EQ(pc::count_colors(with_gap), 1u);
}
