// Corrupt-input hardening of the graph text readers (graph/graph_io.cpp):
// huge header edge counts must not drive huge allocations, out-of-range
// endpoints must fail naming the offending line, self loops are skipped
// and counted identically in both formats, and MatrixMarket dispatch is
// case-insensitive on the extension.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/graph_io.hpp"

namespace pg = picasso::graph;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct FileGuard {
  std::string path;
  explicit FileGuard(std::string p) : path(std::move(p)) {}
  ~FileGuard() { std::remove(path.c_str()); }
};

}  // namespace

// A corrupt header claiming ~2^63 edges must parse the (tiny) body rather
// than die trying to reserve the claimed count up front.
TEST(GraphIoHardening, HugeHeaderEdgeCountDoesNotPreallocate) {
  std::istringstream in("3 9223372036854775807\n0 1\n1 2\n");
  const pg::CsrGraph g = pg::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIoHardening, HugeMatrixMarketEntryCountDoesNotPreallocate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 9223372036854775807\n"
      "1 2\n"
      "2 3\n");
  const pg::CsrGraph g = pg::read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

// Endpoints past the declared vertex count must throw, and the error must
// quote the offending line so corrupt files are actionable.
TEST(GraphIoHardening, OutOfRangeEndpointNamesLine) {
  std::istringstream in("3 2\n0 1\n1 7\n");
  try {
    pg::read_edge_list(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
    EXPECT_NE(what.find("1 7"), std::string::npos) << what;
    EXPECT_NE(what.find("n = 3"), std::string::npos) << what;
  }
}

TEST(GraphIoHardening, MatrixMarketOutOfRangeIndexNamesLine) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "1 2\n"
      "4 1\n");
  try {
    pg::read_matrix_market(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
    EXPECT_NE(what.find("4 1"), std::string::npos) << what;
  }
}

// Both readers share the self-loop policy: skip the line, count the skip,
// keep everything else.
TEST(GraphIoHardening, EdgeListSelfLoopsSkippedAndCounted) {
  std::istringstream in("4 5\n0 0\n0 1\n2 2\n1 2\n3 3\n");
  pg::GraphReadStats stats;
  const pg::CsrGraph g = pg::read_edge_list(in, &stats);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(stats.skipped_self_loops, 3u);
}

TEST(GraphIoHardening, MatrixMarketSelfLoopsSkippedAndCounted) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "4 4 4\n"
      "1 1\n"
      "2 1\n"
      "3 3\n"
      "4 2\n");
  pg::GraphReadStats stats;
  const pg::CsrGraph g = pg::read_matrix_market(in, &stats);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(stats.skipped_self_loops, 2u);
}

// Stats parameter defaults keep the old single-argument calls compiling —
// and a reader that throws must leave the caller's stats untouched.
TEST(GraphIoHardening, StatsUntouchedOnParseFailure) {
  pg::GraphReadStats stats;
  stats.skipped_self_loops = 77;
  std::istringstream in("3 2\n0 1\nnot an edge\n");
  EXPECT_THROW(pg::read_edge_list(in, &stats), std::runtime_error);
  EXPECT_EQ(stats.skipped_self_loops, 77u);
}

TEST(GraphIoHardening, MatrixMarketPathDetectionIsCaseInsensitive) {
  EXPECT_TRUE(pg::is_matrix_market_path("graph.mtx"));
  EXPECT_TRUE(pg::is_matrix_market_path("GRAPH.MTX"));
  EXPECT_TRUE(pg::is_matrix_market_path("/tmp/Graph.Mtx"));
  EXPECT_FALSE(pg::is_matrix_market_path("graph.txt"));
  EXPECT_FALSE(pg::is_matrix_market_path("graphmtx"));
  EXPECT_FALSE(pg::is_matrix_market_path("graph.mtx.bak"));
}

// read_graph_file must route an upper-case .MTX through the MatrixMarket
// parser (a .MTX body is not a valid edge list, so misrouting throws).
TEST(GraphIoHardening, UppercaseMtxFileDispatchesToMatrixMarket) {
  const FileGuard guard(temp_path("picasso_io_hardening_UPPER.MTX"));
  {
    std::ofstream out(guard.path);
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
        << "3 3 2\n"
        << "2 1\n"
        << "3 2\n";
  }
  pg::GraphReadStats stats;
  const pg::CsrGraph g = pg::read_graph_file(guard.path, &stats);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(stats.skipped_self_loops, 0u);
}

// Malformed headers and truncated bodies fail loudly, never crash.
TEST(GraphIoHardening, MalformedInputsThrow) {
  {
    std::istringstream in("");
    EXPECT_THROW(pg::read_edge_list(in), std::runtime_error);
  }
  {
    std::istringstream in("notanumber 5\n");
    EXPECT_THROW(pg::read_edge_list(in), std::runtime_error);
  }
  {
    std::istringstream in("3 2\n0\n");
    EXPECT_THROW(pg::read_edge_list(in), std::runtime_error);
  }
  {
    std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n");
    EXPECT_THROW(pg::read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in("%%MatrixMarket matrix coordinate pattern general\n");
    EXPECT_THROW(pg::read_matrix_market(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "3 3 1\n"
        "1\n");
    EXPECT_THROW(pg::read_matrix_market(in), std::runtime_error);
  }
}
