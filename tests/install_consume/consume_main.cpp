// Smoke test for the installed package: exercises the public Session API
// end to end (builder validation, plan selection, a real solve, the version
// header) using only installed headers and the exported target.

#include <cstdio>
#include <cstring>

#include "api/session.hpp"
#include "api/version.hpp"
#include "coloring/verify.hpp"
#include "graph/graph_gen.hpp"

int main() {
  using namespace picasso;

  if (std::strcmp(api::version_string(), PICASSO_API_VERSION) != 0) return 1;

  const auto g = graph::erdos_renyi_dense(200, 0.3, /*seed=*/7);
  const auto session =
      api::SessionBuilder().palette(12.5, 2.0).seed(7).build();
  const auto problem = api::Problem::dense(g);

  const auto plan = session.plan(problem);
  if (plan.strategy != api::ExecutionStrategy::InMemory) return 2;

  const auto report = session.solve(problem);
  if (!coloring::is_valid_coloring(g, report.result.colors)) return 3;

  std::printf("picasso %s: %u vertices -> %u colors via %s\n",
              api::version_string(), g.num_vertices(),
              report.result.num_colors, to_string(report.plan.strategy));
  return 0;
}
