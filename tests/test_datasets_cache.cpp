// Regression coverage for the dataset disk cache's corrupt-entry
// fall-through (pauli/datasets.cpp): a truncated, garbled, or empty cached
// .pset must be silently regenerated — never crash the loader or serve a
// wrong set — and the regenerated set must be identical to a fresh build.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "api/session.hpp"
#include "pauli/datasets.hpp"
#include "pauli/pauli_set.hpp"

namespace pp = picasso::pauli;
namespace fs = std::filesystem;

namespace {

class DatasetCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("picasso_dscache_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    ::setenv("PICASSO_DATA_DIR", dir_.c_str(), 1);
    pp::clear_dataset_cache();
  }

  void TearDown() override {
    pp::clear_dataset_cache();
    ::unsetenv("PICASSO_DATA_DIR");
    fs::remove_all(dir_);
  }

  /// A deliberately tiny recipe so generation stays fast even when every
  /// test case regenerates it.
  static pp::DatasetSpec tiny_spec() {
    pp::MoleculeSpec molecule;
    molecule.num_atoms = 2;
    molecule.geometry = pp::Geometry::Chain1D;
    molecule.basis = pp::Basis::STO3G;
    pp::DatasetSpec spec;
    spec.name = molecule.name() + "_cache_test";
    spec.molecule = molecule;
    spec.size_class = pp::SizeClass::Small;
    spec.cap = 64;
    spec.with_ansatz = false;
    return spec;
  }

  fs::path cached_file() const {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".pset") return entry.path();
    }
    return {};
  }

  static std::uint64_t fingerprint(const pp::PauliSet& set) {
    return picasso::api::problem_fingerprint(set,
                                             picasso::core::PicassoParams{});
  }

  fs::path dir_;
};

}  // namespace

TEST_F(DatasetCacheTest, GeneratesThenServesFromDiskCache) {
  const pp::DatasetSpec spec = tiny_spec();
  const pp::PauliSet& fresh = pp::load_dataset(spec);
  ASSERT_GT(fresh.size(), 0u);
  const std::uint64_t expected = fingerprint(fresh);
  const fs::path file = cached_file();
  ASSERT_FALSE(file.empty()) << "no cache file written";

  // A second process (simulated by dropping the memo) loads from disk and
  // gets the identical set.
  pp::clear_dataset_cache();
  const pp::PauliSet& from_disk = pp::load_dataset(spec);
  EXPECT_EQ(fingerprint(from_disk), expected);
}

TEST_F(DatasetCacheTest, TruncatedCacheEntryRegenerates) {
  const pp::DatasetSpec spec = tiny_spec();
  const std::uint64_t expected = fingerprint(pp::load_dataset(spec));
  const fs::path file = cached_file();
  ASSERT_FALSE(file.empty());

  pp::clear_dataset_cache();
  fs::resize_file(file, fs::file_size(file) / 2);
  const pp::PauliSet& recovered = pp::load_dataset(spec);
  EXPECT_EQ(fingerprint(recovered), expected);

  // The regenerated set was re-cached whole: the next cold load reads a
  // healthy file.
  pp::clear_dataset_cache();
  EXPECT_GT(fs::file_size(cached_file()), 0u);
  EXPECT_EQ(fingerprint(pp::load_dataset(spec)), expected);
}

TEST_F(DatasetCacheTest, GarbledMagicRegenerates) {
  const pp::DatasetSpec spec = tiny_spec();
  const std::uint64_t expected = fingerprint(pp::load_dataset(spec));
  const fs::path file = cached_file();
  ASSERT_FALSE(file.empty());

  pp::clear_dataset_cache();
  {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    const char junk[8] = {'j', 'u', 'n', 'k', 'j', 'u', 'n', 'k'};
    f.write(junk, sizeof(junk));
  }
  EXPECT_EQ(fingerprint(pp::load_dataset(spec)), expected);
}

TEST_F(DatasetCacheTest, EmptyCacheFileRegenerates) {
  const pp::DatasetSpec spec = tiny_spec();
  const std::uint64_t expected = fingerprint(pp::load_dataset(spec));
  const fs::path file = cached_file();
  ASSERT_FALSE(file.empty());

  pp::clear_dataset_cache();
  { std::ofstream truncate(file, std::ios::binary | std::ios::trunc); }
  EXPECT_EQ(fingerprint(pp::load_dataset(spec)), expected);
}
