// End-to-end tests for the Picasso driver (Algorithm 1): validity on
// explicit and implicit graphs, determinism, palette disjointness across
// iterations, device-pipeline equivalence, parameter trade-offs, and the
// max-iterations safety valve.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "api/session.hpp"
#include "coloring/verify.hpp"
#include "core/picasso.hpp"
#include "graph/graph_gen.hpp"
#include "graph/oracles.hpp"
#include "pauli/datasets.hpp"

namespace pcore = picasso::core;
namespace papi = picasso::api;
namespace pg = picasso::graph;
namespace pc = picasso::coloring;

class PicassoSweep
    : public ::testing::TestWithParam<
          std::tuple<double, double, std::uint64_t, double>> {};

TEST_P(PicassoSweep, ValidColoringOnDenseRandomGraphs) {
  const auto [percent, alpha, seed, density] = GetParam();
  const auto g = pg::erdos_renyi_dense(400, density, seed);
  pcore::PicassoParams params;
  params.palette_percent = percent;
  params.alpha = alpha;
  params.seed = seed;
  const auto r = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  const pg::DenseOracle oracle(g);
  EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors));
  EXPECT_GT(r.num_colors, 0u);
  EXPECT_LE(r.num_colors, r.palette_total);
  EXPECT_GE(r.iterations.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    ParamsSeedsDensities, PicassoSweep,
    ::testing::Combine(::testing::Values(3.0, 12.5, 20.0),
                       ::testing::Values(0.5, 2.0, 4.5),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(0.3, 0.6)));

TEST(Picasso, DeterministicGivenSeed) {
  const auto g = pg::erdos_renyi_dense(300, 0.5, 7);
  pcore::PicassoParams params;
  params.seed = 99;
  const auto a = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  const auto b = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.num_colors, b.num_colors);
  params.seed = 100;
  const auto c = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  EXPECT_NE(a.colors, c.colors);  // different seed, different run
}

TEST(Picasso, KernelsProduceIdenticalColorings) {
  const auto g = pg::erdos_renyi_dense(250, 0.5, 3);
  pcore::PicassoParams params;
  params.kernel = pcore::ConflictKernel::Indexed;
  const auto idx = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  params.kernel = pcore::ConflictKernel::Reference;
  const auto ref = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  EXPECT_EQ(idx.colors, ref.colors);
}

TEST(Picasso, DevicePipelineMatchesHostColoring) {
  const auto g = pg::erdos_renyi_dense(200, 0.5, 5);
  pcore::PicassoParams params;
  const auto host = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  picasso::device::DeviceContext ctx(256u << 20);
  params.device = &ctx;
  const auto device = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  EXPECT_EQ(host.colors, device.colors);
  EXPECT_TRUE(device.iterations.front().csr_built_on_device);
}

TEST(Picasso, IterationPalettesAreDisjoint) {
  // Vertices colored in iteration k must have colors within iteration k's
  // palette range; ranges never overlap because base advances by P_l.
  const auto g = pg::erdos_renyi_dense(300, 0.6, 11);
  pcore::PicassoParams params;
  params.palette_percent = 5.0;  // force multiple iterations
  params.alpha = 1.0;
  const auto r = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  ASSERT_GE(r.iterations.size(), 2u) << "expected a multi-iteration run";
  std::uint64_t palette_sum = 0;
  for (const auto& it : r.iterations) palette_sum += it.palette_size;
  EXPECT_LE(palette_sum, r.palette_total);
  // All colors fall inside [0, palette_total).
  for (auto c : r.colors) EXPECT_LT(c, r.palette_total);
}

TEST(Picasso, CompleteGraphNeedsAllColors) {
  const auto g = pg::complete_graph(40);
  pcore::PicassoParams params;
  params.palette_percent = 50.0;
  params.alpha = 3.0;
  const auto r = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  EXPECT_EQ(r.num_colors, 40u);
  const pg::DenseOracle oracle(g);
  EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors));
}

TEST(Picasso, SparseBipartiteUsesFewColors) {
  const auto g = pg::complete_bipartite(40, 40);
  pcore::PicassoParams params;
  params.palette_percent = 12.5;
  const auto r = papi::Session::from_params(params).solve(papi::Problem::csr(g)).result;
  const pg::CsrOracle oracle(g);
  EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors));
  // Not necessarily 2, but far below n.
  EXPECT_LT(r.num_colors, 20u);
}

TEST(Picasso, AggressiveBeatsNormalOnColors) {
  const auto g = pg::erdos_renyi_dense(400, 0.5, 13);
  pcore::PicassoParams norm;
  norm.palette_percent = 12.5;
  norm.alpha = 2.0;
  pcore::PicassoParams aggr;
  aggr.palette_percent = 3.0;
  aggr.alpha = 30.0;
  const auto rn = papi::Session::from_params(norm).solve(papi::Problem::dense(g)).result;
  const auto ra = papi::Session::from_params(aggr).solve(papi::Problem::dense(g)).result;
  EXPECT_LT(ra.num_colors, rn.num_colors);
  // ...at the cost of more conflict edges (the paper's trade-off).
  EXPECT_GT(ra.max_conflict_edges, rn.max_conflict_edges);
}

TEST(Picasso, MaxIterationsSafetyValveStillValid) {
  const auto g = pg::erdos_renyi_dense(200, 0.7, 17);
  pcore::PicassoParams params;
  params.palette_percent = 2.0;
  params.alpha = 0.5;
  params.max_iterations = 1;  // force the fallback tail
  const auto r = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  const pg::DenseOracle oracle(g);
  EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors));
  EXPECT_FALSE(r.converged);
}

TEST(Picasso, EmptyGraphIsTrivially0Colored) {
  const pg::DenseGraph g(0);
  const auto r = papi::Session::from_params({}).solve(papi::Problem::dense(g)).result;
  EXPECT_EQ(r.num_colors, 0u);
  EXPECT_TRUE(r.colors.empty());
  EXPECT_TRUE(r.converged);
}

TEST(Picasso, EdgelessGraphGetsOneIterationOneColorPerPalette) {
  pg::DenseGraph g(50);  // no edges: everyone unconflicted
  const auto r = papi::Session::from_params({}).solve(papi::Problem::dense(g)).result;
  EXPECT_EQ(r.iterations.size(), 1u);
  EXPECT_EQ(r.iterations[0].conflict_edges, 0u);
  const pg::DenseOracle oracle(g);
  EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors));
}

TEST(Picasso, StatsAreInternallyConsistent) {
  const auto g = pg::erdos_renyi_dense(300, 0.5, 19);
  const auto r = papi::Session::from_params({}).solve(papi::Problem::dense(g)).result;
  std::uint32_t colored_sum = 0;
  std::uint64_t max_ec = 0;
  for (std::size_t i = 0; i < r.iterations.size(); ++i) {
    const auto& it = r.iterations[i];
    EXPECT_EQ(it.colored + it.uncolored, it.n_active) << "iteration " << i;
    EXPECT_LE(it.list_size, it.palette_size);
    EXPECT_LE(it.conflicted_vertices, it.n_active);
    colored_sum += it.colored;
    max_ec = std::max(max_ec, it.conflict_edges);
    if (i + 1 < r.iterations.size()) {
      EXPECT_EQ(r.iterations[i + 1].n_active, it.uncolored);
    }
  }
  EXPECT_EQ(colored_sum, g.num_vertices());
  EXPECT_EQ(max_ec, r.max_conflict_edges);
  EXPECT_GE(r.total_seconds,
            0.0);  // phase sums are <= total (no negative accounting)
  EXPECT_GT(r.peak_logical_bytes, 0u);
  EXPECT_NEAR(r.color_percent(),
              100.0 * r.num_colors / g.num_vertices(), 1e-9);
}

TEST(Picasso, ConflictColoringSchemesAllValid) {
  const auto g = pg::erdos_renyi_dense(250, 0.5, 23);
  const pg::DenseOracle oracle(g);
  for (auto scheme : {pcore::ConflictColoringScheme::DynamicBucket,
                      pcore::ConflictColoringScheme::DynamicHeap,
                      pcore::ConflictColoringScheme::StaticNatural,
                      pcore::ConflictColoringScheme::StaticRandom,
                      pcore::ConflictColoringScheme::StaticLargestFirst}) {
    pcore::PicassoParams params;
    params.conflict_scheme = scheme;
    const auto r = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
    EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors))
        << to_string(scheme);
  }
}

TEST(Picasso, WorksDirectlyOnPauliComplementOracle) {
  const auto set = picasso::pauli::fig1_h2_set();
  pcore::PicassoParams params;
  params.palette_percent = 40.0;
  params.alpha = 30.0;
  params.seed = 3;
  const auto r = papi::Session::from_params(params).solve(papi::Problem::pauli(set)).result;
  const pg::ComplementOracle oracle(set);
  EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors));
  // The paper's Fig. 1 shows 17 strings -> 9 unitaries; we should land in
  // the same neighbourhood with an aggressive configuration.
  EXPECT_LE(r.num_colors, 12u);
  EXPECT_GE(r.num_colors, 9u);  // 9 is the best the paper shows
}
