// Tests for the unitary-partitioning application layer (§II): color classes
// as anticommuting cliques, the verifier's violation detection, and the
// paper's H2 example.

#include <gtest/gtest.h>

#include <cmath>

#include "core/clique_partition.hpp"
#include "pauli/datasets.hpp"

namespace pcore = picasso::core;
namespace pp = picasso::pauli;

namespace {

pp::PauliSet small_random_set(std::size_t count, std::size_t qubits,
                              std::uint64_t seed) {
  picasso::util::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  std::vector<double> coefs;
  for (std::size_t i = 0; i < count; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(s);
    coefs.push_back(rng.uniform() + 0.1);
  }
  return pp::PauliSet(strings, coefs);
}

}  // namespace

TEST(Partition, Fig1CompressesSeventeenStringsToNineGroups) {
  const auto set = pp::fig1_h2_set();
  pcore::PicassoParams params;
  params.palette_percent = 40.0;
  params.alpha = 30.0;
  params.seed = 3;
  const auto result = pcore::partition_pauli_strings(set, params);
  EXPECT_TRUE(pcore::verify_partition(set, result.groups).empty());
  EXPECT_GE(result.num_groups(), 9u);
  EXPECT_LE(result.num_groups(), 12u);
  EXPECT_GT(result.compression_ratio(), 1.0);
}

TEST(Partition, GroupsFromColoringRespectsClasses) {
  const auto set = small_random_set(30, 5, 1);
  // Hand-build a trivial coloring: everyone its own group.
  std::vector<std::uint32_t> colors(30);
  for (std::uint32_t i = 0; i < 30; ++i) colors[i] = i;
  const auto groups = pcore::groups_from_coloring(set, colors);
  EXPECT_EQ(groups.size(), 30u);
  EXPECT_TRUE(pcore::verify_partition(set, groups).empty());
  for (const auto& g : groups) {
    EXPECT_EQ(g.members.size(), 1u);
    EXPECT_NEAR(g.coefficient_norm,
                std::abs(set.coefficient(g.members[0])), 1e-12);
  }
}

TEST(Partition, CoefficientNormIsEuclidean) {
  const pp::PauliSet set({pp::PauliString::parse("XX"),
                          pp::PauliString::parse("YY")},
                         {3.0, 4.0});
  // XX and YY anticommute? mismatches at 2 positions -> even -> commute.
  // Use one group per string to avoid the clique constraint.
  const auto groups = pcore::groups_from_coloring(set, {0, 1});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_DOUBLE_EQ(groups[0].coefficient_norm, 3.0);
  EXPECT_DOUBLE_EQ(groups[1].coefficient_norm, 4.0);
  // And a genuine 2-element group: XI vs YI anticommute (one mismatch).
  const pp::PauliSet pair({pp::PauliString::parse("XI"),
                           pp::PauliString::parse("YI")},
                          {3.0, 4.0});
  const auto merged = pcore::groups_from_coloring(pair, {0, 0});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].coefficient_norm, 5.0);
  EXPECT_TRUE(pcore::verify_partition(pair, merged).empty());
}

TEST(Partition, VerifierCatchesNonAnticommutingGroup) {
  // XX and YY commute: grouping them must be rejected.
  const pp::PauliSet set({pp::PauliString::parse("XX"),
                          pp::PauliString::parse("YY")});
  pcore::UnitaryGroup group;
  group.members = {0, 1};
  const auto message = pcore::verify_partition(set, {group});
  EXPECT_NE(message.find("violate unitary"), std::string::npos);
}

TEST(Partition, VerifierCatchesCoverageViolations) {
  const auto set = small_random_set(4, 3, 2);
  pcore::UnitaryGroup g0;
  g0.members = {0};
  pcore::UnitaryGroup g1;
  g1.members = {1, 1};  // duplicate
  EXPECT_NE(pcore::verify_partition(set, {g0, g1}), "");
  pcore::UnitaryGroup g2;
  g2.members = {1};
  // vertices 2, 3 missing:
  EXPECT_NE(pcore::verify_partition(set, {g0, g2}).find("not covered"),
            std::string::npos);
  pcore::UnitaryGroup empty;
  EXPECT_NE(pcore::verify_partition(set, {empty}).find("empty"),
            std::string::npos);
  pcore::UnitaryGroup oob;
  oob.members = {99};
  EXPECT_NE(pcore::verify_partition(set, {oob}).find("out-of-range"),
            std::string::npos);
}

TEST(Partition, EndToEndOnRandomSetsAcrossSeeds) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    const auto set = small_random_set(120, 6, seed);
    pcore::PicassoParams params;
    params.seed = seed;
    params.palette_percent = 15.0;
    params.alpha = 3.0;
    const auto result = pcore::partition_pauli_strings(set, params);
    EXPECT_TRUE(pcore::verify_partition(set, result.groups).empty())
        << "seed " << seed << ": "
        << pcore::verify_partition(set, result.groups);
    EXPECT_EQ(result.num_groups(), result.coloring.num_colors);
    EXPECT_NEAR(result.compression_ratio(),
                static_cast<double>(set.size()) /
                    static_cast<double>(result.num_groups()),
                1e-12);
  }
}

TEST(Partition, IdentityStringLandsInItsOwnGroupOrAlone) {
  // The identity commutes with everything, so in any valid partition its
  // group must be a singleton.
  const auto set = pp::fig1_h2_set();  // string 0 is IIII
  pcore::PicassoParams params;
  params.seed = 11;
  params.palette_percent = 40.0;
  params.alpha = 10.0;
  const auto result = pcore::partition_pauli_strings(set, params);
  ASSERT_TRUE(pcore::verify_partition(set, result.groups).empty());
  for (const auto& g : result.groups) {
    if (std::find(g.members.begin(), g.members.end(), 0u) != g.members.end()) {
      EXPECT_EQ(g.members.size(), 1u);
    }
  }
}
