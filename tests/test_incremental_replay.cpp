// Determinism-replay gate for incremental coloring (integration tier).
//
// The contract under test (see core/incremental.hpp): the final coloring
// is a pure function of the concatenated record sequence and the
// (params, update-params) pair. It must not depend on
//   - how the sequence was split into update() calls,
//   - the runtime thread count,
//   - Scalar vs Packed conflict backends,
//   - whether the store is in memory, budget-spilled, or chunk-forced
//     to disk,
//   - whether the state was seeded by update() from scratch or by a
//     solve_incremental() baseline,
//   - whether escalations (full prefix re-solves) fired along the way.
// Every run below must produce bit-identical colors to its reference.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "coloring/verify.hpp"
#include "graph/oracles.hpp"
#include "util/rng.hpp"

namespace papi = picasso::api;
namespace pcore = picasso::core;
namespace pg = picasso::graph;
namespace pp = picasso::pauli;

namespace {

std::vector<pp::PauliString> random_strings(std::size_t count,
                                            std::size_t qubits,
                                            std::uint64_t seed) {
  picasso::util::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  for (std::size_t i = 0; i < count; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(s);
  }
  return strings;
}

/// Record sequence with duplicates salted in: every eighth string repeats
/// an earlier one, so recoloring and fresh-color pressure both trigger.
std::vector<pp::PauliString> replay_workload(std::size_t count,
                                             std::size_t qubits,
                                             std::uint64_t seed) {
  auto strings = random_strings(count, qubits, seed);
  for (std::size_t i = 8; i < strings.size(); i += 8) {
    strings[i] = strings[i / 2];
  }
  return strings;
}

pp::PauliSet slice(const std::vector<pp::PauliString>& strings,
                   std::size_t begin, std::size_t end) {
  return pp::PauliSet(std::vector<pp::PauliString>(strings.begin() + begin,
                                                   strings.begin() + end));
}

/// One cell of the replay matrix.
struct ReplayConfig {
  std::string name;
  std::uint32_t threads = 1;
  pcore::PauliBackend backend = pcore::PauliBackend::Packed;
  std::size_t budget = 0;         // 0 = in-memory store
  std::size_t chunk_strings = 0;  // >0 forces a spilled store outright
};

std::vector<ReplayConfig> replay_matrix() {
  std::vector<ReplayConfig> configs;
  for (std::uint32_t threads : {1u, 2u, 8u}) {
    for (auto backend : {pcore::PauliBackend::Scalar,
                         pcore::PauliBackend::Packed}) {
      for (std::size_t budget : {std::size_t{0}, std::size_t{64} << 20}) {
        const char* be =
            backend == pcore::PauliBackend::Scalar ? "scalar" : "packed";
        configs.push_back({"t" + std::to_string(threads) + "/" + be +
                               (budget ? "/64MiB" : "/mem"),
                           threads, backend, budget, 0});
      }
    }
  }
  // Chunk-forced spill: tiny chunks exercise the cross-chunk probe paths
  // of both spilled probers regardless of any budget.
  configs.push_back({"t2/packed/chunk16", 2, pcore::PauliBackend::Packed,
                     std::size_t{0}, 16});
  configs.push_back({"t8/scalar/chunk16", 8, pcore::PauliBackend::Scalar,
                     std::size_t{0}, 16});
  return configs;
}

papi::Session make_session(const ReplayConfig& config,
                           pcore::UpdateParams update_params) {
  auto builder = papi::SessionBuilder()
                     .seed(11)
                     .backend(config.backend)
                     .update_params(update_params)
                     .runtime({.num_threads = config.threads});
  if (config.budget != 0) builder.memory_budget(config.budget);
  if (config.chunk_strings != 0) {
    builder.streaming({.chunk_strings = config.chunk_strings});
  }
  return builder.build();
}

/// Feeds `strings` to `session` as one update() per split segment and
/// returns the final coloring.
std::vector<std::uint32_t> run_splits(
    papi::Session& session, const std::vector<pp::PauliString>& strings,
    const std::vector<std::size_t>& splits, std::uint32_t* escalations = nullptr) {
  std::size_t begin = 0;
  papi::SolveReport report;
  for (std::size_t width : splits) {
    report = session.update(
        papi::UpdateDelta::pauli(slice(strings, begin, begin + width)));
    begin += width;
    if (escalations != nullptr) *escalations += report.update->escalations;
  }
  EXPECT_EQ(begin, strings.size());
  return report.result.colors;
}

std::vector<std::vector<std::size_t>> split_plans(std::size_t total) {
  std::vector<std::vector<std::size_t>> plans;
  plans.push_back({total});
  plans.push_back({1, total - 1});
  plans.push_back({total / 2, total - total / 2});
  plans.push_back({total / 3, total / 3, total - 2 * (total / 3)});
  std::vector<std::size_t> fine(total / 16, 16);
  fine.push_back(total - 16 * (total / 16));
  if (fine.back() == 0) fine.pop_back();
  plans.push_back(std::move(fine));
  return plans;
}

}  // namespace

// Scratch-built state: every (config, split) cell reproduces the serial
// in-memory one-shot coloring bit for bit.
TEST(IncrementalReplay, SplitsThreadsBackendsAndSpillAgree) {
  const auto strings = replay_workload(160, 12, 101);
  const pcore::UpdateParams update_params{.max_recolor = 4,
                                          .max_new_colors = 0};

  std::vector<std::uint32_t> reference;
  for (const auto& config : replay_matrix()) {
    for (const auto& plan : split_plans(strings.size())) {
      auto session = make_session(config, update_params);
      const auto colors = run_splits(session, strings, plan);
      ASSERT_EQ(colors.size(), strings.size());
      if (reference.empty()) {
        reference = colors;
        const pp::PauliSet all(strings);
        const pg::ComplementOracle oracle(all);
        ASSERT_TRUE(
            picasso::coloring::is_valid_coloring_oracle(oracle, reference));
      } else {
        EXPECT_EQ(colors, reference)
            << "diverged: " << config.name << " splits=" << plan.size();
      }
    }
  }
}

// Baseline-seeded state: solve_incremental() over a fixed prefix, then the
// remainder in varying splits. The baseline fused solve is itself
// schedule-invariant, so every cell must agree with the serial reference.
TEST(IncrementalReplay, FixedBaselineThenSplitsAgree) {
  const auto strings = replay_workload(140, 12, 202);
  const pcore::UpdateParams update_params{.max_recolor = 4,
                                          .max_new_colors = 0};
  constexpr std::size_t kBaseline = 60;
  const pp::PauliSet base = slice(strings, 0, kBaseline);
  const auto tail = std::vector<pp::PauliString>(strings.begin() + kBaseline,
                                                 strings.end());

  std::vector<std::uint32_t> reference;
  for (const auto& config : replay_matrix()) {
    for (const auto& plan : split_plans(tail.size())) {
      auto session = make_session(config, update_params);
      auto baseline = session.solve_incremental(papi::Problem::pauli(base));
      ASSERT_EQ(baseline.result.colors.size(), kBaseline);
      const auto colors = run_splits(session, tail, plan);
      ASSERT_EQ(colors.size(), strings.size());
      if (reference.empty()) {
        reference = colors;
        const pp::PauliSet all(strings);
        const pg::ComplementOracle oracle(all);
        ASSERT_TRUE(
            picasso::coloring::is_valid_coloring_oracle(oracle, reference));
      } else {
        EXPECT_EQ(colors, reference)
            << "diverged: " << config.name << " splits=" << plan.size();
      }
    }
  }
}

// Escalation fires at a vertex boundary determined by the record sequence
// alone, so even runs whose escalations land mid-update reproduce the
// one-shot coloring.
TEST(IncrementalReplay, EscalationPathIsScheduleInvariant) {
  auto strings = replay_workload(120, 10, 303);
  // Pile duplicates of one record so fresh colors accumulate quickly.
  for (std::size_t i = 30; i < strings.size(); i += 12) {
    strings[i] = strings[5];
  }
  const pcore::UpdateParams update_params{.max_recolor = 1,
                                          .max_new_colors = 2};

  std::vector<std::uint32_t> reference;
  std::uint32_t reference_escalations = 0;
  for (const auto& config : replay_matrix()) {
    for (const auto& plan : split_plans(strings.size())) {
      auto session = make_session(config, update_params);
      std::uint32_t escalations = 0;
      const auto colors = run_splits(session, strings, plan, &escalations);
      if (reference.empty()) {
        reference = colors;
        reference_escalations = escalations;
        const pp::PauliSet all(strings);
        const pg::ComplementOracle oracle(all);
        ASSERT_TRUE(
            picasso::coloring::is_valid_coloring_oracle(oracle, reference));
      } else {
        EXPECT_EQ(colors, reference)
            << "diverged: " << config.name << " splits=" << plan.size();
        EXPECT_EQ(escalations, reference_escalations)
            << "escalation count drifted: " << config.name;
      }
    }
  }
  EXPECT_GE(reference_escalations, 1u);
}
