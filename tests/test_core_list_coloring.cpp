// Tests for conflict-graph list coloring (§IV-B): Algorithm 2's invariants
// (assigned color from own list, no monochromatic conflict edge, uncolored
// only on list exhaustion), the heap ablation, and the static-order schemes.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/conflict_graph.hpp"
#include "core/list_coloring.hpp"
#include "core/palette.hpp"
#include "graph/graph_gen.hpp"
#include "graph/oracles.hpp"
#include "util/rng.hpp"

namespace pcore = picasso::core;
namespace pg = picasso::graph;

namespace {

constexpr std::uint32_t kNone = pcore::ListColoringResult::kNoColorLocal;

/// Checks every invariant a list coloring must satisfy.
void expect_valid_list_coloring(const pg::CsrGraph& gc,
                                const pcore::ColorLists& lists,
                                const pcore::ListColoringResult& result) {
  const std::uint32_t n = gc.num_vertices();
  ASSERT_EQ(result.assigned.size(), n);
  std::uint32_t colored = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t c = result.assigned[v];
    if (c == kNone) continue;
    ++colored;
    // Color must come from the vertex's own list.
    const auto list = lists.list(v);
    EXPECT_NE(std::find(list.begin(), list.end(), c), list.end())
        << "vertex " << v << " colored outside its list";
    // No conflict edge may be monochromatic.
    for (std::uint32_t u : gc.neighbors(v)) {
      EXPECT_NE(result.assigned[u], c) << "edge (" << v << "," << u << ")";
    }
  }
  EXPECT_EQ(result.num_colored, colored);
  // uncolored = exactly the kNone vertices, sorted.
  std::vector<std::uint32_t> expected_uncolored;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (result.assigned[v] == kNone) expected_uncolored.push_back(v);
  }
  EXPECT_EQ(result.uncolored, expected_uncolored);
}

struct Fixture {
  pg::CsrGraph gc;
  pcore::ColorLists lists;
};

Fixture make_fixture(std::uint32_t n, double density, double percent,
                     double alpha, std::uint64_t seed) {
  const auto base = pg::erdos_renyi_dense(n, density, seed);
  const pg::DenseOracle oracle(base);
  std::vector<std::uint32_t> active(n);
  for (std::uint32_t v = 0; v < n; ++v) active[v] = v;
  const auto palette = pcore::compute_palette(n, percent, alpha, 0);
  auto lists = pcore::assign_random_lists(n, palette, seed, 0);
  auto conflict = pcore::build_conflict_graph(
      oracle, active, lists, palette.palette_size, pcore::ConflictKernel::Indexed);
  return {std::move(conflict.graph), std::move(lists)};
}

}  // namespace

class ListColoringSweep
    : public ::testing::TestWithParam<
          std::tuple<pcore::ConflictColoringScheme, std::uint64_t>> {};

TEST_P(ListColoringSweep, SatisfiesAllInvariants) {
  const auto [scheme, seed] = GetParam();
  auto [gc, lists] = make_fixture(250, 0.5, 10.0, 2.0, seed);
  picasso::util::Xoshiro256 rng(seed);
  const auto result = pcore::color_conflict_graph(gc, lists, scheme, rng);
  expect_valid_list_coloring(gc, lists, result);
  EXPECT_GT(result.num_colored, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, ListColoringSweep,
    ::testing::Combine(
        ::testing::Values(pcore::ConflictColoringScheme::DynamicBucket,
                          pcore::ConflictColoringScheme::DynamicHeap,
                          pcore::ConflictColoringScheme::StaticNatural,
                          pcore::ConflictColoringScheme::StaticRandom,
                          pcore::ConflictColoringScheme::StaticLargestFirst),
        ::testing::Values(1u, 7u, 23u)));

TEST(ListColoring, EveryVertexColoredWhenListsExceedDegree) {
  // Each colored neighbor removes at most one color from a list, so a list
  // longer than the conflict degree can never be exhausted: V_u is empty.
  auto [gc, lists] = make_fixture(100, 0.01, 60.0, 4.5, 3);
  std::uint32_t max_deg = 0;
  for (std::uint32_t v = 0; v < gc.num_vertices(); ++v) {
    max_deg = std::max(max_deg, static_cast<std::uint32_t>(gc.degree(v)));
  }
  if (lists.list_size() > max_deg) {
    picasso::util::Xoshiro256 rng(3);
    const auto result = pcore::color_conflict_graph_dynamic(gc, lists, rng);
    EXPECT_TRUE(result.uncolored.empty());
    EXPECT_EQ(result.num_colored, gc.num_vertices());
  } else {
    GTEST_SKIP() << "fixture did not produce L > max degree";
  }
}

TEST(ListColoring, IsolatedVerticesAlwaysColored) {
  // A conflict graph with no edges = all vertices unconflicted (Line 8 of
  // Algorithm 1): everyone gets a color from their list.
  const auto gc = pg::CsrGraph::from_edges(20, {});
  const pcore::IterationPalette palette{10, 3, 0};
  const auto lists = pcore::assign_random_lists(20, palette, 5, 0);
  picasso::util::Xoshiro256 rng(5);
  const auto result = pcore::color_conflict_graph_dynamic(gc, lists, rng);
  EXPECT_EQ(result.num_colored, 20u);
  EXPECT_TRUE(result.uncolored.empty());
  for (std::uint32_t v = 0; v < 20; ++v) {
    const auto list = lists.list(v);
    EXPECT_NE(std::find(list.begin(), list.end(), result.assigned[v]),
              list.end());
  }
}

TEST(ListColoring, EmptyGraph) {
  const pg::CsrGraph gc;
  const pcore::ColorLists lists(0, 3);
  picasso::util::Xoshiro256 rng(1);
  const auto result = pcore::color_conflict_graph_dynamic(gc, lists, rng);
  EXPECT_EQ(result.num_colored, 0u);
  EXPECT_TRUE(result.uncolored.empty());
}

TEST(ListColoring, SingleSharedColorForcesUncolored) {
  // Two adjacent vertices with identical singleton lists: one must end up
  // in V_u — the retry mechanism of Algorithm 1.
  const auto gc = pg::CsrGraph::from_edges(2, {{0, 1}});
  pcore::ColorLists lists(2, 1);
  lists.mutable_list(0)[0] = 0;
  lists.mutable_list(1)[0] = 0;
  picasso::util::Xoshiro256 rng(2);
  const auto result = pcore::color_conflict_graph_dynamic(gc, lists, rng);
  EXPECT_EQ(result.num_colored, 1u);
  ASSERT_EQ(result.uncolored.size(), 1u);
}

TEST(ListColoring, DynamicIsDeterministicGivenRngState) {
  auto [gc, lists] = make_fixture(120, 0.5, 8.0, 2.0, 9);
  picasso::util::Xoshiro256 rng_a(42), rng_b(42);
  const auto a = pcore::color_conflict_graph_dynamic(gc, lists, rng_a);
  const auto b = pcore::color_conflict_graph_dynamic(gc, lists, rng_b);
  EXPECT_EQ(a.assigned, b.assigned);
  EXPECT_EQ(a.uncolored, b.uncolored);
}

TEST(ListColoring, BucketAndHeapColorSimilarCounts) {
  // Same policy, different priority structure: the two dynamic variants
  // should color statistically similar numbers of vertices.
  auto [gc, lists] = make_fixture(300, 0.6, 6.0, 2.0, 11);
  picasso::util::Xoshiro256 rng_a(1), rng_b(1);
  const auto bucket = pcore::color_conflict_graph_dynamic(gc, lists, rng_a);
  const auto heap = pcore::color_conflict_graph_heap(gc, lists, rng_b);
  const double ratio = static_cast<double>(bucket.num_colored + 1) /
                       static_cast<double>(heap.num_colored + 1);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(ListColoring, StaticSchemesRejectDynamicEnum) {
  auto [gc, lists] = make_fixture(30, 0.5, 20.0, 2.0, 2);
  EXPECT_THROW(pcore::color_conflict_graph_static(
                   gc, lists, pcore::ConflictColoringScheme::DynamicBucket, 1),
               std::invalid_argument);
}

TEST(ListColoring, SchemeNames) {
  EXPECT_STREQ(pcore::to_string(pcore::ConflictColoringScheme::DynamicBucket),
               "dynamic-bucket");
  EXPECT_STREQ(pcore::to_string(pcore::ConflictColoringScheme::StaticLargestFirst),
               "static-LF");
}

TEST(ListColoring, ReportsAuxBytes) {
  auto [gc, lists] = make_fixture(100, 0.4, 10.0, 2.0, 6);
  picasso::util::Xoshiro256 rng(6);
  const auto result = pcore::color_conflict_graph_dynamic(gc, lists, rng);
  EXPECT_GT(result.aux_peak_bytes, 0u);
}
