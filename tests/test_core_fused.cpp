// The edge-free fused coloring engine (core/solve_fused.hpp): bit-identity
// with the materialized engines across schemes, backends, kernels and
// thread counts; no ConflictCsr charge ever; the streaming variant agrees
// under arbitrary chunkings and budgets; the CSR projection behind the
// session planner behaves sanely.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/picasso.hpp"
#include "core/solve_fused.hpp"
#include "core/streaming.hpp"
#include "graph/graph_gen.hpp"
#include "graph/oracles.hpp"
#include "pauli/pauli_set.hpp"
#include "pauli/pauli_stream.hpp"
#include "util/rng.hpp"

namespace pcore = picasso::core;
namespace pg = picasso::graph;
namespace pp = picasso::pauli;
namespace pu = picasso::util;

namespace {

pp::PauliSet random_set(std::size_t n, std::size_t qubits,
                        pu::Xoshiro256& rng) {
  std::vector<pp::PauliString> strings;
  strings.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(std::move(s));
  }
  return pp::PauliSet(strings);
}

constexpr pcore::ConflictColoringScheme kAllSchemes[] = {
    pcore::ConflictColoringScheme::DynamicBucket,
    pcore::ConflictColoringScheme::DynamicHeap,
    pcore::ConflictColoringScheme::StaticNatural,
    pcore::ConflictColoringScheme::StaticRandom,
    pcore::ConflictColoringScheme::StaticLargestFirst,
};

}  // namespace

// Every coloring scheme, both palette regimes: the fused engine must land
// on the exact coloring of the materialized pipeline — that is the whole
// contract that lets it replace the CSR path.
TEST(FusedEngine, BitIdenticalToMaterializedAcrossSchemes) {
  pu::Xoshiro256 rng(0xf05edull);
  for (int c = 0; c < 8; ++c) {
    const std::size_t n = 40 + rng.bounded(120);
    const std::size_t qubits = 2 + rng.bounded(48);
    const auto set = random_set(n, qubits, rng);
    for (const auto scheme : kAllSchemes) {
      pcore::PicassoParams params;
      params.palette_percent = c % 2 == 0 ? 12.5 : 3.0;
      params.alpha = c % 2 == 0 ? 2.0 : 30.0;
      params.seed = rng();
      params.conflict_scheme = scheme;
      const std::string key = "case " + std::to_string(c) + " scheme=" +
                              pcore::to_string(scheme) + " n=" +
                              std::to_string(n) + " seed=" +
                              std::to_string(params.seed);

      const auto ref = pcore::solve_pauli(set, params);
      const auto fused = pcore::solve_pauli_fused(set, params);
      ASSERT_EQ(fused.colors, ref.colors) << key;
      ASSERT_EQ(fused.num_colors, ref.num_colors) << key;
      ASSERT_EQ(fused.iterations.size(), ref.iterations.size()) << key;
      // Static schemes enumerate every conflict neighbor, so their fused
      // edge counts are exactly the materialized |Ec| per iteration.
      if (scheme != pcore::ConflictColoringScheme::DynamicBucket &&
          scheme != pcore::ConflictColoringScheme::DynamicHeap) {
        for (std::size_t i = 0; i < fused.iterations.size(); ++i) {
          ASSERT_EQ(fused.iterations[i].conflict_edges,
                    ref.iterations[i].conflict_edges)
              << key << " iteration " << i;
        }
      }
    }
  }
}

// Backend independence: all Pauli backends drive the same relation, so the
// fused colorings are identical across them (and to the materialized path).
TEST(FusedEngine, BitIdenticalAcrossPauliBackends) {
  pu::Xoshiro256 rng(0xfab5ull);
  for (int c = 0; c < 6; ++c) {
    const std::size_t n = 50 + rng.bounded(150);
    const std::size_t qubits = 1 + rng.bounded(70);
    const auto set = random_set(n, qubits, rng);
    pcore::PicassoParams params;
    params.seed = rng();

    params.pauli_backend = pcore::PauliBackend::Scalar;
    const auto ref = pcore::solve_pauli(set, params);
    for (const auto backend :
         {pcore::PauliBackend::Scalar, pcore::PauliBackend::Packed,
          pcore::PauliBackend::PackedScalar}) {
      params.pauli_backend = backend;
      const auto fused = pcore::solve_pauli_fused(set, params);
      ASSERT_EQ(fused.colors, ref.colors)
          << "case " << c << " backend=" << pcore::to_string(backend);
    }
  }
}

// Thread-count invariance: the hit arrays are position-indexed, so the
// fused coloring cannot depend on which worker answered which slab.
TEST(FusedEngine, BitIdenticalAcrossThreadCounts) {
  pu::Xoshiro256 rng(0x7123ull);
  const auto set = random_set(400, 20, rng);
  pcore::PicassoParams params;
  params.seed = 99;
  params.runtime.num_threads = 1;
  params.runtime.serial_cutoff = 0;
  const auto serial = pcore::solve_pauli_fused(set, params);
  for (const std::uint32_t threads : {2u, 4u}) {
    params.runtime.num_threads = threads;
    const auto parallel = pcore::solve_pauli_fused(set, params);
    ASSERT_EQ(parallel.colors, serial.colors) << "threads=" << threads;
  }
}

// Generic graphs through explicit oracles (what Strategy::Fused runs for
// Csr/Dense problems).
TEST(FusedEngine, BitIdenticalOnExplicitGraphs) {
  pu::Xoshiro256 rng(0x9a9aull);
  for (int c = 0; c < 6; ++c) {
    const auto n = static_cast<pg::VertexId>(60 + rng.bounded(240));
    const auto g = pg::rmat(n, n * (2 + rng.bounded(6)), 0.57, 0.19, 0.19,
                            rng());
    pcore::PicassoParams params;
    params.seed = rng();
    const pg::CsrOracle oracle(g);
    const auto ref = pcore::solve_oracle(oracle, params);
    const auto fused = pcore::solve_fused(oracle, params);
    ASSERT_EQ(fused.colors, ref.colors) << "case " << c;
  }
}

// The memory contract of the whole PR: a fused run never charges a byte to
// ConflictCsr, tracks its index under FusedFrontier instead, and its total
// tracked peak undercuts the materialized run's.
TEST(FusedEngine, NeverChargesConflictCsr) {
  pu::Xoshiro256 rng(0xbeefull);
  const auto set = random_set(500, 24, rng);
  pcore::PicassoParams params;
  params.seed = 7;
  params.runtime.num_threads = 1;

  const auto materialized = pcore::solve_pauli(set, params);
  const auto fused = pcore::solve_pauli_fused(set, params);

  const auto sub = [](const pcore::PicassoResult& r, pu::MemSubsystem s) {
    return r.memory.subsystem_peak[static_cast<unsigned>(s)];
  };
  EXPECT_GT(sub(materialized, pu::MemSubsystem::ConflictCsr), 0u);
  EXPECT_EQ(sub(fused, pu::MemSubsystem::ConflictCsr), 0u);
  EXPECT_GT(sub(fused, pu::MemSubsystem::FusedFrontier), 0u);
  EXPECT_LT(fused.memory.peak_tracked_bytes,
            materialized.memory.peak_tracked_bytes);
  // Strikes visit a subset of the conflict edges the materialized engine
  // stores — never more.
  ASSERT_EQ(fused.iterations.size(), materialized.iterations.size());
  for (std::size_t i = 0; i < fused.iterations.size(); ++i) {
    EXPECT_LE(fused.iterations[i].conflict_edges,
              materialized.iterations[i].conflict_edges)
        << "iteration " << i;
  }
}

// Streaming variant: spilled + chunk-cached records, same coloring as the
// fully in-memory engines for every chunking/budget combination tried.
TEST(FusedEngine, ChunkedFusedMatchesInMemory) {
  pu::Xoshiro256 rng(0x5111ull);
  const auto dir =
      std::filesystem::temp_directory_path() / "picasso_fused_chunked";
  std::filesystem::create_directories(dir);
  for (int c = 0; c < 8; ++c) {
    const std::size_t n = 60 + rng.bounded(200);
    const std::size_t qubits = 4 + rng.bounded(40);
    const auto set = random_set(n, qubits, rng);
    pcore::PicassoParams params;
    params.seed = rng();
    params.pauli_backend = rng.bounded(2) == 0 ? pcore::PauliBackend::Scalar
                                               : pcore::PauliBackend::Packed;
    const auto ref = pcore::solve_pauli(set, params);

    const auto path = (dir / ("case_" + std::to_string(c) + ".pset")).string();
    pp::spill_pauli_set(set, path);
    const std::size_t chunk = 1 + rng.bounded(n);
    const pp::ChunkedPauliReader reader(path, chunk);
    switch (rng.bounded(3)) {
      case 0: params.memory_budget_bytes = 4 << 10; break;
      case 1: params.memory_budget_bytes = 1 << 20; break;
      default: params.memory_budget_bytes = 0; break;
    }
    const auto fused = pcore::solve_pauli_chunked_fused(reader, params);
    ASSERT_EQ(fused.colors, ref.colors)
        << "case " << c << " chunk=" << chunk
        << " budget=" << params.memory_budget_bytes
        << " backend=" << pcore::to_string(params.pauli_backend);
    ASSERT_TRUE(fused.memory.streamed);
    EXPECT_EQ(fused.memory.subsystem_peak[static_cast<unsigned>(
                  pu::MemSubsystem::ConflictCsr)],
              0u);
  }
  std::filesystem::remove_all(dir);
}

// Budgeted wrapper: falls back to in-memory fused when nothing forces a
// spill; streams (and still agrees) when the budget does.
TEST(FusedEngine, BudgetedFusedHonorsTheGate) {
  pu::Xoshiro256 rng(0xcafe5ull);
  const auto set = random_set(200, 16, rng);
  pcore::PicassoParams params;
  params.seed = 3;
  const auto ref = pcore::solve_pauli(set, params);

  pcore::StreamingOptions options;
  options.spill_dir =
      (std::filesystem::temp_directory_path() / "picasso_fused_budget")
          .string();

  const auto in_memory = pcore::solve_pauli_budgeted_fused(set, params, options);
  EXPECT_FALSE(in_memory.memory.streamed);
  EXPECT_EQ(in_memory.colors, ref.colors);

  params.memory_budget_bytes = set.logical_bytes();  // < 2x input => spill
  const auto streamed = pcore::solve_pauli_budgeted_fused(set, params, options);
  EXPECT_TRUE(streamed.memory.streamed);
  EXPECT_EQ(streamed.colors, ref.colors);
  std::filesystem::remove_all(options.spill_dir);
}

// The planner's projection: zero for degenerate inputs, grows with n, and
// dominates the real measured assembly charge only by bounded factors on a
// dense complement (sanity, not a tight bound).
TEST(FusedEngine, ProjectedCsrBytesIsMonotoneAndPositive) {
  EXPECT_EQ(pcore::projected_conflict_csr_bytes(0, 12.5, 2.0), 0u);
  EXPECT_EQ(pcore::projected_conflict_csr_bytes(1, 12.5, 2.0), 0u);
  std::size_t prev = 0;
  for (const std::uint32_t n : {100u, 1000u, 10000u, 100000u}) {
    const std::size_t proj = pcore::projected_conflict_csr_bytes(n, 12.5, 2.0);
    EXPECT_GT(proj, prev) << "n=" << n;
    prev = proj;
  }
}
