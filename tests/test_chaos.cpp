// Chaos harness for the fault-tolerant solve pipeline: every entry in the
// failpoint matrix must end in a structured error or a bit-identical
// recovered solve — never a hang, crash, leak, or wrong coloring.
//
//   * failpoint framework semantics (spec grammar, counts, typed throws)
//   * ENOSPC during spill -> in-memory fallback, degraded + bit-identical
//   * torn/garbled spill files and color sidecars rejected on reopen
//   * delay injection changes nothing but wall-clock
//   * injected admission failure (memory.charge) behaves like a full budget
//   * wire send/recv faults surface as WireError, never partial frames
//   * service level: idle-timeout reaping of stalled clients, deadlines
//     (queued and mid-solve), the Degrade admission ladder, retry hitting
//     the result cache, and the startup spill janitor

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "core/solve_fused.hpp"
#include "core/streaming.hpp"
#include "pauli/pauli_set.hpp"
#include "pauli/pauli_stream.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "util/failpoint.hpp"
#include "util/fnv.hpp"
#include "util/memory.hpp"
#include "util/packed_colors.hpp"
#include "util/rng.hpp"

namespace papi = picasso::api;
namespace pp = picasso::pauli;
namespace psvc = picasso::service;
namespace pfp = picasso::util::failpoints;
namespace fs = std::filesystem;

using picasso::util::InjectedFault;

namespace {

pp::PauliSet random_set(std::size_t count, std::size_t qubits,
                        std::uint64_t seed) {
  picasso::util::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  for (std::size_t i = 0; i < count; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(s);
  }
  return pp::PauliSet(strings);
}

/// Forks a child that exits immediately and reaps it: a pid guaranteed
/// dead, for janitor tests.
pid_t dead_pid() {
  const pid_t pid = ::fork();
  if (pid == 0) ::_exit(0);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return pid;
}

void corrupt_byte(const fs::path& path, std::size_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x5a;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pfp::disarm_all();
    root_ = fs::temp_directory_path() /
            ("picasso_chaos_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(root_);
  }

  void TearDown() override {
    // An armed failpoint must never outlive its test.
    pfp::disarm_all();
    fs::remove_all(root_);
  }

  std::size_t spill_files(const fs::path& dir) const {
    std::size_t count = 0;
    if (!fs::exists(dir)) return 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() == ".pset") ++count;
    }
    return count;
  }

  fs::path root_;
};

}  // namespace

// --- Failpoint framework ----------------------------------------------------

TEST_F(ChaosTest, SpecGrammarParsesAndMalformedArmsNothing) {
  EXPECT_FALSE(pfp::any_armed());
  ASSERT_TRUE(pfp::arm_from_spec(
      "a.site=error;b.site=delay:5@2;c.site=short:3;d.site=enospc"));
  EXPECT_EQ(pfp::armed_count(), 4u);
  EXPECT_TRUE(pfp::any_armed());
  pfp::disarm_all();
  EXPECT_FALSE(pfp::any_armed());

  // Malformed specs arm nothing at all (no partial activation).
  EXPECT_FALSE(pfp::arm_from_spec("a.site=error;b.site=wat"));
  EXPECT_EQ(pfp::armed_count(), 0u);
  EXPECT_FALSE(pfp::any_armed());
}

TEST_F(ChaosTest, ErrorAndEnospcThrowTypedAndCountsDisarm) {
  pfp::arm("chaos.err", {pfp::Mode::Error, 0, 2});
  for (int i = 0; i < 2; ++i) {
    try {
      PICASSO_FAILPOINT("chaos.err");
      FAIL() << "failpoint did not fire";
    } catch (const InjectedFault& fault) {
      EXPECT_EQ(fault.site(), "chaos.err");
    }
  }
  // Count exhausted: the site is disarmed and the fast path is restored.
  PICASSO_FAILPOINT("chaos.err");
  EXPECT_FALSE(pfp::any_armed());

  pfp::arm("chaos.enospc", {pfp::Mode::Enospc, 0, -1});
  try {
    PICASSO_FAILPOINT("chaos.enospc");
    FAIL() << "failpoint did not fire";
  } catch (const std::system_error& error) {
    EXPECT_EQ(error.code().value(), ENOSPC);
  }
}

TEST_F(ChaosTest, ShortIoClampsOnlyItsSite) {
  pfp::arm("chaos.io", {pfp::Mode::ShortIo, 10, -1});
  EXPECT_EQ(PICASSO_FAILPOINT_CLAMP("chaos.io", std::size_t{100}), 10u);
  EXPECT_EQ(PICASSO_FAILPOINT_CLAMP("chaos.io", std::size_t{4}), 4u);
  EXPECT_EQ(PICASSO_FAILPOINT_CLAMP("chaos.other", std::size_t{100}), 100u);
}

TEST_F(ChaosTest, MemoryChargeFailpointActsLikeFullBudget) {
  picasso::util::MemoryRegistry registry;
  EXPECT_TRUE(
      registry.try_charge(picasso::util::MemSubsystem::ChunkCache, 64));
  registry.release(picasso::util::MemSubsystem::ChunkCache, 64);

  pfp::arm("memory.charge", {pfp::Mode::Error, 0, 1});
  EXPECT_FALSE(
      registry.try_charge(picasso::util::MemSubsystem::ChunkCache, 64));
  // Count 1 consumed: charges work again and nothing was leaked onto the
  // ledger by the refused charge.
  EXPECT_TRUE(
      registry.try_charge(picasso::util::MemSubsystem::ChunkCache, 64));
  registry.release(picasso::util::MemSubsystem::ChunkCache, 64);
  EXPECT_EQ(registry.current_bytes(), 0u);
}

// --- Crash-safe spill I/O ---------------------------------------------------

TEST_F(ChaosTest, EnospcSpillFallsBackToInMemoryBitIdentical) {
  const pp::PauliSet set = random_set(600, 16, 11);
  const fs::path spill_dir = root_ / "spill";
  fs::create_directories(spill_dir);

  const auto reference = papi::SessionBuilder().seed(7).build().solve(
      papi::Problem::pauli(set));

  auto budgeted_session = [&] {
    return papi::SessionBuilder()
        .seed(7)
        .strategy(papi::ExecutionStrategy::BudgetedStreaming)
        .memory_budget(set.logical_bytes())
        .spill_dir(spill_dir.string())
        .build();
  };

  // Healthy spill path first: streamed solve matches in-memory, undegraded.
  const auto streamed =
      budgeted_session().solve(papi::Problem::pauli(set));
  EXPECT_FALSE(streamed.result.degraded);
  EXPECT_EQ(streamed.result.colors, reference.result.colors);

  // Device full at spill time: the solve must complete in memory, flagged
  // degraded, still bit-identical, and leave no partial spill behind.
  pfp::arm("spill.write", {pfp::Mode::Enospc, 0, -1});
  const auto recovered =
      budgeted_session().solve(papi::Problem::pauli(set));
  pfp::disarm_all();
  EXPECT_TRUE(recovered.result.degraded);
  EXPECT_NE(recovered.result.degraded_reason.find("ENOSPC"),
            std::string::npos)
      << recovered.result.degraded_reason;
  EXPECT_EQ(recovered.result.colors, reference.result.colors);
  EXPECT_EQ(spill_files(spill_dir), 0u) << "partial spill leaked";
}

TEST_F(ChaosTest, GarbledSpillIsRejectedOnReopen) {
  const pp::PauliSet set = random_set(200, 12, 12);
  const fs::path path = root_ / "garbled.pset";
  const std::size_t bytes = pp::spill_pauli_set(set, path.string());

  // Intact file round-trips.
  {
    pp::ChunkedPauliReader reader(path.string(), 64);
    EXPECT_EQ(reader.num_strings(), set.size());
  }

  // Flip one byte in the middle of the payload: the checksum trailer must
  // reject the file instead of serving corrupt strings.
  corrupt_byte(path, bytes / 2);
  try {
    pp::ChunkedPauliReader reader(path.string(), 64);
    FAIL() << "garbled spill accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("checksum"), std::string::npos)
        << error.what();
  }
}

TEST_F(ChaosTest, TornSpillTailIsRejectedOnReopen) {
  const pp::PauliSet set = random_set(200, 12, 13);
  const fs::path path = root_ / "torn.pset";

  // A short-write failpoint leaves exactly the torn state a crash
  // mid-spill would: truncated packed tail, no trailer.
  pfp::arm("spill.write", {pfp::Mode::ShortIo, 64, 1});
  pp::spill_pauli_set(set, path.string());
  pfp::disarm_all();
  EXPECT_THROW(pp::ChunkedPauliReader(path.string(), 64),
               std::runtime_error);
}

TEST_F(ChaosTest, TornAppendSegmentIsRejectedOnReopen) {
  const pp::PauliSet base = random_set(150, 12, 14);
  const pp::PauliSet delta = random_set(70, 12, 15);
  const fs::path path = root_ / "append.pset";
  pp::spill_pauli_set(base, path.string());

  // Healthy append chains and reopens.
  pp::append_pauli_set(delta, path.string());
  {
    pp::ChunkedPauliReader reader(path.string(), 64);
    EXPECT_EQ(reader.num_strings(), base.size() + delta.size());
  }

  // Torn append segment on a fresh file: reopen must reject.
  const fs::path torn = root_ / "append_torn.pset";
  pp::spill_pauli_set(base, torn.string());
  pfp::arm("spill.append", {pfp::Mode::ShortIo, 32, 1});
  pp::append_pauli_set(delta, torn.string());
  pfp::disarm_all();
  EXPECT_THROW(pp::ChunkedPauliReader(torn.string(), 64),
               std::runtime_error);
}

TEST_F(ChaosTest, GarbledColorSidecarIsRejected) {
  picasso::util::PackedColorArray colors(
      300, picasso::util::PackedColorArray::kNoColor, 200);
  for (std::size_t i = 0; i < 300; ++i) colors.set(i, i % 200);
  const fs::path path = root_ / "spill.pset.colors";
  pp::write_spill_colors(path.string(), colors);

  const auto loaded = pp::read_spill_colors(path.string());
  ASSERT_EQ(loaded.size(), colors.size());
  for (std::size_t i = 0; i < 300; ++i) EXPECT_EQ(loaded.get(i), i % 200);

  corrupt_byte(path, fs::file_size(path) / 2);
  try {
    pp::read_spill_colors(path.string());
    FAIL() << "garbled sidecar accepted";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("checksum"), std::string::npos)
        << error.what();
  }
}

TEST_F(ChaosTest, DelayFailpointOnlyDelays) {
  const pp::PauliSet set = random_set(300, 14, 16);
  const fs::path spill_dir = root_ / "spill";
  fs::create_directories(spill_dir);

  const auto reference = papi::SessionBuilder().seed(3).build().solve(
      papi::Problem::pauli(set));

  pfp::arm("spill.read", {pfp::Mode::Delay, 5, 3});
  const auto delayed = papi::SessionBuilder()
                           .seed(3)
                           .strategy(papi::ExecutionStrategy::BudgetedStreaming)
                           .memory_budget(set.logical_bytes())
                           .spill_dir(spill_dir.string())
                           .build()
                           .solve(papi::Problem::pauli(set));
  EXPECT_FALSE(delayed.result.degraded);
  EXPECT_EQ(delayed.result.colors, reference.result.colors);
}

// --- Spill janitor ----------------------------------------------------------

TEST_F(ChaosTest, JanitorSweepsDeadPidSpillsAndKeepsLiveOnes) {
  const fs::path dir = root_ / "janitor";
  fs::create_directories(dir);
  const pid_t dead = dead_pid();
  const pid_t live = ::getpid();

  auto touch = [&](const std::string& name) {
    std::ofstream(dir / name) << "x";
  };
  touch("picasso_chaos_" + std::to_string(dead) + "_1.pset");
  touch("picasso_chaos_" + std::to_string(dead) + "_1.pset.colors");
  touch("picasso_chaos_" + std::to_string(live) + "_2.pset");
  touch("unrelated.pset");  // not ours: no pid field, left alone

  const std::size_t swept = picasso::core::sweep_orphan_spills(dir.string());
  EXPECT_EQ(swept, 2u);
  EXPECT_FALSE(
      fs::exists(dir / ("picasso_chaos_" + std::to_string(dead) + "_1.pset")));
  EXPECT_FALSE(fs::exists(
      dir / ("picasso_chaos_" + std::to_string(dead) + "_1.pset.colors")));
  EXPECT_TRUE(
      fs::exists(dir / ("picasso_chaos_" + std::to_string(live) + "_2.pset")));
  EXPECT_TRUE(fs::exists(dir / "unrelated.pset"));
}

// --- Service-level chaos ----------------------------------------------------

namespace {

class ChaosServiceTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    fs::create_directories(root_ / "spill");
    config_.listen = "unix:" + (root_ / "sock").string();
    config_.spill_dir = (root_ / "spill").string();
    config_.num_threads = 2;
  }

  void TearDown() override {
    server_.stop();
    ChaosTest::TearDown();
  }

  void start_server() {
    server_.start(config_);
    ASSERT_TRUE(server_.running());
  }

  template <typename Pred>
  bool wait_for_stats(Pred pred, std::chrono::milliseconds deadline =
                                     std::chrono::seconds(30)) {
    auto probe = psvc::Client::connect(server_.address());
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      if (pred(probe.stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  psvc::ServerConfig config_;
  psvc::Server server_;
};

}  // namespace

TEST_F(ChaosServiceTest, StalledClientIsReapedAndServiceStaysLive) {
  config_.idle_timeout_ms = 150;
  start_server();

  // A client that connects and then says nothing: reaped by the idle
  // timeout instead of pinning a reader thread forever.
  auto stalled = psvc::Connection::connect(server_.address());

  // Meanwhile real work flows normally.
  auto client = psvc::Client::connect(server_.address());
  const pp::PauliSet set = random_set(80, 10, 20);
  const psvc::RemoteResult outcome = client.solve(set, psvc::RemoteParams{});
  ASSERT_TRUE(outcome.ok) << outcome.error_message;

  ASSERT_TRUE(wait_for_stats(
      [](const psvc::StatsMsg& s) { return s.idle_disconnects >= 1; }));

  // The server closed its side: the stalled socket sees EOF (or a reset),
  // never a hang.
  psvc::Frame frame;
  try {
    EXPECT_FALSE(stalled.read_frame(frame));
  } catch (const psvc::WireError&) {
    // ECONNRESET is an equally acceptable goodbye.
  }
}

TEST_F(ChaosServiceTest, DeadlineExceededMidSolveIsStructured) {
  start_server();

  const pp::PauliSet set = random_set(2000, 24, 21);
  psvc::RemoteParams params;
  params.max_iterations = 5000;
  params.palette_percent = 0.5;  // slow convergence: many iterations
  params.alpha = 1.05;
  params.deadline_ms = 50;

  auto client = psvc::Client::connect(server_.address());
  const psvc::RemoteResult outcome = client.solve(set, params);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error_code, psvc::ServiceErrorCode::DeadlineExceeded);
  EXPECT_NE(outcome.error_message.find("deadline"), std::string::npos)
      << outcome.error_message;

  ASSERT_TRUE(wait_for_stats([](const psvc::StatsMsg& s) {
    return s.deadline_exceeded == 1 && s.active == 0;
  }));
  // The aborted budgeted solve may not leave spill files behind.
  EXPECT_EQ(spill_files(root_ / "spill"), 0u);
}

TEST_F(ChaosServiceTest, DeadlineSpentInQueueAnswersWithoutSolving) {
  config_.max_active_solves = 1;
  start_server();

  // Occupy the only slot with a long solve, then queue a request whose
  // deadline expires while it waits.
  const pp::PauliSet blocker_set = random_set(2000, 24, 22);
  psvc::RemoteParams blocker_params;
  blocker_params.want_progress = true;
  blocker_params.max_iterations = 5000;
  blocker_params.palette_percent = 0.5;
  blocker_params.alpha = 1.05;

  std::atomic<bool> release{false};
  auto blocker_client = psvc::Client::connect(server_.address());
  std::thread blocker([&] {
    blocker_client.solve(blocker_set, blocker_params, "a", 0,
                         [&](const psvc::ProgressMsg&) {
                           if (release.load(std::memory_order_acquire)) {
                             blocker_client.request_cancel();
                           }
                         });
  });
  ASSERT_TRUE(wait_for_stats(
      [](const psvc::StatsMsg& s) { return s.active == 1; }));

  psvc::RemoteParams doomed;
  doomed.deadline_ms = 30;
  std::thread waiter([&] {
    auto client = psvc::Client::connect(server_.address());
    const pp::PauliSet set = random_set(80, 10, 23);
    const psvc::RemoteResult outcome = client.solve(set, doomed);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.error_code, psvc::ServiceErrorCode::DeadlineExceeded);
    EXPECT_NE(outcome.error_message.find("queued"), std::string::npos)
        << outcome.error_message;
  });
  ASSERT_TRUE(wait_for_stats(
      [](const psvc::StatsMsg& s) { return s.queued >= 1; }));

  // Hold the slot comfortably past the queued request's deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  release.store(true, std::memory_order_release);
  blocker.join();
  waiter.join();
}

TEST_F(ChaosServiceTest, DegradeAdmissionWalksLadderAndReportsIt) {
  const pp::PauliSet set = random_set(3000, 24, 24);
  const std::size_t input = set.logical_bytes();
  // Frontier floor the server charges non-materializing plans (matches
  // kFusedBytesPerVertex in server.cpp).
  const std::size_t fused_projection = input + set.size() * 64;
  const picasso::core::PicassoParams base;
  const std::size_t csr_projection =
      input + picasso::core::projected_conflict_csr_bytes(
                  static_cast<std::uint32_t>(set.size()),
                  base.palette_percent, base.alpha);
  // Premise: the budget admits a fused plan but not a materializing one.
  config_.memory_budget_bytes = fused_projection + 4096;
  ASSERT_GT(csr_projection, config_.memory_budget_bytes);
  config_.admission = psvc::AdmissionPolicy::Degrade;
  start_server();

  const psvc::RemoteParams params;
  const auto reference = papi::SessionBuilder()
                             .palette(params.palette_percent, params.alpha)
                             .seed(params.seed)
                             .max_iterations(params.max_iterations)
                             .build()
                             .solve(papi::Problem::pauli(set));

  auto client = psvc::Client::connect(server_.address());
  const psvc::RemoteResult outcome = client.solve(set, params);
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_TRUE(outcome.result.degraded);
  EXPECT_NE(outcome.result.degraded_reason.find("degraded"),
            std::string::npos)
      << outcome.result.degraded_reason;
  // The downgraded plan still returns the bit-identical coloring.
  EXPECT_EQ(outcome.result.colors, reference.result.colors);
  EXPECT_EQ(outcome.result.coloring_hash,
            picasso::util::coloring_fingerprint(reference.result.colors));

  const psvc::StatsMsg stats = client.stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.rejected_over_budget, 0u);
}

TEST_F(ChaosServiceTest, RetryAfterTransportFaultHitsCacheIdenticalHash) {
  start_server();
  const pp::PauliSet set = random_set(200, 14, 25);
  const psvc::RemoteParams params;

  // Prime the cache with a clean solve.
  std::uint64_t first_hash = 0;
  {
    auto client = psvc::Client::connect(server_.address());
    const psvc::RemoteResult first = client.solve(set, params);
    ASSERT_TRUE(first.ok) << first.error_message;
    first_hash = first.result.coloring_hash;
  }

  // One injected send fault: the first attempt's request frame dies on the
  // wire; the retry reconnects and is answered from the result cache with
  // the identical coloring hash — the idempotency contract.
  psvc::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 5;
  pfp::arm("wire.send", {pfp::Mode::Error, 0, 1});
  const psvc::RemoteResult retried =
      psvc::solve_with_retry(server_.address(), set, params, policy);
  pfp::disarm_all();
  ASSERT_TRUE(retried.ok) << retried.error_message;
  EXPECT_EQ(retried.attempts, 2u);
  EXPECT_TRUE(retried.result.cache_hit);
  EXPECT_EQ(retried.result.coloring_hash, first_hash);
}

TEST_F(ChaosServiceTest, ServerStartupSweepsOrphanSpills) {
  const pid_t dead = dead_pid();
  auto touch = [&](const std::string& name) {
    std::ofstream((root_ / "spill") / name) << "x";
  };
  touch("picasso_boot_" + std::to_string(dead) + "_1.pset");
  touch("picasso_boot_" + std::to_string(dead) + "_1.pset.colors");
  start_server();

  auto client = psvc::Client::connect(server_.address());
  const psvc::StatsMsg stats = client.stats();
  EXPECT_EQ(stats.orphan_spills_swept, 2u);
  EXPECT_EQ(stats.spill_files_live, 0u);
}
