// The observability layer: deterministic work counters, phase-span tracing
// and the Session telemetry surface. The load-bearing contract is counter
// determinism — totals are a pure function of (problem, seed, params), so
// they must come out bit-identical across thread counts, across telemetry
// levels, and match closed-form work counts on hand-sized problems. Also
// covers: Off produces empty telemetry, the Chrome-trace export is valid
// JSON, fused BucketScanned progress events carry the running strike count
// (not zero), and the chunk-cache counters surface in MemoryReport.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "core/picasso.hpp"
#include "core/streaming.hpp"
#include "graph/csr_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace pcore = picasso::core;
namespace papi = picasso::api;
namespace pp = picasso::pauli;
namespace pg = picasso::graph;
namespace pobs = picasso::obs;
namespace pu = picasso::util;

namespace {

pp::PauliSet random_set(std::size_t n, std::size_t qubits,
                        std::uint64_t seed) {
  pu::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  strings.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(std::move(s));
  }
  return pp::PauliSet(strings);
}

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker — enough to prove the exported documents
// parse (balanced structure, legal literals); not a full validator.

class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    c.skip_ws();
    if (!c.value()) return false;
    c.skip_ws();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Session helpers: one solve per (strategy, thread count, level). The tiny
// palette (P' under 1/n percent forces P_l = 1) makes every active pair a
// candidate, giving closed-form pair counts.

struct SolveSpec {
  papi::ExecutionStrategy strategy = papi::ExecutionStrategy::InMemory;
  unsigned threads = 1;
  pobs::TelemetryLevel level = pobs::TelemetryLevel::Counters;
  std::size_t chunk_strings = 0;  // forces streaming engines to chunk
  std::uint32_t devices = 0;      // multi-device shard count
};

papi::SolveReport solve_pauli_spec(const pp::PauliSet& set,
                                   const SolveSpec& spec) {
  pcore::PicassoParams params;
  params.seed = 7;
  params.runtime.num_threads = spec.threads;
  papi::SessionBuilder builder;
  builder.params(params).telemetry(spec.level).strategy(spec.strategy);
  if (spec.chunk_strings > 0) {
    pcore::StreamingOptions options;
    options.chunk_strings = spec.chunk_strings;
    builder.streaming(options);
  }
  if (spec.devices > 0) builder.devices(spec.devices, 64u << 20);
  return builder.build().solve(papi::Problem::pauli(set));
}

std::uint64_t sum_uncolored(const pcore::PicassoResult& r) {
  std::uint64_t total = 0;
  for (const auto& it : r.iterations) total += it.uncolored;
  return total;
}

std::uint64_t pairs_closed_form(const pcore::PicassoResult& r) {
  std::uint64_t total = 0;
  for (const auto& it : r.iterations) {
    const std::uint64_t n = it.n_active;
    total += n * (n - 1) / 2;
  }
  return total;
}

}  // namespace

// ---------------------------------------------------------------------------
// MetricsRegistry mechanics.

TEST(MetricsRegistry, DisabledAddsAreDropped) {
  pobs::MetricsRegistry registry;
  EXPECT_FALSE(registry.enabled());
  registry.add(pobs::Counter::OraclePairEvals, 42);
  EXPECT_TRUE(registry.totals().all_zero());

  registry.set_enabled(true);
  registry.add(pobs::Counter::OraclePairEvals, 42);
  registry.add(pobs::Counter::StrikeHits, 7);
  const pobs::CounterTotals totals = registry.totals();
  EXPECT_EQ(totals[pobs::Counter::OraclePairEvals], 42u);
  EXPECT_EQ(totals[pobs::Counter::StrikeHits], 7u);
  EXPECT_FALSE(totals.all_zero());

  registry.reset();
  EXPECT_TRUE(registry.totals().all_zero());
}

TEST(MetricsRegistry, SumsAcrossThreadShards) {
  pobs::MetricsRegistry registry;
  registry.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        registry.add(pobs::Counter::OraclePairEvals, 1);
      }
      registry.add(pobs::Counter::ChunkCacheHits, 3);
    });
  }
  for (auto& w : workers) w.join();
  const pobs::CounterTotals totals = registry.totals();
  EXPECT_EQ(totals[pobs::Counter::OraclePairEvals], kThreads * kPerThread);
  EXPECT_EQ(totals[pobs::Counter::ChunkCacheHits], 3u * kThreads);
}

TEST(MetricsRegistry, NestedRunScopesKeepTheOutermostWindow) {
  pobs::MetricsRegistry registry;
  {
    pobs::MetricsRunScope outer(true, registry);
    EXPECT_TRUE(outer.outermost());
    EXPECT_TRUE(registry.enabled());
    registry.add(pobs::Counter::RecolorEvents, 1);
    {
      // A nested scope (a shard solve inside a multi-device run) must not
      // reset or re-gate the outermost window.
      pobs::MetricsRunScope inner(false, registry);
      EXPECT_FALSE(inner.outermost());
      EXPECT_TRUE(registry.enabled());
      registry.add(pobs::Counter::RecolorEvents, 1);
    }
    EXPECT_EQ(registry.totals()[pobs::Counter::RecolorEvents], 2u);
  }
  EXPECT_FALSE(registry.enabled());  // restored to the pre-scope state
}

TEST(MetricsRegistry, CounterNamesAndDeterminism) {
  // Every counter has a distinct snake_case name (they key the CI gate's
  // JSON records) and only the ISA-split pair is non-deterministic.
  std::vector<std::string> names;
  for (unsigned c = 0; c < pobs::kNumCounters; ++c) {
    const auto counter = static_cast<pobs::Counter>(c);
    const std::string name = pobs::to_string(counter);
    EXPECT_FALSE(name.empty());
    for (const auto& prev : names) EXPECT_NE(prev, name);
    names.push_back(name);
    const bool isa_split = counter == pobs::Counter::EdgeBlockCallsAvx2 ||
                           counter == pobs::Counter::EdgeBlockCallsScalar;
    EXPECT_EQ(pobs::counter_is_deterministic(counter), !isa_split) << name;
  }
  EXPECT_TRUE(JsonChecker::valid(pobs::CounterTotals{}.to_json()));
}

// ---------------------------------------------------------------------------
// TraceRecorder mechanics and exports.

TEST(TraceRecorder, NestedSpansRecordDepthAndExportValidJson) {
  pobs::TraceRecorder recorder;
  {
    pobs::ScopedSpan root(&recorder, "solve_test");
    {
      pobs::ScopedSpan iter(&recorder, "iteration", 3);
      double sink = 0.0;
      { pobs::ScopedPhase phase(&recorder, "coloring", sink); }
      EXPECT_GE(sink, 0.0);
    }
  }
  const auto& spans = recorder.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "solve_test");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_STREQ(spans[1].name, "iteration");
  EXPECT_EQ(spans[1].arg, 3u);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].depth, 2);
  // Parents fully contain children.
  EXPECT_LE(spans[0].start_seconds, spans[1].start_seconds);
  EXPECT_GE(spans[0].duration_seconds, spans[1].duration_seconds);
  EXPECT_EQ(recorder.dropped(), 0u);

  const std::string chrome = pobs::TraceRecorder::chrome_trace_json(spans);
  EXPECT_TRUE(JsonChecker::valid(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("solve_test"), std::string::npos);

  const std::string lines = pobs::TraceRecorder::json_lines(spans);
  std::size_t begin = 0, parsed = 0;
  while (begin < lines.size()) {
    std::size_t end = lines.find('\n', begin);
    if (end == std::string::npos) end = lines.size();
    const std::string line = lines.substr(begin, end - begin);
    if (!line.empty()) {
      EXPECT_TRUE(JsonChecker::valid(line)) << line;
      ++parsed;
    }
    begin = end + 1;
  }
  EXPECT_EQ(parsed, spans.size());
}

TEST(TraceRecorder, NullRecorderScopesAreNoOps) {
  double sink = 0.0;
  {
    pobs::ScopedSpan span(nullptr, "nothing");
    pobs::ScopedPhase phase(nullptr, "nothing", sink);
  }
  EXPECT_GE(sink, 0.0);  // the seconds sink still accumulates
}

// ---------------------------------------------------------------------------
// Session telemetry surface.

TEST(SessionTelemetry, OffProducesEmptyTelemetry) {
  const auto set = random_set(64, 10, 5);
  SolveSpec spec;
  spec.level = pobs::TelemetryLevel::Off;
  const auto report = solve_pauli_spec(set, spec);
  EXPECT_FALSE(report.telemetry.enabled());
  EXPECT_TRUE(report.telemetry.counters.all_zero());
  EXPECT_TRUE(report.telemetry.spans.empty());
  EXPECT_EQ(report.telemetry.dropped_spans, 0u);
}

TEST(SessionTelemetry, CountersLevelSkipsSpansButFullMatchesItsTotals) {
  const auto set = random_set(96, 10, 11);
  SolveSpec counters_spec;
  counters_spec.level = pobs::TelemetryLevel::Counters;
  const auto counters_run = solve_pauli_spec(set, counters_spec);
  EXPECT_TRUE(counters_run.telemetry.enabled());
  EXPECT_FALSE(counters_run.telemetry.counters.all_zero());
  EXPECT_TRUE(counters_run.telemetry.spans.empty());

  SolveSpec full_spec;
  full_spec.level = pobs::TelemetryLevel::Full;
  const auto full_run = solve_pauli_spec(set, full_spec);
  EXPECT_FALSE(full_run.telemetry.spans.empty());
  // Tracing must not perturb the counted work.
  EXPECT_EQ(full_run.telemetry.counters.value,
            counters_run.telemetry.counters.value);
  // The root span names the engine; iterations appear beneath it.
  EXPECT_STREQ(full_run.telemetry.spans.front().name, "solve_oracle");
  bool saw_iteration = false;
  for (const auto& span : full_run.telemetry.spans) {
    if (std::string(span.name) == "iteration") saw_iteration = true;
  }
  EXPECT_TRUE(saw_iteration);

  EXPECT_TRUE(JsonChecker::valid(full_run.telemetry.to_json()));
  EXPECT_TRUE(JsonChecker::valid(full_run.telemetry.chrome_trace_json()));
}

TEST(SessionTelemetry, InMemoryPairEvalsMatchClosedForm) {
  // P_l = 1 (palette_percent ~ 0) puts every active vertex in one bucket:
  // each iteration must evaluate exactly C(n_active, 2) pairs, and every
  // conflicted vertex becomes a recolor event.
  const auto set = random_set(72, 8, 3);
  pcore::PicassoParams params;
  params.seed = 7;
  params.palette_percent = 1e-6;
  params.runtime.num_threads = 1;
  const auto report = papi::SessionBuilder()
                          .params(params)
                          .telemetry(pobs::TelemetryLevel::Counters)
                          .strategy(papi::ExecutionStrategy::InMemory)
                          .build()
                          .solve(papi::Problem::pauli(set));
  const auto& counters = report.telemetry.counters;
  EXPECT_EQ(counters[pobs::Counter::OraclePairEvals],
            pairs_closed_form(report.result));
  EXPECT_EQ(counters[pobs::Counter::RecolorEvents],
            sum_uncolored(report.result));
  // P=1 means every signature overlaps — the fast exit can never fire.
  EXPECT_EQ(counters[pobs::Counter::SignatureFastExits], 0u);
}

TEST(SessionTelemetry, EdgelessGraphColorsInOnePassWithExactPairCount) {
  constexpr std::uint32_t kN = 40;
  const auto graph = pg::CsrGraph::from_edges(kN, {});
  pcore::PicassoParams params;
  params.seed = 1;
  params.palette_percent = 1e-6;  // P_l = 1: all pairs are candidates
  params.runtime.num_threads = 1;
  const auto report = papi::SessionBuilder()
                          .params(params)
                          .telemetry(pobs::TelemetryLevel::Counters)
                          .strategy(papi::ExecutionStrategy::InMemory)
                          .build()
                          .solve(papi::Problem::csr(graph));
  ASSERT_EQ(report.result.iterations.size(), 1u);
  EXPECT_EQ(report.result.num_colors, 1u);
  const auto& counters = report.telemetry.counters;
  EXPECT_EQ(counters[pobs::Counter::OraclePairEvals], kN * (kN - 1) / 2);
  EXPECT_EQ(counters[pobs::Counter::RecolorEvents], 0u);
}

TEST(SessionTelemetry, SemiStreamingCountsEveryEdgeOncePerPass) {
  // A replayable edge stream is scanned once per iteration — the defining
  // cost of the semi-streaming model.
  constexpr std::uint32_t kN = 60;
  pu::Xoshiro256 rng(17);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < kN; ++u) {
    for (std::uint32_t v = u + 1; v < kN; ++v) {
      if (rng.bounded(4) == 0) edges.emplace_back(u, v);
    }
  }
  const pcore::VectorEdgeStream stream(edges);
  pcore::PicassoParams params;
  params.seed = 7;
  params.runtime.num_threads = 1;
  const auto report =
      papi::SessionBuilder()
          .params(params)
          .telemetry(pobs::TelemetryLevel::Counters)
          .strategy(papi::ExecutionStrategy::SemiStreaming)
          .build()
          .solve(papi::Problem::edge_stream(kN, stream));
  const auto& counters = report.telemetry.counters;
  EXPECT_EQ(counters[pobs::Counter::StreamEdgesScanned],
            edges.size() * report.result.iterations.size());
  EXPECT_EQ(counters[pobs::Counter::RecolorEvents],
            sum_uncolored(report.result));
}

TEST(SessionTelemetry, FusedStrikeHitsMatchIterationConflicts) {
  const auto set = random_set(80, 8, 23);
  SolveSpec spec;
  spec.strategy = papi::ExecutionStrategy::Fused;
  const auto report = solve_pauli_spec(set, spec);
  const auto& counters = report.telemetry.counters;
  std::uint64_t struck = 0;
  for (const auto& it : report.result.iterations) struck += it.conflict_edges;
  EXPECT_EQ(counters[pobs::Counter::StrikeHits], struck);
  EXPECT_GT(counters[pobs::Counter::BucketStrikeScans], 0u);
  EXPECT_EQ(counters[pobs::Counter::RecolorEvents],
            sum_uncolored(report.result));
}

TEST(SessionTelemetry, BudgetedStreamingSurfacesCacheAndSpillCounters) {
  // Satellite (b): the chunk cache's hit/miss/re-read tallies must agree
  // between the counter registry and MemoryReport, and show up in its JSON.
  const auto set = random_set(200, 12, 31);
  SolveSpec spec;
  spec.strategy = papi::ExecutionStrategy::BudgetedStreaming;
  spec.chunk_strings = 50;  // 4 chunks
  const auto report = solve_pauli_spec(set, spec);
  const auto& counters = report.telemetry.counters;
  const auto& memory = report.result.memory;
  EXPECT_TRUE(memory.streamed);
  EXPECT_EQ(memory.num_chunks, 4u);
  EXPECT_GT(counters[pobs::Counter::SpillBytesWritten], 0u);
  EXPECT_GT(counters[pobs::Counter::SpillBytesRead], 0u);
  EXPECT_GT(counters[pobs::Counter::ChunkCacheMisses], 0u);
  EXPECT_EQ(counters[pobs::Counter::ChunkCacheHits], memory.cache_hits);
  EXPECT_EQ(counters[pobs::Counter::ChunkCacheMisses], memory.cache_misses);
  EXPECT_EQ(counters[pobs::Counter::ChunkReReads], memory.chunk_re_reads);
  EXPECT_GE(memory.cache_misses, static_cast<std::uint64_t>(memory.num_chunks));
  const std::string json = memory.to_json();
  EXPECT_NE(json.find("\"cache_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_misses\""), std::string::npos);
  EXPECT_NE(json.find("\"chunk_re_reads\""), std::string::npos);
  EXPECT_TRUE(JsonChecker::valid(json));
}

TEST(SessionTelemetry, MultiDeviceRoutesShardEdges) {
  const auto set = random_set(120, 10, 13);
  SolveSpec spec;
  spec.strategy = papi::ExecutionStrategy::MultiDevice;
  spec.devices = 3;
  const auto report = solve_pauli_spec(set, spec);
  const auto& counters = report.telemetry.counters;
  // Every conflict edge crosses exactly one device shard.
  EXPECT_EQ(counters[pobs::Counter::ShardEdgesRouted],
            report.total_shard_edges());
  EXPECT_GT(counters[pobs::Counter::ShardEdgesRouted], 0u);
  EXPECT_EQ(counters[pobs::Counter::RecolorEvents],
            sum_uncolored(report.result));
}

// ---------------------------------------------------------------------------
// The headline contract: counter totals are bit-identical across thread
// counts for every execution strategy (counters tally logical algorithm
// work at schedule-independent choke points, never per-slab).

namespace {

struct StrategyCase {
  const char* label;
  SolveSpec spec;
};

std::vector<StrategyCase> all_strategies() {
  std::vector<StrategyCase> cases;
  {
    SolveSpec s;
    s.strategy = papi::ExecutionStrategy::InMemory;
    cases.push_back({"in-memory", s});
  }
  {
    SolveSpec s;
    s.strategy = papi::ExecutionStrategy::BudgetedStreaming;
    s.chunk_strings = 40;
    cases.push_back({"budgeted-streaming", s});
  }
  {
    SolveSpec s;
    s.strategy = papi::ExecutionStrategy::Fused;
    cases.push_back({"fused", s});
  }
  {
    SolveSpec s;
    s.strategy = papi::ExecutionStrategy::Fused;
    s.chunk_strings = 40;  // spill + strike off chunked records
    cases.push_back({"fused-streaming", s});
  }
  {
    SolveSpec s;
    s.strategy = papi::ExecutionStrategy::MultiDevice;
    s.devices = 2;
    cases.push_back({"multi-device", s});
  }
  return cases;
}

}  // namespace

TEST(CounterDeterminism, TotalsBitIdenticalAcrossThreadCounts) {
  const auto set = random_set(160, 10, 29);
  for (const auto& c : all_strategies()) {
    SolveSpec base = c.spec;
    base.threads = 1;
    const auto reference = solve_pauli_spec(set, base);
    EXPECT_FALSE(reference.telemetry.counters.all_zero()) << c.label;
    for (unsigned threads : {2u, 4u}) {
      SolveSpec spec = c.spec;
      spec.threads = threads;
      const auto report = solve_pauli_spec(set, spec);
      EXPECT_EQ(report.telemetry.counters.value,
                reference.telemetry.counters.value)
          << c.label << " with " << threads << " threads";
      // The coloring invariant rides along for free.
      EXPECT_EQ(report.result.colors, reference.result.colors) << c.label;
    }
  }
}

TEST(CounterDeterminism, SemiStreamingTotalsStableAcrossThreadCounts) {
  constexpr std::uint32_t kN = 80;
  pu::Xoshiro256 rng(41);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < kN; ++u) {
    for (std::uint32_t v = u + 1; v < kN; ++v) {
      if (rng.bounded(5) == 0) edges.emplace_back(u, v);
    }
  }
  const pcore::VectorEdgeStream stream(edges);
  pobs::CounterTotals reference;
  for (unsigned threads : {1u, 2u, 4u}) {
    pcore::PicassoParams params;
    params.seed = 7;
    params.runtime.num_threads = threads;
    const auto report =
        papi::SessionBuilder()
            .params(params)
            .telemetry(pobs::TelemetryLevel::Counters)
            .strategy(papi::ExecutionStrategy::SemiStreaming)
            .build()
            .solve(papi::Problem::edge_stream(kN, stream));
    if (threads == 1) {
      reference = report.telemetry.counters;
      EXPECT_FALSE(reference.all_zero());
    } else {
      EXPECT_EQ(report.telemetry.counters.value, reference.value)
          << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Satellite (a): fused BucketScanned progress events report the running
// strike-hit count instead of the 0 they used to carry.

TEST(ProgressEvents, FusedBucketScansCarryRunningStrikes) {
  // Needs > detail::kFusedProgressInterval (256) strike scans per iteration
  // for a BucketScanned event to fire; few qubits keep conflicts dense.
  const auto set = random_set(400, 6, 37);
  pcore::PicassoParams params;
  params.seed = 7;
  params.runtime.num_threads = 1;
  std::vector<std::uint64_t> bucket_edges;
  std::uint64_t iteration_total = 0;
  params.progress = [&](const pcore::ProgressEvent& event) {
    if (event.stage == pcore::ProgressStage::BucketScanned) {
      bucket_edges.push_back(event.conflict_edges);
    } else if (event.stage == pcore::ProgressStage::IterationDone) {
      iteration_total += event.conflict_edges;
    }
  };
  const auto report = papi::SessionBuilder()
                          .params(params)
                          .strategy(papi::ExecutionStrategy::Fused)
                          .build()
                          .solve(papi::Problem::pauli(set));
  ASSERT_FALSE(bucket_edges.empty());
  // The running count grows monotonically within an iteration; across the
  // whole run at least one batch must have struck edges (the set is dense).
  std::uint64_t max_seen = 0;
  for (std::uint64_t e : bucket_edges) max_seen = std::max(max_seen, e);
  EXPECT_GT(max_seen, 0u);
  std::uint64_t struck = 0;
  for (const auto& it : report.result.iterations) struck += it.conflict_edges;
  EXPECT_GT(struck, 0u);
  EXPECT_EQ(iteration_total, struck);
}
