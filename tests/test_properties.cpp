// Cross-cutting randomized property tests: algebraic identities of the
// operator layer, the empirical conflict-sparsity of Lemma 2, and
// model-independent invariants that every colorer in the library must
// satisfy on the same random inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "api/session.hpp"
#include "coloring/greedy.hpp"
#include "coloring/jones_plassmann.hpp"
#include "coloring/speculative.hpp"
#include "coloring/verify.hpp"
#include "core/conflict_graph.hpp"
#include "core/picasso.hpp"
#include "graph/graph_gen.hpp"
#include "graph/oracles.hpp"
#include "pauli/jordan_wigner.hpp"
#include "pauli/operator.hpp"
#include "util/rng.hpp"

namespace pp = picasso::pauli;
namespace pg = picasso::graph;
namespace pc = picasso::coloring;
namespace pcore = picasso::core;
namespace papi = picasso::api;

namespace {

pp::PauliOperator random_operator(std::size_t qubits, std::size_t terms,
                                  picasso::util::Xoshiro256& rng) {
  pp::PauliOperator op(qubits);
  for (std::size_t t = 0; t < terms; ++t) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    op.add_term(s, {rng.uniform() - 0.5, rng.uniform() - 0.5});
  }
  return op;
}

double operator_distance(const pp::PauliOperator& a, const pp::PauliOperator& b) {
  pp::PauliOperator d = a;
  d -= b;
  double worst = 0.0;
  for (const auto& [s, c] : d.terms()) worst = std::max(worst, std::abs(c));
  return worst;
}

}  // namespace

// --- Operator algebra identities ---------------------------------------------

class OperatorAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OperatorAlgebra, ProductDaggerReversesOrder) {
  picasso::util::Xoshiro256 rng(GetParam());
  const auto a = random_operator(4, 6, rng);
  const auto b = random_operator(4, 6, rng);
  // (AB)† == B† A†.
  const auto lhs = a.multiply(b).dagger();
  const auto rhs = b.dagger().multiply(a.dagger());
  EXPECT_LT(operator_distance(lhs, rhs), 1e-12);
}

TEST_P(OperatorAlgebra, MultiplicationIsAssociative) {
  picasso::util::Xoshiro256 rng(GetParam() ^ 0xabc);
  const auto a = random_operator(3, 4, rng);
  const auto b = random_operator(3, 4, rng);
  const auto c = random_operator(3, 4, rng);
  const auto lhs = a.multiply(b).multiply(c);
  const auto rhs = a.multiply(b.multiply(c));
  EXPECT_LT(operator_distance(lhs, rhs), 1e-12);
}

TEST_P(OperatorAlgebra, MultiplicationDistributesOverAddition) {
  picasso::util::Xoshiro256 rng(GetParam() ^ 0xdef);
  const auto a = random_operator(3, 4, rng);
  const auto b = random_operator(3, 4, rng);
  const auto c = random_operator(3, 4, rng);
  const auto lhs = a.multiply(b + c);
  const auto rhs = a.multiply(b) + a.multiply(c);
  EXPECT_LT(operator_distance(lhs, rhs), 1e-12);
}

TEST_P(OperatorAlgebra, HermitianSquareIsHermitian) {
  picasso::util::Xoshiro256 rng(GetParam() ^ 0x123);
  auto a = random_operator(4, 8, rng);
  const auto h = a + a.dagger();  // Hermitian by construction
  EXPECT_LT(h.max_imaginary_part(), 1e-12);
  const auto h2 = h.multiply(h);
  EXPECT_LT(h2.max_imaginary_part(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorAlgebra,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(JordanWignerProperties, HermitianFermionOperatorsMapToRealCoefficients) {
  picasso::util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    pp::FermionOperator f;
    f.num_modes = 6;
    // Random one/two-body terms, each added with its Hermitian conjugate.
    for (int t = 0; t < 10; ++t) {
      const auto p = static_cast<std::uint32_t>(rng.bounded(6));
      const auto q = static_cast<std::uint32_t>(rng.bounded(6));
      const double coef = rng.uniform() - 0.5;
      f.add(pp::one_body(coef, p, q));
      f.add(pp::one_body(coef, q, p));
    }
    for (int t = 0; t < 5; ++t) {
      const auto p = static_cast<std::uint32_t>(rng.bounded(6));
      const auto q = static_cast<std::uint32_t>(rng.bounded(6));
      const auto r = static_cast<std::uint32_t>(rng.bounded(6));
      const auto s = static_cast<std::uint32_t>(rng.bounded(6));
      if (p == q || r == s) continue;
      const double coef = rng.uniform() - 0.5;
      f.add(pp::two_body(coef, p, q, r, s));
      f.add(pp::two_body(coef, s, r, q, p));
    }
    const auto qubit_op = pp::jordan_wigner(f);
    EXPECT_LT(qubit_op.max_imaginary_part(), 1e-10) << "trial " << trial;
  }
}

// --- Lemma 2: empirical conflict sparsity -------------------------------------

TEST(Lemma2, ConflictDegreeScalesWithListOverPalette) {
  // E[deg_Gc(v)] = deg_G(v) * Pr[lists intersect], and for L distinct
  // colors from P the intersection probability is 1 - C(P-L,L)/C(P,L).
  // Check the measured mean conflict degree against this within 15%.
  const std::uint32_t n = 1200;
  const double density = 0.5;
  const auto g = pg::erdos_renyi_dense(n, density, 7);
  const pg::DenseOracle oracle(g);
  std::vector<std::uint32_t> active(n);
  for (std::uint32_t v = 0; v < n; ++v) active[v] = v;

  for (double percent : {10.0, 20.0}) {
    const auto palette = pcore::compute_palette(n, percent, 2.0, 0);
    const auto lists = pcore::assign_random_lists(n, palette, 11, 0);
    const auto conflict = pcore::build_conflict_graph(
        oracle, active, lists, palette.palette_size,
        pcore::ConflictKernel::Indexed);

    // Pr[intersect] = 1 - prod_{i=0..L-1} (P-L-i)/(P-i).
    double miss = 1.0;
    for (std::uint32_t i = 0; i < palette.list_size; ++i) {
      miss *= static_cast<double>(palette.palette_size - palette.list_size - i) /
              static_cast<double>(palette.palette_size - i);
    }
    const double p_share = 1.0 - miss;
    const double expected_edges =
        static_cast<double>(g.num_edges()) * p_share;
    EXPECT_NEAR(static_cast<double>(conflict.num_edges), expected_edges,
                0.15 * expected_edges)
        << "P'=" << percent;
  }
}

TEST(Lemma2, ConflictFractionFallsWithVertexCount) {
  // The sublinearity driver: at fixed P' and alpha, |Ec|/|E| decreases in n
  // because P grows linearly while L grows logarithmically.
  double previous_fraction = 1.1;
  for (std::uint32_t n : {400u, 1600u, 6400u}) {
    const auto g = pg::erdos_renyi_dense(n, 0.5, 13);
    pcore::PicassoParams params;
    params.seed = 13;
    const auto r = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
    const double fraction = static_cast<double>(r.max_conflict_edges) /
                            static_cast<double>(g.num_edges());
    EXPECT_LT(fraction, previous_fraction) << "n=" << n;
    previous_fraction = fraction;
  }
}

// --- Every colorer, same inputs ------------------------------------------------

class AllColorers : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllColorers, AgreeOnValidityAcrossTheBoard) {
  const std::uint64_t seed = GetParam();
  const auto g = pg::erdos_renyi_dense(350, 0.45, seed);
  const pg::DenseOracle oracle(g);
  const auto check = [&](const std::vector<std::uint32_t>& colors,
                         const char* who) {
    EXPECT_TRUE(pc::is_valid_coloring(g, colors)) << who << " seed " << seed;
  };
  check(pc::greedy_color(g, pc::OrderingKind::LargestFirst, seed).colors, "LF");
  check(pc::greedy_color(g, pc::OrderingKind::SmallestLast, seed).colors, "SL");
  check(pc::greedy_color(g, pc::OrderingKind::DynamicLargestFirst, seed).colors,
        "DLF");
  check(pc::greedy_color(g, pc::OrderingKind::IncidenceDegree, seed).colors,
        "ID");
  check(pc::jones_plassmann(g, pc::JpPriority::LargestDegreeFirst, seed).colors,
        "JP");
  check(pc::speculative_color(g).colors, "speculative");
  pcore::PicassoParams params;
  params.seed = seed;
  check(papi::Session::from_params(params).solve(papi::Problem::dense(g)).result.colors, "picasso");
}

TEST_P(AllColorers, PicassoColorCountIsAtMostPaletteTotalAndAtLeastClique) {
  const std::uint64_t seed = GetParam();
  // Planted structure: disjoint cliques of size 12 force >= 12 colors.
  const auto g = pg::disjoint_cliques(6, 12);
  pcore::PicassoParams params;
  params.seed = seed;
  params.palette_percent = 30.0;
  params.alpha = 4.0;
  const auto r = papi::Session::from_params(params).solve(papi::Problem::dense(g)).result;
  EXPECT_GE(r.num_colors, 12u);
  EXPECT_LE(r.num_colors, r.palette_total);
  const pg::DenseOracle oracle(g);
  EXPECT_TRUE(pc::is_valid_coloring_oracle(oracle, r.colors));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllColorers,
                         ::testing::Values(1u, 7u, 21u, 63u));
