// Tests for PauliOperator arithmetic and the Jordan-Wigner transform,
// including the canonical anticommutation relations — the algebraic
// foundation the whole dataset generator rests on.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "pauli/fermion.hpp"
#include "pauli/jordan_wigner.hpp"
#include "pauli/operator.hpp"

namespace pp = picasso::pauli;
using C = std::complex<double>;

namespace {

/// ||A - B|| in the term-wise max norm.
double operator_distance(const pp::PauliOperator& a, const pp::PauliOperator& b) {
  pp::PauliOperator d = a;
  d -= b;
  double worst = 0.0;
  for (const auto& [s, c] : d.terms()) worst = std::max(worst, std::abs(c));
  return worst;
}

}  // namespace

TEST(PauliOperator, AddCombinesLikeTerms) {
  pp::PauliOperator op(2);
  const auto xy = pp::PauliString::parse("XY");
  op.add_term(xy, {1.0, 0.0});
  op.add_term(xy, {2.0, 0.5});
  EXPECT_EQ(op.num_terms(), 1u);
  EXPECT_EQ(op.coefficient_of(xy), (C{3.0, 0.5}));
}

TEST(PauliOperator, CancellingTermsVanish) {
  pp::PauliOperator op(1);
  op.add_term(pp::PauliString::parse("Z"), {1.0, 0.0});
  op.add_term(pp::PauliString::parse("Z"), {-1.0, 0.0});
  EXPECT_TRUE(op.is_zero());
}

TEST(PauliOperator, AddTermRejectsWrongWidth) {
  pp::PauliOperator op(2);
  EXPECT_THROW(op.add_term(pp::PauliString::parse("X"), {1, 0}),
               std::invalid_argument);
}

TEST(PauliOperator, ScalarMultiplication) {
  pp::PauliOperator op(1);
  op.add_term(pp::PauliString::parse("X"), {2.0, 0.0});
  op *= C{0.0, 1.0};
  EXPECT_EQ(op.coefficient_of(pp::PauliString::parse("X")), (C{0.0, 2.0}));
  op *= C{0.0, 0.0};
  EXPECT_TRUE(op.is_zero());
}

TEST(PauliOperator, MultiplyDistributesWithPhases) {
  // (X + Z)(X - Z) = XX - XZ + ZX - ZZ = I - (iY) + (-iY)... on one qubit:
  // X*X = I, X*Z = -iY, Z*X = iY, Z*Z = I => product = (I - (-iY)?) compute:
  // (X+Z)(X-Z) = XX - XZ + ZX - ZZ = I + iY + iY - I = 2iY.
  pp::PauliOperator a(1), b(1);
  a.add_term(pp::PauliString::parse("X"), {1, 0});
  a.add_term(pp::PauliString::parse("Z"), {1, 0});
  b.add_term(pp::PauliString::parse("X"), {1, 0});
  b.add_term(pp::PauliString::parse("Z"), {-1, 0});
  const auto p = a.multiply(b);
  EXPECT_EQ(p.num_terms(), 1u);
  EXPECT_EQ(p.coefficient_of(pp::PauliString::parse("Y")), (C{0.0, 2.0}));
}

TEST(PauliOperator, IdentityIsMultiplicativeNeutral) {
  pp::PauliOperator a(3);
  a.add_term(pp::PauliString::parse("XYZ"), {0.5, -0.5});
  a.add_term(pp::PauliString::parse("ZIX"), {1.5, 0.0});
  const auto id = pp::PauliOperator::identity(3);
  EXPECT_NEAR(operator_distance(a.multiply(id), a), 0.0, 1e-14);
  EXPECT_NEAR(operator_distance(id.multiply(a), a), 0.0, 1e-14);
}

TEST(PauliOperator, DaggerConjugatesCoefficients) {
  pp::PauliOperator a(1);
  a.add_term(pp::PauliString::parse("Y"), {1.0, 2.0});
  const auto d = a.dagger();
  EXPECT_EQ(d.coefficient_of(pp::PauliString::parse("Y")), (C{1.0, -2.0}));
}

TEST(PauliOperator, PruneDropsSmallTerms) {
  pp::PauliOperator a(1);
  a.add_term(pp::PauliString::parse("X"), {1e-13, 0.0});
  a.add_term(pp::PauliString::parse("Z"), {1.0, 0.0});
  EXPECT_EQ(a.prune(1e-10), 1u);
  EXPECT_EQ(a.num_terms(), 1u);
}

TEST(PauliOperator, FlattenedIsSortedAndFiltered) {
  pp::PauliOperator a(2);
  a.add_term(pp::PauliString::parse("ZI"), {3.0, 0.0});
  a.add_term(pp::PauliString::parse("IX"), {1.0, 0.0});
  a.add_term(pp::PauliString::parse("XI"), {1e-15, 0.0});
  const auto flat = a.flattened(1e-12);
  ASSERT_EQ(flat.strings.size(), 2u);
  EXPECT_EQ(flat.strings[0].to_string(), "IX");
  EXPECT_EQ(flat.strings[1].to_string(), "ZI");
  EXPECT_DOUBLE_EQ(flat.coefficients[0], 1.0);
  EXPECT_DOUBLE_EQ(flat.coefficients[1], 3.0);
}

// --- Jordan-Wigner ---------------------------------------------------------

TEST(JordanWigner, LadderOperatorImages) {
  // a_0 on 2 qubits = (X + iY)/2 ⊗ I.
  const auto a0 = pp::jw_annihilation(0, 2);
  EXPECT_EQ(a0.coefficient_of(pp::PauliString::parse("XI")), (C{0.5, 0.0}));
  EXPECT_EQ(a0.coefficient_of(pp::PauliString::parse("YI")), (C{0.0, 0.5}));
  // a†_1 = Z ⊗ (X - iY)/2.
  const auto c1 = pp::jw_creation(1, 2);
  EXPECT_EQ(c1.coefficient_of(pp::PauliString::parse("ZX")), (C{0.5, 0.0}));
  EXPECT_EQ(c1.coefficient_of(pp::PauliString::parse("ZY")), (C{0.0, -0.5}));
  EXPECT_THROW(pp::jw_annihilation(2, 2), std::invalid_argument);
}

TEST(JordanWigner, AnnihilatorSquaresToZero) {
  for (std::uint32_t mode = 0; mode < 3; ++mode) {
    const auto a = pp::jw_annihilation(mode, 3);
    auto sq = a.multiply(a);
    sq.prune(1e-14);
    EXPECT_TRUE(sq.is_zero()) << "mode " << mode;
  }
}

TEST(JordanWigner, CanonicalAnticommutationRelations) {
  // {a_p, a†_q} = delta_pq * I and {a_p, a_q} = 0, verified symbolically.
  constexpr std::size_t n = 4;
  for (std::uint32_t p = 0; p < n; ++p) {
    for (std::uint32_t q = 0; q < n; ++q) {
      const auto ap = pp::jw_annihilation(p, n);
      const auto cq = pp::jw_creation(q, n);
      auto anti = ap.multiply(cq) + cq.multiply(ap);
      anti.prune(1e-14);
      if (p == q) {
        EXPECT_NEAR(operator_distance(anti, pp::PauliOperator::identity(n)),
                    0.0, 1e-12)
            << "p=q=" << p;
      } else {
        EXPECT_TRUE(anti.is_zero()) << "p=" << p << " q=" << q;
      }
      const auto aq = pp::jw_annihilation(q, n);
      auto anti2 = ap.multiply(aq) + aq.multiply(ap);
      anti2.prune(1e-14);
      EXPECT_TRUE(anti2.is_zero()) << "{a_p, a_q} p=" << p << " q=" << q;
    }
  }
}

TEST(JordanWigner, NumberOperatorIsHalfOneMinusZ) {
  // n_p = a†_p a_p = (I - Z_p)/2.
  constexpr std::size_t n = 3;
  for (std::uint32_t p = 0; p < n; ++p) {
    const auto num = pp::jw_creation(p, n).multiply(pp::jw_annihilation(p, n));
    pp::PauliOperator expected(n);
    expected.add_term(pp::PauliString(n), {0.5, 0.0});
    pp::PauliString z(n);
    z.set_op(p, pp::PauliOp::Z);
    expected.add_term(z, {-0.5, 0.0});
    EXPECT_NEAR(operator_distance(num, expected), 0.0, 1e-14) << "p=" << p;
  }
}

TEST(JordanWigner, OneBodyTermIsHermitianWhenSymmetrised) {
  // h (a†_p a_q + a†_q a_p) must map to a purely real Pauli combination.
  pp::FermionOperator op;
  op.num_modes = 4;
  op.add(pp::one_body(0.7, 1, 3));
  op.add(pp::one_body(0.7, 3, 1));
  const auto qubit = pp::jordan_wigner(op);
  EXPECT_LT(qubit.max_imaginary_part(), 1e-12);
  EXPECT_GT(qubit.num_terms(), 0u);
}

TEST(JordanWigner, TwoBodyTermWithConjugateIsHermitian) {
  pp::FermionOperator op;
  op.num_modes = 6;
  op.add(pp::two_body(0.3, 4, 5, 1, 0));
  op.add(pp::two_body(0.3, 0, 1, 5, 4));  // Hermitian conjugate
  const auto qubit = pp::jordan_wigner(op);
  EXPECT_LT(qubit.max_imaginary_part(), 1e-12);
}

TEST(JordanWigner, JwTermAppliesCoefficient) {
  const auto one = pp::jw_term(pp::one_body(2.0, 0, 0), 2);
  // 2 * n_0 = I - Z_0.
  EXPECT_EQ(one.coefficient_of(pp::PauliString::parse("II")), (C{1.0, 0.0}));
  EXPECT_EQ(one.coefficient_of(pp::PauliString::parse("ZI")), (C{-1.0, 0.0}));
}

TEST(FermionTerm, Constructors) {
  const auto t = pp::two_body(0.25, 3, 2, 1, 0);
  ASSERT_EQ(t.ops.size(), 4u);
  EXPECT_TRUE(t.ops[0].creation);
  EXPECT_TRUE(t.ops[1].creation);
  EXPECT_FALSE(t.ops[2].creation);
  EXPECT_FALSE(t.ops[3].creation);
  EXPECT_EQ(t.ops[0].mode, 3u);
  EXPECT_NE(t.to_string().find("a+_3"), std::string::npos);
}
