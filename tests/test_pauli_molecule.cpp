// Tests for the synthetic molecule generator and the dataset registry:
// geometry placement, integral symmetries, Hamiltonian Hermiticity, the
// ansatz extension, and the Table II-mirroring dataset catalogue.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "pauli/datasets.hpp"
#include "pauli/molecule.hpp"

namespace pp = picasso::pauli;

TEST(MoleculeSpec, NameMatchesPaperConvention) {
  pp::MoleculeSpec spec{6, pp::Geometry::Sheet2D, pp::Basis::STO3G, 1.4};
  EXPECT_EQ(spec.name(), "H6_2D_sto3g");
  spec.basis = pp::Basis::B6311G;
  spec.geometry = pp::Geometry::Cube3D;
  EXPECT_EQ(spec.name(), "H6_3D_6311g");
}

TEST(Molecule, AtomAndOrbitalCounts) {
  const pp::Molecule m({4, pp::Geometry::Chain1D, pp::Basis::B631G, 1.4});
  EXPECT_EQ(m.atoms().size(), 4u);
  EXPECT_EQ(m.num_spatial(), 8u);  // 2 shells per atom
  EXPECT_EQ(m.num_qubits(), 16u);  // 2 spins per spatial orbital
}

TEST(Molecule, GeometriesAreGenuinelyDistinct) {
  // 4 atoms: the chain spans 3 spacings, the sheet is a 2x2 square, and the
  // balanced 3D fill must leave the z=0 plane.
  auto span = [](const pp::Molecule& m, double pp::Vec3::* axis) {
    double lo = 1e9, hi = -1e9;
    for (const auto& a : m.atoms()) {
      lo = std::min(lo, a.*axis);
      hi = std::max(hi, a.*axis);
    }
    return hi - lo;
  };
  const pp::Molecule chain({4, pp::Geometry::Chain1D, pp::Basis::STO3G, 1.0});
  EXPECT_DOUBLE_EQ(span(chain, &pp::Vec3::x), 3.0);
  EXPECT_DOUBLE_EQ(span(chain, &pp::Vec3::y), 0.0);
  const pp::Molecule sheet({4, pp::Geometry::Sheet2D, pp::Basis::STO3G, 1.0});
  EXPECT_DOUBLE_EQ(span(sheet, &pp::Vec3::x), 1.0);
  EXPECT_DOUBLE_EQ(span(sheet, &pp::Vec3::y), 1.0);
  EXPECT_DOUBLE_EQ(span(sheet, &pp::Vec3::z), 0.0);
  const pp::Molecule cube({4, pp::Geometry::Cube3D, pp::Basis::STO3G, 1.0});
  EXPECT_GT(span(cube, &pp::Vec3::z), 0.0);
}

TEST(Molecule, AtomPositionsAreDistinct) {
  for (auto geom : {pp::Geometry::Chain1D, pp::Geometry::Sheet2D,
                    pp::Geometry::Cube3D}) {
    const pp::Molecule m({10, geom, pp::Basis::STO3G, 1.4});
    std::set<std::tuple<double, double, double>> seen;
    for (const auto& a : m.atoms()) seen.insert({a.x, a.y, a.z});
    EXPECT_EQ(seen.size(), 10u) << to_string(geom);
  }
}

TEST(Molecule, OverlapIsSymmetricNormalisedAndDecaying) {
  const pp::Molecule m({6, pp::Geometry::Chain1D, pp::Basis::B631G, 1.4});
  const std::size_t ns = m.num_spatial();
  for (std::size_t i = 0; i < ns; ++i) {
    EXPECT_NEAR(m.overlap(i, i), 1.0, 1e-12);
    for (std::size_t j = 0; j < ns; ++j) {
      EXPECT_NEAR(m.overlap(i, j), m.overlap(j, i), 1e-14);
      EXPECT_LE(m.overlap(i, j), 1.0 + 1e-12);
      EXPECT_GT(m.overlap(i, j), 0.0);
    }
  }
  // Same-shell overlap decays with distance along the chain.
  EXPECT_GT(m.overlap(0, 2), m.overlap(0, 4));
  EXPECT_GT(m.overlap(0, 4), m.overlap(0, 10));
}

TEST(Molecule, CoreIntegralsAreSymmetric) {
  const pp::Molecule m({4, pp::Geometry::Sheet2D, pp::Basis::STO3G, 1.4});
  for (std::size_t i = 0; i < m.num_spatial(); ++i) {
    for (std::size_t j = 0; j < m.num_spatial(); ++j) {
      EXPECT_NEAR(m.core(i, j), m.core(j, i), 1e-14);
    }
  }
}

TEST(Molecule, EriHasRequiredSymmetries) {
  const pp::Molecule m({4, pp::Geometry::Chain1D, pp::Basis::STO3G, 1.4});
  const std::size_t ns = m.num_spatial();
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t j = 0; j < ns; ++j) {
      for (std::size_t k = 0; k < ns; ++k) {
        for (std::size_t l = 0; l < ns; ++l) {
          const double v = m.eri(i, j, k, l);
          EXPECT_NEAR(v, m.eri(j, i, k, l), 1e-14);
          EXPECT_NEAR(v, m.eri(i, j, l, k), 1e-14);
          EXPECT_NEAR(v, m.eri(k, l, i, j), 1e-14);
          EXPECT_GT(v, 0.0);
        }
      }
    }
  }
}

TEST(Molecule, RejectsNonPositiveAtomCount) {
  EXPECT_THROW(pp::Molecule({0, pp::Geometry::Chain1D, pp::Basis::STO3G, 1.0}),
               std::invalid_argument);
}

TEST(Hamiltonian, JordanWignerImageIsHermitian) {
  for (auto basis : {pp::Basis::STO3G, pp::Basis::B631G}) {
    const auto h = pp::molecular_hamiltonian(
        {4, pp::Geometry::Chain1D, basis, 1.4});
    EXPECT_LT(h.max_imaginary_part(), 1e-9) << to_string(basis);
    EXPECT_GT(h.num_terms(), 10u);
  }
}

TEST(Hamiltonian, TermCountGrowsWithBasisSize) {
  const auto sto = pp::molecular_hamiltonian(
      {4, pp::Geometry::Chain1D, pp::Basis::STO3G, 1.4});
  const auto dz = pp::molecular_hamiltonian(
      {4, pp::Geometry::Chain1D, pp::Basis::B631G, 1.4});
  EXPECT_GT(dz.num_terms(), 2 * sto.num_terms());
}

TEST(Ansatz, CcDoublesOperatorShape) {
  const pp::Molecule m({4, pp::Geometry::Chain1D, pp::Basis::STO3G, 1.4});
  const auto t = pp::cc_doubles_operator(m);
  EXPECT_EQ(t.num_modes, 8u);
  EXPECT_GT(t.terms.size(), 0u);
  // Terms come in (excitation, conjugate) pairs.
  EXPECT_EQ(t.terms.size() % 2, 0u);
  // Every excitation annihilates occupied (< 4) and creates virtual (>= 4).
  for (std::size_t i = 0; i < t.terms.size(); i += 2) {
    const auto& ops = t.terms[i].ops;
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_GE(ops[0].mode, 4u);
    EXPECT_GE(ops[1].mode, 4u);
    EXPECT_LT(ops[2].mode, 4u);
    EXPECT_LT(ops[3].mode, 4u);
  }
}

TEST(Ansatz, ExtendedOperatorIsHermitianAndBigger) {
  const pp::MoleculeSpec spec{4, pp::Geometry::Chain1D, pp::Basis::STO3G, 1.4};
  const auto h_only = pp::molecular_hamiltonian(spec);
  const auto extended = pp::ansatz_extended_operator(spec);
  EXPECT_LT(extended.max_imaginary_part(), 1e-9);
  EXPECT_GT(extended.num_terms(), h_only.num_terms());
}

TEST(PauliSetFromOperator, DeterministicOrderAndCap) {
  const auto h = pp::molecular_hamiltonian(
      {4, pp::Geometry::Chain1D, pp::Basis::STO3G, 1.4});
  const auto full_a = pp::pauli_set_from_operator(h);
  const auto full_b = pp::pauli_set_from_operator(h);
  ASSERT_EQ(full_a.size(), full_b.size());
  for (std::size_t i = 0; i < full_a.size(); ++i) {
    EXPECT_EQ(full_a.string(i), full_b.string(i));
  }
  const auto capped = pp::pauli_set_from_operator(h, 0.0, 50);
  EXPECT_EQ(capped.size(), 50u);
  // Capping keeps the largest coefficients: the smallest kept magnitude must
  // be >= the largest dropped one. Verify against the full set.
  double min_kept = 1e300;
  for (std::size_t i = 0; i < capped.size(); ++i) {
    min_kept = std::min(min_kept, std::abs(capped.coefficient(i)));
  }
  std::vector<double> magnitudes;
  for (std::size_t i = 0; i < full_a.size(); ++i) {
    magnitudes.push_back(std::abs(full_a.coefficient(i)));
  }
  std::sort(magnitudes.rbegin(), magnitudes.rend());
  EXPECT_NEAR(min_kept, magnitudes[49], 1e-12);
}

TEST(Datasets, RegistryIsWellFormed) {
  const auto& all = pp::all_datasets();
  EXPECT_GE(all.size(), 10u);
  std::set<std::string> names;
  for (const auto& d : all) names.insert(d.name);
  EXPECT_EQ(names.size(), all.size()) << "duplicate dataset names";
  EXPECT_FALSE(pp::datasets_in_class(pp::SizeClass::Small).empty());
  EXPECT_FALSE(pp::datasets_in_class(pp::SizeClass::Medium).empty());
  EXPECT_FALSE(pp::datasets_in_class(pp::SizeClass::Large).empty());
}

TEST(Datasets, LookupByName) {
  const auto& d = pp::dataset_by_name("H4_1D_sto3g");
  EXPECT_EQ(d.molecule.num_atoms, 4);
  EXPECT_THROW(pp::dataset_by_name("H99_9D_nope"), std::out_of_range);
}

TEST(Datasets, LoadIsMemoised) {
  const auto& spec = pp::dataset_by_name("H4_1D_sto3g");
  const auto& a = pp::load_dataset(spec);
  const auto& b = pp::load_dataset(spec);
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.size(), 100u);
}

TEST(Datasets, DiskCacheRoundTrip) {
  // Point the cache at a temp dir, generate, then verify a second process-
  // like load (cache cleared) reads the identical set back from disk.
  const auto dir = std::filesystem::temp_directory_path() / "picasso_test_cache";
  std::filesystem::remove_all(dir);
  setenv("PICASSO_DATA_DIR", dir.c_str(), 1);
  pp::clear_dataset_cache();
  const auto& spec = pp::dataset_by_name("H4_1D_sto3g");
  const auto first_size = pp::load_dataset(spec).size();
  EXPECT_FALSE(std::filesystem::is_empty(dir));
  pp::clear_dataset_cache();
  const auto& reloaded = pp::load_dataset(spec);
  EXPECT_EQ(reloaded.size(), first_size);
  unsetenv("PICASSO_DATA_DIR");
  pp::clear_dataset_cache();
  std::filesystem::remove_all(dir);
}

TEST(Fig1, SetMatchesThePaperFigure) {
  const auto set = pp::fig1_h2_set();
  EXPECT_EQ(set.size(), 17u);
  EXPECT_EQ(set.num_qubits(), 4u);
  EXPECT_EQ(set.string(0).to_string(), "IIII");
  // All strings distinct.
  std::set<std::string> seen;
  for (std::size_t i = 0; i < set.size(); ++i) {
    seen.insert(set.string(i).to_string());
  }
  EXPECT_EQ(seen.size(), 17u);
}
