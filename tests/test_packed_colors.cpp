// PackedColorArray (util/packed_colors.hpp): the sub-byte color container
// every engine now materializes colorings into. Properties under random
// workloads: read-back equals a reference std::vector under arbitrary
// interleaved writes (including kNoColor and escape-tier values), widths
// come from palette bounds, escapes re-widen instead of growing without
// bound, and the binary save/load round-trips bit-exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "util/packed_colors.hpp"
#include "util/rng.hpp"

namespace pu = picasso::util;

using pu::PackedColorArray;

TEST(PackedColors, WidthFromPaletteBound) {
  // Inline capacity per width w is [0, 2^w - 2) (two reserved codes).
  EXPECT_EQ(PackedColorArray::pick_width(0), 2u);
  EXPECT_EQ(PackedColorArray::pick_width(1), 2u);
  EXPECT_EQ(PackedColorArray::pick_width(2), 2u);
  EXPECT_EQ(PackedColorArray::pick_width(3), 4u);
  EXPECT_EQ(PackedColorArray::pick_width(14), 4u);
  EXPECT_EQ(PackedColorArray::pick_width(15), 8u);
  EXPECT_EQ(PackedColorArray::pick_width(254), 8u);
  EXPECT_EQ(PackedColorArray::pick_width(255), 32u);
  EXPECT_EQ(PackedColorArray::pick_width(1u << 20), 32u);
}

TEST(PackedColors, ConstructDefaultsToNoColor) {
  const PackedColorArray arr(37);
  EXPECT_EQ(arr.size(), 37u);
  EXPECT_EQ(arr.width_bits(), 2u);
  for (std::size_t i = 0; i < arr.size(); ++i) {
    EXPECT_EQ(arr[i], PackedColorArray::kNoColor) << i;
  }
}

TEST(PackedColors, RandomWritesMatchReferenceVector) {
  pu::Xoshiro256 rng(0x9ac4edull);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.bounded(300);
    const std::uint32_t bound = 1 + static_cast<std::uint32_t>(rng.bounded(40));
    PackedColorArray arr(n, PackedColorArray::kNoColor, bound);
    std::vector<std::uint32_t> ref(n, PackedColorArray::kNoColor);
    for (int w = 0; w < 2000; ++w) {
      const std::size_t i = rng.bounded(static_cast<std::uint32_t>(n));
      // Mix inline values, escape-tier values and the sentinel.
      std::uint32_t value;
      switch (rng.bounded(8)) {
        case 0: value = PackedColorArray::kNoColor; break;
        case 1: value = 1000 + rng.bounded(100000); break;  // escapes/widens
        default: value = rng.bounded(bound); break;
      }
      arr[i] = value;
      ref[i] = value;
    }
    ASSERT_EQ(arr.size(), ref.size());
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(arr[i], ref[i]) << i;
    ASSERT_TRUE(arr == ref);
    ASSERT_EQ(arr.to_vector(), ref);
  }
}

TEST(PackedColors, EscapesRewidenPastThreshold) {
  const std::size_t n = 4096;
  PackedColorArray arr(n, 0, 4);  // 4-bit tier
  ASSERT_EQ(arr.width_bits(), 4u);
  // Flood with values no 4- or 8-bit code stores inline; the array must
  // abandon the side table and widen instead of accumulating escapes.
  for (std::size_t i = 0; i < n; ++i) arr[i] = 1u << 20;
  EXPECT_EQ(arr.width_bits(), 32u);
  EXPECT_EQ(arr.escape_count(), 0u);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(arr[i], 1u << 20);
}

TEST(PackedColors, OverwritingEscapeReleasesSideTableEntry) {
  PackedColorArray arr(8, 0, 4);
  arr[3] = 500;  // escapes at width 4
  ASSERT_GE(arr.escape_count(), 1u);
  arr[3] = 2;  // back inline: the stale escape must not shadow the new value
  EXPECT_EQ(arr[3], 2u);
  EXPECT_EQ(arr.escape_count(), 0u);
}

TEST(PackedColors, VectorInteropAndEquality) {
  const std::vector<std::uint32_t> src = {0, 1, 2, PackedColorArray::kNoColor,
                                          7, 3, 9, 250, 251};
  const PackedColorArray arr(src);
  EXPECT_TRUE(arr == src);
  const std::vector<std::uint32_t> back(arr);  // implicit conversion
  EXPECT_EQ(back, src);

  PackedColorArray other;
  other = src;
  EXPECT_TRUE(arr == other);
  other[0] = 5;
  EXPECT_FALSE(arr == other);
}

TEST(PackedColors, IteratorCoversStdAlgorithms) {
  const std::vector<std::uint32_t> src = {4, 1, 4, 2, 9, 1, 4};
  const PackedColorArray arr(src);
  EXPECT_EQ(std::count(arr.begin(), arr.end(), 4u), 3);
  EXPECT_EQ(*std::max_element(arr.begin(), arr.end()), 9u);
  std::vector<std::uint32_t> copied(arr.begin(), arr.end());
  EXPECT_EQ(copied, src);
}

TEST(PackedColors, AssignResetResizePushBack) {
  PackedColorArray arr;
  arr.assign(5, 1);
  EXPECT_EQ(arr.size(), 5u);
  EXPECT_EQ(arr[4], 1u);

  arr.reset(10, 0, 200);  // re-picks the 8-bit tier
  EXPECT_EQ(arr.width_bits(), 8u);
  EXPECT_EQ(arr.size(), 10u);

  arr.resize(12);  // grows with kNoColor
  EXPECT_EQ(arr.size(), 12u);
  EXPECT_EQ(arr[11], PackedColorArray::kNoColor);
  arr.resize(3);
  EXPECT_EQ(arr.size(), 3u);

  arr.push_back(42);
  EXPECT_EQ(arr.size(), 4u);
  EXPECT_EQ(arr[3], 42u);

  arr.clear();
  EXPECT_TRUE(arr.empty());
}

TEST(PackedColors, LogicalBytesTracksWidth) {
  // 1024 4-bit entries: 512 payload bytes vs 4096 for flat uint32.
  const PackedColorArray narrow(1024, 0, 10);
  EXPECT_EQ(narrow.width_bits(), 4u);
  EXPECT_LE(narrow.logical_bytes(), 1024u);
  const PackedColorArray wide(1024, 0, 1u << 20);
  EXPECT_EQ(wide.width_bits(), 32u);
  EXPECT_GE(wide.logical_bytes(), 4096u);
  EXPECT_LT(narrow.logical_bytes(), wide.logical_bytes() / 4);
}

TEST(PackedColors, SaveLoadRoundTrip) {
  pu::Xoshiro256 rng(0x10adull);
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = rng.bounded(500);
    PackedColorArray arr(n, PackedColorArray::kNoColor,
                         1 + rng.bounded(300));
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bounded(10) == 0) continue;  // leave some kNoColor holes
      arr[i] = rng.bounded(4) == 0 ? 5000 + rng.bounded(1000)
                                   : rng.bounded(250);
    }
    std::stringstream buf;
    arr.save(buf);
    const PackedColorArray back = PackedColorArray::load(buf);
    ASSERT_EQ(back.size(), arr.size());
    ASSERT_TRUE(back == arr) << "round " << round;
  }
}

TEST(PackedColors, LoadRejectsGarbage) {
  std::stringstream buf("definitely not a PCL1 blob");
  EXPECT_THROW(PackedColorArray::load(buf), std::runtime_error);
}
