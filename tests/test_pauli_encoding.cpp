// Tests for the bit encodings of §IV-A: the inverse-one-hot 3-bit packing
// (X=110, Y=101, Z=011, I=000) and the symplectic 2-bit alternative. The
// central property: both encoded anticommutation kernels agree with the
// character-comparison reference on every input, across word boundaries.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "pauli/encoding.hpp"
#include "pauli/pauli_set.hpp"
#include "util/rng.hpp"

namespace pp = picasso::pauli;

namespace {
pp::PauliString random_string(std::size_t n, picasso::util::Xoshiro256& rng) {
  pp::PauliString s(n);
  for (std::size_t q = 0; q < n; ++q) {
    s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
  }
  return s;
}
}  // namespace

TEST(Encoding, InverseOneHotCodes) {
  EXPECT_EQ(pp::inverse_one_hot_code(pp::PauliOp::I), 0b000u);
  EXPECT_EQ(pp::inverse_one_hot_code(pp::PauliOp::X), 0b110u);
  EXPECT_EQ(pp::inverse_one_hot_code(pp::PauliOp::Y), 0b101u);
  EXPECT_EQ(pp::inverse_one_hot_code(pp::PauliOp::Z), 0b011u);
}

TEST(Encoding, PairwiseAndPopcountParityMatchesAnticommutation) {
  // The defining property of the encoding: popcount(code(a) & code(b)) is
  // odd exactly when a and b anticommute (distinct non-identity operators).
  using Op = pp::PauliOp;
  for (Op a : {Op::I, Op::X, Op::Y, Op::Z}) {
    for (Op b : {Op::I, Op::X, Op::Y, Op::Z}) {
      const auto both =
          pp::inverse_one_hot_code(a) & pp::inverse_one_hot_code(b);
      const bool odd = (__builtin_popcountll(both) & 1) != 0;
      EXPECT_EQ(odd, pp::anticommutes(a, b))
          << pp::to_char(a) << " vs " << pp::to_char(b);
    }
  }
}

TEST(Encoding, WordsPerString) {
  EXPECT_EQ(pp::words_per_string3(1), 1u);
  EXPECT_EQ(pp::words_per_string3(21), 1u);
  EXPECT_EQ(pp::words_per_string3(22), 2u);
  EXPECT_EQ(pp::words_per_string3(42), 2u);
  EXPECT_EQ(pp::words_per_string3(43), 3u);
  EXPECT_EQ(pp::words_per_string2(64), 1u);
  EXPECT_EQ(pp::words_per_string2(65), 2u);
}

TEST(Encoding, EncodeDecodeRoundTrip) {
  picasso::util::Xoshiro256 rng(7);
  for (std::size_t n : {1u, 4u, 20u, 21u, 22u, 40u, 63u, 64u, 65u, 100u}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto s = random_string(n, rng);
      std::vector<std::uint64_t> words(pp::words_per_string3(n));
      pp::encode3(s, words.data());
      EXPECT_EQ(pp::decode3(words.data(), n), s) << "n=" << n;
    }
  }
}

TEST(Encoding, DecodeRejectsCorruptWords) {
  std::vector<std::uint64_t> words{0b111};  // not a valid op code
  EXPECT_THROW(pp::decode3(words.data(), 1), std::invalid_argument);
}

// The key cross-kernel agreement property, swept over qubit counts that
// stress word boundaries of both encodings.
class EncodingAgreement
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(EncodingAgreement, AllKernelsAgree) {
  const auto [n, seed] = GetParam();
  picasso::util::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  for (int i = 0; i < 24; ++i) strings.push_back(random_string(n, rng));
  const pp::PauliSet set(strings);
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = 0; j < set.size(); ++j) {
      const bool reference = strings[i].anticommutes_with(strings[j]);
      EXPECT_EQ(set.anticommute(i, j), reference) << "n=" << n;
      EXPECT_EQ(set.anticommute_symplectic(i, j), reference) << "n=" << n;
      EXPECT_EQ(set.anticommute_naive(i, j), reference) << "n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    QubitCountsAndSeeds, EncodingAgreement,
    ::testing::Combine(::testing::Values(1, 2, 8, 21, 22, 42, 43, 64, 65, 70),
                       ::testing::Values(1u, 99u)));

TEST(PauliSet, ConstructionAndAccessors) {
  const std::vector<pp::PauliString> strings{pp::PauliString::parse("XX"),
                                             pp::PauliString::parse("YZ")};
  const pp::PauliSet set(strings, {0.5, -1.5});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.num_qubits(), 2u);
  EXPECT_EQ(set.string(0).to_string(), "XX");
  EXPECT_EQ(set.string(1).to_string(), "YZ");
  EXPECT_DOUBLE_EQ(set.coefficient(1), -1.5);
  EXPECT_GT(set.logical_bytes(), 0u);
}

TEST(PauliSet, DefaultCoefficientsAreOne) {
  const pp::PauliSet set({pp::PauliString::parse("X")});
  EXPECT_DOUBLE_EQ(set.coefficient(0), 1.0);
}

TEST(PauliSet, RejectsMixedWidthsAndBadCoefficients) {
  const std::vector<pp::PauliString> mixed{pp::PauliString::parse("X"),
                                           pp::PauliString::parse("XY")};
  EXPECT_THROW(pp::PauliSet{mixed}, std::invalid_argument);
  const std::vector<pp::PauliString> ok{pp::PauliString::parse("X")};
  EXPECT_THROW(pp::PauliSet(ok, {1.0, 2.0}), std::invalid_argument);
}

TEST(PauliSet, CountAnticommutingPairsMatchesBruteForce) {
  picasso::util::Xoshiro256 rng(5);
  std::vector<pp::PauliString> strings;
  for (int i = 0; i < 40; ++i) strings.push_back(random_string(6, rng));
  const pp::PauliSet set(strings);
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < strings.size(); ++i) {
    for (std::size_t j = i + 1; j < strings.size(); ++j) {
      expected += strings[i].anticommutes_with(strings[j]) ? 1 : 0;
    }
  }
  EXPECT_EQ(set.count_anticommuting_pairs(), expected);
}

TEST(PauliSet, SubsetPreservesStringsAndCoefficients) {
  std::vector<pp::PauliString> strings{
      pp::PauliString::parse("XI"), pp::PauliString::parse("YI"),
      pp::PauliString::parse("ZI"), pp::PauliString::parse("IZ")};
  const pp::PauliSet set(strings, {1, 2, 3, 4});
  const pp::PauliSet sub = set.subset({1, 3});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.string(0).to_string(), "YI");
  EXPECT_EQ(sub.string(1).to_string(), "IZ");
  EXPECT_DOUBLE_EQ(sub.coefficient(0), 2.0);
  EXPECT_DOUBLE_EQ(sub.coefficient(1), 4.0);
}

TEST(PauliSet, BinarySaveLoadRoundTrip) {
  picasso::util::Xoshiro256 rng(77);
  std::vector<pp::PauliString> strings;
  std::vector<double> coefs;
  for (int i = 0; i < 33; ++i) {
    strings.push_back(random_string(25, rng));  // crosses a 3-bit word boundary
    coefs.push_back(rng.uniform() - 0.5);
  }
  const pp::PauliSet original(strings, coefs);
  std::stringstream buffer;
  original.save_binary(buffer);
  const pp::PauliSet loaded = pp::PauliSet::load_binary(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.num_qubits(), original.num_qubits());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.string(i), original.string(i));
    EXPECT_DOUBLE_EQ(loaded.coefficient(i), original.coefficient(i));
  }
}

TEST(PauliSet, LoadRejectsGarbage) {
  std::stringstream buffer("definitely not a pauli set");
  EXPECT_THROW(pp::PauliSet::load_binary(buffer), std::runtime_error);
}
