// Concurrent sessions sharing one injected ThreadPool and one
// MemoryRegistry — the resource model the service daemon runs on — plus the
// spill-name collision regression: every spill site derives names from ONE
// process-wide counter + pid, so concurrent spilling solves can never race
// to the same file.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "core/streaming.hpp"
#include "pauli/pauli_set.hpp"
#include "runtime/thread_pool.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"

namespace papi = picasso::api;
namespace pcore = picasso::core;
namespace pp = picasso::pauli;
namespace fs = std::filesystem;

using picasso::runtime::RuntimeConfig;
using picasso::runtime::ThreadPool;

namespace {

pp::PauliSet random_set(std::size_t count, std::size_t qubits,
                        std::uint64_t seed) {
  picasso::util::Xoshiro256 rng(seed);
  std::vector<pp::PauliString> strings;
  for (std::size_t i = 0; i < count; ++i) {
    pp::PauliString s(qubits);
    for (std::size_t q = 0; q < qubits; ++q) {
      s.set_op(q, static_cast<pp::PauliOp>(rng.bounded(4)));
    }
    strings.push_back(s);
  }
  return pp::PauliSet(strings);
}

/// A temp dir that must be empty of spill files when the test ends.
struct SpillDir {
  fs::path dir;
  explicit SpillDir(const char* tag) {
    dir = fs::temp_directory_path() /
          (std::string("picasso_test_") + tag + "_" +
           std::to_string(::getpid()));
    fs::create_directories(dir);
  }
  ~SpillDir() { fs::remove_all(dir); }
  std::size_t pset_files() const {
    std::size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() == ".pset") ++count;
    }
    return count;
  }
};

}  // namespace

// --- unique_spill_path -------------------------------------------------------

TEST(UniqueSpillPath, DistinctAcrossThreads) {
  SpillDir spill("unique");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::mutex mu;
  std::set<std::string> names;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<std::string> local;
      local.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        local.push_back(
            pcore::unique_spill_path(spill.dir.string(), "test"));
      }
      std::lock_guard<std::mutex> lock(mu);
      names.insert(local.begin(), local.end());
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Names embed the pid (cross-process uniqueness in a shared dir).
  const std::string pid = std::to_string(::getpid());
  for (const auto& name : names) {
    EXPECT_NE(name.find(pid), std::string::npos) << name;
  }
}

TEST(UniqueSpillPath, SharedCounterAcrossTags) {
  // Different tags (budgeted engine vs incremental store) draw from the
  // same counter — no two names can collide even across spill sites.
  const std::string a = pcore::unique_spill_path("", "spill");
  const std::string b = pcore::unique_spill_path("", "incr");
  EXPECT_NE(a, b);
}

// --- Concurrent budgeted (spilling) sessions --------------------------------

TEST(ConcurrentSessions, ConcurrentSpillingSolvesAreIsolated) {
  SpillDir spill("concurrent_spill");
  const pp::PauliSet set_a = random_set(500, 20, 11);
  const pp::PauliSet set_b = random_set(500, 20, 22);

  auto session_for = [&](const pp::PauliSet& set) {
    pcore::StreamingOptions streaming;
    streaming.spill_dir = spill.dir.string();
    return papi::SessionBuilder()
        .seed(3)
        // Budget under 2x the encoded input forces the spill + chunked
        // engine; both sessions spill into the same directory at once.
        .memory_budget(set.logical_bytes())
        .streaming(streaming)
        .build();
  };

  // Serial references.
  const std::vector<std::uint32_t> ref_a =
      session_for(set_a).solve(papi::Problem::pauli(set_a)).result.colors;
  const std::vector<std::uint32_t> ref_b =
      session_for(set_b).solve(papi::Problem::pauli(set_b)).result.colors;
  ASSERT_EQ(spill.pset_files(), 0u);

  // Concurrent runs: bit-identical to serial, no leaked spill files.
  auto async_a =
      session_for(set_a).solve_async(papi::Problem::pauli(set_a));
  auto async_b =
      session_for(set_b).solve_async(papi::Problem::pauli(set_b));
  const std::vector<std::uint32_t> got_a = async_a.get().result.colors;
  const std::vector<std::uint32_t> got_b = async_b.get().result.colors;
  EXPECT_EQ(got_a, ref_a);
  EXPECT_EQ(got_b, ref_b);
  EXPECT_EQ(spill.pset_files(), 0u) << "spill files leaked";
}

// --- Shared pool + shared registry -------------------------------------------

TEST(ConcurrentSessions, SharedPoolSolvesBitIdenticalToSerial) {
  ThreadPool pool(2);
  constexpr int kSolves = 4;
  std::vector<pp::PauliSet> sets;
  for (int i = 0; i < kSolves; ++i) {
    sets.push_back(random_set(300 + 50 * i, 16, 100 + i));
  }

  // Serial references (independent sessions, default runtime).
  std::vector<std::vector<std::uint32_t>> refs;
  for (const auto& set : sets) {
    refs.push_back(papi::SessionBuilder()
                       .seed(7)
                       .build()
                       .solve(papi::Problem::pauli(set))
                       .result.colors);
  }

  // The server resource model: one outer run scope owning the budget and
  // peaks, every concurrent solve on ONE injected pool and the process
  // registry (their nested run scopes are no-ops).
  const std::uint64_t executed_before = pool.tasks_executed();
  picasso::util::MemoryRunScope server_scope(0, picasso::util::global_memory());
  RuntimeConfig shared;
  shared.num_threads = 2;
  shared.pool = &pool;
  shared.serial_cutoff = 16;  // sets here are below the default cutoff
  std::vector<papi::AsyncSolve> handles;
  for (const auto& set : sets) {
    handles.push_back(papi::SessionBuilder()
                          .seed(7)
                          .runtime(shared)
                          .build()
                          .solve_async(papi::Problem::pauli(set)));
  }
  std::size_t max_input_bytes = 0;
  for (const auto& set : sets) {
    max_input_bytes = std::max(max_input_bytes, set.logical_bytes());
  }
  for (int i = 0; i < kSolves; ++i) {
    EXPECT_EQ(handles[i].get().result.colors, refs[i]) << "solve " << i;
  }

  // The injected pool actually ran the parallel phases.
  EXPECT_GT(pool.tasks_executed(), executed_before);

  // Per-subsystem high-water marks accumulated across the concurrent
  // solves: the Pauli-input peak must cover at least the largest resident
  // set, and the total peak everything a single largest solve holds.
  const auto snapshot = picasso::util::global_memory().snapshot();
  const auto input_slot =
      static_cast<std::size_t>(picasso::util::MemSubsystem::PauliInput);
  EXPECT_GE(snapshot.subsystem_peak[input_slot], max_input_bytes);
  EXPECT_GE(snapshot.peak_bytes, max_input_bytes);
}

TEST(ConcurrentSessions, InjectedPoolIgnoredOnSerialConfig) {
  // num_threads = 1 is the inline reference path; an injected pool must not
  // hijack it (determinism suites compare against it).
  ThreadPool pool(2);
  RuntimeConfig config;
  config.num_threads = 1;
  config.pool = &pool;
  EXPECT_EQ(picasso::runtime::resolve_pool(config), nullptr);
  config.num_threads = 2;
  EXPECT_EQ(picasso::runtime::resolve_pool(config), &pool);
}
