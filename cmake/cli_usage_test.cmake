# CLI usage-error contract, run as a ctest script:
#
#   cmake -DPICASSO_CLI=<path/to/picasso_cli> -P cli_usage_test.cmake
#
# Every operator mistake must exit 2 and print a diagnostic that ENUMERATES
# the accepted values (the lists are built from the same enumerations the
# parsers walk, so they cannot drift) followed by the usage line.

if(NOT PICASSO_CLI)
  message(FATAL_ERROR "pass -DPICASSO_CLI=<path to picasso_cli>")
endif()

function(expect_usage_error case_name)
  cmake_parse_arguments(CASE "" "" "ARGS;STDERR_HAS" ${ARGN})
  execute_process(COMMAND ${PICASSO_CLI} ${CASE_ARGS}
                  RESULT_VARIABLE exit_code
                  OUTPUT_VARIABLE std_out
                  ERROR_VARIABLE std_err)
  if(NOT exit_code EQUAL 2)
    message(FATAL_ERROR
            "${case_name}: expected exit 2, got '${exit_code}'\n"
            "stderr: ${std_err}")
  endif()
  foreach(needle ${CASE_STDERR_HAS})
    string(FIND "${std_err}" "${needle}" found)
    if(found EQUAL -1)
      message(FATAL_ERROR
              "${case_name}: stderr missing '${needle}'\nstderr: ${std_err}")
    endif()
  endforeach()
  message(STATUS "${case_name}: OK")
endfunction()

expect_usage_error(bad_strategy
  ARGS color H4_1D_sto3g --strategy bogus
  STDERR_HAS "unknown execution strategy 'bogus'"
             "valid:" "auto" "in-memory" "budgeted-streaming" "sketch"
             "usage:")

expect_usage_error(bad_backend
  ARGS color H4_1D_sto3g --backend bogus
  STDERR_HAS "unknown Pauli backend 'bogus'"
             "valid:" "auto" "scalar" "packed" "packed-scalar"
             "usage:")

expect_usage_error(bad_mode
  ARGS partition H4_1D_sto3g --mode bogus
  STDERR_HAS "unknown mode 'bogus'" "unitary" "commute" "qwc" "usage:")

expect_usage_error(bad_command
  ARGS frobnicate
  STDERR_HAS "unknown command 'frobnicate'" "usage:")

expect_usage_error(missing_flag_value
  ARGS color H4_1D_sto3g --strategy
  STDERR_HAS "missing value for --strategy" "usage:")
