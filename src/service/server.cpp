#include "service/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <limits>
#include <system_error>

#include "core/solve_fused.hpp"
#include "core/streaming.hpp"
#include "util/fnv.hpp"

namespace picasso::service {

namespace {

/// Conservative per-vertex floor of the fused engine's resident frontier
/// (color index + working lists + bucket queue) — what admission charges a
/// plan that never materializes a conflict CSR.
constexpr std::size_t kFusedBytesPerVertex = 64;

bool materializes_csr(api::ExecutionStrategy strategy) {
  switch (strategy) {
    case api::ExecutionStrategy::Fused:
    case api::ExecutionStrategy::Sketch:
      return false;
    default:
      return true;
  }
}

}  // namespace

void Server::ClientConn::send(FrameType type,
                              const std::vector<std::uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(write_mu);
  if (!open.load(std::memory_order_relaxed)) return;
  try {
    conn.write_frame(type, payload);
  } catch (const WireDisconnect&) {
    // Benign client-gone (EPIPE/ECONNRESET): the peer lost interest in its
    // reply. Count it and move on; the reader loop tears the rest down.
    if (disconnect_counter) {
      disconnect_counter->fetch_add(1, std::memory_order_relaxed);
    }
    open.store(false, std::memory_order_relaxed);
    conn.shutdown();
  } catch (const WireError&) {
    // A reply we could not deliver. Further sends become no-ops, and the
    // socket is shut down so a peer still blocked on its reply sees EOF
    // (and can retry against the result cache) instead of waiting forever;
    // the EOF also wakes our own reader loop to tear the connection down.
    open.store(false, std::memory_order_relaxed);
    conn.shutdown();
  }
}

Server::~Server() { stop(); }

void Server::start(const ServerConfig& config) {
  config_ = config;
  listener_ = Listener::listen(config.listen);
  address_ = listener_.address();

  namespace fs = std::filesystem;
  spill_dir_ = config.spill_dir.empty()
                   ? (fs::temp_directory_path() / "picasso_serve").string()
                   : config.spill_dir;
  fs::create_directories(spill_dir_);
  // Crash recovery: spill files left behind by dead processes (ours or a
  // previous incarnation of this server) are swept before any solve runs.
  stat_orphans_swept_.store(core::sweep_orphan_spills(spill_dir_),
                            std::memory_order_relaxed);

  if (config.num_threads != 1) {
    const std::uint32_t workers =
        config.num_threads == 0 ? std::thread::hardware_concurrency()
                                : config.num_threads;
    pool_ = std::make_unique<runtime::ThreadPool>(std::max(1u, workers));
  }
  // The server-lifetime run scope: installs the global budget on the
  // process registry and makes every per-solve scope a nested no-op, so
  // concurrent solves accumulate against ONE budget and ONE set of peaks.
  run_scope_ = std::make_unique<util::MemoryRunScope>(
      config.memory_budget_bytes, util::global_memory());

  started_ = true;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  const std::uint32_t solvers = std::max(1u, config.max_active_solves);
  solver_threads_.reserve(solvers);
  for (std::uint32_t i = 0; i < solvers; ++i) {
    solver_threads_.emplace_back([this] { solver_loop(); });
  }
}

void Server::request_stop() noexcept {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  listener_.shutdown();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      conn->open.store(false, std::memory_order_relaxed);
      conn->conn.shutdown();
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (const auto& request : active_) request->stop.request_stop();
  }
  queue_cv_.notify_all();
  // Touch stop_mu_ between setting stopping_ and notifying, so a waiter
  // mid-predicate-check cannot miss the wakeup.
  { std::lock_guard<std::mutex> lock(stop_mu_); }
  stop_cv_.notify_all();
}

void Server::wait_until_stop_requested() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock,
                [this] { return stopping_.load(std::memory_order_acquire); });
}

void Server::stop() {
  if (!started_) return;
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& thread : solver_threads_) {
    if (thread.joinable()) thread.join();
  }
  // Readers unblock via the shutdown() issued in request_stop().
  {
    std::vector<std::thread> readers;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      readers.swap(reader_threads_);
    }
    for (auto& thread : readers) {
      if (thread.joinable()) thread.join();
    }
  }
  // Queued requests that never reached a solver get a structured goodbye.
  std::vector<std::shared_ptr<Request>> leftovers;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftovers.swap(pending_);
  }
  for (const auto& request : leftovers) {
    send_error(request->conn, request->msg.id, ServiceErrorCode::ShuttingDown,
               "server shutting down");
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  listener_.close();
  run_scope_.reset();
  pool_.reset();
  started_ = false;
}

StatsMsg Server::stats() const {
  StatsMsg msg;
  msg.received = stat_received_.load(std::memory_order_relaxed);
  msg.completed = stat_completed_.load(std::memory_order_relaxed);
  msg.cache_hits = stat_cache_hits_.load(std::memory_order_relaxed);
  msg.cache_misses = stat_cache_misses_.load(std::memory_order_relaxed);
  msg.rejected_over_budget =
      stat_rejected_over_budget_.load(std::memory_order_relaxed);
  msg.rejected_queue_full =
      stat_rejected_queue_full_.load(std::memory_order_relaxed);
  msg.cancelled = stat_cancelled_.load(std::memory_order_relaxed);
  msg.client_disconnects =
      stat_client_disconnects_.load(std::memory_order_relaxed);
  msg.idle_disconnects = stat_idle_disconnects_.load(std::memory_order_relaxed);
  msg.deadline_exceeded =
      stat_deadline_exceeded_.load(std::memory_order_relaxed);
  msg.degraded = stat_degraded_.load(std::memory_order_relaxed);
  msg.orphan_spills_swept = stat_orphans_swept_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    msg.active = active_.size();
    msg.queued = pending_.size();
  }
  msg.spill_files_live = live_spill_files();
  return msg;
}

std::size_t Server::live_spill_files() const {
  namespace fs = std::filesystem;
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(spill_dir_, ec)) {
    if (entry.path().extension() == ".pset") ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Accept / read.

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Connection conn = listener_.accept();
    if (!conn.valid()) break;  // listener shut down
    auto client = std::make_shared<ClientConn>();
    client->conn = std::move(conn);
    // A stalled or half-dead peer is reaped by the idle/io timeouts instead
    // of pinning this connection's reader thread forever.
    client->conn.set_timeouts(config_.idle_timeout_ms, config_.io_timeout_ms);
    client->disconnect_counter = &stat_client_disconnects_;
    std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load(std::memory_order_acquire)) break;
    conns_.push_back(client);
    reader_threads_.emplace_back(
        [this, client] { reader_loop(std::move(client)); });
  }
}

void Server::reader_loop(std::shared_ptr<ClientConn> conn) {
  Frame frame;
  while (conn->open.load(std::memory_order_relaxed)) {
    try {
      if (!conn->conn.read_frame(frame)) break;  // clean EOF
    } catch (const WireTimeout&) {
      // A client waiting on its own solve is legitimately silent — keep it.
      if (conn_busy(conn)) continue;
      // Otherwise the peer is stalled with nothing in flight: reap the
      // connection so the reader thread frees up.
      stat_idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
      break;
    } catch (const WireDisconnect&) {
      stat_client_disconnects_.fetch_add(1, std::memory_order_relaxed);
      break;
    } catch (const WireError&) {
      break;  // torn frame / reset — nothing sane to reply to
    }
    switch (frame.type) {
      case FrameType::SolveRequest:
        handle_solve_request(conn, frame.payload);
        break;
      case FrameType::Cancel:
        try {
          handle_cancel(conn, decode_cancel(frame.payload));
        } catch (const WireError&) {
          send_error(conn, 0, ServiceErrorCode::BadRequest,
                     "malformed cancel frame");
        }
        break;
      case FrameType::Stats:
        conn->send(FrameType::StatsReply, encode_stats(stats()));
        break;
      case FrameType::Shutdown:
        request_stop();  // signal-only; the owner joins
        break;
      default:
        send_error(conn, 0, ServiceErrorCode::BadRequest,
                   "unexpected frame type " +
                       std::to_string(static_cast<unsigned>(frame.type)));
        break;
    }
  }
  conn->open.store(false, std::memory_order_relaxed);
  conn->conn.shutdown();
}

bool Server::conn_busy(const std::shared_ptr<ClientConn>& conn) const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (const auto& request : pending_) {
    if (request->conn == conn) return true;
  }
  for (const auto& request : active_) {
    if (request->conn == conn) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Admission.

api::Session Server::session_for(const RemoteParams& params) const {
  core::PicassoParams p = config_.base_params;
  p.palette_percent = params.palette_percent;
  p.alpha = params.alpha;
  p.seed = params.seed;
  p.max_iterations = params.max_iterations;
  p.pauli_backend = static_cast<core::PauliBackend>(params.backend);
  p.memory_budget_bytes = params.memory_budget_bytes;
  auto builder = api::SessionBuilder()
                     .params(p)
                     .strategy(static_cast<api::ExecutionStrategy>(
                         params.strategy))
                     .spill_dir(spill_dir_);
  if (pool_) {
    // Every tenant's solve runs on the one server pool.
    builder.shared_pool(pool_.get());
  } else {
    runtime::RuntimeConfig serial;
    serial.num_threads = 1;
    builder.runtime(serial);
  }
  return builder.build();
}

std::size_t Server::projected_peak_bytes(const api::SolvePlan& plan,
                                         const pauli::PauliSet& set) const {
  const std::size_t input = set.logical_bytes();
  const auto n = static_cast<std::uint32_t>(set.size());
  if (materializes_csr(plan.strategy)) {
    return input + core::projected_conflict_csr_bytes(
                       n, config_.base_params.palette_percent,
                       config_.base_params.alpha);
  }
  return input + static_cast<std::size_t>(n) * kFusedBytesPerVertex;
}

void Server::handle_solve_request(const std::shared_ptr<ClientConn>& conn,
                                  const std::vector<std::uint8_t>& payload) {
  stat_received_.fetch_add(1, std::memory_order_relaxed);

  SolveRequestMsg msg;
  try {
    msg = decode_solve_request(payload);
  } catch (const WireError& error) {
    send_error(conn, 0, ServiceErrorCode::BadRequest, error.what());
    return;
  }

  if (stopping_.load(std::memory_order_acquire)) {
    send_error(conn, msg.id, ServiceErrorCode::ShuttingDown,
               "server shutting down");
    return;
  }

  // Validate eagerly — a bad enum value or palette must answer BadRequest,
  // not explode in a solver thread. The SessionBuilder's own validation is
  // reused wholesale.
  api::Session session;
  api::SolvePlan plan;
  try {
    if (msg.params.backend > static_cast<std::uint8_t>(
                                 core::PauliBackend::PackedScalar)) {
      throw std::invalid_argument("unknown backend value " +
                                  std::to_string(msg.params.backend));
    }
    if (msg.params.strategy >
        static_cast<std::uint8_t>(api::ExecutionStrategy::Sketch)) {
      throw std::invalid_argument("unknown strategy value " +
                                  std::to_string(msg.params.strategy));
    }
    session = session_for(msg.params);
    plan = session.plan(api::Problem::pauli(msg.records));
  } catch (const std::exception& error) {
    send_error(conn, msg.id, ServiceErrorCode::BadRequest, error.what());
    return;
  }

  const std::uint64_t problem_hash =
      api::problem_fingerprint(msg.records, session.params());

  // Cache first: a hit costs no queue slot and no admission check.
  CacheEntry cached;
  if (cache_lookup(problem_hash, cached)) {
    stat_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    send_result(conn, msg.id, cached, /*cache_hit=*/true, /*seconds=*/0.0);
    return;
  }

  // Admission: projected peak vs the server-wide budget. The projection
  // reuses the planner's own CSR model; plans that never build a CSR
  // (fused/sketch) are charged the frontier floor instead, so a client can
  // shrink an over-budget request into an admissible one by picking a
  // streaming/fused strategy or setting a per-request budget.
  bool admission_degraded = false;
  std::string admission_degraded_reason;
  if (config_.memory_budget_bytes > 0) {
    std::size_t projected = projected_peak_bytes(plan, msg.records);
    if (projected > config_.memory_budget_bytes &&
        config_.admission == AdmissionPolicy::Degrade) {
      // Degradation ladder: re-plan down the strategy rungs until one fits.
      // Determinism makes the downgraded coloring identical, so the client
      // loses only speed — the downgrade is reported, not hidden.
      const std::size_t original_projected = projected;
      const std::string original_summary = plan.summary();
      for (const api::ExecutionStrategy rung :
           {api::ExecutionStrategy::Fused, api::ExecutionStrategy::Sketch}) {
        if (static_cast<api::ExecutionStrategy>(msg.params.strategy) == rung) {
          continue;  // already on this rung
        }
        RemoteParams downgraded = msg.params;
        downgraded.strategy = static_cast<std::uint8_t>(rung);
        try {
          api::Session rung_session = session_for(downgraded);
          api::SolvePlan rung_plan =
              rung_session.plan(api::Problem::pauli(msg.records));
          const std::size_t rung_projected =
              projected_peak_bytes(rung_plan, msg.records);
          if (rung_projected > config_.memory_budget_bytes) continue;
          admission_degraded = true;
          admission_degraded_reason =
              "admission degraded plan (" + original_summary + ", projected " +
              std::to_string(original_projected) + " bytes over budget " +
              std::to_string(config_.memory_budget_bytes) + ") to " +
              rung_plan.summary();
          msg.params = downgraded;
          plan = rung_plan;
          projected = rung_projected;
          break;
        } catch (const std::exception&) {
          continue;  // rung not viable for this problem; try the next
        }
      }
    }
    if (projected > config_.memory_budget_bytes) {
      stat_rejected_over_budget_.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, msg.id, ServiceErrorCode::OverBudget,
                 "projected peak " + std::to_string(projected) +
                     " bytes exceeds server budget " +
                     std::to_string(config_.memory_budget_bytes) +
                     " bytes (plan: " + plan.summary() + ")");
      return;
    }
  }

  auto request = std::make_shared<Request>();
  request->msg = std::move(msg);
  request->problem_hash = problem_hash;
  request->conn = conn;
  request->degraded = admission_degraded;
  request->degraded_reason = std::move(admission_degraded_reason);
  if (request->msg.params.deadline_ms > 0) {
    request->has_deadline = true;
    request->deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(request->msg.params.deadline_ms);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (pending_.size() >= config_.max_queue) {
      stat_rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request->msg.id, ServiceErrorCode::QueueFull,
                 "pending queue full (" + std::to_string(config_.max_queue) +
                     " requests)");
      return;
    }
    request->seq = next_seq_++;
    pending_.push_back(std::move(request));
  }
  queue_cv_.notify_one();
}

void Server::handle_cancel(const std::shared_ptr<ClientConn>& conn,
                           std::uint64_t id) {
  std::shared_ptr<Request> queued;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    const auto it = std::find_if(
        pending_.begin(), pending_.end(), [&](const auto& request) {
          return request->conn == conn && request->msg.id == id;
        });
    if (it != pending_.end()) {
      queued = *it;
      pending_.erase(it);  // frees the queue slot immediately
    } else {
      for (const auto& request : active_) {
        if (request->conn == conn && request->msg.id == id) {
          request->cancelled.store(true, std::memory_order_relaxed);
          request->stop.request_stop();
          // The solver thread answers when SolveCancelled unwinds.
          return;
        }
      }
    }
  }
  if (queued) {
    stat_cancelled_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, id, ServiceErrorCode::Cancelled,
               "cancelled while queued");
  }
  // Unknown id: the solve already completed — the result frame wins the
  // race, which is the documented client contract.
}

// ---------------------------------------------------------------------------
// Solve.

std::size_t Server::pick_next_locked() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < pending_.size(); ++i) {
    const auto& a = *pending_[i];
    const auto& b = *pending_[best];
    if (a.msg.priority != b.msg.priority) {
      if (a.msg.priority > b.msg.priority) best = i;
      continue;
    }
    const auto dispatched = [this](const std::string& tenant) {
      const auto it = tenant_dispatched_.find(tenant);
      return it == tenant_dispatched_.end() ? std::uint64_t{0} : it->second;
    };
    const std::uint64_t da = dispatched(a.msg.tenant);
    const std::uint64_t db = dispatched(b.msg.tenant);
    if (da != db) {
      if (da < db) best = i;
      continue;
    }
    if (a.seq < b.seq) best = i;
  }
  return best;
}

void Server::solver_loop() {
  while (true) {
    std::shared_ptr<Request> request;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      const std::size_t index = pick_next_locked();
      request = pending_[index];
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
      ++tenant_dispatched_[request->msg.tenant];
      active_.push_back(request);
    }
    execute(request);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      active_.erase(std::remove(active_.begin(), active_.end(), request),
                    active_.end());
    }
  }
}

void Server::execute(const std::shared_ptr<Request>& request) {
  const auto& conn = request->conn;
  if (!conn->open.load(std::memory_order_relaxed)) return;  // client gone

  // A hit that materialized while this request sat in the queue: serve it
  // without re-solving (two identical cold requests race; the loser rides
  // the winner's entry).
  CacheEntry cached;
  if (cache_lookup(request->problem_hash, cached)) {
    stat_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    send_result(conn, request->msg.id, cached, /*cache_hit=*/true, 0.0);
    return;
  }

  // A request that spent its whole deadline in the queue never starts.
  if (request->has_deadline &&
      std::chrono::steady_clock::now() >= request->deadline) {
    stat_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, request->msg.id, ServiceErrorCode::DeadlineExceeded,
               "deadline of " +
                   std::to_string(request->msg.params.deadline_ms) +
                   "ms expired while queued");
    return;
  }

  api::SolveOptions options;
  options.stop = request->stop.token();
  const bool forward_progress = request->msg.params.want_progress;
  if (forward_progress || request->has_deadline) {
    const std::uint64_t id = request->msg.id;
    auto conn_weak = std::weak_ptr<ClientConn>(conn);
    options.progress = [request, id, conn_weak,
                        forward_progress](const core::ProgressEvent& event) {
      // Deadline check rides the progress stream: every stage boundary
      // compares against the armed deadline and trips the StopSource, which
      // the solve's existing cancellation points honor.
      if (request->has_deadline &&
          !request->deadline_hit.load(std::memory_order_relaxed) &&
          std::chrono::steady_clock::now() >= request->deadline) {
        request->deadline_hit.store(true, std::memory_order_relaxed);
        request->stop.request_stop();
      }
      if (!forward_progress) return;
      // Iteration granularity only — chunk/bucket events would flood the
      // socket on large problems.
      if (event.stage != core::ProgressStage::IterationDone) return;
      const auto client = conn_weak.lock();
      if (!client) return;
      ProgressMsg msg;
      msg.id = id;
      msg.stage = static_cast<std::uint8_t>(event.stage);
      msg.iteration = event.iteration;
      msg.n_active = event.n_active;
      msg.colored = event.colored;
      msg.uncolored = event.uncolored;
      msg.conflict_edges = event.conflict_edges;
      client->send(FrameType::Progress, encode_progress(msg));
    };
  }

  const auto start = std::chrono::steady_clock::now();
  try {
    api::Session session = session_for(request->msg.params);
    const api::SolveReport report =
        session.solve(api::Problem::pauli(request->msg.records), options);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    CacheEntry entry;
    entry.problem_hash = report.problem_hash;
    entry.colors = report.result.colors;
    entry.coloring_hash = util::coloring_fingerprint(entry.colors);
    entry.num_colors = report.result.num_colors;
    entry.palette_total = report.result.palette_total;
    entry.iterations =
        static_cast<std::uint32_t>(report.result.iterations.size());
    stat_cache_misses_.fetch_add(1, std::memory_order_relaxed);
    stat_completed_.fetch_add(1, std::memory_order_relaxed);

    // Degradation from either layer — the admission ladder or a mid-solve
    // fallback (e.g. ENOSPC spill → in-memory) — is reported to the client.
    const bool degraded = request->degraded || report.result.degraded;
    std::string degraded_reason = request->degraded_reason;
    if (report.result.degraded && !report.result.degraded_reason.empty()) {
      if (!degraded_reason.empty()) degraded_reason += "; ";
      degraded_reason += report.result.degraded_reason;
    }
    if (degraded) stat_degraded_.fetch_add(1, std::memory_order_relaxed);

    // Insert BEFORE replying: a client that resubmits the moment it sees
    // the result must hit the cache, not race past it.
    cache_insert(entry);
    send_result(conn, request->msg.id, entry, /*cache_hit=*/false,
                elapsed.count(), degraded, degraded_reason);
  } catch (const core::SolveCancelled&) {
    if (request->deadline_hit.load(std::memory_order_relaxed) &&
        !request->cancelled.load(std::memory_order_relaxed)) {
      stat_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      send_error(conn, request->msg.id, ServiceErrorCode::DeadlineExceeded,
                 "deadline of " +
                     std::to_string(request->msg.params.deadline_ms) +
                     "ms exceeded mid-solve");
      return;
    }
    stat_cancelled_.fetch_add(1, std::memory_order_relaxed);
    send_error(conn, request->msg.id, ServiceErrorCode::Cancelled,
               stopping_.load(std::memory_order_acquire)
                   ? "server shutting down"
                   : "cancelled mid-solve");
  } catch (const api::ApiError& error) {
    send_error(conn, request->msg.id, ServiceErrorCode::BadRequest,
               error.what());
  } catch (const std::system_error& error) {
    if (error.code().value() == ENOSPC) {
      // Unrecoverable storage exhaustion (the in-memory fallback only
      // covers the budgeted-spill path): structured and retryable.
      send_error(conn, request->msg.id, ServiceErrorCode::StorageFull,
                 std::string("spill storage full: ") + error.what());
    } else {
      send_error(conn, request->msg.id, ServiceErrorCode::Internal,
                 error.what());
    }
  } catch (const std::exception& error) {
    send_error(conn, request->msg.id, ServiceErrorCode::Internal,
               error.what());
  }
}

// ---------------------------------------------------------------------------
// Cache.

bool Server::cache_lookup(std::uint64_t problem_hash, CacheEntry& out) {
  if (config_.cache_capacity == 0) return false;
  std::lock_guard<std::mutex> lock(cache_mu_);
  const auto it = cache_index_.find(problem_hash);
  if (it == cache_index_.end()) return false;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  out = *it->second;
  return true;
}

void Server::cache_insert(CacheEntry entry) {
  if (config_.cache_capacity == 0) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  const auto it = cache_index_.find(entry.problem_hash);
  if (it != cache_index_.end()) {
    // Determinism makes both results identical; keep the incumbent hot.
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  while (cache_lru_.size() >= config_.cache_capacity) {
    cache_index_.erase(cache_lru_.back().problem_hash);
    cache_lru_.pop_back();
  }
  cache_lru_.push_front(std::move(entry));
  cache_index_[cache_lru_.front().problem_hash] = cache_lru_.begin();
}

// ---------------------------------------------------------------------------
// Replies.

void Server::send_error(const std::shared_ptr<ClientConn>& conn,
                        std::uint64_t id, ServiceErrorCode code,
                        const std::string& message) {
  ErrorMsg msg;
  msg.id = id;
  msg.code = code;
  msg.message = message;
  conn->send(FrameType::Error, encode_error(msg));
}

void Server::send_result(const std::shared_ptr<ClientConn>& conn,
                         std::uint64_t id, const CacheEntry& entry,
                         bool cache_hit, double seconds, bool degraded,
                         const std::string& degraded_reason) {
  ResultMsg msg;
  msg.id = id;
  msg.cache_hit = cache_hit;
  msg.degraded = degraded;
  msg.degraded_reason = degraded_reason;
  msg.problem_hash = entry.problem_hash;
  msg.coloring_hash = entry.coloring_hash;
  msg.num_colors = entry.num_colors;
  msg.palette_total = entry.palette_total;
  msg.iterations = entry.iterations;
  msg.seconds = seconds;
  msg.colors = entry.colors;
  conn->send(FrameType::Result, encode_result(msg));
}

}  // namespace picasso::service
