#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace picasso::service {

Client Client::connect(const std::string& address) {
  return Client(Connection::connect(address));
}

RemoteResult Client::solve(const pauli::PauliSet& records,
                           const RemoteParams& params,
                           const std::string& tenant, std::uint32_t priority,
                           const ProgressHandler& on_progress) {
  SolveRequestMsg msg;
  msg.id = next_id_++;
  msg.tenant = tenant;
  msg.priority = priority;
  msg.params = params;
  msg.params.want_progress = on_progress != nullptr;
  // The wire message borrows the caller's records for encoding only.
  msg.records = records;

  inflight_id_.store(msg.id, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    conn_.write_frame(FrameType::SolveRequest, encode_solve_request(msg));
  }

  RemoteResult outcome;
  Frame frame;
  while (true) {
    if (!conn_.read_frame(frame)) {
      inflight_id_.store(0, std::memory_order_release);
      throw WireError("server closed the connection before replying");
    }
    switch (frame.type) {
      case FrameType::Progress: {
        const ProgressMsg progress = decode_progress(frame.payload);
        if (progress.id == msg.id && on_progress) on_progress(progress);
        break;
      }
      case FrameType::Result: {
        ResultMsg result = decode_result(frame.payload);
        if (result.id != msg.id) break;  // stale frame from a past request
        outcome.ok = true;
        outcome.result = std::move(result);
        inflight_id_.store(0, std::memory_order_release);
        return outcome;
      }
      case FrameType::Error: {
        const ErrorMsg error = decode_error(frame.payload);
        if (error.id != msg.id && error.id != 0) break;
        outcome.ok = false;
        outcome.error_code = error.code;
        outcome.error_message = error.message;
        inflight_id_.store(0, std::memory_order_release);
        return outcome;
      }
      default:
        break;  // StatsReply for an interleaved stats() is impossible here
                // (one request in flight per client), ignore defensively
    }
  }
}

void Client::request_cancel() {
  const std::uint64_t id = inflight_id_.load(std::memory_order_acquire);
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(write_mu_);
  conn_.write_frame(FrameType::Cancel, encode_cancel(id));
}

StatsMsg Client::stats() {
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    conn_.write_frame(FrameType::Stats, {});
  }
  Frame frame;
  while (true) {
    if (!conn_.read_frame(frame)) {
      throw WireError("server closed the connection before stats reply");
    }
    if (frame.type == FrameType::StatsReply) {
      return decode_stats(frame.payload);
    }
    // Skip any stale progress frames from a cancelled request.
  }
}

void Client::shutdown_server() {
  std::lock_guard<std::mutex> lock(write_mu_);
  conn_.write_frame(FrameType::Shutdown, {});
}

namespace {

/// splitmix64 — a tiny, seedable mixer; good enough to decorrelate backoff
/// sleeps without dragging in <random> state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t backoff_ms_for(const RetryPolicy& policy,
                             std::uint32_t attempt) {
  double backoff = static_cast<double>(policy.initial_backoff_ms);
  for (std::uint32_t i = 1; i < attempt; ++i) backoff *= policy.multiplier;
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff_ms));
  if (policy.jitter_pct > 0) {
    const std::uint64_t r = mix64(policy.jitter_seed ^ attempt);
    const std::uint64_t span = 2ull * policy.jitter_pct + 1;
    const double pct =
        static_cast<double>(100 - policy.jitter_pct + (r % span)) / 100.0;
    backoff *= pct;
  }
  return static_cast<std::uint64_t>(backoff);
}

}  // namespace

RemoteResult solve_with_retry(const std::string& address,
                              const pauli::PauliSet& records,
                              const RemoteParams& params,
                              const RetryPolicy& policy,
                              const std::string& tenant,
                              std::uint32_t priority,
                              const ProgressHandler& on_progress) {
  const std::uint32_t attempts = std::max(1u, policy.max_attempts);
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      Client client = Client::connect(address);
      RemoteResult outcome =
          client.solve(records, params, tenant, priority, on_progress);
      outcome.attempts = attempt;
      if (outcome.ok || !is_retryable(outcome.error_code) ||
          attempt >= attempts) {
        return outcome;
      }
    } catch (const WireError&) {
      // Transport failure: connect refused, torn mid-frame, timed out.
      // The request is idempotent (result-cache contract), so retry.
      if (attempt >= attempts) throw;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff_ms_for(policy, attempt)));
  }
}

}  // namespace picasso::service
