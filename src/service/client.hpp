#pragma once
// Blocking client for the coloring service.
//
// One Client wraps one connection and drives one request at a time (the
// VQE-loop shape: submit, stream progress, read the result, repeat).
// request_cancel() is the only member safe to call concurrently with
// solve() — it is how a progress callback (or another thread) aborts the
// in-flight request; the solve then returns the server's Error(Cancelled).

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "pauli/pauli_set.hpp"
#include "service/wire.hpp"

namespace picasso::service {

/// Outcome of one remote solve: either `ok` with the Result frame's
/// contents, or the structured error the server answered with.
struct RemoteResult {
  bool ok = false;
  ServiceErrorCode error_code = ServiceErrorCode::Internal;
  std::string error_message;
  ResultMsg result;  // meaningful only when ok
  /// Attempts consumed (1 = first try succeeded). Only solve_with_retry
  /// ever reports more than 1.
  std::uint32_t attempts = 1;
};

/// Exponential backoff with deterministic jitter for solve_with_retry.
///
/// Retrying a solve is safe because requests are idempotent: the server's
/// result cache keys on the canonical problem fingerprint, so a retry of a
/// request whose first attempt actually completed (e.g. the reply was lost)
/// is answered from cache with the bit-identical coloring.
struct RetryPolicy {
  /// Total tries including the first (1 = no retry).
  std::uint32_t max_attempts = 3;
  std::uint32_t initial_backoff_ms = 50;
  double multiplier = 2.0;
  std::uint32_t max_backoff_ms = 2000;
  /// Each sleep is scaled by a factor drawn from [100-jitter_pct,
  /// 100+jitter_pct] percent, derived deterministically from jitter_seed
  /// and the attempt number (reproducible tests, decorrelated clients).
  std::uint32_t jitter_pct = 20;
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

using ProgressHandler = std::function<void(const ProgressMsg&)>;

class Client {
 public:
  /// Connects to "unix:/path" or "tcp:host:port"; throws WireError.
  static Client connect(const std::string& address);

  // Pinned in place (mutex + atomic members); connect() hands the instance
  // back through guaranteed copy elision.
  Client(Client&&) = delete;
  Client& operator=(Client&&) = delete;

  /// Submits `records` and blocks until the server answers with Result or
  /// Error. Progress frames (requested iff `on_progress` is set) invoke the
  /// handler on this thread as they arrive. Throws WireError only for
  /// transport failure — protocol-level rejections come back structured.
  RemoteResult solve(const pauli::PauliSet& records, const RemoteParams& params,
                     const std::string& tenant = "", std::uint32_t priority = 0,
                     const ProgressHandler& on_progress = nullptr);

  /// Cancels the request currently inside solve(). Thread-safe; a no-op
  /// when nothing is in flight. The cancelled solve() still returns — with
  /// the server's Error(Cancelled), or with the result when the solve won
  /// the race.
  void request_cancel();

  /// Server-side counters (admission, cache, queue depths, live spills).
  StatsMsg stats();

  /// Asks the server to begin a clean shutdown (drains, answers queued
  /// requests with ShuttingDown, exits). Fire-and-forget.
  void shutdown_server();

 private:
  explicit Client(Connection conn) : conn_(std::move(conn)) {}

  Connection conn_;
  std::mutex write_mu_;  // serializes frames against request_cancel()
  std::uint64_t next_id_ = 1;
  std::atomic<std::uint64_t> inflight_id_{0};
};

/// Submits `records` with retry: each attempt opens a fresh connection, so
/// both transport failures (connect refused, torn connection, WireTimeout)
/// and retryable structured errors (QueueFull, StorageFull — see
/// is_retryable) are retried with exponential backoff + jitter per
/// `policy`. Non-retryable structured errors and success return
/// immediately. Throws the last transport error once attempts run out.
RemoteResult solve_with_retry(const std::string& address,
                              const pauli::PauliSet& records,
                              const RemoteParams& params,
                              const RetryPolicy& policy,
                              const std::string& tenant = "",
                              std::uint32_t priority = 0,
                              const ProgressHandler& on_progress = nullptr);

}  // namespace picasso::service
