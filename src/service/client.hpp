#pragma once
// Blocking client for the coloring service.
//
// One Client wraps one connection and drives one request at a time (the
// VQE-loop shape: submit, stream progress, read the result, repeat).
// request_cancel() is the only member safe to call concurrently with
// solve() — it is how a progress callback (or another thread) aborts the
// in-flight request; the solve then returns the server's Error(Cancelled).

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "pauli/pauli_set.hpp"
#include "service/wire.hpp"

namespace picasso::service {

/// Outcome of one remote solve: either `ok` with the Result frame's
/// contents, or the structured error the server answered with.
struct RemoteResult {
  bool ok = false;
  ServiceErrorCode error_code = ServiceErrorCode::Internal;
  std::string error_message;
  ResultMsg result;  // meaningful only when ok
};

using ProgressHandler = std::function<void(const ProgressMsg&)>;

class Client {
 public:
  /// Connects to "unix:/path" or "tcp:host:port"; throws WireError.
  static Client connect(const std::string& address);

  // Pinned in place (mutex + atomic members); connect() hands the instance
  // back through guaranteed copy elision.
  Client(Client&&) = delete;
  Client& operator=(Client&&) = delete;

  /// Submits `records` and blocks until the server answers with Result or
  /// Error. Progress frames (requested iff `on_progress` is set) invoke the
  /// handler on this thread as they arrive. Throws WireError only for
  /// transport failure — protocol-level rejections come back structured.
  RemoteResult solve(const pauli::PauliSet& records, const RemoteParams& params,
                     const std::string& tenant = "", std::uint32_t priority = 0,
                     const ProgressHandler& on_progress = nullptr);

  /// Cancels the request currently inside solve(). Thread-safe; a no-op
  /// when nothing is in flight. The cancelled solve() still returns — with
  /// the server's Error(Cancelled), or with the result when the solve won
  /// the race.
  void request_cancel();

  /// Server-side counters (admission, cache, queue depths, live spills).
  StatsMsg stats();

  /// Asks the server to begin a clean shutdown (drains, answers queued
  /// requests with ShuttingDown, exits). Fire-and-forget.
  void shutdown_server();

 private:
  explicit Client(Connection conn) : conn_(std::move(conn)) {}

  Connection conn_;
  std::mutex write_mu_;  // serializes frames against request_cancel()
  std::uint64_t next_id_ = 1;
  std::atomic<std::uint64_t> inflight_id_{0};
};

}  // namespace picasso::service
