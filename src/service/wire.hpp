#pragma once
// Wire protocol of the coloring service.
//
// Length-prefixed binary frames over a stream socket (Unix or TCP):
//
//     [u32 LE payload_len][u8 frame_type][payload_len bytes]
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern in a u64. Strings and blobs are u32-length-prefixed byte runs.
// The protocol is deliberately version-gated: every SolveRequest leads with
// kProtocolVersion and the server rejects mismatches with BadRequest
// instead of guessing.
//
// Frame flow: a client sends SolveRequest and then reads frames until it
// sees Result or Error for its request id — Progress frames may interleave
// (only when the request asked for them). Cancel may be written at any
// time; the server answers the cancelled request with Error(Cancelled).
// One connection may carry many requests; ids are client-chosen and echoed
// back, so responses are attributable even when they interleave.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/solve_control.hpp"
#include "pauli/pauli_set.hpp"

namespace picasso::service {

/// Version 2 added deadline_ms to SolveRequest, degradation info to Result,
/// and the fault-tolerance counters to StatsReply. Version-1 solve requests
/// are still accepted (deadline_ms = 0).
inline constexpr std::uint32_t kProtocolVersion = 2;
inline constexpr std::uint32_t kMinProtocolVersion = 1;

/// Hard cap on one frame's payload — a malformed or hostile length prefix
/// must not become a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

enum class FrameType : std::uint8_t {
  // client -> server
  SolveRequest = 1,
  Cancel = 2,
  Stats = 3,
  Shutdown = 4,
  // server -> client
  Progress = 10,
  Result = 11,
  Error = 12,
  StatsReply = 13,
};

/// Structured rejection codes — the machine-readable half of an Error
/// frame (the message half is for humans).
enum class ServiceErrorCode : std::uint8_t {
  BadRequest = 1,     // malformed frame / protocol mismatch / bad params
  OverBudget = 2,     // projected peak exceeds the server's global budget
  QueueFull = 3,      // bounded queue at capacity
  Cancelled = 4,         // client-initiated cancellation won
  ShuttingDown = 5,      // server is draining; request not accepted
  Internal = 6,          // solve threw something unexpected
  DeadlineExceeded = 7,  // the request's deadline_ms elapsed first
  StorageFull = 8,       // spill device full and no fallback was possible
};

/// Which codes a client may safely resubmit: the failure was about server
/// state at one moment, not about the request itself, and the
/// fingerprint-keyed result cache makes the retry idempotent.
inline bool is_retryable(ServiceErrorCode code) noexcept {
  return code == ServiceErrorCode::QueueFull ||
         code == ServiceErrorCode::StorageFull;
}

const char* to_string(ServiceErrorCode code) noexcept;

/// Malformed input while decoding a frame (truncated payload, bad string
/// length, protocol mismatch). The server maps it to Error(BadRequest);
/// the client surfaces it.
struct WireError : std::runtime_error {
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// A configured idle/io timeout elapsed. Subclassed so the server can tell
/// "stalled peer — drop it quietly" from "malformed or torn frame".
struct WireTimeout : WireError {
  explicit WireTimeout(const std::string& what) : WireError(what) {}
};

/// The peer vanished (EPIPE/ECONNRESET). A normal fact of life for a
/// server — clients crash or lose interest mid-reply — so it is counted in
/// stats, never treated as an error worth logging.
struct WireDisconnect : WireError {
  explicit WireDisconnect(const std::string& what) : WireError(what) {}
};

struct Frame {
  FrameType type = FrameType::Error;
  std::vector<std::uint8_t> payload;
};

// --------------------------------------------------------------------------
// Payload encoding.

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
    }
  }
  void u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
    }
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s);
  void bytes(const void* data, std::size_t len);

  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  explicit WireReader(const std::vector<std::uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<std::uint8_t> bytes();

  std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------------------------
// Messages.

/// Solve-relevant parameters a request carries. Deliberately the subset of
/// core::PicassoParams that travels well: hooks/devices/tracing stay
/// server-side concerns.
struct RemoteParams {
  double palette_percent = 12.5;
  double alpha = 2.0;
  std::uint64_t seed = 1;
  std::int32_t max_iterations = 64;
  std::uint8_t backend = 0;       // core::PauliBackend numeric value
  std::uint8_t strategy = 0;      // api::ExecutionStrategy numeric value
  std::uint64_t memory_budget_bytes = 0;
  bool want_progress = false;
  /// Wall-clock budget for the whole request measured from admission; the
  /// server answers Error(DeadlineExceeded) once it elapses (checked at
  /// iteration/bucket boundaries through the solve's stop token). 0 = none.
  std::uint64_t deadline_ms = 0;
};

struct SolveRequestMsg {
  std::uint64_t id = 0;
  std::string tenant;
  std::uint32_t priority = 0;  // higher runs first
  RemoteParams params;
  pauli::PauliSet records;
};

struct ProgressMsg {
  std::uint64_t id = 0;
  std::uint8_t stage = 0;  // core::ProgressStage numeric value
  std::int32_t iteration = 0;
  std::uint32_t n_active = 0;
  std::uint32_t colored = 0;
  std::uint32_t uncolored = 0;
  std::uint64_t conflict_edges = 0;
};

struct ResultMsg {
  std::uint64_t id = 0;
  bool cache_hit = false;
  std::uint64_t problem_hash = 0;
  std::uint64_t coloring_hash = 0;
  std::uint32_t num_colors = 0;
  std::uint32_t palette_total = 0;
  std::uint32_t iterations = 0;
  double seconds = 0.0;
  /// Graceful degradation report: the solve completed, but by a cheaper
  /// route than requested/planned (admission downgraded the strategy, or
  /// a spill ENOSPC forced an in-memory fallback).
  bool degraded = false;
  std::string degraded_reason;
  std::vector<std::uint32_t> colors;
};

struct ErrorMsg {
  std::uint64_t id = 0;  // 0 = not attributable to a request
  ServiceErrorCode code = ServiceErrorCode::Internal;
  std::string message;
};

struct StatsMsg {
  std::uint64_t received = 0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t rejected_over_budget = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t active = 0;
  std::uint64_t queued = 0;
  std::uint64_t spill_files_live = 0;
  // Fault-tolerance counters (protocol v2).
  std::uint64_t client_disconnects = 0;   // EPIPE/ECONNRESET on replies
  std::uint64_t idle_disconnects = 0;     // stalled peers reaped by timeout
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t degraded = 0;             // solves that completed degraded
  std::uint64_t orphan_spills_swept = 0;  // janitor removals at startup
};

std::vector<std::uint8_t> encode_solve_request(const SolveRequestMsg& msg);
SolveRequestMsg decode_solve_request(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_cancel(std::uint64_t id);
std::uint64_t decode_cancel(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_progress(const ProgressMsg& msg);
ProgressMsg decode_progress(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_result(const ResultMsg& msg);
ResultMsg decode_result(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_error(const ErrorMsg& msg);
ErrorMsg decode_error(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_stats(const StatsMsg& msg);
StatsMsg decode_stats(const std::vector<std::uint8_t>& payload);

// --------------------------------------------------------------------------
// Stream sockets. Address syntax: "unix:/path/to.sock" or "tcp:host:port"
// (tcp port 0 binds an ephemeral port; Listener::address() reports the
// actual one — how tests avoid port races).

/// Owning fd wrapper for one connected stream socket. Reads and writes are
/// whole-frame and retry EINTR/short transfers. Thread contract: one reader
/// thread; concurrent writers must serialize externally (Client and the
/// server's per-connection write mutex both do).
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection();
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  static Connection connect(const std::string& address);

  bool valid() const noexcept { return fd_ >= 0; }

  /// Millisecond timeouts so a stalled peer can never pin a thread:
  /// `idle_ms` bounds the wait for the NEXT frame to start (poll before the
  /// length prefix), `io_ms` bounds every subsequent send/recv making
  /// progress mid-frame (SO_RCVTIMEO/SO_SNDTIMEO). Expiry throws
  /// WireTimeout. -1 (the default) blocks forever — the client-side
  /// behavior, where a solve legitimately takes as long as it takes.
  void set_timeouts(int idle_ms, int io_ms) noexcept;

  /// False on clean EOF at a frame boundary; throws WireError on a torn
  /// frame or socket error, WireTimeout when a configured timeout elapses.
  bool read_frame(Frame& frame);
  void write_frame(FrameType type, const std::vector<std::uint8_t>& payload);

  /// Shuts down both directions — unblocks a reader stuck in read_frame on
  /// another thread (used for server-initiated close).
  void shutdown() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
  int idle_timeout_ms_ = -1;
};

class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  static Listener listen(const std::string& address);

  /// Blocks for the next client; invalid Connection when the listener was
  /// closed under it (the accept loop's shutdown signal).
  Connection accept();

  /// The bound address in the same syntax listen() takes — for tcp with
  /// port 0 this carries the kernel-assigned port.
  const std::string& address() const noexcept { return address_; }

  /// Wakes a thread blocked in accept() (it returns an invalid Connection)
  /// WITHOUT releasing the fd — the owner joins the accept thread first and
  /// close()s after, so the fd number cannot be recycled under the racer.
  void shutdown() noexcept;

  void close() noexcept;
  bool valid() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string address_;
  std::string unix_path_;  // unlinked on close
};

}  // namespace picasso::service
