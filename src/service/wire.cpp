#include "service/wire.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/failpoint.hpp"

namespace picasso::service {

const char* to_string(ServiceErrorCode code) noexcept {
  switch (code) {
    case ServiceErrorCode::BadRequest: return "bad-request";
    case ServiceErrorCode::OverBudget: return "over-budget";
    case ServiceErrorCode::QueueFull: return "queue-full";
    case ServiceErrorCode::Cancelled: return "cancelled";
    case ServiceErrorCode::ShuttingDown: return "shutting-down";
    case ServiceErrorCode::Internal: return "internal";
    case ServiceErrorCode::DeadlineExceeded: return "deadline-exceeded";
    case ServiceErrorCode::StorageFull: return "storage-full";
  }
  return "?";
}

// --------------------------------------------------------------------------
// WireWriter / WireReader.

void WireWriter::str(const std::string& s) {
  if (s.size() > kMaxFrameBytes) throw WireError("string too long for frame");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::bytes(const void* data, std::size_t len) {
  if (len > kMaxFrameBytes) throw WireError("blob too long for frame");
  u32(static_cast<std::uint32_t>(len));
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

void WireReader::need(std::size_t n) const {
  if (size_ - pos_ < n) throw WireError("truncated frame payload");
}

std::uint8_t WireReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
  }
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
  }
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

std::vector<std::uint8_t> WireReader::bytes() {
  const std::uint32_t len = u32();
  need(len);
  std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

// --------------------------------------------------------------------------
// Messages.

std::vector<std::uint8_t> encode_solve_request(const SolveRequestMsg& msg) {
  WireWriter w;
  w.u32(kProtocolVersion);
  w.u64(msg.id);
  w.str(msg.tenant);
  w.u32(msg.priority);
  w.f64(msg.params.palette_percent);
  w.f64(msg.params.alpha);
  w.u64(msg.params.seed);
  w.u32(static_cast<std::uint32_t>(msg.params.max_iterations));
  w.u8(msg.params.backend);
  w.u8(msg.params.strategy);
  w.u64(msg.params.memory_budget_bytes);
  w.u8(msg.params.want_progress ? 1 : 0);
  w.u64(msg.params.deadline_ms);
  std::ostringstream blob;
  msg.records.save_binary(blob);
  const std::string& encoded = blob.str();
  w.bytes(encoded.data(), encoded.size());
  return w.take();
}

SolveRequestMsg decode_solve_request(
    const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  const std::uint32_t version = r.u32();
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    throw WireError("protocol version " + std::to_string(version) +
                    " outside supported range [" +
                    std::to_string(kMinProtocolVersion) + ", " +
                    std::to_string(kProtocolVersion) + "]");
  }
  SolveRequestMsg msg;
  msg.id = r.u64();
  msg.tenant = r.str();
  msg.priority = r.u32();
  msg.params.palette_percent = r.f64();
  msg.params.alpha = r.f64();
  msg.params.seed = r.u64();
  msg.params.max_iterations = static_cast<std::int32_t>(r.u32());
  msg.params.backend = r.u8();
  msg.params.strategy = r.u8();
  msg.params.memory_budget_bytes = r.u64();
  msg.params.want_progress = r.u8() != 0;
  // deadline_ms joined in v2; v1 requests simply have no deadline.
  msg.params.deadline_ms = version >= 2 ? r.u64() : 0;
  const std::vector<std::uint8_t> blob = r.bytes();
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
  try {
    msg.records = pauli::PauliSet::load_binary(in);
  } catch (const std::exception& error) {
    throw WireError(std::string("bad Pauli payload: ") + error.what());
  }
  return msg;
}

std::vector<std::uint8_t> encode_cancel(std::uint64_t id) {
  WireWriter w;
  w.u64(id);
  return w.take();
}

std::uint64_t decode_cancel(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  return r.u64();
}

std::vector<std::uint8_t> encode_progress(const ProgressMsg& msg) {
  WireWriter w;
  w.u64(msg.id);
  w.u8(msg.stage);
  w.u32(static_cast<std::uint32_t>(msg.iteration));
  w.u32(msg.n_active);
  w.u32(msg.colored);
  w.u32(msg.uncolored);
  w.u64(msg.conflict_edges);
  return w.take();
}

ProgressMsg decode_progress(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  ProgressMsg msg;
  msg.id = r.u64();
  msg.stage = r.u8();
  msg.iteration = static_cast<std::int32_t>(r.u32());
  msg.n_active = r.u32();
  msg.colored = r.u32();
  msg.uncolored = r.u32();
  msg.conflict_edges = r.u64();
  return msg;
}

std::vector<std::uint8_t> encode_result(const ResultMsg& msg) {
  WireWriter w;
  w.u64(msg.id);
  w.u8(msg.cache_hit ? 1 : 0);
  w.u64(msg.problem_hash);
  w.u64(msg.coloring_hash);
  w.u32(msg.num_colors);
  w.u32(msg.palette_total);
  w.u32(msg.iterations);
  w.f64(msg.seconds);
  w.u8(msg.degraded ? 1 : 0);
  w.str(msg.degraded_reason);
  w.u32(static_cast<std::uint32_t>(msg.colors.size()));
  for (std::uint32_t c : msg.colors) w.u32(c);
  return w.take();
}

ResultMsg decode_result(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  ResultMsg msg;
  msg.id = r.u64();
  msg.cache_hit = r.u8() != 0;
  msg.problem_hash = r.u64();
  msg.coloring_hash = r.u64();
  msg.num_colors = r.u32();
  msg.palette_total = r.u32();
  msg.iterations = r.u32();
  msg.seconds = r.f64();
  msg.degraded = r.u8() != 0;
  msg.degraded_reason = r.str();
  const std::uint32_t n = r.u32();
  if (static_cast<std::size_t>(n) * 4 > r.remaining()) {
    throw WireError("result color count exceeds payload");
  }
  msg.colors.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) msg.colors.push_back(r.u32());
  return msg;
}

std::vector<std::uint8_t> encode_error(const ErrorMsg& msg) {
  WireWriter w;
  w.u64(msg.id);
  w.u8(static_cast<std::uint8_t>(msg.code));
  w.str(msg.message);
  return w.take();
}

ErrorMsg decode_error(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  ErrorMsg msg;
  msg.id = r.u64();
  msg.code = static_cast<ServiceErrorCode>(r.u8());
  msg.message = r.str();
  return msg;
}

std::vector<std::uint8_t> encode_stats(const StatsMsg& msg) {
  WireWriter w;
  w.u64(msg.received);
  w.u64(msg.completed);
  w.u64(msg.cache_hits);
  w.u64(msg.cache_misses);
  w.u64(msg.rejected_over_budget);
  w.u64(msg.rejected_queue_full);
  w.u64(msg.cancelled);
  w.u64(msg.active);
  w.u64(msg.queued);
  w.u64(msg.spill_files_live);
  w.u64(msg.client_disconnects);
  w.u64(msg.idle_disconnects);
  w.u64(msg.deadline_exceeded);
  w.u64(msg.degraded);
  w.u64(msg.orphan_spills_swept);
  return w.take();
}

StatsMsg decode_stats(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  StatsMsg msg;
  msg.received = r.u64();
  msg.completed = r.u64();
  msg.cache_hits = r.u64();
  msg.cache_misses = r.u64();
  msg.rejected_over_budget = r.u64();
  msg.rejected_queue_full = r.u64();
  msg.cancelled = r.u64();
  msg.active = r.u64();
  msg.queued = r.u64();
  msg.spill_files_live = r.u64();
  msg.client_disconnects = r.u64();
  msg.idle_disconnects = r.u64();
  msg.deadline_exceeded = r.u64();
  msg.degraded = r.u64();
  msg.orphan_spills_swept = r.u64();
  return msg;
}

// --------------------------------------------------------------------------
// Sockets.

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw WireError(what + ": " + std::strerror(errno));
}

struct ParsedAddress {
  bool is_unix = false;
  std::string path;  // unix
  std::string host;  // tcp
  std::uint16_t port = 0;
};

ParsedAddress parse_address(const std::string& address) {
  ParsedAddress parsed;
  if (address.rfind("unix:", 0) == 0) {
    parsed.is_unix = true;
    parsed.path = address.substr(5);
    if (parsed.path.empty()) throw WireError("empty unix socket path");
    if (parsed.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw WireError("unix socket path too long: " + parsed.path);
    }
    return parsed;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      throw WireError("tcp address must be tcp:HOST:PORT, got " + address);
    }
    parsed.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || port > 65535) {
      throw WireError("bad tcp port '" + port_str + "'");
    }
    parsed.port = static_cast<std::uint16_t>(port);
    return parsed;
  }
  throw WireError("address must start with unix: or tcp:, got " + address);
}

void write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    // Failpoint "wire.send": error injects a reset-like failure, delay
    // simulates a slow peer, short:N splits the transfer (exercising this
    // loop exactly like a kernel short write would).
    std::size_t attempt = len;
    try {
      // max(1, ...): a zero-length clamp would make send() a no-op loop.
      attempt = std::max<std::size_t>(
          1, PICASSO_FAILPOINT_CLAMP("wire.send", len));
    } catch (const util::InjectedFault& fault) {
      throw WireError(fault.what());
    }
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a process kill.
    const ssize_t n = ::send(fd, p, attempt, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expiry — the peer stopped draining its socket.
        throw WireTimeout("send timed out (peer not reading)");
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        throw WireDisconnect(std::string("peer gone: ") +
                             std::strerror(errno));
      }
      throw_errno("send");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// True on full read; false on clean EOF before the first byte.
bool read_exact(int fd, void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    std::size_t attempt = len - got;
    try {
      // max(1, ...): recv(fd, p, 0) returning 0 would read as EOF.
      attempt = std::max<std::size_t>(
          1, PICASSO_FAILPOINT_CLAMP("wire.recv", len - got));
    } catch (const util::InjectedFault& fault) {
      throw WireError(fault.what());
    }
    const ssize_t n = ::recv(fd, p + got, attempt, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expiry — the peer stalled mid-frame.
        throw WireTimeout("receive timed out mid-frame");
      }
      if (errno == ECONNRESET) {
        throw WireDisconnect("peer gone: connection reset");
      }
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;
      throw WireError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// Applies SO_RCVTIMEO/SO_SNDTIMEO; ms < 0 leaves the socket blocking.
void apply_io_timeout(int fd, int ms) noexcept {
  timeval tv{};
  if (ms >= 0) {
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      idle_timeout_ms_(std::exchange(other.idle_timeout_ms_, -1)) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    idle_timeout_ms_ = std::exchange(other.idle_timeout_ms_, -1);
  }
  return *this;
}

void Connection::set_timeouts(int idle_ms, int io_ms) noexcept {
  idle_timeout_ms_ = idle_ms;
  if (fd_ >= 0) apply_io_timeout(fd_, io_ms);
}

Connection Connection::connect(const std::string& address) {
  const ParsedAddress parsed = parse_address(address);
  if (parsed.is_unix) {
    // SOCK_CLOEXEC everywhere a service fd is born: a fork/exec from a
    // progress callback or signal handler must not inherit connections.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(unix)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, parsed.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      throw_errno("connect " + address);
    }
    return Connection(fd);
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(parsed.host.c_str(),
                               std::to_string(parsed.port).c_str(), &hints,
                               &results);
  if (rc != 0) {
    throw WireError("resolve " + parsed.host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) throw WireError("cannot connect to " + address);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Connection(fd);
}

bool Connection::read_frame(Frame& frame) {
  if (idle_timeout_ms_ >= 0) {
    // Bound the wait for the next frame to START; once bytes flow, the
    // per-recv SO_RCVTIMEO takes over. poll() rather than the socket
    // timeout so "peer idle between requests" and "peer stalled mid-frame"
    // stay separately tunable.
    pollfd p{};
    p.fd = fd_;
    p.events = POLLIN;
    int rc;
    do {
      rc = ::poll(&p, 1, idle_timeout_ms_);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) throw_errno("poll");
    if (rc == 0) {
      throw WireTimeout("idle timeout: no frame started within " +
                        std::to_string(idle_timeout_ms_) + "ms");
    }
  }
  std::uint8_t header[5];
  if (!read_exact(fd_, header, 4)) return false;  // clean EOF
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    throw WireError("frame of " + std::to_string(len) + " bytes exceeds cap");
  }
  if (!read_exact(fd_, header + 4, 1)) {
    throw WireError("connection closed mid-frame");
  }
  frame.type = static_cast<FrameType>(header[4]);
  frame.payload.resize(len);
  if (len > 0 && !read_exact(fd_, frame.payload.data(), len)) {
    throw WireError("connection closed mid-frame");
  }
  return true;
}

void Connection::write_frame(FrameType type,
                             const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw WireError("frame payload exceeds cap");
  }
  std::uint8_t header[5];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>((len >> (8 * i)) & 0xffu);
  }
  header[4] = static_cast<std::uint8_t>(type);
  write_all(fd_, header, 5);
  if (!payload.empty()) write_all(fd_, payload.data(), payload.size());
}

void Connection::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Connection::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      address_(std::move(other.address_)),
      unix_path_(std::move(other.unix_path_)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    address_ = std::move(other.address_);
    unix_path_ = std::move(other.unix_path_);
  }
  return *this;
}

Listener Listener::listen(const std::string& address) {
  const ParsedAddress parsed = parse_address(address);
  Listener listener;
  if (parsed.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket(unix)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, parsed.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(parsed.path.c_str());  // stale socket from a dead process
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      throw_errno("bind " + address);
    }
    if (::listen(fd, 64) < 0) {
      ::close(fd);
      throw_errno("listen " + address);
    }
    listener.fd_ = fd;
    listener.address_ = address;
    listener.unix_path_ = parsed.path;
    return listener;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(tcp)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(parsed.port);
  if (parsed.host == "*" || parsed.host == "0.0.0.0") {
    addr.sin_addr.s_addr = INADDR_ANY;
  } else if (::inet_pton(AF_INET, parsed.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw WireError("listen host must be an IPv4 literal or *, got " +
                    parsed.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind " + address);
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    throw_errno("listen " + address);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  listener.fd_ = fd;
  listener.address_ =
      "tcp:" + parsed.host + ":" + std::to_string(ntohs(bound.sin_port));
  return listener;
}

Connection Listener::accept() {
  while (true) {
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Connection(fd);
    }
    if (errno == EINTR) continue;
    return Connection();  // listener closed (EBADF/EINVAL) — shutdown path
  }
}

void Listener::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

}  // namespace picasso::service
