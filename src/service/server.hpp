#pragma once
// Multi-tenant coloring server.
//
// The paper's workload is VQE-shaped: the same molecules are re-grouped over
// and over by iterative quantum pipelines issuing many small, repeated,
// latency-sensitive requests. A Server owns, once per process, the resources
// the library otherwise creates per-solve — ONE runtime::ThreadPool, ONE
// util::MemoryRegistry budget (the process-global registry under a
// server-lifetime MemoryRunScope, so per-solve scopes nest as no-ops), and
// ONE managed spill directory — and feeds a bounded request queue through
// them:
//
//   * Admission control: each decoded request is planned (api::Session::plan)
//     and its projected peak — encoded input plus either the conflict-CSR
//     projection (materializing plans, core::projected_conflict_csr_bytes)
//     or the fused frontier floor — is weighed against the server's global
//     budget. A request that could never fit is rejected with a structured
//     Error(OverBudget) naming both numbers instead of OOMing the server;
//     a full queue rejects with Error(QueueFull).
//   * Fair-share scheduling: solver threads pick the highest priority first,
//     then the tenant with the fewest dispatched solves (round-robin across
//     tenants under equal priority), then FIFO.
//   * Result cache: an LRU keyed by the canonical problem fingerprint
//     (api::problem_fingerprint — packed symplectic planes + solve-relevant
//     params). A repeated molecule is answered immediately with the cached
//     coloring, bit-identical to a fresh solve by the library's determinism
//     contract (the service tests pin it).
//   * Cancellation: a Cancel frame removes a queued request (freeing its
//     slot) or trips the running solve's StopSource; either way the client
//     gets Error(Cancelled) and a cancelled budgeted solve removes its
//     spill file on unwind.
//
// Threading: one accept thread, one reader thread per connection, and
// config.max_active_solves solver threads. request_stop() is safe from any
// thread (including a reader handling a Shutdown frame) — it only signals;
// stop() joins.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/session.hpp"
#include "runtime/thread_pool.hpp"
#include "service/wire.hpp"
#include "util/memory.hpp"

namespace picasso::service {

/// What admission does with a request whose projected peak exceeds the
/// server budget.
enum class AdmissionPolicy : std::uint8_t {
  /// Answer Error(OverBudget) naming both numbers (the default).
  Reject = 0,
  /// Walk the plan down the degradation ladder — materialized → fused →
  /// sketch — and admit the first rung that fits, reporting the downgrade
  /// in the result's `degraded` fields. Rejects only when even the sketch
  /// frontier cannot fit.
  Degrade = 1,
};

struct ServerConfig {
  /// "unix:/path/to.sock" or "tcp:host:port" (port 0 = ephemeral; read the
  /// actual one back from Server::address()).
  std::string listen = "tcp:127.0.0.1:0";
  /// Global budget over every concurrent solve (0 = unlimited). Installed
  /// on util::global_memory() for the server's lifetime and enforced at
  /// admission via the planner's projections.
  std::size_t memory_budget_bytes = 0;
  /// Workers in the one shared pool (0 = hardware concurrency, 1 = serial
  /// sessions with no pool).
  std::uint32_t num_threads = 0;
  /// Solver threads — concurrent solves in flight.
  std::uint32_t max_active_solves = 2;
  /// Bounded pending queue; requests beyond it get Error(QueueFull).
  std::size_t max_queue = 64;
  /// Result-cache capacity in entries (0 disables caching).
  std::size_t cache_capacity = 128;
  /// Spill directory every session is pointed at ("" = system temp).
  std::string spill_dir;
  /// Base solve parameters; per-request RemoteParams overlay onto a copy.
  core::PicassoParams base_params;
  /// Over-budget handling: hard reject (default) or degrade the plan.
  AdmissionPolicy admission = AdmissionPolicy::Reject;
  /// Reader-side idle timeout: a connection with no request in flight that
  /// starts no frame within this window is reaped (counted in
  /// stats.idle_disconnects), so a stalled peer can never pin a reader
  /// thread. A client quietly waiting on its own queued/active solve is
  /// never reaped. -1 = wait forever.
  int idle_timeout_ms = -1;
  /// Per-syscall send/recv timeout on accepted connections (-1 = blocking
  /// forever). Bounds how long a mid-frame stall can hold a reader.
  int io_timeout_ms = -1;
};

class Server {
 public:
  Server() = default;
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and spawns the accept + solver threads. Throws
  /// WireError when the address cannot be bound.
  void start(const ServerConfig& config);

  /// The bound address (with the kernel-assigned port for tcp port 0).
  const std::string& address() const noexcept { return address_; }

  /// Signal-only shutdown: closes the listener, wakes every blocked thread,
  /// stops active solves and answers queued requests with ShuttingDown.
  /// Safe from any thread — never joins (a reader thread handling a
  /// Shutdown frame calls this on itself).
  void request_stop() noexcept;

  /// Blocks until request_stop() has been called (daemon main loop).
  void wait_until_stop_requested();

  /// request_stop() + join every thread + close every connection. Idempotent.
  void stop();

  bool running() const noexcept {
    return started_ && !stopping_.load(std::memory_order_acquire);
  }

  StatsMsg stats() const;

 private:
  struct ClientConn {
    Connection conn;
    std::mutex write_mu;
    std::atomic<bool> open{true};
    /// Server counter bumped when a reply write finds the peer gone
    /// (EPIPE/ECONNRESET) — benign, not an error.
    std::atomic<std::uint64_t>* disconnect_counter = nullptr;

    /// Serialized frame write; marks the connection closed on failure
    /// (peer hung up) instead of throwing into the solver.
    void send(FrameType type, const std::vector<std::uint8_t>& payload);
  };

  struct Request {
    std::uint64_t seq = 0;  // FIFO tiebreaker
    SolveRequestMsg msg;
    std::uint64_t problem_hash = 0;
    std::shared_ptr<ClientConn> conn;
    core::StopSource stop;  // armed at admission: Cancel reaches queued
                            // and running requests the same way
    std::atomic<bool> cancelled{false};
    /// Absolute deadline armed at admission when deadline_ms > 0; checked
    /// before dispatch and at every progress event during the solve.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::atomic<bool> deadline_hit{false};
    /// Set when Degrade admission walked this request down the ladder.
    bool degraded = false;
    std::string degraded_reason;
  };

  struct CacheEntry {
    std::uint64_t problem_hash = 0;
    std::uint64_t coloring_hash = 0;
    std::uint32_t num_colors = 0;
    std::uint32_t palette_total = 0;
    std::uint32_t iterations = 0;
    std::vector<std::uint32_t> colors;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<ClientConn> conn);
  void solver_loop();

  /// True when `conn` has a queued or active request — such a connection is
  /// legitimately quiet (waiting on its solve) and exempt from the idle
  /// timeout.
  bool conn_busy(const std::shared_ptr<ClientConn>& conn) const;

  void handle_solve_request(const std::shared_ptr<ClientConn>& conn,
                            const std::vector<std::uint8_t>& payload);
  void handle_cancel(const std::shared_ptr<ClientConn>& conn,
                     std::uint64_t id);

  /// Fair-share pick from pending_ (caller holds queue_mu_): highest
  /// priority, then fewest dispatched solves for the tenant, then seq.
  std::size_t pick_next_locked() const;

  void execute(const std::shared_ptr<Request>& request);

  /// Peak bytes this request is projected to need, by plan strategy.
  std::size_t projected_peak_bytes(const api::SolvePlan& plan,
                                   const pauli::PauliSet& set) const;

  api::Session session_for(const RemoteParams& params) const;

  bool cache_lookup(std::uint64_t problem_hash, CacheEntry& out);
  void cache_insert(CacheEntry entry);

  void send_error(const std::shared_ptr<ClientConn>& conn, std::uint64_t id,
                  ServiceErrorCode code, const std::string& message);
  void send_result(const std::shared_ptr<ClientConn>& conn, std::uint64_t id,
                   const CacheEntry& entry, bool cache_hit, double seconds,
                   bool degraded = false,
                   const std::string& degraded_reason = std::string());

  std::size_t live_spill_files() const;

  ServerConfig config_;
  std::string address_;
  bool started_ = false;

  Listener listener_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  /// Holds the global budget + rebased peaks for the server's lifetime;
  /// per-solve MemoryRunScopes nest inside it as no-ops.
  std::unique_ptr<util::MemoryRunScope> run_scope_;
  std::string spill_dir_;  // resolved (never empty once started)

  std::thread accept_thread_;
  std::vector<std::thread> solver_threads_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<ClientConn>> conns_;
  std::vector<std::thread> reader_threads_;

  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::vector<std::shared_ptr<Request>> pending_;
  std::vector<std::shared_ptr<Request>> active_;
  std::uint64_t next_seq_ = 0;
  /// Solves dispatched per tenant — the fair-share denominator.
  std::map<std::string, std::uint64_t> tenant_dispatched_;

  mutable std::mutex cache_mu_;
  std::list<CacheEntry> cache_lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator>
      cache_index_;

  // Stats counters (relaxed atomics; snapshot() assembles a StatsMsg).
  std::atomic<std::uint64_t> stat_received_{0};
  std::atomic<std::uint64_t> stat_completed_{0};
  std::atomic<std::uint64_t> stat_cache_hits_{0};
  std::atomic<std::uint64_t> stat_cache_misses_{0};
  std::atomic<std::uint64_t> stat_rejected_over_budget_{0};
  std::atomic<std::uint64_t> stat_rejected_queue_full_{0};
  std::atomic<std::uint64_t> stat_cancelled_{0};
  std::atomic<std::uint64_t> stat_client_disconnects_{0};
  std::atomic<std::uint64_t> stat_idle_disconnects_{0};
  std::atomic<std::uint64_t> stat_deadline_exceeded_{0};
  std::atomic<std::uint64_t> stat_degraded_{0};
  std::atomic<std::uint64_t> stat_orphans_swept_{0};
};

}  // namespace picasso::service
