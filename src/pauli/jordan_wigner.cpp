#include "pauli/jordan_wigner.hpp"

#include <stdexcept>

namespace picasso::pauli {

namespace {

/// Builds Z_0..Z_{p-1} O_p on n qubits.
PauliString z_prefix_string(std::uint32_t mode, std::size_t n, PauliOp op) {
  PauliString s(n);
  for (std::uint32_t k = 0; k < mode; ++k) s.set_op(k, PauliOp::Z);
  s.set_op(mode, op);
  return s;
}

PauliOperator jw_ladder_impl(std::uint32_t mode, std::size_t n, bool creation) {
  if (mode >= n) {
    throw std::invalid_argument("jordan_wigner: mode index out of range");
  }
  PauliOperator out(n);
  out.add_term(z_prefix_string(mode, n, PauliOp::X), {0.5, 0.0});
  // a_p carries +iY/2, a†_p carries -iY/2.
  out.add_term(z_prefix_string(mode, n, PauliOp::Y),
               {0.0, creation ? -0.5 : 0.5});
  return out;
}

}  // namespace

PauliOperator jw_annihilation(std::uint32_t mode, std::size_t num_qubits) {
  return jw_ladder_impl(mode, num_qubits, /*creation=*/false);
}

PauliOperator jw_creation(std::uint32_t mode, std::size_t num_qubits) {
  return jw_ladder_impl(mode, num_qubits, /*creation=*/true);
}

PauliOperator jw_ladder(const FermionOp& op, std::size_t num_qubits) {
  return jw_ladder_impl(op.mode, num_qubits, op.creation);
}

PauliOperator jw_term(const FermionTerm& term, std::size_t num_qubits) {
  PauliOperator out =
      PauliOperator::identity(num_qubits, {term.coefficient, 0.0});
  for (const auto& op : term.ops) {
    out = out.multiply(jw_ladder(op, num_qubits));
  }
  return out;
}

PauliOperator jordan_wigner(const FermionOperator& op, double prune_tol) {
  const std::size_t n = op.num_modes;
  PauliOperator out(n);
  for (const auto& term : op.terms) {
    out += jw_term(term, n);
  }
  out.prune(prune_tol);
  return out;
}

}  // namespace picasso::pauli
