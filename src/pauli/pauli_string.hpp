#pragma once
// Symbolic Pauli-string algebra.
//
// A Pauli string is a tensor product of single-qubit operators from
// {I, X, Y, Z}. Strings multiply position-wise with a global phase i^k; the
// Jordan-Wigner transform (jordan_wigner.hpp) is built on this algebra, and
// the anticommutation relation between strings defines the edges of the
// graphs Picasso colors (§II-B of the paper).

#include <complex>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace picasso::pauli {

enum class PauliOp : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

char to_char(PauliOp op) noexcept;
PauliOp op_from_char(char c);  // throws std::invalid_argument on bad input

/// Result of a single-qubit product a*b = i^phase_exp * op.
struct OpProduct {
  PauliOp op;
  std::uint8_t phase_exp;  // power of i, in {0,1,2,3}
};

/// Single-qubit multiplication with phase tracking (X*Y = iZ, Y*X = -iZ, ...).
OpProduct multiply(PauliOp a, PauliOp b) noexcept;

/// True iff the two single-qubit operators anticommute
/// (both non-identity and distinct; Eq. (5) of the paper).
constexpr bool anticommutes(PauliOp a, PauliOp b) noexcept {
  return a != PauliOp::I && b != PauliOp::I && a != b;
}

/// A Pauli string over a fixed number of qubits.
class PauliString {
 public:
  PauliString() = default;
  explicit PauliString(std::size_t num_qubits) : ops_(num_qubits, PauliOp::I) {}
  explicit PauliString(std::vector<PauliOp> ops) : ops_(std::move(ops)) {}

  /// Parses e.g. "IXYZ". Throws std::invalid_argument on other characters.
  static PauliString parse(std::string_view text);

  std::size_t num_qubits() const noexcept { return ops_.size(); }
  PauliOp op(std::size_t q) const { return ops_[q]; }
  void set_op(std::size_t q, PauliOp op) { ops_[q] = op; }
  const std::vector<PauliOp>& ops() const noexcept { return ops_; }

  /// Number of non-identity positions.
  std::size_t weight() const noexcept;

  bool is_identity() const noexcept { return weight() == 0; }

  std::string to_string() const;

  /// True iff this string anticommutes with other: an odd number of
  /// positions hold distinct non-identity operators (paper §IV-A).
  bool anticommutes_with(const PauliString& other) const;

  bool operator==(const PauliString&) const = default;
  auto operator<=>(const PauliString&) const = default;

 private:
  std::vector<PauliOp> ops_;
};

/// Product of two equal-length strings: phase * string, phase = i^exp.
struct StringProduct {
  PauliString string;
  std::uint8_t phase_exp;  // power of i, in {0,1,2,3}

  std::complex<double> phase() const noexcept {
    switch (phase_exp & 3u) {
      case 0: return {1.0, 0.0};
      case 1: return {0.0, 1.0};
      case 2: return {-1.0, 0.0};
      default: return {0.0, -1.0};
    }
  }
};

StringProduct multiply(const PauliString& a, const PauliString& b);

struct PauliStringHash {
  std::size_t operator()(const PauliString& s) const noexcept;
};

/// Dense complex matrix representation (2^n x 2^n, row-major) for small n.
/// Exact but exponential: used only by tests to validate the fast
/// anticommutation kernels against the ground-truth matrix algebra.
std::vector<std::complex<double>> to_matrix(const PauliString& s);

}  // namespace picasso::pauli
