#pragma once
// Synthetic hydrogen-cluster molecule generator.
//
// The paper's datasets (Table II) are Hn clusters in 1D/2D/3D arrangements
// with sto-3g / 6-31g / 6-311g basis sets, processed by quantum-chemistry
// codes into Pauli-string Hamiltonians. Those integral files are not
// available offline, so we build the closest synthetic equivalent that
// exercises the same code path end to end:
//
//   geometry (Hn lattice) -> Gaussian-inspired overlap/core integrals ->
//   Mulliken-approximated two-electron integrals -> second-quantised
//   Hamiltonian over spin orbitals -> Jordan-Wigner -> Pauli strings.
//
// The resulting Pauli sets share the structural features the coloring
// algorithm depends on: O(q^4) term growth with basis size, dense (≈50 %)
// complement graphs, and geometry-dependent term counts. See DESIGN.md §1.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "pauli/fermion.hpp"
#include "pauli/operator.hpp"
#include "pauli/pauli_set.hpp"

namespace picasso::pauli {

enum class Geometry { Chain1D, Sheet2D, Cube3D };
enum class Basis : int {
  STO3G = 1,   // 1 spatial orbital per H atom
  B631G = 2,   // 2 spatial orbitals per H atom (split valence)
  B6311G = 3,  // 3 spatial orbitals per H atom
};

const char* to_string(Geometry g) noexcept;
const char* to_string(Basis b) noexcept;

struct MoleculeSpec {
  int num_atoms = 2;
  Geometry geometry = Geometry::Chain1D;
  Basis basis = Basis::STO3G;
  double spacing = 1.4;  // Bohr-ish lattice constant

  std::string name() const;  // e.g. "H6_2D_sto3g"
};

struct Vec3 {
  double x = 0, y = 0, z = 0;
};

double distance(const Vec3& a, const Vec3& b) noexcept;

/// One basis function: a center and a width parameter (smaller zeta = more
/// diffuse, mimicking the outer functions of split-valence bases).
struct Orbital {
  Vec3 center;
  double zeta = 1.0;
};

class Molecule {
 public:
  explicit Molecule(const MoleculeSpec& spec);

  const MoleculeSpec& spec() const noexcept { return spec_; }
  const std::vector<Vec3>& atoms() const noexcept { return atoms_; }
  const std::vector<Orbital>& orbitals() const noexcept { return orbitals_; }

  std::size_t num_spatial() const noexcept { return orbitals_.size(); }
  std::size_t num_qubits() const noexcept { return 2 * orbitals_.size(); }

  /// Gaussian-product overlap between spatial orbitals i, j.
  double overlap(std::size_t i, std::size_t j) const;

  /// Synthetic core (kinetic + nuclear attraction) one-electron integral.
  double core(std::size_t i, std::size_t j) const;

  /// Synthetic two-electron repulsion integral (ij|kl), chemist notation,
  /// via the Mulliken approximation (ij|kl) ≈ S_ij S_kl / (R_PQ + d0).
  double eri(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const;

 private:
  Vec3 bond_center(std::size_t i, std::size_t j) const;

  MoleculeSpec spec_;
  std::vector<Vec3> atoms_;
  std::vector<Orbital> orbitals_;
};

/// Assembles the second-quantised Hamiltonian over spin orbitals:
///   H = Σ_pq h_pq a†_p a_q + ½ Σ (ij|kl) Σ_στ a†_iσ a†_kτ a_lτ a_jσ
/// Integrals with |value| <= integral_threshold are dropped (this is where
/// geometry changes the term count, as in Table II).
FermionOperator molecular_fermion_hamiltonian(const Molecule& mol,
                                              double integral_threshold = 1e-8);

/// Full pipeline: molecule -> fermionic H -> Jordan-Wigner -> PauliOperator.
PauliOperator molecular_hamiltonian(const MoleculeSpec& spec,
                                    double integral_threshold = 1e-8,
                                    double prune_tol = 1e-10);

/// Hermitised coupled-cluster doubles operator T̂ = T + T†,
///   T = Σ_{i<j occ, a<b virt} t_abij a†_a a†_b a_j a_i,
/// with synthetic geometry-derived amplitudes (|t| <= amp_threshold dropped).
/// Occupied spin orbitals are the num_atoms lowest (each H contributes one
/// electron). The unitary-partitioning application of the paper groups the
/// Pauli strings of such ansatz operators, which is what pushes the string
/// counts of Table II far beyond the bare Hamiltonian's.
FermionOperator cc_doubles_operator(const Molecule& mol,
                                    double amp_threshold = 1e-6);

/// Strings of the full application input: JW(H) + JW(T̂) + JW(T̂)^2.
/// The square models the leading products that appear when similarity-
/// transformed / renormalised CC expressions are expanded (Peng-Kowalski),
/// reproducing the O(N^{7~8}) growth the paper motivates.
PauliOperator ansatz_extended_operator(const MoleculeSpec& spec,
                                       double integral_threshold = 1e-8,
                                       double amp_threshold = 1e-6,
                                       double prune_tol = 1e-10);

/// Final step of the pipeline: deterministic PauliSet (vertex set) from an
/// operator. `max_terms` (0 = unlimited) keeps the largest-|coefficient|
/// terms, used to cap dataset sizes for memory-bounded baselines.
PauliSet pauli_set_from_operator(const PauliOperator& op, double drop_tol = 0.0,
                                 std::size_t max_terms = 0);

}  // namespace picasso::pauli
