#include "pauli/molecule.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "pauli/jordan_wigner.hpp"

namespace picasso::pauli {

const char* to_string(Geometry g) noexcept {
  switch (g) {
    case Geometry::Chain1D: return "1D";
    case Geometry::Sheet2D: return "2D";
    case Geometry::Cube3D: return "3D";
  }
  return "?";
}

const char* to_string(Basis b) noexcept {
  switch (b) {
    case Basis::STO3G: return "sto3g";
    case Basis::B631G: return "631g";
    case Basis::B6311G: return "6311g";
  }
  return "?";
}

std::string MoleculeSpec::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "H%d_%s_%s", num_atoms, to_string(geometry),
                to_string(basis));
  return buf;
}

double distance(const Vec3& a, const Vec3& b) noexcept {
  const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

namespace {

/// Places n atoms on a 1D chain, the squarest possible 2D grid, or the most
/// cubical 3D lattice (mirrors the paper's 1D/2D/3D Hn configurations).
std::vector<Vec3> place_atoms(int n, Geometry geom, double spacing) {
  std::vector<Vec3> atoms;
  atoms.reserve(static_cast<std::size_t>(n));
  switch (geom) {
    case Geometry::Chain1D: {
      for (int i = 0; i < n; ++i) {
        atoms.push_back({spacing * i, 0.0, 0.0});
      }
      break;
    }
    case Geometry::Sheet2D: {
      const int cols = static_cast<int>(std::ceil(std::sqrt(double(n))));
      for (int i = 0; i < n; ++i) {
        atoms.push_back({spacing * (i % cols), spacing * (i / cols), 0.0});
      }
      break;
    }
    case Geometry::Cube3D: {
      // Fill lattice sites in balanced (x+y+z) order so that even small n
      // (e.g. a 4-atom tetrahedron-like cluster) genuinely extends into the
      // third dimension instead of filling an x-y layer first.
      const int side = static_cast<int>(std::ceil(std::cbrt(double(n))));
      std::vector<std::array<int, 3>> sites;
      sites.reserve(static_cast<std::size_t>(side) * side * side);
      for (int x = 0; x < side; ++x) {
        for (int y = 0; y < side; ++y) {
          for (int z = 0; z < side; ++z) sites.push_back({x, y, z});
        }
      }
      std::sort(sites.begin(), sites.end(),
                [](const std::array<int, 3>& a, const std::array<int, 3>& b) {
                  const int sa = a[0] + a[1] + a[2];
                  const int sb = b[0] + b[1] + b[2];
                  if (sa != sb) return sa < sb;
                  return a < b;
                });
      for (int i = 0; i < n; ++i) {
        atoms.push_back({spacing * sites[static_cast<std::size_t>(i)][0],
                         spacing * sites[static_cast<std::size_t>(i)][1],
                         spacing * sites[static_cast<std::size_t>(i)][2]});
      }
      break;
    }
  }
  return atoms;
}

/// Width parameters per shell: the valence splits of 6-31g / 6-311g add
/// progressively more diffuse functions.
constexpr std::array<double, 3> kShellZetas = {1.24, 0.55, 0.28};

}  // namespace

Molecule::Molecule(const MoleculeSpec& spec) : spec_(spec) {
  if (spec.num_atoms < 1) {
    throw std::invalid_argument("Molecule: need at least one atom");
  }
  atoms_ = place_atoms(spec.num_atoms, spec.geometry, spec.spacing);
  const int shells = static_cast<int>(spec.basis);
  orbitals_.reserve(atoms_.size() * static_cast<std::size_t>(shells));
  for (const Vec3& atom : atoms_) {
    for (int s = 0; s < shells; ++s) {
      orbitals_.push_back({atom, kShellZetas[static_cast<std::size_t>(s)]});
    }
  }
}

double Molecule::overlap(std::size_t i, std::size_t j) const {
  const Orbital& a = orbitals_[i];
  const Orbital& b = orbitals_[j];
  const double mu = a.zeta * b.zeta / (a.zeta + b.zeta);
  const double d = distance(a.center, b.center);
  // Gaussian product theorem shape: prefactor normalised so S_ii = 1.
  const double pre =
      std::pow(4.0 * a.zeta * b.zeta / ((a.zeta + b.zeta) * (a.zeta + b.zeta)),
               0.75);
  return pre * std::exp(-mu * d * d);
}

double Molecule::core(std::size_t i, std::size_t j) const {
  const Orbital& a = orbitals_[i];
  const Orbital& b = orbitals_[j];
  const double s = overlap(i, j);
  // Kinetic-like part: grows with the orbitals' sharpness.
  const double kinetic = 0.5 * (a.zeta + b.zeta) * s;
  // Nuclear-attraction-like part: each nucleus pulls on the charge cloud
  // centered at the bond midpoint; softened Coulomb kernel.
  const Vec3 p = bond_center(i, j);
  double attraction = 0.0;
  for (const Vec3& nucleus : atoms_) {
    attraction -= s / (distance(p, nucleus) + 0.5);
  }
  return kinetic + attraction;
}

double Molecule::eri(std::size_t i, std::size_t j, std::size_t k,
                     std::size_t l) const {
  const double s_ij = overlap(i, j);
  const double s_kl = overlap(k, l);
  const Vec3 p = bond_center(i, j);
  const Vec3 q = bond_center(k, l);
  // Mulliken approximation with a softened 1/R kernel; exactly symmetric in
  // (i<->j), (k<->l) and (ij)<->(kl), which keeps H Hermitian.
  return s_ij * s_kl / (distance(p, q) + 0.75);
}

Vec3 Molecule::bond_center(std::size_t i, std::size_t j) const {
  const Vec3& a = orbitals_[i].center;
  const Vec3& b = orbitals_[j].center;
  return {0.5 * (a.x + b.x), 0.5 * (a.y + b.y), 0.5 * (a.z + b.z)};
}

FermionOperator molecular_fermion_hamiltonian(const Molecule& mol,
                                              double integral_threshold) {
  const std::size_t m = mol.num_spatial();
  FermionOperator h;
  h.num_modes = static_cast<std::uint32_t>(2 * m);

  // Spin-orbital index: spatial orbital mu with spin sigma -> 2*mu + sigma.
  auto so = [](std::size_t mu, int sigma) {
    return static_cast<std::uint32_t>(2 * mu + static_cast<std::size_t>(sigma));
  };

  // One-body part: h_ij a†_{i sigma} a_{j sigma}.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double hij = mol.core(i, j);
      if (std::abs(hij) <= integral_threshold) continue;
      for (int sigma = 0; sigma < 2; ++sigma) {
        h.add(one_body(hij, so(i, sigma), so(j, sigma)));
      }
    }
  }

  // Two-body part, chemist notation:
  //   ½ Σ_{ijkl} (ij|kl) Σ_{σrole τ} a†_{iσ} a†_{kτ} a_{lτ} a_{jσ}.
  // Terms where the two creations (or the two annihilations) hit the same
  // spin orbital vanish identically and are skipped.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t k = 0; k < m; ++k) {
        for (std::size_t l = 0; l < m; ++l) {
          const double g = mol.eri(i, j, k, l);
          if (std::abs(g) <= integral_threshold) continue;
          for (int sigma = 0; sigma < 2; ++sigma) {
            for (int tau = 0; tau < 2; ++tau) {
              const std::uint32_t p = so(i, sigma);
              const std::uint32_t q = so(k, tau);
              const std::uint32_t r = so(l, tau);
              const std::uint32_t s = so(j, sigma);
              if (p == q || r == s) continue;
              h.add(two_body(0.5 * g, p, q, r, s));
            }
          }
        }
      }
    }
  }
  return h;
}

PauliOperator molecular_hamiltonian(const MoleculeSpec& spec,
                                    double integral_threshold,
                                    double prune_tol) {
  const Molecule mol(spec);
  const FermionOperator fop =
      molecular_fermion_hamiltonian(mol, integral_threshold);
  return jordan_wigner(fop, prune_tol);
}

FermionOperator cc_doubles_operator(const Molecule& mol,
                                    double amp_threshold) {
  const auto num_modes = static_cast<std::uint32_t>(mol.num_qubits());
  const std::uint32_t num_occ =
      std::min<std::uint32_t>(static_cast<std::uint32_t>(mol.spec().num_atoms),
                              num_modes);
  FermionOperator t;
  t.num_modes = num_modes;

  // Spin orbital p belongs to spatial orbital p/2.
  auto spatial = [](std::uint32_t p) { return static_cast<std::size_t>(p / 2); };
  // Synthetic doubles amplitude: product of excitation overlaps, damped by a
  // denominator that grows with the virtual orbitals' diffuseness gap —
  // qualitatively the MP2 shape t ~ (ai|bj) / Δε.
  auto amplitude = [&](std::uint32_t a, std::uint32_t b, std::uint32_t i,
                       std::uint32_t j) {
    const double s_ai = mol.overlap(spatial(a), spatial(i));
    const double s_bj = mol.overlap(spatial(b), spatial(j));
    const double gap = 1.0 + 0.25 * static_cast<double>((a - i) + (b - j)) /
                                 static_cast<double>(num_modes);
    return 0.1 * s_ai * s_bj / gap;
  };

  for (std::uint32_t i = 0; i < num_occ; ++i) {
    for (std::uint32_t j = i + 1; j < num_occ; ++j) {
      for (std::uint32_t a = num_occ; a < num_modes; ++a) {
        for (std::uint32_t b = a + 1; b < num_modes; ++b) {
          const double amp = amplitude(a, b, i, j);
          if (std::abs(amp) <= amp_threshold) continue;
          // T term a†_a a†_b a_j a_i and its Hermitian conjugate.
          t.add(two_body(amp, a, b, j, i));
          t.add(two_body(amp, i, j, b, a));
        }
      }
    }
  }
  return t;
}

PauliOperator ansatz_extended_operator(const MoleculeSpec& spec,
                                       double integral_threshold,
                                       double amp_threshold, double prune_tol) {
  const Molecule mol(spec);
  PauliOperator h = jordan_wigner(
      molecular_fermion_hamiltonian(mol, integral_threshold), prune_tol);
  const PauliOperator t_hat =
      jordan_wigner(cc_doubles_operator(mol, amp_threshold), prune_tol);
  PauliOperator t_sq = t_hat.multiply(t_hat);
  t_sq.prune(prune_tol);
  h += t_hat;
  h += t_sq;
  h.prune(prune_tol);
  return h;
}

PauliSet pauli_set_from_operator(const PauliOperator& op, double drop_tol,
                                 std::size_t max_terms) {
  PauliOperator::FlatTerms flat = op.flattened(drop_tol);
  if (max_terms != 0 && flat.strings.size() > max_terms) {
    // Keep the max_terms largest coefficients (deterministic tie-break on
    // the lexicographic string order established by flattened()).
    std::vector<std::size_t> idx(flat.strings.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return std::abs(flat.coefficients[a]) > std::abs(flat.coefficients[b]);
    });
    idx.resize(max_terms);
    std::sort(idx.begin(), idx.end());
    PauliOperator::FlatTerms trimmed;
    trimmed.strings.reserve(max_terms);
    trimmed.coefficients.reserve(max_terms);
    for (std::size_t id : idx) {
      trimmed.strings.push_back(std::move(flat.strings[id]));
      trimmed.coefficients.push_back(flat.coefficients[id]);
    }
    flat = std::move(trimmed);
  }
  return PauliSet(flat.strings, std::move(flat.coefficients));
}

}  // namespace picasso::pauli
