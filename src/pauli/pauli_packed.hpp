#pragma once
// Bit-packed symplectic Pauli representation and SIMD anticommutation
// kernels — the hot-path backend of the pluggable conflict oracle.
//
// Layout: each string is one contiguous *record* of 2w 64-bit words,
// [x_0..x_{w-1} | z_0..z_{w-1}] with w = ceil(num_qubits / 64); qubit q sets
// bit q%64 of word q/64 in the x plane (X, Y) and/or the z plane (Z, Y).
// Strings a, b anticommute iff popcount(ax & bz) + popcount(az & bx) is odd.
// Because parity(popcount(A)) ^ parity(popcount(B)) == parity(popcount(A^B)),
// the whole test folds to *one* parity at the end:
//
//     acc = XOR_k ( (ax_k & bz_k) ^ (az_k & bx_k) );  answer = parity(acc)
//
// — one AND+XOR per word and a single popcount, versus one popcount per word
// for the paper's 3-bit inverse-one-hot kernel (encoding.hpp), at half the
// words (64 qubits per word instead of 21). Swapping one operand's planes
// ([z|x] instead of [x|z], make_swapped_record) turns the test into a plain
// element-wise AND of two records, which is what the block kernels exploit:
// one string against a batch of records is pure AND/XOR/shift — fully
// vectorizable. An AVX2 path is compiled with a function-level target
// attribute (no special build flags) and selected at runtime via cpuid, so
// the same binary runs on any x86-64 and non-x86 builds fall back to the
// portable scalar kernel. All kernels compute the same relation bit-for-bit;
// tests/test_pauli_packed.cpp pins the agreement exhaustively.

#include <cstdint>
#include <vector>

#include "pauli/pauli_string.hpp"

namespace picasso::pauli {

class PauliSet;

// ---------------------------------------------------------------------------
// SIMD dispatch.

enum class SimdLevel {
  Auto,    // best the CPU supports, detected once at first use
  Scalar,  // portable word-at-a-time kernel
  Avx2,    // 256-bit AND/XOR/shift kernels (x86-64 with AVX2 only)
};

const char* to_string(SimdLevel level) noexcept;

/// Best level this CPU supports (never returns Auto).
SimdLevel best_simd_level() noexcept;

/// Resolves Auto to the detected level and downgrades an explicit Avx2
/// request to Scalar when the CPU (or the target) lacks it.
SimdLevel resolve_simd_level(SimdLevel requested) noexcept;

// ---------------------------------------------------------------------------
// Packed records.

/// Non-owning view of packed records (data holds size * 2 * words words).
struct PackedView {
  const std::uint64_t* data = nullptr;
  std::size_t size = 0;
  std::size_t words = 0;  // per plane; a record is 2 * words

  std::size_t record_words() const noexcept { return 2 * words; }
  const std::uint64_t* record(std::size_t i) const noexcept {
    return data + i * record_words();
  }
};

/// Words per plane for `num_qubits` (same rounding as words_per_string2).
constexpr std::size_t packed_words(std::size_t num_qubits) noexcept {
  return (num_qubits + 63) / 64;
}

/// Writes the plane-swapped record [z|x] of `record` ([x|z], `words` per
/// plane) into `out` (2 * words words): AND-ing a swapped record against a
/// normal one yields exactly the symplectic-product terms.
void make_swapped_record(const std::uint64_t* record, std::size_t words,
                         std::uint64_t* out) noexcept;

/// Scalar anticommutation of two packed records ([x|z], `words` per plane).
inline bool anticommute_record_scalar(const std::uint64_t* a,
                                      const std::uint64_t* b,
                                      std::size_t words) noexcept {
  std::uint64_t acc = 0;
  for (std::size_t k = 0; k < words; ++k) {
    acc ^= (a[k] & b[words + k]) ^ (a[words + k] & b[k]);
  }
  return __builtin_parityll(acc) != 0;
}

/// Block kernel: out[j] = anticommute(u, records[ids[j]]) for j in [0,count),
/// where u is given pre-swapped ([z|x], see make_swapped_record) and records
/// are indexed record-wise into a packed base pointer. The hot call of the
/// blocked pair-scan: the caller batches the candidates that survived the
/// palette prefilter and asks for all their answers at once.
using AnticommuteBlockFn = void (*)(const std::uint64_t* u_swapped,
                                    const std::uint64_t* records,
                                    std::size_t words,
                                    const std::uint32_t* ids,
                                    std::size_t count, std::uint8_t* out);

/// Kernel for the given plane width at the given (resolved) SIMD level.
AnticommuteBlockFn resolve_block_kernel(std::size_t words,
                                        SimdLevel level) noexcept;

// ---------------------------------------------------------------------------
// Owning packed set.

/// A Pauli set stored *only* in packed symplectic form — half the resident
/// bytes of the dual-encoded PauliSet; what streaming chunks reload as.
class PackedPauliSet {
 public:
  PackedPauliSet() = default;

  /// Encodes from symbolic strings.
  explicit PackedPauliSet(const std::vector<PauliString>& strings);

  /// Copies the symplectic planes out of an encoded set (no re-encoding;
  /// PauliSet::packed_view exposes the identical layout).
  explicit PackedPauliSet(const PauliSet& set);

  /// Adopts raw packed words (size * 2 * packed_words(num_qubits) of them) —
  /// the spill-file reload path.
  static PackedPauliSet from_raw(std::size_t num_qubits, std::size_t size,
                                 std::vector<std::uint64_t> words);

  std::size_t size() const noexcept { return size_; }
  std::size_t num_qubits() const noexcept { return num_qubits_; }
  std::size_t words() const noexcept { return words_; }
  bool empty() const noexcept { return size_ == 0; }

  const std::uint64_t* record(std::size_t i) const noexcept {
    return data_.data() + i * 2 * words_;
  }
  PackedView view() const noexcept { return {data_.data(), size_, words_}; }

  /// Decodes string i back to symbolic form (round-trip tests, spill-less
  /// interop). Y is the intersection of the planes.
  PauliString string(std::size_t i) const;

  /// Appends every record of `other` (ids continue after size()) — the
  /// incremental update path growing its resident store in place. An empty
  /// base adopts `other`'s geometry; otherwise the qubit counts must match
  /// (std::invalid_argument). Appending invalidates outstanding view()s.
  void append(const PackedPauliSet& other);

  bool anticommute(std::size_t i, std::size_t j) const noexcept {
    return anticommute_record_scalar(record(i), record(j), words_);
  }

  std::size_t logical_bytes() const noexcept {
    return data_.capacity() * sizeof(std::uint64_t);
  }

 private:
  std::size_t size_ = 0;
  std::size_t num_qubits_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> data_;  // size_ * 2 * words_
};

}  // namespace picasso::pauli
