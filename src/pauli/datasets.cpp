#include "pauli/datasets.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>

namespace picasso::pauli {

const char* to_string(SizeClass c) noexcept {
  switch (c) {
    case SizeClass::Small: return "small";
    case SizeClass::Medium: return "medium";
    case SizeClass::Large: return "large";
  }
  return "?";
}

const std::vector<DatasetSpec>& all_datasets() {
  static const std::vector<DatasetSpec> registry = [] {
    std::vector<DatasetSpec> d;
    auto add = [&d](int atoms, Geometry g, Basis b, SizeClass c,
                    bool ansatz = true, double amp_th = 1e-6,
                    std::size_t cap = 0) {
      MoleculeSpec m{atoms, g, b, 1.4};
      d.push_back({m.name(), m, c, cap, ansatz, amp_th});
    };
    // Small: explicit-graph baselines (ColPack / JP / speculative) still
    // fit in container memory and time (n up to ~6k, ~50-65% dense).
    add(4, Geometry::Cube3D, Basis::STO3G, SizeClass::Small);
    add(4, Geometry::Sheet2D, Basis::STO3G, SizeClass::Small);
    add(4, Geometry::Chain1D, Basis::STO3G, SizeClass::Small);
    add(6, Geometry::Cube3D, Basis::STO3G, SizeClass::Small,
        /*ansatz=*/true, 1e-6, /*cap=*/6000);
    add(6, Geometry::Sheet2D, Basis::STO3G, SizeClass::Small,
        /*ansatz=*/true, 1e-6, /*cap=*/6000);
    add(6, Geometry::Chain1D, Basis::STO3G, SizeClass::Small);
    add(4, Geometry::Sheet2D, Basis::B631G, SizeClass::Small,
        /*ansatz=*/false);
    // Medium: explicit baselines exceed time/memory budgets at container
    // scale; Picasso colors them through the oracle.
    add(6, Geometry::Cube3D, Basis::B631G, SizeClass::Medium,
        /*ansatz=*/false);
    add(4, Geometry::Cube3D, Basis::B631G, SizeClass::Medium,
        /*ansatz=*/true, 1e-6, /*cap=*/20000);
    add(8, Geometry::Sheet2D, Basis::STO3G, SizeClass::Medium,
        /*ansatz=*/true, 1e-6, /*cap=*/35000);
    // Large: oracle-only territory (the paper's >40 GB-GPU regime).
    add(8, Geometry::Sheet2D, Basis::B631G, SizeClass::Large,
        /*ansatz=*/false);
    add(10, Geometry::Cube3D, Basis::B631G, SizeClass::Large,
        /*ansatz=*/false, 1e-6, /*cap=*/150000);
    return d;
  }();
  return registry;
}

std::vector<DatasetSpec> datasets_in_class(SizeClass c) {
  std::vector<DatasetSpec> out;
  for (const auto& d : all_datasets()) {
    if (d.size_class == c) out.push_back(d);
  }
  return out;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
  for (const auto& d : all_datasets()) {
    if (d.name == name) return d;
  }
  throw std::out_of_range("unknown dataset: " + name);
}

namespace {

std::map<std::string, PauliSet>& dataset_cache() {
  static std::map<std::string, PauliSet> cache;
  return cache;
}

/// Disk cache directory: $PICASSO_DATA_DIR or ./.picasso_cache. Generation
/// of the larger ansatz-extended sets takes tens of seconds, and every bench
/// binary is its own process — the disk cache amortises that.
std::filesystem::path cache_dir() {
  if (const char* env = std::getenv("PICASSO_DATA_DIR")) return env;
  return ".picasso_cache";
}

std::filesystem::path cache_path(const DatasetSpec& spec) {
  // Recipe parameters are baked into the file name so stale caches miss.
  char suffix[96];
  std::snprintf(suffix, sizeof(suffix), "%s_a%d_t%g_c%zu.pset",
                spec.name.c_str(), spec.with_ansatz ? 1 : 0,
                spec.amp_threshold, spec.cap);
  return cache_dir() / suffix;
}

PauliSet generate_dataset(const DatasetSpec& spec) {
  const PauliOperator op =
      spec.with_ansatz
          ? ansatz_extended_operator(spec.molecule, 1e-8, spec.amp_threshold)
          : molecular_hamiltonian(spec.molecule);
  return pauli_set_from_operator(op, /*drop_tol=*/1e-10, spec.cap);
}

}  // namespace

const PauliSet& load_dataset(const DatasetSpec& spec) {
  auto& cache = dataset_cache();
  auto it = cache.find(spec.name);
  if (it != cache.end()) return it->second;

  const std::filesystem::path path = cache_path(spec);
  if (std::filesystem::exists(path)) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      try {
        PauliSet set = PauliSet::load_binary(in);
        return cache.emplace(spec.name, std::move(set)).first->second;
      } catch (const std::exception&) {
        // Corrupt cache entry: fall through and regenerate.
      }
    }
  }

  PauliSet set = generate_dataset(spec);
  std::error_code ec;
  std::filesystem::create_directories(cache_dir(), ec);
  if (!ec) {
    std::ofstream out(path, std::ios::binary);
    if (out) set.save_binary(out);
  }
  return cache.emplace(spec.name, std::move(set)).first->second;
}

void clear_dataset_cache() { dataset_cache().clear(); }

PauliSet fig1_h2_set() {
  static const char* kStrings[] = {
      "IIII", "XYXY", "YYXY", "XXXY", "YXXY", "XYYY", "YYYY", "XXYY", "YXYY",
      "XYXX", "YYXX", "XXXX", "YXXX", "XYYX", "YYYX", "XXYX", "YXYX",
  };
  std::vector<PauliString> strings;
  strings.reserve(std::size(kStrings));
  for (const char* s : kStrings) strings.push_back(PauliString::parse(s));
  return PauliSet(strings);
}

}  // namespace picasso::pauli
