#include "pauli/pauli_packed.hpp"

#include <stdexcept>

#include "pauli/pauli_set.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PICASSO_PACKED_HAVE_AVX2 1
#include <immintrin.h>
#else
#define PICASSO_PACKED_HAVE_AVX2 0
#endif

namespace picasso::pauli {

const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Auto: return "auto";
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2: return "avx2";
  }
  return "?";
}

SimdLevel best_simd_level() noexcept {
#if PICASSO_PACKED_HAVE_AVX2
  return __builtin_cpu_supports("avx2") ? SimdLevel::Avx2 : SimdLevel::Scalar;
#else
  return SimdLevel::Scalar;
#endif
}

SimdLevel resolve_simd_level(SimdLevel requested) noexcept {
  const SimdLevel best = best_simd_level();
  if (requested == SimdLevel::Auto) return best;
  if (requested == SimdLevel::Avx2 && best != SimdLevel::Avx2) {
    return SimdLevel::Scalar;
  }
  return requested;
}

void make_swapped_record(const std::uint64_t* record, std::size_t words,
                         std::uint64_t* out) noexcept {
  for (std::size_t k = 0; k < words; ++k) {
    out[k] = record[words + k];          // z plane first ...
    out[words + k] = record[k];          // ... then x
  }
}

namespace {

// With u pre-swapped, anticommute(u, b) == parity(XOR_k(us[k] & rec_b[k]))
// over the full 2w-word records — the form every kernel below computes.

void block_scalar(const std::uint64_t* us, const std::uint64_t* records,
                  std::size_t words, const std::uint32_t* ids,
                  std::size_t count, std::uint8_t* out) {
  const std::size_t rw = 2 * words;
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint64_t* rec = records + rw * ids[j];
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < rw; ++k) acc ^= rec[k] & us[k];
    out[j] = static_cast<std::uint8_t>(__builtin_parityll(acc));
  }
}

#if PICASSO_PACKED_HAVE_AVX2

// w == 1 (<= 64 qubits, records of 2 words): four candidates per iteration.
// Two ymm registers hold four [x|z] records; AND with the tiled swapped-u
// pattern, XOR adjacent lanes for the per-record fold, then a vectorized
// parity reduction and a movemask deliver all four answers at once.
__attribute__((target("avx2"))) void block_avx2_w1(
    const std::uint64_t* us, const std::uint64_t* records,
    std::size_t /*words*/, const std::uint32_t* ids, std::size_t count,
    std::uint8_t* out) {
  const __m256i pat = _mm256_set_epi64x(
      static_cast<long long>(us[1]), static_cast<long long>(us[0]),
      static_cast<long long>(us[1]), static_cast<long long>(us[0]));
  std::size_t j = 0;
  for (; j + 4 <= count; j += 4) {
    const __m128i r0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(records + 2 * ids[j]));
    const __m128i r1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(records + 2 * ids[j + 1]));
    const __m128i r2 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(records + 2 * ids[j + 2]));
    const __m128i r3 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(records + 2 * ids[j + 3]));
    const __m256i a01 = _mm256_and_si256(_mm256_set_m128i(r1, r0), pat);
    const __m256i a23 = _mm256_and_si256(_mm256_set_m128i(r3, r2), pat);
    // Lane pairs (0,1) and (2,3) are one record each; XOR them together so
    // every lane carries its record's fold word.
    const __m256i s01 =
        _mm256_xor_si256(a01, _mm256_permute4x64_epi64(a01, 0xB1));
    const __m256i s23 =
        _mm256_xor_si256(a23, _mm256_permute4x64_epi64(a23, 0xB1));
    // [p0, p2, p1, p3] lane order after the unpack.
    __m256i m = _mm256_unpacklo_epi64(s01, s23);
    m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 32));
    m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 16));
    m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 8));
    m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 4));
    m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 2));
    m = _mm256_xor_si256(m, _mm256_srli_epi64(m, 1));
    m = _mm256_slli_epi64(m, 63);
    const int bits = _mm256_movemask_pd(_mm256_castsi256_pd(m));
    out[j] = static_cast<std::uint8_t>(bits & 1);
    out[j + 1] = static_cast<std::uint8_t>((bits >> 2) & 1);
    out[j + 2] = static_cast<std::uint8_t>((bits >> 1) & 1);
    out[j + 3] = static_cast<std::uint8_t>((bits >> 3) & 1);
  }
  for (; j < count; ++j) {
    const std::uint64_t* rec = records + 2 * ids[j];
    out[j] = static_cast<std::uint8_t>(
        __builtin_parityll((rec[0] & us[0]) ^ (rec[1] & us[1])));
  }
}

// w >= 2 (records of >= 4 words): vectorize the word loop within each
// record, four words per step, scalar tail for the remainder.
__attribute__((target("avx2"))) void block_avx2_wide(
    const std::uint64_t* us, const std::uint64_t* records, std::size_t words,
    const std::uint32_t* ids, std::size_t count, std::uint8_t* out) {
  const std::size_t rw = 2 * words;
  const std::size_t vec_end = rw & ~std::size_t{3};
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint64_t* rec = records + rw * ids[j];
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t k = 0; k < vec_end; k += 4) {
      const __m256i r =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rec + k));
      const __m256i u =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(us + k));
      acc = _mm256_xor_si256(acc, _mm256_and_si256(r, u));
    }
    std::uint64_t tail = 0;
    for (std::size_t k = vec_end; k < rw; ++k) tail ^= rec[k] & us[k];
    const __m128i h = _mm_xor_si128(_mm256_castsi256_si128(acc),
                                    _mm256_extracti128_si256(acc, 1));
    const std::uint64_t fold =
        static_cast<std::uint64_t>(_mm_extract_epi64(h, 0)) ^
        static_cast<std::uint64_t>(_mm_extract_epi64(h, 1)) ^ tail;
    out[j] = static_cast<std::uint8_t>(__builtin_parityll(fold));
  }
}

#endif  // PICASSO_PACKED_HAVE_AVX2

}  // namespace

AnticommuteBlockFn resolve_block_kernel(std::size_t words,
                                        SimdLevel level) noexcept {
  level = resolve_simd_level(level);
#if PICASSO_PACKED_HAVE_AVX2
  if (level == SimdLevel::Avx2) {
    if (words == 1) return &block_avx2_w1;
    if (words >= 2) return &block_avx2_wide;
  }
#endif
  (void)level;
  return &block_scalar;
}

// ---------------------------------------------------------------------------
// PackedPauliSet.

PackedPauliSet::PackedPauliSet(const std::vector<PauliString>& strings) {
  size_ = strings.size();
  if (size_ == 0) return;
  num_qubits_ = strings.front().num_qubits();
  for (const auto& s : strings) {
    if (s.num_qubits() != num_qubits_) {
      throw std::invalid_argument("PackedPauliSet: inconsistent qubit counts");
    }
  }
  words_ = packed_words(num_qubits_);
  data_.assign(size_ * 2 * words_, 0);
  for (std::size_t i = 0; i < size_; ++i) {
    std::uint64_t* x = data_.data() + i * 2 * words_;
    std::uint64_t* z = x + words_;
    for (std::size_t q = 0; q < num_qubits_; ++q) {
      const std::uint64_t bit = std::uint64_t{1} << (q % 64);
      switch (strings[i].op(q)) {
        case PauliOp::X: x[q / 64] |= bit; break;
        case PauliOp::Y: x[q / 64] |= bit; z[q / 64] |= bit; break;
        case PauliOp::Z: z[q / 64] |= bit; break;
        case PauliOp::I: break;
      }
    }
  }
}

PackedPauliSet::PackedPauliSet(const PauliSet& set) {
  const PackedView v = set.packed_view();
  size_ = v.size;
  num_qubits_ = set.num_qubits();
  words_ = v.words;
  data_.assign(v.data, v.data + size_ * 2 * words_);
}

PackedPauliSet PackedPauliSet::from_raw(std::size_t num_qubits,
                                        std::size_t size,
                                        std::vector<std::uint64_t> words) {
  PackedPauliSet out;
  out.num_qubits_ = num_qubits;
  out.size_ = size;
  out.words_ = packed_words(num_qubits);
  if (words.size() != size * 2 * out.words_) {
    throw std::invalid_argument("PackedPauliSet::from_raw: word count mismatch");
  }
  out.data_ = std::move(words);
  return out;
}

void PackedPauliSet::append(const PackedPauliSet& other) {
  if (other.size_ == 0) return;
  if (size_ == 0) {
    *this = other;
    return;
  }
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("PackedPauliSet::append: qubit count mismatch");
  }
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  size_ += other.size_;
}

PauliString PackedPauliSet::string(std::size_t i) const {
  PauliString s(num_qubits_);
  const std::uint64_t* x = record(i);
  const std::uint64_t* z = x + words_;
  for (std::size_t q = 0; q < num_qubits_; ++q) {
    const bool xb = (x[q / 64] >> (q % 64)) & 1;
    const bool zb = (z[q / 64] >> (q % 64)) & 1;
    s.set_op(q, xb ? (zb ? PauliOp::Y : PauliOp::X)
                   : (zb ? PauliOp::Z : PauliOp::I));
  }
  return s;
}

}  // namespace picasso::pauli
