#pragma once
// Chunked Pauli-set ingestion for the memory-budgeted streaming pipeline.
//
// The budgeted driver never holds the whole encoded Pauli set resident:
// the set is spilled once to a .pset file and read back in contiguous
// chunks of strings. The spill format is the PauliSet::save_binary layout
// (fixed-width header, packed 3-bit words, coefficients) followed by a
// packed-symplectic tail: every string's [x|z] record
// (pauli_packed.hpp), 2 * packed_words(q) words each. Both sections are
// seekable, so a ChunkedPauliReader can reload a chunk either as a full
// PauliSet (load_chunk) or — the conflict hot path — straight into a
// PackedPauliSet (load_chunk_packed) at half the resident bytes and with
// no re-encoding. Files written before the packed tail existed (or by
// PauliSet::save_binary directly) still load: the reader detects the tail
// by file size and otherwise reconstructs packed chunks from the 3-bit
// words.
//
// Incremental sessions grow a spill in place: append_pauli_set writes a
// self-describing *append segment* at EOF (magic, count, 3-bit words,
// coefficients, packed records) instead of rewriting the whole file. A
// reader opened on an appended file walks the segment chain and validates
// every section offset against the actual file layout — it must NOT trust
// the base header's string count or infer the packed tail from the file
// size alone, because appended bytes make both lies. Chunk ranges span
// segment boundaries transparently.
//
// A chunk cache keeps recently used chunks resident as long as the
// MemoryRegistry budget admits them and evicts least-recently-used chunks
// when it does not — the evicted chunk is simply re-read from disk on its
// next use (multi-pass re-scan). PauliChunkCache caches full PauliSet
// chunks (the scalar 3-bit backend), PackedPauliChunkCache caches packed
// records (the SIMD backend).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "pauli/pauli_packed.hpp"
#include "pauli/pauli_set.hpp"
#include "util/memory.hpp"
#include "util/packed_colors.hpp"

namespace picasso::pauli {

/// Writes `set` to `path`: the .pset binary format (save_binary) plus the
/// packed-symplectic tail. Returns the file size in bytes. Throws
/// std::runtime_error on I/O failure.
std::size_t spill_pauli_set(const PauliSet& set, const std::string& path);

/// Appends `delta`'s records to an existing .pset spill at `path` as one
/// chained append segment (magic, count, 3-bit words, coefficients, packed
/// records) without rewriting the base file — how budgeted incremental
/// sessions grow their spill across updates. The base header is validated
/// (magic + qubit count; an empty delta is a no-op). Returns the new total
/// file size in bytes. Readers already open on `path` keep their old view;
/// re-open to see the appended strings.
std::size_t append_pauli_set(const PauliSet& delta, const std::string& path);

/// Writes a packed coloring sidecar at `path` (conventionally the spill
/// path + ".colors"): the PackedColorArray binary round-trip format, so a
/// .pset spill on disk carries its colors at the same 2/4/8-bit width they
/// occupy in memory. Overwrites any existing sidecar. Throws
/// std::runtime_error on I/O failure.
void write_spill_colors(const std::string& path,
                        const util::PackedColorArray& colors);

/// Reads a sidecar written by write_spill_colors. Throws
/// std::runtime_error on missing or malformed files.
util::PackedColorArray read_spill_colors(const std::string& path);

/// Random-access chunk reader over a .pset file. Chunk i covers strings
/// [i * strings_per_chunk, min(n, (i+1) * strings_per_chunk)).
class ChunkedPauliReader {
 public:
  /// Opens `path` and walks its append-segment chain, re-deriving the true
  /// string count and per-segment section offsets from the file layout.
  /// `max_strings` > 0 clamps the reader to the first `max_strings` strings
  /// (the incremental engine's escalation re-solves exactly its ingested
  /// prefix of a still-growing spill). Throws std::invalid_argument when
  /// strings_per_chunk == 0 (chunk indexing divides by it) and
  /// std::runtime_error on unreadable or structurally inconsistent files.
  ChunkedPauliReader(std::string path, std::size_t strings_per_chunk,
                     std::size_t max_strings = 0);

  const std::string& path() const noexcept { return path_; }
  std::size_t num_strings() const noexcept { return num_strings_; }
  std::size_t num_qubits() const noexcept { return num_qubits_; }
  std::size_t strings_per_chunk() const noexcept { return strings_per_chunk_; }
  std::size_t num_chunks() const noexcept {
    return (num_strings_ + strings_per_chunk_ - 1) / strings_per_chunk_;
  }

  /// True when the spill file carries the packed-symplectic tail, i.e.
  /// load_chunk_packed can seek instead of re-encoding.
  bool has_packed_tail() const noexcept { return has_packed_; }

  std::size_t chunk_begin(std::size_t chunk) const noexcept {
    return chunk * strings_per_chunk_;
  }
  std::size_t chunk_size(std::size_t chunk) const noexcept {
    const std::size_t begin = chunk_begin(chunk);
    const std::size_t end =
        std::min(num_strings_, begin + strings_per_chunk_);
    return end > begin ? end - begin : 0;
  }

  /// Bytes chunk `chunk` occupies once resident as a PauliSet (both
  /// encodings plus coefficients) — the unit PauliChunkCache charges
  /// against the memory budget.
  std::size_t chunk_resident_bytes(std::size_t chunk) const noexcept;

  /// Bytes the same chunk occupies as a PackedPauliSet (records only) —
  /// what PackedPauliChunkCache charges. Roughly half the above.
  std::size_t chunk_packed_resident_bytes(std::size_t chunk) const noexcept;

  /// Same estimate as chunk_resident_bytes for an arbitrary string count
  /// (used to size chunks against a budget share before the reader exists).
  static std::size_t resident_bytes_for(std::size_t num_strings,
                                        std::size_t num_qubits) noexcept;

  /// Seeks to and decodes chunk `chunk` as a standalone PauliSet (local
  /// indices [0, chunk_size)). Throws on I/O failure.
  PauliSet load_chunk(std::size_t chunk) const;

  /// Reloads chunk `chunk` in packed form: a straight seek+read of the
  /// packed tail when present, else a decode of the 3-bit section.
  PackedPauliSet load_chunk_packed(std::size_t chunk) const;

  /// Total chunk loads performed through this reader (telemetry: every
  /// load beyond the first per chunk is a budget-forced re-scan).
  std::uint64_t chunk_loads() const noexcept { return chunk_loads_; }

  /// Loads beyond the first per chunk — the budget-forced re-scans, broken
  /// out of chunk_loads() (which also counts each chunk's cold read).
  std::uint64_t re_reads() const noexcept { return re_reads_; }

 private:
  /// One contiguous run of strings in the file: the base save_binary block
  /// or one append segment. Section offsets are absolute file positions;
  /// packed_offset == 0 means the segment carries no packed records.
  struct Segment {
    std::size_t begin = 0;  // global id of the segment's first string
    std::size_t count = 0;
    std::uint64_t words3_offset = 0;
    std::uint64_t coefs_offset = 0;
    std::uint64_t packed_offset = 0;
  };

  enum class Section { Words3, Coefs, Packed };

  /// Telemetry for one completed chunk read of `bytes` payload bytes:
  /// counts the load, classifies it as cold read vs re-read, and feeds the
  /// global work counters.
  void note_load(std::size_t chunk, std::size_t bytes) const;

  /// Reads `count` strings of one section starting at global string
  /// `begin` into `dest`, crossing segment boundaries as needed.
  void read_span(std::istream& in, Section section, std::size_t begin,
                 std::size_t count, char* dest) const;

  std::string path_;
  std::size_t strings_per_chunk_ = 0;
  std::size_t num_strings_ = 0;
  std::size_t num_qubits_ = 0;
  std::size_t words3_ = 0;
  std::size_t words2_ = 0;
  bool has_packed_ = false;
  std::vector<Segment> segments_;
  mutable std::uint64_t chunk_loads_ = 0;
  mutable std::uint64_t re_reads_ = 0;
  mutable std::vector<bool> loaded_;  // per chunk: read at least once
};

namespace detail {

/// What a chunk cache needs to know about its set type: how to load a
/// chunk and what the resident charge is.
template <typename SetT>
struct ChunkCacheTraits;

template <>
struct ChunkCacheTraits<PauliSet> {
  static PauliSet load(const ChunkedPauliReader& r, std::size_t chunk) {
    return r.load_chunk(chunk);
  }
  static std::size_t bytes(const ChunkedPauliReader& r, std::size_t chunk) {
    return r.chunk_resident_bytes(chunk);
  }
};

template <>
struct ChunkCacheTraits<PackedPauliSet> {
  static PackedPauliSet load(const ChunkedPauliReader& r, std::size_t chunk) {
    return r.load_chunk_packed(chunk);
  }
  static std::size_t bytes(const ChunkedPauliReader& r, std::size_t chunk) {
    return r.chunk_packed_resident_bytes(chunk);
  }
};

}  // namespace detail

/// LRU cache of resident chunks, admission-controlled by the registry
/// budget (MemSubsystem::ChunkCache). get() returns a shared_ptr so a
/// caller-pinned chunk survives eviction (the cache merely drops its own
/// reference; the charge is released when the last owner lets go). When
/// even an empty cache cannot admit one chunk — budget smaller than one
/// chunk — the chunk is loaded and charged anyway (recorded as an
/// over-budget event) so the pipeline degrades to pure re-scan instead of
/// failing.
template <typename SetT>
class BasicPauliChunkCache {
 public:
  explicit BasicPauliChunkCache(
      const ChunkedPauliReader& reader,
      util::MemoryRegistry& registry = util::global_memory())
      : reader_(&reader), registry_(&registry) {}

  std::shared_ptr<const SetT> get(std::size_t chunk) {
    ++clock_;
    for (Entry& e : entries_) {
      if (e.chunk == chunk) {
        e.last_use = clock_;
        ++hits_;
        obs::count(obs::Counter::ChunkCacheHits);
        return e.set;
      }
    }
    ++misses_;
    obs::count(obs::Counter::ChunkCacheMisses);

    // Miss: make room under the budget, oldest chunks first. try_charge is
    // the admission test; eviction only drops the cache's reference, so a
    // chunk pinned by the caller keeps its charge until the pin goes away.
    const std::size_t bytes =
        detail::ChunkCacheTraits<SetT>::bytes(*reader_, chunk);
    bool charged =
        registry_->try_charge(util::MemSubsystem::ChunkCache, bytes);
    while (!charged && !entries_.empty()) {
      auto oldest = std::min_element(entries_.begin(), entries_.end(),
                                     [](const Entry& a, const Entry& b) {
                                       return a.last_use < b.last_use;
                                     });
      entries_.erase(oldest);
      ++evictions_;
      obs::count(obs::Counter::ChunkCacheEvictions);
      charged =
          registry_->try_charge(util::MemSubsystem::ChunkCache, bytes);
    }
    if (!charged) {
      // Budget smaller than a single chunk (or everything else is pinned):
      // proceed anyway — the overage is recorded as an over-budget event —
      // rather than deadlocking the pipeline.
      registry_->charge(util::MemSubsystem::ChunkCache, bytes);
    }

    util::MemoryRegistry* registry = registry_;
    std::shared_ptr<const SetT> set(
        new SetT(detail::ChunkCacheTraits<SetT>::load(*reader_, chunk)),
        [registry, bytes](const SetT* p) {
          registry->release(util::MemSubsystem::ChunkCache, bytes);
          delete p;
        });
    entries_.push_back({chunk, set, clock_});
    return set;
  }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }

  /// Drops every cached chunk (charges release as references expire).
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    std::size_t chunk = 0;
    std::shared_ptr<const SetT> set;
    std::uint64_t last_use = 0;
  };

  const ChunkedPauliReader* reader_;
  util::MemoryRegistry* registry_;
  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

using PauliChunkCache = BasicPauliChunkCache<PauliSet>;
using PackedPauliChunkCache = BasicPauliChunkCache<PackedPauliSet>;

}  // namespace picasso::pauli
