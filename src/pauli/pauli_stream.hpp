#pragma once
// Chunked Pauli-set ingestion for the memory-budgeted streaming pipeline.
//
// The budgeted driver never holds the whole encoded Pauli set resident:
// the set is spilled once to a .pset file (the PauliSet::save_binary
// format, which is seekable — fixed-width header, then packed 3-bit words,
// then coefficients) and read back in contiguous chunks of strings. A
// ChunkedPauliReader seeks straight to a chunk's words and decodes only
// that slice; a PauliChunkCache keeps recently used chunks resident as long
// as the MemoryRegistry budget admits them and evicts least-recently-used
// chunks when it does not — the evicted chunk is simply re-read from disk
// on its next use (multi-pass re-scan).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pauli/pauli_set.hpp"
#include "util/memory.hpp"

namespace picasso::pauli {

/// Writes `set` to `path` in the .pset binary format (save_binary). Returns
/// the file size in bytes. Throws std::runtime_error on I/O failure.
std::size_t spill_pauli_set(const PauliSet& set, const std::string& path);

/// Random-access chunk reader over a .pset file. Chunk i covers strings
/// [i * strings_per_chunk, min(n, (i+1) * strings_per_chunk)).
class ChunkedPauliReader {
 public:
  ChunkedPauliReader(std::string path, std::size_t strings_per_chunk);

  const std::string& path() const noexcept { return path_; }
  std::size_t num_strings() const noexcept { return num_strings_; }
  std::size_t num_qubits() const noexcept { return num_qubits_; }
  std::size_t strings_per_chunk() const noexcept { return strings_per_chunk_; }
  std::size_t num_chunks() const noexcept {
    return strings_per_chunk_ == 0
               ? 0
               : (num_strings_ + strings_per_chunk_ - 1) / strings_per_chunk_;
  }

  std::size_t chunk_begin(std::size_t chunk) const noexcept {
    return chunk * strings_per_chunk_;
  }
  std::size_t chunk_size(std::size_t chunk) const noexcept {
    const std::size_t begin = chunk_begin(chunk);
    const std::size_t end =
        std::min(num_strings_, begin + strings_per_chunk_);
    return end > begin ? end - begin : 0;
  }

  /// Bytes chunk `chunk` occupies once resident as a PauliSet (both
  /// encodings plus coefficients) — the unit the chunk cache charges
  /// against the memory budget.
  std::size_t chunk_resident_bytes(std::size_t chunk) const noexcept;

  /// Same estimate for an arbitrary string count (used to size chunks
  /// against a budget share before the reader exists).
  static std::size_t resident_bytes_for(std::size_t num_strings,
                                        std::size_t num_qubits) noexcept;

  /// Seeks to and decodes chunk `chunk` as a standalone PauliSet (local
  /// indices [0, chunk_size)). Throws on I/O failure.
  PauliSet load_chunk(std::size_t chunk) const;

  /// Total chunk loads performed through this reader (telemetry: every
  /// load beyond the first per chunk is a budget-forced re-scan).
  std::uint64_t chunk_loads() const noexcept { return chunk_loads_; }

 private:
  std::string path_;
  std::size_t strings_per_chunk_ = 0;
  std::size_t num_strings_ = 0;
  std::size_t num_qubits_ = 0;
  std::size_t words3_ = 0;
  mutable std::uint64_t chunk_loads_ = 0;
};

/// LRU cache of resident chunks, admission-controlled by the registry
/// budget (MemSubsystem::ChunkCache). get() returns a shared_ptr so a
/// caller-pinned chunk survives eviction (the cache merely drops its own
/// reference; the charge is released when the last owner lets go). When
/// even an empty cache cannot admit one chunk — budget smaller than one
/// chunk — the chunk is loaded and charged anyway (recorded as an
/// over-budget event) so the pipeline degrades to pure re-scan instead of
/// failing.
class PauliChunkCache {
 public:
  PauliChunkCache(const ChunkedPauliReader& reader,
                  util::MemoryRegistry& registry = util::global_memory())
      : reader_(&reader), registry_(&registry) {}

  std::shared_ptr<const PauliSet> get(std::size_t chunk);

  std::uint64_t evictions() const noexcept { return evictions_; }

  /// Drops every cached chunk (charges release as references expire).
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    std::size_t chunk = 0;
    std::shared_ptr<const PauliSet> set;
    std::uint64_t last_use = 0;
  };

  const ChunkedPauliReader* reader_;
  util::MemoryRegistry* registry_;
  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace picasso::pauli
