#pragma once
// Dataset registry mirroring Table II of the paper, at container scale.
//
// Paper datasets go up to 2.1M Pauli strings / 1.1T edges on a 512 GB + A100
// machine; this environment has 16 GB and one core, so the registry generates
// the same molecule families (Hn x {1D,2D,3D} x {sto3g,631g,6311g}) at sizes
// where the *small* class still fits explicit-graph baselines and the
// medium/large classes exceed them — the same relative regime as the paper.

#include <cstdint>
#include <string>
#include <vector>

#include "pauli/molecule.hpp"
#include "pauli/pauli_set.hpp"

namespace picasso::pauli {

enum class SizeClass { Small, Medium, Large };

const char* to_string(SizeClass c) noexcept;

struct DatasetSpec {
  std::string name;
  MoleculeSpec molecule;
  SizeClass size_class = SizeClass::Small;
  /// If non-zero, keep only the max_terms largest-|coefficient| strings.
  std::size_t cap = 0;
  /// Include the CC-doubles ansatz strings (JW(T̂) + JW(T̂)^2) on top of the
  /// Hamiltonian's — the paper's unitary-partitioning application input.
  bool with_ansatz = true;
  /// Amplitude threshold for the ansatz operator (controls dataset size).
  double amp_threshold = 1e-6;
};

/// All registered datasets, ordered small -> large.
const std::vector<DatasetSpec>& all_datasets();

/// Registered datasets of one size class.
std::vector<DatasetSpec> datasets_in_class(SizeClass c);

/// Looks up a dataset by name; throws std::out_of_range if unknown.
const DatasetSpec& dataset_by_name(const std::string& name);

/// Generates (and memoises) the Pauli set for a dataset.
const PauliSet& load_dataset(const DatasetSpec& spec);

/// Drops the memoised Pauli sets (tests use this to bound memory).
void clear_dataset_cache();

/// The 17 Pauli strings of the paper's Fig. 1 (H2 / sto-3g example), which
/// the paper groups into 9 unitaries. Coefficients are set to 1.
PauliSet fig1_h2_set();

}  // namespace picasso::pauli
