#include "pauli/pauli_stream.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "pauli/encoding.hpp"

namespace picasso::pauli {

namespace {

constexpr std::uint64_t kMagic = 0x5041554c49534554ULL;  // "PAULISET"
constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint64_t);

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("pauli_stream: truncated .pset header");
  return value;
}

}  // namespace

std::size_t spill_pauli_set(const PauliSet& set, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("spill_pauli_set: cannot open " + path);
  }
  set.save_binary(out);
  // Packed-symplectic tail: every record [x|z] back to back. The planes are
  // already contiguous in encoded storage, so this is one write — and the
  // reader can reload any chunk packed with a single seek instead of
  // re-encoding from the 3-bit words.
  const PackedView view = set.packed_view();
  const std::size_t packed_words_total = view.size * 2 * view.words;
  out.write(reinterpret_cast<const char*>(view.data),
            static_cast<std::streamsize>(packed_words_total *
                                         sizeof(std::uint64_t)));
  out.flush();
  if (!out) {
    throw std::runtime_error("spill_pauli_set: write failed for " + path);
  }
  const std::size_t total_bytes =
      kHeaderBytes +
      set.size() * (set.words_per_string() * sizeof(std::uint64_t) +
                    sizeof(double)) +
      packed_words_total * sizeof(std::uint64_t);
  obs::count(obs::Counter::SpillBytesWritten, total_bytes);
  return total_bytes;
}

ChunkedPauliReader::ChunkedPauliReader(std::string path,
                                       std::size_t strings_per_chunk)
    : path_(std::move(path)), strings_per_chunk_(strings_per_chunk) {
  if (strings_per_chunk_ == 0) {
    throw std::invalid_argument(
        "ChunkedPauliReader: strings_per_chunk must be positive (chunk "
        "indexing divides by it)");
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: cannot open " + path_);
  }
  if (read_pod<std::uint64_t>(in) != kMagic) {
    throw std::runtime_error("ChunkedPauliReader: bad magic in " + path_);
  }
  num_qubits_ = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  num_strings_ = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  words3_ = words_per_string3(num_qubits_);
  words2_ = packed_words(num_qubits_);
  // The packed tail is detected by size: header + 3-bit words + coefficients
  // + the full run of [x|z] records.
  std::error_code ec;
  const auto file_bytes = std::filesystem::file_size(path_, ec);
  const std::size_t tail_offset =
      kHeaderBytes + num_strings_ * (words3_ * sizeof(std::uint64_t) +
                                     sizeof(double));
  has_packed_ =
      !ec && file_bytes >= tail_offset + num_strings_ * 2 * words2_ *
                                             sizeof(std::uint64_t);
}

std::size_t ChunkedPauliReader::resident_bytes_for(
    std::size_t num_strings, std::size_t num_qubits) noexcept {
  // Matches PauliSet::logical_bytes(): 3-bit words + symplectic planes +
  // coefficients.
  const std::size_t w3 = words_per_string3(num_qubits);
  const std::size_t w2 = words_per_string2(num_qubits);
  return num_strings *
         ((w3 + 2 * w2) * sizeof(std::uint64_t) + sizeof(double));
}

std::size_t ChunkedPauliReader::chunk_resident_bytes(
    std::size_t chunk) const noexcept {
  return resident_bytes_for(chunk_size(chunk), num_qubits_);
}

std::size_t ChunkedPauliReader::chunk_packed_resident_bytes(
    std::size_t chunk) const noexcept {
  return chunk_size(chunk) * 2 * words2_ * sizeof(std::uint64_t);
}

void ChunkedPauliReader::note_load(std::size_t chunk,
                                   std::size_t bytes) const {
  ++chunk_loads_;
  if (loaded_.empty()) loaded_.resize(num_chunks(), false);
  if (loaded_[chunk]) {
    ++re_reads_;
    obs::count(obs::Counter::ChunkReReads);
  } else {
    loaded_[chunk] = true;
  }
  obs::count(obs::Counter::SpillBytesRead, bytes);
}

PauliSet ChunkedPauliReader::load_chunk(std::size_t chunk) const {
  const std::size_t begin = chunk_begin(chunk);
  const std::size_t count = chunk_size(chunk);
  if (count == 0) return PauliSet{};

  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: cannot reopen " + path_);
  }
  std::vector<std::uint64_t> packed(count * words3_);
  in.seekg(static_cast<std::streamoff>(kHeaderBytes +
                                       begin * words3_ * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(packed.data()),
          static_cast<std::streamsize>(packed.size() * sizeof(std::uint64_t)));
  std::vector<double> coefs(count);
  in.seekg(static_cast<std::streamoff>(
      kHeaderBytes + num_strings_ * words3_ * sizeof(std::uint64_t) +
      begin * sizeof(double)));
  in.read(reinterpret_cast<char*>(coefs.data()),
          static_cast<std::streamsize>(coefs.size() * sizeof(double)));
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: truncated chunk in " +
                             path_);
  }

  std::vector<PauliString> strings;
  strings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    strings.push_back(decode3(packed.data() + i * words3_, num_qubits_));
  }
  note_load(chunk, packed.size() * sizeof(std::uint64_t) +
                       coefs.size() * sizeof(double));
  return PauliSet(strings, std::move(coefs));
}

PackedPauliSet ChunkedPauliReader::load_chunk_packed(std::size_t chunk) const {
  const std::size_t begin = chunk_begin(chunk);
  const std::size_t count = chunk_size(chunk);
  if (count == 0) return PackedPauliSet{};

  if (!has_packed_) {
    // Legacy spill without the packed tail: decode the 3-bit section.
    // load_chunk counts the load.
    return PackedPauliSet(load_chunk(chunk));
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: cannot reopen " + path_);
  }
  const std::size_t tail_offset =
      kHeaderBytes + num_strings_ * (words3_ * sizeof(std::uint64_t) +
                                     sizeof(double));
  std::vector<std::uint64_t> words(count * 2 * words2_);
  in.seekg(static_cast<std::streamoff>(
      tail_offset + begin * 2 * words2_ * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(words.data()),
          static_cast<std::streamsize>(words.size() * sizeof(std::uint64_t)));
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: truncated packed chunk in " +
                             path_);
  }
  note_load(chunk, words.size() * sizeof(std::uint64_t));
  return PackedPauliSet::from_raw(num_qubits_, count, std::move(words));
}

}  // namespace picasso::pauli
