#include "pauli/pauli_stream.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "pauli/encoding.hpp"

namespace picasso::pauli {

namespace {

constexpr std::uint64_t kMagic = 0x5041554c49534554ULL;       // "PAULISET"
constexpr std::uint64_t kAppendMagic = 0x5041554c49415050ULL;  // "PAULIAPP"
constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint64_t);
constexpr std::size_t kSegmentHeaderBytes = 2 * sizeof(std::uint64_t);

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("pauli_stream: truncated .pset header");
  return value;
}

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

}  // namespace

std::size_t spill_pauli_set(const PauliSet& set, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("spill_pauli_set: cannot open " + path);
  }
  set.save_binary(out);
  // Packed-symplectic tail: every record [x|z] back to back. The planes are
  // already contiguous in encoded storage, so this is one write — and the
  // reader can reload any chunk packed with a single seek instead of
  // re-encoding from the 3-bit words.
  const PackedView view = set.packed_view();
  const std::size_t packed_words_total = view.size * 2 * view.words;
  out.write(reinterpret_cast<const char*>(view.data),
            static_cast<std::streamsize>(packed_words_total *
                                         sizeof(std::uint64_t)));
  out.flush();
  if (!out) {
    throw std::runtime_error("spill_pauli_set: write failed for " + path);
  }
  const std::size_t total_bytes =
      kHeaderBytes +
      set.size() * (set.words_per_string() * sizeof(std::uint64_t) +
                    sizeof(double)) +
      packed_words_total * sizeof(std::uint64_t);
  obs::count(obs::Counter::SpillBytesWritten, total_bytes);
  return total_bytes;
}

ChunkedPauliReader::ChunkedPauliReader(std::string path,
                                       std::size_t strings_per_chunk,
                                       std::size_t max_strings)
    : path_(std::move(path)), strings_per_chunk_(strings_per_chunk) {
  if (strings_per_chunk_ == 0) {
    throw std::invalid_argument(
        "ChunkedPauliReader: strings_per_chunk must be positive (chunk "
        "indexing divides by it)");
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: cannot open " + path_);
  }
  if (read_pod<std::uint64_t>(in) != kMagic) {
    throw std::runtime_error("ChunkedPauliReader: bad magic in " + path_);
  }
  num_qubits_ = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  const auto base_count = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  words3_ = words_per_string3(num_qubits_);
  words2_ = packed_words(num_qubits_);

  std::error_code ec;
  const std::uint64_t file_bytes = std::filesystem::file_size(path_, ec);
  if (ec) {
    throw std::runtime_error("ChunkedPauliReader: cannot stat " + path_);
  }

  // The base header's count describes the base block only; everything past
  // it must be re-derived from the file itself. The base block ends either
  // after its coefficients (legacy save_binary output) or after a full
  // packed-symplectic tail (spill_pauli_set output); whichever end position
  // lets a chain of well-formed append segments run exactly to EOF is the
  // truth. Trusting the cached header — or inferring the tail from file
  // size alone — misreads any file that has been appended to.
  const std::uint64_t coefs_end =
      kHeaderBytes +
      base_count * (words3_ * sizeof(std::uint64_t) + sizeof(double));
  const std::uint64_t tail_end =
      coefs_end + base_count * 2 * words2_ * sizeof(std::uint64_t);

  // Walks the append-segment chain from `start` to EOF; returns false on
  // any structural mismatch (bad magic, section overrunning the file).
  const auto walk_segments = [&](std::uint64_t start,
                                 std::vector<Segment>& out) {
    out.clear();
    if (start > file_bytes) return false;
    std::uint64_t pos = start;
    std::size_t next_id = base_count;
    while (pos < file_bytes) {
      if (file_bytes - pos < kSegmentHeaderBytes) return false;
      in.clear();
      in.seekg(static_cast<std::streamoff>(pos));
      std::uint64_t magic = 0, count = 0;
      in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
      in.read(reinterpret_cast<char*>(&count), sizeof(count));
      if (!in || magic != kAppendMagic) return false;
      Segment seg;
      seg.begin = next_id;
      seg.count = static_cast<std::size_t>(count);
      seg.words3_offset = pos + kSegmentHeaderBytes;
      seg.coefs_offset =
          seg.words3_offset + count * words3_ * sizeof(std::uint64_t);
      seg.packed_offset = seg.coefs_offset + count * sizeof(double);
      const std::uint64_t end =
          seg.packed_offset + count * 2 * words2_ * sizeof(std::uint64_t);
      if (end > file_bytes) return false;
      out.push_back(seg);
      next_id += seg.count;
      pos = end;
    }
    return true;
  };

  Segment base;
  base.begin = 0;
  base.count = base_count;
  base.words3_offset = kHeaderBytes;
  base.coefs_offset =
      kHeaderBytes + base_count * words3_ * sizeof(std::uint64_t);

  std::vector<Segment> appended;
  bool base_has_packed;
  if (walk_segments(tail_end, appended)) {
    base.packed_offset = base_count > 0 ? coefs_end : 0;
    base_has_packed = true;
  } else if (walk_segments(coefs_end, appended)) {
    base.packed_offset = 0;
    base_has_packed = base_count == 0;  // vacuously packed when empty
  } else {
    throw std::runtime_error(
        "ChunkedPauliReader: unrecognized trailing bytes in " + path_ +
        " (truncated append segment or corrupt packed tail)");
  }

  segments_.push_back(base);
  segments_.insert(segments_.end(), appended.begin(), appended.end());
  num_strings_ = base_count;
  for (const Segment& seg : appended) num_strings_ += seg.count;
  if (max_strings > 0) num_strings_ = std::min(num_strings_, max_strings);
  has_packed_ = base_has_packed;  // append segments always carry packed
}

std::size_t ChunkedPauliReader::resident_bytes_for(
    std::size_t num_strings, std::size_t num_qubits) noexcept {
  // Matches PauliSet::logical_bytes(): 3-bit words + symplectic planes +
  // coefficients.
  const std::size_t w3 = words_per_string3(num_qubits);
  const std::size_t w2 = words_per_string2(num_qubits);
  return num_strings *
         ((w3 + 2 * w2) * sizeof(std::uint64_t) + sizeof(double));
}

std::size_t ChunkedPauliReader::chunk_resident_bytes(
    std::size_t chunk) const noexcept {
  return resident_bytes_for(chunk_size(chunk), num_qubits_);
}

std::size_t ChunkedPauliReader::chunk_packed_resident_bytes(
    std::size_t chunk) const noexcept {
  return chunk_size(chunk) * 2 * words2_ * sizeof(std::uint64_t);
}

void ChunkedPauliReader::note_load(std::size_t chunk,
                                   std::size_t bytes) const {
  ++chunk_loads_;
  if (loaded_.empty()) loaded_.resize(num_chunks(), false);
  if (loaded_[chunk]) {
    ++re_reads_;
    obs::count(obs::Counter::ChunkReReads);
  } else {
    loaded_[chunk] = true;
  }
  obs::count(obs::Counter::SpillBytesRead, bytes);
}

void ChunkedPauliReader::read_span(std::istream& in, Section section,
                                   std::size_t begin, std::size_t count,
                                   char* dest) const {
  std::size_t stride = 0;
  switch (section) {
    case Section::Words3: stride = words3_ * sizeof(std::uint64_t); break;
    case Section::Coefs: stride = sizeof(double); break;
    case Section::Packed: stride = 2 * words2_ * sizeof(std::uint64_t); break;
  }
  const std::size_t end = begin + count;
  for (const Segment& seg : segments_) {
    const std::size_t lo = std::max(begin, seg.begin);
    const std::size_t hi = std::min(end, seg.begin + seg.count);
    if (lo >= hi) continue;
    std::uint64_t offset = 0;
    switch (section) {
      case Section::Words3: offset = seg.words3_offset; break;
      case Section::Coefs: offset = seg.coefs_offset; break;
      case Section::Packed: offset = seg.packed_offset; break;
    }
    if (section == Section::Packed && offset == 0) {
      throw std::runtime_error(
          "ChunkedPauliReader: segment without packed records in " + path_);
    }
    in.clear();
    in.seekg(static_cast<std::streamoff>(offset + (lo - seg.begin) * stride));
    in.read(dest + (lo - begin) * stride,
            static_cast<std::streamsize>((hi - lo) * stride));
    if (!in) {
      throw std::runtime_error("ChunkedPauliReader: truncated chunk in " +
                               path_);
    }
  }
}

PauliSet ChunkedPauliReader::load_chunk(std::size_t chunk) const {
  const std::size_t begin = chunk_begin(chunk);
  const std::size_t count = chunk_size(chunk);
  if (count == 0) return PauliSet{};

  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: cannot reopen " + path_);
  }
  std::vector<std::uint64_t> packed(count * words3_);
  read_span(in, Section::Words3, begin, count,
            reinterpret_cast<char*>(packed.data()));
  std::vector<double> coefs(count);
  read_span(in, Section::Coefs, begin, count,
            reinterpret_cast<char*>(coefs.data()));

  std::vector<PauliString> strings;
  strings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    strings.push_back(decode3(packed.data() + i * words3_, num_qubits_));
  }
  note_load(chunk, packed.size() * sizeof(std::uint64_t) +
                       coefs.size() * sizeof(double));
  return PauliSet(strings, std::move(coefs));
}

PackedPauliSet ChunkedPauliReader::load_chunk_packed(std::size_t chunk) const {
  const std::size_t begin = chunk_begin(chunk);
  const std::size_t count = chunk_size(chunk);
  if (count == 0) return PackedPauliSet{};

  if (!has_packed_) {
    // Legacy spill without the packed tail: decode the 3-bit section.
    // load_chunk counts the load.
    return PackedPauliSet(load_chunk(chunk));
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: cannot reopen " + path_);
  }
  std::vector<std::uint64_t> words(count * 2 * words2_);
  read_span(in, Section::Packed, begin, count,
            reinterpret_cast<char*>(words.data()));
  note_load(chunk, words.size() * sizeof(std::uint64_t));
  return PackedPauliSet::from_raw(num_qubits_, count, std::move(words));
}

std::size_t append_pauli_set(const PauliSet& delta, const std::string& path) {
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("append_pauli_set: cannot open " + path);
    }
    if (read_pod<std::uint64_t>(in) != kMagic) {
      throw std::runtime_error("append_pauli_set: bad magic in " + path);
    }
    const auto base_qubits =
        static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    if (!delta.empty() && base_qubits != delta.num_qubits()) {
      throw std::invalid_argument("append_pauli_set: qubit count mismatch");
    }
  }
  std::error_code ec;
  if (delta.empty()) {
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) throw std::runtime_error("append_pauli_set: cannot stat " + path);
    return static_cast<std::size_t>(size);
  }

  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    throw std::runtime_error("append_pauli_set: cannot append to " + path);
  }
  const std::size_t count = delta.size();
  const std::size_t words3 = delta.words_per_string();
  write_pod(out, kAppendMagic);
  write_pod(out, static_cast<std::uint64_t>(count));
  out.write(reinterpret_cast<const char*>(delta.encoded3(0)),
            static_cast<std::streamsize>(count * words3 *
                                         sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(delta.coefficients().data()),
            static_cast<std::streamsize>(count * sizeof(double)));
  const PackedView view = delta.packed_view();
  const std::size_t packed_words_total = view.size * 2 * view.words;
  out.write(reinterpret_cast<const char*>(view.data),
            static_cast<std::streamsize>(packed_words_total *
                                         sizeof(std::uint64_t)));
  out.flush();
  if (!out) {
    throw std::runtime_error("append_pauli_set: write failed for " + path);
  }
  const std::size_t segment_bytes =
      kSegmentHeaderBytes +
      count * (words3 * sizeof(std::uint64_t) + sizeof(double)) +
      packed_words_total * sizeof(std::uint64_t);
  obs::count(obs::Counter::SpillBytesWritten, segment_bytes);
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("append_pauli_set: cannot stat " + path);
  return static_cast<std::size_t>(size);
}

void write_spill_colors(const std::string& path,
                        const util::PackedColorArray& colors) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_spill_colors: cannot open " + path);
  }
  colors.save(out);
  out.flush();
  if (!out) {
    throw std::runtime_error("write_spill_colors: write failed for " + path);
  }
}

util::PackedColorArray read_spill_colors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_spill_colors: cannot open " + path);
  }
  return util::PackedColorArray::load(in);
}

}  // namespace picasso::pauli
