#include "pauli/pauli_stream.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "pauli/encoding.hpp"

namespace picasso::pauli {

namespace {

constexpr std::uint64_t kMagic = 0x5041554c49534554ULL;  // "PAULISET"
constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint64_t);

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("pauli_stream: truncated .pset header");
  return value;
}

}  // namespace

std::size_t spill_pauli_set(const PauliSet& set, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("spill_pauli_set: cannot open " + path);
  }
  set.save_binary(out);
  out.flush();
  if (!out) {
    throw std::runtime_error("spill_pauli_set: write failed for " + path);
  }
  return kHeaderBytes +
         set.size() * (set.words_per_string() * sizeof(std::uint64_t) +
                       sizeof(double));
}

ChunkedPauliReader::ChunkedPauliReader(std::string path,
                                       std::size_t strings_per_chunk)
    : path_(std::move(path)),
      strings_per_chunk_(std::max<std::size_t>(1, strings_per_chunk)) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: cannot open " + path_);
  }
  if (read_pod<std::uint64_t>(in) != kMagic) {
    throw std::runtime_error("ChunkedPauliReader: bad magic in " + path_);
  }
  num_qubits_ = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  num_strings_ = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  words3_ = words_per_string3(num_qubits_);
}

std::size_t ChunkedPauliReader::resident_bytes_for(
    std::size_t num_strings, std::size_t num_qubits) noexcept {
  // Matches PauliSet::logical_bytes(): 3-bit words + symplectic planes +
  // coefficients.
  const std::size_t w3 = words_per_string3(num_qubits);
  const std::size_t w2 = words_per_string2(num_qubits);
  return num_strings *
         ((w3 + 2 * w2) * sizeof(std::uint64_t) + sizeof(double));
}

std::size_t ChunkedPauliReader::chunk_resident_bytes(
    std::size_t chunk) const noexcept {
  return resident_bytes_for(chunk_size(chunk), num_qubits_);
}

PauliSet ChunkedPauliReader::load_chunk(std::size_t chunk) const {
  const std::size_t begin = chunk_begin(chunk);
  const std::size_t count = chunk_size(chunk);
  if (count == 0) return PauliSet{};

  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: cannot reopen " + path_);
  }
  std::vector<std::uint64_t> packed(count * words3_);
  in.seekg(static_cast<std::streamoff>(kHeaderBytes +
                                       begin * words3_ * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(packed.data()),
          static_cast<std::streamsize>(packed.size() * sizeof(std::uint64_t)));
  std::vector<double> coefs(count);
  in.seekg(static_cast<std::streamoff>(
      kHeaderBytes + num_strings_ * words3_ * sizeof(std::uint64_t) +
      begin * sizeof(double)));
  in.read(reinterpret_cast<char*>(coefs.data()),
          static_cast<std::streamsize>(coefs.size() * sizeof(double)));
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: truncated chunk in " +
                             path_);
  }

  std::vector<PauliString> strings;
  strings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    strings.push_back(decode3(packed.data() + i * words3_, num_qubits_));
  }
  ++chunk_loads_;
  return PauliSet(strings, std::move(coefs));
}

std::shared_ptr<const PauliSet> PauliChunkCache::get(std::size_t chunk) {
  ++clock_;
  for (Entry& e : entries_) {
    if (e.chunk == chunk) {
      e.last_use = clock_;
      return e.set;
    }
  }

  // Miss: make room under the budget, oldest chunks first. try_charge is
  // the admission test; eviction only drops the cache's reference, so a
  // chunk pinned by the caller keeps its charge until the pin goes away.
  const std::size_t bytes = reader_->chunk_resident_bytes(chunk);
  bool charged = registry_->try_charge(util::MemSubsystem::ChunkCache, bytes);
  while (!charged && !entries_.empty()) {
    auto oldest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.last_use < b.last_use; });
    entries_.erase(oldest);
    ++evictions_;
    charged = registry_->try_charge(util::MemSubsystem::ChunkCache, bytes);
  }
  if (!charged) {
    // Budget smaller than a single chunk (or everything else is pinned):
    // proceed anyway — the overage is recorded as an over-budget event —
    // rather than deadlocking the pipeline.
    registry_->charge(util::MemSubsystem::ChunkCache, bytes);
  }

  util::MemoryRegistry* registry = registry_;
  std::shared_ptr<const PauliSet> set(
      new PauliSet(reader_->load_chunk(chunk)),
      [registry, bytes](const PauliSet* p) {
        registry->release(util::MemSubsystem::ChunkCache, bytes);
        delete p;
      });
  entries_.push_back({chunk, set, clock_});
  return set;
}

}  // namespace picasso::pauli
