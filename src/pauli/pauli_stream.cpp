#include "pauli/pauli_stream.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "pauli/encoding.hpp"
#include "util/failpoint.hpp"
#include "util/fnv.hpp"

namespace picasso::pauli {

namespace {

constexpr std::uint64_t kMagic = 0x5041554c49534554ULL;       // "PAULISET"
constexpr std::uint64_t kAppendMagic = 0x5041554c49415050ULL;  // "PAULIAPP"
// Checksum trailer appended after the base block and after every append
// segment: [kTrailerMagic][u64 FNV-1a of the covered bytes]. Legacy files
// without trailers parse exactly as before; a trailer whose checksum does
// not match the bytes it covers is a torn or corrupt write, detected on
// reopen before any chunk is served.
constexpr std::uint64_t kTrailerMagic = 0x5053455453554d31ULL;  // "PSETSUM1"
constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint64_t);
constexpr std::size_t kSegmentHeaderBytes = 2 * sizeof(std::uint64_t);
constexpr std::size_t kTrailerBytes = 2 * sizeof(std::uint64_t);

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("pauli_stream: truncated .pset header");
  return value;
}

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// FNV-1a over file bytes [begin, end) — trailer verification on reopen.
std::uint64_t fnv_stream_range(std::istream& in, std::uint64_t begin,
                               std::uint64_t end, const std::string& path) {
  in.clear();
  in.seekg(static_cast<std::streamoff>(begin));
  char buf[1 << 16];
  std::uint64_t h = util::kFnvOffsetBasis;
  std::uint64_t remaining = end - begin;
  while (remaining > 0) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(sizeof(buf), remaining));
    in.read(buf, static_cast<std::streamsize>(n));
    if (!in) {
      throw std::runtime_error(
          "pauli_stream: truncated while verifying checksum in " + path);
    }
    h = util::fnv1a_bytes(h, buf, n);
    remaining -= n;
  }
  return h;
}

/// Maps a failed stream write to a structured error: real ENOSPC surfaces
/// as std::system_error(ENOSPC) so callers can fall back in memory instead
/// of treating a full disk like an internal bug.
[[noreturn]] void throw_write_failure(const std::string& what,
                                      const std::string& path) {
  if (errno == ENOSPC) {
    throw std::system_error(ENOSPC, std::generic_category(),
                            what + ": device full writing " + path);
  }
  throw std::runtime_error(what + ": write failed for " + path);
}

}  // namespace

std::size_t spill_pauli_set(const PauliSet& set, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("spill_pauli_set: cannot open " + path);
  }
  errno = 0;
  set.save_binary(out);
  // Packed-symplectic tail: every record [x|z] back to back. The planes are
  // already contiguous in encoded storage, so this is one write — and the
  // reader can reload any chunk packed with a single seek instead of
  // re-encoding from the 3-bit words.
  const PackedView view = set.packed_view();
  const std::size_t packed_words_total = view.size * 2 * view.words;
  const std::size_t tail_bytes = packed_words_total * sizeof(std::uint64_t);
  // Failpoint "spill.write": error/enospc throw here, delay sleeps, short:N
  // truncates the tail and skips the trailer — the on-disk state a crash
  // mid-write would leave, which reopen must then detect.
  const std::size_t tail_written = PICASSO_FAILPOINT_CLAMP("spill.write",
                                                           tail_bytes);
  out.write(reinterpret_cast<const char*>(view.data),
            static_cast<std::streamsize>(tail_written));
  if (tail_written == tail_bytes) {
    // Base-block trailer: FNV over exactly the bytes save_binary + the tail
    // put on disk (header fields fold little-endian, matching x86 file
    // order), so reopen can verify without trusting anything but the file.
    std::uint64_t sum = util::kFnvOffsetBasis;
    sum = util::fnv1a_u64(sum, kMagic);
    sum = util::fnv1a_u64(sum, static_cast<std::uint64_t>(set.num_qubits()));
    sum = util::fnv1a_u64(sum, static_cast<std::uint64_t>(set.size()));
    if (set.size() > 0) {
      sum = util::fnv1a_bytes(sum, set.encoded3(0),
                              set.size() * set.words_per_string() *
                                  sizeof(std::uint64_t));
      sum = util::fnv1a_bytes(sum, set.coefficients().data(),
                              set.size() * sizeof(double));
      sum = util::fnv1a_bytes(sum, view.data, tail_bytes);
    }
    write_pod(out, kTrailerMagic);
    write_pod(out, sum);
  }
  out.flush();
  if (!out) throw_write_failure("spill_pauli_set", path);
  const std::size_t total_bytes =
      kHeaderBytes +
      set.size() * (set.words_per_string() * sizeof(std::uint64_t) +
                    sizeof(double)) +
      packed_words_total * sizeof(std::uint64_t);
  obs::count(obs::Counter::SpillBytesWritten, total_bytes);
  return total_bytes;
}

ChunkedPauliReader::ChunkedPauliReader(std::string path,
                                       std::size_t strings_per_chunk,
                                       std::size_t max_strings)
    : path_(std::move(path)), strings_per_chunk_(strings_per_chunk) {
  if (strings_per_chunk_ == 0) {
    throw std::invalid_argument(
        "ChunkedPauliReader: strings_per_chunk must be positive (chunk "
        "indexing divides by it)");
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: cannot open " + path_);
  }
  if (read_pod<std::uint64_t>(in) != kMagic) {
    throw std::runtime_error("ChunkedPauliReader: bad magic in " + path_);
  }
  num_qubits_ = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  const auto base_count = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  words3_ = words_per_string3(num_qubits_);
  words2_ = packed_words(num_qubits_);

  std::error_code ec;
  const std::uint64_t file_bytes = std::filesystem::file_size(path_, ec);
  if (ec) {
    throw std::runtime_error("ChunkedPauliReader: cannot stat " + path_);
  }

  // The base header's count describes the base block only; everything past
  // it must be re-derived from the file itself. The base block ends either
  // after its coefficients (legacy save_binary output) or after a full
  // packed-symplectic tail (spill_pauli_set output); whichever end position
  // lets a chain of well-formed append segments run exactly to EOF is the
  // truth. Trusting the cached header — or inferring the tail from file
  // size alone — misreads any file that has been appended to.
  const std::uint64_t coefs_end =
      kHeaderBytes +
      base_count * (words3_ * sizeof(std::uint64_t) + sizeof(double));
  const std::uint64_t tail_end =
      coefs_end + base_count * 2 * words2_ * sizeof(std::uint64_t);

  // A checksum trailer encountered while walking, with the byte range it
  // covers; verified after the walk that wins is known.
  struct TrailerSpan {
    std::uint64_t begin = 0, end = 0, sum = 0;
  };

  // Walks the append-segment chain from `start` to EOF; returns false on
  // any structural mismatch (bad magic, section overrunning the file).
  // Checksum trailers may follow the base block and any segment; legacy
  // files simply have none.
  const auto walk_segments = [&](std::uint64_t start,
                                 std::vector<Segment>& out,
                                 std::vector<TrailerSpan>& sums) {
    out.clear();
    sums.clear();
    if (start > file_bytes) return false;
    std::uint64_t pos = start;
    std::uint64_t cover_begin = 0;  // a trailer at `start` covers the base
    std::size_t next_id = base_count;
    while (pos < file_bytes) {
      if (file_bytes - pos < kSegmentHeaderBytes) return false;
      in.clear();
      in.seekg(static_cast<std::streamoff>(pos));
      std::uint64_t magic = 0, second = 0;
      in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
      in.read(reinterpret_cast<char*>(&second), sizeof(second));
      if (!in) return false;
      if (magic == kTrailerMagic) {
        sums.push_back({cover_begin, pos, second});
        pos += kTrailerBytes;
        cover_begin = pos;
        continue;
      }
      if (magic != kAppendMagic) return false;
      const std::uint64_t count = second;
      cover_begin = pos;  // a trailing checksum covers this whole segment
      Segment seg;
      seg.begin = next_id;
      seg.count = static_cast<std::size_t>(count);
      seg.words3_offset = pos + kSegmentHeaderBytes;
      seg.coefs_offset =
          seg.words3_offset + count * words3_ * sizeof(std::uint64_t);
      seg.packed_offset = seg.coefs_offset + count * sizeof(double);
      const std::uint64_t end =
          seg.packed_offset + count * 2 * words2_ * sizeof(std::uint64_t);
      if (end > file_bytes) return false;
      out.push_back(seg);
      next_id += seg.count;
      pos = end;
    }
    return true;
  };

  Segment base;
  base.begin = 0;
  base.count = base_count;
  base.words3_offset = kHeaderBytes;
  base.coefs_offset =
      kHeaderBytes + base_count * words3_ * sizeof(std::uint64_t);

  std::vector<Segment> appended;
  std::vector<TrailerSpan> trailers;
  bool base_has_packed;
  if (walk_segments(tail_end, appended, trailers)) {
    base.packed_offset = base_count > 0 ? coefs_end : 0;
    base_has_packed = true;
  } else if (walk_segments(coefs_end, appended, trailers)) {
    base.packed_offset = 0;
    base_has_packed = base_count == 0;  // vacuously packed when empty
  } else {
    throw std::runtime_error(
        "ChunkedPauliReader: unrecognized trailing bytes in " + path_ +
        " (truncated append segment or corrupt packed tail)");
  }

  // Torn-write detection: every trailer the winning walk found must match
  // the bytes it covers. One sequential pass on reopen buys the guarantee
  // that no silently corrupted chunk is ever served to a solve.
  for (const TrailerSpan& t : trailers) {
    if (fnv_stream_range(in, t.begin, t.end, path_) != t.sum) {
      throw std::runtime_error(
          "ChunkedPauliReader: checksum mismatch in " + path_ +
          " (torn or corrupt spill segment)");
    }
  }

  segments_.push_back(base);
  segments_.insert(segments_.end(), appended.begin(), appended.end());
  num_strings_ = base_count;
  for (const Segment& seg : appended) num_strings_ += seg.count;
  if (max_strings > 0) num_strings_ = std::min(num_strings_, max_strings);
  has_packed_ = base_has_packed;  // append segments always carry packed
}

std::size_t ChunkedPauliReader::resident_bytes_for(
    std::size_t num_strings, std::size_t num_qubits) noexcept {
  // Matches PauliSet::logical_bytes(): 3-bit words + symplectic planes +
  // coefficients.
  const std::size_t w3 = words_per_string3(num_qubits);
  const std::size_t w2 = words_per_string2(num_qubits);
  return num_strings *
         ((w3 + 2 * w2) * sizeof(std::uint64_t) + sizeof(double));
}

std::size_t ChunkedPauliReader::chunk_resident_bytes(
    std::size_t chunk) const noexcept {
  return resident_bytes_for(chunk_size(chunk), num_qubits_);
}

std::size_t ChunkedPauliReader::chunk_packed_resident_bytes(
    std::size_t chunk) const noexcept {
  return chunk_size(chunk) * 2 * words2_ * sizeof(std::uint64_t);
}

void ChunkedPauliReader::note_load(std::size_t chunk,
                                   std::size_t bytes) const {
  ++chunk_loads_;
  if (loaded_.empty()) loaded_.resize(num_chunks(), false);
  if (loaded_[chunk]) {
    ++re_reads_;
    obs::count(obs::Counter::ChunkReReads);
  } else {
    loaded_[chunk] = true;
  }
  obs::count(obs::Counter::SpillBytesRead, bytes);
}

void ChunkedPauliReader::read_span(std::istream& in, Section section,
                                   std::size_t begin, std::size_t count,
                                   char* dest) const {
  PICASSO_FAILPOINT("spill.read");
  std::size_t stride = 0;
  switch (section) {
    case Section::Words3: stride = words3_ * sizeof(std::uint64_t); break;
    case Section::Coefs: stride = sizeof(double); break;
    case Section::Packed: stride = 2 * words2_ * sizeof(std::uint64_t); break;
  }
  const std::size_t end = begin + count;
  for (const Segment& seg : segments_) {
    const std::size_t lo = std::max(begin, seg.begin);
    const std::size_t hi = std::min(end, seg.begin + seg.count);
    if (lo >= hi) continue;
    std::uint64_t offset = 0;
    switch (section) {
      case Section::Words3: offset = seg.words3_offset; break;
      case Section::Coefs: offset = seg.coefs_offset; break;
      case Section::Packed: offset = seg.packed_offset; break;
    }
    if (section == Section::Packed && offset == 0) {
      throw std::runtime_error(
          "ChunkedPauliReader: segment without packed records in " + path_);
    }
    in.clear();
    in.seekg(static_cast<std::streamoff>(offset + (lo - seg.begin) * stride));
    in.read(dest + (lo - begin) * stride,
            static_cast<std::streamsize>((hi - lo) * stride));
    if (!in) {
      throw std::runtime_error("ChunkedPauliReader: truncated chunk in " +
                               path_);
    }
  }
}

PauliSet ChunkedPauliReader::load_chunk(std::size_t chunk) const {
  const std::size_t begin = chunk_begin(chunk);
  const std::size_t count = chunk_size(chunk);
  if (count == 0) return PauliSet{};

  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: cannot reopen " + path_);
  }
  std::vector<std::uint64_t> packed(count * words3_);
  read_span(in, Section::Words3, begin, count,
            reinterpret_cast<char*>(packed.data()));
  std::vector<double> coefs(count);
  read_span(in, Section::Coefs, begin, count,
            reinterpret_cast<char*>(coefs.data()));

  std::vector<PauliString> strings;
  strings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    strings.push_back(decode3(packed.data() + i * words3_, num_qubits_));
  }
  note_load(chunk, packed.size() * sizeof(std::uint64_t) +
                       coefs.size() * sizeof(double));
  return PauliSet(strings, std::move(coefs));
}

PackedPauliSet ChunkedPauliReader::load_chunk_packed(std::size_t chunk) const {
  const std::size_t begin = chunk_begin(chunk);
  const std::size_t count = chunk_size(chunk);
  if (count == 0) return PackedPauliSet{};

  if (!has_packed_) {
    // Legacy spill without the packed tail: decode the 3-bit section.
    // load_chunk counts the load.
    return PackedPauliSet(load_chunk(chunk));
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ChunkedPauliReader: cannot reopen " + path_);
  }
  std::vector<std::uint64_t> words(count * 2 * words2_);
  read_span(in, Section::Packed, begin, count,
            reinterpret_cast<char*>(words.data()));
  note_load(chunk, words.size() * sizeof(std::uint64_t));
  return PackedPauliSet::from_raw(num_qubits_, count, std::move(words));
}

std::size_t append_pauli_set(const PauliSet& delta, const std::string& path) {
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("append_pauli_set: cannot open " + path);
    }
    if (read_pod<std::uint64_t>(in) != kMagic) {
      throw std::runtime_error("append_pauli_set: bad magic in " + path);
    }
    const auto base_qubits =
        static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    if (!delta.empty() && base_qubits != delta.num_qubits()) {
      throw std::invalid_argument("append_pauli_set: qubit count mismatch");
    }
  }
  std::error_code ec;
  if (delta.empty()) {
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) throw std::runtime_error("append_pauli_set: cannot stat " + path);
    return static_cast<std::size_t>(size);
  }

  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    throw std::runtime_error("append_pauli_set: cannot append to " + path);
  }
  errno = 0;
  const std::size_t count = delta.size();
  const std::size_t words3 = delta.words_per_string();
  write_pod(out, kAppendMagic);
  write_pod(out, static_cast<std::uint64_t>(count));
  out.write(reinterpret_cast<const char*>(delta.encoded3(0)),
            static_cast<std::streamsize>(count * words3 *
                                         sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(delta.coefficients().data()),
            static_cast<std::streamsize>(count * sizeof(double)));
  const PackedView view = delta.packed_view();
  const std::size_t packed_words_total = view.size * 2 * view.words;
  const std::size_t packed_bytes = packed_words_total * sizeof(std::uint64_t);
  // Failpoint "spill.append": same contract as "spill.write" — short:N
  // leaves a torn segment with no trailer for reopen to reject.
  const std::size_t packed_written = PICASSO_FAILPOINT_CLAMP("spill.append",
                                                             packed_bytes);
  out.write(reinterpret_cast<const char*>(view.data),
            static_cast<std::streamsize>(packed_written));
  if (packed_written == packed_bytes) {
    std::uint64_t sum = util::kFnvOffsetBasis;
    sum = util::fnv1a_u64(sum, kAppendMagic);
    sum = util::fnv1a_u64(sum, static_cast<std::uint64_t>(count));
    sum = util::fnv1a_bytes(sum, delta.encoded3(0),
                            count * words3 * sizeof(std::uint64_t));
    sum = util::fnv1a_bytes(sum, delta.coefficients().data(),
                            count * sizeof(double));
    sum = util::fnv1a_bytes(sum, view.data, packed_bytes);
    write_pod(out, kTrailerMagic);
    write_pod(out, sum);
  }
  out.flush();
  if (!out) throw_write_failure("append_pauli_set", path);
  const std::size_t segment_bytes =
      kSegmentHeaderBytes +
      count * (words3 * sizeof(std::uint64_t) + sizeof(double)) +
      packed_words_total * sizeof(std::uint64_t);
  obs::count(obs::Counter::SpillBytesWritten, segment_bytes);
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("append_pauli_set: cannot stat " + path);
  return static_cast<std::size_t>(size);
}

void write_spill_colors(const std::string& path,
                        const util::PackedColorArray& colors) {
  // Serialize to memory first so the checksum covers exactly the blob
  // bytes; the trailer makes a torn color sidecar detectable on reload.
  std::ostringstream blob(std::ios::binary);
  colors.save(blob);
  const std::string bytes = std::move(blob).str();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_spill_colors: cannot open " + path);
  }
  errno = 0;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  write_pod(out, kTrailerMagic);
  write_pod(out, util::fnv1a_bytes(util::kFnvOffsetBasis, bytes.data(),
                                   bytes.size()));
  out.flush();
  if (!out) throw_write_failure("write_spill_colors", path);
}

util::PackedColorArray read_spill_colors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_spill_colors: cannot open " + path);
  }
  std::ostringstream buf(std::ios::binary);
  buf << in.rdbuf();
  std::string bytes = std::move(buf).str();
  std::size_t body = bytes.size();
  if (bytes.size() >= kTrailerBytes) {
    std::uint64_t magic = 0, sum = 0;
    std::memcpy(&magic, bytes.data() + bytes.size() - kTrailerBytes,
                sizeof(magic));
    std::memcpy(&sum, bytes.data() + bytes.size() - sizeof(sum), sizeof(sum));
    if (magic == kTrailerMagic) {
      body = bytes.size() - kTrailerBytes;
      if (util::fnv1a_bytes(util::kFnvOffsetBasis, bytes.data(), body) !=
          sum) {
        throw std::runtime_error(
            "read_spill_colors: checksum mismatch in " + path +
            " (torn or corrupt color sidecar)");
      }
    }
  }
  std::istringstream blob(bytes.substr(0, body), std::ios::binary);
  return util::PackedColorArray::load(blob);
}

}  // namespace picasso::pauli
