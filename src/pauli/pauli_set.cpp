#include "pauli/pauli_set.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace picasso::pauli {

PauliSet::PauliSet(const std::vector<PauliString>& strings,
                   std::vector<double> coefficients) {
  size_ = strings.size();
  if (size_ == 0) return;
  num_qubits_ = strings.front().num_qubits();
  for (const auto& s : strings) {
    if (s.num_qubits() != num_qubits_) {
      throw std::invalid_argument("PauliSet: inconsistent qubit counts");
    }
  }
  words3_ = words_per_string3(num_qubits_);
  words2_ = words_per_string2(num_qubits_);
  words3_data_.assign(size_ * words3_, 0);
  words2_data_.assign(size_ * 2 * words2_, 0);
  for (std::size_t i = 0; i < size_; ++i) {
    encode3(strings[i], words3_data_.data() + i * words3_);
    encode2(strings[i], words2_data_.data() + (2 * i) * words2_,
            words2_data_.data() + (2 * i + 1) * words2_);
  }
  if (coefficients.empty()) {
    coefficients_.assign(size_, 1.0);
  } else {
    if (coefficients.size() != size_) {
      throw std::invalid_argument("PauliSet: coefficient count mismatch");
    }
    coefficients_ = std::move(coefficients);
  }
}

PauliString PauliSet::string(std::size_t i) const {
  return decode3(encoded3(i), num_qubits_);
}

std::uint64_t PauliSet::count_anticommuting_pairs() const {
  std::uint64_t count = 0;
#ifdef PICASSO_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : count)
#endif
  for (std::size_t i = 0; i < size_; ++i) {
    for (std::size_t j = i + 1; j < size_; ++j) {
      count += anticommute(i, j) ? 1 : 0;
    }
  }
  return count;
}

namespace {
constexpr std::uint64_t kMagic = 0x5041554c49534554ULL;  // "PAULISET"

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("PauliSet::load_binary: truncated input");
  return value;
}
}  // namespace

void PauliSet::save_binary(std::ostream& out) const {
  write_pod(out, kMagic);
  write_pod(out, static_cast<std::uint64_t>(num_qubits_));
  write_pod(out, static_cast<std::uint64_t>(size_));
  out.write(reinterpret_cast<const char*>(words3_data_.data()),
            static_cast<std::streamsize>(words3_data_.size() *
                                         sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(coefficients_.data()),
            static_cast<std::streamsize>(coefficients_.size() * sizeof(double)));
}

PauliSet PauliSet::load_binary(std::istream& in) {
  if (read_pod<std::uint64_t>(in) != kMagic) {
    throw std::runtime_error("PauliSet::load_binary: bad magic");
  }
  const auto num_qubits = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  const auto size = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  const std::size_t words3 = words_per_string3(num_qubits);
  std::vector<std::uint64_t> packed(size * words3);
  in.read(reinterpret_cast<char*>(packed.data()),
          static_cast<std::streamsize>(packed.size() * sizeof(std::uint64_t)));
  std::vector<double> coefs(size);
  in.read(reinterpret_cast<char*>(coefs.data()),
          static_cast<std::streamsize>(coefs.size() * sizeof(double)));
  if (!in) throw std::runtime_error("PauliSet::load_binary: truncated input");
  // Reconstruct through the string constructor so both encodings are built.
  std::vector<PauliString> strings;
  strings.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    strings.push_back(decode3(packed.data() + i * words3, num_qubits));
  }
  return PauliSet(strings, std::move(coefs));
}

PauliSet PauliSet::prefix(std::size_t count) const {
  count = std::min(count, size_);
  PauliSet out;
  out.size_ = count;
  out.num_qubits_ = num_qubits_;
  out.words3_ = words3_;
  out.words2_ = words2_;
  out.words3_data_.assign(words3_data_.begin(),
                          words3_data_.begin() + count * words3_);
  out.words2_data_.assign(words2_data_.begin(),
                          words2_data_.begin() + count * 2 * words2_);
  out.coefficients_.assign(coefficients_.begin(),
                           coefficients_.begin() + count);
  return out;
}

void PauliSet::append(const PauliSet& other) {
  if (other.size_ == 0) return;
  if (size_ == 0) {
    *this = other;
    return;
  }
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("PauliSet::append: qubit count mismatch");
  }
  words3_data_.insert(words3_data_.end(), other.words3_data_.begin(),
                      other.words3_data_.end());
  words2_data_.insert(words2_data_.end(), other.words2_data_.begin(),
                      other.words2_data_.end());
  coefficients_.insert(coefficients_.end(), other.coefficients_.begin(),
                       other.coefficients_.end());
  size_ += other.size_;
}

PauliSet PauliSet::subset(const std::vector<std::uint32_t>& ids) const {
  std::vector<PauliString> strings;
  std::vector<double> coefs;
  strings.reserve(ids.size());
  coefs.reserve(ids.size());
  for (std::uint32_t id : ids) {
    strings.push_back(string(id));
    coefs.push_back(coefficients_[id]);
  }
  return PauliSet(strings, std::move(coefs));
}

}  // namespace picasso::pauli
