#pragma once
// Bit encodings for fast anticommutation tests (§IV-A of the paper).
//
// Primary (paper) encoding — "inverse one-hot", 3 bits per operator:
//     X -> 110, Y -> 101, Z -> 011, I -> 000.
// For any two operators the popcount of the AND of their codes is odd exactly
// when they are distinct non-identity operators, i.e. when they anticommute.
// Two strings anticommute iff the total popcount over all positions is odd,
// so the whole test is one AND + popcount per 64-bit word (21 ops per word).
//
// Alternative encoding — symplectic, 2 bits per operator in two planes
// (x-bit, z-bit): X=(1,0), Y=(1,1), Z=(0,1), I=(0,0). Strings anticommute iff
// popcount(x1 & z2) + popcount(z1 & x2) is odd (64 ops per word per plane).
// The paper uses the inverse-one-hot form; we implement both and benchmark
// them against each other and the character-comparison reference.

#include <cstdint>
#include <vector>

#include "pauli/pauli_string.hpp"

namespace picasso::pauli {

/// Operators packed per 64-bit word in the 3-bit inverse-one-hot encoding.
inline constexpr std::size_t kOpsPerWord3 = 21;  // 21 * 3 = 63 bits used

/// Operators per word-plane in the symplectic encoding.
inline constexpr std::size_t kOpsPerWord2 = 64;

/// 3-bit code of one operator (I=000, X=110, Y=101, Z=011).
std::uint64_t inverse_one_hot_code(PauliOp op) noexcept;

/// Number of 64-bit words needed for `num_qubits` operators, 3-bit encoding.
constexpr std::size_t words_per_string3(std::size_t num_qubits) noexcept {
  return (num_qubits + kOpsPerWord3 - 1) / kOpsPerWord3;
}

/// Number of 64-bit words per plane, symplectic encoding.
constexpr std::size_t words_per_string2(std::size_t num_qubits) noexcept {
  return (num_qubits + kOpsPerWord2 - 1) / kOpsPerWord2;
}

/// Encodes a string into `out[0..words_per_string3)` (inverse one-hot).
void encode3(const PauliString& s, std::uint64_t* out);

/// Encodes into separate x/z planes of `words_per_string2` words each.
void encode2(const PauliString& s, std::uint64_t* x_out, std::uint64_t* z_out);

/// Decodes an inverse-one-hot encoded string.
PauliString decode3(const std::uint64_t* words, std::size_t num_qubits);

/// Anticommutation from two inverse-one-hot encoded strings of `words` words:
/// parity of popcount(a & b).
bool anticommute3(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t words) noexcept;

/// Anticommutation from symplectic planes:
/// parity of popcount(ax & bz) + popcount(az & bx).
bool anticommute2(const std::uint64_t* ax, const std::uint64_t* az,
                  const std::uint64_t* bx, const std::uint64_t* bz,
                  std::size_t words) noexcept;

/// Character-by-character reference check (the "unencoded CPU" baseline the
/// paper reports a 1.4-2.0x speedup over).
bool anticommute_chars(const PauliString& a, const PauliString& b) noexcept;

}  // namespace picasso::pauli
