#pragma once
// Jordan-Wigner transform: fermionic ladder operators -> Pauli operators.
//
//   a_p  = Z_0 ... Z_{p-1} (X_p + i Y_p) / 2
//   a†_p = Z_0 ... Z_{p-1} (X_p - i Y_p) / 2
//
// The Z-prefix enforces fermionic antisymmetry; the images satisfy the
// canonical anticommutation relations {a_p, a†_q} = δ_pq (verified by the
// test suite symbolically and, for small systems, against dense matrices).

#include "pauli/fermion.hpp"
#include "pauli/operator.hpp"

namespace picasso::pauli {

/// JW image of the annihilation operator a_p on an n-qubit register.
PauliOperator jw_annihilation(std::uint32_t mode, std::size_t num_qubits);

/// JW image of the creation operator a†_p.
PauliOperator jw_creation(std::uint32_t mode, std::size_t num_qubits);

/// JW image of one ladder operator.
PauliOperator jw_ladder(const FermionOp& op, std::size_t num_qubits);

/// JW image of a product term (coefficient * product of ladder operators).
PauliOperator jw_term(const FermionTerm& term, std::size_t num_qubits);

/// JW image of a whole fermionic operator, with like terms combined and
/// coefficients below `prune_tol` dropped.
PauliOperator jordan_wigner(const FermionOperator& op,
                            double prune_tol = 1e-12);

}  // namespace picasso::pauli
