#include "pauli/pauli_string.hpp"

#include <stdexcept>

namespace picasso::pauli {

char to_char(PauliOp op) noexcept {
  switch (op) {
    case PauliOp::I: return 'I';
    case PauliOp::X: return 'X';
    case PauliOp::Y: return 'Y';
    case PauliOp::Z: return 'Z';
  }
  return '?';
}

PauliOp op_from_char(char c) {
  switch (c) {
    case 'I': case 'i': return PauliOp::I;
    case 'X': case 'x': return PauliOp::X;
    case 'Y': case 'y': return PauliOp::Y;
    case 'Z': case 'z': return PauliOp::Z;
    default:
      throw std::invalid_argument(std::string("invalid Pauli character: ") + c);
  }
}

OpProduct multiply(PauliOp a, PauliOp b) noexcept {
  if (a == PauliOp::I) return {b, 0};
  if (b == PauliOp::I) return {a, 0};
  if (a == b) return {PauliOp::I, 0};
  // Remaining cases are the cyclic products: XY = iZ, YZ = iX, ZX = iY and
  // the reversed (anti-cyclic) ones with phase -i = i^3.
  const auto ai = static_cast<int>(a);  // X=1, Y=2, Z=3
  const auto bi = static_cast<int>(b);
  // The "third" operator: indices {1,2,3} sum to 6.
  const auto ci = 6 - ai - bi;
  // Cyclic (1->2->3->1) iff b == a+1 mod 3 over {1,2,3}.
  const bool cyclic = (bi - ai + 3) % 3 == 1;
  return {static_cast<PauliOp>(ci), static_cast<std::uint8_t>(cyclic ? 1 : 3)};
}

PauliString PauliString::parse(std::string_view text) {
  std::vector<PauliOp> ops;
  ops.reserve(text.size());
  for (char c : text) ops.push_back(op_from_char(c));
  return PauliString(std::move(ops));
}

std::size_t PauliString::weight() const noexcept {
  std::size_t w = 0;
  for (PauliOp op : ops_) w += op != PauliOp::I ? 1 : 0;
  return w;
}

std::string PauliString::to_string() const {
  std::string s;
  s.reserve(ops_.size());
  for (PauliOp op : ops_) s.push_back(to_char(op));
  return s;
}

bool PauliString::anticommutes_with(const PauliString& other) const {
  std::size_t mismatches = 0;
  const std::size_t n = std::min(ops_.size(), other.ops_.size());
  for (std::size_t q = 0; q < n; ++q) {
    mismatches += anticommutes(ops_[q], other.ops_[q]) ? 1 : 0;
  }
  return (mismatches & 1u) != 0;
}

StringProduct multiply(const PauliString& a, const PauliString& b) {
  if (a.num_qubits() != b.num_qubits()) {
    throw std::invalid_argument("PauliString product: qubit count mismatch");
  }
  std::vector<PauliOp> ops(a.num_qubits());
  unsigned phase = 0;
  for (std::size_t q = 0; q < a.num_qubits(); ++q) {
    const OpProduct p = multiply(a.op(q), b.op(q));
    ops[q] = p.op;
    phase += p.phase_exp;
  }
  return {PauliString(std::move(ops)), static_cast<std::uint8_t>(phase & 3u)};
}

std::size_t PauliStringHash::operator()(const PauliString& s) const noexcept {
  // FNV-1a over 2-bit op codes packed four per byte-step; cheap and stable.
  std::size_t h = 1469598103934665603ULL;
  for (PauliOp op : s.ops()) {
    h ^= static_cast<std::size_t>(op);
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<std::complex<double>> to_matrix(const PauliString& s) {
  using C = std::complex<double>;
  static constexpr std::size_t kMaxQubits = 12;
  const std::size_t n = s.num_qubits();
  if (n > kMaxQubits) {
    throw std::invalid_argument("to_matrix: too many qubits for dense form");
  }
  // Single-qubit matrices, row-major.
  auto cell = [](PauliOp op, int r, int c) -> C {
    switch (op) {
      case PauliOp::I: return r == c ? C{1, 0} : C{0, 0};
      case PauliOp::X: return r != c ? C{1, 0} : C{0, 0};
      case PauliOp::Y:
        if (r == 0 && c == 1) return {0, -1};
        if (r == 1 && c == 0) return {0, 1};
        return {0, 0};
      case PauliOp::Z:
        if (r == c) return r == 0 ? C{1, 0} : C{-1, 0};
        return {0, 0};
    }
    return {0, 0};
  };
  const std::size_t dim = std::size_t{1} << n;
  std::vector<C> m(dim * dim);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      C v{1, 0};
      for (std::size_t q = 0; q < n && v != C{0, 0}; ++q) {
        // Qubit 0 is the leftmost factor in the tensor product.
        const int shift = static_cast<int>(n - 1 - q);
        const int rb = static_cast<int>((r >> shift) & 1u);
        const int cb = static_cast<int>((c >> shift) & 1u);
        v *= cell(s.op(q), rb, cb);
      }
      m[r * dim + c] = v;
    }
  }
  return m;
}

}  // namespace picasso::pauli
