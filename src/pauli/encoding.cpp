#include "pauli/encoding.hpp"

#include <bit>

namespace picasso::pauli {

std::uint64_t inverse_one_hot_code(PauliOp op) noexcept {
  switch (op) {
    case PauliOp::I: return 0b000;
    case PauliOp::X: return 0b110;
    case PauliOp::Y: return 0b101;
    case PauliOp::Z: return 0b011;
  }
  return 0;
}

void encode3(const PauliString& s, std::uint64_t* out) {
  const std::size_t words = words_per_string3(s.num_qubits());
  for (std::size_t w = 0; w < words; ++w) out[w] = 0;
  for (std::size_t q = 0; q < s.num_qubits(); ++q) {
    const std::size_t word = q / kOpsPerWord3;
    const std::size_t shift = (q % kOpsPerWord3) * 3;
    out[word] |= inverse_one_hot_code(s.op(q)) << shift;
  }
}

void encode2(const PauliString& s, std::uint64_t* x_out, std::uint64_t* z_out) {
  const std::size_t words = words_per_string2(s.num_qubits());
  for (std::size_t w = 0; w < words; ++w) x_out[w] = z_out[w] = 0;
  for (std::size_t q = 0; q < s.num_qubits(); ++q) {
    const std::size_t word = q / kOpsPerWord2;
    const std::uint64_t bit = std::uint64_t{1} << (q % kOpsPerWord2);
    switch (s.op(q)) {
      case PauliOp::X: x_out[word] |= bit; break;
      case PauliOp::Y: x_out[word] |= bit; z_out[word] |= bit; break;
      case PauliOp::Z: z_out[word] |= bit; break;
      case PauliOp::I: break;
    }
  }
}

PauliString decode3(const std::uint64_t* words, std::size_t num_qubits) {
  PauliString s(num_qubits);
  for (std::size_t q = 0; q < num_qubits; ++q) {
    const std::size_t word = q / kOpsPerWord3;
    const std::size_t shift = (q % kOpsPerWord3) * 3;
    const std::uint64_t code = (words[word] >> shift) & 0b111u;
    switch (code) {
      case 0b000: s.set_op(q, PauliOp::I); break;
      case 0b110: s.set_op(q, PauliOp::X); break;
      case 0b101: s.set_op(q, PauliOp::Y); break;
      case 0b011: s.set_op(q, PauliOp::Z); break;
      default: throw std::invalid_argument("decode3: corrupt encoding");
    }
  }
  return s;
}

bool anticommute3(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t words) noexcept {
  unsigned total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<unsigned>(std::popcount(a[w] & b[w]));
  }
  return (total & 1u) != 0;
}

bool anticommute2(const std::uint64_t* ax, const std::uint64_t* az,
                  const std::uint64_t* bx, const std::uint64_t* bz,
                  std::size_t words) noexcept {
  unsigned total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<unsigned>(std::popcount(ax[w] & bz[w]));
    total += static_cast<unsigned>(std::popcount(az[w] & bx[w]));
  }
  return (total & 1u) != 0;
}

bool anticommute_chars(const PauliString& a, const PauliString& b) noexcept {
  return a.anticommutes_with(b);
}

}  // namespace picasso::pauli
