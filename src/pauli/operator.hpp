#pragma once
// PauliOperator: a linear combination of Pauli strings with complex
// coefficients — the qubit-side representation of Hamiltonians and other
// observables. The Jordan-Wigner transform produces these; combining like
// terms here is what turns O(q^4) raw fermionic terms into the distinct
// Pauli-string vertex sets of Table II.

#include <complex>
#include <unordered_map>
#include <vector>

#include "pauli/pauli_string.hpp"

namespace picasso::pauli {

class PauliOperator {
 public:
  using Coefficient = std::complex<double>;
  using TermMap = std::unordered_map<PauliString, Coefficient, PauliStringHash>;

  PauliOperator() = default;
  explicit PauliOperator(std::size_t num_qubits) : num_qubits_(num_qubits) {}

  /// The zero operator on `n` qubits.
  static PauliOperator zero(std::size_t n) { return PauliOperator(n); }

  /// The identity operator scaled by `c`.
  static PauliOperator identity(std::size_t n, Coefficient c = {1.0, 0.0});

  std::size_t num_qubits() const noexcept { return num_qubits_; }
  std::size_t num_terms() const noexcept { return terms_.size(); }
  bool is_zero() const noexcept { return terms_.empty(); }
  const TermMap& terms() const noexcept { return terms_; }

  /// Adds `c * s`, combining with an existing like term.
  void add_term(const PauliString& s, Coefficient c);

  Coefficient coefficient_of(const PauliString& s) const;

  PauliOperator& operator+=(const PauliOperator& other);
  PauliOperator& operator-=(const PauliOperator& other);
  PauliOperator& operator*=(Coefficient scalar);

  friend PauliOperator operator+(PauliOperator a, const PauliOperator& b) {
    a += b;
    return a;
  }
  friend PauliOperator operator-(PauliOperator a, const PauliOperator& b) {
    a -= b;
    return a;
  }

  /// Operator product with phase-tracked string multiplication.
  PauliOperator multiply(const PauliOperator& other) const;

  /// Hermitian conjugate (strings are self-adjoint; conjugates coefficients).
  PauliOperator dagger() const;

  /// Removes terms with |coefficient| <= tol. Returns #terms removed.
  std::size_t prune(double tol);

  /// Largest coefficient magnitude deviation from a real value; an exactly
  /// Hermitian operator has 0 (up to floating-point) — used by tests.
  double max_imaginary_part() const;

  /// Deterministic term extraction: strings sorted lexicographically,
  /// coefficients as the real part (callers verify Hermiticity first).
  struct FlatTerms {
    std::vector<PauliString> strings;
    std::vector<double> coefficients;
  };
  FlatTerms flattened(double drop_tol = 0.0) const;

 private:
  std::size_t num_qubits_ = 0;
  TermMap terms_;
};

}  // namespace picasso::pauli
