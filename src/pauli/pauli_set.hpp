#pragma once
// PauliSet: the vertex set of the coloring problem.
//
// Stores n Pauli strings (with real coefficients) in structure-of-arrays
// encoded form so that the anticommutation oracle — the only graph access the
// Picasso pipeline needs — is a handful of AND+popcount instructions, and the
// full O(n^2)-edge graph never has to be materialised (§IV-A).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "pauli/encoding.hpp"
#include "pauli/pauli_packed.hpp"
#include "pauli/pauli_string.hpp"

namespace picasso::pauli {

class PauliSet {
 public:
  PauliSet() = default;

  /// Builds the encoded set. Coefficients default to 1.
  explicit PauliSet(const std::vector<PauliString>& strings,
                    std::vector<double> coefficients = {});

  std::size_t size() const noexcept { return size_; }
  std::size_t num_qubits() const noexcept { return num_qubits_; }
  std::size_t words_per_string() const noexcept { return words3_; }
  bool empty() const noexcept { return size_ == 0; }

  double coefficient(std::size_t i) const { return coefficients_[i]; }
  const std::vector<double>& coefficients() const { return coefficients_; }

  /// Decoded string i (reconstructs from the packed form).
  PauliString string(std::size_t i) const;

  /// Pointer to the 3-bit encoded words of string i.
  const std::uint64_t* encoded3(std::size_t i) const {
    return words3_data_.data() + i * words3_;
  }

  /// Fast anticommutation oracle (inverse one-hot encoding).
  bool anticommute(std::size_t i, std::size_t j) const noexcept {
    return anticommute3(encoded3(i), encoded3(j), words3_);
  }

  /// Zero-copy packed view over the symplectic planes: string i's storage
  /// [x_0..x_{w-1} | z_0..z_{w-1}] is exactly one PackedView record, so the
  /// SIMD conflict-oracle kernels (pauli_packed.hpp) run on the encoded set
  /// without any extra resident bytes. The view borrows; it is valid only
  /// while this set is alive and unmodified.
  PackedView packed_view() const noexcept {
    return {words2_data_.data(), size_, words2_};
  }

  /// Symplectic-encoding oracle (same answer, different kernel).
  bool anticommute_symplectic(std::size_t i, std::size_t j) const noexcept {
    const std::size_t w = words2_;
    const std::uint64_t* base = words2_data_.data();
    return anticommute2(base + (2 * i) * w, base + (2 * i + 1) * w,
                        base + (2 * j) * w, base + (2 * j + 1) * w, w);
  }

  /// Qubit-wise commutativity (the grouping relation of Pauli-measurement
  /// schemes predating general-commutativity grouping, §III of the paper):
  /// strings i and j qubit-wise commute iff at every position the operators
  /// are equal or at least one is the identity — equivalently, iff no
  /// single position anticommutes. In the symplectic planes that is
  /// (x_i & z_j) XOR (z_i & x_j) == 0 in every word.
  bool qubit_wise_commute(std::size_t i, std::size_t j) const noexcept {
    const std::size_t w = words2_;
    const std::uint64_t* base = words2_data_.data();
    const std::uint64_t* ax = base + (2 * i) * w;
    const std::uint64_t* az = base + (2 * i + 1) * w;
    const std::uint64_t* bx = base + (2 * j) * w;
    const std::uint64_t* bz = base + (2 * j + 1) * w;
    for (std::size_t k = 0; k < w; ++k) {
      if (((ax[k] & bz[k]) ^ (az[k] & bx[k])) != 0) return false;
    }
    return true;
  }

  /// Character-comparison reference oracle (decodes on the fly; slow path
  /// used as the unencoded baseline and in cross-checking tests).
  bool anticommute_naive(std::size_t i, std::size_t j) const {
    return string(i).anticommutes_with(string(j));
  }

  /// Number of anticommuting pairs (edges of G). O(n^2) — small inputs only.
  std::uint64_t count_anticommuting_pairs() const;

  /// Bytes of the encoded storage (reported as the input footprint).
  std::size_t logical_bytes() const noexcept {
    return words3_data_.size() * sizeof(std::uint64_t) +
           words2_data_.size() * sizeof(std::uint64_t) +
           coefficients_.size() * sizeof(double);
  }

  /// Subset by vertex ids (used when an experiment trims a dataset).
  PauliSet subset(const std::vector<std::uint32_t>& ids) const;

  /// First `count` strings, by straight copy of the encoded storage (no
  /// decode round-trip) — the incremental engine's escalation re-solves
  /// exactly the ingested prefix. `count` is clamped to size().
  PauliSet prefix(std::size_t count) const;

  /// Appends every string of `other` (ids continue after size()). An empty
  /// base adopts `other`'s qubit count; otherwise the counts must match
  /// (std::invalid_argument). Appending invalidates packed_view()s.
  void append(const PauliSet& other);

  /// Binary serialization (dataset disk cache). Format: magic, qubit count,
  /// string count, packed 3-bit words, coefficients.
  void save_binary(std::ostream& out) const;
  static PauliSet load_binary(std::istream& in);

 private:
  std::size_t size_ = 0;
  std::size_t num_qubits_ = 0;
  std::size_t words3_ = 0;
  std::size_t words2_ = 0;
  std::vector<std::uint64_t> words3_data_;  // size_ * words3_
  std::vector<std::uint64_t> words2_data_;  // size_ * 2 * words2_ (x, z)
  std::vector<double> coefficients_;
};

}  // namespace picasso::pauli
