#include "pauli/operator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace picasso::pauli {

namespace {
constexpr double kAbsorbTol = 1e-14;
}

PauliOperator PauliOperator::identity(std::size_t n, Coefficient c) {
  PauliOperator op(n);
  op.add_term(PauliString(n), c);
  return op;
}

void PauliOperator::add_term(const PauliString& s, Coefficient c) {
  if (s.num_qubits() != num_qubits_) {
    throw std::invalid_argument("PauliOperator::add_term: qubit mismatch");
  }
  auto [it, inserted] = terms_.try_emplace(s, c);
  if (!inserted) {
    it->second += c;
    if (std::abs(it->second) <= kAbsorbTol) terms_.erase(it);
  }
}

PauliOperator::Coefficient PauliOperator::coefficient_of(
    const PauliString& s) const {
  auto it = terms_.find(s);
  return it == terms_.end() ? Coefficient{0.0, 0.0} : it->second;
}

PauliOperator& PauliOperator::operator+=(const PauliOperator& other) {
  if (num_qubits_ == 0 && terms_.empty()) num_qubits_ = other.num_qubits_;
  for (const auto& [s, c] : other.terms_) add_term(s, c);
  return *this;
}

PauliOperator& PauliOperator::operator-=(const PauliOperator& other) {
  if (num_qubits_ == 0 && terms_.empty()) num_qubits_ = other.num_qubits_;
  for (const auto& [s, c] : other.terms_) add_term(s, -c);
  return *this;
}

PauliOperator& PauliOperator::operator*=(Coefficient scalar) {
  if (scalar == Coefficient{0.0, 0.0}) {
    terms_.clear();
    return *this;
  }
  for (auto& [s, c] : terms_) c *= scalar;
  return *this;
}

PauliOperator PauliOperator::multiply(const PauliOperator& other) const {
  if (num_qubits_ != other.num_qubits_ && !terms_.empty() &&
      !other.terms_.empty()) {
    throw std::invalid_argument("PauliOperator::multiply: qubit mismatch");
  }
  PauliOperator out(num_qubits_);
  out.terms_.reserve(terms_.size() * other.terms_.size());
  for (const auto& [sa, ca] : terms_) {
    for (const auto& [sb, cb] : other.terms_) {
      StringProduct p = pauli::multiply(sa, sb);
      out.add_term(p.string, ca * cb * p.phase());
    }
  }
  return out;
}

PauliOperator PauliOperator::dagger() const {
  PauliOperator out(num_qubits_);
  for (const auto& [s, c] : terms_) out.add_term(s, std::conj(c));
  return out;
}

std::size_t PauliOperator::prune(double tol) {
  std::size_t removed = 0;
  for (auto it = terms_.begin(); it != terms_.end();) {
    if (std::abs(it->second) <= tol) {
      it = terms_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

double PauliOperator::max_imaginary_part() const {
  double worst = 0.0;
  for (const auto& [s, c] : terms_) {
    worst = std::max(worst, std::abs(c.imag()));
  }
  return worst;
}

PauliOperator::FlatTerms PauliOperator::flattened(double drop_tol) const {
  FlatTerms out;
  out.strings.reserve(terms_.size());
  for (const auto& [s, c] : terms_) {
    if (std::abs(c) > drop_tol) out.strings.push_back(s);
  }
  std::sort(out.strings.begin(), out.strings.end());
  out.coefficients.reserve(out.strings.size());
  for (const auto& s : out.strings) {
    out.coefficients.push_back(terms_.at(s).real());
  }
  return out;
}

}  // namespace picasso::pauli
