#include "pauli/fermion.hpp"

#include <cstdio>

namespace picasso::pauli {

std::string FermionTerm::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%+.6g)", coefficient);
  std::string s = buf;
  for (const auto& op : ops) {
    std::snprintf(buf, sizeof(buf), " a%s_%u", op.creation ? "+" : "", op.mode);
    s += buf;
  }
  return s;
}

FermionOp creation(std::uint32_t mode) { return {mode, true}; }
FermionOp annihilation(std::uint32_t mode) { return {mode, false}; }

FermionTerm one_body(double coefficient, std::uint32_t p, std::uint32_t q) {
  return {coefficient, {creation(p), annihilation(q)}};
}

FermionTerm two_body(double coefficient, std::uint32_t p, std::uint32_t q,
                     std::uint32_t r, std::uint32_t s) {
  return {coefficient, {creation(p), creation(q), annihilation(r), annihilation(s)}};
}

}  // namespace picasso::pauli
