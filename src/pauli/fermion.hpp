#pragma once
// Second-quantised fermionic operators.
//
// The quantum-chemistry inputs of the paper are molecular Hamiltonians in
// second quantisation: sums of products of creation (a†_p) and annihilation
// (a_p) operators over spin orbitals. This module represents such products
// symbolically; jordan_wigner.hpp maps them to PauliOperators.

#include <cstdint>
#include <string>
#include <vector>

namespace picasso::pauli {

/// One ladder operator acting on a spin-orbital mode.
struct FermionOp {
  std::uint32_t mode = 0;
  bool creation = false;  // true: a†_mode, false: a_mode

  bool operator==(const FermionOp&) const = default;
};

/// A scalar multiple of a product of ladder operators, applied left to
/// right in the listed order (ops[0] acts last on a ket, as usual notation
/// a†_p a_q means "first annihilate q, then create p").
struct FermionTerm {
  double coefficient = 0.0;
  std::vector<FermionOp> ops;

  /// "(-0.5) a+_3 a_1" style rendering, for diagnostics.
  std::string to_string() const;
};

/// Convenience constructors.
FermionOp creation(std::uint32_t mode);
FermionOp annihilation(std::uint32_t mode);

/// One-body excitation coefficient * a†_p a_q.
FermionTerm one_body(double coefficient, std::uint32_t p, std::uint32_t q);

/// Two-body term coefficient * a†_p a†_q a_r a_s.
FermionTerm two_body(double coefficient, std::uint32_t p, std::uint32_t q,
                     std::uint32_t r, std::uint32_t s);

/// A sum of fermionic terms (e.g., a full molecular Hamiltonian before the
/// qubit mapping). Kept as a flat list; like-term combination happens after
/// the Jordan-Wigner transform where the representation is canonical.
struct FermionOperator {
  std::uint32_t num_modes = 0;
  std::vector<FermionTerm> terms;

  void add(FermionTerm term) { terms.push_back(std::move(term)); }
  std::size_t size() const { return terms.size(); }
};

}  // namespace picasso::pauli
