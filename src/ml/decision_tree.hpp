#pragma once
// Multi-output CART regression tree: variance-reduction splits on the summed
// per-output squared error, supporting feature subsampling per split (the
// randomness injection random forests rely on).

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace picasso::ml {

struct TreeParams {
  int max_depth = 20;
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  /// Features considered per split; 0 = all features.
  std::size_t max_features = 0;
};

class DecisionTreeRegressor {
 public:
  /// Fits on X (n x d) and Y (n x t). `sample_indices` selects the training
  /// rows (bootstrap support); empty = all rows.
  void fit(const Matrix& x, const Matrix& y, const TreeParams& params,
           util::Xoshiro256& rng,
           const std::vector<std::uint32_t>& sample_indices = {});

  /// Predicts the t outputs for one feature row.
  std::vector<double> predict(const double* features) const;

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  std::size_t num_outputs() const noexcept { return num_outputs_; }
  bool trained() const noexcept { return !nodes_.empty(); }

  /// Total SSE decrease attributed to each feature (impurity importance).
  std::vector<double> feature_importance() const;

 private:
  struct Node {
    // Internal node: feature >= 0, threshold set, children indices.
    // Leaf: feature == -1, leaf_start/leaf_count index into leaf_values_.
    int feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t leaf_start = 0;
    double gain = 0.0;  // SSE decrease of this split (importance)
  };

  std::int32_t build(const Matrix& x, const Matrix& y,
                     std::vector<std::uint32_t>& indices, std::size_t begin,
                     std::size_t end, int depth, const TreeParams& params,
                     util::Xoshiro256& rng);

  std::size_t num_features_ = 0;
  std::size_t num_outputs_ = 0;
  std::vector<Node> nodes_;
  std::vector<double> leaf_values_;  // num_outputs_ per leaf
};

}  // namespace picasso::ml
