#pragma once
// Regression metrics used to evaluate the parameter predictor (§VI of the
// paper reports MAPE = 0.19 and R^2 = 0.88 for its random forest).

#include <vector>

namespace picasso::ml {

/// Mean absolute percentage error, as a fraction (0.19 == 19%).
/// Targets with |y| < eps are skipped to avoid division blow-ups.
double mape(const std::vector<double>& y_true, const std::vector<double>& y_pred,
            double eps = 1e-12);

/// Coefficient of determination R^2 = 1 - SS_res / SS_tot.
double r_squared(const std::vector<double>& y_true,
                 const std::vector<double>& y_pred);

/// Mean absolute error.
double mae(const std::vector<double>& y_true, const std::vector<double>& y_pred);

/// Root mean squared error.
double rmse(const std::vector<double>& y_true, const std::vector<double>& y_pred);

}  // namespace picasso::ml
