#pragma once
// Row-major numeric dataset shared by the regression models.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace picasso::ml {

/// A dense (rows x cols) matrix of doubles, row-major.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  const double* row(std::size_t r) const { return data_.data() + r * cols_; }
  double* row(std::size_t r) { return data_.data() + r * cols_; }

  void push_row(const std::vector<double>& values) {
    if (cols_ == 0) cols_ = values.size();
    if (values.size() != cols_) {
      throw std::invalid_argument("Matrix::push_row: width mismatch");
    }
    data_.insert(data_.end(), values.begin(), values.end());
    ++rows_;
  }

  const std::vector<double>& data() const noexcept { return data_; }

  /// Bytes held by the matrix storage (charged to the telemetry registry
  /// as MemSubsystem::MlFeatures by the predictor).
  std::size_t logical_bytes() const noexcept {
    return data_.capacity() * sizeof(double);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace picasso::ml
