#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace picasso::ml {

namespace {

/// Sum of squared errors around the mean, totalled over all outputs, for
/// rows indices[begin..end).
double node_sse(const Matrix& y, const std::vector<std::uint32_t>& indices,
                std::size_t begin, std::size_t end) {
  const std::size_t t = y.cols();
  const auto n = static_cast<double>(end - begin);
  double sse = 0.0;
  for (std::size_t out = 0; out < t; ++out) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double v = y.at(indices[i], out);
      sum += v;
      sum_sq += v * v;
    }
    sse += sum_sq - sum * sum / n;
  }
  return sse;
}

}  // namespace

void DecisionTreeRegressor::fit(const Matrix& x, const Matrix& y,
                                const TreeParams& params, util::Xoshiro256& rng,
                                const std::vector<std::uint32_t>& sample_indices) {
  if (x.rows() != y.rows() || x.rows() == 0) {
    throw std::invalid_argument("DecisionTreeRegressor::fit: bad shapes");
  }
  num_features_ = x.cols();
  num_outputs_ = y.cols();
  nodes_.clear();
  leaf_values_.clear();

  std::vector<std::uint32_t> indices;
  if (sample_indices.empty()) {
    indices.resize(x.rows());
    std::iota(indices.begin(), indices.end(), 0u);
  } else {
    indices = sample_indices;
  }
  build(x, y, indices, 0, indices.size(), 0, params, rng);
}

std::int32_t DecisionTreeRegressor::build(const Matrix& x, const Matrix& y,
                                          std::vector<std::uint32_t>& indices,
                                          std::size_t begin, std::size_t end,
                                          int depth, const TreeParams& params,
                                          util::Xoshiro256& rng) {
  const std::size_t count = end - begin;
  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();

  auto make_leaf = [&]() {
    Node& node = nodes_[static_cast<std::size_t>(node_id)];
    node.feature = -1;
    node.leaf_start = static_cast<std::uint32_t>(leaf_values_.size());
    for (std::size_t out = 0; out < num_outputs_; ++out) {
      double sum = 0.0;
      for (std::size_t i = begin; i < end; ++i) sum += y.at(indices[i], out);
      leaf_values_.push_back(sum / static_cast<double>(count));
    }
    return node_id;
  };

  if (depth >= params.max_depth || count < params.min_samples_split ||
      count < 2 * params.min_samples_leaf) {
    return make_leaf();
  }

  const double parent_sse = node_sse(y, indices, begin, end);
  if (parent_sse <= 1e-12) return make_leaf();  // pure node

  // Feature subset for this split.
  std::vector<std::size_t> features(num_features_);
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t feature_budget = params.max_features == 0
                                   ? num_features_
                                   : std::min(params.max_features, num_features_);
  if (feature_budget < num_features_) {
    for (std::size_t i = 0; i < feature_budget; ++i) {
      const std::size_t j = i + rng.bounded(num_features_ - i);
      std::swap(features[i], features[j]);
    }
    features.resize(feature_budget);
  }

  // Best split search: sort the node's rows by each candidate feature and
  // scan boundaries with running sums (O(n log n + n t) per feature).
  double best_gain = 0.0;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::uint32_t> sorted(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                                    indices.begin() + static_cast<std::ptrdiff_t>(end));
  std::vector<double> left_sum(num_outputs_), left_sq(num_outputs_);
  std::vector<double> total_sum(num_outputs_), total_sq(num_outputs_);

  for (std::size_t f : features) {
    std::sort(sorted.begin(), sorted.end(), [&](std::uint32_t a, std::uint32_t b) {
      return x.at(a, f) < x.at(b, f);
    });
    std::fill(left_sum.begin(), left_sum.end(), 0.0);
    std::fill(left_sq.begin(), left_sq.end(), 0.0);
    std::fill(total_sum.begin(), total_sum.end(), 0.0);
    std::fill(total_sq.begin(), total_sq.end(), 0.0);
    for (std::uint32_t row : sorted) {
      for (std::size_t out = 0; out < num_outputs_; ++out) {
        const double v = y.at(row, out);
        total_sum[out] += v;
        total_sq[out] += v * v;
      }
    }
    for (std::size_t i = 0; i + 1 < count; ++i) {
      const std::uint32_t row = sorted[i];
      for (std::size_t out = 0; out < num_outputs_; ++out) {
        const double v = y.at(row, out);
        left_sum[out] += v;
        left_sq[out] += v * v;
      }
      const std::size_t n_left = i + 1;
      const std::size_t n_right = count - n_left;
      if (n_left < params.min_samples_leaf || n_right < params.min_samples_leaf) {
        continue;
      }
      const double xv = x.at(row, f);
      const double xn = x.at(sorted[i + 1], f);
      if (xn <= xv) continue;  // can't split between equal values
      double child_sse = 0.0;
      for (std::size_t out = 0; out < num_outputs_; ++out) {
        const double rs = total_sum[out] - left_sum[out];
        const double rq = total_sq[out] - left_sq[out];
        child_sse += left_sq[out] -
                     left_sum[out] * left_sum[out] / static_cast<double>(n_left);
        child_sse += rq - rs * rs / static_cast<double>(n_right);
      }
      const double gain = parent_sse - child_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (xv + xn);
      }
    }
  }

  if (best_gain <= 1e-12) return make_leaf();

  // Partition the node's index range in place.
  auto middle = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::uint32_t row) { return x.at(row, best_feature) <= best_threshold; });
  const auto mid = static_cast<std::size_t>(middle - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // degenerate partition

  {
    Node& node = nodes_[static_cast<std::size_t>(node_id)];
    node.feature = static_cast<int>(best_feature);
    node.threshold = best_threshold;
    node.gain = best_gain;
  }
  const std::int32_t left =
      build(x, y, indices, begin, mid, depth + 1, params, rng);
  const std::int32_t right =
      build(x, y, indices, mid, end, depth + 1, params, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

std::vector<double> DecisionTreeRegressor::predict(const double* features) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTreeRegressor::predict: not trained");
  }
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[node];
    node = static_cast<std::size_t>(
        features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                     : n.right);
  }
  const std::uint32_t start = nodes_[node].leaf_start;
  return {leaf_values_.begin() + start,
          leaf_values_.begin() + start + num_outputs_};
}

std::vector<double> DecisionTreeRegressor::feature_importance() const {
  std::vector<double> importance(num_features_, 0.0);
  double total = 0.0;
  for (const Node& node : nodes_) {
    if (node.feature >= 0) {
      importance[static_cast<std::size_t>(node.feature)] += node.gain;
      total += node.gain;
    }
  }
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

}  // namespace picasso::ml
