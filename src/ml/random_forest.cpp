#include "ml/random_forest.hpp"

#include <cmath>
#include <stdexcept>

namespace picasso::ml {

void RandomForestRegressor::fit(const Matrix& x, const Matrix& y,
                                const ForestParams& params) {
  if (x.rows() != y.rows() || x.rows() == 0) {
    throw std::invalid_argument("RandomForestRegressor::fit: bad shapes");
  }
  num_outputs_ = y.cols();
  num_rows_ = x.rows();
  trees_.assign(params.num_trees, {});
  in_bag_.assign(params.num_trees, {});

  TreeParams tree_params = params.tree;
  if (tree_params.max_features == 0) {
    // Standard regression-forest default: d/3 features per split, >= 1.
    tree_params.max_features = std::max<std::size_t>(1, x.cols() / 3);
  }
  const auto sample_size = static_cast<std::size_t>(
      std::ceil(params.bootstrap_fraction * static_cast<double>(x.rows())));

  for (std::size_t t = 0; t < params.num_trees; ++t) {
    util::Xoshiro256 rng = util::keyed_rng(params.seed, 0xf0f0, t);
    std::vector<std::uint32_t> sample(sample_size);
    for (auto& idx : sample) {
      idx = static_cast<std::uint32_t>(rng.bounded(x.rows()));
    }
    in_bag_[t] = sample;
    trees_[t].fit(x, y, tree_params, rng, sample);
  }
}

std::vector<double> RandomForestRegressor::predict(const double* features) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForestRegressor::predict: not trained");
  }
  std::vector<double> mean(num_outputs_, 0.0);
  for (const auto& tree : trees_) {
    const std::vector<double> p = tree.predict(features);
    for (std::size_t out = 0; out < num_outputs_; ++out) mean[out] += p[out];
  }
  for (double& v : mean) v /= static_cast<double>(trees_.size());
  return mean;
}

Matrix RandomForestRegressor::predict_all(const Matrix& x) const {
  Matrix out(x.rows(), num_outputs_);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const std::vector<double> p = predict(x.row(r));
    for (std::size_t c = 0; c < num_outputs_; ++c) out.at(r, c) = p[c];
  }
  return out;
}

Matrix RandomForestRegressor::predict_oob(const Matrix& x) const {
  if (x.rows() != num_rows_) {
    throw std::invalid_argument("predict_oob: row count differs from training");
  }
  // Mark which rows each tree trained on.
  std::vector<std::vector<char>> in_bag_mask(trees_.size(),
                                             std::vector<char>(num_rows_, 0));
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    for (std::uint32_t row : in_bag_[t]) in_bag_mask[t][row] = 1;
  }
  Matrix out(x.rows(), num_outputs_);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    std::vector<double> mean(num_outputs_, 0.0);
    std::size_t votes = 0;
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      if (in_bag_mask[t][r]) continue;
      const std::vector<double> p = trees_[t].predict(x.row(r));
      for (std::size_t c = 0; c < num_outputs_; ++c) mean[c] += p[c];
      ++votes;
    }
    if (votes == 0) {
      mean = predict(x.row(r));  // row sampled by every tree: fall back
    } else {
      for (double& v : mean) v /= static_cast<double>(votes);
    }
    for (std::size_t c = 0; c < num_outputs_; ++c) out.at(r, c) = mean[c];
  }
  return out;
}

std::vector<double> RandomForestRegressor::feature_importance() const {
  if (trees_.empty()) return {};
  std::vector<double> total = trees_.front().feature_importance();
  for (std::size_t t = 1; t < trees_.size(); ++t) {
    const std::vector<double> imp = trees_[t].feature_importance();
    for (std::size_t f = 0; f < total.size(); ++f) total[f] += imp[f];
  }
  for (double& v : total) v /= static_cast<double>(trees_.size());
  return total;
}

}  // namespace picasso::ml
