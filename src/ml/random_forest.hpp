#pragma once
// Random-forest regressor: bootstrap-aggregated CART trees with per-split
// feature subsampling. §VI of the paper selects this model (100 trees,
// depth 20) for predicting (P', alpha) from (beta, |V|, |E|).

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"

namespace picasso::ml {

struct ForestParams {
  std::size_t num_trees = 100;
  TreeParams tree;  // paper configuration: max_depth = 20
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 42;
};

class RandomForestRegressor {
 public:
  void fit(const Matrix& x, const Matrix& y, const ForestParams& params);

  /// Mean prediction over all trees.
  std::vector<double> predict(const double* features) const;
  std::vector<double> predict(const std::vector<double>& features) const {
    return predict(features.data());
  }

  /// Per-row predictions for a whole matrix, flattened row-major.
  Matrix predict_all(const Matrix& x) const;

  /// Out-of-bag predictions (rows never sampled by any tree fall back to
  /// the full-forest prediction). A cheap internal generalisation check.
  Matrix predict_oob(const Matrix& x) const;

  /// Mean impurity importance over trees.
  std::vector<double> feature_importance() const;

  std::size_t num_trees() const noexcept { return trees_.size(); }
  bool trained() const noexcept { return !trees_.empty(); }

 private:
  std::vector<DecisionTreeRegressor> trees_;
  std::vector<std::vector<std::uint32_t>> in_bag_;  // per-tree sampled rows
  std::size_t num_outputs_ = 0;
  std::size_t num_rows_ = 0;
};

}  // namespace picasso::ml
