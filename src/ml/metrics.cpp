#include "ml/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace picasso::ml {

namespace {
void check_sizes(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("metrics: size mismatch or empty input");
  }
}
}  // namespace

double mape(const std::vector<double>& y_true, const std::vector<double>& y_pred,
            double eps) {
  check_sizes(y_true, y_pred);
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (std::abs(y_true[i]) < eps) continue;
    total += std::abs((y_true[i] - y_pred[i]) / y_true[i]);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double r_squared(const std::vector<double>& y_true,
                 const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double mean = 0.0;
  for (double y : y_true) mean += y;
  mean /= static_cast<double>(y_true.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    ss_res += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
    ss_tot += (y_true[i] - mean) * (y_true[i] - mean);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mae(const std::vector<double>& y_true, const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double total = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    total += std::abs(y_true[i] - y_pred[i]);
  }
  return total / static_cast<double>(y_true.size());
}

double rmse(const std::vector<double>& y_true, const std::vector<double>& y_pred) {
  check_sizes(y_true, y_pred);
  double total = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    total += (y_true[i] - y_pred[i]) * (y_true[i] - y_pred[i]);
  }
  return std::sqrt(total / static_cast<double>(y_true.size()));
}

}  // namespace picasso::ml
