#include "ml/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace picasso::ml {

std::vector<double> default_percent_grid() {
  return {1.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0};
}

std::vector<double> default_alpha_grid() {
  return {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5};
}

std::vector<SweepPoint> parameter_sweep(const pauli::PauliSet& set,
                                        const std::vector<double>& percents,
                                        const std::vector<double>& alphas,
                                        const core::PicassoParams& base) {
  std::vector<SweepPoint> sweep;
  sweep.reserve(percents.size() * alphas.size());
  for (double percent : percents) {
    for (double alpha : alphas) {
      core::PicassoParams params = base;
      params.palette_percent = percent;
      params.alpha = alpha;
      const core::PicassoResult r = core::solve_pauli(set, params);
      sweep.push_back({percent, alpha, r.num_colors, r.max_conflict_edges,
                       r.total_seconds});
    }
  }
  return sweep;
}

std::vector<OptimalChoice> optimal_choices(const std::vector<SweepPoint>& sweep,
                                           const std::vector<double>& betas) {
  std::vector<OptimalChoice> out;
  if (sweep.empty()) return out;

  // Normalise both objectives to [0, 1] over the sweep.
  double c_max = 0.0, e_max = 0.0;
  for (const SweepPoint& p : sweep) {
    c_max = std::max(c_max, static_cast<double>(p.colors));
    e_max = std::max(e_max, static_cast<double>(p.max_conflict_edges));
  }
  if (c_max == 0.0) c_max = 1.0;
  if (e_max == 0.0) e_max = 1.0;

  out.reserve(betas.size());
  for (double beta : betas) {
    OptimalChoice best;
    best.beta = beta;
    best.objective = std::numeric_limits<double>::infinity();
    for (const SweepPoint& p : sweep) {
      const double objective =
          beta * static_cast<double>(p.colors) / c_max +
          (1.0 - beta) * static_cast<double>(p.max_conflict_edges) / e_max;
      if (objective < best.objective) {
        best.objective = objective;
        best.palette_percent = p.palette_percent;
        best.alpha = p.alpha;
      }
    }
    out.push_back(best);
  }
  return out;
}

std::vector<TrainingSample> build_training_samples(
    const pauli::PauliSet& set, std::uint64_t num_edges,
    const std::vector<double>& betas, const std::vector<double>& percents,
    const std::vector<double>& alphas, const core::PicassoParams& base) {
  const std::vector<SweepPoint> sweep =
      parameter_sweep(set, percents, alphas, base);
  const std::vector<OptimalChoice> optima = optimal_choices(sweep, betas);

  const double log_v = std::log10(static_cast<double>(std::max<std::size_t>(set.size(), 1)));
  const double log_e = std::log10(static_cast<double>(std::max<std::uint64_t>(num_edges, 1)));
  std::vector<TrainingSample> samples;
  samples.reserve(optima.size());
  for (const OptimalChoice& opt : optima) {
    samples.push_back(
        {opt.beta, log_v, log_e, opt.palette_percent, opt.alpha});
  }
  return samples;
}

void samples_to_matrices(const std::vector<TrainingSample>& samples, Matrix& x,
                         Matrix& y) {
  x = Matrix(samples.size(), 3);
  y = Matrix(samples.size(), 2);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    x.at(i, 0) = samples[i].beta;
    x.at(i, 1) = samples[i].log_vertices;
    x.at(i, 2) = samples[i].log_edges;
    y.at(i, 0) = samples[i].best_percent;
    y.at(i, 1) = samples[i].best_alpha;
  }
}

}  // namespace picasso::ml
