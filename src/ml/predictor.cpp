#include "ml/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/memory.hpp"

namespace picasso::ml {

const char* to_string(ModelKind m) noexcept {
  switch (m) {
    case ModelKind::RandomForest: return "random-forest";
    case ModelKind::Ridge: return "ridge";
    case ModelKind::Lasso: return "lasso";
  }
  return "?";
}

void ParameterPredictor::fit(const std::vector<TrainingSample>& samples,
                             const ForestParams& forest_params) {
  if (samples.empty()) {
    throw std::invalid_argument("ParameterPredictor::fit: no samples");
  }
  Matrix x, y;
  samples_to_matrices(samples, x, y);
  const util::ScopedCharge features_charge(util::MemSubsystem::MlFeatures,
                                           x.logical_bytes() +
                                               y.logical_bytes());
  switch (kind_) {
    case ModelKind::RandomForest:
      forest_.fit(x, y, forest_params);
      break;
    case ModelKind::Ridge:
      ridge_.fit(x, y);
      break;
    case ModelKind::Lasso:
      lasso_.fit(x, y);
      break;
  }
  trained_ = true;
}

std::vector<double> ParameterPredictor::raw_predict(const double* features) const {
  switch (kind_) {
    case ModelKind::RandomForest: return forest_.predict(features);
    case ModelKind::Ridge: return ridge_.predict(features);
    case ModelKind::Lasso: return lasso_.predict(features);
  }
  return {};
}

PredictedParams ParameterPredictor::predict(double beta,
                                            std::uint64_t num_vertices,
                                            std::uint64_t num_edges) const {
  if (!trained_) {
    throw std::logic_error("ParameterPredictor::predict: not trained");
  }
  const double features[3] = {
      beta,
      std::log10(static_cast<double>(std::max<std::uint64_t>(num_vertices, 1))),
      std::log10(static_cast<double>(std::max<std::uint64_t>(num_edges, 1)))};
  const std::vector<double> out = raw_predict(features);
  PredictedParams params;
  // Clamp to the sweep grid hull (§VI grids).
  params.palette_percent = std::clamp(out[0], 1.0, 20.0);
  params.alpha = std::clamp(out[1], 0.5, 4.5);
  return params;
}

EvalReport ParameterPredictor::evaluate(
    const std::vector<TrainingSample>& test_samples) const {
  if (!trained_ || test_samples.empty()) {
    throw std::logic_error("ParameterPredictor::evaluate: not ready");
  }
  std::vector<double> true_percent, pred_percent, true_alpha, pred_alpha;
  for (const TrainingSample& s : test_samples) {
    const double features[3] = {s.beta, s.log_vertices, s.log_edges};
    const std::vector<double> p = raw_predict(features);
    true_percent.push_back(s.best_percent);
    pred_percent.push_back(p[0]);
    true_alpha.push_back(s.best_alpha);
    pred_alpha.push_back(p[1]);
  }
  EvalReport report;
  report.model = kind_;
  report.mape_percent = mape(true_percent, pred_percent);
  report.mape_alpha = mape(true_alpha, pred_alpha);
  report.r2_percent = r_squared(true_percent, pred_percent);
  report.r2_alpha = r_squared(true_alpha, pred_alpha);
  return report;
}

}  // namespace picasso::ml
