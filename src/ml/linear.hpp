#pragma once
// Linear baselines for the parameter predictor: ridge (closed form) and
// lasso (coordinate descent). §VI reports that the nonlinear models beat
// these on the (beta, |V|, |E|) -> (P', alpha) task; the benchmark
// reproduces that comparison.

#include <vector>

#include "ml/dataset.hpp"

namespace picasso::ml {

/// Multi-output ridge regression with intercept:
/// minimizes ||Y - XW - b||^2 + lambda ||W||^2 (intercept unpenalised).
class RidgeRegressor {
 public:
  explicit RidgeRegressor(double lambda = 1e-3) : lambda_(lambda) {}

  void fit(const Matrix& x, const Matrix& y);
  std::vector<double> predict(const double* features) const;
  Matrix predict_all(const Matrix& x) const;
  bool trained() const noexcept { return !weights_.data().empty(); }

 private:
  double lambda_;
  Matrix weights_;               // d x t
  std::vector<double> intercept_;  // t
  std::size_t num_features_ = 0;
};

/// Multi-output lasso via cyclic coordinate descent on standardised
/// features; each output fitted independently.
class LassoRegressor {
 public:
  explicit LassoRegressor(double lambda = 1e-3, int max_iterations = 500,
                          double tolerance = 1e-8)
      : lambda_(lambda), max_iterations_(max_iterations), tolerance_(tolerance) {}

  void fit(const Matrix& x, const Matrix& y);
  std::vector<double> predict(const double* features) const;
  Matrix predict_all(const Matrix& x) const;
  bool trained() const noexcept { return !weights_.data().empty(); }

  /// Number of exactly-zero coefficients (sparsity diagnostic).
  std::size_t zero_count(double eps = 1e-12) const;

 private:
  double lambda_;
  int max_iterations_;
  double tolerance_;
  Matrix weights_;                 // d x t (in original feature scale)
  std::vector<double> intercept_;  // t
  std::size_t num_features_ = 0;
};

/// Solves the symmetric positive-definite system A w = b by Gaussian
/// elimination with partial pivoting (d is tiny here). Exposed for tests.
std::vector<double> solve_linear_system(Matrix a, std::vector<double> b);

}  // namespace picasso::ml
