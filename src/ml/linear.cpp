#include "ml/linear.hpp"

#include <cmath>
#include <stdexcept>

namespace picasso::ml {

std::vector<double> solve_linear_system(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("solve_linear_system: shape mismatch");
  }
  // Forward elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-14) {
      throw std::runtime_error("solve_linear_system: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(pivot, c), a.at(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> w(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a.at(r, c) * w[c];
    w[r] = acc / a.at(r, r);
  }
  return w;
}

namespace {

struct Standardized {
  std::vector<double> mean;
  std::vector<double> scale;  // standard deviation, 1.0 where degenerate
};

Standardized feature_stats(const Matrix& x) {
  const std::size_t n = x.rows(), d = x.cols();
  Standardized s{std::vector<double>(d, 0.0), std::vector<double>(d, 1.0)};
  for (std::size_t f = 0; f < d; ++f) {
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) sum += x.at(r, f);
    s.mean[f] = sum / static_cast<double>(n);
    double var = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double dlt = x.at(r, f) - s.mean[f];
      var += dlt * dlt;
    }
    var /= static_cast<double>(n);
    s.scale[f] = var > 1e-18 ? std::sqrt(var) : 1.0;
  }
  return s;
}

}  // namespace

void RidgeRegressor::fit(const Matrix& x, const Matrix& y) {
  const std::size_t n = x.rows(), d = x.cols(), t = y.cols();
  if (n == 0 || y.rows() != n) {
    throw std::invalid_argument("RidgeRegressor::fit: bad shapes");
  }
  num_features_ = d;
  // Center both sides; the intercept absorbs the means.
  const Standardized s = feature_stats(x);
  std::vector<double> y_mean(t, 0.0);
  for (std::size_t out = 0; out < t; ++out) {
    for (std::size_t r = 0; r < n; ++r) y_mean[out] += y.at(r, out);
    y_mean[out] /= static_cast<double>(n);
  }

  // Normal equations on centered data: (Xc^T Xc + lambda I) W = Xc^T Yc.
  Matrix gram(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        acc += (x.at(r, i) - s.mean[i]) * (x.at(r, j) - s.mean[j]);
      }
      gram.at(i, j) = acc;
      gram.at(j, i) = acc;
    }
    gram.at(i, i) += lambda_;
  }

  weights_ = Matrix(d, t);
  intercept_.assign(t, 0.0);
  for (std::size_t out = 0; out < t; ++out) {
    std::vector<double> rhs(d, 0.0);
    for (std::size_t f = 0; f < d; ++f) {
      double acc = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        acc += (x.at(r, f) - s.mean[f]) * (y.at(r, out) - y_mean[out]);
      }
      rhs[f] = acc;
    }
    const std::vector<double> w = solve_linear_system(gram, rhs);
    double b = y_mean[out];
    for (std::size_t f = 0; f < d; ++f) {
      weights_.at(f, out) = w[f];
      b -= w[f] * s.mean[f];
    }
    intercept_[out] = b;
  }
}

std::vector<double> RidgeRegressor::predict(const double* features) const {
  if (!trained()) throw std::logic_error("RidgeRegressor::predict: not trained");
  std::vector<double> out(intercept_);
  for (std::size_t f = 0; f < num_features_; ++f) {
    for (std::size_t t = 0; t < out.size(); ++t) {
      out[t] += features[f] * weights_.at(f, t);
    }
  }
  return out;
}

Matrix RidgeRegressor::predict_all(const Matrix& x) const {
  Matrix out(x.rows(), intercept_.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const std::vector<double> p = predict(x.row(r));
    for (std::size_t c = 0; c < p.size(); ++c) out.at(r, c) = p[c];
  }
  return out;
}

void LassoRegressor::fit(const Matrix& x, const Matrix& y) {
  const std::size_t n = x.rows(), d = x.cols(), t = y.cols();
  if (n == 0 || y.rows() != n) {
    throw std::invalid_argument("LassoRegressor::fit: bad shapes");
  }
  num_features_ = d;
  const Standardized s = feature_stats(x);

  // Standardised design matrix.
  Matrix xs(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t f = 0; f < d; ++f) {
      xs.at(r, f) = (x.at(r, f) - s.mean[f]) / s.scale[f];
    }
  }
  std::vector<double> y_mean(t, 0.0);
  for (std::size_t out = 0; out < t; ++out) {
    for (std::size_t r = 0; r < n; ++r) y_mean[out] += y.at(r, out);
    y_mean[out] /= static_cast<double>(n);
  }
  // Column norms (constant across outputs).
  std::vector<double> col_sq(d, 0.0);
  for (std::size_t f = 0; f < d; ++f) {
    for (std::size_t r = 0; r < n; ++r) col_sq[f] += xs.at(r, f) * xs.at(r, f);
  }

  weights_ = Matrix(d, t);
  intercept_.assign(t, 0.0);
  const double shrink = lambda_ * static_cast<double>(n);

  for (std::size_t out = 0; out < t; ++out) {
    std::vector<double> w(d, 0.0);
    std::vector<double> residual(n);
    for (std::size_t r = 0; r < n; ++r) residual[r] = y.at(r, out) - y_mean[out];

    for (int it = 0; it < max_iterations_; ++it) {
      double max_delta = 0.0;
      for (std::size_t f = 0; f < d; ++f) {
        if (col_sq[f] == 0.0) continue;
        // rho = x_f . (residual + x_f w_f)
        double rho = 0.0;
        for (std::size_t r = 0; r < n; ++r) rho += xs.at(r, f) * residual[r];
        rho += col_sq[f] * w[f];
        // Soft threshold.
        double w_new = 0.0;
        if (rho > shrink) {
          w_new = (rho - shrink) / col_sq[f];
        } else if (rho < -shrink) {
          w_new = (rho + shrink) / col_sq[f];
        }
        const double delta = w_new - w[f];
        if (delta != 0.0) {
          for (std::size_t r = 0; r < n; ++r) residual[r] -= delta * xs.at(r, f);
          w[f] = w_new;
          max_delta = std::max(max_delta, std::abs(delta));
        }
      }
      if (max_delta < tolerance_) break;
    }
    // Fold the standardisation back into original-scale weights.
    double b = y_mean[out];
    for (std::size_t f = 0; f < d; ++f) {
      const double w_orig = w[f] / s.scale[f];
      weights_.at(f, out) = w_orig;
      b -= w_orig * s.mean[f];
    }
    intercept_[out] = b;
  }
}

std::vector<double> LassoRegressor::predict(const double* features) const {
  if (!trained()) throw std::logic_error("LassoRegressor::predict: not trained");
  std::vector<double> out(intercept_);
  for (std::size_t f = 0; f < num_features_; ++f) {
    for (std::size_t t = 0; t < out.size(); ++t) {
      out[t] += features[f] * weights_.at(f, t);
    }
  }
  return out;
}

Matrix LassoRegressor::predict_all(const Matrix& x) const {
  Matrix out(x.rows(), intercept_.size());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const std::vector<double> p = predict(x.row(r));
    for (std::size_t c = 0; c < p.size(); ++c) out.at(r, c) = p[c];
  }
  return out;
}

std::size_t LassoRegressor::zero_count(double eps) const {
  std::size_t zeros = 0;
  for (double w : weights_.data()) zeros += std::abs(w) <= eps ? 1 : 0;
  return zeros;
}

}  // namespace picasso::ml
