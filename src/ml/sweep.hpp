#pragma once
// §VI Steps 1-4: parameter sweeps and training-set construction.
//
// For a graph (Pauli set), run Picasso over a (P', alpha) grid recording the
// final color count C and the maximum conflict-edge count |Ec|; for each
// trade-off weight beta select the grid point minimising
//     beta * C_hat + (1 - beta) * Ec_hat            (Eq. (7))
// where C_hat, Ec_hat are the objectives normalised to [0, 1] over the
// sweep (the two raw scales differ by orders of magnitude; the paper mixes
// them through beta, which only yields a meaningful trade-off curve after
// normalisation — documented substitution).

#include <cstdint>
#include <vector>

#include "core/picasso.hpp"
#include "ml/dataset.hpp"
#include "pauli/pauli_set.hpp"

namespace picasso::ml {

struct SweepPoint {
  double palette_percent = 0.0;
  double alpha = 0.0;
  std::uint32_t colors = 0;
  std::uint64_t max_conflict_edges = 0;
  double seconds = 0.0;
};

/// Default grids from the paper: P' in {1, 2.5, 5, ..., 20} percent and
/// alpha in {0.5, 1.0, ..., 4.5}.
std::vector<double> default_percent_grid();
std::vector<double> default_alpha_grid();

/// Step 1: run Picasso over the grid (single seed per point; the driver is
/// deterministic given the seed).
std::vector<SweepPoint> parameter_sweep(const pauli::PauliSet& set,
                                        const std::vector<double>& percents,
                                        const std::vector<double>& alphas,
                                        const core::PicassoParams& base = {});

/// Steps 2-3: for each beta pick argmin of Eq. (7) over the sweep.
struct OptimalChoice {
  double beta = 0.0;
  double palette_percent = 0.0;
  double alpha = 0.0;
  double objective = 0.0;
};
std::vector<OptimalChoice> optimal_choices(const std::vector<SweepPoint>& sweep,
                                           const std::vector<double>& betas);

/// One supervised example: features (beta, log10 |V|, log10 |E|) ->
/// targets (P', alpha).
struct TrainingSample {
  double beta = 0.0;
  double log_vertices = 0.0;
  double log_edges = 0.0;
  double best_percent = 0.0;
  double best_alpha = 0.0;
};

/// Step 4 for one graph: sweep + per-beta argmin, stamped with the graph's
/// size features. `num_edges` is the complement-graph edge count.
std::vector<TrainingSample> build_training_samples(
    const pauli::PauliSet& set, std::uint64_t num_edges,
    const std::vector<double>& betas, const std::vector<double>& percents,
    const std::vector<double>& alphas, const core::PicassoParams& base = {});

/// Packs samples into model-ready matrices (X: n x 3, Y: n x 2).
void samples_to_matrices(const std::vector<TrainingSample>& samples, Matrix& x,
                         Matrix& y);

}  // namespace picasso::ml
