#pragma once
// §VI Steps 5-6: the trained (beta, |V|, |E|) -> (P', alpha) predictor that
// front-ends Picasso, with model selection over random forest / ridge /
// lasso and train/test evaluation by molecule (the paper trains on five
// molecules and tests on two held-out ones).

#include <cstdint>
#include <string>
#include <vector>

#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"
#include "ml/sweep.hpp"

namespace picasso::ml {

enum class ModelKind { RandomForest, Ridge, Lasso };

const char* to_string(ModelKind m) noexcept;

struct PredictedParams {
  double palette_percent = 0.0;
  double alpha = 0.0;
};

/// Evaluation of one model on held-out samples.
struct EvalReport {
  ModelKind model = ModelKind::RandomForest;
  double mape_percent = 0.0;   // MAPE over P' targets
  double mape_alpha = 0.0;     // MAPE over alpha targets
  double r2_percent = 0.0;
  double r2_alpha = 0.0;

  double mape_overall() const { return 0.5 * (mape_percent + mape_alpha); }
  double r2_overall() const { return 0.5 * (r2_percent + r2_alpha); }
};

class ParameterPredictor {
 public:
  explicit ParameterPredictor(ModelKind kind = ModelKind::RandomForest)
      : kind_(kind) {}

  ModelKind kind() const noexcept { return kind_; }

  /// Trains on supervised samples (see sweep.hpp).
  void fit(const std::vector<TrainingSample>& samples,
           const ForestParams& forest_params = {});

  /// Predicts (P', alpha) for a new graph and trade-off beta. Outputs are
  /// clamped to the sweep grid's hull so downstream Picasso always receives
  /// feasible parameters.
  PredictedParams predict(double beta, std::uint64_t num_vertices,
                          std::uint64_t num_edges) const;

  /// Evaluates on held-out samples.
  EvalReport evaluate(const std::vector<TrainingSample>& test_samples) const;

  bool trained() const noexcept { return trained_; }

 private:
  std::vector<double> raw_predict(const double* features) const;

  ModelKind kind_;
  RandomForestRegressor forest_;
  RidgeRegressor ridge_;
  LassoRegressor lasso_;
  bool trained_ = false;
};

}  // namespace picasso::ml
