#pragma once
// Structured errors for the public API.
//
// The session front-end validates configuration eagerly — at
// SessionBuilder::build() and Session::plan() time — and reports problems
// as ApiError with a machine-readable code and the offending field, instead
// of asserting (or failing obscurely) deep inside a driver.

#include <stdexcept>
#include <string>
#include <utility>

namespace picasso::api {

enum class ErrorCode {
  InvalidArgument,       // a value is out of its documented domain
  InvalidConfiguration,  // fields are individually fine but inconsistent
  IncompatibleStrategy,  // requested strategy cannot run this problem kind
  IoError,               // a problem file could not be read / parsed
};

const char* to_string(ErrorCode code) noexcept;

class ApiError : public std::runtime_error {
 public:
  ApiError(ErrorCode code, std::string field, const std::string& message)
      : std::runtime_error("picasso::api [" + std::string(to_string(code)) +
                           "] " + field + ": " + message),
        code_(code),
        field_(std::move(field)) {}

  ErrorCode code() const noexcept { return code_; }
  /// The builder/problem field the error is about ("palette_percent",
  /// "devices", "strategy", ...), for programmatic handling.
  const std::string& field() const noexcept { return field_; }

 private:
  ErrorCode code_;
  std::string field_;
};

inline const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::InvalidArgument: return "invalid-argument";
    case ErrorCode::InvalidConfiguration: return "invalid-configuration";
    case ErrorCode::IncompatibleStrategy: return "incompatible-strategy";
    case ErrorCode::IoError: return "io-error";
  }
  return "?";
}

}  // namespace picasso::api
