#pragma once
// Versioned public API surface.
//
// PICASSO_API_VERSION_* is the single source of truth for the library
// version: the CMake project version (and therefore the installed
// picassoConfigVersion.cmake) is parsed out of this header at configure
// time, so bumping the macros here bumps everything consumers see.
//
// Compatibility policy: the picasso::api surface (Problem, SessionBuilder,
// Session, ApiError) is stable within a major version. The deprecated
// picasso_color_* free functions are kept for at least one major version
// after deprecation and then removed.

#define PICASSO_API_VERSION_MAJOR 1
#define PICASSO_API_VERSION_MINOR 0
#define PICASSO_API_VERSION_PATCH 0

// "MMmmpp" as a single comparable integer, e.g. 10000 for 1.0.0.
#define PICASSO_API_VERSION_CODE                               \
  (PICASSO_API_VERSION_MAJOR * 10000 + PICASSO_API_VERSION_MINOR * 100 + \
   PICASSO_API_VERSION_PATCH)

#define PICASSO_API_STR_IMPL(x) #x
#define PICASSO_API_STR(x) PICASSO_API_STR_IMPL(x)
#define PICASSO_API_VERSION                    \
  PICASSO_API_STR(PICASSO_API_VERSION_MAJOR)   \
  "." PICASSO_API_STR(PICASSO_API_VERSION_MINOR) "." PICASSO_API_STR( \
      PICASSO_API_VERSION_PATCH)

namespace picasso::api {

inline constexpr int kVersionMajor = PICASSO_API_VERSION_MAJOR;
inline constexpr int kVersionMinor = PICASSO_API_VERSION_MINOR;
inline constexpr int kVersionPatch = PICASSO_API_VERSION_PATCH;

constexpr const char* version_string() noexcept { return PICASSO_API_VERSION; }

}  // namespace picasso::api
