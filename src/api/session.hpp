#pragma once
// Unified session front-end — the one stable entry point to the Picasso
// pipeline.
//
// The paper's algorithm (encode → palette → conflict subgraph → list-color
// → recurse) is one algorithm, but the library grew eight divergent free
// functions that each re-wired params, telemetry, backends and the runtime
// by hand. A Session owns that wiring instead:
//
//   auto session = picasso::api::SessionBuilder()
//                      .palette(12.5, 2.0)
//                      .seed(1)
//                      .memory_budget(64u << 20)
//                      .build();             // eager validation -> ApiError
//   auto report = session.solve(picasso::api::Problem::pauli(set));
//   // report.result : the usual core::PicassoResult
//   // report.plan   : which strategy/backend/chunking actually ran
//
// solve() plans an execution strategy from the problem kind and size —
// in-memory oracle drive, memory-budgeted streaming, semi-streaming edge
// passes, or multi-device sharding — and runs the existing core engines
// underneath, so colorings are bit-identical to the legacy free functions
// for equal parameters. solve(problem, options) adds per-iteration progress
// callbacks and cooperative cancellation; solve_async() runs the same
// staged pipeline on a worker thread behind a cancellable handle.

#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/problem.hpp"
#include "api/version.hpp"
#include "core/incremental.hpp"
#include "core/multi_device.hpp"
#include "core/picasso.hpp"
#include "core/solve_control.hpp"
#include "core/solve_fused.hpp"
#include "core/streaming.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace picasso::api {

/// How a solve executes. Auto (the default) picks from the problem kind,
/// the memory budget and the device list; the rest force one pipeline and
/// fail with ApiError(IncompatibleStrategy) when the problem cannot run it.
enum class ExecutionStrategy {
  Auto,
  InMemory,           // oracle driver, whole input resident
  BudgetedStreaming,  // spill + chunked pair-scan under the memory budget
  SemiStreaming,      // one edge pass per iteration over an edge stream
  MultiDevice,        // conflict build sharded over simulated devices
  Fused,              // edge-free engine: no conflict CSR is ever built
                      // (spills + strikes off chunked records when the
                      // budget/chunking forces streaming)
  Sketch,             // probabilistic tier: fused engine with the Bloom
                      // support-sketch prefilter for Pauli kinds; a fully
                      // hashed edge oracle for Csr/Dense graphs (colorings
                      // stay valid — the hash admits no false negatives)
};

const char* to_string(ExecutionStrategy strategy) noexcept;

/// Inverse of to_string(ExecutionStrategy): parses "auto" / "in-memory" /
/// "budgeted-streaming" / "semi-streaming" / "multi-device" / "fused" /
/// "sketch" (plus the CLI shorthands "inmemory" and "streaming"). Throws
/// std::invalid_argument naming the valid spellings on anything else — the
/// CLI surfaces that message verbatim with exit code 2.
ExecutionStrategy parse_strategy(std::string_view name);

/// The execution decision solve() made (or plan() previews), returned
/// alongside the result.
struct SolvePlan {
  ExecutionStrategy strategy = ExecutionStrategy::InMemory;
  core::PauliBackend backend = core::PauliBackend::Packed;  // resolved
  std::size_t memory_budget_bytes = 0;
  std::size_t chunk_strings = 0;   // streaming plans: strings per chunk
  std::uint32_t num_devices = 0;   // multi-device plans
  std::string reason;              // one line of why, for logs

  /// One-line human-readable summary ("streamed: 4096 strings/chunk ...").
  std::string summary() const;
};

/// What one solve did, in numbers: the deterministic work counters, the
/// phase spans (TelemetryLevel::Full only) and the memory report, harvested
/// by Session::solve when the session's telemetry level is not Off. The
/// counter totals are bit-identical across thread counts and telemetry
/// levels — they count logical algorithm work, not physical scheduling —
/// except the avx2/scalar kernel split, which depends on the host ISA (its
/// sum is deterministic; see obs::counter_is_deterministic).
struct SolveTelemetry {
  obs::TelemetryLevel level = obs::TelemetryLevel::Off;
  obs::CounterTotals counters;
  std::vector<obs::SpanRecord> spans;  // empty below Full
  std::uint64_t dropped_spans = 0;
  core::MemoryReport memory;

  bool enabled() const noexcept { return level != obs::TelemetryLevel::Off; }

  /// {"level":..,"counters":{..},"memory":{..},"spans":N,"dropped_spans":M}
  std::string to_json() const;
  /// chrome://tracing / Perfetto "traceEvents" document over spans.
  std::string chrome_trace_json() const {
    return obs::TraceRecorder::chrome_trace_json(spans);
  }
  /// One JSON object per span, newline-separated (jq-friendly).
  std::string spans_json_lines() const {
    return obs::TraceRecorder::json_lines(spans);
  }
};

/// What the probabilistic tier of an ExecutionStrategy::Sketch solve did.
/// For Pauli kinds the sketch is a prefilter in front of exact kernels, so
/// the coloring is bit-identical to the Fused sibling and the per-probe
/// stats live in the telemetry counters (sketch_probes / sketch_hits /
/// sketch_false_positives). For Csr/Dense the solve ran entirely against a
/// hashed edge membership filter; the fields below measure how often the
/// hash claimed an edge the exact oracle disowns (extra colors, never an
/// invalid coloring).
struct SketchInfo {
  bool used = false;    // a sketch tier actually engaged
  bool hashed = false;  // fully-hashed oracle (Csr/Dense), not a prefilter
  std::uint64_t probes = 0;           // hashed: edge queries answered
  std::uint64_t claimed = 0;          // hashed: queries the filter claimed
  std::uint64_t false_conflicts = 0;  // hashed: claims the exact oracle denies
  double false_conflict_rate = 0.0;   // false_conflicts / probes
  std::size_t sketch_bytes = 0;       // filter footprint (Bloom bit array)
};

/// PicassoResult enriched with the plan that produced it (and, for
/// multi-device runs, the per-shard stats of core::MultiDeviceResult).
struct SolveReport {
  core::PicassoResult result;
  SolvePlan plan;
  /// Canonical problem fingerprint (see problem_fingerprint below): set for
  /// Pauli / PackedPauli problems, 0 otherwise. Two solves with equal
  /// problem_hash return bit-identical colorings — the key the service
  /// result cache trusts.
  std::uint64_t problem_hash = 0;
  SolveTelemetry telemetry;  // empty unless SessionBuilder::telemetry()
  std::vector<core::DeviceShardStats> devices;  // empty unless MultiDevice
  /// Set by Session::update() only: the insertion/recolor/escalation work
  /// accounting of that one delta.
  std::optional<core::UpdateStats> update;
  /// Set by ExecutionStrategy::Sketch solves only.
  std::optional<SketchInfo> sketch;

  std::uint64_t total_shard_edges() const noexcept {
    return core::total_shard_edges(devices);
  }
  /// max/mean edge load across devices; 1.0 = perfectly balanced (also the
  /// reading for a non-sharded run with no device stats).
  double shard_imbalance() const noexcept {
    return core::shard_imbalance(devices);
  }
  std::size_t max_device_peak_bytes() const noexcept {
    return core::max_shard_peak_bytes(devices);
  }
};

/// One increment handed to Session::update(): either new Pauli records to
/// append to the session's resident set, or new generic-graph vertices,
/// each carrying its conflict edges to strictly earlier vertices. Pauli
/// payloads follow the Problem ownership contract: the && factory owns,
/// the const& factory borrows (the referent must outlive the update call).
class UpdateDelta {
 public:
  static UpdateDelta pauli(pauli::PauliSet&& records);
  static UpdateDelta pauli(const pauli::PauliSet& records);
  static UpdateDelta graph(std::vector<core::GraphVertexDelta> vertices);

  bool is_pauli() const noexcept { return records_ != nullptr; }
  const pauli::PauliSet& pauli_records() const { return *records_; }
  const std::vector<core::GraphVertexDelta>& graph_vertices() const noexcept {
    return vertices_;
  }

 private:
  UpdateDelta() = default;

  std::shared_ptr<const pauli::PauliSet> records_;
  std::vector<core::GraphVertexDelta> vertices_;
};

/// Canonical FNV-1a fingerprint of an encoded Pauli problem under a
/// parameter set: folds the packed symplectic planes (the canonical bytes —
/// identical whether the records arrived symbolic or packed) plus exactly
/// the params that can change the coloring: palette_percent, alpha, seed,
/// max_iterations, conflict_scheme. Backend, kernel, thread count, strategy,
/// telemetry and budget are deliberately EXCLUDED — the library's
/// determinism contract pins colorings bit-identical across all of them, so
/// one cache entry serves every execution flavor of the same problem.
std::uint64_t problem_fingerprint(const pauli::PackedView& view,
                                  std::size_t num_qubits,
                                  const core::PicassoParams& params);
std::uint64_t problem_fingerprint(const pauli::PauliSet& set,
                                  const core::PicassoParams& params);

/// Per-call hooks; both default to inert. The progress callback runs on
/// the solving thread (the worker thread for solve_async) and overrides a
/// session-level callback; stop tokens compose — a stop requested through
/// the session-level token, the per-call token, or (async) the handle all
/// cancel the run.
struct SolveOptions {
  core::StopToken stop;
  core::ProgressFn progress;
};

class Session;

/// Handle to a staged solve running on a worker thread. Movable, not
/// copyable; get() joins and rethrows (core::SolveCancelled after a
/// request_stop that won the race, ApiError for planning failures).
class AsyncSolve {
 public:
  AsyncSolve(AsyncSolve&&) noexcept = default;
  AsyncSolve& operator=(AsyncSolve&&) noexcept = default;

  /// Signals the StopToken the drivers poll at iteration/chunk boundaries.
  void request_stop() noexcept { stop_.request_stop(); }

  bool stop_requested() const noexcept { return stop_.stop_requested(); }

  void wait() const { future_.wait(); }

  bool ready() const {
    return future_.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  /// Blocks until the solve finishes and returns (or rethrows) its outcome.
  SolveReport get() { return future_.get(); }

 private:
  friend class Session;
  AsyncSolve(core::StopSource stop, std::future<SolveReport> future)
      : stop_(std::move(stop)), future_(std::move(future)) {}

  core::StopSource stop_;
  std::future<SolveReport> future_;
};

class Session {
 public:
  /// Default session: PicassoParams{} semantics, Auto strategy.
  Session() = default;

  /// Bridges existing PicassoParams-based code onto the session pipeline —
  /// every field (seed, palette, backend, runtime, budget, device, hooks)
  /// carries over. The legacy shims are implemented with this.
  static Session from_params(const core::PicassoParams& params) {
    Session s;
    s.params_ = params;
    return s;
  }

  const core::PicassoParams& params() const noexcept { return params_; }

  obs::TelemetryLevel telemetry_level() const noexcept { return telemetry_; }

  /// Previews the execution decision for `problem` without solving.
  /// Throws ApiError(IncompatibleStrategy) when a forced strategy cannot
  /// run this problem kind.
  SolvePlan plan(const Problem& problem) const;

  SolveReport solve(const Problem& problem) const {
    return solve(problem, SolveOptions{});
  }

  /// Staged solve with cooperative cancellation and per-iteration progress.
  /// A stop requested through options.stop raises core::SolveCancelled from
  /// the next iteration (or chunk-pair) boundary; a cancelled budgeted
  /// solve removes its spill file before unwinding.
  SolveReport solve(const Problem& problem, const SolveOptions& options) const;

  /// Runs solve() on a worker thread. The returned handle owns a
  /// StopSource wired into the run; Problem payloads are shared_ptr-backed,
  /// so owned problems are safe to hand off — borrowed payloads must
  /// outlive the handle.
  AsyncSolve solve_async(Problem problem, SolveOptions options = {}) const;

  // --- Incremental updates -------------------------------------------------
  // The online path: one full solve seeds a resident core::FusedState
  // (palette assignment, color→vertices buckets, packed signatures, record
  // store — in memory, or a budget-grown .pset spill when the session has a
  // memory budget or an explicit chunk size), and each update() extends it
  // in place. Determinism contract: the coloring after N updates is
  // bit-identical to one update over the concatenated input, across thread
  // counts, Scalar/Packed backends, and in-memory vs spilled stores (the CI
  // replay gate pins it).

  /// Full fused solve over `problem` (an encoded Pauli set) that keeps the
  /// solved state resident for later update() calls. Replaces any previous
  /// incremental state on success. Throws ApiError(IncompatibleStrategy)
  /// for non-Pauli problems.
  SolveReport solve_incremental(const Problem& problem,
                                const SolveOptions& options = {});

  /// Applies one delta to the resident state: appends the records, colors
  /// each new vertex by striking the existing color buckets (bounded local
  /// recoloring, then a fresh color, then — past update_params().
  /// max_new_colors — one full fused re-solve of the ingested prefix).
  /// A Pauli delta with no prior solve_incremental bootstraps an empty
  /// state; graph deltas require a prior solve. A cancelled update keeps
  /// the state consistent — the ingested-but-uncolored backlog is colored
  /// by the next call. The report carries the full coloring so far and
  /// SolveReport::update.
  SolveReport update(const UpdateDelta& delta, const SolveOptions& options = {});

  bool has_incremental_state() const noexcept { return state_ != nullptr; }
  /// The resident state (nullptr before the first solve_incremental /
  /// update). Copied Sessions share it.
  const core::FusedState* incremental_state() const noexcept {
    return state_.get();
  }
  /// Drops the resident state (removing its spill file, if any).
  void reset_incremental() noexcept { state_.reset(); }

  const core::UpdateParams& update_params() const noexcept {
    return update_params_;
  }

 private:
  friend class SessionBuilder;

  core::PicassoParams params_;
  core::StreamingOptions streaming_;
  obs::TelemetryLevel telemetry_ = obs::TelemetryLevel::Off;
  ExecutionStrategy strategy_ = ExecutionStrategy::Auto;
  std::uint32_t num_devices_ = 0;  // 0 = multi-device not configured
  std::size_t device_capacity_bytes_ = 256u << 20;
  core::UpdateParams update_params_;
  // shared_ptr so Session stays copyable (solve_async copies the session);
  // copies share the incremental state.
  std::shared_ptr<core::FusedState> state_;
};

/// Fluent configuration for Session, validated eagerly at build() with
/// structured ApiErrors instead of asserts deep in the drivers.
class SessionBuilder {
 public:
  /// Seeds every knob from an existing PicassoParams (migration aid).
  SessionBuilder& params(const core::PicassoParams& params) {
    session_.params_ = params;
    return *this;
  }

  /// P' (percent of active vertices) and alpha (list-size multiplier) —
  /// Table III's "Norm." is (12.5, 2), "Aggr." is (3, 30).
  SessionBuilder& palette(double percent, double alpha) {
    session_.params_.palette_percent = percent;
    session_.params_.alpha = alpha;
    return *this;
  }

  SessionBuilder& seed(std::uint64_t seed) {
    session_.params_.seed = seed;
    return *this;
  }

  SessionBuilder& max_iterations(int iterations) {
    session_.params_.max_iterations = iterations;
    return *this;
  }

  /// Anticommutation backend for Pauli problems (all bit-identical).
  SessionBuilder& backend(core::PauliBackend backend) {
    session_.params_.pauli_backend = backend;
    return *this;
  }

  SessionBuilder& kernel(core::ConflictKernel kernel) {
    session_.params_.kernel = kernel;
    return *this;
  }

  SessionBuilder& runtime(const runtime::RuntimeConfig& config) {
    session_.params_.runtime = config;
    return *this;
  }

  /// Runs every parallel phase of this session on an externally-owned pool
  /// instead of the process-wide shared() cache. Non-owning: `pool` must
  /// outlive every solve. This is the server injection point — one pool
  /// serves all concurrent sessions, so tenants share workers fairly
  /// instead of each solve spinning up (or monopolising) its own.
  SessionBuilder& shared_pool(runtime::ThreadPool* pool) {
    session_.params_.runtime.pool = pool;
    return *this;
  }

  /// Directory for spill files of streamed / incremental plans ("" = the
  /// system temp directory). Convenience over .streaming() when only the
  /// placement matters — the server points every session at its one
  /// managed spill directory.
  SessionBuilder& spill_dir(std::string dir) {
    session_.streaming_.spill_dir = std::move(dir);
    return *this;
  }

  /// Hard cap on tracked resident bytes; also what Auto weighs when
  /// deciding to stream (budget < 2x encoded input => spill + chunk).
  SessionBuilder& memory_budget(std::size_t bytes) {
    session_.params_.memory_budget_bytes = bytes;
    return *this;
  }

  /// Routes conflict builds through one simulated device (Algorithm 3).
  SessionBuilder& device(device::DeviceContext* device) {
    session_.params_.device = device;
    return *this;
  }

  /// Shards conflict builds over `count` simulated devices of
  /// `capacity_bytes` each; Auto then plans MultiDevice execution.
  SessionBuilder& devices(std::uint32_t count, std::size_t capacity_bytes) {
    session_.num_devices_ = count;
    session_.device_capacity_bytes_ = capacity_bytes;
    return *this;
  }

  /// Spill-file placement / chunk sizing for streamed plans.
  SessionBuilder& streaming(const core::StreamingOptions& options) {
    session_.streaming_ = options;
    return *this;
  }

  /// Forces a pipeline instead of Auto planning.
  SessionBuilder& strategy(ExecutionStrategy strategy) {
    session_.strategy_ = strategy;
    return *this;
  }

  /// Telemetry harvested into SolveReport::telemetry. Off (the default)
  /// adds nothing to the solve; Counters enables the deterministic work
  /// counters; Full additionally records nested phase spans exportable as
  /// a chrome://tracing document. The global counter registry is run-scoped
  /// per solve, so concurrent solves with telemetry enabled would mix
  /// counts — run them sequentially when exact totals matter.
  SessionBuilder& telemetry(obs::TelemetryLevel level) {
    session_.telemetry_ = level;
    return *this;
  }

  /// Knobs of the incremental insertion path (Session::update): the local
  /// recoloring cap and the fresh-color escalation budget.
  SessionBuilder& update_params(core::UpdateParams params) {
    session_.update_params_ = params;
    return *this;
  }

  /// Session-wide progress hook (a SolveOptions callback overrides it).
  SessionBuilder& progress(core::ProgressFn fn) {
    session_.params_.progress = std::move(fn);
    return *this;
  }

  /// Session-wide stop token; per-call SolveOptions tokens compose with it.
  SessionBuilder& stop_token(core::StopToken stop) {
    session_.params_.stop = std::move(stop);
    return *this;
  }

  /// Validates the whole configuration; throws ApiError naming the field.
  Session build() const;

 private:
  Session session_;
};

}  // namespace picasso::api
