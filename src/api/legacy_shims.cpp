// Definitions of the deprecated picasso_color_* free functions. Each is a
// thin shim over the Session pipeline (api/session.hpp) so the legacy
// surface and the new one cannot drift apart: the differential suite pins
// every shim bit-identical to Session::solve with the matching Problem.

#include "api/session.hpp"
#include "core/picasso.hpp"
#include "core/streaming.hpp"

// The shims are themselves deprecated declarations; defining them is fine,
// but some toolchains warn on the re-declaration — keep the build quiet.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace picasso::core {

PicassoResult picasso_color_pauli(const pauli::PauliSet& set,
                                  const PicassoParams& params) {
  // Forced InMemory: historically this entry point never streamed — a
  // memory budget was telemetry only (within_budget reporting), and Auto
  // planning would otherwise spill large inputs to disk behind the
  // caller's back. picasso_color_pauli_budgeted is the opt-in.
  return api::SessionBuilder()
      .params(params)
      .strategy(api::ExecutionStrategy::InMemory)
      .build()
      .solve(api::Problem::pauli(set))
      .result;
}

PicassoResult picasso_color_csr(const graph::CsrGraph& g,
                                const PicassoParams& params) {
  return api::Session::from_params(params).solve(api::Problem::csr(g)).result;
}

PicassoResult picasso_color_dense(const graph::DenseGraph& g,
                                  const PicassoParams& params) {
  return api::Session::from_params(params)
      .solve(api::Problem::dense(g))
      .result;
}

PicassoResult picasso_color_pauli_budgeted(const pauli::PauliSet& set,
                                           const PicassoParams& params,
                                           const StreamingOptions& options) {
  // Pinned to the materialized budgeted engine (not Auto planning): the
  // planner may nowadays escalate tight-budget solves to the fused
  // streaming engine, but this shim's contract is the historical behavior
  // — the engine's own stream-or-not gate, chunk-pair scans, conflict-CSR
  // telemetry and all.
  return solve_pauli_budgeted(set, params, options);
}

PicassoResult picasso_color_pauli_chunked(
    const pauli::ChunkedPauliReader& reader, const PicassoParams& params) {
  return api::Session::from_params(params)
      .solve(api::Problem::spill_reader(reader))
      .result;
}

}  // namespace picasso::core
