#pragma once
// Type-erased problem instances for the session front-end.
//
// A Problem is "something Picasso can color": an encoded Pauli set (owned
// or borrowed), a bit-packed Pauli set, an explicit CSR / dense graph, a
// .pset spill file (or an already-open ChunkedPauliReader), a graph file
// (MatrixMarket or edge-list, loaded eagerly), a replayable edge stream, or
// any adjacency oracle. Session::plan() reads only the problem's kind and
// size, so strategy selection is uniform across every input shape, and
// Session::solve() dispatches to exactly the driver the matching legacy
// entry point used — colorings are bit-identical to the pre-Session free
// functions.
//
// Ownership: the `Problem::x(T&&)` overloads take ownership (the payload
// moves into a shared_ptr, so Problem copies are cheap and solve_async is
// safe); the `Problem::x(const T&)` overloads borrow — the referent must
// outlive every solve, which is the natural contract for the migrated call
// sites that keep the input around anyway.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "api/error.hpp"
#include "graph/csr_graph.hpp"
#include "graph/dense_graph.hpp"
#include "graph/oracles.hpp"
#include "pauli/pauli_packed.hpp"
#include "pauli/pauli_set.hpp"
#include "pauli/pauli_stream.hpp"

namespace picasso::core {
class VectorEdgeStream;  // streaming.hpp; avoided here to keep includes acyclic
}

namespace picasso::api {

enum class ProblemKind {
  Pauli,        // encoded PauliSet (anticommutation complement is colored)
  PackedPauli,  // bit-packed symplectic records
  Csr,          // explicit CSR graph (includes loaded graph files)
  Dense,        // explicit dense bitset graph
  Oracle,       // any type-erased adjacency oracle
  EdgeStream,   // replayable edge enumeration (semi-streaming access model)
  SpillFile,    // .pset spill file on disk
  SpillReader,  // caller-managed ChunkedPauliReader
};

const char* to_string(ProblemKind kind) noexcept;

/// Type-erased borrowed adjacency oracle; satisfies graph::GraphOracle, so
/// it runs through the standard driver (one indirect call per edge query —
/// the generic escape hatch, not the fast path).
class OracleRef {
 public:
  template <graph::GraphOracle O>
    requires(!std::same_as<O, OracleRef>)
  explicit OracleRef(const O& oracle)
      : obj_(&oracle),
        num_vertices_(oracle.num_vertices()),
        edge_([](const void* p, graph::VertexId u, graph::VertexId v) {
          return static_cast<const O*>(p)->edge(u, v);
        }) {}

  graph::VertexId num_vertices() const noexcept { return num_vertices_; }
  bool edge(graph::VertexId u, graph::VertexId v) const {
    return edge_(obj_, u, v);
  }

 private:
  const void* obj_;
  graph::VertexId num_vertices_;
  bool (*edge_)(const void*, graph::VertexId, graph::VertexId);
};

/// Type-erased replayable edge source (the semi-streaming access model of
/// core/streaming.hpp): for_each_edge replays every undirected edge at
/// least once per call, in a deterministic order.
class EdgeSourceRef {
 public:
  using EmitFn = std::function<void(std::uint32_t, std::uint32_t)>;

  /// Borrows `source`; it must outlive every solve.
  template <typename Source>
    requires(!std::same_as<Source, EdgeSourceRef> &&
             requires(const Source& s) {
               s.for_each_edge([](std::uint32_t, std::uint32_t) {});
             })
  explicit EdgeSourceRef(const Source& source)
      : replay_([&source](const EmitFn& emit) {
          source.for_each_edge(
              [&emit](std::uint32_t u, std::uint32_t v) { emit(u, v); });
        }) {}

  /// Owning variant used by the file-backed factories.
  explicit EdgeSourceRef(std::function<void(const EmitFn&)> replay)
      : replay_(std::move(replay)) {}

  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    replay_([&fn](std::uint32_t u, std::uint32_t v) { fn(u, v); });
  }

 private:
  std::function<void(const EmitFn&)> replay_;
};

class Problem {
 public:
  // --- Pauli sets ---------------------------------------------------------
  static Problem pauli(pauli::PauliSet&& set);        // owning
  static Problem pauli(const pauli::PauliSet& set);    // borrowing
  static Problem packed(pauli::PackedPauliSet&& set);
  static Problem packed(const pauli::PackedPauliSet& set);

  // --- Explicit graphs ----------------------------------------------------
  static Problem csr(graph::CsrGraph&& g);
  static Problem csr(const graph::CsrGraph& g);
  static Problem dense(graph::DenseGraph&& g);
  static Problem dense(const graph::DenseGraph& g);

  // --- Files --------------------------------------------------------------
  /// Loads a MatrixMarket coordinate file eagerly into a CSR problem.
  /// Throws ApiError(IoError) when the file is missing or malformed.
  static Problem matrix_market(const std::string& path);
  /// Loads an "n m" edge-list file eagerly into a CSR problem.
  static Problem edge_list(const std::string& path);
  /// Either of the above, picked by extension (.mtx => MatrixMarket).
  static Problem graph_file(const std::string& path);
  /// A .pset spill file (pauli/pauli_stream.hpp format). The header is
  /// validated here; chunking is chosen by the session plan.
  static Problem pauli_spill(const std::string& path);

  // --- Streaming / oracle escape hatches ---------------------------------
  /// Borrows an already-open chunked spill reader (its chunk size wins).
  static Problem spill_reader(const pauli::ChunkedPauliReader& reader);
  /// Borrows any replayable edge source over `n` vertices.
  template <typename Source>
  static Problem edge_stream(std::uint32_t n, const Source& source) {
    return edge_stream_erased(n, EdgeSourceRef(source));
  }
  /// Re-reads an edge-list file every pass — the honest semi-streaming
  /// setting where the graph never resides in memory.
  static Problem edge_stream_file(const std::string& path);
  /// Borrows any adjacency oracle.
  template <graph::GraphOracle O>
  static Problem oracle(const O& o) {
    return oracle_erased(OracleRef(o));
  }

  // --- Introspection ------------------------------------------------------
  ProblemKind kind() const noexcept { return kind_; }
  std::uint32_t num_vertices() const noexcept { return num_vertices_; }
  /// Resident bytes of the encoded input (0 for borrowed oracles, streams
  /// and files) — what the plan weighs against the memory budget.
  std::size_t logical_bytes() const noexcept { return logical_bytes_; }
  /// Source path for file-backed problems ("" otherwise).
  const std::string& path() const noexcept { return path_; }

  // --- Payload access (used by Session::solve) ----------------------------
  const pauli::PauliSet& pauli_set() const { return *pauli_; }
  const pauli::PackedPauliSet& packed_set() const { return *packed_; }
  const graph::CsrGraph& csr_graph() const { return *csr_; }
  const graph::DenseGraph& dense_graph() const { return *dense_; }
  const OracleRef& oracle_ref() const { return *oracle_; }
  const EdgeSourceRef& edge_source() const { return *edges_; }
  const pauli::ChunkedPauliReader& reader() const { return *reader_; }

 private:
  Problem() = default;
  static Problem oracle_erased(OracleRef oracle);
  static Problem edge_stream_erased(std::uint32_t n, EdgeSourceRef source);

  ProblemKind kind_ = ProblemKind::Pauli;
  std::uint32_t num_vertices_ = 0;
  std::size_t logical_bytes_ = 0;
  std::string path_;

  // Exactly one payload is set, matching kind_. Borrowing factories store
  // a non-owning shared_ptr (no-op deleter).
  std::shared_ptr<const pauli::PauliSet> pauli_;
  std::shared_ptr<const pauli::PackedPauliSet> packed_;
  std::shared_ptr<const graph::CsrGraph> csr_;
  std::shared_ptr<const graph::DenseGraph> dense_;
  std::shared_ptr<const OracleRef> oracle_;
  std::shared_ptr<const EdgeSourceRef> edges_;
  std::shared_ptr<const pauli::ChunkedPauliReader> reader_;
};

}  // namespace picasso::api
