#include "api/problem.hpp"

#include <utility>

#include "core/streaming.hpp"
#include "graph/graph_io.hpp"

namespace picasso::api {

namespace {

/// Non-owning shared_ptr for the borrowing factories.
template <typename T>
std::shared_ptr<const T> borrow(const T& ref) {
  return std::shared_ptr<const T>(&ref, [](const T*) {});
}

template <typename Fn>
auto wrap_io(const char* field, const std::string& path, Fn&& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    throw ApiError(ErrorCode::IoError, field, path + ": " + e.what());
  }
}

}  // namespace

const char* to_string(ProblemKind kind) noexcept {
  switch (kind) {
    case ProblemKind::Pauli: return "pauli";
    case ProblemKind::PackedPauli: return "packed-pauli";
    case ProblemKind::Csr: return "csr";
    case ProblemKind::Dense: return "dense";
    case ProblemKind::Oracle: return "oracle";
    case ProblemKind::EdgeStream: return "edge-stream";
    case ProblemKind::SpillFile: return "spill-file";
    case ProblemKind::SpillReader: return "spill-reader";
  }
  return "?";
}

Problem Problem::pauli(pauli::PauliSet&& set) {
  Problem p;
  p.kind_ = ProblemKind::Pauli;
  p.pauli_ = std::make_shared<const pauli::PauliSet>(std::move(set));
  p.num_vertices_ = static_cast<std::uint32_t>(p.pauli_->size());
  p.logical_bytes_ = p.pauli_->logical_bytes();
  return p;
}

Problem Problem::pauli(const pauli::PauliSet& set) {
  Problem p;
  p.kind_ = ProblemKind::Pauli;
  p.pauli_ = borrow(set);
  p.num_vertices_ = static_cast<std::uint32_t>(set.size());
  p.logical_bytes_ = set.logical_bytes();
  return p;
}

Problem Problem::packed(pauli::PackedPauliSet&& set) {
  Problem p;
  p.kind_ = ProblemKind::PackedPauli;
  p.packed_ = std::make_shared<const pauli::PackedPauliSet>(std::move(set));
  p.num_vertices_ = static_cast<std::uint32_t>(p.packed_->size());
  p.logical_bytes_ = p.packed_->logical_bytes();
  return p;
}

Problem Problem::packed(const pauli::PackedPauliSet& set) {
  Problem p;
  p.kind_ = ProblemKind::PackedPauli;
  p.packed_ = borrow(set);
  p.num_vertices_ = static_cast<std::uint32_t>(set.size());
  p.logical_bytes_ = set.logical_bytes();
  return p;
}

Problem Problem::csr(graph::CsrGraph&& g) {
  Problem p;
  p.kind_ = ProblemKind::Csr;
  p.csr_ = std::make_shared<const graph::CsrGraph>(std::move(g));
  p.num_vertices_ = p.csr_->num_vertices();
  p.logical_bytes_ = p.csr_->logical_bytes();
  return p;
}

Problem Problem::csr(const graph::CsrGraph& g) {
  Problem p;
  p.kind_ = ProblemKind::Csr;
  p.csr_ = borrow(g);
  p.num_vertices_ = g.num_vertices();
  p.logical_bytes_ = g.logical_bytes();
  return p;
}

Problem Problem::dense(graph::DenseGraph&& g) {
  Problem p;
  p.kind_ = ProblemKind::Dense;
  p.dense_ = std::make_shared<const graph::DenseGraph>(std::move(g));
  p.num_vertices_ = p.dense_->num_vertices();
  p.logical_bytes_ = p.dense_->logical_bytes();
  return p;
}

Problem Problem::dense(const graph::DenseGraph& g) {
  Problem p;
  p.kind_ = ProblemKind::Dense;
  p.dense_ = borrow(g);
  p.num_vertices_ = g.num_vertices();
  p.logical_bytes_ = g.logical_bytes();
  return p;
}

Problem Problem::matrix_market(const std::string& path) {
  Problem p = wrap_io("matrix_market", path, [&] {
    return Problem::csr(graph::read_matrix_market_file(path));
  });
  p.path_ = path;
  return p;
}

Problem Problem::edge_list(const std::string& path) {
  Problem p = wrap_io("edge_list", path, [&] {
    return Problem::csr(graph::read_edge_list_file(path));
  });
  p.path_ = path;
  return p;
}

Problem Problem::graph_file(const std::string& path) {
  return graph::is_matrix_market_path(path) ? matrix_market(path)
                                            : edge_list(path);
}

Problem Problem::pauli_spill(const std::string& path) {
  Problem p;
  p.kind_ = ProblemKind::SpillFile;
  p.path_ = path;
  // Validate the header now (eager, structured error); the solve opens its
  // own reader with the planned chunk size.
  wrap_io("pauli_spill", path, [&] {
    const pauli::ChunkedPauliReader header(path, 1);
    p.num_vertices_ = static_cast<std::uint32_t>(header.num_strings());
    p.logical_bytes_ = pauli::ChunkedPauliReader::resident_bytes_for(
        header.num_strings(), header.num_qubits());
    return 0;
  });
  return p;
}

Problem Problem::spill_reader(const pauli::ChunkedPauliReader& reader) {
  Problem p;
  p.kind_ = ProblemKind::SpillReader;
  p.reader_ = borrow(reader);
  p.path_ = reader.path();
  p.num_vertices_ = static_cast<std::uint32_t>(reader.num_strings());
  p.logical_bytes_ = pauli::ChunkedPauliReader::resident_bytes_for(
      reader.num_strings(), reader.num_qubits());
  return p;
}

Problem Problem::edge_stream_file(const std::string& path) {
  const auto stream = wrap_io("edge_stream_file", path, [&] {
    return std::make_shared<const core::FileEdgeStream>(path);
  });
  Problem p;
  p.kind_ = ProblemKind::EdgeStream;
  p.path_ = path;
  p.num_vertices_ = stream->num_vertices();
  // The replay closure keeps the FileEdgeStream alive for the Problem's
  // lifetime; only the file handle is transient.
  p.edges_ = std::make_shared<const EdgeSourceRef>(
      EdgeSourceRef([stream](const EdgeSourceRef::EmitFn& emit) {
        stream->for_each_edge(
            [&emit](std::uint32_t u, std::uint32_t v) { emit(u, v); });
      }));
  return p;
}

Problem Problem::oracle_erased(OracleRef oracle) {
  Problem p;
  p.kind_ = ProblemKind::Oracle;
  p.num_vertices_ = oracle.num_vertices();
  p.oracle_ = std::make_shared<const OracleRef>(oracle);
  return p;
}

Problem Problem::edge_stream_erased(std::uint32_t n, EdgeSourceRef source) {
  Problem p;
  p.kind_ = ProblemKind::EdgeStream;
  p.num_vertices_ = n;
  p.edges_ = std::make_shared<const EdgeSourceRef>(std::move(source));
  return p;
}

}  // namespace picasso::api
