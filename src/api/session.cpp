#include "api/session.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <utility>

#include "util/fnv.hpp"

namespace picasso::api {

namespace {

/// Strings per chunk a streamed plan will use — must mirror
/// core::solve_pauli_budgeted's derivation so the reported plan and the
/// engine agree. `per_string` is the resident cost of one string.
std::size_t planned_chunk_strings(std::size_t explicit_chunk,
                                  std::size_t budget, std::size_t per_string,
                                  std::size_t num_strings) {
  std::size_t chunk = explicit_chunk;
  if (chunk == 0 && budget > 0) {
    // Two resident chunks (the pair scan's working set) get half the budget.
    const std::size_t per_chunk_bytes = budget / 4;
    chunk = std::max<std::size_t>(
        1, per_chunk_bytes / std::max<std::size_t>(1, per_string));
  }
  if (chunk == 0) chunk = num_strings;  // no guidance: one chunk
  return std::min(std::max<std::size_t>(1, chunk),
                  std::max<std::size_t>(1, num_strings));
}

bool oracle_capable(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::Pauli:
    case ProblemKind::PackedPauli:
    case ProblemKind::Csr:
    case ProblemKind::Dense:
    case ProblemKind::Oracle:
      return true;
    default:
      return false;
  }
}

pauli::SimdLevel simd_for(core::PauliBackend backend) {
  return core::resolve_backend(backend) == core::PauliBackend::PackedScalar
             ? pauli::SimdLevel::Scalar
             : pauli::SimdLevel::Auto;
}

/// A fresh spill path for an incremental state (the state owns and removes
/// the file). Shares core::unique_spill_path's process-wide counter with
/// the budgeted engines, so no two concurrent solves — whatever mix of
/// incremental and streamed — can collide on a name.
std::string incremental_spill_path(const std::string& spill_dir) {
  return core::unique_spill_path(spill_dir, "incr");
}

/// Builds the resident state for a session. A memory budget or an explicit
/// chunk size routes the record store through a spill from the first
/// ingest: an incremental store only ever grows, so a budgeted session
/// spills up front rather than migrating later. The coloring is identical
/// either way.
std::shared_ptr<core::FusedState> make_incremental_state(
    const core::PicassoParams& params, const core::UpdateParams& update_params,
    const core::StreamingOptions& streaming, std::size_t num_qubits) {
  auto state = std::make_shared<core::FusedState>(params, update_params);
  if (streaming.chunk_strings > 0 || params.memory_budget_bytes > 0) {
    std::size_t chunk = streaming.chunk_strings;
    if (chunk == 0) {
      // Same derivation as the budgeted engine: two resident chunks (one
      // pinned probe target plus working set) get about half the budget.
      const std::size_t per_string =
          pauli::ChunkedPauliReader::resident_bytes_for(1, num_qubits);
      chunk = std::max<std::size_t>(
          1, (params.memory_budget_bytes / 4) /
                 std::max<std::size_t>(1, per_string));
    }
    state->use_spill(incremental_spill_path(streaming.spill_dir), chunk);
  }
  return state;
}

}  // namespace

UpdateDelta UpdateDelta::pauli(pauli::PauliSet&& records) {
  UpdateDelta delta;
  delta.records_ =
      std::make_shared<const pauli::PauliSet>(std::move(records));
  return delta;
}

UpdateDelta UpdateDelta::pauli(const pauli::PauliSet& records) {
  UpdateDelta delta;
  delta.records_ = std::shared_ptr<const pauli::PauliSet>(
      &records, [](const pauli::PauliSet*) {});
  return delta;
}

UpdateDelta UpdateDelta::graph(std::vector<core::GraphVertexDelta> vertices) {
  UpdateDelta delta;
  delta.vertices_ = std::move(vertices);
  return delta;
}

const char* to_string(ExecutionStrategy strategy) noexcept {
  switch (strategy) {
    case ExecutionStrategy::Auto: return "auto";
    case ExecutionStrategy::InMemory: return "in-memory";
    case ExecutionStrategy::BudgetedStreaming: return "budgeted-streaming";
    case ExecutionStrategy::SemiStreaming: return "semi-streaming";
    case ExecutionStrategy::MultiDevice: return "multi-device";
    case ExecutionStrategy::Fused: return "fused";
    case ExecutionStrategy::Sketch: return "sketch";
  }
  return "?";
}

ExecutionStrategy parse_strategy(std::string_view name) {
  constexpr ExecutionStrategy kAll[] = {
      ExecutionStrategy::Auto,          ExecutionStrategy::InMemory,
      ExecutionStrategy::BudgetedStreaming,
      ExecutionStrategy::SemiStreaming, ExecutionStrategy::MultiDevice,
      ExecutionStrategy::Fused,         ExecutionStrategy::Sketch};
  for (ExecutionStrategy strategy : kAll) {
    if (name == to_string(strategy)) return strategy;
  }
  // CLI shorthands.
  if (name == "inmemory") return ExecutionStrategy::InMemory;
  if (name == "streaming") return ExecutionStrategy::BudgetedStreaming;
  // Build the valid list from the same enumeration the parser walks, so
  // the message can never drift from what is actually accepted.
  std::string valid;
  for (ExecutionStrategy strategy : kAll) {
    if (!valid.empty()) valid += ", ";
    valid += to_string(strategy);
    if (strategy == ExecutionStrategy::InMemory) valid += " (inmemory)";
    if (strategy == ExecutionStrategy::BudgetedStreaming) {
      valid += " (streaming)";
    }
  }
  throw std::invalid_argument("unknown execution strategy '" +
                              std::string(name) + "' (valid: " + valid + ")");
}

std::uint64_t problem_fingerprint(const pauli::PackedView& view,
                                  std::size_t num_qubits,
                                  const core::PicassoParams& params) {
  std::uint64_t h = util::kFnvOffsetBasis;
  // Geometry first, then the raw symplectic planes — the canonical record
  // bytes shared by PauliSet::packed_view() and PackedPauliSet::view().
  h = util::fnv1a_u64(h, static_cast<std::uint64_t>(num_qubits));
  h = util::fnv1a_u64(h, static_cast<std::uint64_t>(view.size));
  const std::size_t total_words = view.size * view.record_words();
  for (std::size_t i = 0; i < total_words; ++i) {
    h = util::fnv1a_u64(h, view.data[i]);
  }
  // Only the params that can change the coloring (see the header contract).
  h = util::fnv1a_f64(h, params.palette_percent);
  h = util::fnv1a_f64(h, params.alpha);
  h = util::fnv1a_u64(h, params.seed);
  h = util::fnv1a_u64(h, static_cast<std::uint64_t>(params.max_iterations));
  h = util::fnv1a_u64(
      h, static_cast<std::uint64_t>(params.conflict_scheme));
  return h;
}

std::uint64_t problem_fingerprint(const pauli::PauliSet& set,
                                  const core::PicassoParams& params) {
  return problem_fingerprint(set.packed_view(), set.num_qubits(), params);
}

std::string SolveTelemetry::to_json() const {
  std::string out = "{\"level\":\"";
  out += obs::to_string(level);
  out += "\",\"counters\":";
  out += counters.to_json();
  out += ",\"memory\":";
  out += memory.to_json();
  char tail[64];
  std::snprintf(tail, sizeof(tail), ",\"spans\":%zu,\"dropped_spans\":%llu}",
                spans.size(),
                static_cast<unsigned long long>(dropped_spans));
  out += tail;
  return out;
}

std::string SolvePlan::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "strategy=%s backend=%s budget=%zu chunk_strings=%zu "
                "devices=%" PRIu32 " (%s)",
                to_string(strategy), core::to_string(backend),
                memory_budget_bytes, chunk_strings, num_devices,
                reason.c_str());
  return buf;
}

Session SessionBuilder::build() const {
  const core::PicassoParams& p = session_.params_;
  if (!(p.palette_percent > 0.0) || p.palette_percent > 100.0) {
    throw ApiError(ErrorCode::InvalidArgument, "palette_percent",
                   "must be in (0, 100], got " +
                       std::to_string(p.palette_percent));
  }
  if (!(p.alpha > 0.0)) {
    throw ApiError(ErrorCode::InvalidArgument, "alpha",
                   "must be > 0, got " + std::to_string(p.alpha));
  }
  if (p.max_iterations < 1) {
    throw ApiError(ErrorCode::InvalidArgument, "max_iterations",
                   "must be >= 1, got " + std::to_string(p.max_iterations));
  }
  if (session_.num_devices_ > 0 && session_.device_capacity_bytes_ == 0) {
    throw ApiError(ErrorCode::InvalidArgument, "devices",
                   "device capacity must be > 0 bytes");
  }
  if (session_.num_devices_ > 0 && p.device != nullptr) {
    throw ApiError(ErrorCode::InvalidConfiguration, "devices",
                   "single simulated device (.device()) and multi-device "
                   "sharding (.devices()) are mutually exclusive");
  }
  if (session_.strategy_ == ExecutionStrategy::MultiDevice &&
      session_.num_devices_ == 0) {
    throw ApiError(ErrorCode::InvalidConfiguration, "strategy",
                   "MultiDevice strategy requires .devices(count, capacity)");
  }
  if (session_.strategy_ == ExecutionStrategy::BudgetedStreaming &&
      p.memory_budget_bytes == 0 && session_.streaming_.chunk_strings == 0) {
    throw ApiError(ErrorCode::InvalidConfiguration, "strategy",
                   "BudgetedStreaming requires .memory_budget(bytes) or "
                   "streaming chunk_strings");
  }
  if ((session_.strategy_ == ExecutionStrategy::Fused ||
       session_.strategy_ == ExecutionStrategy::Sketch) &&
      (p.device != nullptr || session_.num_devices_ > 0)) {
    throw ApiError(ErrorCode::InvalidConfiguration, "strategy",
                   std::string("the ") + to_string(session_.strategy_) +
                       " strategy colors straight off the oracle and does "
                       "not run the simulated-device pipelines; drop "
                       ".device()/.devices() or pick another strategy");
  }
  return session_;
}

SolvePlan Session::plan(const Problem& problem) const {
  SolvePlan plan;
  plan.backend = core::resolve_backend(params_.pauli_backend);
  plan.memory_budget_bytes = params_.memory_budget_bytes;
  plan.num_devices = num_devices_;

  const ProblemKind kind = problem.kind();
  const std::size_t n = problem.num_vertices();
  const std::size_t per_string =
      n > 0 ? problem.logical_bytes() / n : problem.logical_bytes();

  ExecutionStrategy strategy = strategy_;
  if (strategy == ExecutionStrategy::Auto) {
    if (kind == ProblemKind::SpillFile || kind == ProblemKind::SpillReader) {
      strategy = ExecutionStrategy::BudgetedStreaming;
      plan.reason = "problem is spill-backed";
      // Same escalation as the Pauli spill gate below: honor the cap with
      // the fused streaming engine when the projected CSR would not fit.
      if (params_.memory_budget_bytes > 0 && n > 0 &&
          core::projected_conflict_csr_bytes(static_cast<std::uint32_t>(n),
                                             params_.palette_percent,
                                             params_.alpha) >
              params_.memory_budget_bytes) {
        strategy = ExecutionStrategy::Fused;
        plan.reason =
            "spill-backed input + projected conflict CSR exceeds the memory "
            "budget";
      }
    } else if (kind == ProblemKind::EdgeStream) {
      strategy = ExecutionStrategy::SemiStreaming;
      plan.reason = "problem is an edge stream";
    } else if (num_devices_ > 0) {
      strategy = ExecutionStrategy::MultiDevice;
      plan.reason = "device list configured";
    } else if (kind == ProblemKind::Pauli && n > 0 &&
               (streaming_.chunk_strings > 0 ||
                (params_.memory_budget_bytes > 0 &&
                 2 * problem.logical_bytes() > params_.memory_budget_bytes))) {
      // Mirrors the budgeted engine's own gate: stream when holding the
      // whole encoded input would eat more than half the budget.
      strategy = ExecutionStrategy::BudgetedStreaming;
      plan.reason = streaming_.chunk_strings > 0
                        ? "explicit chunk size forces streaming"
                        : "encoded input exceeds half the memory budget";
      // Escalate to the fused streaming engine when even the projected
      // conflict-CSR assembly would blow the budget: the materialized
      // chunk-pair engine would honor the spill but not the cap. When the
      // CSR fits, the materialized engine keeps its I/O-optimal ordered
      // chunk-pair scans (fused strikes load chunks on demand).
      if (params_.memory_budget_bytes > 0 &&
          core::projected_conflict_csr_bytes(static_cast<std::uint32_t>(n),
                                             params_.palette_percent,
                                             params_.alpha) >
              params_.memory_budget_bytes) {
        strategy = ExecutionStrategy::Fused;
        plan.reason =
            "spilled input + projected conflict CSR exceeds the memory budget";
      }
    } else if (oracle_capable(kind) && params_.device == nullptr && n > 0 &&
               params_.memory_budget_bytes > 0 &&
               core::projected_conflict_csr_bytes(
                   static_cast<std::uint32_t>(n), params_.palette_percent,
                   params_.alpha) > params_.memory_budget_bytes) {
      // The input fits, but materialising the conflict CSR would not: color
      // edge-free off the palette buckets instead of building it.
      strategy = ExecutionStrategy::Fused;
      plan.reason = "projected conflict CSR exceeds the memory budget";
    } else {
      strategy = ExecutionStrategy::InMemory;
      plan.reason = "input fits the configuration in memory";
    }
  } else {
    plan.reason = "strategy forced by configuration";
  }

  // Forced-strategy compatibility checks.
  switch (strategy) {
    case ExecutionStrategy::InMemory:
      if (!oracle_capable(kind)) {
        throw ApiError(ErrorCode::IncompatibleStrategy, "strategy",
                       std::string("InMemory cannot run a ") +
                           to_string(kind) + " problem");
      }
      break;
    case ExecutionStrategy::BudgetedStreaming:
      if (kind != ProblemKind::Pauli && kind != ProblemKind::SpillFile &&
          kind != ProblemKind::SpillReader) {
        throw ApiError(ErrorCode::IncompatibleStrategy, "strategy",
                       std::string("BudgetedStreaming needs a Pauli or "
                                   "spill-backed problem, got ") +
                           to_string(kind));
      }
      break;
    case ExecutionStrategy::SemiStreaming:
      if (kind != ProblemKind::EdgeStream) {
        throw ApiError(ErrorCode::IncompatibleStrategy, "strategy",
                       std::string("SemiStreaming needs an edge-stream "
                                   "problem, got ") +
                           to_string(kind));
      }
      break;
    case ExecutionStrategy::MultiDevice:
      if (!oracle_capable(kind)) {
        throw ApiError(ErrorCode::IncompatibleStrategy, "strategy",
                       std::string("MultiDevice cannot shard a ") +
                           to_string(kind) + " problem");
      }
      break;
    case ExecutionStrategy::Fused:
      if (!oracle_capable(kind) && kind != ProblemKind::SpillFile &&
          kind != ProblemKind::SpillReader) {
        throw ApiError(ErrorCode::IncompatibleStrategy, "strategy",
                       std::string("Fused needs an oracle-capable or "
                                   "spill-backed problem, got ") +
                           to_string(kind));
      }
      break;
    case ExecutionStrategy::Sketch:
      // The probabilistic tier needs resident input: a Pauli kind (support
      // blooms fold off the packed planes) or an explicit graph (edge set
      // hashed into a Bloom filter). Never picked by Auto — the sketch is
      // an explicit opt-in.
      if (kind != ProblemKind::Pauli && kind != ProblemKind::PackedPauli &&
          kind != ProblemKind::Csr && kind != ProblemKind::Dense) {
        throw ApiError(ErrorCode::IncompatibleStrategy, "strategy",
                       std::string("Sketch needs a Pauli, PackedPauli, Csr "
                                   "or Dense problem, got ") +
                           to_string(kind));
      }
      break;
    case ExecutionStrategy::Auto:
      break;  // resolved above
  }

  plan.strategy = strategy;
  if (strategy == ExecutionStrategy::BudgetedStreaming) {
    if (kind == ProblemKind::SpillReader) {
      plan.chunk_strings = problem.reader().strings_per_chunk();
    } else {
      plan.chunk_strings =
          planned_chunk_strings(streaming_.chunk_strings,
                                params_.memory_budget_bytes, per_string, n);
    }
  } else if (strategy == ExecutionStrategy::Fused) {
    // A fused solve streams only when spill-backed input or the budgeted
    // engine's own gate forces it; chunk_strings == 0 means the in-memory
    // fused engine runs. Mirrors solve_pauli_budgeted_fused so plan ==
    // execution.
    if (kind == ProblemKind::SpillReader) {
      plan.chunk_strings = problem.reader().strings_per_chunk();
    } else if (kind == ProblemKind::SpillFile ||
               (kind == ProblemKind::Pauli &&
                (streaming_.chunk_strings > 0 ||
                 (params_.memory_budget_bytes > 0 &&
                  2 * problem.logical_bytes() >
                      params_.memory_budget_bytes)))) {
      plan.chunk_strings =
          planned_chunk_strings(streaming_.chunk_strings,
                                params_.memory_budget_bytes, per_string, n);
    }
  }
  if (strategy != ExecutionStrategy::MultiDevice) plan.num_devices = 0;
  return plan;
}

SolveReport Session::solve(const Problem& problem,
                           const SolveOptions& options) const {
  SolveReport report;
  report.plan = plan(problem);
  if (problem.kind() == ProblemKind::Pauli) {
    report.problem_hash = problem_fingerprint(problem.pauli_set(), params_);
  } else if (problem.kind() == ProblemKind::PackedPauli) {
    report.problem_hash =
        problem_fingerprint(problem.packed_set().view(),
                            problem.packed_set().num_qubits(), params_);
  }

  core::PicassoParams params = params_;
  // Stop tokens compose (a stop from either the session-level token or the
  // per-call one cancels); the progress callback overrides.
  if (options.stop.stop_possible()) {
    params.stop = core::StopToken::any_of(params.stop, options.stop);
  }
  if (options.progress) params.progress = options.progress;

  // Telemetry scope around the whole dispatch: the run scope zeroes the
  // global counter registry and enables it per the session's level; a
  // local recorder collects phase spans at Full (engines test one pointer
  // per scope when it is absent, so Off/Counters pay nothing for tracing).
  obs::MetricsRunScope metrics_scope(telemetry_ != obs::TelemetryLevel::Off);
  obs::TraceRecorder recorder;
  if (telemetry_ == obs::TelemetryLevel::Full) params.trace = &recorder;

  switch (report.plan.strategy) {
    case ExecutionStrategy::InMemory: {
      switch (problem.kind()) {
        case ProblemKind::Pauli:
          report.result = core::solve_pauli(problem.pauli_set(), params);
          break;
        case ProblemKind::PackedPauli: {
          const pauli::PackedPauliSet& set = problem.packed_set();
          util::ScopedCharge input_charge(util::MemSubsystem::PauliInput,
                                          set.logical_bytes());
          const graph::PackedComplementOracle oracle(
              set.view(), simd_for(params.pauli_backend));
          report.result = core::solve_oracle(oracle, params);
          break;
        }
        case ProblemKind::Csr: {
          const graph::CsrOracle oracle(problem.csr_graph());
          report.result = core::solve_oracle(oracle, params);
          break;
        }
        case ProblemKind::Dense: {
          const graph::DenseOracle oracle(problem.dense_graph());
          report.result = core::solve_oracle(oracle, params);
          break;
        }
        default:
          report.result = core::solve_oracle(problem.oracle_ref(), params);
          break;
      }
      break;
    }
    case ExecutionStrategy::BudgetedStreaming: {
      if (problem.kind() == ProblemKind::Pauli) {
        // Hand the engine the planned chunking so a forced streaming
        // strategy streams even when the Auto heuristic would not.
        core::StreamingOptions options_with_chunk = streaming_;
        options_with_chunk.chunk_strings = report.plan.chunk_strings;
        report.result = core::solve_pauli_budgeted(problem.pauli_set(),
                                                   params, options_with_chunk);
      } else if (problem.kind() == ProblemKind::SpillReader) {
        report.result = core::solve_pauli_chunked(problem.reader(), params);
      } else {
        const pauli::ChunkedPauliReader reader(problem.path(),
                                               report.plan.chunk_strings);
        report.result = core::solve_pauli_chunked(reader, params);
      }
      break;
    }
    case ExecutionStrategy::SemiStreaming:
      report.result = core::solve_stream(problem.num_vertices(),
                                         problem.edge_source(), params);
      break;
    case ExecutionStrategy::Fused: {
      switch (problem.kind()) {
        case ProblemKind::Pauli: {
          // The budgeted-fused wrapper re-evaluates the planned chunking and
          // falls back to the in-memory fused engine when nothing forces a
          // spill (plan.chunk_strings == 0).
          core::StreamingOptions options_with_chunk = streaming_;
          options_with_chunk.chunk_strings = report.plan.chunk_strings;
          report.result = core::solve_pauli_budgeted_fused(
              problem.pauli_set(), params, options_with_chunk);
          break;
        }
        case ProblemKind::SpillReader:
          report.result =
              core::solve_pauli_chunked_fused(problem.reader(), params);
          break;
        case ProblemKind::SpillFile: {
          const pauli::ChunkedPauliReader reader(problem.path(),
                                                 report.plan.chunk_strings);
          report.result = core::solve_pauli_chunked_fused(reader, params);
          break;
        }
        case ProblemKind::PackedPauli: {
          const pauli::PackedPauliSet& set = problem.packed_set();
          util::ScopedCharge input_charge(util::MemSubsystem::PauliInput,
                                          set.logical_bytes());
          const graph::PackedComplementOracle oracle(
              set.view(), simd_for(params.pauli_backend));
          report.result = core::solve_fused(oracle, params);
          break;
        }
        case ProblemKind::Csr: {
          const graph::CsrOracle oracle(problem.csr_graph());
          report.result = core::solve_fused(oracle, params);
          break;
        }
        case ProblemKind::Dense: {
          const graph::DenseOracle oracle(problem.dense_graph());
          report.result = core::solve_fused(oracle, params);
          break;
        }
        default:
          report.result = core::solve_fused(problem.oracle_ref(), params);
          break;
      }
      break;
    }
    case ExecutionStrategy::Sketch: {
      SketchInfo info;
      info.used = true;
      switch (problem.kind()) {
        case ProblemKind::Pauli: {
          // Sketch-prefiltered fused solve: support blooms dismiss
          // provably-commuting candidate batches before the exact packed
          // merge; the coloring is bit-identical to the Fused sibling.
          params.sketch_prefilter = true;
          report.result = core::solve_pauli_fused(problem.pauli_set(), params);
          break;
        }
        case ProblemKind::PackedPauli: {
          params.sketch_prefilter = true;
          const pauli::PackedPauliSet& set = problem.packed_set();
          util::ScopedCharge input_charge(util::MemSubsystem::PauliInput,
                                          set.logical_bytes());
          const graph::PackedComplementOracle oracle(
              set.view(), simd_for(params.pauli_backend));
          report.result = core::solve_fused(oracle, params);
          break;
        }
        case ProblemKind::Csr: {
          const graph::CsrGraph& g = problem.csr_graph();
          const graph::CsrOracle exact(g);
          const auto hashed = core::build_hashed_oracle(
              g, exact, core::hashed_sketch_bits(g.num_edges(), params),
              params.seed);
          // The hashed oracle's query counters are plain (non-atomic):
          // keep every edge query on the scheme body's thread.
          params.runtime.serial_cutoff = 0xffffffffu;
          util::ScopedCharge sketch_charge(util::MemSubsystem::SketchSigs,
                                           hashed.bloom_bytes());
          report.result = core::solve_fused(hashed, params);
          info.hashed = true;
          info.probes = hashed.stats().probes;
          info.claimed = hashed.stats().claimed;
          info.false_conflicts = hashed.stats().false_conflicts;
          info.false_conflict_rate = hashed.stats().false_conflict_rate();
          info.sketch_bytes = hashed.bloom_bytes();
          break;
        }
        case ProblemKind::Dense: {
          const graph::DenseOracle exact(problem.dense_graph());
          const auto hashed = core::build_hashed_oracle(
              exact,
              core::hashed_sketch_bits(problem.dense_graph().num_edges(),
                                       params),
              params.seed);
          params.runtime.serial_cutoff = 0xffffffffu;
          util::ScopedCharge sketch_charge(util::MemSubsystem::SketchSigs,
                                           hashed.bloom_bytes());
          report.result = core::solve_fused(hashed, params);
          info.hashed = true;
          info.probes = hashed.stats().probes;
          info.claimed = hashed.stats().claimed;
          info.false_conflicts = hashed.stats().false_conflicts;
          info.false_conflict_rate = hashed.stats().false_conflict_rate();
          info.sketch_bytes = hashed.bloom_bytes();
          break;
        }
        default:
          break;  // unreachable: plan() rejects other kinds
      }
      report.sketch = info;
      break;
    }
    case ExecutionStrategy::MultiDevice: {
      core::MultiDeviceConfig config;
      config.num_devices = num_devices_;
      config.device_capacity_bytes = device_capacity_bytes_;
      core::MultiDeviceResult md;
      switch (problem.kind()) {
        case ProblemKind::Pauli: {
          const pauli::PauliSet& set = problem.pauli_set();
          switch (core::resolve_backend(params.pauli_backend)) {
            case core::PauliBackend::Scalar: {
              const graph::ComplementOracle oracle(set);
              md = core::solve_multi_device(oracle, params, config);
              break;
            }
            default: {
              const graph::PackedComplementOracle oracle(
                  set.packed_view(), simd_for(params.pauli_backend));
              md = core::solve_multi_device(oracle, params, config);
              break;
            }
          }
          break;
        }
        case ProblemKind::PackedPauli: {
          const graph::PackedComplementOracle oracle(
              problem.packed_set().view(), simd_for(params.pauli_backend));
          md = core::solve_multi_device(oracle, params, config);
          break;
        }
        case ProblemKind::Csr: {
          const graph::CsrOracle oracle(problem.csr_graph());
          md = core::solve_multi_device(oracle, params, config);
          break;
        }
        case ProblemKind::Dense: {
          const graph::DenseOracle oracle(problem.dense_graph());
          md = core::solve_multi_device(oracle, params, config);
          break;
        }
        default:
          md = core::solve_multi_device(problem.oracle_ref(), params, config);
          break;
      }
      report.result = std::move(md.coloring);
      report.devices = std::move(md.devices);
      break;
    }
    case ExecutionStrategy::Auto:
      break;  // unreachable: plan() always resolves Auto
  }

  if (telemetry_ != obs::TelemetryLevel::Off) {
    report.telemetry.level = telemetry_;
    // The engines' pools have joined by now, so the per-thread shards are
    // quiescent and the totals are exact.
    report.telemetry.counters = obs::global_metrics().totals();
    report.telemetry.spans = recorder.take_spans();
    report.telemetry.dropped_spans = recorder.dropped();
    report.telemetry.memory = report.result.memory;
  }
  return report;
}

SolveReport Session::solve_incremental(const Problem& problem,
                                       const SolveOptions& options) {
  const ProblemKind kind = problem.kind();
  const bool graph_backed = kind == ProblemKind::Csr ||
                            kind == ProblemKind::Dense ||
                            kind == ProblemKind::Oracle;
  if (kind != ProblemKind::Pauli && !graph_backed) {
    throw ApiError(ErrorCode::IncompatibleStrategy, "problem",
                   std::string("solve_incremental needs an encoded Pauli or "
                               "explicit-graph problem, got ") +
                       to_string(kind));
  }

  core::PicassoParams params = params_;
  if (options.stop.stop_possible()) {
    params.stop = core::StopToken::any_of(params.stop, options.stop);
  }
  if (options.progress) params.progress = options.progress;

  SolveReport report;
  obs::MetricsRunScope metrics_scope(telemetry_ != obs::TelemetryLevel::Off);
  obs::TraceRecorder recorder;
  if (telemetry_ == obs::TelemetryLevel::Full) params.trace = &recorder;

  // The state is installed only after the solve and the adoption both
  // succeed, so a cancelled baseline leaves any previous state untouched.
  std::shared_ptr<core::FusedState> state;
  if (kind == ProblemKind::Pauli) {
    const pauli::PauliSet& set = problem.pauli_set();
    state = make_incremental_state(params_, update_params_, streaming_,
                                   set.num_qubits());
    if (state->spilled()) {
      // Honor the budget during the baseline too: the budgeted-fused
      // wrapper spills and strikes off chunked records, bit-identical to
      // the in-memory fused engine.
      core::StreamingOptions stream_opts = streaming_;
      stream_opts.chunk_strings = state->chunk_strings();
      report.result =
          core::solve_pauli_budgeted_fused(set, params, stream_opts);
    } else {
      report.result = core::solve_pauli_fused(set, params);
    }
    state->adopt_pauli_solution(set, report.result);
  } else {
    // Graph-backed baseline: fused solve over the explicit graph, then
    // adopt the coloring. Later update() calls take GraphVertexDelta
    // increments (greedy insertion; see core::FusedState).
    switch (kind) {
      case ProblemKind::Csr: {
        const graph::CsrOracle oracle(problem.csr_graph());
        report.result = core::solve_fused(oracle, params);
        break;
      }
      case ProblemKind::Dense: {
        const graph::DenseOracle oracle(problem.dense_graph());
        report.result = core::solve_fused(oracle, params);
        break;
      }
      default:
        report.result = core::solve_fused(problem.oracle_ref(), params);
        break;
    }
    state = std::make_shared<core::FusedState>(params_, update_params_);
    state->adopt_graph_solution(report.result.colors);
  }
  state_ = std::move(state);

  report.plan.strategy = ExecutionStrategy::Fused;
  report.plan.backend = core::resolve_backend(params_.pauli_backend);
  report.plan.memory_budget_bytes = params_.memory_budget_bytes;
  report.plan.chunk_strings = state_->chunk_strings();
  report.plan.reason = "incremental baseline: fused solve, state kept resident";

  if (telemetry_ != obs::TelemetryLevel::Off) {
    report.telemetry.level = telemetry_;
    report.telemetry.counters = obs::global_metrics().totals();
    report.telemetry.spans = recorder.take_spans();
    report.telemetry.dropped_spans = recorder.dropped();
    report.telemetry.memory = report.result.memory;
  }
  return report;
}

SolveReport Session::update(const UpdateDelta& delta,
                            const SolveOptions& options) {
  core::StopToken stop = params_.stop;
  if (options.stop.stop_possible()) {
    stop = core::StopToken::any_of(stop, options.stop);
  }
  const core::ProgressFn& progress =
      options.progress ? options.progress : params_.progress;

  SolveReport report;
  obs::MetricsRunScope metrics_scope(telemetry_ != obs::TelemetryLevel::Off);

  if (!state_) {
    if (!delta.is_pauli()) {
      throw ApiError(ErrorCode::InvalidConfiguration, "delta",
                     "graph deltas need a resident graph state; only Pauli "
                     "deltas bootstrap an empty session — call "
                     "solve_incremental first");
    }
    state_ = make_incremental_state(params_, update_params_, streaming_,
                                    delta.pauli_records().num_qubits());
  }

  core::UpdateStats stats;
  try {
    stats = delta.is_pauli()
                ? state_->update_pauli(delta.pauli_records(), stop, progress)
                : state_->update_graph(delta.graph_vertices(), stop, progress);
  } catch (const std::invalid_argument& error) {
    // Shape errors (qubit-count mismatch, delta kind vs state kind, bad
    // conflict ids) surface as structured ApiErrors; SolveCancelled
    // propagates as-is — the state stays consistent and the next update
    // colors the ingested backlog.
    throw ApiError(ErrorCode::InvalidArgument, "delta", error.what());
  }

  report.update = stats;
  report.plan.strategy = ExecutionStrategy::Fused;
  report.plan.backend = core::resolve_backend(params_.pauli_backend);
  report.plan.memory_budget_bytes = params_.memory_budget_bytes;
  report.plan.chunk_strings = state_->chunk_strings();
  report.plan.reason = "incremental update over the resident fused state";

  report.result.colors = state_->colors();
  report.result.num_colors = stats.num_colors;
  report.result.palette_total = state_->total_colors();
  report.result.total_seconds = stats.seconds;
  report.result.memory =
      core::MemoryReport::capture(util::global_memory().snapshot());
  report.result.memory.streamed = state_->spilled();
  report.result.memory.spill_bytes = state_->spill_bytes();

  if (telemetry_ != obs::TelemetryLevel::Off) {
    report.telemetry.level = telemetry_;
    report.telemetry.counters = obs::global_metrics().totals();
    report.telemetry.memory = report.result.memory;
  }
  return report;
}

AsyncSolve Session::solve_async(Problem problem, SolveOptions options) const {
  core::StopSource stop;
  // The worker observes both the handle's source and any caller-supplied
  // token, so either can cancel the run.
  options.stop = core::StopToken::any_of(options.stop, stop.token());
  Session session = *this;  // the worker owns its own copy
  std::future<SolveReport> future = std::async(
      std::launch::async,
      [session, problem = std::move(problem), options]() mutable {
        return session.solve(problem, options);
      });
  return AsyncSolve(std::move(stop), std::move(future));
}

}  // namespace picasso::api
