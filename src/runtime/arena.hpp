#pragma once
// Thread-local scratch arenas for parallel kernels.
//
// Hot parallel loops need per-task scratch (forbidden-color marks in
// Jones-Plassmann, per-chunk degree counters in the conflict build). Heap
// allocation inside a chunk serialises on the allocator lock and fragments;
// instead every thread owns a bump arena whose blocks are reused across
// chunks and algorithms. Arena::Scope gives cheap stack-discipline rewind:
// a chunk takes a scope, allocates what it needs, and the memory is handed
// back (not freed) when the chunk ends.
//
// The arenas plug into the existing util::memory accounting: each arena
// tracks its reserved-byte high-water mark (block-granular — an arena
// reserves at least kMinBlockBytes once touched), and
// absorb_thread_arena_peaks() folds the total across all live threads into
// a MemoryTracker for callers that keep one. Algorithms that report a flat
// aux-bytes estimate instead (e.g. Jones-Plassmann) charge their scratch at
// the same block granularity so parallel scratch is not invisible to the
// paper's memory story.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "util/memory.hpp"

namespace picasso::runtime {

class Arena {
 public:
  Arena();
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates storage for `count` T slots, 64-byte aligned (one cache
  /// line, so adjacent chunk scratch never false-shares). Contents are
  /// uninitialised.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(alignof(T) <= kAlign);
    void* p = alloc_bytes(count * sizeof(T));
    return {static_cast<T*>(p), count};
  }

  /// Bump-allocates `count` zero-initialised T slots.
  template <typename T>
  std::span<T> alloc_zeroed(std::size_t count) {
    auto s = alloc<T>(count);
    std::fill(s.begin(), s.end(), T{});
    return s;
  }

  /// Rewinds to empty, keeping the single largest block for reuse.
  void reset() noexcept;

  std::size_t used_bytes() const noexcept { return used_total_; }
  std::size_t reserved_bytes() const noexcept { return reserved_; }
  /// High-water mark of reserved bytes over the arena's lifetime. Safe to
  /// read from other threads (peak aggregation), hence atomic.
  std::size_t peak_bytes() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

  /// RAII rewind point: allocations made after construction are handed back
  /// on destruction (blocks grown in between stay reserved for reuse).
  class Scope {
   public:
    explicit Scope(Arena& arena) noexcept
        : arena_(arena),
          block_(arena.current_block_),
          block_used_(arena.block_used_),
          used_total_(arena.used_total_) {}
    ~Scope() { arena_.rewind(block_, block_used_, used_total_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena& arena_;
    std::size_t block_;
    std::size_t block_used_;
    std::size_t used_total_;
  };

 public:
  static constexpr std::size_t kAlign = 64;
  /// Smallest block an arena reserves once touched; scratch-size estimates
  /// should charge at least this much per participating thread.
  static constexpr std::size_t kMinBlockBytes = 1u << 16;

 private:

  struct AlignedDelete {
    void operator()(std::byte* p) const noexcept {
      ::operator delete[](p, std::align_val_t{kAlign});
    }
  };
  struct Block {
    std::unique_ptr<std::byte[], AlignedDelete> data;
    std::size_t capacity = 0;
  };

  void* alloc_bytes(std::size_t bytes);
  void rewind(std::size_t block, std::size_t block_used,
              std::size_t used_total) noexcept;
  void note_reserved(std::size_t delta) noexcept;

  std::vector<Block> blocks_;
  std::size_t current_block_ = 0;  // index into blocks_ (== size() when empty)
  std::size_t block_used_ = 0;     // bytes used in the current block
  std::size_t used_total_ = 0;
  std::size_t reserved_ = 0;
  std::atomic<std::size_t> peak_{0};
};

/// The calling thread's arena (workers and the main thread each get one,
/// created on first use and registered for peak aggregation).
Arena& this_thread_arena();

/// Sum of peak_bytes() across every thread arena currently alive.
std::size_t thread_arena_peak_total();

/// Folds the all-thread arena peak into `tracker` as a concurrent-peak upper
/// bound (allocate + release leaves the tracker's peak raised, its current
/// level untouched).
void absorb_thread_arena_peaks(util::MemoryTracker& tracker);

}  // namespace picasso::runtime
