#pragma once
// Knobs for the parallel execution runtime (src/runtime/).
//
// Every parallel entry point in the library threads one of these through to
// the thread pool. The contract that matters for reproducing the paper's
// tables: with `deterministic = true` (the default) results are bit-identical
// across any `num_threads`, including the serial `num_threads = 1` reference —
// chunk decompositions depend only on the input, per-chunk RNG streams are
// keyed by chunk index (never by executing thread), and chunk outputs are
// merged in chunk order.

#include <cstdint>

namespace picasso::runtime {

class ThreadPool;

struct RuntimeConfig {
  /// Worker threads. 0 = one per hardware thread; 1 = serial (no pool, all
  /// chunks run inline on the caller).
  std::uint32_t num_threads = 0;

  /// Items per chunk for parallel_for-style loops. 0 = auto (about four
  /// chunks per worker, so work stealing can rebalance skewed chunks).
  std::uint32_t chunk_size = 0;

  /// When true, parallel runs are bit-reproducible with the serial path.
  /// When false, the runtime may relax ordering that exists only for
  /// reproducibility (today: the sorted Jones-Plassmann frontier; the
  /// conflict-build merge stays chunk-ordered because its canonical CSR
  /// assembly makes that order free). Leave it on unless profiling says
  /// otherwise.
  bool deterministic = true;

  /// Inputs smaller than this many items run inline even when a pool is
  /// configured — below it, chunk bookkeeping costs more than it buys.
  std::uint32_t serial_cutoff = 2048;

  /// Externally-owned pool to run on instead of the per-count shared()
  /// cache. Non-owning: the caller keeps it alive for the solve. This is
  /// how a long-running server funnels every request through ONE pool
  /// (fair-share across tenants) rather than letting each solve grab the
  /// process cache. Ignored when `serial()` — num_threads = 1 stays the
  /// inline reference path that determinism tests compare against.
  ThreadPool* pool = nullptr;

  bool serial() const noexcept { return num_threads == 1; }
};

}  // namespace picasso::runtime
