#include "runtime/thread_pool.hpp"

#include <map>
#include <utility>

namespace picasso::runtime {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = hardware_threads();
  if (num_threads == 0) num_threads = 1;
  queues_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  num_workers_ = num_threads;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  drain();
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_all();
  }
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::uint64_t slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    wake_cv_.notify_one();
  }
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

namespace {
thread_local const ThreadPool* tls_worker_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const noexcept {
  return tls_worker_pool == this;
}

bool ThreadPool::try_pop_own(unsigned self, std::function<void()>& out) {
  WorkerQueue& q = *queues_[self];
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.front());
  q.tasks.pop_front();
  return true;
}

bool ThreadPool::try_steal(unsigned self, std::function<void()>& out) {
  const unsigned n = num_workers();
  for (unsigned step = 1; step < n; ++step) {
    WorkerQueue& victim = *queues_[(self + step) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.tasks.empty()) continue;
    out = std::move(victim.tasks.back());
    victim.tasks.pop_back();
    stolen_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(unsigned index) {
  tls_worker_pool = this;
  std::function<void()> task;
  while (true) {
    if (try_pop_own(index, task) || try_steal(index, task)) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      task();
      task = nullptr;
      executed_.fetch_add(1, std::memory_order_relaxed);
      if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(drain_mutex_);
        drain_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool& ThreadPool::shared(unsigned num_threads) {
  if (num_threads == 0) num_threads = hardware_threads();
  static std::mutex registry_mutex;
  static std::map<unsigned, std::unique_ptr<ThreadPool>>* registry =
      new std::map<unsigned, std::unique_ptr<ThreadPool>>();  // leaked: pools
  // must outlive static destructors of arbitrary client code.
  std::lock_guard<std::mutex> lock(registry_mutex);
  auto it = registry->find(num_threads);
  if (it == registry->end()) {
    it = registry->emplace(num_threads, std::make_unique<ThreadPool>(num_threads))
             .first;
  }
  return *it->second;
}

}  // namespace picasso::runtime
