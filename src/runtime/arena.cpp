#include "runtime/arena.hpp"

#include <mutex>

namespace picasso::runtime {

namespace {

/// Registry of live thread arenas, for cross-thread peak aggregation.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<const Arena*>& registry() {
  static std::vector<const Arena*>* r = new std::vector<const Arena*>();
  return *r;
}

void register_arena(const Arena* arena) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().push_back(arena);
}

void unregister_arena(const Arena* arena) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& r = registry();
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (r[i] == arena) {
      r[i] = r.back();
      r.pop_back();
      return;
    }
  }
}

}  // namespace

Arena::Arena() { register_arena(this); }

Arena::~Arena() { unregister_arena(this); }

void* Arena::alloc_bytes(std::size_t bytes) {
  bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
  if (bytes == 0) bytes = kAlign;
  // Advance through existing blocks first (they stay reserved across
  // reset()/Scope rewinds precisely so reuse is allocation-free).
  while (current_block_ < blocks_.size() &&
         block_used_ + bytes > blocks_[current_block_].capacity) {
    ++current_block_;
    block_used_ = 0;
  }
  if (current_block_ == blocks_.size()) {
    std::size_t capacity = std::max(bytes, kMinBlockBytes);
    if (!blocks_.empty()) {
      capacity = std::max(capacity, blocks_.back().capacity * 2);
    }
    Block block;
    // Aligned allocation: plain new[] only guarantees max_align_t, but
    // alloc<T>() promises kAlign (and the bump offsets are kAlign multiples,
    // so alignment of the base carries to every span).
    block.data.reset(static_cast<std::byte*>(
        ::operator new[](capacity, std::align_val_t{kAlign})));
    block.capacity = capacity;
    blocks_.push_back(std::move(block));
    block_used_ = 0;
    note_reserved(capacity);
  }
  std::byte* p = blocks_[current_block_].data.get() + block_used_;
  block_used_ += bytes;
  used_total_ += bytes;
  return p;
}

void Arena::rewind(std::size_t block, std::size_t block_used,
                   std::size_t used_total) noexcept {
  current_block_ = block;
  block_used_ = block_used;
  used_total_ = used_total;
}

void Arena::reset() noexcept {
  if (blocks_.size() > 1) {
    // Keep only the largest block; geometric growth makes that the last one.
    Block keep = std::move(blocks_.back());
    std::size_t freed = 0;
    for (std::size_t i = 0; i + 1 < blocks_.size(); ++i) {
      freed += blocks_[i].capacity;
    }
    blocks_.clear();
    blocks_.push_back(std::move(keep));
    reserved_ -= freed;
  }
  current_block_ = 0;
  block_used_ = 0;
  used_total_ = 0;
}

void Arena::note_reserved(std::size_t delta) noexcept {
  reserved_ += delta;
  if (reserved_ > peak_.load(std::memory_order_relaxed)) {
    peak_.store(reserved_, std::memory_order_relaxed);
  }
}

Arena& this_thread_arena() {
  thread_local Arena arena;
  return arena;
}

std::size_t thread_arena_peak_total() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::size_t total = 0;
  for (const Arena* a : registry()) total += a->peak_bytes();
  return total;
}

void absorb_thread_arena_peaks(util::MemoryTracker& tracker) {
  const std::size_t total = thread_arena_peak_total();
  tracker.allocate(total);
  tracker.release(total);
}

}  // namespace picasso::runtime
