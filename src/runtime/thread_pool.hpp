#pragma once
// Work-stealing thread pool — the execution engine behind every parallel
// phase in the library (conflict-graph build, Jones-Plassmann rounds, the
// multi-device shard merge).
//
// Design: one deque per worker. submit() feeds deques round-robin; a worker
// pops from the front of its own deque and, when empty, steals from the back
// of a victim's — classic Arora-Blumofe-Plasser shape, with mutexed deques
// rather than lock-free ones (chunk granularity in this library is hundreds
// of microseconds and up, so queue overhead is noise). Determinism is never
// the pool's job: callers make results schedule-independent by keying RNG
// streams and output slots by *chunk index* (see parallel_for.hpp), so it
// does not matter which worker runs which chunk.
//
// Pools are cached per worker count via ThreadPool::shared(); the hot paths
// resolve a pool from a RuntimeConfig with resolve_pool(), which returns
// nullptr for the serial path (all runtime primitives accept nullptr and run
// inline on the caller).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/runtime_config.hpp"

namespace picasso::runtime {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = one per hardware thread).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Reads num_workers_, not workers_.size(): workers start (and steal)
  // while the constructor is still appending to workers_, and sizing a
  // vector mid-growth is a data race.
  unsigned num_workers() const noexcept { return num_workers_; }

  /// Enqueues a task; runs on some worker, in no particular order.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void drain();

  /// True when the calling thread is one of this pool's workers. Used by
  /// the parallel primitives to run nested parallelism inline instead of
  /// deadlocking on a fully-occupied pool.
  bool on_worker_thread() const noexcept;

  std::uint64_t tasks_executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Tasks a worker took from another worker's deque (work-stealing proof).
  std::uint64_t tasks_stolen() const noexcept {
    return stolen_.load(std::memory_order_relaxed);
  }

  static unsigned hardware_threads() noexcept;

  /// Process-wide pool cache keyed by worker count (0 = hardware threads).
  /// Created on first use, lives for the process lifetime.
  static ThreadPool& shared(unsigned num_threads = 0);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  bool try_pop_own(unsigned self, std::function<void()>& out);
  bool try_steal(unsigned self, std::function<void()>& out);
  void worker_loop(unsigned index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  unsigned num_workers_ = 0;  // fixed before the first worker spawns
  std::atomic<std::uint64_t> next_queue_{0};
  std::atomic<std::uint64_t> queued_{0};    // submitted, not yet dequeued
  std::atomic<std::uint64_t> inflight_{0};  // submitted, not yet finished
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<bool> stop_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
};

/// Pool for a RuntimeConfig: nullptr when the config asks for the serial
/// path, an injected `config.pool` when one is set (server mode — every
/// solve shares the owner's pool), else the shared pool cache with the
/// configured worker count.
inline ThreadPool* resolve_pool(const RuntimeConfig& config) {
  if (config.serial()) return nullptr;
  if (config.pool) return config.pool;
  return &ThreadPool::shared(config.num_threads);
}

/// Joins a set of tasks submitted to a pool. Unlike ThreadPool::drain(),
/// groups are per-call-site, so concurrent callers do not wait on each
/// other's tasks. The first exception a task throws is captured and
/// rethrown from wait() on the calling thread (remaining tasks still run to
/// completion) — device-budget OOMs cross the pool boundary intact.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { wait_no_throw(); }
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  template <typename Fn>
  void run(Fn&& fn) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    pool_.submit([this, task = std::forward<Fn>(fn)]() mutable {
      try {
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      // The decrement happens under the mutex: once the waiter's predicate
      // observes zero it holds the same mutex, so this task can no longer
      // be between the decrement and the notify when the waiter returns
      // and destroys the group.
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        cv_.notify_all();
      }
    });
  }

  void wait() {
    wait_no_throw();
    std::lock_guard<std::mutex> lock(mutex_);
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void wait_no_throw() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }

  ThreadPool& pool_;
  std::atomic<std::uint64_t> pending_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::exception_ptr error_;
};

}  // namespace picasso::runtime
