#pragma once
// Data-parallel primitives over the work-stealing pool: chunked parallel_for,
// deterministic parallel_reduce, weight-balanced range splitting, and keyed
// per-chunk RNG streams.
//
// Determinism contract (the property the serial-vs-parallel equivalence
// tests assert): per-chunk outputs are indexed by chunk ordinal, reductions
// join in chunk order, and RNG streams are keyed by stable ids — so which
// thread runs a chunk is unobservable. Chunk *decomposition* does vary with
// worker count (auto sizing targets ~4 chunks per worker); algorithms stay
// bit-identical across thread counts by making per-chunk work a pure
// restriction of the serial loop (order-preserving concatenation gives back
// the serial output) and by keying any randomness per logical item, not per
// chunk. chunk_rng() keyed by chunk ordinal is reproducible across reruns
// and schedules of one decomposition; pin RuntimeConfig::chunk_size if you
// need it stable across worker counts too.
//
// All primitives accept a nullptr pool and then run every chunk inline on
// the caller, which *is* the serial reference path — there is no second
// implementation to drift from.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace picasso::runtime {

/// One contiguous chunk of an index range, plus its deterministic ordinal.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t index = 0;       // ordinal in [0, num_chunks)
  std::size_t num_chunks = 1;

  std::size_t size() const noexcept { return end - begin; }
};

/// Auto chunk size: about four chunks per worker, so stealing can rebalance
/// skew without drowning in per-chunk overhead.
inline std::size_t auto_chunk_size(std::size_t n, unsigned workers,
                                   std::size_t requested) noexcept {
  if (requested > 0) return requested;
  const std::size_t target = std::max<std::size_t>(1, std::size_t{workers} * 4);
  const std::size_t chunk = (n + target - 1) / target;
  return chunk == 0 ? 1 : chunk;
}

/// Splits [begin, end) into uniform chunks of `chunk_size` (0 = auto).
inline std::vector<ChunkRange> uniform_chunks(std::size_t begin,
                                              std::size_t end,
                                              std::size_t chunk_size,
                                              unsigned workers) {
  std::vector<ChunkRange> chunks;
  if (end <= begin) return chunks;
  const std::size_t n = end - begin;
  chunk_size = auto_chunk_size(n, workers, chunk_size);
  const std::size_t count = (n + chunk_size - 1) / chunk_size;
  chunks.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    chunks.push_back({lo, hi, c, count});
  }
  return chunks;
}

/// Splits [0, weights.size()) into at most `max_parts` contiguous ranges of
/// roughly equal total weight — the balancer for triangular pair loops and
/// skewed color buckets, where uniform index ranges would leave the first
/// chunks with most of the work. Deterministic; never returns empty ranges.
inline std::vector<ChunkRange> balanced_chunks(
    std::span<const std::uint64_t> weights, std::size_t max_parts) {
  std::vector<ChunkRange> chunks;
  const std::size_t n = weights.size();
  if (n == 0 || max_parts == 0) return chunks;
  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += w;
  const std::uint64_t target = std::max<std::uint64_t>(1, total / max_parts);
  std::size_t lo = 0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += weights[i];
    const bool last_slot = chunks.size() + 1 == max_parts;
    if (acc >= target && !last_slot) {
      chunks.push_back({lo, i + 1, chunks.size(), 0});
      lo = i + 1;
      acc = 0;
    }
  }
  if (lo < n) chunks.push_back({lo, n, chunks.size(), 0});
  for (auto& c : chunks) c.num_chunks = chunks.size();
  return chunks;
}

/// Runs `body(chunk)` for every range, on the pool when one is given (and we
/// are not already inside one of its workers — nested parallelism runs
/// inline instead of deadlocking), else serially in chunk order.
template <typename Body>
void run_chunks(ThreadPool* pool, std::span<const ChunkRange> chunks,
                Body&& body) {
  if (chunks.empty()) return;
  if (pool == nullptr || pool->num_workers() <= 1 || chunks.size() <= 1 ||
      pool->on_worker_thread()) {
    for (const ChunkRange& chunk : chunks) body(chunk);
    return;
  }
  TaskGroup group(*pool);
  for (const ChunkRange& chunk : chunks) {
    group.run([&body, chunk] { body(chunk); });
  }
  group.wait();
}

/// Chunked loop: `body(ChunkRange)` once per chunk.
template <typename Body>
void parallel_for_chunks(ThreadPool* pool, std::size_t begin, std::size_t end,
                         std::size_t chunk_size, Body&& body) {
  const unsigned workers = pool != nullptr ? pool->num_workers() : 1;
  const auto chunks = uniform_chunks(begin, end, chunk_size, workers);
  run_chunks(pool, chunks, std::forward<Body>(body));
}

/// Element-wise loop: `fn(i)` for every i in [begin, end). `fn` must be safe
/// to call concurrently for distinct i.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t chunk_size, Fn&& fn) {
  parallel_for_chunks(pool, begin, end, chunk_size,
                      [&fn](const ChunkRange& chunk) {
                        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
                          fn(i);
                        }
                      });
}

/// Map-reduce over chunks: `map(ChunkRange) -> T` runs in parallel, partial
/// results land in a slot indexed by chunk ordinal, and `join` folds them
/// left-to-right in chunk order — deterministic even for non-commutative or
/// floating-point joins.
template <typename T, typename Map, typename Join>
T parallel_reduce(ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t chunk_size, T init, Map&& map, Join&& join) {
  const unsigned workers = pool != nullptr ? pool->num_workers() : 1;
  const auto chunks = uniform_chunks(begin, end, chunk_size, workers);
  if (chunks.empty()) return init;
  std::vector<T> partial(chunks.size());
  run_chunks(pool, chunks, [&](const ChunkRange& chunk) {
    partial[chunk.index] = map(chunk);
  });
  T acc = std::move(init);
  for (T& p : partial) acc = join(std::move(acc), std::move(p));
  return acc;
}

/// Independent RNG stream for a (seed, stream) key. Key by a stable logical
/// id — a vertex, a device shard, or a pinned chunk ordinal — never by
/// thread id; that is what makes randomised parallel phases reproducible.
inline util::Xoshiro256 chunk_rng(std::uint64_t seed,
                                  std::uint64_t stream) noexcept {
  return util::keyed_rng(seed, 0xa0761d6478bd642fULL, stream);
}

}  // namespace picasso::runtime
