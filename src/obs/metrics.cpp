#include "obs/metrics.hpp"

#include <cstdio>

namespace picasso::obs {

const char* to_string(TelemetryLevel level) noexcept {
  switch (level) {
    case TelemetryLevel::Off: return "off";
    case TelemetryLevel::Counters: return "counters";
    case TelemetryLevel::Full: return "full";
  }
  return "?";
}

bool parse_telemetry_level(const std::string& text, TelemetryLevel& out) {
  if (text == "off") {
    out = TelemetryLevel::Off;
  } else if (text == "counters") {
    out = TelemetryLevel::Counters;
  } else if (text == "full") {
    out = TelemetryLevel::Full;
  } else {
    return false;
  }
  return true;
}

const char* to_string(Counter c) noexcept {
  switch (c) {
    case Counter::OraclePairEvals: return "oracle_pair_evals";
    case Counter::EdgeBlockCallsAvx2: return "edge_block_calls_avx2";
    case Counter::EdgeBlockCallsScalar: return "edge_block_calls_scalar";
    case Counter::BucketStrikeScans: return "bucket_strike_scans";
    case Counter::StrikeHits: return "strike_hits";
    case Counter::SignatureFastExits: return "signature_fast_exits";
    case Counter::RecolorEvents: return "recolor_events";
    case Counter::ChunkCacheHits: return "chunk_cache_hits";
    case Counter::ChunkCacheMisses: return "chunk_cache_misses";
    case Counter::ChunkCacheEvictions: return "chunk_cache_evictions";
    case Counter::ChunkReReads: return "chunk_re_reads";
    case Counter::SpillBytesWritten: return "spill_bytes_written";
    case Counter::SpillBytesRead: return "spill_bytes_read";
    case Counter::StreamEdgesScanned: return "stream_edges_scanned";
    case Counter::ShardEdgesRouted: return "shard_edges_routed";
    case Counter::UpdateVerticesInserted: return "update_vertices_inserted";
    case Counter::UpdateBucketProbes: return "update_bucket_probes";
    case Counter::UpdateRecolorMoves: return "update_recolor_moves";
    case Counter::UpdateEscalations: return "update_escalations";
    case Counter::UpdateFreshColors: return "update_fresh_colors";
    case Counter::SketchProbes: return "sketch_probes";
    case Counter::SketchHits: return "sketch_hits";
    case Counter::SketchFalsePositives: return "sketch_false_positives";
  }
  return "?";
}

bool counter_is_deterministic(Counter c) noexcept {
  // The AVX2/scalar split resolves from the host ISA (SimdLevel::Auto);
  // only the sum of the two is comparable across machines.
  return c != Counter::EdgeBlockCallsAvx2 && c != Counter::EdgeBlockCallsScalar;
}

std::string CounterTotals::to_json() const {
  std::string out = "{";
  char buf[96];
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", i == 0 ? "" : ",",
                  to_string(static_cast<Counter>(i)),
                  static_cast<unsigned long long>(value[i]));
    out += buf;
  }
  out += "}";
  return out;
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_thread() {
  // One registration lock per (thread, registry); afterwards the shard
  // pointer is served from this thread-local cache. Shards are heap
  // allocations owned by the registry, so the cached pointer stays valid
  // as shards_ grows. Registries are expected to be long-lived (the
  // global singleton): the cache keys on the registry address and would
  // mis-associate if a destroyed registry's address were reused.
  struct Cache {
    const MetricsRegistry* owner = nullptr;
    Shard* shard = nullptr;
  };
  thread_local Cache cache;
  if (cache.owner != this) {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    cache.owner = this;
    cache.shard = shards_.back().get();
  }
  return *cache.shard;
}

void MetricsRegistry::reset() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& shard : shards_) shard->value.fill(0);
}

CounterTotals MetricsRegistry::totals() const {
  CounterTotals out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      out.value[i] += shard->value[i];
    }
  }
  return out;
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace picasso::obs
