#include "obs/trace.hpp"

#include <cstdio>

namespace picasso::obs {

namespace {

// Span names are static identifiers ([a-z0-9_.:-]); escaping is still
// done defensively so a stray quote cannot corrupt the JSON.
void append_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    out += *p;
  }
}

}  // namespace

std::string TraceRecorder::chrome_trace_json(
    const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, span.name);
    // Complete events: ph "X" with microsecond ts/dur. One process/thread
    // — spans are recorded on the driver thread only.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"args\":{\"arg\":%llu}}",
                  span.start_seconds * 1e6, span.duration_seconds * 1e6,
                  static_cast<unsigned long long>(span.arg));
    out += buf;
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::json_lines(const std::vector<SpanRecord>& spans) {
  std::string out;
  char buf[160];
  for (const SpanRecord& span : spans) {
    out += "{\"name\":\"";
    append_escaped(out, span.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"arg\":%llu,\"start_s\":%.9f,\"dur_s\":%.9f,"
                  "\"depth\":%d}\n",
                  static_cast<unsigned long long>(span.arg),
                  span.start_seconds, span.duration_seconds, span.depth);
    out += buf;
  }
  return out;
}

}  // namespace picasso::obs
