#pragma once
// Deterministic work counters.
//
// Wall-clock on shared CI runners is too noisy to gate, so the observable
// that CI regresses on is *work*: oracle pair evaluations, kernel
// invocations, bucket scans, cache traffic, spill bytes. Every counter is
// incremented at a schedule-independent choke point (per row, per flush,
// per iteration — never per pool-slab), so totals are bit-identical across
// thread counts and across Counters/Full telemetry levels.
//
// The registry mirrors util::MemoryRegistry: a process-wide singleton with
// an outermost-run scope (MetricsRunScope), but the hot path is cheaper —
// each thread owns a cache-line-aligned shard of plain uint64s, and add()
// is one relaxed atomic load of the enabled flag, a branch, and a plain
// add. When telemetry is off the add() sites cost the load+branch only.
// totals() is valid when the registry is quiescent (no concurrent add()),
// which every caller guarantees: solves join their pool work before the
// driver harvests.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace picasso::obs {

/// How much telemetry a solve records. Off keeps every count site to a
/// relaxed load + untaken branch; Counters aggregates work counters;
/// Full additionally records phase/iteration spans (trace.hpp).
enum class TelemetryLevel : unsigned { Off, Counters, Full };

const char* to_string(TelemetryLevel level) noexcept;
/// Parses "off" / "counters" / "full" (case-sensitive). Returns false and
/// leaves `out` untouched on unknown names.
bool parse_telemetry_level(const std::string& text, TelemetryLevel& out);

/// The work counters. Keep to_string() and kNumCounters in sync when
/// extending; counter_is_deterministic() marks which ones the CI gate may
/// compare exactly.
enum class Counter : unsigned {
  OraclePairEvals,       // pairs handed to a conflict oracle (post sig/list filters)
  EdgeBlockCallsAvx2,    // logical edge_block batches dispatched to the AVX2 kernel
  EdgeBlockCallsScalar,  // logical edge_block batches dispatched to the scalar kernel
  BucketStrikeScans,     // fused engine: candidate-bucket scans issued
  StrikeHits,            // fused engine: conflict edges struck (pairs that tested true)
  SignatureFastExits,    // pairs rejected by the palette-signature AND test alone
  RecolorEvents,         // vertices left uncolored by an iteration (deferred to the next)
  ChunkCacheHits,        // chunk requests served from the resident cache
  ChunkCacheMisses,      // chunk requests that had to load from disk
  ChunkCacheEvictions,   // resident chunks dropped to admit another
  ChunkReReads,          // chunk loads beyond the first per chunk (budget-forced re-scans)
  SpillBytesWritten,     // bytes spilled to .pset files
  SpillBytesRead,        // bytes read back from spill files
  StreamEdgesScanned,    // semi-streaming: edges seen across all passes
  ShardEdgesRouted,      // multi-device: conflict edges routed through device shards
  UpdateVerticesInserted,  // incremental: delta vertices colored in place
  UpdateBucketProbes,      // incremental: color buckets probed during insertion
  UpdateRecolorMoves,      // incremental: blockers moved by bounded local recoloring
  UpdateEscalations,       // incremental: full prefix re-solves triggered
  UpdateFreshColors,       // incremental: colors first used by an inserted vertex
  SketchProbes,            // sketch tier: bloom-signature disjointness probes issued
  SketchHits,              // sketch tier: probes that dismissed the exact kernel outright
  SketchFalsePositives,    // sketch tier: undismissed probes the exact kernel then resolved all-conflict
};
inline constexpr std::size_t kNumCounters = 23;

const char* to_string(Counter c) noexcept;

/// False for counters whose value legitimately varies across machines
/// (the AVX2/scalar split depends on the host ISA); the CI gate compares
/// their *sum* instead. Everything else must be bit-stable.
bool counter_is_deterministic(Counter c) noexcept;

/// Aggregated counter values (a quiescent sum over all shards).
struct CounterTotals {
  std::array<std::uint64_t, kNumCounters> value{};

  std::uint64_t operator[](Counter c) const noexcept {
    return value[static_cast<unsigned>(c)];
  }
  bool all_zero() const noexcept {
    for (std::uint64_t v : value) {
      if (v != 0) return false;
    }
    return true;
  }
  /// `{"oracle_pair_evals":123,...}` — one key per counter, enum order.
  std::string to_json() const;
};

/// Per-thread sharded counter registry. Registration of a new thread's
/// shard takes a mutex once per (thread, registry); every subsequent add()
/// touches only the thread's own cache line. Intended to be long-lived
/// (see global_metrics()) — the thread-local shard cache keys on the
/// registry address.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `n` to counter `c` on the calling thread's shard; no-op (one
  /// relaxed load + branch) while disabled.
  void add(Counter c, std::uint64_t n) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    shard_for_thread().value[static_cast<unsigned>(c)] += n;
  }

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Zeroes every shard. Quiescent-only (run start, before workers count).
  void reset() noexcept;

  /// Sums all shards. Quiescent-only (after pool joins — the join gives
  /// the happens-before edge that makes the plain reads safe).
  CounterTotals totals() const;

  /// Run-scope nesting depth (see MetricsRunScope); kept on the registry
  /// so nested solves (multi-device shards) cannot clobber the outermost
  /// run's window.
  int enter_run() noexcept {
    return run_depth_.fetch_add(1, std::memory_order_relaxed);
  }
  void exit_run() noexcept {
    run_depth_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::array<std::uint64_t, kNumCounters> value{};
  };

  Shard& shard_for_thread();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> enabled_{false};
  std::atomic<int> run_depth_{0};
};

/// The process-wide registry every count() site charges.
MetricsRegistry& global_metrics();

/// Counts `n` events against the global registry (the form every engine
/// uses; the indirection keeps call sites one line).
inline void count(Counter c, std::uint64_t n = 1) { global_metrics().add(c, n); }

/// Guard for one solve: the outermost scope resets the registry and
/// enables/disables it per the requested level, restoring the previous
/// enabled state on exit; nested scopes (per-shard multi-device solves,
/// engines layered through Session) are no-ops so the outermost window
/// accumulates everything. Harvest totals() before the scope dies.
class MetricsRunScope {
 public:
  explicit MetricsRunScope(bool enable,
                           MetricsRegistry& registry = global_metrics()) noexcept
      : registry_(&registry), outermost_(registry.enter_run() == 0) {
    if (!outermost_) return;
    saved_enabled_ = registry_->enabled();
    registry_->reset();
    registry_->set_enabled(enable);
  }
  ~MetricsRunScope() {
    registry_->exit_run();
    if (outermost_) registry_->set_enabled(saved_enabled_);
  }
  MetricsRunScope(const MetricsRunScope&) = delete;
  MetricsRunScope& operator=(const MetricsRunScope&) = delete;

  bool outermost() const noexcept { return outermost_; }

 private:
  MetricsRegistry* registry_;
  bool outermost_;
  bool saved_enabled_ = false;
};

}  // namespace picasso::obs
