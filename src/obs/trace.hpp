#pragma once
// Phase-span tracing.
//
// A TraceRecorder captures the nested phase structure of one solve —
// encode → per-iteration {palette assignment → conflict detection →
// coloring} → refine, plus per-chunk-pair children in the streaming
// engines — as flat begin/end span records on the driver thread. The
// recorder replaces the ad hoc ScopedAccumulator sinks at phase
// boundaries: ScopedPhase keeps feeding the Fig.-3 seconds fields the
// benches report and *additionally* records a span when a recorder is
// attached (params.trace). Engines always run with a nullable recorder;
// a null recorder costs one pointer test per scope, which is why
// TelemetryLevel::Off and ::Counters have no tracing overhead.
//
// Spans export as Chrome trace JSON (open in chrome://tracing or
// https://ui.perfetto.dev) or as compact JSON-lines for scripting.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace picasso::obs {

/// One completed span. `name` points at a static string literal (the
/// recorder never owns or copies names); times are seconds relative to
/// the recorder's construction.
struct SpanRecord {
  const char* name = "";
  std::uint64_t arg = 0;  // span-specific payload (iteration index, pair id)
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  int depth = 0;  // nesting depth at begin() (0 = root)
};

/// Records nested spans on a single thread (the solve driver). begin()
/// returns a token that end() completes; ScopedSpan/ScopedPhase wrap the
/// pair. Spans past kMaxSpans are dropped (counted, never resized into).
class TraceRecorder {
 public:
  /// Hard cap on retained spans (~48 MB worst case); protects pathological
  /// per-chunk-pair traces from eating the heap.
  static constexpr std::size_t kMaxSpans = 1u << 20;

  struct Token {
    std::size_t index = kDroppedIndex;
  };

  Token begin(const char* name, std::uint64_t arg = 0) {
    Token token;
    if (spans_.size() < kMaxSpans) {
      token.index = spans_.size();
      spans_.push_back(
          {name, arg, epoch_.seconds(), 0.0, depth_});
    } else {
      ++dropped_;
    }
    ++depth_;
    return token;
  }

  void end(Token token) {
    --depth_;
    if (token.index == kDroppedIndex) return;
    SpanRecord& span = spans_[token.index];
    span.duration_seconds = epoch_.seconds() - span.start_seconds;
  }

  const std::vector<SpanRecord>& spans() const noexcept { return spans_; }
  std::vector<SpanRecord> take_spans() noexcept { return std::move(spans_); }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Chrome trace-event JSON (`{"traceEvents":[...]}`, complete "X"
  /// events, microsecond timestamps) — load in chrome://tracing/Perfetto.
  static std::string chrome_trace_json(const std::vector<SpanRecord>& spans);

  /// One JSON object per line per span (name/arg/start/dur/depth).
  static std::string json_lines(const std::vector<SpanRecord>& spans);

 private:
  static constexpr std::size_t kDroppedIndex = ~std::size_t{0};

  util::WallTimer epoch_;
  std::vector<SpanRecord> spans_;
  int depth_ = 0;
  std::uint64_t dropped_ = 0;
};

/// RAII span; a null recorder makes the whole scope a no-op.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, const char* name,
             std::uint64_t arg = 0)
      : recorder_(recorder) {
    if (recorder_ != nullptr) token_ = recorder_->begin(name, arg);
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->end(token_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  TraceRecorder::Token token_;
};

/// ScopedAccumulator with an optional span: always adds the elapsed
/// seconds to `sink` on scope exit (the per-phase seconds the paper's
/// Fig. 3 breaks down), and records a span of the same extent when a
/// recorder is attached. Drop-in replacement for util::ScopedAccumulator
/// at the drivers' phase boundaries.
class ScopedPhase {
 public:
  ScopedPhase(TraceRecorder* recorder, const char* name, double& sink,
              std::uint64_t arg = 0) noexcept
      : recorder_(recorder), sink_(&sink) {
    if (recorder_ != nullptr) token_ = recorder_->begin(name, arg);
  }
  ~ScopedPhase() {
    *sink_ += timer_.seconds();
    if (recorder_ != nullptr) recorder_->end(token_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  TraceRecorder* recorder_;
  double* sink_;
  TraceRecorder::Token token_;
  util::WallTimer timer_;
};

}  // namespace picasso::obs
