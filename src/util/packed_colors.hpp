#pragma once
// Sub-byte color storage: a 2/4/8-bit-per-entry array of color ids with a
// uint32 escape tier, the "probabilistic palette engine" storage layer of
// the ROADMAP. Colorings are dense small integers (a palette of P colors
// needs ceil(log2 P) bits, 4 for the common <=16-color VQE case), so
// storing them as full uint32 wastes 4-16x; this container packs entries
// at a width chosen from the palette bound and keeps a drop-in
// std::vector<uint32_t>-like interface so every engine that materializes a
// coloring (ListColoringResult::assigned, FusedState residents,
// PicassoResult::colors, .pset spill tails) adopts it without call-site
// churn.
//
// Encoding per entry of width w (w in {2, 4, 8}):
//   * all-ones code (mask)      -> kNoColor (the engines' 0xffffffff
//                                  sentinel);
//   * mask - 1                  -> escaped: the real value lives in a
//                                  sorted (index, value) side table;
//   * anything else             -> the value itself (so values up to
//                                  mask - 2 store inline).
// Width 32 is the plain uint32 tier (no reserved codes, no escapes).
// Writes that overflow the width escape; when escapes accumulate past a
// small threshold the array re-widens itself in one O(n) pass, so
// pathological inputs degrade to the flat representation instead of an
// unbounded side table.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <iterator>
#include <utility>
#include <vector>

namespace picasso::util {

class PackedColorArray {
 public:
  static constexpr std::uint32_t kNoColor = 0xffffffffu;

  PackedColorArray() = default;
  /// n entries of `value`, packed at the width implied by `bound` (the
  /// number of distinct colors expected; 0 = narrowest, auto-widen later).
  explicit PackedColorArray(std::size_t n, std::uint32_t value = kNoColor,
                            std::uint32_t bound = 0);
  PackedColorArray(const std::vector<std::uint32_t>& values);  // NOLINT
  PackedColorArray& operator=(const std::vector<std::uint32_t>& values);

  /// Narrowest width (bits/entry) that stores colors [0, bound) inline.
  static unsigned pick_width(std::uint32_t bound);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  unsigned width_bits() const noexcept { return width_; }
  std::size_t escape_count() const noexcept { return escapes_.size(); }

  void clear();
  /// Re-fill with n entries of `value`, keeping the current width unless
  /// `value` forces a wider one.
  void assign(std::size_t n, std::uint32_t value);
  /// Like assign, but first re-picks the width from `bound`.
  void reset(std::size_t n, std::uint32_t value, std::uint32_t bound);
  void resize(std::size_t n, std::uint32_t value = kNoColor);
  void push_back(std::uint32_t value);

  std::uint32_t get(std::size_t i) const {
    if (width_ == 32) return full_[i];
    const std::uint32_t mask = (1u << width_) - 1u;
    const std::uint32_t code = static_cast<std::uint32_t>(
        (words_[i * width_ / 64] >> (i * width_ % 64)) & mask);
    if (code == mask) return kNoColor;
    if (code == mask - 1u) return escaped_value(i);
    return code;
  }
  void set(std::size_t i, std::uint32_t value) {
    if (width_ == 32) {
      full_[i] = value;
      return;
    }
    const std::uint32_t mask = (1u << width_) - 1u;
    if (value < mask - 1u) {
      store_code(i, value, mask);
      return;
    }
    if (value == kNoColor) {
      store_code(i, mask, mask);
      return;
    }
    set_slow(i, value);
  }

  std::uint32_t operator[](std::size_t i) const { return get(i); }

  /// Write proxy so `arr[i] = c` keeps working on the packed storage.
  class Ref {
   public:
    Ref(PackedColorArray* a, std::size_t i) : a_(a), i_(i) {}
    operator std::uint32_t() const { return a_->get(i_); }  // NOLINT
    Ref& operator=(std::uint32_t value) {
      a_->set(i_, value);
      return *this;
    }
    Ref& operator=(const Ref& other) { return *this = std::uint32_t(other); }

   private:
    PackedColorArray* a_;
    std::size_t i_;
  };
  Ref operator[](std::size_t i) { return Ref(this, i); }

  /// Read-only random-access iterator (yields values, not references).
  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = std::uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::uint32_t*;
    using reference = std::uint32_t;

    const_iterator() : a_(nullptr), i_(0) {}
    const_iterator(const PackedColorArray* a, std::size_t i) : a_(a), i_(i) {}
    std::uint32_t operator*() const { return a_->get(i_); }
    std::uint32_t operator[](difference_type k) const {
      return a_->get(i_ + static_cast<std::size_t>(k));
    }
    const_iterator& operator++() { ++i_; return *this; }
    const_iterator operator++(int) { auto t = *this; ++i_; return t; }
    const_iterator& operator--() { --i_; return *this; }
    const_iterator operator--(int) { auto t = *this; --i_; return t; }
    const_iterator& operator+=(difference_type k) { i_ += k; return *this; }
    const_iterator& operator-=(difference_type k) { i_ -= k; return *this; }
    friend const_iterator operator+(const_iterator it, difference_type k) {
      return it += k;
    }
    friend const_iterator operator+(difference_type k, const_iterator it) {
      return it += k;
    }
    friend const_iterator operator-(const_iterator it, difference_type k) {
      return it -= k;
    }
    friend difference_type operator-(const const_iterator& a,
                                     const const_iterator& b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }
    friend auto operator<=>(const const_iterator& a, const const_iterator& b) {
      return a.i_ <=> b.i_;
    }

   private:
    const PackedColorArray* a_;
    std::size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }
  const_iterator cbegin() const { return begin(); }
  const_iterator cend() const { return end(); }

  std::vector<std::uint32_t> to_vector() const;
  operator std::vector<std::uint32_t>() const { return to_vector(); }  // NOLINT

  friend bool operator==(const PackedColorArray& a, const PackedColorArray& b);
  friend bool operator==(const PackedColorArray& a,
                         const std::vector<std::uint32_t>& b);

  /// Deterministic resident footprint (size-based, not capacity-based, so
  /// bench memory records are a pure function of the logical contents).
  std::size_t logical_bytes() const noexcept;

  /// Binary round-trip, used for the `.pset` spill-tail color sidecar.
  void save(std::ostream& out) const;
  static PackedColorArray load(std::istream& in);

 private:
  void store_code(std::size_t i, std::uint64_t code, std::uint64_t mask) {
    std::uint64_t& w = words_[i * width_ / 64];
    const unsigned shift = i * width_ % 64;
    const std::uint32_t old = static_cast<std::uint32_t>((w >> shift) & mask);
    if (old == mask - 1u) erase_escape(i);
    w = (w & ~(mask << shift)) | (code << shift);
  }
  void set_slow(std::size_t i, std::uint32_t value);
  std::uint32_t escaped_value(std::size_t i) const;
  void erase_escape(std::size_t i);
  void widen(unsigned new_width);
  static unsigned width_for_value(std::uint32_t value);
  static std::size_t packed_word_count(std::size_t n, unsigned width) {
    return (n * width + 63) / 64;
  }

  unsigned width_ = 2;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;          // width_ in {2, 4, 8}
  std::vector<std::uint32_t> full_;           // width_ == 32
  std::vector<std::pair<std::size_t, std::uint32_t>> escapes_;  // sorted
};

}  // namespace picasso::util
