#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace picasso::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;  // geometric mean undefined; signal with 0
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double min_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double RunningStats::mean() const { return util::mean(xs_); }
double RunningStats::stddev() const { return util::stddev(xs_); }
double RunningStats::geomean() const { return util::geomean(xs_); }

}  // namespace picasso::util
