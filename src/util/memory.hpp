#pragma once
// Memory accounting.
//
// The paper's Table IV compares "maximum resident set size" across tools that
// each run as their own process. Inside a single benchmark process RSS is a
// high-water mark that never decreases, so comparing algorithms run
// back-to-back through RSS alone would charge later algorithms for earlier
// ones. We therefore track *logical* bytes: every algorithm registers its
// dominant allocations (graph arrays, color lists, buckets, conflict CSR)
// against a MemoryTracker, and the tables report each algorithm's own peak.
// peak_rss_bytes() is still exposed for whole-process context.
//
// On top of the per-algorithm trackers sits the process-wide MemoryRegistry:
// per-subsystem high-water-mark accounting (Pauli input, chunk cache, color
// lists, conflict CSR, coloring auxiliaries, runtime arenas, ML features,
// spill files) plus an optional hard budget. The budgeted streaming pipeline
// sizes its chunk cache against the registry's headroom, and every bench can
// snapshot it into a machine-readable MemoryReport.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace picasso::util {

/// Tracks logical bytes in use and the peak across the lifetime of one
/// algorithm run. Not thread-safe by design: phases that allocate tracked
/// memory are serial (allocation happens outside parallel regions).
class MemoryTracker {
 public:
  void allocate(std::size_t bytes) noexcept {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  void release(std::size_t bytes) noexcept {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  void reset() noexcept { current_ = peak_ = 0; }

  std::size_t current_bytes() const noexcept { return current_; }
  std::size_t peak_bytes() const noexcept { return peak_; }

  /// Folds another tracker's peak into this one as if the two ran
  /// concurrently at their respective peaks (conservative upper bound).
  void absorb_peak(const MemoryTracker& other) noexcept {
    if (current_ + other.peak_bytes() > peak_) {
      peak_ = current_ + other.peak_bytes();
    }
  }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// RAII registration of a fixed-size allocation against a tracker.
class TrackedBlock {
 public:
  TrackedBlock(MemoryTracker& tracker, std::size_t bytes) noexcept
      : tracker_(&tracker), bytes_(bytes) {
    tracker_->allocate(bytes_);
  }
  ~TrackedBlock() {
    if (tracker_ != nullptr) tracker_->release(bytes_);
  }
  TrackedBlock(const TrackedBlock&) = delete;
  TrackedBlock& operator=(const TrackedBlock&) = delete;
  TrackedBlock(TrackedBlock&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
  }

 private:
  MemoryTracker* tracker_;
  std::size_t bytes_;
};

// ---------------------------------------------------------------------------
// Unified per-subsystem telemetry.

/// The subsystems whose dominant allocations are charged to the registry.
/// Keep to_string() and kNumMemSubsystems in sync when extending.
enum class MemSubsystem : unsigned {
  PauliInput,    // encoded Pauli strings resident in full
  ChunkCache,    // streamed Pauli chunks resident under a budget
  PaletteLists,  // one iteration's color lists
  ConflictCsr,   // conflict-graph COO staging + CSR arrays
  ColoringAux,   // list-coloring buckets / heaps / marks
  Arena,         // runtime thread-local scratch arenas
  MlFeatures,    // ML predictor feature/label matrices
  FusedFrontier, // fused engine: color index + working lists + bucket queue
  Spill,         // bytes written to spill files on disk
  SketchSigs,    // sketch tier: bloom support signatures / hashed edge bits
};
inline constexpr std::size_t kNumMemSubsystems = 10;

const char* to_string(MemSubsystem s) noexcept;

/// Point-in-time view of a MemoryRegistry (plain values, safe to copy).
struct MemorySnapshot {
  std::size_t budget_bytes = 0;  // 0 = unlimited
  std::size_t current_bytes = 0;
  std::size_t peak_bytes = 0;    // peak of the tracked total
  std::uint64_t over_budget_events = 0;
  std::array<std::size_t, kNumMemSubsystems> subsystem_current{};
  std::array<std::size_t, kNumMemSubsystems> subsystem_peak{};
};

/// Process-wide, thread-safe high-water-mark accounting per subsystem, with
/// an optional hard budget. charge()/release() are relaxed atomics cheap
/// enough for per-allocation use on hot paths; peaks are maintained with CAS
/// maxima. The budget is advisory for charge() (an over-budget charge is
/// counted, not blocked — the caller already owns the memory) and binding
/// for try_charge() (cache admission).
class MemoryRegistry {
 public:
  void charge(MemSubsystem sub, std::size_t bytes) noexcept;
  void release(MemSubsystem sub, std::size_t bytes) noexcept;

  /// Charges only if a budget is set and current + bytes stays within it
  /// (always charges when no budget is set). Returns whether it charged.
  bool try_charge(MemSubsystem sub, std::size_t bytes) noexcept;

  /// Folds an externally tracked peak (e.g. the arena high-water mark) into
  /// the subsystem and total peaks without changing current levels.
  void record_external_peak(MemSubsystem sub, std::size_t peak) noexcept;

  void set_budget(std::size_t bytes) noexcept {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  std::size_t budget_bytes() const noexcept {
    return budget_.load(std::memory_order_relaxed);
  }
  /// Bytes left under the budget (saturating at 0); SIZE_MAX when unlimited.
  std::size_t headroom_bytes() const noexcept;

  std::size_t current_bytes() const noexcept {
    return total_current_.load(std::memory_order_relaxed);
  }
  std::size_t peak_bytes() const noexcept {
    return total_peak_.load(std::memory_order_relaxed);
  }

  /// Rebase every peak to the current level (start of an algorithm run).
  void reset_peaks() noexcept;

  MemorySnapshot snapshot() const noexcept;

  /// Run-scope nesting depth (see MemoryRunScope). Kept on the registry,
  /// not per thread, so concurrent runs sharing one registry cannot both
  /// believe they are outermost and clobber each other's budget and peaks.
  int enter_run() noexcept {
    return run_depth_.fetch_add(1, std::memory_order_relaxed);
  }
  void exit_run() noexcept {
    run_depth_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::size_t> current{0};
    std::atomic<std::size_t> peak{0};
  };
  static void raise_peak(std::atomic<std::size_t>& peak,
                         std::size_t value) noexcept;

  std::array<Slot, kNumMemSubsystems> slots_{};
  std::atomic<std::size_t> total_current_{0};
  std::atomic<std::size_t> total_peak_{0};
  std::atomic<std::size_t> budget_{0};
  std::atomic<std::uint64_t> over_budget_events_{0};
  std::atomic<int> run_depth_{0};
};

/// The process-wide registry every subsystem charges by default.
MemoryRegistry& global_memory();

/// RAII charge against a registry; resize() re-charges the delta (for
/// structures that grow while registered).
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ScopedCharge(MemSubsystem sub, std::size_t bytes,
               MemoryRegistry& registry = global_memory()) noexcept
      : registry_(&registry), sub_(sub), bytes_(bytes) {
    registry_->charge(sub_, bytes_);
  }
  ~ScopedCharge() {
    if (registry_ != nullptr) registry_->release(sub_, bytes_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ScopedCharge(ScopedCharge&& other) noexcept { *this = std::move(other); }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      if (registry_ != nullptr) registry_->release(sub_, bytes_);
      registry_ = other.registry_;
      sub_ = other.sub_;
      bytes_ = other.bytes_;
      other.registry_ = nullptr;
    }
    return *this;
  }

  void resize(std::size_t bytes) noexcept {
    if (registry_ == nullptr) return;
    if (bytes > bytes_) {
      registry_->charge(sub_, bytes - bytes_);
    } else {
      registry_->release(sub_, bytes_ - bytes);
    }
    bytes_ = bytes;
  }

  std::size_t bytes() const noexcept { return bytes_; }

 private:
  MemoryRegistry* registry_ = nullptr;
  MemSubsystem sub_ = MemSubsystem::PauliInput;
  std::size_t bytes_ = 0;
};

/// Guard for one algorithm run: the registry's outermost scope rebases its
/// peaks and installs `budget_bytes` (restoring the previous budget on
/// exit); nested scopes — per-shard driver calls from the multi-device
/// path, or a concurrent run on another thread — are no-ops, so the
/// outermost run's budget and accumulated peaks are never clobbered.
/// Snapshot the registry before the scope dies to read the run's peaks.
class MemoryRunScope {
 public:
  explicit MemoryRunScope(std::size_t budget_bytes,
                          MemoryRegistry& registry = global_memory()) noexcept;
  ~MemoryRunScope();
  MemoryRunScope(const MemoryRunScope&) = delete;
  MemoryRunScope& operator=(const MemoryRunScope&) = delete;

  bool outermost() const noexcept { return outermost_; }

 private:
  MemoryRegistry* registry_;
  std::size_t saved_budget_ = 0;
  bool outermost_ = false;
};

/// Peak resident set size of the calling process, in bytes (getrusage).
std::size_t peak_rss_bytes() noexcept;

/// Pretty-prints a byte count ("1.24 GB", "87.1 MB", ...).
const char* format_bytes(std::size_t bytes, char* buf, std::size_t buflen);

}  // namespace picasso::util
