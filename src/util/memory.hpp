#pragma once
// Memory accounting.
//
// The paper's Table IV compares "maximum resident set size" across tools that
// each run as their own process. Inside a single benchmark process RSS is a
// high-water mark that never decreases, so comparing algorithms run
// back-to-back through RSS alone would charge later algorithms for earlier
// ones. We therefore track *logical* bytes: every algorithm registers its
// dominant allocations (graph arrays, color lists, buckets, conflict CSR)
// against a MemoryTracker, and the tables report each algorithm's own peak.
// peak_rss_bytes() is still exposed for whole-process context.

#include <cstddef>
#include <cstdint>

namespace picasso::util {

/// Tracks logical bytes in use and the peak across the lifetime of one
/// algorithm run. Not thread-safe by design: phases that allocate tracked
/// memory are serial (allocation happens outside parallel regions).
class MemoryTracker {
 public:
  void allocate(std::size_t bytes) noexcept {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  void release(std::size_t bytes) noexcept {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  void reset() noexcept { current_ = peak_ = 0; }

  std::size_t current_bytes() const noexcept { return current_; }
  std::size_t peak_bytes() const noexcept { return peak_; }

  /// Folds another tracker's peak into this one as if the two ran
  /// concurrently at their respective peaks (conservative upper bound).
  void absorb_peak(const MemoryTracker& other) noexcept {
    if (current_ + other.peak_bytes() > peak_) {
      peak_ = current_ + other.peak_bytes();
    }
  }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// RAII registration of a fixed-size allocation against a tracker.
class TrackedBlock {
 public:
  TrackedBlock(MemoryTracker& tracker, std::size_t bytes) noexcept
      : tracker_(&tracker), bytes_(bytes) {
    tracker_->allocate(bytes_);
  }
  ~TrackedBlock() {
    if (tracker_ != nullptr) tracker_->release(bytes_);
  }
  TrackedBlock(const TrackedBlock&) = delete;
  TrackedBlock& operator=(const TrackedBlock&) = delete;
  TrackedBlock(TrackedBlock&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
  }

 private:
  MemoryTracker* tracker_;
  std::size_t bytes_;
};

/// Peak resident set size of the calling process, in bytes (getrusage).
std::size_t peak_rss_bytes() noexcept;

/// Pretty-prints a byte count ("1.24 GB", "87.1 MB", ...).
const char* format_bytes(std::size_t bytes, char* buf, std::size_t buflen);

}  // namespace picasso::util
