#pragma once
// Summary statistics for multi-seed benchmark runs (the paper averages every
// reported number over five runs; Table V reports geometric-mean speedups).

#include <cstddef>
#include <vector>

namespace picasso::util {

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);  // sample standard deviation
double geomean(const std::vector<double>& xs);
double median(std::vector<double> xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Accumulates observations; convenient for per-phase timing.
class RunningStats {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double stddev() const;
  double geomean() const;
  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

}  // namespace picasso::util
