#include "util/failpoint.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <system_error>
#include <thread>
#include <unordered_map>

namespace picasso::util::failpoints {
namespace {

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Spec> sites;
  bool env_parsed = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Counts armed sites; sites only take the registry lock when this is > 0.
// Seeded to 1 when PICASSO_FAILPOINTS is set so the first site consult
// parses the (lazy) env spec; refresh_armed_locked then re-derives the
// true count — back to 0 (and the zero-cost fast path) if it armed nothing.
std::atomic<std::size_t> g_armed{
    std::getenv("PICASSO_FAILPOINTS") != nullptr ? std::size_t{1}
                                                 : std::size_t{0}};

// Must hold registry().mu. Re-derives g_armed from the map so arm/disarm
// paths cannot drift out of sync with it.
void refresh_armed_locked(Registry& r) {
  std::size_t n = 0;
  for (const auto& [name, spec] : r.sites) {
    if (spec.mode != Mode::Off) ++n;
  }
  g_armed.store(n, std::memory_order_relaxed);
}

// Parse one NAME=MODE[:ARG][@COUNT] entry; returns false on malformed input.
bool parse_entry(const std::string& entry, std::string& name, Spec& spec) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  name = entry.substr(0, eq);
  std::string rhs = entry.substr(eq + 1);

  spec = Spec{};
  const std::size_t at = rhs.find('@');
  if (at != std::string::npos) {
    try {
      spec.count = std::stoll(rhs.substr(at + 1));
    } catch (const std::exception&) {
      return false;
    }
    if (spec.count <= 0) return false;
    rhs = rhs.substr(0, at);
  }
  std::string arg;
  const std::size_t colon = rhs.find(':');
  if (colon != std::string::npos) {
    arg = rhs.substr(colon + 1);
    rhs = rhs.substr(0, colon);
  }
  if (rhs == "error") {
    spec.mode = Mode::Error;
  } else if (rhs == "enospc") {
    spec.mode = Mode::Enospc;
  } else if (rhs == "delay") {
    spec.mode = Mode::Delay;
  } else if (rhs == "short") {
    spec.mode = Mode::ShortIo;
  } else {
    return false;
  }
  if (spec.mode == Mode::Delay || spec.mode == Mode::ShortIo) {
    if (arg.empty()) return false;
    try {
      spec.arg = std::stoull(arg);
    } catch (const std::exception&) {
      return false;
    }
  } else if (!arg.empty()) {
    return false;
  }
  return true;
}

// Must hold registry().mu.
bool arm_from_spec_locked(Registry& r, const std::string& spec_string) {
  std::unordered_map<std::string, Spec> parsed;
  std::size_t begin = 0;
  while (begin <= spec_string.size()) {
    std::size_t end = spec_string.find(';', begin);
    if (end == std::string::npos) end = spec_string.size();
    const std::string entry = spec_string.substr(begin, end - begin);
    if (!entry.empty()) {
      std::string name;
      Spec spec;
      if (!parse_entry(entry, name, spec)) return false;
      parsed[name] = spec;
    }
    begin = end + 1;
  }
  for (auto& [name, spec] : parsed) r.sites[name] = spec;
  refresh_armed_locked(r);
  return true;
}

// Must hold registry().mu. Lazily folds PICASSO_FAILPOINTS into the map the
// first time any site is consulted or armed, so env and programmatic arming
// compose (programmatic wins on a name collision because it arrives later).
void ensure_env_parsed_locked(Registry& r) {
  if (r.env_parsed) return;
  r.env_parsed = true;
  if (const char* env = std::getenv("PICASSO_FAILPOINTS")) {
    if (!arm_from_spec_locked(r, env)) {
      refresh_armed_locked(r);  // malformed env spec arms nothing
    }
  }
}

// Looks up `name` and consumes one trigger. Returns the armed spec via
// `out`; false when the site is not armed (or its count is exhausted).
bool consume(const char* name, Spec& out) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  auto it = r.sites.find(name);
  if (it == r.sites.end() || it->second.mode == Mode::Off) return false;
  out = it->second;
  if (it->second.count > 0 && --it->second.count == 0) {
    r.sites.erase(it);
    refresh_armed_locked(r);
  }
  return true;
}

[[noreturn]] void throw_for(const char* name, const Spec& spec) {
  if (spec.mode == Mode::Enospc) {
    throw std::system_error(ENOSPC, std::generic_category(),
                            std::string("injected ENOSPC at failpoint '") +
                                name + "'");
  }
  throw InjectedFault(name);
}

}  // namespace

void arm(const std::string& name, Spec spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  r.sites[name] = spec;
  refresh_armed_locked(r);
}

void disarm(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.erase(name);
  refresh_armed_locked(r);
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
  r.env_parsed = true;  // do not resurrect env entries after an explicit clear
  refresh_armed_locked(r);
}

bool arm_from_spec(const std::string& spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  return arm_from_spec_locked(r, spec);
}

std::size_t armed_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  return g_armed.load(std::memory_order_relaxed);
}

bool any_armed() noexcept {
  return g_armed.load(std::memory_order_relaxed) > 0;
}

void evaluate(const char* name) {
  Spec spec;
  if (!consume(name, spec)) return;
  switch (spec.mode) {
    case Mode::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.arg));
      return;
    case Mode::ShortIo:  // length clamping is meaningless here; ignore
      return;
    case Mode::Error:
    case Mode::Enospc:
      throw_for(name, spec);
    case Mode::Off:
      return;
  }
}

std::size_t evaluate_io(const char* name, std::size_t requested) {
  Spec spec;
  if (!consume(name, spec)) return requested;
  switch (spec.mode) {
    case Mode::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.arg));
      return requested;
    case Mode::ShortIo:
      return spec.arg < requested ? static_cast<std::size_t>(spec.arg)
                                  : requested;
    case Mode::Error:
    case Mode::Enospc:
      throw_for(name, spec);
    case Mode::Off:
      return requested;
  }
  return requested;
}

bool triggered(const char* name) noexcept {
  Spec spec;
  if (!consume(name, spec)) return false;
  switch (spec.mode) {
    case Mode::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.arg));
      return false;
    case Mode::Error:
    case Mode::Enospc:
      return true;
    case Mode::ShortIo:
    case Mode::Off:
      return false;
  }
  return false;
}

}  // namespace picasso::util::failpoints
