#pragma once
// A bucket priority structure over integer keys in [0, max_key], holding
// element ids in [0, n). Supports O(1) insert, erase, and key updates, and
// amortised-cheap min/max extraction via a moving cursor.
//
// This is the data structure behind Algorithm 2 of the paper (vertices
// bucketed by current color-list size) and behind the Smallest-Last /
// Dynamic-Largest-First / Incidence-Degree ordering heuristics, replacing a
// heap and its log factor exactly as §IV-B describes.

#include <cassert>
#include <cstdint>
#include <vector>

namespace picasso::util {

class BucketQueue {
 public:
  static constexpr std::uint32_t npos = 0xffffffffu;

  /// n elements, keys in [0, max_key].
  BucketQueue(std::uint32_t n, std::uint32_t max_key)
      : buckets_(static_cast<std::size_t>(max_key) + 1),
        position_(n, npos),
        key_(n, 0),
        min_cursor_(max_key + 1),
        max_cursor_(0) {}

  bool contains(std::uint32_t id) const { return position_[id] != npos; }
  std::uint32_t key_of(std::uint32_t id) const { return key_[id]; }
  std::uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  void insert(std::uint32_t id, std::uint32_t key) {
    assert(!contains(id));
    assert(key < buckets_.size());
    auto& bucket = buckets_[key];
    position_[id] = static_cast<std::uint32_t>(bucket.size());
    bucket.push_back(id);
    key_[id] = key;
    if (key < min_cursor_) min_cursor_ = key;
    if (key > max_cursor_) max_cursor_ = key;
    ++count_;
  }

  void erase(std::uint32_t id) {
    assert(contains(id));
    auto& bucket = buckets_[key_[id]];
    const std::uint32_t pos = position_[id];
    const std::uint32_t last = bucket.back();
    bucket[pos] = last;
    position_[last] = pos;
    bucket.pop_back();
    position_[id] = npos;
    --count_;
  }

  void update_key(std::uint32_t id, std::uint32_t new_key) {
    erase(id);
    insert(id, new_key);
  }

  /// Smallest key with a non-empty bucket. The cursor only moves forward
  /// between decreases of the minimum, so a full scan is rare; in Algorithm 2
  /// keys only decrease by 1 per neighbor update, matching the O(L) bound.
  std::uint32_t min_key() {
    assert(!empty());
    if (min_cursor_ >= buckets_.size()) min_cursor_ = 0;
    while (buckets_[min_cursor_].empty()) ++min_cursor_;
    return min_cursor_;
  }

  std::uint32_t max_key() {
    assert(!empty());
    if (max_cursor_ >= buckets_.size()) max_cursor_ = static_cast<std::uint32_t>(buckets_.size()) - 1;
    while (buckets_[max_cursor_].empty()) --max_cursor_;
    return max_cursor_;
  }

  /// Any element in the given bucket (the last, O(1)).
  std::uint32_t any_in_bucket(std::uint32_t key) const {
    assert(!buckets_[key].empty());
    return buckets_[key].back();
  }

  /// Direct bucket access for random selection among equals.
  const std::vector<std::uint32_t>& bucket(std::uint32_t key) const {
    return buckets_[key];
  }

  /// Since erase() can empty the current min bucket, callers re-query
  /// min_key(); inserting a smaller key rewinds the cursor in insert().
  std::size_t logical_bytes() const {
    std::size_t b = buckets_.capacity() * sizeof(std::vector<std::uint32_t>);
    for (const auto& v : buckets_) b += v.capacity() * sizeof(std::uint32_t);
    b += position_.capacity() * sizeof(std::uint32_t);
    b += key_.capacity() * sizeof(std::uint32_t);
    return b;
  }

 private:
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::vector<std::uint32_t> position_;  // index inside its bucket, or npos
  std::vector<std::uint32_t> key_;
  std::uint32_t min_cursor_;
  std::uint32_t max_cursor_;
  std::uint32_t count_ = 0;
};

}  // namespace picasso::util
