#pragma once
// Fault-injection points for chaos testing.
//
// A FailPoint is a named site in production code where a test (or an
// operator, via PICASSO_FAILPOINTS) can inject a failure: an error return,
// a delay, a short write, or a synthetic ENOSPC. Sites are evaluated with
//
//   PICASSO_FAILPOINT("spill.write");            // throws / sleeps per mode
//   std::size_t n = PICASSO_FAILPOINT_CLAMP("wire.send", want);  // short I/O
//
// With PICASSO_FAILPOINTS_ENABLED=0 both macros compile to nothing / the
// untouched byte count, so release builds carry zero cost. When compiled in
// (the default), the fast path is one relaxed atomic load of a global
// "any failpoint armed" counter — sites pay a single predictable branch
// until something is actually armed.
//
// Activation:
//   programmatic  util::failpoints::arm("spill.write", {Mode::Error});
//   environment   PICASSO_FAILPOINTS="spill.write=error;wire.send=delay:50"
//                 (parsed once, lazily, on first site evaluation)
//
// Spec grammar per entry: NAME=MODE[:ARG][@COUNT]
//   error        throw util::InjectedFault
//   enospc       throw std::system_error(ENOSPC)
//   delay:MS     sleep MS milliseconds, then continue
//   short:N      clamp the next I/O at this site to N bytes (N < requested)
//   @COUNT       trigger only COUNT times, then disarm automatically

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#ifndef PICASSO_FAILPOINTS_ENABLED
#define PICASSO_FAILPOINTS_ENABLED 1
#endif

namespace picasso::util {

/// Thrown by sites armed in Mode::Error. Distinct from system_error so tests
/// can tell an injected logic fault from an injected errno fault.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& site)
      : std::runtime_error("injected fault at failpoint '" + site + "'"),
        site_(site) {}
  const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

namespace failpoints {

enum class Mode : std::uint8_t {
  Off = 0,
  Error,    // throw InjectedFault
  Enospc,   // throw std::system_error(ENOSPC, generic_category())
  Delay,    // sleep arg_ms, then proceed
  ShortIo,  // clamp I/O length to arg_bytes (evaluate() is a no-op)
};

struct Spec {
  Mode mode = Mode::Off;
  std::uint64_t arg = 0;     // ms for Delay, bytes for ShortIo
  std::int64_t count = -1;   // remaining triggers; -1 = unlimited
};

/// Arm `name` with `spec`. Replaces any existing arming of the same name.
void arm(const std::string& name, Spec spec);
/// Disarm one site (no-op if not armed).
void disarm(const std::string& name);
/// Disarm everything, including env-parsed entries. Tests call this in
/// teardown so an armed site never outlives its test.
void disarm_all();
/// Parse a PICASSO_FAILPOINTS-style spec string ("a=error;b=delay:50@2").
/// Returns false (arming nothing) on a malformed spec.
bool arm_from_spec(const std::string& spec);
/// Number of currently armed sites (after env parse).
std::size_t armed_count();

/// True when at least one site is armed. Relaxed single atomic load — this
/// is the only cost sites pay when nothing is armed.
bool any_armed() noexcept;

/// Slow path: look up `name`, apply its mode (throw / sleep / decrement
/// count). Called by the macros only when any_armed().
void evaluate(const char* name);
/// Slow path for I/O sites: like evaluate(), but a ShortIo arming returns
/// min(requested, arg_bytes) instead of acting. Other modes act as usual
/// and return `requested` if they continue.
std::size_t evaluate_io(const char* name, std::size_t requested);
/// Non-throwing variant for noexcept sites that report failure by return
/// value (e.g. MemoryRegistry::try_charge): Error/Enospc armings return
/// true (consuming a trigger), Delay sleeps then returns false, ShortIo
/// and unarmed sites return false.
bool triggered(const char* name) noexcept;

}  // namespace failpoints
}  // namespace picasso::util

#if PICASSO_FAILPOINTS_ENABLED
#define PICASSO_FAILPOINT(name)                               \
  do {                                                        \
    if (::picasso::util::failpoints::any_armed())             \
      ::picasso::util::failpoints::evaluate(name);            \
  } while (0)
#define PICASSO_FAILPOINT_CLAMP(name, requested)              \
  (::picasso::util::failpoints::any_armed()                   \
       ? ::picasso::util::failpoints::evaluate_io(name, (requested)) \
       : (requested))
#else
#define PICASSO_FAILPOINT(name) \
  do {                          \
  } while (0)
#define PICASSO_FAILPOINT_CLAMP(name, requested) (requested)
#endif
