#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/memory.hpp"

namespace picasso::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      out << "| " << cell;
      for (std::size_t pad = cell.size(); pad < width[c]; ++pad) out << ' ';
      out << ' ';
    }
    out << "|\n";
  };
  auto emit_rule = [&]() {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << '+';
      for (std::size_t i = 0; i < width[c] + 2; ++i) out << '-';
    }
    out << "+\n";
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::printf("\n=== %s ===\n%s", title.c_str(), to_string().c_str());
  std::fflush(stdout);
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::fmt_bytes(std::size_t bytes) {
  char buf[64];
  return format_bytes(bytes, buf, sizeof(buf));
}

std::string Table::fmt_pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
  return buf;
}

}  // namespace picasso::util
