#pragma once
// Deterministic pseudo-random number generation for Picasso.
//
// The coloring algorithm must be reproducible given a seed, including when the
// list-assignment loop runs in parallel: every (seed, iteration, vertex)
// triple gets its own statistically independent stream, so the schedule of an
// OpenMP loop cannot change the sampled color lists.

#include <cstdint>
#include <limits>
#include <vector>

namespace picasso::util {

/// SplitMix64: fast 64-bit mixer; used for seeding and key-derived streams.
/// Passes BigCrush when used as a generator; here mainly a seed expander.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the main generator. Small state, excellent statistical
/// quality, trivially seedable from SplitMix64 (as its authors recommend).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection method;
  /// unbiased and much faster than std::uniform_int_distribution.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Derives an independent stream for a (seed, iteration, vertex)-style key.
/// Mixing the words through SplitMix64 decorrelates consecutive keys.
Xoshiro256 keyed_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b) noexcept;

/// Samples `k` distinct values from [0, n) uniformly at random, ascending
/// order. Uses Floyd's algorithm: O(k) expected work, no O(n) scratch.
std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                      std::uint32_t k,
                                                      Xoshiro256& rng);

/// Fisher-Yates shuffle.
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = rng.bounded(i);
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace picasso::util
