#include "util/packed_colors.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace picasso::util {

namespace {

// Fill pattern: the w-bit code replicated across a 64-bit word.
std::uint64_t splat(std::uint64_t code, unsigned width) {
  std::uint64_t word = 0;
  for (unsigned shift = 0; shift < 64; shift += width) word |= code << shift;
  return word;
}

}  // namespace

unsigned PackedColorArray::width_for_value(std::uint32_t value) {
  // Inline storage needs value <= mask - 2 (two codes are reserved).
  if (value <= 1u) return 2;
  if (value <= 13u) return 4;
  if (value <= 253u) return 8;
  return 32;
}

unsigned PackedColorArray::pick_width(std::uint32_t bound) {
  if (bound == 0) return 2;
  return width_for_value(bound - 1);
}

PackedColorArray::PackedColorArray(std::size_t n, std::uint32_t value,
                                   std::uint32_t bound) {
  width_ = pick_width(bound);
  if (value != kNoColor && width_for_value(value) > width_) {
    width_ = width_for_value(value);
  }
  assign(n, value);
}

PackedColorArray::PackedColorArray(const std::vector<std::uint32_t>& values) {
  *this = values;
}

PackedColorArray& PackedColorArray::operator=(
    const std::vector<std::uint32_t>& values) {
  // One pass to find the widest needed inline width avoids escape churn.
  unsigned width = 2;
  for (const std::uint32_t v : values) {
    if (v != kNoColor) width = std::max(width, width_for_value(v));
  }
  width_ = width;
  assign(values.size(), kNoColor);
  for (std::size_t i = 0; i < values.size(); ++i) set(i, values[i]);
  return *this;
}

void PackedColorArray::clear() {
  size_ = 0;
  words_.clear();
  full_.clear();
  escapes_.clear();
}

void PackedColorArray::assign(std::size_t n, std::uint32_t value) {
  escapes_.clear();
  size_ = n;
  if (value != kNoColor && width_for_value(value) > width_) {
    width_ = width_for_value(value);
  }
  if (width_ == 32) {
    words_.clear();
    full_.assign(n, value);
    return;
  }
  full_.clear();
  const std::uint64_t mask = (1u << width_) - 1u;
  const std::uint64_t code = value == kNoColor ? mask : value;
  words_.assign(packed_word_count(n, width_), splat(code, width_));
}

void PackedColorArray::reset(std::size_t n, std::uint32_t value,
                             std::uint32_t bound) {
  width_ = pick_width(bound);
  assign(n, value);
}

void PackedColorArray::resize(std::size_t n, std::uint32_t value) {
  if (n <= size_) {
    size_ = n;
    if (width_ == 32) {
      full_.resize(n);
    } else {
      words_.resize(packed_word_count(n, width_));
      while (!escapes_.empty() && escapes_.back().first >= n) {
        escapes_.pop_back();
      }
    }
    return;
  }
  const std::size_t old = size_;
  size_ = n;
  if (width_ == 32) {
    full_.resize(n, value);
    return;
  }
  words_.resize(packed_word_count(n, width_), 0);
  for (std::size_t i = old; i < n; ++i) set(i, value);
}

void PackedColorArray::push_back(std::uint32_t value) {
  resize(size_ + 1, value);
}

std::uint32_t PackedColorArray::escaped_value(std::size_t i) const {
  const auto it = std::lower_bound(
      escapes_.begin(), escapes_.end(), i,
      [](const auto& entry, std::size_t idx) { return entry.first < idx; });
  return it->second;  // an escape code is only ever written with its entry
}

void PackedColorArray::erase_escape(std::size_t i) {
  const auto it = std::lower_bound(
      escapes_.begin(), escapes_.end(), i,
      [](const auto& entry, std::size_t idx) { return entry.first < idx; });
  if (it != escapes_.end() && it->first == i) escapes_.erase(it);
}

void PackedColorArray::set_slow(std::size_t i, std::uint32_t value) {
  // The value does not fit inline at the current width. Escape it, unless
  // the side table has grown past its threshold — then re-widen once and
  // store flat from here on.
  const std::size_t threshold = std::min<std::size_t>(size_ / 16, 256) + 8;
  if (escapes_.size() + 1 > threshold) {
    widen(width_for_value(value));
    set(i, value);
    return;
  }
  const std::uint64_t mask = (1u << width_) - 1u;
  const auto it = std::lower_bound(
      escapes_.begin(), escapes_.end(), i,
      [](const auto& entry, std::size_t idx) { return entry.first < idx; });
  if (it != escapes_.end() && it->first == i) {
    it->second = value;
  } else {
    escapes_.insert(it, {i, value});
  }
  std::uint64_t& w = words_[i * width_ / 64];
  const unsigned shift = i * width_ % 64;
  w = (w & ~(mask << shift)) | ((mask - 1u) << shift);
}

void PackedColorArray::widen(unsigned new_width) {
  PackedColorArray wider;
  wider.width_ = std::max(new_width, width_);
  wider.assign(size_, kNoColor);
  for (std::size_t i = 0; i < size_; ++i) wider.set(i, get(i));
  *this = std::move(wider);
}

std::vector<std::uint32_t> PackedColorArray::to_vector() const {
  std::vector<std::uint32_t> out(size_);
  for (std::size_t i = 0; i < size_; ++i) out[i] = get(i);
  return out;
}

bool operator==(const PackedColorArray& a, const PackedColorArray& b) {
  if (a.size_ != b.size_) return false;
  for (std::size_t i = 0; i < a.size_; ++i) {
    if (a.get(i) != b.get(i)) return false;
  }
  return true;
}

bool operator==(const PackedColorArray& a,
                const std::vector<std::uint32_t>& b) {
  if (a.size_ != b.size()) return false;
  for (std::size_t i = 0; i < a.size_; ++i) {
    if (a.get(i) != b[i]) return false;
  }
  return true;
}

std::size_t PackedColorArray::logical_bytes() const noexcept {
  const std::size_t payload =
      width_ == 32 ? size_ * sizeof(std::uint32_t)
                   : packed_word_count(size_, width_) * sizeof(std::uint64_t);
  return payload +
         escapes_.size() * (sizeof(std::size_t) + sizeof(std::uint32_t));
}

void PackedColorArray::save(std::ostream& out) const {
  const char magic[4] = {'P', 'C', 'L', '1'};
  out.write(magic, 4);
  const std::uint32_t width = width_;
  const std::uint64_t size = size_;
  const std::uint64_t n_escapes = escapes_.size();
  out.write(reinterpret_cast<const char*>(&width), sizeof(width));
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  out.write(reinterpret_cast<const char*>(&n_escapes), sizeof(n_escapes));
  if (width_ == 32) {
    out.write(reinterpret_cast<const char*>(full_.data()),
              static_cast<std::streamsize>(full_.size() * sizeof(full_[0])));
  } else {
    out.write(reinterpret_cast<const char*>(words_.data()),
              static_cast<std::streamsize>(words_.size() * sizeof(words_[0])));
  }
  for (const auto& [index, value] : escapes_) {
    const std::uint64_t idx = index;
    out.write(reinterpret_cast<const char*>(&idx), sizeof(idx));
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
  }
}

PackedColorArray PackedColorArray::load(std::istream& in) {
  char magic[4] = {};
  in.read(magic, 4);
  if (!in || magic[0] != 'P' || magic[1] != 'C' || magic[2] != 'L' ||
      magic[3] != '1') {
    throw std::runtime_error("PackedColorArray::load: bad magic");
  }
  std::uint32_t width = 0;
  std::uint64_t size = 0, n_escapes = 0;
  in.read(reinterpret_cast<char*>(&width), sizeof(width));
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  in.read(reinterpret_cast<char*>(&n_escapes), sizeof(n_escapes));
  if (!in || (width != 2 && width != 4 && width != 8 && width != 32)) {
    throw std::runtime_error("PackedColorArray::load: bad header");
  }
  PackedColorArray out;
  out.width_ = width;
  out.size_ = static_cast<std::size_t>(size);
  if (width == 32) {
    out.full_.resize(out.size_);
    in.read(reinterpret_cast<char*>(out.full_.data()),
            static_cast<std::streamsize>(out.full_.size() *
                                         sizeof(out.full_[0])));
  } else {
    out.words_.resize(packed_word_count(out.size_, width));
    in.read(reinterpret_cast<char*>(out.words_.data()),
            static_cast<std::streamsize>(out.words_.size() *
                                         sizeof(out.words_[0])));
  }
  out.escapes_.resize(static_cast<std::size_t>(n_escapes));
  for (auto& [index, value] : out.escapes_) {
    std::uint64_t idx = 0;
    in.read(reinterpret_cast<char*>(&idx), sizeof(idx));
    in.read(reinterpret_cast<char*>(&value), sizeof(value));
    index = static_cast<std::size_t>(idx);
  }
  if (!in) throw std::runtime_error("PackedColorArray::load: truncated");
  return out;
}

}  // namespace picasso::util
