#include "util/memory.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <limits>

#include "util/failpoint.hpp"

namespace picasso::util {

const char* to_string(MemSubsystem s) noexcept {
  switch (s) {
    case MemSubsystem::PauliInput: return "pauli_input";
    case MemSubsystem::ChunkCache: return "chunk_cache";
    case MemSubsystem::PaletteLists: return "palette_lists";
    case MemSubsystem::ConflictCsr: return "conflict_csr";
    case MemSubsystem::ColoringAux: return "coloring_aux";
    case MemSubsystem::Arena: return "arena";
    case MemSubsystem::MlFeatures: return "ml_features";
    case MemSubsystem::FusedFrontier: return "fused_frontier";
    case MemSubsystem::Spill: return "spill";
    case MemSubsystem::SketchSigs: return "sketch_sigs";
  }
  return "?";
}

void MemoryRegistry::raise_peak(std::atomic<std::size_t>& peak,
                                std::size_t value) noexcept {
  std::size_t seen = peak.load(std::memory_order_relaxed);
  while (seen < value &&
         !peak.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void MemoryRegistry::charge(MemSubsystem sub, std::size_t bytes) noexcept {
  Slot& slot = slots_[static_cast<unsigned>(sub)];
  const std::size_t sub_now =
      slot.current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_peak(slot.peak, sub_now);
  const std::size_t total_now =
      total_current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_peak(total_peak_, total_now);
  const std::size_t budget = budget_.load(std::memory_order_relaxed);
  if (budget != 0 && total_now > budget) {
    over_budget_events_.fetch_add(1, std::memory_order_relaxed);
  }
}

void MemoryRegistry::release(MemSubsystem sub, std::size_t bytes) noexcept {
  Slot& slot = slots_[static_cast<unsigned>(sub)];
  slot.current.fetch_sub(bytes, std::memory_order_relaxed);
  total_current_.fetch_sub(bytes, std::memory_order_relaxed);
}

bool MemoryRegistry::try_charge(MemSubsystem sub, std::size_t bytes) noexcept {
  if (failpoints::any_armed() && failpoints::triggered("memory.charge")) {
    // Injected admission failure: behaves exactly like a full budget, so
    // every caller's denial path (cache fallback, degradation) is exercised.
    return false;
  }
  const std::size_t budget = budget_.load(std::memory_order_relaxed);
  if (budget == 0) {
    charge(sub, bytes);
    return true;
  }
  // Reserve optimistically and KEEP the reservation on success — releasing
  // and re-charging would open a window for concurrent admitters to squeeze
  // past the cap together.
  const std::size_t total_now =
      total_current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (total_now > budget) {
    total_current_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  Slot& slot = slots_[static_cast<unsigned>(sub)];
  const std::size_t sub_now =
      slot.current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_peak(slot.peak, sub_now);
  raise_peak(total_peak_, total_now);
  return true;
}

void MemoryRegistry::record_external_peak(MemSubsystem sub,
                                          std::size_t peak) noexcept {
  Slot& slot = slots_[static_cast<unsigned>(sub)];
  raise_peak(slot.peak, peak);
  raise_peak(total_peak_,
             total_current_.load(std::memory_order_relaxed) + peak);
}

std::size_t MemoryRegistry::headroom_bytes() const noexcept {
  const std::size_t budget = budget_.load(std::memory_order_relaxed);
  if (budget == 0) return std::numeric_limits<std::size_t>::max();
  const std::size_t current = total_current_.load(std::memory_order_relaxed);
  return current >= budget ? 0 : budget - current;
}

void MemoryRegistry::reset_peaks() noexcept {
  for (Slot& slot : slots_) {
    slot.peak.store(slot.current.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }
  total_peak_.store(total_current_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  over_budget_events_.store(0, std::memory_order_relaxed);
}

MemorySnapshot MemoryRegistry::snapshot() const noexcept {
  MemorySnapshot snap;
  snap.budget_bytes = budget_.load(std::memory_order_relaxed);
  snap.current_bytes = total_current_.load(std::memory_order_relaxed);
  snap.peak_bytes = total_peak_.load(std::memory_order_relaxed);
  snap.over_budget_events =
      over_budget_events_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumMemSubsystems; ++i) {
    snap.subsystem_current[i] =
        slots_[i].current.load(std::memory_order_relaxed);
    snap.subsystem_peak[i] = slots_[i].peak.load(std::memory_order_relaxed);
  }
  return snap;
}

MemoryRegistry& global_memory() {
  static MemoryRegistry registry;
  return registry;
}

MemoryRunScope::MemoryRunScope(std::size_t budget_bytes,
                               MemoryRegistry& registry) noexcept
    : registry_(&registry), outermost_(registry.enter_run() == 0) {
  if (!outermost_) return;
  saved_budget_ = registry_->budget_bytes();
  registry_->set_budget(budget_bytes);
  registry_->reset_peaks();
}

MemoryRunScope::~MemoryRunScope() {
  registry_->exit_run();
  if (outermost_) registry_->set_budget(saved_budget_);
}

std::size_t peak_rss_bytes() noexcept {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is reported in kilobytes on Linux.
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

const char* format_bytes(std::size_t bytes, char* buf, std::size_t buflen) {
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, buflen, "%.2f GB", b / static_cast<double>(1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, buflen, "%.2f MB", b / static_cast<double>(1ULL << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, buflen, "%.2f KB", b / static_cast<double>(1ULL << 10));
  } else {
    std::snprintf(buf, buflen, "%zu B", bytes);
  }
  return buf;
}

}  // namespace picasso::util
