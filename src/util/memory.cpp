#include "util/memory.hpp"

#include <sys/resource.h>

#include <cstdio>

namespace picasso::util {

std::size_t peak_rss_bytes() noexcept {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is reported in kilobytes on Linux.
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

const char* format_bytes(std::size_t bytes, char* buf, std::size_t buflen) {
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, buflen, "%.2f GB", b / static_cast<double>(1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, buflen, "%.2f MB", b / static_cast<double>(1ULL << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, buflen, "%.2f KB", b / static_cast<double>(1ULL << 10));
  } else {
    std::snprintf(buf, buflen, "%zu B", bytes);
  }
  return buf;
}

}  // namespace picasso::util
