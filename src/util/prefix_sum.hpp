#pragma once
// Exclusive prefix sums (scans), the workhorse of COO -> CSR conversion both
// on the host and in the simulated device pipeline (Algorithm 3, Line 4).

#include <cstddef>
#include <vector>

#ifdef PICASSO_HAVE_OPENMP
#include <omp.h>
#endif

namespace picasso::util {

/// In-place exclusive scan: v[i] = sum of original v[0..i). Returns the total.
template <typename T>
T exclusive_scan_inplace(std::vector<T>& v) {
  T running{0};
  for (auto& x : v) {
    T next = running + x;
    x = running;
    running = next;
  }
  return running;
}

/// Exclusive scan into an output of size counts.size() + 1, so that
/// out.back() is the total — the natural shape for CSR offsets.
template <typename T>
std::vector<T> offsets_from_counts(const std::vector<T>& counts) {
  std::vector<T> offsets(counts.size() + 1);
  T running{0};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i] = running;
    running += counts[i];
  }
  offsets[counts.size()] = running;
  return offsets;
}

/// Two-pass blocked parallel exclusive scan. Falls back to the sequential
/// version without OpenMP or for small inputs where thread startup dominates.
/// Returns the total of the original values.
template <typename T>
T parallel_exclusive_scan_inplace(std::vector<T>& v) {
#ifdef PICASSO_HAVE_OPENMP
  const std::size_t n = v.size();
  const int threads = omp_get_max_threads();
  if (threads <= 1 || n < (1u << 16)) return exclusive_scan_inplace(v);

  const std::size_t block = (n + static_cast<std::size_t>(threads) - 1) /
                            static_cast<std::size_t>(threads);
  // block_sums has one extra slot so its own exclusive scan yields the total.
  std::vector<T> block_sums(static_cast<std::size_t>(threads) + 1, T{0});

#pragma omp parallel num_threads(threads)
  {
    const auto t = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t lo = t * block;
    const std::size_t hi = lo + block < n ? lo + block : n;

    // Pass 1: per-block sums.
    T sum{0};
    for (std::size_t i = lo; i < hi; ++i) sum += v[i];
    block_sums[t] = sum;
#pragma omp barrier
#pragma omp single
    { exclusive_scan_inplace(block_sums); }  // block_sums.back() = total

    // Pass 2: scan each block, offset by the preceding blocks' sum.
    T running = block_sums[t];
    for (std::size_t i = lo; i < hi; ++i) {
      T next = running + v[i];
      v[i] = running;
      running = next;
    }
  }
  return block_sums.back();
#else
  return exclusive_scan_inplace(v);
#endif
}

}  // namespace picasso::util
