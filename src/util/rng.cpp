#include "util/rng.hpp"

#include <algorithm>

namespace picasso::util {

Xoshiro256 keyed_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b) noexcept {
  SplitMix64 sm(seed ^ 0x6a09e667f3bcc909ULL);
  std::uint64_t s = sm.next();
  s ^= a * 0xff51afd7ed558ccdULL;
  SplitMix64 sm2(s);
  s = sm2.next() ^ (b * 0xc4ceb9fe1a85ec53ULL);
  SplitMix64 sm3(s);
  return Xoshiro256(sm3.next());
}

std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                      std::uint32_t k,
                                                      Xoshiro256& rng) {
  if (k > n) k = n;
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;

  // Floyd's algorithm: for j = n-k .. n-1 pick t in [0, j]; insert t unless
  // already present, in which case insert j. Guarantees uniformity over all
  // k-subsets. Membership test on the (small, ≤ L) output via linear scan is
  // faster than a hash set at these sizes.
  auto contains = [&out](std::uint32_t x) {
    return std::find(out.begin(), out.end(), x) != out.end();
  };
  for (std::uint32_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(rng.bounded(j + 1));
    out.push_back(contains(t) ? j : t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace picasso::util
