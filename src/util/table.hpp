#pragma once
// Console table / CSV emission for the benchmark harnesses. Each bench binary
// prints the same rows the corresponding paper table or figure reports.

#include <string>
#include <vector>

namespace picasso::util {

/// Column-aligned console table with an optional CSV dump.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; cells are already formatted strings.
  void add_row(std::vector<std::string> cells);

  /// Renders an aligned ASCII table.
  std::string to_string() const;

  /// Comma-separated form (no alignment padding).
  std::string to_csv() const;

  /// Prints to stdout with a title banner.
  void print(const std::string& title) const;

  std::size_t rows() const { return rows_.size(); }

  // Cell formatting helpers.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);
  static std::string fmt_bytes(std::size_t bytes);
  static std::string fmt_pct(double v, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace picasso::util
