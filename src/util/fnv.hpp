#pragma once
// FNV-1a fingerprints.
//
// One canonical implementation of the 64-bit FNV-1a hash the project uses
// for replay fingerprints: the coloring hash the CI baseline pins exactly
// (bench_incremental / bench_table4_memory), the problem hash keying the
// service result cache (service/server.hpp), and ad-hoc identity checks in
// tests. Byte order is fixed (values are folded little-endian, lowest byte
// first) so fingerprints compare bit-for-bit across machines.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/packed_colors.hpp"

namespace picasso::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a_byte(std::uint64_t h, std::uint8_t byte) noexcept {
  return (h ^ byte) * kFnvPrime;
}

inline std::uint64_t fnv1a_u32(std::uint64_t h, std::uint32_t v) noexcept {
  for (int shift = 0; shift < 32; shift += 8) {
    h = fnv1a_byte(h, static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }
  return h;
}

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int shift = 0; shift < 64; shift += 8) {
    h = fnv1a_byte(h, static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }
  return h;
}

/// Folds a double through its IEEE-754 bit pattern (the params that enter
/// the problem hash are exact user inputs, not computed values, so bitwise
/// identity is the right equality).
inline std::uint64_t fnv1a_f64(std::uint64_t h, double v) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return fnv1a_u64(h, bits);
}

inline std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                                 std::size_t len) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) h = fnv1a_byte(h, p[i]);
  return h;
}

/// The replay fingerprint of a coloring: FNV-1a over the color sequence,
/// each color folded as four little-endian bytes. Identical to the hash
/// bench_incremental has always emitted, so baseline values carry over.
inline std::uint64_t coloring_fingerprint(
    const std::vector<std::uint32_t>& colors) noexcept {
  std::uint64_t h = kFnvOffsetBasis;
  for (std::uint32_t c : colors) h = fnv1a_u32(h, c);
  return h;
}

inline std::uint64_t coloring_fingerprint(const PackedColorArray& colors) {
  std::uint64_t h = kFnvOffsetBasis;
  for (std::uint32_t c : colors) h = fnv1a_u32(h, c);
  return h;
}

}  // namespace picasso::util
