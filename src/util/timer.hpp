#pragma once
// Wall-clock timing helpers used by the per-phase instrumentation in the
// Picasso driver and by the benchmark harnesses.

#include <chrono>
#include <string>

namespace picasso::util {

/// Simple monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double on scope exit; used to attribute
/// time to the "assignment / conflict graph / conflict coloring" phases that
/// Fig. 3 of the paper breaks down.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) noexcept : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  WallTimer timer_;
};

/// Formats a duration with a sensible unit (ns/us/ms/s).
std::string format_duration(double seconds);

}  // namespace picasso::util
