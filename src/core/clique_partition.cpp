#include "core/clique_partition.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace picasso::core {

const char* to_string(GroupingMode m) noexcept {
  switch (m) {
    case GroupingMode::Unitary: return "unitary (anticommute)";
    case GroupingMode::GeneralCommute: return "general-commute";
    case GroupingMode::QubitWiseCommute: return "qubit-wise-commute";
  }
  return "?";
}

bool pair_satisfies(const pauli::PauliSet& set, GroupingMode mode,
                    std::uint32_t a, std::uint32_t b) {
  switch (mode) {
    case GroupingMode::Unitary:
      return set.anticommute(a, b);
    case GroupingMode::GeneralCommute:
      return !set.anticommute(a, b);
    case GroupingMode::QubitWiseCommute:
      return set.qubit_wise_commute(a, b);
  }
  return false;
}

std::vector<UnitaryGroup> groups_from_coloring(
    const pauli::PauliSet& set, const std::vector<std::uint32_t>& colors) {
  std::map<std::uint32_t, UnitaryGroup> by_color;
  for (std::uint32_t v = 0; v < colors.size(); ++v) {
    by_color[colors[v]].members.push_back(v);
  }
  std::vector<UnitaryGroup> groups;
  groups.reserve(by_color.size());
  for (auto& [color, group] : by_color) {
    double norm_sq = 0.0;
    for (std::uint32_t v : group.members) {
      const double p = set.coefficient(v);
      norm_sq += p * p;
    }
    group.coefficient_norm = std::sqrt(norm_sq);
    groups.push_back(std::move(group));
  }
  // Deterministic order: by smallest member id.
  std::sort(groups.begin(), groups.end(),
            [](const UnitaryGroup& a, const UnitaryGroup& b) {
              return a.members.front() < b.members.front();
            });
  return groups;
}

PartitionResult partition_pauli_strings(const pauli::PauliSet& set,
                                        const PicassoParams& params,
                                        GroupingMode mode) {
  PartitionResult result;
  switch (mode) {
    case GroupingMode::Unitary:
      result.coloring = solve_pauli(set, params);
      break;
    case GroupingMode::GeneralCommute: {
      // The coloring graph of commute-cliques is the anticommute graph.
      const graph::AnticommuteOracle oracle(set);
      result.coloring = solve_oracle(oracle, params);
      break;
    }
    case GroupingMode::QubitWiseCommute: {
      const graph::QwcComplementOracle oracle(set);
      result.coloring = solve_oracle(oracle, params);
      break;
    }
  }
  result.groups = groups_from_coloring(set, result.coloring.colors);
  return result;
}

std::string verify_partition(const pauli::PauliSet& set,
                             const std::vector<UnitaryGroup>& groups,
                             GroupingMode mode) {
  std::vector<char> seen(set.size(), 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const auto& members = groups[g].members;
    if (members.empty()) {
      return "group " + std::to_string(g) + " is empty";
    }
    for (std::uint32_t v : members) {
      if (v >= set.size()) {
        return "group " + std::to_string(g) + " has out-of-range member";
      }
      if (seen[v]) {
        return "vertex " + std::to_string(v) + " appears in two groups";
      }
      seen[v] = 1;
    }
    // Clique check in the anticommutation graph: singletons always valid.
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (!pair_satisfies(set, mode, members[i], members[j])) {
          return "group " + std::to_string(g) + ": strings " +
                 std::to_string(members[i]) + " and " +
                 std::to_string(members[j]) + " violate " +
                 std::string(to_string(mode));
        }
      }
    }
  }
  for (std::uint32_t v = 0; v < set.size(); ++v) {
    if (!seen[v]) return "vertex " + std::to_string(v) + " not covered";
  }
  return {};
}

}  // namespace picasso::core
