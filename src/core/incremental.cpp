#include "core/incremental.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "core/solve_fused.hpp"
#include "graph/oracles.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace picasso::core {

namespace {

// Candidate batch size for the bucket strike, matching the fused engine's
// blocked pair-scan granularity.
constexpr std::size_t kInsertBatch = 256;

bool supports_disjoint(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t words) noexcept {
  std::uint64_t acc = 0;
  for (std::size_t k = 0; k < words; ++k) acc |= a[k] & b[k];
  return acc == 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Probers: one conflict-edge tester per (store, backend) combination. All
// four answer the identical relation (edge ⇔ the strings do NOT
// anticommute), so the insertion outcome is backend- and storage-invariant;
// they differ only in which kernels run and which counters tick.

class FusedState::Prober {
 public:
  virtual ~Prober() = default;

  /// Pins vertex `u` for subsequent edges() calls and returns its packed
  /// [x|z] record (rec_words per plane), valid until the next set_u() or
  /// member_record() call.
  virtual const std::uint64_t* set_u(std::uint32_t u) = 0;

  /// out[k] = conflict-edge(u, ids[k]) for k in [0, count).
  virtual void edges(const std::uint32_t* ids, std::size_t count,
                     std::uint8_t* out) = 0;

  /// Packed record of vertex `m` (signature rebuilds); valid until the next
  /// member_record() or set_u() call.
  virtual const std::uint64_t* member_record(std::uint32_t m) = 0;
};

class FusedState::InMemoryPackedProber : public FusedState::Prober {
 public:
  InMemoryPackedProber(const pauli::PauliSet& store, pauli::SimdLevel simd)
      : oracle_(store.packed_view(), simd), view_(store.packed_view()) {}

  const std::uint64_t* set_u(std::uint32_t u) override {
    u_ = u;
    return view_.record(u);
  }

  void edges(const std::uint32_t* ids, std::size_t count,
             std::uint8_t* out) override {
    obs::count(oracle_.simd_level() == pauli::SimdLevel::Avx2
                   ? obs::Counter::EdgeBlockCallsAvx2
                   : obs::Counter::EdgeBlockCallsScalar);
    obs::count(obs::Counter::OraclePairEvals, count);
    oracle_.edge_block(u_, ids, count, out);
  }

  const std::uint64_t* member_record(std::uint32_t m) override {
    return view_.record(m);
  }

 private:
  graph::PackedComplementOracle oracle_;
  pauli::PackedView view_;
  std::uint32_t u_ = 0;
};

class FusedState::InMemoryScalarProber : public FusedState::Prober {
 public:
  explicit InMemoryScalarProber(const pauli::PauliSet& store)
      : store_(&store), view_(store.packed_view()) {}

  const std::uint64_t* set_u(std::uint32_t u) override {
    u_ = u;
    return view_.record(u);
  }

  void edges(const std::uint32_t* ids, std::size_t count,
             std::uint8_t* out) override {
    obs::count(obs::Counter::OraclePairEvals, count);
    for (std::size_t k = 0; k < count; ++k) {
      out[k] = static_cast<std::uint8_t>(ids[k] != u_ &&
                                         !store_->anticommute(u_, ids[k]));
    }
  }

  const std::uint64_t* member_record(std::uint32_t m) override {
    return view_.record(m);
  }

 private:
  const pauli::PauliSet* store_;
  pauli::PackedView view_;
  std::uint32_t u_ = 0;
};

class FusedState::SpilledPackedProber : public FusedState::Prober {
 public:
  SpilledPackedProber(pauli::PackedPauliChunkCache& cache,
                      const pauli::ChunkedPauliReader& reader,
                      pauli::SimdLevel simd)
      : cache_(&cache),
        spc_(reader.strings_per_chunk()),
        words_(pauli::packed_words(reader.num_qubits())),
        simd_(pauli::resolve_simd_level(simd)),
        kernel_(pauli::resolve_block_kernel(words_, simd_)) {}

  const std::uint64_t* set_u(std::uint32_t u) override {
    u_ = u;
    u_chunk_ = cache_->get(u / spc_);
    const std::uint64_t* rec = u_chunk_->record(u % spc_);
    swapped_.resize(2 * words_);
    pauli::make_swapped_record(rec, words_, swapped_.data());
    return rec;
  }

  void edges(const std::uint32_t* ids, std::size_t count,
             std::uint8_t* out) override {
    // Contiguous same-chunk runs share one pin and one kernel call; runs
    // are scanned serially so the chunk-cache traffic is deterministic.
    std::size_t i = 0;
    while (i < count) {
      const std::size_t chunk = ids[i] / spc_;
      std::size_t j = i + 1;
      while (j < count && ids[j] / spc_ == chunk) ++j;
      auto pin = cache_->get(chunk);
      const std::uint32_t base = static_cast<std::uint32_t>(chunk * spc_);
      rel_.resize(j - i);
      for (std::size_t k = i; k < j; ++k) rel_[k - i] = ids[k] - base;
      obs::count(simd_ == pauli::SimdLevel::Avx2
                     ? obs::Counter::EdgeBlockCallsAvx2
                     : obs::Counter::EdgeBlockCallsScalar);
      obs::count(obs::Counter::OraclePairEvals, j - i);
      kernel_(swapped_.data(), pin->view().data, words_, rel_.data(), j - i,
              out + i);
      for (std::size_t k = i; k < j; ++k) {
        const bool anti = out[k] != 0;
        out[k] = static_cast<std::uint8_t>(ids[k] != u_ && !anti);
      }
      i = j;
    }
  }

  const std::uint64_t* member_record(std::uint32_t m) override {
    member_chunk_ = cache_->get(m / spc_);
    return member_chunk_->record(m % spc_);
  }

 private:
  pauli::PackedPauliChunkCache* cache_;
  std::size_t spc_;
  std::size_t words_;
  pauli::SimdLevel simd_;
  pauli::AnticommuteBlockFn kernel_;
  std::shared_ptr<const pauli::PackedPauliSet> u_chunk_;
  std::shared_ptr<const pauli::PackedPauliSet> member_chunk_;
  std::vector<std::uint64_t> swapped_;
  std::vector<std::uint32_t> rel_;
  std::uint32_t u_ = 0;
};

class FusedState::SpilledScalarProber : public FusedState::Prober {
 public:
  SpilledScalarProber(pauli::PauliChunkCache& cache,
                      const pauli::ChunkedPauliReader& reader)
      : cache_(&cache), spc_(reader.strings_per_chunk()) {}

  const std::uint64_t* set_u(std::uint32_t u) override {
    u_ = u;
    u_chunk_ = cache_->get(u / spc_);
    u_local_ = u % spc_;
    return u_chunk_->packed_view().record(u_local_);
  }

  void edges(const std::uint32_t* ids, std::size_t count,
             std::uint8_t* out) override {
    const std::uint64_t* u_enc = u_chunk_->encoded3(u_local_);
    const std::size_t words3 = u_chunk_->words_per_string();
    std::size_t i = 0;
    while (i < count) {
      const std::size_t chunk = ids[i] / spc_;
      std::size_t j = i + 1;
      while (j < count && ids[j] / spc_ == chunk) ++j;
      auto pin = cache_->get(chunk);
      obs::count(obs::Counter::OraclePairEvals, j - i);
      for (std::size_t k = i; k < j; ++k) {
        const std::size_t local = ids[k] - chunk * spc_;
        const bool anti =
            pauli::anticommute3(u_enc, pin->encoded3(local), words3);
        out[k] = static_cast<std::uint8_t>(ids[k] != u_ && !anti);
      }
      i = j;
    }
  }

  const std::uint64_t* member_record(std::uint32_t m) override {
    member_chunk_ = cache_->get(m / spc_);
    return member_chunk_->packed_view().record(m % spc_);
  }

 private:
  pauli::PauliChunkCache* cache_;
  std::size_t spc_;
  std::shared_ptr<const pauli::PauliSet> u_chunk_;
  std::shared_ptr<const pauli::PauliSet> member_chunk_;
  std::size_t u_local_ = 0;
  std::uint32_t u_ = 0;
};

// ---------------------------------------------------------------------------
// FusedState.

struct FusedState::SpillGuard {
  std::string path;
  explicit SpillGuard(std::string p) : path(std::move(p)) {}
  SpillGuard(const SpillGuard&) = delete;
  SpillGuard& operator=(const SpillGuard&) = delete;
  ~SpillGuard() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    // Packed-color sidecar written next to the spill (see update_pauli).
    std::filesystem::remove(path + ".colors", ec);
  }
};

FusedState::FusedState(PicassoParams params, UpdateParams update_params)
    : params_(std::move(params)), update_params_(update_params) {}

FusedState::~FusedState() = default;
FusedState::FusedState(FusedState&&) noexcept = default;
FusedState& FusedState::operator=(FusedState&&) noexcept = default;

void FusedState::use_spill(std::string path, std::size_t chunk_strings) {
  if (!colors_.empty()) {
    throw std::logic_error(
        "FusedState::use_spill: must be configured before any ingest");
  }
  if (chunk_strings == 0) {
    throw std::invalid_argument(
        "FusedState::use_spill: chunk_strings must be positive");
  }
  use_spill_ = true;
  spill_path_ = std::move(path);
  chunk_strings_ = chunk_strings;
}

std::size_t FusedState::spill_bytes() const {
  if (!use_spill_ || !spill_guard_) return 0;
  std::error_code ec;
  const auto size = std::filesystem::file_size(spill_path_, ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

std::uint32_t FusedState::distinct_colors() const {
  std::uint32_t used = 0;
  for (const auto& bucket : buckets_) used += bucket.empty() ? 0 : 1;
  return used;
}

void FusedState::or_signature(std::uint32_t color, const std::uint64_t* sup) {
  std::uint64_t* sig = sigs_.data() + static_cast<std::size_t>(color) *
                                          sig_words_;
  for (std::size_t k = 0; k < sig_words_; ++k) sig[k] |= sup[k];
}

void FusedState::rebuild_from_colors(
    const std::vector<std::uint32_t>& prefix_colors) {
  std::uint32_t max_color = 0;
  for (std::uint32_t c : prefix_colors) max_color = std::max(max_color, c);
  total_colors_ =
      prefix_colors.empty() ? 0 : max_color + 1;  // never compacted
  for (std::size_t i = 0; i < prefix_colors.size(); ++i) {
    colors_[i] = prefix_colors[i];
  }
  buckets_.assign(total_colors_, {});
  for (std::size_t i = 0; i < prefix_colors.size(); ++i) {
    buckets_[prefix_colors[i]].push_back(static_cast<std::uint32_t>(i));
  }
  sigs_.assign(static_cast<std::size_t>(total_colors_) * sig_words_, 0);
}

std::size_t FusedState::signature_words(std::size_t rec_words) const {
  if (!params_.sketch_prefilter || rec_words == 0) return rec_words;
  // params_.sketch_words counts 32-bit words (the fused-engine
  // convention); these signatures are 64-bit, so halve rounding up.
  const std::size_t w =
      params_.sketch_words != 0 ? (params_.sketch_words + 1) / 2 : 1;
  return std::min(std::max<std::size_t>(w, 1), rec_words);
}

void FusedState::fold_support(const std::uint64_t* rec,
                              std::uint64_t* out) const {
  if (sig_words_ == 0) return;
  for (std::size_t k = 0; k < sig_words_; ++k) out[k] = 0;
  for (std::size_t k = 0; k < rec_words_; ++k) {
    out[k % sig_words_] |= rec[k] | rec[rec_words_ + k];
  }
}

void FusedState::rebuild_signatures(Prober& prober) {
  std::vector<std::uint64_t> sup(sig_words_);
  for (std::size_t v = 0; v < cursor_; ++v) {
    const std::uint64_t* rec = prober.member_record(
        static_cast<std::uint32_t>(v));
    fold_support(rec, sup.data());
    or_signature(colors_[v], sup.data());
  }
}

void FusedState::reopen_reader() {
  // Caches hold a reference into the reader; drop them first. Recreating
  // also discards any stale last-partial-chunk entries from before the
  // append.
  packed_cache_.reset();
  chunk_cache_.reset();
  reader_ = std::make_unique<pauli::ChunkedPauliReader>(spill_path_,
                                                        chunk_strings_);
  packed_cache_ = std::make_unique<pauli::PackedPauliChunkCache>(*reader_);
  chunk_cache_ = std::make_unique<pauli::PauliChunkCache>(*reader_);
}

std::unique_ptr<FusedState::Prober> FusedState::make_prober() const {
  const PauliBackend backend = resolve_backend(params_.pauli_backend);
  const pauli::SimdLevel simd = backend == PauliBackend::PackedScalar
                                    ? pauli::SimdLevel::Scalar
                                    : pauli::SimdLevel::Auto;
  if (use_spill_) {
    if (backend == PauliBackend::Scalar) {
      return std::make_unique<SpilledScalarProber>(*chunk_cache_, *reader_);
    }
    return std::make_unique<SpilledPackedProber>(*packed_cache_, *reader_,
                                                 simd);
  }
  if (backend == PauliBackend::Scalar) {
    return std::make_unique<InMemoryScalarProber>(store_);
  }
  return std::make_unique<InMemoryPackedProber>(store_, simd);
}

void FusedState::adopt_pauli_solution(const pauli::PauliSet& set,
                                      const PicassoResult& result) {
  if (kind_ != Kind::Unset || !colors_.empty()) {
    throw std::logic_error(
        "FusedState::adopt_pauli_solution: state already has records");
  }
  if (result.colors.size() != set.size()) {
    throw std::invalid_argument(
        "FusedState::adopt_pauli_solution: coloring size mismatch");
  }
  kind_ = Kind::Pauli;
  num_qubits_ = set.num_qubits();
  rec_words_ = pauli::packed_words(num_qubits_);
  sig_words_ = signature_words(rec_words_);
  colors_.assign(set.size(), kUncolored);
  if (use_spill_) {
    spill_pauli_set(set, spill_path_);
    spill_guard_ = std::make_unique<SpillGuard>(spill_path_);
    reopen_reader();
  } else {
    store_ = set;
  }
  cursor_ = set.size();
  rebuild_from_colors(result.colors);
  if (cursor_ > 0) {
    auto prober = make_prober();
    rebuild_signatures(*prober);
  }
}

void FusedState::adopt_graph_solution(const std::vector<std::uint32_t>& colors) {
  if (kind_ != Kind::Unset || !colors_.empty()) {
    throw std::logic_error(
        "FusedState::adopt_graph_solution: state already has records");
  }
  kind_ = Kind::Graph;
  colors_ = colors;
  cursor_ = colors.size();
  graph_base_ = colors.size();
  rebuild_from_colors(colors);
}

void FusedState::ingest_pauli(const pauli::PauliSet& delta) {
  if (delta.empty()) return;
  if (kind_ == Kind::Graph) {
    throw std::invalid_argument(
        "FusedState: Pauli delta on a graph-backed state");
  }
  kind_ = Kind::Pauli;
  if (num_qubits_ == 0) {
    num_qubits_ = delta.num_qubits();
    rec_words_ = pauli::packed_words(num_qubits_);
    sig_words_ = signature_words(rec_words_);
  } else if (delta.num_qubits() != num_qubits_) {
    throw std::invalid_argument("FusedState: delta qubit count mismatch");
  }
  if (use_spill_) {
    if (!spill_guard_) {
      spill_pauli_set(delta, spill_path_);
      spill_guard_ = std::make_unique<SpillGuard>(spill_path_);
    } else {
      append_pauli_set(delta, spill_path_);
    }
    reopen_reader();
  } else {
    store_.append(delta);
  }
  colors_.resize(colors_.size() + delta.size(), kUncolored);
}

namespace {

/// True when `v` (pinned in `prober`) shares no conflict edge with any
/// bucket member; early-exits on the first edge.
bool bucket_admits(FusedState::Prober& prober,
                   const std::vector<std::uint32_t>& bucket,
                   std::vector<std::uint8_t>& hits) {
  const std::size_t n = bucket.size();
  for (std::size_t i = 0; i < n; i += kInsertBatch) {
    const std::size_t len = std::min(kInsertBatch, n - i);
    hits.resize(len);
    prober.edges(bucket.data() + i, len, hits.data());
    for (std::size_t k = 0; k < len; ++k) {
      if (hits[k]) return false;
    }
  }
  return true;
}

}  // namespace

void FusedState::open_fresh_color(std::uint32_t v, const std::uint64_t* sup_v,
                                  UpdateStats& stats) {
  colors_[v] = total_colors_;
  buckets_.emplace_back(1, v);
  sigs_.resize((static_cast<std::size_t>(total_colors_) + 1) * sig_words_, 0);
  ++total_colors_;
  if (sup_v != nullptr) or_signature(total_colors_ - 1, sup_v);
  ++fresh_colors_;
  ++stats.fresh_colors;
  obs::count(obs::Counter::UpdateFreshColors);
}

bool FusedState::try_recolor(Prober& prober, std::uint32_t v,
                             const std::uint64_t* sup_v, UpdateStats& stats) {
  ++stats.recolor_attempts;
  // Runs only when every bucket is nonempty and blocked. Full-scan each
  // bucket for its exact blocking set; the relocation candidate is the
  // color with the fewest blockers (ties: lowest color) within the
  // max_recolor cap.
  std::vector<std::uint8_t> hits;
  std::uint32_t best_color = kUncolored;
  std::vector<std::uint32_t> best_blockers;
  for (std::uint32_t c = 0; c < total_colors_; ++c) {
    const auto& bucket = buckets_[c];
    ++stats.bucket_probes;
    obs::count(obs::Counter::UpdateBucketProbes);
    std::vector<std::uint32_t> blockers;
    if (params_.sketch_prefilter) obs::count(obs::Counter::SketchProbes);
    if (supports_disjoint(sup_v, sigs_.data() + static_cast<std::size_t>(c) *
                                                    sig_words_,
                          sig_words_)) {
      // Disjoint supports: v commutes with — conflicts with — every member.
      if (params_.sketch_prefilter) obs::count(obs::Counter::SketchHits);
      blockers = bucket;
    } else {
      hits.resize(bucket.size());
      prober.edges(bucket.data(), bucket.size(), hits.data());
      for (std::size_t k = 0; k < bucket.size(); ++k) {
        if (hits[k]) blockers.push_back(bucket[k]);
      }
    }
    if (!blockers.empty() && blockers.size() <= update_params_.max_recolor &&
        (best_color == kUncolored ||
         blockers.size() < best_blockers.size())) {
      best_color = c;
      best_blockers = std::move(blockers);
    }
  }
  if (best_color == kUncolored) return false;

  // Pull the blockers out, then relocate each (in bucket order) to the
  // first other nonempty bucket that admits it — sequentially, so earlier
  // relocations are visible to later feasibility tests.
  const std::vector<std::uint32_t> saved_bucket = buckets_[best_color];
  {
    auto& bucket = buckets_[best_color];
    std::size_t w = 0, bi = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (bi < best_blockers.size() && bucket[i] == best_blockers[bi]) {
        ++bi;
        continue;
      }
      bucket[w++] = bucket[i];
    }
    bucket.resize(w);
  }

  struct Move {
    std::uint32_t vertex;
    std::uint32_t to;
  };
  std::vector<Move> moves;
  std::vector<std::uint64_t> sup_b(sig_words_);
  bool ok = true;
  for (std::uint32_t b : best_blockers) {
    const std::uint64_t* rec = prober.set_u(b);
    fold_support(rec, sup_b.data());
    std::uint32_t target = kUncolored;
    for (std::uint32_t d = 0; d < total_colors_; ++d) {
      if (d == best_color) continue;
      const auto& bucket = buckets_[d];
      if (bucket.empty()) continue;  // relocations reuse existing colors only
      ++stats.bucket_probes;
      obs::count(obs::Counter::UpdateBucketProbes);
      if (params_.sketch_prefilter) obs::count(obs::Counter::SketchProbes);
      if (supports_disjoint(sup_b.data(),
                            sigs_.data() + static_cast<std::size_t>(d) *
                                               sig_words_,
                            sig_words_)) {
        ++stats.signature_fast_exits;
        obs::count(obs::Counter::SignatureFastExits);
        if (params_.sketch_prefilter) obs::count(obs::Counter::SketchHits);
        continue;
      }
      if (bucket_admits(prober, bucket, hits)) {
        target = d;
        break;
      }
      // Folded signature failed to dismiss a bucket the exact scan then
      // rejected — the sketch's (measured) false positive.
      if (params_.sketch_prefilter) {
        obs::count(obs::Counter::SketchFalsePositives);
      }
    }
    if (target == kUncolored) {
      ok = false;
      break;
    }
    buckets_[target].push_back(b);
    or_signature(target, sup_b.data());
    colors_[b] = target;
    moves.push_back({b, target});
  }

  if (!ok) {
    // Roll back in reverse: every relocation appended to its target's
    // back, so LIFO pops restore the exact pre-attempt bucket contents.
    // Target signatures stay as (sound) supersets.
    for (auto it = moves.rbegin(); it != moves.rend(); ++it) {
      buckets_[it->to].pop_back();
      colors_[it->vertex] = best_color;
    }
    buckets_[best_color] = saved_bucket;
    return false;
  }

  stats.recolor_moves += static_cast<std::uint32_t>(moves.size());
  obs::count(obs::Counter::UpdateRecolorMoves, moves.size());
  colors_[v] = best_color;
  buckets_[best_color].push_back(v);
  if (sup_v != nullptr) or_signature(best_color, sup_v);
  return true;
}

void FusedState::escalate(const StopToken& stop, const ProgressFn& progress,
                          UpdateStats& stats) {
  ++stats.escalations;
  obs::count(obs::Counter::UpdateEscalations);
  PicassoParams params = params_;
  params.stop = stop;
  params.progress = progress;
  PicassoResult result;
  if (use_spill_) {
    // Re-solve exactly the ingested prefix of the still-growing spill.
    pauli::ChunkedPauliReader prefix(spill_path_, chunk_strings_, cursor_);
    result = solve_pauli_chunked_fused(prefix, params);
  } else {
    result = solve_pauli_fused(store_.prefix(cursor_), params);
  }
  rebuild_from_colors(result.colors);
  auto prober = make_prober();
  rebuild_signatures(*prober);
  fresh_colors_ = 0;
}

void FusedState::color_pauli_backlog(const StopToken& stop,
                                     const ProgressFn& progress,
                                     UpdateStats& stats) {
  const std::size_t total = colors_.size();
  if (cursor_ >= total) return;
  auto prober = make_prober();
  std::vector<std::uint8_t> hits;
  std::vector<std::uint64_t> sup(sig_words_);
  while (cursor_ < total) {
    detail::throw_if_stopped(stop);
    const auto v = static_cast<std::uint32_t>(cursor_);
    const std::uint64_t* rec = prober->set_u(v);
    fold_support(rec, sup.data());

    // Phase 1: lowest feasible color wins. An empty bucket (an unused
    // palette slot) is immediately feasible, so fresh colors only open
    // once the whole allocated range is blocked.
    std::uint32_t chosen = kUncolored;
    for (std::uint32_t c = 0; c < total_colors_; ++c) {
      ++stats.bucket_probes;
      obs::count(obs::Counter::UpdateBucketProbes);
      const auto& bucket = buckets_[c];
      if (bucket.empty()) {
        chosen = c;
        break;
      }
      if (params_.sketch_prefilter) obs::count(obs::Counter::SketchProbes);
      if (supports_disjoint(sup.data(),
                            sigs_.data() + static_cast<std::size_t>(c) *
                                               sig_words_,
                            sig_words_)) {
        ++stats.signature_fast_exits;
        obs::count(obs::Counter::SignatureFastExits);
        if (params_.sketch_prefilter) obs::count(obs::Counter::SketchHits);
        continue;
      }
      if (bucket_admits(*prober, bucket, hits)) {
        chosen = c;
        break;
      }
      if (params_.sketch_prefilter) {
        obs::count(obs::Counter::SketchFalsePositives);
      }
    }

    if (chosen != kUncolored) {
      colors_[v] = chosen;
      buckets_[chosen].push_back(v);
      or_signature(chosen, sup.data());
    } else if (update_params_.max_recolor == 0 ||
               !try_recolor(*prober, v, sup.data(), stats)) {
      open_fresh_color(v, sup.data(), stats);
    }
    ++cursor_;
    ++stats.vertices_inserted;
    obs::count(obs::Counter::UpdateVerticesInserted);

    if (update_params_.max_new_colors > 0 &&
        fresh_colors_ > update_params_.max_new_colors) {
      escalate(stop, progress, stats);
      prober = make_prober();
    }

    if (progress) {
      ProgressEvent event;
      event.stage = ProgressStage::VertexInserted;
      event.colored = static_cast<std::uint32_t>(cursor_);
      event.n_active = static_cast<std::uint32_t>(total - cursor_);
      event.conflict_edges = stats.recolor_moves;
      event.bucket_scans = stats.bucket_probes;
      progress(event);
    }
  }
}

UpdateStats FusedState::update_pauli(const pauli::PauliSet& delta,
                                     const StopToken& stop,
                                     const ProgressFn& progress) {
  util::WallTimer timer;
  UpdateStats stats;
  ingest_pauli(delta);
  color_pauli_backlog(stop, progress, stats);
  if (use_spill_ && spill_guard_) {
    // Persist the packed coloring next to the spill so a .pset tail on
    // disk carries its colors too (read back via read_spill_colors).
    pauli::write_spill_colors(spill_path_ + ".colors", colors_);
  }
  stats.num_vertices = static_cast<std::uint32_t>(cursor_);
  stats.num_colors = distinct_colors();
  stats.seconds = timer.seconds();
  return stats;
}

UpdateStats FusedState::update_graph(const std::vector<GraphVertexDelta>& delta,
                                     const StopToken& stop,
                                     const ProgressFn& progress) {
  util::WallTimer timer;
  UpdateStats stats;
  if (kind_ == Kind::Pauli) {
    throw std::invalid_argument(
        "FusedState: graph delta on a Pauli-backed state");
  }
  kind_ = Kind::Graph;

  // Ingest first (cancel-consistency, matching the Pauli path).
  for (const GraphVertexDelta& dv : delta) {
    const auto id = static_cast<std::uint32_t>(colors_.size());
    for (std::uint32_t nbr : dv.conflicts) {
      if (nbr >= id) {
        throw std::invalid_argument(
            "FusedState: graph delta conflicts must reference strictly "
            "earlier vertices");
      }
    }
    graph_adj_.push_back(dv.conflicts);
    colors_.push_back(kUncolored);
  }

  const std::size_t total = colors_.size();
  std::vector<std::uint8_t> forbidden;
  while (cursor_ < total) {
    detail::throw_if_stopped(stop);
    const auto v = static_cast<std::uint32_t>(cursor_);
    const auto& conflicts = graph_adj_[v - graph_base_];
    forbidden.assign(total_colors_, 0);
    for (std::uint32_t nbr : conflicts) {
      const std::uint32_t c = colors_[nbr];
      if (c != kUncolored && c < total_colors_) forbidden[c] = 1;
    }
    std::uint32_t chosen = kUncolored;
    for (std::uint32_t c = 0; c < total_colors_; ++c) {
      ++stats.bucket_probes;
      obs::count(obs::Counter::UpdateBucketProbes);
      if (!forbidden[c]) {
        chosen = c;
        break;
      }
    }
    if (chosen != kUncolored) {
      colors_[v] = chosen;
      buckets_[chosen].push_back(v);
    } else {
      open_fresh_color(v, nullptr, stats);
    }
    ++cursor_;
    ++stats.vertices_inserted;
    obs::count(obs::Counter::UpdateVerticesInserted);
    if (progress) {
      ProgressEvent event;
      event.stage = ProgressStage::VertexInserted;
      event.colored = static_cast<std::uint32_t>(cursor_);
      event.n_active = static_cast<std::uint32_t>(total - cursor_);
      event.bucket_scans = stats.bucket_probes;
      progress(event);
    }
  }

  stats.num_vertices = static_cast<std::uint32_t>(cursor_);
  stats.num_colors = distinct_colors();
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace picasso::core
