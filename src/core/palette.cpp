#include "core/palette.hpp"

#include <algorithm>
#include <cmath>

namespace picasso::core {

IterationPalette compute_palette(std::uint32_t n_active, double palette_percent,
                                 double alpha, std::uint32_t base_color) {
  IterationPalette out;
  out.base_color = base_color;
  if (n_active == 0) return out;

  const double p_raw = palette_percent / 100.0 * static_cast<double>(n_active);
  out.palette_size = static_cast<std::uint32_t>(std::lround(p_raw));
  if (out.palette_size < 1) out.palette_size = 1;
  if (out.palette_size > n_active) out.palette_size = n_active;

  // L = ceil(alpha * log10 n). The paper writes "alpha log |V|" without a
  // base (asymptotically equivalent); base 10 reproduces the empirical
  // conflict-edge fractions of its Fig. 2/Table configurations (a few
  // percent of |E| in normal mode), where natural log would put L^2/P — the
  // expected conflict probability per edge — an order of magnitude higher
  // at these vertex counts.
  const double l_raw = alpha * std::log10(static_cast<double>(n_active));
  auto list = static_cast<std::uint32_t>(std::ceil(l_raw));
  if (list < 1) list = 1;
  out.list_size = std::min(list, out.palette_size);
  return out;
}

std::uint32_t ColorLists::first_shared_color(std::uint32_t u,
                                             std::uint32_t v) const {
  const auto lu = list(u);
  const auto lv = list(v);
  std::size_t i = 0, j = 0;
  while (i < lu.size() && j < lv.size()) {
    if (lu[i] == lv[j]) return lu[i];
    if (lu[i] < lv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return kNoShared;
}

void ColorLists::build_signatures() {
  const std::uint32_t n = num_vertices();
  sigs_.assign(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    std::uint64_t sig = 0;
    for (std::uint32_t c : list(v)) sig |= std::uint64_t{1} << (c & 63u);
    sigs_[v] = sig;
  }
}

ColorLists assign_random_lists(std::uint32_t num_vertices,
                               const IterationPalette& palette,
                               std::uint64_t seed, std::uint64_t iteration) {
  ColorLists lists(num_vertices, palette.list_size);
#ifdef PICASSO_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::uint32_t v = 0; v < num_vertices; ++v) {
    util::Xoshiro256 rng = util::keyed_rng(seed, iteration, v);
    const std::vector<std::uint32_t> sample = util::sample_without_replacement(
        palette.palette_size, palette.list_size, rng);
    auto dst = lists.mutable_list(v);
    std::copy(sample.begin(), sample.end(), dst.begin());
  }
  lists.build_signatures();
  return lists;
}

}  // namespace picasso::core
