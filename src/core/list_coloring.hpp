#pragma once
// Coloring the conflict graph from the per-vertex color lists (§IV-B).
//
// Dynamic scheme — Algorithm 2 of the paper: vertices bucketed by current
// list size; repeatedly pick a uniformly random vertex from the lowest
// bucket, give it a uniformly random color from its list, and strike that
// color from all conflict-neighbors' lists (O(1) bucket moves). A vertex
// whose list empties joins V_u and is retried in the next Picasso iteration.
// Total time O((|Vc| + |Ec|) L): the bucketing removes the log factor a heap
// would cost.
//
// Static schemes: color vertices in a fixed order (natural / random /
// largest-conflict-degree-first), each taking the first color of its list
// unused by already-colored conflict neighbors.
//
// The scheme bodies are templates over an abstract *neighbor enumerator*,
// with two instantiations:
//  * the CSR functions below walk a materialised conflict graph
//    (list_coloring.cpp), and
//  * the fused engine (core/solve_fused.hpp) enumerates strike targets
//    straight off the color->vertices inverted index plus the conflict
//    oracle, with no conflict CSR ever built.
// One body serving both is what makes their bit-identity structural rather
// than a property to re-prove per scheme.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <queue>
#include <vector>

#include "core/palette.hpp"
#include "graph/csr_graph.hpp"
#include "util/bucket_queue.hpp"
#include "util/packed_colors.hpp"
#include "util/rng.hpp"

namespace picasso::core {

enum class ConflictColoringScheme {
  DynamicBucket,       // Algorithm 2 (the paper's evaluated configuration)
  DynamicHeap,         // same order, binary heap instead of buckets (ablation)
  StaticNatural,
  StaticRandom,
  StaticLargestFirst,  // by conflict-graph degree, descending
};

const char* to_string(ConflictColoringScheme s) noexcept;

struct ListColoringResult {
  /// Palette-local assigned color per vertex, kNoColorLocal if uncolored.
  /// Packed sub-byte storage: colors are < P, so the width comes from the
  /// palette bound (4 bits/vertex for the common small-palette case).
  util::PackedColorArray assigned;
  std::vector<std::uint32_t> uncolored;  // V_u, ascending vertex ids
  std::uint32_t num_colored = 0;
  std::size_t aux_peak_bytes = 0;

  static constexpr std::uint32_t kNoColorLocal = 0xffffffffu;
};

/// Algorithm 2. `gc` is the conflict graph over local ids; every vertex
/// (including isolated ones, which are the unconflicted vertices of
/// Algorithm 1 Line 8) receives a color unless its list is exhausted.
ListColoringResult color_conflict_graph_dynamic(const graph::CsrGraph& gc,
                                                const ColorLists& lists,
                                                util::Xoshiro256& rng);

/// Heap-based variant of the dynamic scheme, kept as the ablation baseline
/// for the bucketing claim (§IV-B); identical coloring order policy but
/// O(log |Vc|) per update.
ListColoringResult color_conflict_graph_heap(const graph::CsrGraph& gc,
                                             const ColorLists& lists,
                                             util::Xoshiro256& rng);

/// Static-order list coloring.
ListColoringResult color_conflict_graph_static(const graph::CsrGraph& gc,
                                               const ColorLists& lists,
                                               ConflictColoringScheme scheme,
                                               std::uint64_t seed);

/// Dispatcher over all schemes.
ListColoringResult color_conflict_graph(const graph::CsrGraph& gc,
                                        const ColorLists& lists,
                                        ConflictColoringScheme scheme,
                                        util::Xoshiro256& rng);

// ---------------------------------------------------------------------------
// Generic scheme bodies. The enumerator contracts matter for bit-identity:
//
//  * ForEachStrike(v, color, assigned, strike): invoke strike(u) for
//    conflict-graph neighbors u of v, in ascending u order. It may pass any
//    neighbor (the body skips colored vertices and lists the color is absent
//    from), but must never pass a non-neighbor holding `color` — that would
//    strike a list Algorithm 2 would not touch. The CSR instantiation passes
//    every neighbor; the fused one passes the oracle-confirmed, still-
//    uncolored members of color's bucket — the same affected set in the
//    same order, which is the whole bit-identity argument.
//  * ForEachNeighbor(v, visit): invoke visit(u) for every conflict-graph
//    neighbor u of v (any order; used for the idempotent mark pass of the
//    static schemes).

namespace detail {

/// Mutable view over the (immutable, sorted) color lists: a per-vertex
/// presence bitmask tracks which entries are still alive. Removal is a
/// binary search + bit clear (O(log L)); selecting the k-th surviving color
/// is a popcount scan over ceil(L/64) words. This keeps the Algorithm-2
/// inner loop O(|Ec| log L) even in the aggressive regime where L = P and
/// a swap-removal list would cost O(|Ec| L).
class WorkingLists {
 public:
  explicit WorkingLists(const ColorLists& lists)
      : lists_(&lists),
        l_(lists.list_size()),
        words_(std::max<std::uint32_t>(1, (lists.list_size() + 63) / 64)),
        mask_(static_cast<std::size_t>(lists.num_vertices()) * words_, 0),
        size_(lists.num_vertices(), lists.list_size()) {
    for (std::uint32_t v = 0; v < lists.num_vertices(); ++v) {
      std::uint64_t* m = mask_.data() + static_cast<std::size_t>(v) * words_;
      for (std::uint32_t i = 0; i < l_; ++i) m[i >> 6] |= 1ull << (i & 63u);
    }
  }

  std::uint32_t size_of(std::uint32_t v) const { return size_[v]; }

  /// The idx-th (0-based) surviving color of v's list.
  std::uint32_t color_at(std::uint32_t v, std::uint32_t idx) const {
    const std::uint64_t* m = mask_.data() + static_cast<std::size_t>(v) * words_;
    for (std::uint32_t w = 0; w < words_; ++w) {
      const auto count = static_cast<std::uint32_t>(std::popcount(m[w]));
      if (idx < count) {
        std::uint64_t bits = m[w];
        for (std::uint32_t k = 0; k < idx; ++k) bits &= bits - 1;
        const auto bit = static_cast<std::uint32_t>(std::countr_zero(bits));
        return lists_->list(v)[w * 64 + bit];
      }
      idx -= count;
    }
    return kNotPresent;  // unreachable for idx < size_of(v)
  }

  /// Removes `color` from v's list if still present; returns the new size,
  /// or kNotPresent if absent (already removed or never sampled).
  static constexpr std::uint32_t kNotPresent = 0xffffffffu;
  std::uint32_t remove_color(std::uint32_t v, std::uint32_t color) {
    const auto list = lists_->list(v);
    const auto it = std::lower_bound(list.begin(), list.end(), color);
    if (it == list.end() || *it != color) return kNotPresent;
    const auto idx = static_cast<std::uint32_t>(it - list.begin());
    std::uint64_t& word =
        mask_[static_cast<std::size_t>(v) * words_ + (idx >> 6)];
    const std::uint64_t bit = 1ull << (idx & 63u);
    if ((word & bit) == 0) return kNotPresent;
    word &= ~bit;
    return --size_[v];
  }

  std::size_t logical_bytes() const {
    return mask_.capacity() * sizeof(std::uint64_t) +
           size_.capacity() * sizeof(std::uint32_t);
  }

 private:
  const ColorLists* lists_;
  std::uint32_t l_;
  std::uint32_t words_;
  std::vector<std::uint64_t> mask_;
  std::vector<std::uint32_t> size_;
};

/// Shared epilogue: finalize counters and sort V_u.
inline void finalize_list_coloring(ListColoringResult& result) {
  std::sort(result.uncolored.begin(), result.uncolored.end());
  result.num_colored = 0;
  for (std::uint32_t c : result.assigned) {
    result.num_colored += c != ListColoringResult::kNoColorLocal ? 1 : 0;
  }
}

/// Applies one strike to u (remove `color`, classify the outcome); shared
/// between the bucket and heap bodies so the skip rules cannot drift.
template <typename OnResize, typename OnEmpty>
void apply_strike(std::uint32_t u, std::uint32_t color, WorkingLists& work,
                  const util::PackedColorArray& assigned,
                  OnResize&& on_resize, OnEmpty&& on_empty) {
  if (assigned[u] != ListColoringResult::kNoColorLocal) return;
  const std::uint32_t new_size = work.remove_color(u, color);
  if (new_size == WorkingLists::kNotPresent) return;
  if (new_size == 0) {
    on_empty(u);
  } else {
    on_resize(u, new_size);
  }
}

/// Algorithm 2 over an abstract strike enumerator (see contract above).
/// `color_bound` is the palette size P when the caller knows it (packs the
/// assignment at the narrowest width up front); 0 lets the array widen on
/// demand.
template <typename ForEachStrike>
ListColoringResult color_lists_dynamic(std::uint32_t n, const ColorLists& lists,
                                       util::Xoshiro256& rng,
                                       ForEachStrike&& for_each_strike,
                                       std::uint32_t color_bound = 0) {
  const std::uint32_t l = lists.list_size();
  ListColoringResult result;
  result.assigned.reset(n, ListColoringResult::kNoColorLocal, color_bound);
  if (n == 0) return result;

  WorkingLists work(lists);
  util::BucketQueue queue(n, l);
  for (std::uint32_t v = 0; v < n; ++v) queue.insert(v, l);

  while (!queue.empty()) {
    // Uniformly random vertex from the lowest non-empty bucket (Line 8).
    const std::uint32_t key = queue.min_key();
    const auto& bucket = queue.bucket(key);
    const std::uint32_t v =
        bucket[static_cast<std::size_t>(rng.bounded(bucket.size()))];
    queue.erase(v);

    // Uniformly random color from the current list (Line 9).
    const std::uint32_t color =
        work.color_at(v, static_cast<std::uint32_t>(rng.bounded(key)));
    result.assigned[v] = color;

    for_each_strike(v, color, result.assigned, [&](std::uint32_t u) {
      apply_strike(
          u, color, work, result.assigned,
          [&](std::uint32_t t, std::uint32_t new_size) {
            if (queue.contains(t)) queue.update_key(t, new_size);
          },
          [&](std::uint32_t t) {
            if (queue.contains(t)) queue.erase(t);
            result.uncolored.push_back(t);
          });
    });
  }

  result.aux_peak_bytes = work.logical_bytes() + queue.logical_bytes() +
                          result.assigned.logical_bytes();
  finalize_list_coloring(result);
  return result;
}

/// Heap-based ablation variant over the same strike enumerator.
template <typename ForEachStrike>
ListColoringResult color_lists_heap(std::uint32_t n, const ColorLists& lists,
                                    util::Xoshiro256& rng,
                                    ForEachStrike&& for_each_strike,
                                    std::uint32_t color_bound = 0) {
  const std::uint32_t l = lists.list_size();
  ListColoringResult result;
  result.assigned.reset(n, ListColoringResult::kNoColorLocal, color_bound);
  if (n == 0) return result;

  WorkingLists work(lists);
  // Min-heap on (list size, random tie-break); lazy deletion via stale
  // size entries — the textbook O(log n)-per-update structure Algorithm 2's
  // buckets replace.
  struct Entry {
    std::uint32_t size;
    std::uint32_t tie;
    std::uint32_t vertex;
    bool operator>(const Entry& o) const {
      if (size != o.size) return size > o.size;
      if (tie != o.tie) return tie > o.tie;
      return vertex > o.vertex;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<char> done(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    heap.push({l, static_cast<std::uint32_t>(rng() & 0xffffffffu), v});
  }
  std::size_t heap_peak = heap.size();

  while (!heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    const std::uint32_t v = top.vertex;
    if (done[v] || top.size != work.size_of(v)) continue;  // stale
    done[v] = 1;

    const std::uint32_t color = work.color_at(
        v, static_cast<std::uint32_t>(rng.bounded(work.size_of(v))));
    result.assigned[v] = color;

    for_each_strike(v, color, result.assigned, [&](std::uint32_t u) {
      apply_strike(
          u, color, work, result.assigned,
          [&](std::uint32_t t, std::uint32_t new_size) {
            if (!done[t]) {
              heap.push({new_size,
                         static_cast<std::uint32_t>(rng() & 0xffffffffu), t});
              heap_peak = std::max(heap_peak, heap.size());
            }
          },
          [&](std::uint32_t t) {
            if (!done[t]) {
              done[t] = 1;
              result.uncolored.push_back(t);
            }
          });
    });
  }

  result.aux_peak_bytes = work.logical_bytes() + heap_peak * sizeof(Entry) +
                          done.capacity() + result.assigned.logical_bytes();
  finalize_list_coloring(result);
  return result;
}

/// Static-order body. `degree_of(v)` is consulted only by StaticLargestFirst
/// (conflict-graph degree); `for_each_neighbor(v, visit)` drives the mark
/// pass. Throws std::invalid_argument for non-static schemes (in the .cpp
/// wrapper; here the default case colors in natural order).
template <typename DegreeOf, typename ForEachNeighbor>
ListColoringResult color_lists_static(std::uint32_t n, const ColorLists& lists,
                                      ConflictColoringScheme scheme,
                                      std::uint64_t seed, DegreeOf&& degree_of,
                                      ForEachNeighbor&& for_each_neighbor) {
  ListColoringResult result;
  result.assigned.assign(n, ListColoringResult::kNoColorLocal);
  if (n == 0) return result;

  // Re-pack at the width of the widest list entry (known after the scan
  // below) before any assignment is stored.
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t v = 0; v < n; ++v) order[v] = v;
  switch (scheme) {
    case ConflictColoringScheme::StaticNatural:
      break;
    case ConflictColoringScheme::StaticRandom: {
      util::Xoshiro256 rng(seed);
      util::shuffle(order, rng);
      break;
    }
    case ConflictColoringScheme::StaticLargestFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&degree_of](std::uint32_t a, std::uint32_t b) {
                         return degree_of(a) > degree_of(b);
                       });
      break;
    default:
      break;  // guarded by the public wrapper
  }

  // Stamp array over palette-local colors.
  std::uint32_t max_color = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t c : lists.list(v)) max_color = std::max(max_color, c);
  }
  std::vector<std::uint32_t> mark(static_cast<std::size_t>(max_color) + 1, 0);
  std::uint32_t stamp = 0;
  result.assigned.reset(n, ListColoringResult::kNoColorLocal, max_color + 1);

  for (std::uint32_t v : order) {
    ++stamp;
    for_each_neighbor(v, [&](std::uint32_t u) {
      const std::uint32_t c = result.assigned[u];
      if (c != ListColoringResult::kNoColorLocal) mark[c] = stamp;
    });
    std::uint32_t chosen = ListColoringResult::kNoColorLocal;
    for (std::uint32_t c : lists.list(v)) {
      if (mark[c] != stamp) {
        chosen = c;
        break;
      }
    }
    if (chosen == ListColoringResult::kNoColorLocal) {
      result.uncolored.push_back(v);
    } else {
      result.assigned[v] = chosen;
    }
  }

  result.aux_peak_bytes = mark.capacity() * sizeof(std::uint32_t) +
                          order.capacity() * sizeof(std::uint32_t) +
                          result.assigned.logical_bytes();
  finalize_list_coloring(result);
  return result;
}

}  // namespace detail

}  // namespace picasso::core
