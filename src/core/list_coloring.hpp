#pragma once
// Coloring the conflict graph from the per-vertex color lists (§IV-B).
//
// Dynamic scheme — Algorithm 2 of the paper: vertices bucketed by current
// list size; repeatedly pick a uniformly random vertex from the lowest
// bucket, give it a uniformly random color from its list, and strike that
// color from all conflict-neighbors' lists (O(1) bucket moves). A vertex
// whose list empties joins V_u and is retried in the next Picasso iteration.
// Total time O((|Vc| + |Ec|) L): the bucketing removes the log factor a heap
// would cost.
//
// Static schemes: color vertices in a fixed order (natural / random /
// largest-conflict-degree-first), each taking the first color of its list
// unused by already-colored conflict neighbors.

#include <cstdint>
#include <vector>

#include "core/palette.hpp"
#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace picasso::core {

enum class ConflictColoringScheme {
  DynamicBucket,       // Algorithm 2 (the paper's evaluated configuration)
  DynamicHeap,         // same order, binary heap instead of buckets (ablation)
  StaticNatural,
  StaticRandom,
  StaticLargestFirst,  // by conflict-graph degree, descending
};

const char* to_string(ConflictColoringScheme s) noexcept;

struct ListColoringResult {
  /// Palette-local assigned color per vertex, kNoColorLocal if uncolored.
  std::vector<std::uint32_t> assigned;
  std::vector<std::uint32_t> uncolored;  // V_u, ascending vertex ids
  std::uint32_t num_colored = 0;
  std::size_t aux_peak_bytes = 0;

  static constexpr std::uint32_t kNoColorLocal = 0xffffffffu;
};

/// Algorithm 2. `gc` is the conflict graph over local ids; every vertex
/// (including isolated ones, which are the unconflicted vertices of
/// Algorithm 1 Line 8) receives a color unless its list is exhausted.
ListColoringResult color_conflict_graph_dynamic(const graph::CsrGraph& gc,
                                                const ColorLists& lists,
                                                util::Xoshiro256& rng);

/// Heap-based variant of the dynamic scheme, kept as the ablation baseline
/// for the bucketing claim (§IV-B); identical coloring order policy but
/// O(log |Vc|) per update.
ListColoringResult color_conflict_graph_heap(const graph::CsrGraph& gc,
                                             const ColorLists& lists,
                                             util::Xoshiro256& rng);

/// Static-order list coloring.
ListColoringResult color_conflict_graph_static(const graph::CsrGraph& gc,
                                               const ColorLists& lists,
                                               ConflictColoringScheme scheme,
                                               std::uint64_t seed);

/// Dispatcher over all schemes.
ListColoringResult color_conflict_graph(const graph::CsrGraph& gc,
                                        const ColorLists& lists,
                                        ConflictColoringScheme scheme,
                                        util::Xoshiro256& rng);

}  // namespace picasso::core
