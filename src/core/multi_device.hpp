#pragma once
// Multi-device Picasso — the paper's §VIII future work ("distributed
// multi-GPU parallel implementations"), simulated.
//
// The conflict-graph build is the device-resident phase, so the natural
// distribution is by edges: conflicted edges are sharded across D simulated
// devices by a deterministic hash, each device runs its own Algorithm-3
// accounting (counters + COO within its private budget), and the host
// merges the per-device COO partitions into the global conflict CSR before
// the (host-side) list coloring — mirroring how the single-GPU pipeline
// already falls back to the host for CSR assembly when tight on memory.
//
// The coloring produced is bit-identical to the single-device driver (the
// merged edge set is the same); what changes — and what the bench measures —
// is the per-device peak, which drops ~1/D and thereby admits inputs whose
// conflict graph exceeds any single device.
//
// Execution is two-stage on the runtime pool (PicassoParams::runtime): the
// conflict enumeration runs chunk-parallel into device-agnostic COO
// partitions, then the D simulated devices ingest their shards
// *concurrently* — each ingest task touches only its own context, ledger
// and buffers, so the per-device peak-memory model now coexists with real
// wall-clock speedup instead of being simulated one shard at a time.

#include <cstdint>
#include <vector>

#include "core/picasso.hpp"
#include "device/device_context.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"

namespace picasso::core {

struct MultiDeviceConfig {
  std::uint32_t num_devices = 2;
  std::size_t device_capacity_bytes = 256u << 20;  // per device
};

struct DeviceShardStats {
  std::uint64_t edges = 0;        // conflict edges routed to this device
  std::size_t peak_bytes = 0;     // device-budget high-water mark
};

// Aggregations over per-device shard stats — shared by MultiDeviceResult
// and the session layer's SolveReport so the two can't drift.

inline std::uint64_t total_shard_edges(
    const std::vector<DeviceShardStats>& devices) noexcept {
  std::uint64_t total = 0;
  for (const auto& d : devices) total += d.edges;
  return total;
}

/// max/mean edge load across devices; 1.0 = perfectly balanced, which is
/// also what an empty (non-sharded) stats vector reports.
inline double shard_imbalance(
    const std::vector<DeviceShardStats>& devices) noexcept {
  if (devices.empty()) return 1.0;
  std::uint64_t max_edges = 0;
  for (const auto& d : devices) max_edges = std::max(max_edges, d.edges);
  const double mean = static_cast<double>(total_shard_edges(devices)) /
                      static_cast<double>(devices.size());
  return mean > 0 ? static_cast<double>(max_edges) / mean : 1.0;
}

inline std::size_t max_shard_peak_bytes(
    const std::vector<DeviceShardStats>& devices) noexcept {
  std::size_t peak = 0;
  for (const auto& d : devices) peak = std::max(peak, d.peak_bytes);
  return peak;
}

struct MultiDeviceResult {
  PicassoResult coloring;
  std::vector<DeviceShardStats> devices;

  std::uint64_t total_edges() const { return total_shard_edges(devices); }

  /// max/mean edge load across devices (1.0 = perfectly balanced).
  double imbalance() const { return shard_imbalance(devices); }

  std::size_t max_device_peak_bytes() const {
    return max_shard_peak_bytes(devices);
  }
};

/// Deterministic edge -> device routing (splitmix over the packed pair, so
/// the shards stay balanced regardless of vertex-id structure).
std::uint32_t edge_shard(std::uint32_t u, std::uint32_t v,
                         std::uint32_t num_devices) noexcept;

/// Runs Picasso with the conflict build sharded over simulated devices.
/// Throws device::DeviceOutOfMemory if a shard exceeds its budget.
template <graph::GraphOracle Oracle>
MultiDeviceResult solve_multi_device(const Oracle& oracle,
                                     const PicassoParams& params,
                                     const MultiDeviceConfig& config);

/// Deprecated name for solve_multi_device; new code goes through
/// picasso::api::Session configured with .devices(count, capacity).
template <graph::GraphOracle Oracle>
[[deprecated("use picasso::api::Session configured with .devices() instead")]]
MultiDeviceResult picasso_color_multi_device(const Oracle& oracle,
                                             const PicassoParams& params,
                                             const MultiDeviceConfig& config) {
  return solve_multi_device(oracle, params, config);
}

// ---------------------------------------------------------------------------
// Implementation.

template <graph::GraphOracle Oracle>
MultiDeviceResult solve_multi_device(const Oracle& oracle,
                                     const PicassoParams& params,
                                     const MultiDeviceConfig& config) {
  MultiDeviceResult result;
  result.devices.assign(config.num_devices, {});
  obs::ScopedSpan solve_span(params.trace, "solve_multi_device");

  // Per-device contexts persist across iterations so the reported peaks are
  // whole-run high-water marks, as in the single-device driver.
  std::vector<device::DeviceContext> devices;
  devices.reserve(config.num_devices);
  for (std::uint32_t d = 0; d < config.num_devices; ++d) {
    devices.emplace_back(config.device_capacity_bytes);
  }

  PicassoResult coloring;
  const std::uint32_t n = oracle.num_vertices();
  coloring.colors.assign(n, 0xffffffffu);
  std::vector<std::uint32_t> active(n);
  for (std::uint32_t v = 0; v < n; ++v) active[v] = v;
  util::Xoshiro256 coloring_rng(params.seed ^ 0x5bf03635dd3bb1f0ULL);
  std::uint32_t base_color = 0;
  int iteration = 0;

  while (!active.empty() && iteration < params.max_iterations) {
    detail::throw_if_stopped(params.stop);
    obs::ScopedSpan iter_span(params.trace, "iteration",
                              static_cast<std::uint64_t>(iteration));
    IterationStats stats;
    stats.n_active = static_cast<std::uint32_t>(active.size());
    const IterationPalette palette = compute_palette(
        stats.n_active, params.palette_percent, params.alpha, base_color);
    stats.palette_size = palette.palette_size;
    stats.list_size = palette.list_size;

    ColorLists lists;
    {
      obs::ScopedPhase acc(params.trace, "assign_lists", stats.assign_seconds);
      lists = assign_random_lists(stats.n_active, palette, params.seed,
                                  static_cast<std::uint64_t>(iteration));
    }

    // Shard the conflicted edges across the devices: each device holds its
    // partition as COO plus per-vertex counters, charged to its own budget.
    ConflictBuildResult conflict;
    {
      obs::ScopedPhase acc(params.trace, "conflict_shard",
                           stats.conflict_seconds);
      const std::uint32_t d_count = config.num_devices;
      // Same gate as build_conflict_graph: small inputs must not pay (or
      // trigger) shared-pool construction.
      runtime::ThreadPool* pool =
          stats.n_active >= params.runtime.serial_cutoff
              ? runtime::resolve_pool(params.runtime)
              : nullptr;

      // Stage 1: chunk-parallel enumeration, routed into per-(chunk,
      // device) buckets as edges are emitted — one O(|Ec|) routing pass
      // total, not one per device. Bucket order is deterministic: chunk
      // ordinal x shard hash, both schedule-independent.
      const ConflictKernel kernel = resolve_kernel(
          params.kernel, palette.palette_size, palette.list_size,
          BlockConflictOracle<Oracle>);
      std::vector<std::vector<std::vector<std::uint32_t>>> buckets;
      detail::enumerate_conflicts_chunked(
          pool, oracle, active, lists, palette.palette_size, kernel,
          params.runtime,
          [&buckets, d_count](std::size_t num_chunks) {
            buckets.assign(num_chunks,
                           std::vector<std::vector<std::uint32_t>>(d_count));
          },
          [&buckets, d_count](const runtime::ChunkRange& chunk) {
            std::vector<std::vector<std::uint32_t>>* by_device =
                &buckets[chunk.index];
            return [by_device, d_count](std::uint32_t u, std::uint32_t v) {
              std::vector<std::uint32_t>& coo =
                  (*by_device)[edge_shard(u, v, d_count)];
              coo.push_back(u);
              coo.push_back(v);
            };
          });

      // Stage 2: the D devices ingest their buckets concurrently, in chunk
      // order. COO slots are charged to the owning device in 4096-edge
      // chunks (one RAII charge per chunk keeps the ledger small while
      // preserving the mid-enumeration OOM semantics of Algorithm 3); the
      // fixed scan order makes each shard's COO — and therefore its charge
      // sequence and peak — independent of the schedule.
      constexpr std::uint64_t kChunkEdges = 4096;
      std::vector<device::DeviceBuffer<std::uint64_t>> counters(d_count);
      std::vector<std::vector<std::uint32_t>> shard_coo(d_count);
      std::vector<std::vector<device::DeviceAllocation>> coo_charges(d_count);
      const std::uint32_t n_active = stats.n_active;
      auto ingest_shard = [&](std::size_t d_index) {
        const auto d = static_cast<std::uint32_t>(d_index);
        counters[d] = device::DeviceBuffer<std::uint64_t>(devices[d], n_active);
        for (std::uint32_t v = 0; v < n_active; ++v) counters[d][v] = 0;
        std::uint64_t edges = 0;
        for (auto& chunk_buckets : buckets) {
          auto& part = chunk_buckets[d];
          for (std::size_t i = 0; i + 1 < part.size(); i += 2) {
            const std::uint32_t u = part[i];
            const std::uint32_t v = part[i + 1];
            if (edges % kChunkEdges == 0) {
              coo_charges[d].push_back(devices[d].allocate(
                  kChunkEdges * 2 * sizeof(std::uint32_t)));
            }
            ++edges;
            shard_coo[d].push_back(u);
            shard_coo[d].push_back(v);
            ++counters[d][u];
            ++counters[d][v];
          }
          part = {};  // each device frees its bucket as it ingests it —
                      // only [d]-slots are touched, so tasks stay disjoint
        }
        // Per-device flush: the splitmix routing fixes each shard's edge
        // count, so the total is schedule-independent.
        obs::count(obs::Counter::ShardEdgesRouted, edges);
        result.devices[d].edges += edges;
      };
      // One task per device; a shard blowing its budget throws
      // DeviceOutOfMemory through the task group to the caller.
      runtime::parallel_for(pool, 0, d_count, 1, ingest_shard);

      // Host-side merge: global per-vertex counts = sum over devices.
      std::vector<std::uint64_t> offsets(stats.n_active + 1, 0);
      std::uint64_t num_edges = 0;
      for (std::uint32_t v = 0; v < stats.n_active; ++v) {
        std::uint64_t degree = 0;
        for (std::uint32_t d = 0; d < d_count; ++d) degree += counters[d][v];
        offsets[v + 1] = offsets[v] + degree;
      }
      for (std::uint32_t d = 0; d < d_count; ++d) {
        num_edges += shard_coo[d].size() / 2;
      }
      std::vector<std::uint32_t> merged_coo;
      merged_coo.reserve(2 * num_edges);
      for (std::uint32_t d = 0; d < d_count; ++d) {
        merged_coo.insert(merged_coo.end(), shard_coo[d].begin(),
                          shard_coo[d].end());
        shard_coo[d] = {};  // merged; drop the per-shard copy
      }
      std::vector<std::uint32_t> neighbors(2 * num_edges);
      device::fill_csr(offsets, merged_coo.data(), num_edges, neighbors.data());
      conflict.graph = graph::CsrGraph::from_csr(std::move(offsets),
                                                 std::move(neighbors));
      conflict.num_edges = num_edges;
      conflict.num_conflicted_vertices = detail::count_conflicted(conflict.graph);
      conflict.logical_bytes = conflict.graph.logical_bytes();
      // Release the per-iteration device charges; peaks persist.
      coo_charges.clear();
    }
    stats.conflict_edges = conflict.num_edges;
    stats.conflicted_vertices = conflict.num_conflicted_vertices;

    ListColoringResult colored;
    {
      obs::ScopedPhase acc(params.trace, "coloring", stats.coloring_seconds);
      colored = color_conflict_graph(conflict.graph, lists,
                                     params.conflict_scheme, coloring_rng);
    }

    std::vector<std::uint32_t> next_active;
    for (std::uint32_t local = 0; local < stats.n_active; ++local) {
      const std::uint32_t c = colored.assigned[local];
      if (c == ListColoringResult::kNoColorLocal) {
        next_active.push_back(active[local]);
      } else {
        coloring.colors[active[local]] = palette.base_color + c;
      }
    }
    stats.colored = colored.num_colored;
    stats.uncolored = static_cast<std::uint32_t>(next_active.size());
    obs::count(obs::Counter::RecolorEvents, stats.uncolored);
    stats.logical_bytes = lists.logical_bytes() + conflict.logical_bytes +
                          colored.aux_peak_bytes;

    coloring.iterations.push_back(stats);
    coloring.assign_seconds += stats.assign_seconds;
    coloring.conflict_seconds += stats.conflict_seconds;
    coloring.coloring_seconds += stats.coloring_seconds;
    coloring.max_conflict_edges =
        std::max(coloring.max_conflict_edges, stats.conflict_edges);
    coloring.peak_logical_bytes =
        std::max(coloring.peak_logical_bytes, stats.logical_bytes);

    detail::report_iteration(params.progress, iteration, stats.n_active,
                             stats.colored, stats.uncolored,
                             stats.conflict_edges);

    base_color += palette.palette_size;
    active = std::move(next_active);
    ++iteration;
  }

  if (!active.empty()) {
    coloring.converged = false;
    for (std::uint32_t v : active) coloring.colors[v] = base_color++;
  }
  coloring.palette_total = base_color;
  {
    std::vector<std::uint32_t> used(coloring.colors);
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    coloring.num_colors = static_cast<std::uint32_t>(used.size());
  }
  for (std::uint32_t d = 0; d < config.num_devices; ++d) {
    result.devices[d].peak_bytes = devices[d].peak_bytes();
  }
  result.coloring = std::move(coloring);
  return result;
}

}  // namespace picasso::core
