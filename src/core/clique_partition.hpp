#pragma once
// Application layer: unitary partitioning of Pauli strings (§II).
//
// A valid coloring of the complement graph G' puts two strings in the same
// color class only if they anticommute, so every color class is a clique of
// the anticommutation graph G — i.e., a set of Pauli strings that can be
// combined into a single unitary (Eq. (1)/(2) of the paper). This module
// turns a Picasso coloring into those groups, verifies the pairwise
// anticommutation invariant, and reports the application-level metrics
// (compression ratio, coefficient norms).

#include <cstdint>
#include <string>
#include <vector>

#include "core/picasso.hpp"
#include "pauli/pauli_set.hpp"

namespace picasso::core {

/// Which pairwise relation defines a valid group (clique). The paper's
/// contribution targets Unitary (anticommuting) grouping; the two
/// commutativity modes are the related-work measurement-grouping schemes of
/// §III, exposed here because the identical coloring machinery serves all
/// three — only the oracle changes.
enum class GroupingMode {
  Unitary,            // pairwise anticommute  -> compact unitaries (Eq. 1)
  GeneralCommute,     // pairwise commute      -> simultaneous measurement
  QubitWiseCommute,   // pairwise QWC          -> measurement w/o basis change
};

const char* to_string(GroupingMode m) noexcept;

/// The pairwise relation of a mode, as a predicate over set indices.
bool pair_satisfies(const pauli::PauliSet& set, GroupingMode mode,
                    std::uint32_t a, std::uint32_t b);

struct UnitaryGroup {
  std::vector<std::uint32_t> members;  // indices into the PauliSet
  /// sqrt(Σ p_i^2) over members — the natural scale u_i of the grouped
  /// unitary in Eq. (1).
  double coefficient_norm = 0.0;
};

struct PartitionResult {
  std::vector<UnitaryGroup> groups;
  PicassoResult coloring;

  std::size_t num_groups() const { return groups.size(); }

  /// n / c — how many Pauli strings collapse into one unitary on average
  /// (the paper's H2 example compresses 17 strings into 9 unitaries).
  double compression_ratio() const {
    return groups.empty() ? 0.0
                          : static_cast<double>(coloring.colors.size()) /
                                static_cast<double>(groups.size());
  }
};

/// End-to-end: color the mode's coloring graph (Unitary: the complement of
/// the anticommute graph, exactly the paper's pipeline) with Picasso and
/// split the set into groups (one per color class, ordered by first member).
PartitionResult partition_pauli_strings(const pauli::PauliSet& set,
                                        const PicassoParams& params = {},
                                        GroupingMode mode = GroupingMode::Unitary);

/// Builds groups from any per-vertex color assignment.
std::vector<UnitaryGroup> groups_from_coloring(
    const pauli::PauliSet& set, const std::vector<std::uint32_t>& colors);

/// Checks the partition invariant: groups are disjoint, cover the whole
/// set, and every pair inside a group satisfies the mode's relation
/// (Unitary: anticommutes). Returns an empty string when valid, else a
/// description of the first violation.
std::string verify_partition(const pauli::PauliSet& set,
                             const std::vector<UnitaryGroup>& groups,
                             GroupingMode mode = GroupingMode::Unitary);

}  // namespace picasso::core
