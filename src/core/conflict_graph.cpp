#include "core/conflict_graph.hpp"

namespace picasso::core {

const char* to_string(ConflictKernel k) noexcept {
  switch (k) {
    case ConflictKernel::Reference: return "reference";
    case ConflictKernel::Indexed: return "indexed";
    case ConflictKernel::Auto: return "auto";
  }
  return "?";
}

namespace detail {

ColorIndex build_color_index(const ColorLists& lists,
                             std::uint32_t palette_size) {
  const std::uint32_t n = lists.num_vertices();
  const std::uint32_t l = lists.list_size();
  ColorIndex index;
  index.offsets.assign(palette_size + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t c : lists.list(v)) ++index.offsets[c + 1];
  }
  for (std::uint32_t c = 0; c < palette_size; ++c) {
    index.offsets[c + 1] += index.offsets[c];
  }
  index.members.resize(static_cast<std::size_t>(n) * l);
  std::vector<std::uint32_t> cursor(index.offsets.begin(),
                                    index.offsets.end() - 1);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (std::uint32_t c : lists.list(v)) index.members[cursor[c]++] = v;
  }
  return index;
}

}  // namespace detail
}  // namespace picasso::core
